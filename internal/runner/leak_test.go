package runner

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
)

// TestRunClosesAbandonedEngines pins the parked-goroutine fix: a job
// that abandons an engine with suspended processes (bounded run, early
// return) must not leak those goroutines past the job boundary — the
// runner closes every engine the job built.
func TestRunClosesAbandonedEngines(t *testing.T) {
	before := runtime.NumGoroutine()
	var jobs []Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{
			ID: fmt.Sprintf("leak%d", i),
			Run: func(o Options) []*stats.Table {
				e := sim.NewEngine()
				for j := 0; j < 4; j++ {
					e.Go("parked", func(p *sim.Proc) { p.Suspend() })
				}
				e.RunUntil(100) // processes park; engine is then abandoned
				return nil
			},
		})
	}
	results := Run(Config{Workers: 4}, jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across jobs: %d before, %d after %d jobs",
				before, runtime.NumGoroutine(), len(jobs))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
