package runner

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
)

// waitNoLeak polls until the goroutine count returns to near its baseline.
func waitNoLeak(t *testing.T, before, slack, jobs int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across jobs: %d before, %d after %d jobs",
				before, runtime.NumGoroutine(), jobs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunClosesAbandonedEngines pins the parked-goroutine fix: a job
// that abandons an engine with suspended processes (bounded run, early
// return) must not leak those goroutines past the job boundary — the
// runner closes every engine the job built.
func TestRunClosesAbandonedEngines(t *testing.T) {
	before := runtime.NumGoroutine()
	var jobs []Job
	for i := 0; i < 30; i++ {
		jobs = append(jobs, Job{
			ID: fmt.Sprintf("leak%d", i),
			Run: func(o Options) []*stats.Table {
				e := sim.NewEngine()
				for j := 0; j < 4; j++ {
					e.Go("parked", func(p *sim.Proc) { p.Suspend() })
				}
				e.RunUntil(100) // processes park; engine is then abandoned
				return nil
			},
		})
	}
	results := Run(Config{Workers: 4}, jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s: %v", r.ID, r.Err)
		}
	}
	waitNoLeak(t, before, 4, len(jobs))
}

// TestRunRecoversPanickingJobs: a workload that panics inside a simulated
// process surfaces as a structured deterministic *JobError — carrying the
// process stack, not retried — while its neighbors complete and none of
// its goroutines outlive the job.
func TestRunRecoversPanickingJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	jobs := []Job{
		{ID: "ok-before", Run: func(o Options) []*stats.Table { return nil }},
		{ID: "panics", Run: func(o Options) []*stats.Table {
			e := sim.NewEngine()
			e.Go("worker", func(p *sim.Proc) { p.Suspend() }) // parked across the panic
			e.Go("exploder", func(p *sim.Proc) {
				p.Wait(10)
				panic(boom)
			})
			e.Drain()
			return nil
		}},
		{ID: "ok-after", Run: func(o Options) []*stats.Table { return nil }},
	}
	results := Run(Config{Workers: 1}, jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy neighbors failed: %v / %v", results[0].Err, results[2].Err)
	}
	r := results[1]
	var je *JobError
	if !errors.As(r.Err, &je) {
		t.Fatalf("Err = %v (%T), want *JobError", r.Err, r.Err)
	}
	if !je.Deterministic {
		t.Fatal("workload panic classified as infrastructure (would be retried)")
	}
	if r.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (deterministic failures must not retry)", r.Attempts)
	}
	if len(je.Stack) == 0 {
		t.Fatal("JobError carries no simulated-process stack")
	}
	if !errors.Is(r.Err, boom) {
		t.Fatalf("panic value unreachable through the error chain: %v", r.Err)
	}
	if r.Tables != nil {
		t.Fatal("failed job still returned tables")
	}
	waitNoLeak(t, before, 4, len(jobs))
}

// TestRunTimesOutLivelockedJobs: a livelocked workload is cut off by the
// per-job cycle budget as a deterministic *JobError wrapping
// *sim.CycleLimitError, with no goroutines left behind.
func TestRunTimesOutLivelockedJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	jobs := []Job{
		{ID: "livelock", Run: func(o Options) []*stats.Table {
			e := sim.NewEngine() // picks up the runner's tracker budget
			e.Go("spinner", func(p *sim.Proc) {
				for {
					p.Wait(100)
				}
			})
			e.Drain()
			return nil
		}},
		{ID: "bounded", Run: func(o Options) []*stats.Table {
			e := sim.NewEngine()
			e.Go("finite", func(p *sim.Proc) { p.Wait(500) })
			e.Drain()
			return nil
		}},
	}
	results := Run(Config{Workers: 2, CycleBudget: 10_000}, jobs)
	var je *JobError
	if !errors.As(results[0].Err, &je) {
		t.Fatalf("Err = %v (%T), want *JobError", results[0].Err, results[0].Err)
	}
	if !je.Deterministic {
		t.Fatal("cycle-budget trip classified as infrastructure")
	}
	var cle *sim.CycleLimitError
	if !errors.As(results[0].Err, &cle) || cle.Limit != 10_000 {
		t.Fatalf("budget trip not surfaced as CycleLimitError: %v", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("job under budget failed: %v", results[1].Err)
	}
	waitNoLeak(t, before, 4, len(jobs))
}

// TestRunRetriesInfrastructureFailures: a panic outside any simulated
// process is presumed infrastructural and earns exactly one same-seed
// retry; success on the second attempt reports Attempts=2 and no error.
func TestRunRetriesInfrastructureFailures(t *testing.T) {
	calls := 0
	jobs := []Job{{ID: "flaky", Run: func(o Options) []*stats.Table {
		calls++
		if calls == 1 {
			panic("spurious host-side failure")
		}
		return nil
	}}}
	results := Run(Config{Workers: 1}, jobs)
	if results[0].Err != nil {
		t.Fatalf("retried job still failed: %v", results[0].Err)
	}
	if results[0].Attempts != 2 || calls != 2 {
		t.Fatalf("Attempts = %d, calls = %d, want 2/2", results[0].Attempts, calls)
	}

	// A job that fails both attempts reports the second attempt's error.
	always := []Job{{ID: "dead", Run: func(o Options) []*stats.Table {
		panic("always down")
	}}}
	results = Run(Config{Workers: 1}, always)
	var je *JobError
	if !errors.As(results[0].Err, &je) || je.Attempt != 2 {
		t.Fatalf("Err = %v, want *JobError from attempt 2", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", results[0].Attempts)
	}
}
