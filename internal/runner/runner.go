// Package runner executes independent deterministic experiment jobs on a
// worker pool while keeping results in submission order, so parallel runs
// emit byte-for-byte the output of serial ones.
//
// Every figure datapoint in this repository is a self-contained simulation:
// it builds its own machine.Params, runs to completion, and returns tables.
// Jobs therefore never share state, and the only ordering that matters is
// the order results are *assembled* in — which Run pins to the order jobs
// were submitted, regardless of which worker finishes first.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
)

// Options scales the experiments, mirroring figures.Options. Jobs produced
// by a decomposition are usually already bound to their options; the value
// passed here is forwarded for jobs that want it.
type Options struct {
	Quick bool
}

// Job is one independently runnable experiment. Run must be deterministic
// and self-contained: it may not read or write state shared with other
// jobs (each builds its own simulated machine).
type Job struct {
	ID  string
	Run func(o Options) []*stats.Table
}

// Metrics records per-job cost, reported on the progress line.
type Metrics struct {
	Wall time.Duration
	// SimCycles is the exact number of cycles simulated by this job: the
	// sum of sim.cycles over every machine the job built, read from the
	// job's collected registries (no process-global sampling involved).
	SimCycles uint64
	PeakRows  int // rows in the job's largest table
	NumTables int
	// Snapshot merges the final metrics of every machine the job built
	// (same-named metrics sum). Nil only if the job built none.
	Snapshot *metrics.Snapshot
}

// Result pairs a job with its output. Results are returned in submission
// order. A panicking job is recovered into a *JobError in Err so the
// remaining jobs still run; its Tables are nil.
type Result struct {
	ID      string
	Index   int
	Tables  []*stats.Table
	Err     error
	Metrics Metrics
	// Attempts counts executions of this job: 1 normally, 2 when the first
	// attempt hit a non-deterministic (infrastructure) failure and the job
	// was retried once with the same seed.
	Attempts int
	// Violations holds the invariant-oracle failures recorded by this
	// job's machines (deterministically ordered). Non-empty only when
	// Config.Invariants enables oracles and a check failed — which also
	// sets Err.
	Violations []invariant.Violation
	// Trace holds one tracer per machine the job built, in construction
	// order. Empty unless Config.Trace enabled tracing.
	Trace []*txtrace.Tracer
	// Timeline holds one finalized time-series recorder per machine the
	// job built, in construction order. Empty unless Config.Timeline
	// enabled the timeline plane.
	Timeline []*timeline.Recorder
}

// JobError is the structured error a failed job carries: the recovered
// panic value, the failing simulated process's stack when the panic came
// out of one (via sim.ProcPanic), and whether the failure is deterministic.
// Deterministic failures — a workload panic inside the seeded simulation,
// a cycle-budget trip, a liveness-watchdog trip — recur on any same-seed
// retry and are reported immediately; anything else is presumed
// infrastructural and earns one same-seed retry.
type JobError struct {
	ID            string
	Value         any    // the recovered panic value
	Stack         []byte // simulated-process stack (nil for engine-side panics)
	Deterministic bool
	Attempt       int // which attempt failed (1-based)
}

func (e *JobError) Error() string {
	kind := "infrastructure"
	if e.Deterministic {
		kind = "deterministic"
	}
	return fmt.Sprintf("job %s failed (%s, attempt %d): %v", e.ID, kind, e.Attempt, e.Value)
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (e *JobError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// newJobError classifies a recovered panic. A sim.ProcPanic is unwrapped
// for its stack and inner value; everything the simulator itself raises is
// deterministic by construction (seeded, single-threaded event loop).
func newJobError(id string, p any, attempt int) *JobError {
	je := &JobError{ID: id, Value: p, Attempt: attempt}
	v := p
	if pp, ok := v.(*sim.ProcPanic); ok {
		je.Stack = pp.Stack
		je.Deterministic = true // workload code replays identically per seed
		v = pp.Value
	}
	switch v.(type) {
	case *sim.CycleLimitError, *invariant.WatchdogTrip:
		je.Deterministic = true
	}
	return je
}

// Config shapes one Run call.
type Config struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. 1 reproduces a
	// fully serial run: jobs execute in submission order on the calling
	// flow's single worker.
	Workers int
	// Options is forwarded to every job.
	Options Options
	// Progress, when non-nil, receives a live one-line status ("\r"-
	// rewritten) plus a final newline. Point it at os.Stderr.
	Progress io.Writer
	// Trace configures transaction tracing for every machine the jobs
	// build. With Enabled false (the default) nothing is recorded and the
	// simulation runs the zero-cost disabled path.
	Trace txtrace.Config
	// Faults, when non-nil and active, injects the deterministic fault
	// schedule into every machine the jobs build.
	Faults *faultinject.Schedule
	// Invariants selects runtime correctness oracles for every machine the
	// jobs build; a job whose oracles record violations fails with an error
	// carrying them.
	Invariants invariant.Config
	// CycleBudget bounds the simulated cycles of every engine a job
	// builds; exceeding it panics with sim.CycleLimitError, which surfaces
	// as a deterministic *JobError. 0 means unbounded.
	CycleBudget uint64
	// Timeline configures cycle-windowed metric sampling for every machine
	// the jobs build. With Enabled false (the default) nothing is recorded
	// and the per-event cost is a single nil check.
	Timeline timeline.Config
}

// Run executes the jobs on the pool and returns one Result per job, in
// submission order.
func Run(cfg Config, jobs []Job) []Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var (
		next atomic.Int64
		done atomic.Int64
		wg   sync.WaitGroup
		pmu  sync.Mutex // serializes Progress writes
	)
	progress := func(r *Result) {
		if cfg.Progress == nil {
			return
		}
		pmu.Lock()
		defer pmu.Unlock()
		fmt.Fprintf(cfg.Progress, "\r[%d/%d] %-32s %8s  %6.1f Mcyc  ",
			done.Load(), int64(len(jobs)), r.ID,
			r.Metrics.Wall.Round(time.Millisecond),
			float64(r.Metrics.SimCycles)/1e6)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runOne(i, jobs[i], cfg)
				done.Add(1)
				progress(&results[i])
			}
		}()
	}
	wg.Wait()
	if cfg.Progress != nil {
		fmt.Fprintln(cfg.Progress)
	}
	return results
}

// runOne executes a single job, retrying once — same seed, same schedule —
// when the first attempt fails non-deterministically (a presumed
// infrastructure hiccup). Deterministic failures and invariant violations
// would only recur, so they report immediately.
func runOne(index int, job Job, cfg Config) Result {
	res := runAttempt(index, job, cfg, 1)
	if je, ok := res.Err.(*JobError); ok && !je.Deterministic {
		res = runAttempt(index, job, cfg, 2)
		res.Attempts = 2
	}
	return res
}

// runAttempt executes one attempt of a job, capturing metrics and
// recovering panics into structured errors. A collector bound to the
// worker goroutine gathers the registry of every machine the job builds;
// snapshotting them afterwards yields the job's metrics and its exact
// simulated-cycle count, even with concurrent neighbors (which the old
// global-counter delta could not attribute). An engine tracker bound the
// same way lets the runner Close every engine the job built once it
// finishes: a job that abandons an engine mid-run (bounded runs, panics)
// would otherwise leak one goroutine per process still parked in it,
// accumulating across jobs. The fault-injection and invariant collectors
// follow the same ambient pattern, and the tracker applies the per-job
// cycle budget to every engine at registration.
func runAttempt(index int, job Job, cfg Config, attempt int) (res Result) {
	res = Result{ID: job.ID, Index: index, Attempts: attempt}
	start := time.Now()
	col := metrics.NewCollector()
	release := col.Bind()
	trk := sim.NewTracker()
	if cfg.CycleBudget > 0 {
		trk.SetCycleLimit(sim.Cycle(cfg.CycleBudget))
	}
	releaseTrk := trk.Bind()
	tcol := txtrace.NewCollector(cfg.Trace) // nil when tracing is disabled
	releaseTrace := tcol.Bind()
	fcol := faultinject.NewCollector(cfg.Faults) // nil without a schedule
	releaseFaults := fcol.Bind()
	icol := invariant.NewCollector(cfg.Invariants) // nil with oracles off
	releaseInv := icol.Bind()
	tlcol := timeline.NewCollector(cfg.Timeline) // nil with the timeline off
	releaseTl := tlcol.Bind()
	defer func() {
		release()
		releaseTrk()
		releaseTrace()
		releaseFaults()
		releaseInv()
		releaseTl()
		if p := recover(); p != nil {
			res.Err = newJobError(job.ID, p, attempt)
			res.Tables = nil
		}
		if n := icol.TotalViolations(); n > 0 {
			res.Violations = icol.Violations()
			if res.Err == nil {
				res.Err = fmt.Errorf("job %s: %d invariant violation(s), first: %s",
					job.ID, n, res.Violations[0])
			}
		}
		if regs := col.Registries(); len(regs) > 0 {
			snap := col.Snapshot()
			res.Metrics.Snapshot = snap
			res.Metrics.SimCycles = snap.Counter("sim.cycles")
		}
		res.Trace = tcol.Tracers()
		// Close trailing partial windows before the tracker tears the
		// engines down; recorders are inert afterwards.
		tlcol.Finalize()
		res.Timeline = tlcol.Recorders()
		trk.CloseAll()
		res.Metrics.Wall = time.Since(start)
	}()
	res.Tables = job.Run(cfg.Options)
	res.Metrics.NumTables = len(res.Tables)
	for _, tb := range res.Tables {
		if n := tb.NumRows(); n > res.Metrics.PeakRows {
			res.Metrics.PeakRows = n
		}
	}
	return res
}
