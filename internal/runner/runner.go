// Package runner executes independent deterministic experiment jobs on a
// worker pool while keeping results in submission order, so parallel runs
// emit byte-for-byte the output of serial ones.
//
// Every figure datapoint in this repository is a self-contained simulation:
// it builds its own machine.Params, runs to completion, and returns tables.
// Jobs therefore never share state, and the only ordering that matters is
// the order results are *assembled* in — which Run pins to the order jobs
// were submitted, regardless of which worker finishes first.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
	"mcsquare/internal/txtrace"
)

// Options scales the experiments, mirroring figures.Options. Jobs produced
// by a decomposition are usually already bound to their options; the value
// passed here is forwarded for jobs that want it.
type Options struct {
	Quick bool
}

// Job is one independently runnable experiment. Run must be deterministic
// and self-contained: it may not read or write state shared with other
// jobs (each builds its own simulated machine).
type Job struct {
	ID  string
	Run func(o Options) []*stats.Table
}

// Metrics records per-job cost, reported on the progress line.
type Metrics struct {
	Wall time.Duration
	// SimCycles is the exact number of cycles simulated by this job: the
	// sum of sim.cycles over every machine the job built, read from the
	// job's collected registries (no process-global sampling involved).
	SimCycles uint64
	PeakRows  int // rows in the job's largest table
	NumTables int
	// Snapshot merges the final metrics of every machine the job built
	// (same-named metrics sum). Nil only if the job built none.
	Snapshot *metrics.Snapshot
}

// Result pairs a job with its output. Results are returned in submission
// order. A panicking job is recovered into Err so the remaining jobs still
// run; its Tables are nil.
type Result struct {
	ID      string
	Index   int
	Tables  []*stats.Table
	Err     error
	Metrics Metrics
	// Trace holds one tracer per machine the job built, in construction
	// order. Empty unless Config.Trace enabled tracing.
	Trace []*txtrace.Tracer
}

// Config shapes one Run call.
type Config struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. 1 reproduces a
	// fully serial run: jobs execute in submission order on the calling
	// flow's single worker.
	Workers int
	// Options is forwarded to every job.
	Options Options
	// Progress, when non-nil, receives a live one-line status ("\r"-
	// rewritten) plus a final newline. Point it at os.Stderr.
	Progress io.Writer
	// Trace configures transaction tracing for every machine the jobs
	// build. With Enabled false (the default) nothing is recorded and the
	// simulation runs the zero-cost disabled path.
	Trace txtrace.Config
}

// Run executes the jobs on the pool and returns one Result per job, in
// submission order.
func Run(cfg Config, jobs []Job) []Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var (
		next atomic.Int64
		done atomic.Int64
		wg   sync.WaitGroup
		pmu  sync.Mutex // serializes Progress writes
	)
	progress := func(r *Result) {
		if cfg.Progress == nil {
			return
		}
		pmu.Lock()
		defer pmu.Unlock()
		fmt.Fprintf(cfg.Progress, "\r[%d/%d] %-32s %8s  %6.1f Mcyc  ",
			done.Load(), int64(len(jobs)), r.ID,
			r.Metrics.Wall.Round(time.Millisecond),
			float64(r.Metrics.SimCycles)/1e6)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runOne(i, jobs[i], cfg)
				done.Add(1)
				progress(&results[i])
			}
		}()
	}
	wg.Wait()
	if cfg.Progress != nil {
		fmt.Fprintln(cfg.Progress)
	}
	return results
}

// runOne executes a single job, capturing metrics and recovering panics.
// A collector bound to the worker goroutine gathers the registry of every
// machine the job builds; snapshotting them afterwards yields the job's
// metrics and its exact simulated-cycle count, even with concurrent
// neighbors (which the old global-counter delta could not attribute).
// An engine tracker bound the same way lets the runner Close every engine
// the job built once it finishes: a job that abandons an engine mid-run
// (bounded runs, panics) would otherwise leak one goroutine per process
// still parked in it, accumulating across jobs.
func runOne(index int, job Job, cfg Config) (res Result) {
	res = Result{ID: job.ID, Index: index}
	start := time.Now()
	col := metrics.NewCollector()
	release := col.Bind()
	trk := sim.NewTracker()
	releaseTrk := trk.Bind()
	tcol := txtrace.NewCollector(cfg.Trace) // nil when tracing is disabled
	releaseTrace := tcol.Bind()
	defer func() {
		release()
		releaseTrk()
		releaseTrace()
		if p := recover(); p != nil {
			res.Err = fmt.Errorf("job %s panicked: %v", job.ID, p)
			res.Tables = nil
		}
		if regs := col.Registries(); len(regs) > 0 {
			snap := col.Snapshot()
			res.Metrics.Snapshot = snap
			res.Metrics.SimCycles = snap.Counter("sim.cycles")
		}
		res.Trace = tcol.Tracers()
		trk.CloseAll()
		res.Metrics.Wall = time.Since(start)
	}()
	res.Tables = job.Run(cfg.Options)
	res.Metrics.NumTables = len(res.Tables)
	for _, tb := range res.Tables {
		if n := tb.NumRows(); n > res.Metrics.PeakRows {
			res.Metrics.PeakRows = n
		}
	}
	return res
}
