package runner

import (
	"sync"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/stats"
)

// TestExactCycleAttribution: a job's SimCycles must equal the sum of the
// final cycle counts of exactly the machines it built — even with
// concurrent neighbors simulating at the same time, which the retired
// global-counter sampling could not attribute.
func TestExactCycleAttribution(t *testing.T) {
	const n = 6
	var (
		mu   sync.Mutex
		want = make(map[string]uint64)
	)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		id := string(rune('a' + i))
		jobs[i] = Job{ID: id, Run: func(Options) []*stats.Table {
			p := machine.DefaultParams()
			p.Cores = 2
			p.Cache.Cores = 0 // inherit the reduced core count
			p.MemSize = 16 << 20
			m := machine.New(p)
			buf := m.Alloc(4096, 64)
			m.Run(func(c *cpu.Core) {
				for j := 0; j < 50*(i+1); j++ {
					c.Load(buf+memdata.Addr(64*(j%8)), 8)
					c.Compute(3)
				}
			})
			mu.Lock()
			want[id] = uint64(m.Eng.Now())
			mu.Unlock()
			return nil
		}}
	}
	for _, workers := range []int{1, 4} {
		for k := range want {
			delete(want, k)
		}
		results := Run(Config{Workers: workers}, jobs)
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("job %s: %v", r.ID, r.Err)
			}
			if r.Metrics.SimCycles != want[r.ID] {
				t.Fatalf("workers=%d job %s SimCycles = %d, want exactly %d",
					workers, r.ID, r.Metrics.SimCycles, want[r.ID])
			}
			if r.Metrics.SimCycles == 0 {
				t.Fatalf("workers=%d job %s simulated nothing", workers, r.ID)
			}
		}
	}
}

// TestResultSnapshotCarriesComponentMetrics: the per-job snapshot must
// contain metrics from the machine's component namespaces and match what
// the machine itself reports.
func TestResultSnapshotCarriesComponentMetrics(t *testing.T) {
	var loads uint64
	jobs := []Job{{ID: "snap", Run: func(Options) []*stats.Table {
		p := machine.DefaultParams()
		p.Cores = 1
		p.Cache.Cores = 0 // inherit the reduced core count
		p.MemSize = 16 << 20
		m := machine.New(p)
		buf := m.Alloc(4096, 64)
		m.Run(func(c *cpu.Core) {
			for j := 0; j < 32; j++ {
				c.Load(buf+memdata.Addr(64*(j%8)), 8)
			}
		})
		loads = m.Cores[0].Stats.Loads
		return nil
	}}}
	r := Run(Config{Workers: 1}, jobs)[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	snap := r.Metrics.Snapshot
	if snap == nil {
		t.Fatal("job built a machine but Snapshot is nil")
	}
	if got := snap.Counter("cpu0.loads"); got != loads || got == 0 {
		t.Fatalf("snapshot cpu0.loads = %d, want %d (nonzero)", got, loads)
	}
	for _, name := range []string{"l1.misses", "mc0.reads", "dram0.reads", "xcon.messages", "sim.cycles"} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("snapshot missing %q; has %v", name, snap.Names())
		}
	}
}

// TestNoMachineNoSnapshot: jobs that build no machine report no snapshot
// and zero cycles.
func TestNoMachineNoSnapshot(t *testing.T) {
	r := Run(Config{Workers: 1}, []Job{{ID: "empty", Run: func(Options) []*stats.Table { return nil }}})[0]
	if r.Metrics.Snapshot != nil || r.Metrics.SimCycles != 0 {
		t.Fatalf("empty job reported metrics: %+v", r.Metrics)
	}
}
