package runner

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcsquare/internal/stats"
)

// mkJob returns a job emitting a one-row table tagged with its id.
func mkJob(id string, delay time.Duration) Job {
	return Job{ID: id, Run: func(o Options) []*stats.Table {
		time.Sleep(delay)
		tb := stats.NewTable("t", "id")
		tb.AddRow(id)
		return []*stats.Table{tb}
	}}
}

func ids(results []Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Tables[0].Rows()[0][0]
	}
	return out
}

// TestSubmissionOrderPreserved: results come back in submission order even
// when later jobs finish first.
func TestSubmissionOrderPreserved(t *testing.T) {
	jobs := []Job{
		mkJob("a", 30*time.Millisecond),
		mkJob("b", 0),
		mkJob("c", 10*time.Millisecond),
		mkJob("d", 0),
	}
	res := Run(Config{Workers: 4}, jobs)
	got := strings.Join(ids(res), "")
	if got != "abcd" {
		t.Fatalf("result order %q, want abcd", got)
	}
	for i, r := range res {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
	}
}

// TestSerialEqualsParallel: the assembled results are identical for 1 and N
// workers.
func TestSerialEqualsParallel(t *testing.T) {
	var jobs []Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, mkJob(fmt.Sprintf("j%02d", i), time.Duration(i%3)*time.Millisecond))
	}
	render := func(workers int) string {
		var b strings.Builder
		for _, r := range Run(Config{Workers: workers}, jobs) {
			for _, tb := range r.Tables {
				b.WriteString(tb.String())
			}
		}
		return b.String()
	}
	if s, p := render(1), render(8); s != p {
		t.Fatalf("serial and parallel renders differ:\n%s\n---\n%s", s, p)
	}
}

// TestWorkerOneRunsInOrder: with one worker, jobs execute strictly in
// submission order (the serial-reproduction guarantee).
func TestWorkerOneRunsInOrder(t *testing.T) {
	var order []string
	var jobs []Job
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%d", i)
		jobs = append(jobs, Job{ID: id, Run: func(Options) []*stats.Table {
			order = append(order, id) // safe: single worker
			return nil
		}})
	}
	Run(Config{Workers: 1}, jobs)
	for i, id := range order {
		if want := fmt.Sprintf("j%d", i); id != want {
			t.Fatalf("execution order %v", order)
		}
	}
}

// TestPanicRecovered: a panicking job becomes an error result; the other
// jobs still run.
func TestPanicRecovered(t *testing.T) {
	var ran atomic.Int64
	jobs := []Job{
		{ID: "boom", Run: func(Options) []*stats.Table { panic("kaput") }},
		{ID: "ok", Run: func(Options) []*stats.Table { ran.Add(1); return nil }},
	}
	res := Run(Config{Workers: 2}, jobs)
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "kaput") {
		t.Fatalf("panic not captured: %v", res[0].Err)
	}
	if res[0].Tables != nil {
		t.Fatal("panicked job returned tables")
	}
	if res[1].Err != nil || ran.Load() != 1 {
		t.Fatalf("sibling job did not run cleanly: err=%v ran=%d", res[1].Err, ran.Load())
	}
}

// TestOptionsForwarded: the configured options reach every job.
func TestOptionsForwarded(t *testing.T) {
	var sawQuick atomic.Bool
	jobs := []Job{{ID: "q", Run: func(o Options) []*stats.Table {
		sawQuick.Store(o.Quick)
		return nil
	}}}
	Run(Config{Workers: 1, Options: Options{Quick: true}}, jobs)
	if !sawQuick.Load() {
		t.Fatal("options not forwarded to job")
	}
}

// TestMetricsRecorded: wall-clock and table metrics are filled in.
func TestMetricsRecorded(t *testing.T) {
	jobs := []Job{{ID: "m", Run: func(Options) []*stats.Table {
		time.Sleep(5 * time.Millisecond)
		a := stats.NewTable("a", "x")
		a.AddRow(1)
		b := stats.NewTable("b", "x")
		b.AddRow(1)
		b.AddRow(2)
		return []*stats.Table{a, b}
	}}}
	res := Run(Config{Workers: 1}, jobs)
	m := res[0].Metrics
	if m.Wall <= 0 {
		t.Fatalf("wall = %v", m.Wall)
	}
	if m.NumTables != 2 || m.PeakRows != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestProgressLine: the progress writer receives per-job updates and a
// final newline.
func TestProgressLine(t *testing.T) {
	var b syncBuffer
	jobs := []Job{mkJob("p1", 0), mkJob("p2", 0)}
	Run(Config{Workers: 2, Progress: &b}, jobs)
	out := b.String()
	if !strings.Contains(out, "/2]") {
		t.Fatalf("progress output %q lacks job counts", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("progress output %q not newline-terminated", out)
	}
}

// TestEmptyAndOversizedPool: degenerate configurations don't hang.
func TestEmptyAndOversizedPool(t *testing.T) {
	if res := Run(Config{Workers: 4}, nil); len(res) != 0 {
		t.Fatalf("empty job list returned %d results", len(res))
	}
	res := Run(Config{Workers: 64}, []Job{mkJob("solo", 0)})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("oversized pool: %+v", res)
	}
}

// syncBuffer is a mutex-guarded strings.Builder (Progress is written from
// worker goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
