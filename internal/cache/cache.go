// Package cache models the simulated machine's cache hierarchy: per-core
// private L1s and a shared, inclusive L2, with MSI-lite coherence (the L2
// tracks which L1s hold each line and which one holds it dirty), per-core
// MSHRs that bound memory-level parallelism, and a stride prefetcher.
//
// Lines carry real data: a read returns the freshest bytes wherever they
// live (dirty L1, dirty L2, the controller's write queue, or DRAM), which
// lets the (MC)² equivalence tests run end-to-end through the full stack.
package cache

import (
	"fmt"

	"mcsquare/internal/interconnect"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Config sizes the hierarchy. Latencies are in CPU cycles.
type Config struct {
	Cores int

	L1Size int // bytes per core
	L1Ways int
	L2Size int // bytes, shared
	L2Ways int

	L1Latency    sim.Cycle
	L2Latency    sim.Cycle
	XConLat      sim.Cycle // cache <-> memory controller interconnect hop
	MSHRsPerCore int       // outstanding demand misses per core

	Prefetch PrefetchConfig
}

// PrefetchConfig tunes the per-core stride prefetcher.
type PrefetchConfig struct {
	Enabled     bool
	Degree      int // prefetches issued per trigger
	Distance    int // how many strides ahead the window starts
	MaxInflight int // global cap on outstanding prefetches
}

// DefaultConfig mirrors the paper's Table I: 64 KB private L1s and a 2 MB
// shared L2, both with stride prefetchers, for up to 8 cores.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:        cores,
		L1Size:       64 << 10,
		L1Ways:       8,
		L2Size:       2 << 20,
		L2Ways:       16,
		L1Latency:    4,
		L2Latency:    40,
		XConLat:      24,
		MSHRsPerCore: 10,
		Prefetch: PrefetchConfig{
			Enabled:     true,
			Degree:      4,
			Distance:    4,
			MaxInflight: 16,
		},
	}
}

type cacheLine struct {
	tag    memdata.Addr // line address
	valid  bool
	dirty  bool
	data   []byte
	lru    uint64
	shared uint32 // L2 only: bitmask of L1s holding the line
	owner  int8   // L2 only: core whose L1 holds it dirty, or -1
}

// array is one set-associative cache array.
type array struct {
	sets    int
	ways    int
	lines   [][]cacheLine
	lruTick uint64
}

func newArray(size, ways int) *array {
	sets := size / memdata.LineSize / ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d must be a positive power of two", sets))
	}
	a := &array{sets: sets, ways: ways, lines: make([][]cacheLine, sets)}
	for i := range a.lines {
		a.lines[i] = make([]cacheLine, ways)
		for w := range a.lines[i] {
			a.lines[i][w].owner = -1
			a.lines[i][w].data = make([]byte, memdata.LineSize)
		}
	}
	return a
}

func (a *array) set(line memdata.Addr) []cacheLine {
	return a.lines[(uint64(line)>>memdata.LineShift)%uint64(a.sets)]
}

func (a *array) lookup(line memdata.Addr) *cacheLine {
	for i := range a.set(line) {
		cl := &a.set(line)[i]
		if cl.valid && cl.tag == line {
			return cl
		}
	}
	return nil
}

func (a *array) touch(cl *cacheLine) {
	a.lruTick++
	cl.lru = a.lruTick
}

// victim returns the line to evict for a fill of `line`: an invalid way if
// any, else the least recently used.
func (a *array) victim(line memdata.Addr) *cacheLine {
	set := a.set(line)
	var v *cacheLine
	for i := range set {
		cl := &set[i]
		if !cl.valid {
			return cl
		}
		if v == nil || cl.lru < v.lru {
			v = cl
		}
	}
	return v
}

// Stats counts hierarchy activity.
type Stats struct {
	L1Hits, L1Misses    uint64
	L2Hits, L2Misses    uint64
	L1Evictions         uint64
	L2Evictions         uint64
	L2Writebacks        uint64 // dirty L2 evictions sent to memory
	CrossCorePulls      uint64 // dirty line fetched from another core's L1
	MSHRStalls          uint64 // misses deferred on a full MSHR file
	CLWBs               uint64
	CLWBDirty           uint64 // CLWBs that actually wrote data back
	NTStores            uint64
	Invalidations       uint64 // lines dropped by InvalidateRange
	FlushedLines        uint64 // dirty lines written back by FlushRange
	PrefetchesIssued    uint64
	PrefetchesDuplicate uint64 // suppressed: line already present or in flight
	CancelledFills      uint64 // in-flight fills dropped by an invalidation
}

type mshr struct {
	waiters []func(data []byte)
	// cancelled marks the fill stale: an invalidation (MCLAZY destination
	// sweep, NT store) arrived while the miss was in flight. Waiters still
	// receive the data — their access is ordered before the invalidation —
	// but the line must not be installed in any cache.
	cancelled bool
}

// Hierarchy is the full cache system for all cores.
type Hierarchy struct {
	eng   *sim.Engine
	cfg   Config
	l1s   []*array
	l2    *array
	route func(memdata.Addr) *memctrl.Controller
	bus   *interconnect.Bus // cache <-> controller link
	tr    *txtrace.Tracer
	inv   *invariant.Oracles
	// Per-core MSHR file names for occupancy violations, precomputed so
	// the checks allocate nothing.
	mshrNames []string

	mshrs      []map[memdata.Addr]*mshr // per core, demand misses
	mshrUsed   []int
	mshrQueue  []sim.FnQueue // deferred misses per core
	mshrPool   []*mshr       // retired mshr entries for reuse (waiter slices keep capacity)
	pfInflight int
	pfPending  map[memdata.Addr]*pfFlight // prefetches in flight (dedup + cancel)
	pf         []*stridePF

	Stats Stats
}

// New builds the hierarchy; route maps a line address to its controller.
// The cache-to-controller link is a latency-only bus; use NewWithBus to
// share a bandwidth-constrained interconnect.
func New(eng *sim.Engine, cfg Config, route func(memdata.Addr) *memctrl.Controller) *Hierarchy {
	return NewWithBus(eng, cfg, route,
		interconnect.New(eng, interconnect.Config{HopLatency: cfg.XConLat}))
}

// NewWithBus builds the hierarchy over an explicit interconnect.
func NewWithBus(eng *sim.Engine, cfg Config, route func(memdata.Addr) *memctrl.Controller,
	bus *interconnect.Bus) *Hierarchy {
	h := &Hierarchy{
		eng:       eng,
		cfg:       cfg,
		l2:        newArray(cfg.L2Size, cfg.L2Ways),
		route:     route,
		bus:       bus,
		pfPending: map[memdata.Addr]*pfFlight{},
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1s = append(h.l1s, newArray(cfg.L1Size, cfg.L1Ways))
		h.mshrs = append(h.mshrs, map[memdata.Addr]*mshr{})
		h.mshrUsed = append(h.mshrUsed, 0)
		h.mshrQueue = append(h.mshrQueue, sim.FnQueue{})
		h.pf = append(h.pf, &stridePF{})
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Bus returns the cache-to-controller interconnect (stats, studies).
func (h *Hierarchy) Bus() *interconnect.Bus { return h.bus }

// SetTracer attaches the transaction tracer (nil disables).
func (h *Hierarchy) SetTracer(t *txtrace.Tracer) { h.tr = t }

// SetInvariants attaches the machine's invariant oracles (nil disables).
func (h *Hierarchy) SetInvariants(o *invariant.Oracles) {
	h.inv = o
	if o.QueuesOn() {
		h.mshrNames = make([]string, h.cfg.Cores)
		for i := range h.mshrNames {
			h.mshrNames[i] = fmt.Sprintf("core%d.mshr", i)
		}
	}
}

func checkLine(a memdata.Addr) {
	if !memdata.IsLineAligned(a) {
		panic(fmt.Sprintf("cache: unaligned line address %#x", a))
	}
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

// Read fetches the full line at a for the given core. done receives a copy
// of the line's current data.
func (h *Hierarchy) Read(core int, a memdata.Addr, done func(data []byte)) {
	h.ReadTx(core, a, 0, done)
}

// ReadTx is Read carrying a transaction-trace id: traced reads record an
// l1.hit span, or an l1.miss span under which the L2/memory legs nest.
func (h *Hierarchy) ReadTx(core int, a memdata.Addr, tx txtrace.Tx, done func(data []byte)) {
	checkLine(a)
	l1 := h.l1s[core]
	if cl := l1.lookup(a); cl != nil {
		h.Stats.L1Hits++
		if tx != 0 {
			now := uint64(h.eng.Now())
			h.tr.Complete(tx, txtrace.StageL1Hit, uint64(a), now, now+uint64(h.cfg.L1Latency), 0)
		}
		l1.touch(cl)
		data := append([]byte(nil), cl.data...)
		h.eng.After(h.cfg.L1Latency, func() { done(data) })
		return
	}
	h.Stats.L1Misses++
	h.trainPrefetcher(core, a)
	sp := h.tr.Begin(tx, txtrace.StageL1Miss, uint64(a), uint64(h.eng.Now()))
	if sp != 0 {
		inner := done
		done = func(data []byte) {
			h.tr.End(sp, uint64(h.eng.Now()))
			inner(data)
		}
	}
	h.missToL2(core, a, sp, done)
}

// getMSHR returns a recycled mshr entry (waiter slice capacity retained)
// or a fresh one; putMSHR returns it once its fill completes. Misses are
// the steady-state churn of every workload, so this keeps the miss path
// free of per-access allocations after warmup.
func (h *Hierarchy) getMSHR(done func(data []byte)) *mshr {
	if n := len(h.mshrPool); n > 0 {
		m := h.mshrPool[n-1]
		h.mshrPool = h.mshrPool[:n-1]
		m.cancelled = false
		m.waiters = append(m.waiters, done)
		return m
	}
	return &mshr{waiters: []func([]byte){done}}
}

func (h *Hierarchy) putMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = nil
	}
	m.waiters = m.waiters[:0]
	h.mshrPool = append(h.mshrPool, m)
}

// missToL2 handles an L1 miss, merging concurrent misses to the same line
// in the core's MSHR file and bounding outstanding misses.
func (h *Hierarchy) missToL2(core int, a memdata.Addr, tx txtrace.Tx, done func(data []byte)) {
	if m, ok := h.mshrs[core][a]; ok {
		m.waiters = append(m.waiters, done)
		return
	}
	if h.mshrUsed[core] >= h.cfg.MSHRsPerCore {
		h.Stats.MSHRStalls++
		start := uint64(h.eng.Now())
		h.mshrQueue[core].Push(func() {
			if tx != 0 {
				h.tr.Complete(tx, txtrace.StageMSHRWait, uint64(a), start, uint64(h.eng.Now()), 0)
			}
			h.missToL2(core, a, tx, done)
		})
		return
	}
	h.mshrUsed[core]++
	if h.inv.QueuesOn() {
		h.inv.CheckQueue(h.mshrNames[core], h.mshrUsed[core], h.cfg.MSHRsPerCore)
	}
	m := h.getMSHR(done)
	h.mshrs[core][a] = m

	h.eng.After(h.cfg.L1Latency+h.cfg.L2Latency, func() {
		h.l2Access(core, a, tx, m, func(data []byte) {
			if !m.cancelled {
				h.fillL1(core, a, data, false)
			}
			delete(h.mshrs[core], a)
			h.mshrUsed[core]--
			if h.inv.QueuesOn() {
				h.inv.CheckQueue(h.mshrNames[core], h.mshrUsed[core], h.cfg.MSHRsPerCore)
			}
			for _, w := range m.waiters {
				w(append([]byte(nil), data...))
			}
			if h.mshrQueue[core].Len() > 0 {
				h.mshrQueue[core].Pop()()
			}
			// m is unreferenced from here: the map entry is gone and the
			// waiters have run. Recycle it.
			h.putMSHR(m)
		})
	})
}

// l2Access resolves a line at the L2 level: hit (pulling a dirty copy from
// another L1 if needed) or miss to the memory controller. m carries the
// cancellation flag checked before installing the line.
func (h *Hierarchy) l2Access(core int, a memdata.Addr, tx txtrace.Tx, m *mshr, done func(data []byte)) {
	if cl := h.l2.lookup(a); cl != nil {
		h.Stats.L2Hits++
		h.l2.touch(cl)
		if cl.owner >= 0 && int(cl.owner) != core {
			// Another core's L1 holds the dirty copy: pull it into L2.
			h.Stats.CrossCorePulls++
			h.pullDirty(cl)
			if tx != 0 {
				now := uint64(h.eng.Now())
				h.tr.Complete(tx, txtrace.StageL2Hit, uint64(a), now, now+uint64(h.cfg.L1Latency), 0)
			}
			h.eng.After(h.cfg.L1Latency, func() { done(append([]byte(nil), cl.data...)) })
			return
		}
		if tx != 0 {
			now := uint64(h.eng.Now())
			h.tr.Complete(tx, txtrace.StageL2Hit, uint64(a), now, now, 0)
		}
		done(append([]byte(nil), cl.data...))
		return
	}
	h.Stats.L2Misses++
	sp := h.tr.Begin(tx, txtrace.StageL2Miss, uint64(a), uint64(h.eng.Now()))
	mc := h.route(a)
	h.bus.SendTx(memdata.LineSize, sp, func() {
		mc.ReadLineTx(a, sp, func(data []byte) {
			h.bus.SendTx(memdata.LineSize, sp, func() {
				if !m.cancelled {
					h.fillL2(a, data, false)
				}
				h.tr.End(sp, uint64(h.eng.Now()))
				done(data)
			})
		})
	})
}

// pullDirty copies the owner L1's dirty data into the L2 line and marks the
// L1 copy clean (ownership returns to the L2).
func (h *Hierarchy) pullDirty(l2cl *cacheLine) {
	ownerL1 := h.l1s[l2cl.owner]
	if cl := ownerL1.lookup(l2cl.tag); cl != nil && cl.dirty {
		copy(l2cl.data, cl.data)
		cl.dirty = false
	}
	l2cl.dirty = true
	l2cl.owner = -1
}

// ---------------------------------------------------------------------------
// Fills and evictions
// ---------------------------------------------------------------------------

func (h *Hierarchy) fillL1(core int, a memdata.Addr, data []byte, dirty bool) {
	l1 := h.l1s[core]
	cl := l1.lookup(a)
	if cl == nil {
		cl = l1.victim(a)
		if cl.valid {
			h.evictL1(core, cl)
		}
		cl.tag = a
		cl.valid = true
		cl.dirty = false
	}
	copy(cl.data, data)
	if dirty {
		cl.dirty = true
	}
	l1.touch(cl)
	if l2cl := h.l2.lookup(a); l2cl != nil {
		l2cl.shared |= 1 << uint(core)
		if dirty {
			l2cl.owner = int8(core)
		}
	}
}

func (h *Hierarchy) evictL1(core int, cl *cacheLine) {
	h.Stats.L1Evictions++
	l2cl := h.l2.lookup(cl.tag)
	if cl.dirty {
		if l2cl == nil {
			// Inclusive L2 lost the line (should not happen): write through.
			h.writebackToMemory(cl.tag, cl.data)
		} else {
			copy(l2cl.data, cl.data)
			l2cl.dirty = true
		}
	}
	if l2cl != nil {
		l2cl.shared &^= 1 << uint(core)
		if l2cl.owner == int8(core) {
			l2cl.owner = -1
		}
	}
	cl.valid = false
}

func (h *Hierarchy) fillL2(a memdata.Addr, data []byte, dirty bool) {
	cl := h.l2.lookup(a)
	if cl == nil {
		cl = h.l2.victim(a)
		if cl.valid {
			h.evictL2(cl)
		}
		cl.tag = a
		cl.valid = true
		cl.dirty = false
		cl.shared = 0
		cl.owner = -1
	}
	copy(cl.data, data)
	if dirty {
		cl.dirty = true
	}
	h.l2.touch(cl)
}

// evictL2 enforces inclusion: L1 copies are invalidated (collecting a dirty
// copy first) and dirty data is written back to the controller.
func (h *Hierarchy) evictL2(cl *cacheLine) {
	h.Stats.L2Evictions++
	if cl.owner >= 0 {
		h.pullDirty(cl)
	}
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if cl.shared&(1<<uint(coreID)) != 0 {
			if l1cl := h.l1s[coreID].lookup(cl.tag); l1cl != nil {
				l1cl.valid = false
			}
		}
	}
	if cl.dirty {
		h.Stats.L2Writebacks++
		h.writebackToMemory(cl.tag, cl.data)
	}
	cl.valid = false
}

// writebackToMemory sends a full line to its controller through the hooked
// path (the (MC)² engine observes all cache writebacks).
func (h *Hierarchy) writebackToMemory(a memdata.Addr, data []byte) {
	cp := append([]byte(nil), data...)
	mc := h.route(a)
	h.bus.Send(memdata.LineSize, func() { mc.WriteLineOwned(a, cp, func() {}) })
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

// Write stores data at byte offset off within the line at a for the given
// core, acquiring the line exclusively first (RFO on a miss). done fires
// when the store retires into the L1.
func (h *Hierarchy) Write(core int, a memdata.Addr, off uint64, data []byte, done func()) {
	h.WriteTx(core, a, off, data, 0, done)
}

// WriteTx is Write carrying a transaction-trace id.
func (h *Hierarchy) WriteTx(core int, a memdata.Addr, off uint64, data []byte, tx txtrace.Tx, done func()) {
	checkLine(a)
	if off+uint64(len(data)) > memdata.LineSize {
		panic("cache: write crosses a line boundary")
	}
	l1 := h.l1s[core]
	if cl := l1.lookup(a); cl != nil {
		h.Stats.L1Hits++
		if tx != 0 {
			now := uint64(h.eng.Now())
			h.tr.Complete(tx, txtrace.StageL1Hit, uint64(a), now, now+uint64(h.cfg.L1Latency), txtrace.FlagWrite)
		}
		h.invalidateOtherSharers(core, a)
		copy(cl.data[off:], data)
		cl.dirty = true
		l1.touch(cl)
		if l2cl := h.l2.lookup(a); l2cl != nil {
			l2cl.owner = int8(core)
		}
		h.eng.After(h.cfg.L1Latency, done)
		return
	}
	// Read-for-ownership: fetch the line, then apply the store.
	h.Stats.L1Misses++
	h.trainPrefetcher(core, a)
	sp := h.tr.Begin(tx, txtrace.StageL1Miss, uint64(a), uint64(h.eng.Now()))
	h.missToL2(core, a, sp, func(lineData []byte) {
		h.invalidateOtherSharers(core, a)
		cl := h.l1s[core].lookup(a)
		if cl == nil {
			// Evicted between fill and store (tiny cache): refill.
			h.fillL1(core, a, lineData, false)
			cl = h.l1s[core].lookup(a)
		}
		copy(cl.data[off:], data)
		cl.dirty = true
		if l2cl := h.l2.lookup(a); l2cl != nil {
			l2cl.owner = int8(core)
		}
		h.tr.EndFlags(sp, uint64(h.eng.Now()), txtrace.FlagWrite)
		done()
	})
}

func (h *Hierarchy) invalidateOtherSharers(core int, a memdata.Addr) {
	l2cl := h.l2.lookup(a)
	if l2cl == nil {
		return
	}
	if l2cl.owner >= 0 && int(l2cl.owner) != core {
		h.pullDirty(l2cl)
	}
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if coreID == core {
			continue
		}
		if l2cl.shared&(1<<uint(coreID)) != 0 {
			if l1cl := h.l1s[coreID].lookup(a); l1cl != nil {
				l1cl.valid = false
			}
			l2cl.shared &^= 1 << uint(coreID)
		}
	}
	l2cl.shared |= 1 << uint(core)
}

// WriteLineNT performs a non-temporal full-line store: caches are bypassed
// (any cached copies are discarded — the line is fully overwritten) and the
// write goes straight to the controller, avoiding the RFO memory read.
func (h *Hierarchy) WriteLineNT(core int, a memdata.Addr, data []byte, done func()) {
	h.WriteLineNTTx(core, a, data, 0, done)
}

// WriteLineNTTx is WriteLineNT carrying a transaction-trace id.
func (h *Hierarchy) WriteLineNTTx(core int, a memdata.Addr, data []byte, tx txtrace.Tx, done func()) {
	checkLine(a)
	if len(data) != memdata.LineSize {
		panic("cache: non-temporal store must write a full line")
	}
	h.Stats.NTStores++
	h.dropLine(a)
	cp := append([]byte(nil), data...)
	mc := h.route(a)
	h.eng.After(h.cfg.L1Latency, func() {
		h.bus.SendTx(memdata.LineSize, tx, func() { mc.WriteLineOwnedTx(a, cp, tx, done) })
	})
}

type pfFlight struct {
	cancelled bool
}

// cancelInflightFills marks every in-flight demand miss and prefetch of the
// line stale so it will not be installed when its data returns.
func (h *Hierarchy) cancelInflightFills(a memdata.Addr) {
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if m, ok := h.mshrs[coreID][a]; ok {
			m.cancelled = true
			h.Stats.CancelledFills++
		}
	}
	if f, ok := h.pfPending[a]; ok && !f.cancelled {
		f.cancelled = true
		h.Stats.CancelledFills++
	}
}

// dropLine removes the line from every cache without writing it back.
func (h *Hierarchy) dropLine(a memdata.Addr) {
	h.cancelInflightFills(a)
	if l2cl := h.l2.lookup(a); l2cl != nil {
		for coreID := 0; coreID < h.cfg.Cores; coreID++ {
			if l1cl := h.l1s[coreID].lookup(a); l1cl != nil {
				l1cl.valid = false
			}
		}
		l2cl.valid = false
	} else {
		for coreID := 0; coreID < h.cfg.Cores; coreID++ {
			if l1cl := h.l1s[coreID].lookup(a); l1cl != nil {
				l1cl.valid = false
			}
		}
	}
}

// ---------------------------------------------------------------------------
// CLWB / invalidate / flush
// ---------------------------------------------------------------------------

// CLWB writes the line back to memory if it is dirty anywhere in the
// hierarchy, keeping a clean copy cached (Intel CLWB semantics). done fires
// when the write has been accepted by the controller (or immediately for
// clean/absent lines).
func (h *Hierarchy) CLWB(core int, a memdata.Addr, done func()) {
	h.CLWBTx(core, a, 0, done)
}

// CLWBTx is CLWB carrying a transaction-trace id.
func (h *Hierarchy) CLWBTx(core int, a memdata.Addr, tx txtrace.Tx, done func()) {
	checkLine(a)
	h.Stats.CLWBs++
	var data []byte
	// Freshest copy: dirty L1 anywhere, else dirty L2.
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if cl := h.l1s[coreID].lookup(a); cl != nil && cl.dirty {
			data = append([]byte(nil), cl.data...)
			cl.dirty = false
			break
		}
	}
	l2cl := h.l2.lookup(a)
	if data == nil && l2cl != nil && l2cl.dirty {
		data = append([]byte(nil), l2cl.data...)
	}
	if data == nil {
		// Clean or absent: still costs the full L1 + L2 probe.
		h.eng.After(h.cfg.L1Latency+h.cfg.L2Latency, done)
		return
	}
	h.Stats.CLWBDirty++
	if l2cl != nil {
		copy(l2cl.data, data)
		l2cl.dirty = false
		l2cl.owner = -1
	}
	mc := h.route(a)
	h.eng.After(h.cfg.L1Latency+h.cfg.L2Latency, func() {
		h.bus.SendTx(memdata.LineSize, tx, func() { mc.WriteLineOwnedTx(a, data, tx, done) })
	})
}

// InvalidateRange drops every cached line in r without writeback and
// returns how many lines were found. MCLAZY uses this for destination
// buffers: their contents are about to be redefined by the lazy copy.
func (h *Hierarchy) InvalidateRange(r memdata.Range) int {
	found := 0
	for _, l := range r.Lines() {
		// Fills racing this invalidation must not install stale data, even
		// when the line is not cached yet (e.g. a prefetch in flight).
		h.cancelInflightFills(l)
		present := false
		if h.l2.lookup(l) != nil {
			present = true
		}
		for coreID := 0; coreID < h.cfg.Cores && !present; coreID++ {
			if h.l1s[coreID].lookup(l) != nil {
				present = true
			}
		}
		if present {
			h.dropLine(l)
			found++
			h.Stats.Invalidations++
		}
	}
	return found
}

// FlushRange writes back every dirty line of r to memory (keeping clean
// copies), calling done when all writebacks are accepted. It reports how
// many lines were dirty. This is the "ranged writeback" the paper suggests
// as future work (§V-A1); the simulated kernel uses it for huge pages.
func (h *Hierarchy) FlushRange(r memdata.Range, done func()) int {
	return h.FlushRangeTx(r, 0, done)
}

// FlushRangeTx is FlushRange carrying a transaction-trace id.
func (h *Hierarchy) FlushRangeTx(r memdata.Range, tx txtrace.Tx, done func()) int {
	dirty := 0
	remaining := 1
	complete := func() {
		remaining--
		if remaining == 0 {
			done()
		}
	}
	for _, l := range r.Lines() {
		var data []byte
		for coreID := 0; coreID < h.cfg.Cores; coreID++ {
			if cl := h.l1s[coreID].lookup(l); cl != nil && cl.dirty {
				data = append([]byte(nil), cl.data...)
				cl.dirty = false
				break
			}
		}
		l2cl := h.l2.lookup(l)
		if data == nil && l2cl != nil && l2cl.dirty {
			data = append([]byte(nil), l2cl.data...)
		}
		if data == nil {
			continue
		}
		if l2cl != nil {
			copy(l2cl.data, data)
			l2cl.dirty = false
			l2cl.owner = -1
		}
		dirty++
		h.Stats.FlushedLines++
		remaining++
		mc := h.route(l)
		lcopy := l
		h.bus.SendTx(memdata.LineSize, tx, func() { mc.WriteLineOwnedTx(lcopy, data, tx, complete) })
	}
	h.eng.After(h.cfg.L2Latency, complete)
	return dirty
}

// ---------------------------------------------------------------------------
// Stride prefetcher
// ---------------------------------------------------------------------------

type stridePF struct {
	lastAddr   memdata.Addr
	stride     int64
	confidence int
}

// trainPrefetcher observes a demand miss and issues prefetches into the L2
// once a stable stride is seen.
func (h *Hierarchy) trainPrefetcher(core int, a memdata.Addr) {
	if !h.cfg.Prefetch.Enabled {
		return
	}
	pf := h.pf[core]
	delta := int64(a) - int64(pf.lastAddr)
	if delta == pf.stride && delta != 0 {
		pf.confidence++
	} else {
		pf.stride = delta
		pf.confidence = 0
	}
	pf.lastAddr = a
	if pf.confidence < 2 || pf.stride == 0 {
		return
	}
	for i := 0; i < h.cfg.Prefetch.Degree; i++ {
		target := int64(a) + pf.stride*int64(h.cfg.Prefetch.Distance+i)
		if target < 0 {
			continue
		}
		h.issuePrefetch(memdata.Addr(target))
	}
}

func (h *Hierarchy) issuePrefetch(a memdata.Addr) {
	if h.pfInflight >= h.cfg.Prefetch.MaxInflight {
		return
	}
	if h.l2.lookup(a) != nil || h.pfPending[a] != nil {
		h.Stats.PrefetchesDuplicate++
		return
	}
	h.Stats.PrefetchesIssued++
	f := &pfFlight{}
	h.pfPending[a] = f
	h.pfInflight++
	mc := h.route(a)
	h.bus.Send(memdata.LineSize, func() {
		mc.ReadLine(a, func(data []byte) {
			h.bus.Send(memdata.LineSize, func() {
				delete(h.pfPending, a)
				h.pfInflight--
				if !f.cancelled {
					h.fillL2(a, data, false)
				}
			})
		})
	})
}

// ---------------------------------------------------------------------------
// Test support
// ---------------------------------------------------------------------------

// Peek returns the freshest cached copy of the line at a and where it was
// found ("l1", "l2"), or nil and "" when uncached. Test-only helper; it has
// no timing effect.
func (h *Hierarchy) Peek(a memdata.Addr) ([]byte, string) {
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if cl := h.l1s[coreID].lookup(a); cl != nil && cl.dirty {
			return append([]byte(nil), cl.data...), "l1"
		}
	}
	if cl := h.l2.lookup(a); cl != nil {
		return append([]byte(nil), cl.data...), "l2"
	}
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		if cl := h.l1s[coreID].lookup(a); cl != nil {
			return append([]byte(nil), cl.data...), "l1"
		}
	}
	return nil, ""
}

// CheckInclusion verifies that every valid L1 line is present in the L2.
// Test-only invariant check.
func (h *Hierarchy) CheckInclusion() error {
	for coreID := 0; coreID < h.cfg.Cores; coreID++ {
		for _, set := range h.l1s[coreID].lines {
			for i := range set {
				cl := &set[i]
				if cl.valid && h.l2.lookup(cl.tag) == nil {
					return fmt.Errorf("cache: L1[%d] line %#x not in L2", coreID, cl.tag)
				}
			}
		}
	}
	return nil
}
