package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"mcsquare/internal/dram"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	phys *memdata.Physical
	mc   *memctrl.Controller
	h    *Hierarchy
}

func newRig(cores int) *rig {
	eng := sim.NewEngine()
	phys := memdata.NewPhysical(1 << 24)
	mc := memctrl.New(0, eng, memctrl.DefaultConfig(), dram.NewChannel(dram.DDR4Config()), phys)
	h := New(eng, DefaultConfig(cores), func(memdata.Addr) *memctrl.Controller { return mc })
	return &rig{eng: eng, phys: phys, mc: mc, h: h}
}

func (r *rig) fill(seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	buf := make([]byte, r.phys.Size())
	rnd.Read(buf)
	r.phys.Write(0, buf)
}

// read synchronously reads a line in a fresh engine run.
func (r *rig) read(core int, a memdata.Addr) []byte {
	var out []byte
	r.eng.After(0, func() { r.h.Read(core, a, func(d []byte) { out = d }) })
	r.eng.Drain()
	return out
}

func (r *rig) write(core int, a memdata.Addr, off uint64, data []byte) {
	r.eng.After(0, func() { r.h.Write(core, a, off, data, func() {}) })
	r.eng.Drain()
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(1)
	r.fill(1)
	want := r.phys.ReadLine(4096)
	got := r.read(0, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("miss data mismatch")
	}
	if r.h.Stats.L1Misses != 1 || r.h.Stats.L2Misses != 1 {
		t.Fatalf("stats: %+v", r.h.Stats)
	}
	got2 := r.read(0, 4096)
	if !bytes.Equal(got2, want) {
		t.Fatal("hit data mismatch")
	}
	if r.h.Stats.L1Hits != 1 {
		t.Fatalf("expected L1 hit, stats: %+v", r.h.Stats)
	}
}

func TestWriteReadYourOwn(t *testing.T) {
	r := newRig(1)
	r.fill(2)
	r.write(0, 4096, 10, []byte{1, 2, 3})
	got := r.read(0, 4096)
	if got[10] != 1 || got[11] != 2 || got[12] != 3 {
		t.Fatal("read-your-writes violated")
	}
	// Memory must be stale until eviction (write-back).
	mem := r.phys.ReadLine(4096)
	if mem[10] == 1 && mem[11] == 2 && mem[12] == 3 {
		t.Skip("write coincided with memory content")
	}
}

func TestCrossCoreCoherence(t *testing.T) {
	r := newRig(2)
	r.fill(3)
	r.write(0, 8192, 0, []byte{0xAA})
	// Core 1 must observe core 0's dirty data.
	got := r.read(1, 8192)
	if got[0] != 0xAA {
		t.Fatalf("core 1 read stale data: %#x", got[0])
	}
	if r.h.Stats.CrossCorePulls == 0 {
		t.Fatal("no cross-core pull recorded")
	}
	// Core 1 writes; core 0 must see it.
	r.write(1, 8192, 1, []byte{0xBB})
	got0 := r.read(0, 8192)
	if got0[0] != 0xAA || got0[1] != 0xBB {
		t.Fatalf("core 0 missed core 1's write: %x", got0[:2])
	}
	if err := r.h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	r := newRig(1)
	r.fill(4)
	// Dirty a line, then stream enough lines through the same L2 set to
	// evict it. L2: 2MB/16 ways -> 2048 sets; same set stride = 2048*64 = 128KB.
	a := memdata.Addr(0)
	r.write(0, a, 0, []byte{0xCC})
	setStride := uint64(r.h.l2.sets * memdata.LineSize)
	for i := uint64(1); i <= uint64(r.h.cfg.L2Ways)+2; i++ {
		r.read(0, memdata.Addr(i*setStride))
	}
	r.eng.Drain()
	if r.phys.ReadLine(a)[0] != 0xCC {
		t.Fatal("dirty eviction lost data")
	}
	if r.h.Stats.L2Writebacks == 0 {
		t.Fatal("no L2 writeback recorded")
	}
	if err := r.h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestCLWB(t *testing.T) {
	r := newRig(1)
	r.fill(5)
	a := memdata.Addr(4096)
	r.write(0, a, 0, []byte{0xDD})
	r.eng.After(0, func() { r.h.CLWB(0, a, func() {}) })
	r.eng.Drain()
	if r.phys.ReadLine(a)[0] != 0xDD {
		t.Fatal("CLWB did not write back")
	}
	// Line stays cached (clean): next read is an L1 hit.
	h0 := r.h.Stats.L1Hits
	r.read(0, a)
	if r.h.Stats.L1Hits != h0+1 {
		t.Fatal("CLWB evicted the line")
	}
	// CLWB of a clean line writes nothing.
	w0 := r.h.Stats.CLWBDirty
	r.eng.After(0, func() { r.h.CLWB(0, a, func() {}) })
	r.eng.Drain()
	if r.h.Stats.CLWBDirty != w0 {
		t.Fatal("clean CLWB wrote back")
	}
}

func TestNTStoreBypassesCache(t *testing.T) {
	r := newRig(1)
	r.fill(6)
	a := memdata.Addr(4096)
	r.read(0, a) // cache it
	data := bytes.Repeat([]byte{0x77}, memdata.LineSize)
	r.eng.After(0, func() { r.h.WriteLineNT(0, a, data, func() {}) })
	r.eng.Drain()
	if r.phys.ReadLine(a)[0] != 0x77 {
		t.Fatal("NT store did not reach memory")
	}
	// Cached copy must have been dropped; next read misses.
	m0 := r.h.Stats.L1Misses
	got := r.read(0, a)
	if r.h.Stats.L1Misses != m0+1 {
		t.Fatal("NT store left a stale cached copy")
	}
	if got[0] != 0x77 {
		t.Fatal("read after NT store returned stale data")
	}
}

func TestInvalidateRangeDropsWithoutWriteback(t *testing.T) {
	r := newRig(1)
	r.fill(7)
	a := memdata.Addr(4096)
	old := r.phys.ReadLine(a)
	r.write(0, a, 0, []byte{0x99})
	n := 0
	r.eng.After(0, func() {
		n = r.h.InvalidateRange(memdata.Range{Start: a, Size: memdata.LineSize})
	})
	r.eng.Drain()
	if n != 1 {
		t.Fatalf("invalidated %d lines", n)
	}
	// The dirty data is discarded: memory keeps the old value.
	if !bytes.Equal(r.phys.ReadLine(a), old) {
		t.Fatal("invalidate wrote back dirty data")
	}
}

func TestFlushRange(t *testing.T) {
	r := newRig(1)
	r.fill(8)
	base := memdata.Addr(8192)
	for i := uint64(0); i < 4; i++ {
		r.write(0, base+memdata.Addr(i*memdata.LineSize), 0, []byte{byte(0x10 + i)})
	}
	done := false
	var dirty int
	r.eng.After(0, func() {
		dirty = r.h.FlushRange(memdata.Range{Start: base, Size: 4 * memdata.LineSize}, func() { done = true })
	})
	r.eng.Drain()
	if !done {
		t.Fatal("FlushRange completion never fired")
	}
	if dirty != 4 {
		t.Fatalf("flushed %d dirty lines, want 4", dirty)
	}
	for i := uint64(0); i < 4; i++ {
		if r.phys.ReadLine(base + memdata.Addr(i*memdata.LineSize))[0] != byte(0x10+i) {
			t.Fatalf("line %d not flushed", i)
		}
	}
}

func TestMSHRMergesAndBounds(t *testing.T) {
	r := newRig(1)
	r.fill(9)
	hits := 0
	r.eng.After(0, func() {
		// Two concurrent reads of the same line: one miss, merged waiter.
		r.h.Read(0, 0, func([]byte) { hits++ })
		r.h.Read(0, 0, func([]byte) { hits++ })
		// Plus more misses than MSHRs.
		for i := 1; i <= r.h.cfg.MSHRsPerCore+5; i++ {
			r.h.Read(0, memdata.Addr(i*4096), func([]byte) { hits++ })
		}
	})
	r.eng.Drain()
	if hits != 2+r.h.cfg.MSHRsPerCore+5 {
		t.Fatalf("completed %d reads", hits)
	}
	if r.h.Stats.MSHRStalls == 0 {
		t.Fatal("no MSHR stalls with over-capacity misses")
	}
	if r.h.Stats.L2Misses >= r.h.Stats.L1Misses {
		t.Fatalf("merge failed: L1 misses %d, L2 misses %d", r.h.Stats.L1Misses, r.h.Stats.L2Misses)
	}
}

func TestStridePrefetcher(t *testing.T) {
	r := newRig(1)
	r.fill(10)
	// Sequential stream: after training, prefetches should land in L2 so
	// later lines are L2 hits instead of misses.
	for i := 0; i < 64; i++ {
		r.read(0, memdata.Addr(i*memdata.LineSize))
	}
	if r.h.Stats.PrefetchesIssued == 0 {
		t.Fatal("no prefetches issued on a sequential stream")
	}
	if r.h.Stats.L2Hits == 0 {
		t.Fatal("prefetches never produced L2 hits")
	}
	// Disabled prefetcher issues nothing.
	r2 := newRig(1)
	r2.h.cfg.Prefetch.Enabled = false
	r2.fill(10)
	for i := 0; i < 64; i++ {
		r2.read(0, memdata.Addr(i*memdata.LineSize))
	}
	if r2.h.Stats.PrefetchesIssued != 0 {
		t.Fatal("disabled prefetcher issued prefetches")
	}
}

func TestPrefetchLatencyBenefit(t *testing.T) {
	run := func(enabled bool) sim.Cycle {
		r := newRig(1)
		r.h.cfg.Prefetch.Enabled = enabled
		r.fill(11)
		var doneAt sim.Cycle
		r.eng.Go("stream", func(p *sim.Proc) {
			for i := 0; i < 256; i++ {
				ok := false
				r.h.Read(0, memdata.Addr(i*memdata.LineSize), func([]byte) {
					ok = true
					if !p.Finished() {
						p.Resume()
					}
				})
				for !ok {
					p.Suspend()
				}
			}
			doneAt = p.Now()
		})
		r.eng.Drain()
		return doneAt
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Fatalf("prefetching did not help: with=%d without=%d", with, without)
	}
}

// Randomized multi-core coherence fuzz: reads and writes from several cores
// over a small colliding region must always observe the freshest value.
func TestRandomCoherence(t *testing.T) {
	r := newRig(4)
	r.fill(12)
	rnd := rand.New(rand.NewSource(99))
	shadow := make(map[memdata.Addr][]byte)
	lineOf := func() memdata.Addr { return memdata.Addr(rnd.Intn(64)) * memdata.LineSize }

	for step := 0; step < 800; step++ {
		core := rnd.Intn(4)
		a := lineOf()
		if rnd.Intn(2) == 0 {
			b := byte(rnd.Intn(256))
			off := uint64(rnd.Intn(memdata.LineSize))
			r.write(core, a, off, []byte{b})
			want, ok := shadow[a]
			if !ok {
				want = r.phys.ReadLine(a)
				// The physical line may have changed after earlier evictions;
				// reading through the cache gives the truth.
				want = r.read(core, a)
			}
			want[off] = b
			shadow[a] = want
		} else {
			got := r.read(core, a)
			if want, ok := shadow[a]; ok && !bytes.Equal(got, want) {
				t.Fatalf("step %d: core %d line %#x mismatch", step, core, a)
			}
		}
	}
	if err := r.h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}
