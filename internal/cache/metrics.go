package cache

import "mcsquare/internal/metrics"

// PublishMetrics registers the hierarchy's counters, split into the l1,
// l2 and cache (whole-hierarchy operations) namespaces. Called by the
// machine with its root scope.
func (h *Hierarchy) PublishMetrics(s metrics.Scope) {
	l1 := s.Scope("l1")
	l1.Counter("hits", &h.Stats.L1Hits)
	l1.Counter("misses", &h.Stats.L1Misses)
	l1.Counter("evictions", &h.Stats.L1Evictions)
	l1.Counter("mshr_stalls", &h.Stats.MSHRStalls)

	l2 := s.Scope("l2")
	l2.Counter("hits", &h.Stats.L2Hits)
	l2.Counter("misses", &h.Stats.L2Misses)
	l2.Counter("evictions", &h.Stats.L2Evictions)
	l2.Counter("writebacks", &h.Stats.L2Writebacks)
	l2.Counter("cross_core_pulls", &h.Stats.CrossCorePulls)

	ca := s.Scope("cache")
	ca.Counter("clwbs", &h.Stats.CLWBs)
	ca.Counter("clwb_dirty", &h.Stats.CLWBDirty)
	ca.Counter("nt_stores", &h.Stats.NTStores)
	ca.Counter("invalidations", &h.Stats.Invalidations)
	ca.Counter("flushed_lines", &h.Stats.FlushedLines)
	ca.Counter("prefetches_issued", &h.Stats.PrefetchesIssued)
	ca.Counter("prefetches_duplicate", &h.Stats.PrefetchesDuplicate)
	ca.Counter("cancelled_fills", &h.Stats.CancelledFills)
}
