// Package dram models the timing of a DDR4-style memory channel: banks with
// row buffers, activate/precharge/CAS latencies, and a shared data bus.
//
// The model is deliberately at the "bank busy-until" level rather than
// command-cycle level: each access computes its completion time from the
// bank's row-buffer state and the data bus occupancy. That captures the
// three effects the paper's results depend on — row hits being much cheaper
// than row misses, bank-level parallelism, and bandwidth saturation under
// multi-threaded load — without simulating individual DDR commands.
package dram

import (
	"fmt"

	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// Config holds the timing and geometry parameters of one channel. All
// latencies are in CPU cycles (the paper's system clocks CPUs at 4 GHz, so
// 1 ns = 4 cycles).
type Config struct {
	Banks   int    // banks per channel
	RowSize uint64 // bytes per row buffer ("page size" in DRAM terms)

	TRCD sim.Cycle // activate: row-to-column delay
	TRP  sim.Cycle // precharge
	TCAS sim.Cycle // column access
	TBL  sim.Cycle // data burst on the bus (one cacheline)
	TCCD sim.Cycle // column-to-column delay: row hits pipeline at this rate
	TWR  sim.Cycle // write recovery after a write burst
}

// DDR4Config returns timings resembling DDR4-3200 seen from a 4 GHz core:
// tRCD = tRP = tCAS ≈ 14 ns (56 cycles), 64-byte burst ≈ 2.5 ns (10 cycles).
func DDR4Config() Config {
	return Config{
		Banks:   16,
		RowSize: 8 << 10,
		TRCD:    56,
		TRP:     56,
		TCAS:    56,
		TBL:     10,
		TCCD:    8,
		TWR:     60,
	}
}

type bank struct {
	openRow   int64 // -1 when no row is open
	busyUntil sim.Cycle
	// wrUntil is when write recovery (tWR) completes: reads and row
	// changes must wait for it, but further writes to the open row
	// pipeline at tCCD.
	wrUntil sim.Cycle
}

// Channel is one DRAM channel: a set of banks behind a shared data bus.
// Access is the only timed operation; it mutates bank and bus state.
type Channel struct {
	cfg      Config
	banks    []bank
	busUntil sim.Cycle

	// Stats
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
}

// NewChannel creates a channel with all banks idle and no open rows.
func NewChannel(cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.RowSize == 0 {
		panic(fmt.Sprintf("dram: invalid config %+v", cfg))
	}
	ch := &Channel{cfg: cfg, banks: make([]bank, cfg.Banks)}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// Config returns the channel's configuration.
func (c *Channel) Config() Config { return c.cfg }

// mapAddr decomposes a channel-local address into (bank, row). The layout is
// [row | bank | column]: consecutive cachelines share a row (sequential
// streams get row hits) and consecutive rows map to different banks. Higher
// row bits are XOR-folded into the bank index (bank hashing), so power-of-
// two strides do not all collide in one bank — standard controller practice.
func (c *Channel) mapAddr(a memdata.Addr) (bankIdx int, row int64) {
	rowID := uint64(a) / c.cfg.RowSize
	banks := uint64(c.cfg.Banks)
	hash := rowID
	if banks > 1 { // folding by 1 would never terminate
		for h := rowID / banks; h != 0; h /= banks {
			hash ^= h
		}
	}
	bankIdx = int(hash % banks)
	row = int64(rowID / banks)
	return bankIdx, row
}

// Access performs a cacheline read or write beginning no earlier than `now`
// and returns the cycle at which the data burst completes. The returned
// time includes bank conflicts, row activate/precharge, and bus contention.
func (c *Channel) Access(now sim.Cycle, a memdata.Addr, write bool) sim.Cycle {
	bi, row := c.mapAddr(a)
	b := &c.banks[bi]

	start := max(now, b.busyUntil)
	var lat sim.Cycle
	switch {
	case b.openRow == row:
		lat = c.cfg.TCAS
		c.RowHits++
		// Reads after writes to the same bank wait out write recovery;
		// back-to-back writes to the open row pipeline at tCCD.
		if !write {
			start = max(start, b.wrUntil)
		}
	case b.openRow == -1:
		lat = c.cfg.TRCD + c.cfg.TCAS
		c.RowMisses++
		start = max(start, b.wrUntil)
	default:
		lat = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		c.RowMisses++
		start = max(start, b.wrUntil) // precharge waits for tWR
	}
	b.openRow = row
	lat += skewTCAS // 0 in normal builds; see skew_off.go

	// The data burst needs the shared bus; serialize bursts.
	burstStart := max(start+lat, c.busUntil)
	done := burstStart + c.cfg.TBL
	c.busUntil = done

	// Column accesses to an open row pipeline: the bank can accept the next
	// CAS after tCCD, so a sequential stream is bus-limited, not
	// CAS-latency-limited.
	b.busyUntil = burstStart + c.cfg.TCCD
	if write {
		b.wrUntil = done + c.cfg.TWR
		c.Writes++
	} else {
		c.Reads++
	}
	return done
}

// ResetStats zeroes the channel's counters without touching timing state.
func (c *Channel) ResetStats() {
	c.Reads, c.Writes, c.RowHits, c.RowMisses = 0, 0, 0, 0
}
