package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcsquare/internal/memdata"
)

// TestMapAddrLayout pins the documented [row | bank | column] decomposition
// for the default DDR4 geometry (16 banks, 8 KB rows) with literal values.
// The conformance oracles (internal/conformance) and the figure goldens
// both assume exactly this layout; changing it is a breaking change and
// must show up here first.
func TestMapAddrLayout(t *testing.T) {
	c := NewChannel(DDR4Config())
	cases := []struct {
		addr memdata.Addr
		bank int
		row  int64
	}{
		{0x0000, 0, 0},       // first byte of rowID 0
		{0x1FFF, 0, 0},       // last byte of rowID 0: same row and bank
		{0x2000, 1, 0},       // rowID 1: next bank, same physical row
		{0x2040, 1, 0},       // second cacheline of rowID 1
		{15 * 0x2000, 15, 0}, // rowID 15: last bank of the first group
		// rowID 16: row bits fold into the bank hash (16^1 = 17 → bank 1).
		{16 * 0x2000, 1, 1},
		// rowID 17 folds to bank 0 (17^1 = 16): the XOR fold permutes
		// banks within each group rather than repeating 0,1,2,...
		{17 * 0x2000, 0, 1},
		{255 * 0x2000, 0, 15}, // 255^15 = 240 → bank 0
		// rowID 256 folds twice: 256 ^ 16 ^ 1 = 273 → bank 1.
		{256 * 0x2000, 1, 16},
	}
	for _, tc := range cases {
		bank, row := c.mapAddr(tc.addr)
		if bank != tc.bank || row != tc.row {
			t.Errorf("mapAddr(%#x) = (bank %d, row %d), want (bank %d, row %d)",
				tc.addr, bank, row, tc.bank, tc.row)
		}
	}
}

// TestMapAddrSingleBank covers the Banks=1 degenerate geometry: everything
// maps to bank 0 and the row is the raw rowID. (The XOR fold must be
// skipped here — folding by 1 would never terminate.)
func TestMapAddrSingleBank(t *testing.T) {
	cfg := DDR4Config()
	cfg.Banks = 1
	c := NewChannel(cfg)
	for _, rowID := range []int64{0, 1, 7, 1 << 20} {
		bank, row := c.mapAddr(memdata.Addr(rowID) * memdata.Addr(cfg.RowSize))
		if bank != 0 || row != rowID {
			t.Errorf("mapAddr(rowID %d) = (bank %d, row %d), want (0, %d)",
				rowID, bank, row, rowID)
		}
	}
}

// TestMapAddrCollisionFree is the property behind bank-level parallelism
// for sequential streams: within any aligned group of Banks consecutive
// rowIDs, the bank indices are a permutation of 0..Banks-1 (the XOR fold
// only rewires the group, it never doubles up a bank), and the physical
// row is constant across the group.
func TestMapAddrCollisionFree(t *testing.T) {
	prop := func(bankSel uint8, group uint32) bool {
		cfg := DDR4Config()
		cfg.Banks = 2 << (bankSel % 5) // 2..32
		c := NewChannel(cfg)
		base := uint64(group%(1<<20)) * uint64(cfg.Banks)
		seen := make(map[int]bool, cfg.Banks)
		for j := uint64(0); j < uint64(cfg.Banks); j++ {
			bank, row := c.mapAddr(memdata.Addr((base + j) * cfg.RowSize))
			if bank < 0 || bank >= cfg.Banks || seen[bank] || row != int64(base/uint64(cfg.Banks)) {
				return false
			}
			seen[bank] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
