//go:build !mcsq_skew

package dram

import "mcsquare/internal/sim"

// skewTCAS is the deliberate timing mutation behind the conformance
// harness's mutation-canary CI step. In normal builds it is the constant 0
// and the compiler eliminates it from Access entirely. Building with
// -tags mcsq_skew (skew_on.go) silently lengthens every column access
// while Config still reports the nominal tCAS — exactly the kind of model
// drift the closed-form oracles in internal/conformance must detect. CI
// asserts that the conformance suite FAILS under the skewed build.
const skewTCAS sim.Cycle = 0
