//go:build mcsq_skew

package dram

import "mcsquare/internal/sim"

// Mutation-canary build: every column access takes 9 cycles longer than
// the tCAS the Config reports. See skew_off.go for why this exists. The
// value is deliberately small — well under any single timing parameter —
// so only genuinely tight oracles catch it.
const skewTCAS sim.Cycle = 9
