package dram

// Per-line checksum ECC model. Real DDR4 ECC is a (72,64) Hamming SECDED
// code per 8-byte beat; for fault-injection purposes all we need is a
// cheap detector that is guaranteed to catch any single-bit upset in a
// 64-byte line, so the memory controller can model the detect → re-read
// retry path. A position-weighted sum does that: flipping bit b of byte i
// changes the checksum by ±(i+1)·2^b mod 2^64, which is never zero for a
// single flip (i+1 ≤ 64, so the term fits in 70 bits and its low 64 bits
// cannot all cancel for one term).

// LineChecksum returns the detector checksum of a memory line.
func LineChecksum(line []byte) uint64 {
	var sum uint64
	for i, b := range line {
		sum += uint64(i+1) * uint64(b)
	}
	return sum
}

// CorruptBit flips one bit (0 ≤ bit < 8·len(line)) in a copy of line,
// modeling a transient single-bit read upset. The input is not modified.
func CorruptBit(line []byte, bit uint64) []byte {
	out := append([]byte(nil), line...)
	out[bit>>3] ^= 1 << (bit & 7)
	return out
}
