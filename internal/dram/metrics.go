package dram

import "mcsquare/internal/metrics"

// PublishMetrics registers the channel's counters under the given scope
// (the machine uses "dram<i>").
func (c *Channel) PublishMetrics(s metrics.Scope) {
	s.Counter("reads", &c.Reads)
	s.Counter("writes", &c.Writes)
	s.Counter("row_hits", &c.RowHits)
	s.Counter("row_misses", &c.RowMisses)
}
