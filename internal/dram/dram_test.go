package dram

import (
	"testing"
	"testing/quick"

	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := DDR4Config()
	c := NewChannel(cfg)
	// First access to a closed bank: activate + CAS + burst.
	d1 := c.Access(0, 0, false)
	if d1 != cfg.TRCD+cfg.TCAS+cfg.TBL {
		t.Fatalf("cold access done at %d", d1)
	}
	// Same row, after the bank is free: row hit, CAS + burst only.
	d2 := c.Access(d1, 64, false)
	if d2-d1 != cfg.TCAS+cfg.TBL {
		t.Fatalf("row hit took %d cycles, want %d", d2-d1, cfg.TCAS+cfg.TBL)
	}
	if c.RowHits != 1 || c.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d", c.RowHits, c.RowMisses)
	}
	// Different row, same bank: precharge + activate + CAS. With bank
	// hashing, rowID 17 maps to bank (17^1)%16 = 0, same as rowID 0.
	rowStride := memdata.Addr(cfg.RowSize * 17)
	if b, _ := c.mapAddr(rowStride); b != 0 {
		t.Fatalf("test assumption broken: rowID 17 maps to bank %d", b)
	}
	d3 := c.Access(d2, rowStride, false)
	if d3-d2 != cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBL {
		t.Fatalf("row conflict took %d cycles", d3-d2)
	}
}

func TestBankParallelism(t *testing.T) {
	cfg := DDR4Config()
	c := NewChannel(cfg)
	// Two accesses to different banks issued at the same time overlap their
	// activate latencies; they only serialize on the burst.
	a0 := memdata.Addr(0)
	a1 := memdata.Addr(cfg.RowSize) // next row ID -> next bank
	d0 := c.Access(0, a0, false)
	d1 := c.Access(0, a1, false)
	if d1 != d0+cfg.TBL {
		t.Fatalf("parallel banks: d0=%d d1=%d, want bus-serialized gap %d", d0, d1, cfg.TBL)
	}
	// Same-bank back-to-back accesses fully serialize.
	c2 := NewChannel(cfg)
	e0 := c2.Access(0, 0, false)
	e1 := c2.Access(0, 64, false)
	if e1 <= e0 {
		t.Fatalf("same-bank accesses did not serialize: %d then %d", e0, e1)
	}
}

func TestWriteRecovery(t *testing.T) {
	cfg := DDR4Config()
	c := NewChannel(cfg)
	d0 := c.Access(0, 0, true)
	// Next access to the same bank must wait tWR past the burst.
	d1 := c.Access(d0, 64, false)
	if d1-d0 < cfg.TWR {
		t.Fatalf("write recovery not applied: gap %d < tWR %d", d1-d0, cfg.TWR)
	}
	if c.Writes != 1 || c.Reads != 1 {
		t.Fatalf("writes=%d reads=%d", c.Writes, c.Reads)
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	cfg := DDR4Config()
	c := NewChannel(cfg)
	now := sim.Cycle(0)
	lines := 4 * int(cfg.RowSize/64) // 4 rows worth
	for i := 0; i < lines; i++ {
		now = c.Access(now, memdata.Addr(i*64), false)
	}
	if c.RowMisses != 4 {
		t.Fatalf("sequential stream row misses = %d, want 4", c.RowMisses)
	}
	if c.RowHits != uint64(lines-4) {
		t.Fatalf("row hits = %d, want %d", c.RowHits, lines-4)
	}
}

// Property: completion times are monotone in issue time and never precede
// issue + minimum latency.
func TestAccessMonotoneQuick(t *testing.T) {
	cfg := DDR4Config()
	f := func(addrs []uint32) bool {
		c := NewChannel(cfg)
		now := sim.Cycle(0)
		prev := sim.Cycle(0)
		for _, raw := range addrs {
			a := memdata.LineAlign(memdata.Addr(raw))
			done := c.Access(now, a, raw%3 == 0)
			if done < now+cfg.TCAS+cfg.TBL {
				return false // faster than best case
			}
			if done < prev {
				return false // bus went backwards
			}
			prev = done
			now += 3
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAddrCoversBanks(t *testing.T) {
	cfg := DDR4Config()
	c := NewChannel(cfg)
	seen := map[int]bool{}
	for i := 0; i < cfg.Banks*2; i++ {
		b, _ := c.mapAddr(memdata.Addr(uint64(i) * cfg.RowSize))
		seen[b] = true
	}
	if len(seen) != cfg.Banks {
		t.Fatalf("row-interleave touched %d banks, want %d", len(seen), cfg.Banks)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChannel with zero banks did not panic")
		}
	}()
	NewChannel(Config{})
}
