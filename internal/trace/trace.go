// Package trace generates the synthetic workload traces the experiments
// replay. The centerpiece is the Protobuf copy-size distribution from the
// paper's Fig 4: a CDF over 2 B – 4 KB with ~56 % of all copies exactly
// 1 KB, which is what defeats page-granularity elision (zIO) and rewards
// cacheline-granularity laziness ((MC)²).
package trace

import "math/rand"

// sizeBucket is one step of the Fig 4 CDF.
type sizeBucket struct {
	size   uint64
	weight int // percent
}

// fig4Buckets reproduces the distribution of Protobuf memcpy sizes in the
// paper's Fig 4 (read off the published CDF; exact masses documented in
// EXPERIMENTS.md). Weights sum to 100.
var fig4Buckets = []sizeBucket{
	{2, 3}, {4, 3}, {8, 4}, {16, 5}, {32, 7}, {64, 6},
	{128, 5}, {256, 5}, {512, 4}, {1024, 56}, {2048, 1}, {4096, 1},
}

// SizeSampler draws memcpy sizes from a weighted discrete distribution.
type SizeSampler struct {
	rnd   *rand.Rand
	sizes []uint64
	cum   []int
	total int
}

// NewFig4Sampler returns a sampler over the paper's Protobuf size CDF.
func NewFig4Sampler(seed int64) *SizeSampler {
	return NewSizeSampler(seed, fig4Buckets)
}

// NewSizeSampler builds a sampler from explicit buckets.
func NewSizeSampler(seed int64, buckets []sizeBucket) *SizeSampler {
	s := &SizeSampler{rnd: rand.New(rand.NewSource(seed))}
	for _, b := range buckets {
		s.total += b.weight
		s.sizes = append(s.sizes, b.size)
		s.cum = append(s.cum, s.total)
	}
	return s
}

// Sample draws one copy size.
func (s *SizeSampler) Sample() uint64 {
	x := s.rnd.Intn(s.total)
	for i, c := range s.cum {
		if x < c {
			return s.sizes[i]
		}
	}
	return s.sizes[len(s.sizes)-1]
}

// Fig4Sizes returns the CDF thresholds of the paper's Fig 4 x-axis.
func Fig4Sizes() []uint64 {
	out := make([]uint64, len(fig4Buckets))
	for i, b := range fig4Buckets {
		out[i] = b.size
	}
	return out
}

// Fig4CDF returns the modeled cumulative distribution at each Fig4Sizes
// threshold, as fractions in (0, 1].
func Fig4CDF() []float64 {
	out := make([]float64, len(fig4Buckets))
	total, acc := 0, 0
	for _, b := range fig4Buckets {
		total += b.weight
	}
	for i, b := range fig4Buckets {
		acc += b.weight
		out[i] = float64(acc) / float64(total)
	}
	return out
}

// Rand exposes the sampler's deterministic random stream for auxiliary
// workload decisions (field counts, access choices).
func (s *SizeSampler) Rand() *rand.Rand { return s.rnd }
