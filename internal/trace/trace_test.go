package trace

import (
	"math"
	"testing"
)

func TestFig4SamplerMatchesCDF(t *testing.T) {
	s := NewFig4Sampler(1)
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.Sample()]++
	}
	// The 1 KB mass is the paper's headline (~56%).
	frac1k := float64(counts[1024]) / n
	if math.Abs(frac1k-0.56) > 0.02 {
		t.Fatalf("1KB mass = %.3f, want ~0.56", frac1k)
	}
	// All samples must come from the declared support.
	support := map[uint64]bool{}
	for _, sz := range Fig4Sizes() {
		support[sz] = true
	}
	for sz := range counts {
		if !support[sz] {
			t.Fatalf("sample %d outside support", sz)
		}
	}
	// Empirical CDF within 2% of the model at every threshold.
	cdf := Fig4CDF()
	acc := 0
	for i, sz := range Fig4Sizes() {
		acc += counts[sz]
		if got := float64(acc) / n; math.Abs(got-cdf[i]) > 0.02 {
			t.Fatalf("CDF at %dB: got %.3f want %.3f", sz, got, cdf[i])
		}
	}
	if cdf[len(cdf)-1] != 1 {
		t.Fatal("CDF does not reach 1")
	}
}

func TestSamplerDeterministic(t *testing.T) {
	a, b := NewFig4Sampler(7), NewFig4Sampler(7)
	for i := 0; i < 1000; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}
