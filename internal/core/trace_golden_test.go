package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcsquare/internal/txtrace"
)

// traceCorpusProgram replays one corpus program with full-rate tracing and
// returns the exported trace document.
func traceCorpusProgram(t *testing.T, prog *corpusProgram) string {
	t.Helper()
	col := txtrace.NewCollector(txtrace.Config{Enabled: true, SampleEvery: 1})
	release := col.Bind()
	_, failure := runProgram(t, prog)
	release()
	if failure != "" {
		t.Fatalf("corpus program diverged under tracing: %s", failure)
	}
	var buf bytes.Buffer
	if err := col.Export(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.String()
}

// TestCorpusTraceGolden is the tracer's determinism guarantee at the
// engine level: replaying the same corpus program twice must export
// byte-identical trace JSON — span ids, timestamps, ordering, everything.
// The chain-collapse-source-write program is used because it exercises the
// (MC)²-specific stages end to end: CTT inserts, a BPQ hold with dependent
// copies, then reads of still-tracked lines that hit the CTT and bounce.
func TestCorpusTraceGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "corpus", "chain-collapse-source-write.ops"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parseProgram("chain-collapse-source-write", data)
	if err != nil {
		t.Fatal(err)
	}
	first := traceCorpusProgram(t, prog)
	second := traceCorpusProgram(t, prog)
	if first != second {
		t.Fatalf("trace export differs between identical replays:\n--- first ---\n%.2000s\n--- second ---\n%.2000s",
			first, second)
	}
	for _, stage := range []string{"ctt.insert", "ctt.hit", "mc2.bounce", "mc2.bpq_hold", "mc2.bounce_writeback"} {
		if !strings.Contains(first, `"name":"`+stage+`"`) {
			t.Errorf("trace missing expected stage %q", stage)
		}
	}
}
