// Package core implements the paper's primary contribution: the (MC)²
// memory-controller extensions for lazy memory copies. It provides
//
//   - the Copy Tracking Table (CTT): prospective-copy entries with the
//     paper's destination-overlap trimming, copy-chain collapsing, and
//     contiguous-copy merging (§III-A1);
//   - the Bounce Pending Queue (BPQ): held writes to tracked source
//     buffers while lazy copies execute (§III-A2);
//   - the lazy-copy Engine that installs itself as a memctrl.Hook and
//     implements the six-state consistency protocol of Fig 9.
//
// The paper keeps one CTT per memory controller and broadcasts updates so
// the tables stay identical; we model that as a single shared CTT, which is
// semantically equivalent to perfectly-snooped consistent tables. BPQs
// remain per controller.
package core

import (
	"fmt"
	"sort"

	"mcsquare/internal/memdata"
)

// MaxEntrySize is the largest copy a single CTT entry can track: the
// paper's 21-bit size field, i.e. one 2 MB huge page.
const MaxEntrySize = 2 << 20

// segShift buckets addresses into 2 MB segments for indexed lookups. Since
// no entry exceeds MaxEntrySize, an entry's destination or source range
// spans at most two segments, and a query range of up to MaxEntrySize spans
// at most two as well.
const segShift = 21

// Entry is one prospective copy: the destination byte range Dst will,
// when accessed, be lazily filled from the source starting at Src.
//
// The hardware entry is 16 bytes (52-bit source and destination physical
// addresses, 21-bit size, active bit); we carry the same information in
// native types. Destination ranges of live entries are pairwise disjoint
// at byte granularity.
type Entry struct {
	ID  uint64
	Dst memdata.Range
	Src memdata.Addr
}

// SrcRange returns the source byte range of the entry.
func (e *Entry) SrcRange() memdata.Range {
	return memdata.Range{Start: e.Src, Size: e.Dst.Size}
}

// SrcFor maps a destination address inside the entry to its source address.
func (e *Entry) SrcFor(a memdata.Addr) memdata.Addr {
	return e.Src + (a - e.Dst.Start)
}

// CTTStats counts CTT activity.
type CTTStats struct {
	Inserts    uint64 // MCLAZY operations accepted
	Pieces     uint64 // entries created (after splits/merges)
	Merges     uint64 // pieces absorbed into an adjacent entry
	Collapses  uint64 // pieces redirected through an existing entry (chain collapse)
	Identities uint64 // pieces dropped because source == destination after collapse
	Trims      uint64 // destination-range removals (writes, bounces, MCFREE)
	Removed    uint64 // entries fully removed
	HighWater  int    // max simultaneous entries

	// Byte ledger: every destination byte that enters tracking is counted
	// in DeferredBytes (post-collapse, post-identity-drop), and every byte
	// that leaves is counted in UntrackedBytes; ReplacedBytes is the
	// portion of UntrackedBytes trimmed by a newer overlapping Insert.
	// The books are kept by independent code paths (Insert's piece loop vs
	// RemoveDestRange's geometric trimming vs the per-entry size deltas
	// behind TrackedBytes), so
	//
	//	DeferredBytes - UntrackedBytes == TrackedBytes()
	//
	// is a real conservation law, checked by CheckInvariants.
	DeferredBytes  uint64 // destination bytes newly tracked by Insert
	UntrackedBytes uint64 // destination bytes untracked via RemoveDestRange
	ReplacedBytes  uint64 // untracked bytes displaced by a newer Insert
}

// CTT is the Copy Tracking Table. It is a pure data structure: all timing
// (lookup latency, stalls) is charged by the Engine. Not safe for
// concurrent use; the simulator is single-threaded.
type CTT struct {
	capacity int
	// noMerge disables adjacency merging (ablation): element-by-element
	// copies then occupy one entry each instead of coalescing.
	noMerge bool
	nextID  uint64
	entries map[uint64]*Entry
	order   []uint64 // insertion order of live entry IDs (lazily compacted)
	dstSeg  map[uint64][]*Entry
	srcSeg  map[uint64][]*Entry
	// trackedBytes is the summed destination size of live entries,
	// maintained incrementally by register/remove/mutate and cross-checked
	// against the entry map by CheckInvariants.
	trackedBytes uint64

	Stats CTTStats
}

// NewCTT creates a table with the given entry capacity (the paper uses
// 2,048 entries = 32 KB of SRAM).
func NewCTT(capacity int) *CTT { return newCTT(capacity, false) }

func newCTT(capacity int, noMerge bool) *CTT {
	if capacity <= 0 {
		panic("core: CTT capacity must be positive")
	}
	return &CTT{
		capacity: capacity,
		noMerge:  noMerge,
		entries:  make(map[uint64]*Entry),
		dstSeg:   make(map[uint64][]*Entry),
		srcSeg:   make(map[uint64][]*Entry),
	}
}

// Len returns the number of live entries.
func (t *CTT) Len() int { return len(t.entries) }

// Capacity returns the entry capacity.
func (t *CTT) Capacity() int { return t.capacity }

func segsOf(r memdata.Range) (lo, hi uint64) {
	if r.Empty() {
		return 1, 0 // empty iteration
	}
	return uint64(r.Start) >> segShift, uint64(r.End()-1) >> segShift
}

func (t *CTT) register(e *Entry) {
	t.entries[e.ID] = e
	t.order = append(t.order, e.ID)
	t.indexAdd(e)
	t.trackedBytes += e.Dst.Size
	if len(t.entries) > t.Stats.HighWater {
		t.Stats.HighWater = len(t.entries)
	}
}

func (t *CTT) indexAdd(e *Entry) {
	lo, hi := segsOf(e.Dst)
	for s := lo; s <= hi; s++ {
		t.dstSeg[s] = append(t.dstSeg[s], e)
	}
	lo, hi = segsOf(e.SrcRange())
	for s := lo; s <= hi; s++ {
		t.srcSeg[s] = append(t.srcSeg[s], e)
	}
}

func (t *CTT) indexRemove(e *Entry) {
	rm := func(m map[uint64][]*Entry, r memdata.Range) {
		lo, hi := segsOf(r)
		for s := lo; s <= hi; s++ {
			list := m[s]
			for i, x := range list {
				if x == e {
					m[s] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(m[s]) == 0 {
				delete(m, s)
			}
		}
	}
	rm(t.dstSeg, e.Dst)
	rm(t.srcSeg, e.SrcRange())
}

func (t *CTT) remove(e *Entry) {
	t.indexRemove(e)
	delete(t.entries, e.ID)
	t.trackedBytes -= e.Dst.Size
	t.Stats.Removed++
}

// mutate applies a destination-range change to an entry: its index entries
// are refreshed and its new geometry installed.
func (t *CTT) mutate(e *Entry, dst memdata.Range, src memdata.Addr) {
	t.indexRemove(e)
	t.trackedBytes += dst.Size - e.Dst.Size // unsigned wrap cancels out
	e.Dst = dst
	e.Src = src
	t.indexAdd(e)
}

// DestCover returns the live entries whose destination range overlaps r,
// sorted by destination start. Destination ranges are disjoint, so the
// result segments r without overlap.
func (t *CTT) DestCover(r memdata.Range) []*Entry {
	var out []*Entry
	lo, hi := segsOf(r)
	seen := map[uint64]bool{}
	for s := lo; s <= hi; s++ {
		for _, e := range t.dstSeg[s] {
			if !seen[e.ID] && e.Dst.Overlaps(r) {
				seen[e.ID] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dst.Start < out[j].Dst.Start })
	return out
}

// LookupDest returns the entry whose destination contains a, or nil.
func (t *CTT) LookupDest(a memdata.Addr) *Entry {
	for _, e := range t.dstSeg[uint64(a)>>segShift] {
		if e.Dst.Contains(a) {
			return e
		}
	}
	return nil
}

// SrcOverlapping returns the live entries whose source range overlaps r,
// in insertion order. Source ranges may overlap each other (one source,
// many destinations).
func (t *CTT) SrcOverlapping(r memdata.Range) []*Entry {
	lo, hi := segsOf(r)
	seen := map[uint64]bool{}
	var out []*Entry
	for s := lo; s <= hi; s++ {
		for _, e := range t.srcSeg[s] {
			if !seen[e.ID] && e.SrcRange().Overlaps(r) {
				seen[e.ID] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HasSrcOverlap reports whether any live entry's source overlaps r.
func (t *CTT) HasSrcOverlap(r memdata.Range) bool {
	lo, hi := segsOf(r)
	for s := lo; s <= hi; s++ {
		for _, e := range t.srcSeg[s] {
			if e.SrcRange().Overlaps(r) {
				return true
			}
		}
	}
	return false
}

// RemoveDestRange stops tracking every destination byte in r: overlapping
// entries are removed, resized, or split (a write to the middle of an
// entry's destination leaves two entries). Returns the number of
// destination bytes that were tracked.
func (t *CTT) RemoveDestRange(r memdata.Range) uint64 {
	var trimmed uint64
	for _, e := range t.DestCover(r) {
		trimmed += e.Dst.Intersect(r).Size
		t.trimEntry(e, r)
	}
	if trimmed > 0 {
		t.Stats.Trims++
		t.Stats.UntrackedBytes += trimmed
	}
	return trimmed
}

// TrackedBytes returns the summed destination size of live entries.
func (t *CTT) TrackedBytes() uint64 { return t.trackedBytes }

// trimEntry removes the part of e's destination overlapped by r.
func (t *CTT) trimEntry(e *Entry, r memdata.Range) {
	rest := e.Dst.Subtract(r)
	switch len(rest) {
	case 0:
		t.remove(e)
	case 1:
		t.mutate(e, rest[0], e.SrcFor(rest[0].Start))
	case 2:
		src0 := e.SrcFor(rest[0].Start)
		src1 := e.SrcFor(rest[1].Start)
		t.mutate(e, rest[0], src0)
		t.nextID++
		t.register(&Entry{ID: t.nextID, Dst: rest[1], Src: src1})
	}
}

// piece is a fragment of a new prospective copy after chain collapsing.
type piece struct {
	dst memdata.Range
	src memdata.Addr
}

// collapse splits the copy (dst ← src) wherever its source range overlaps
// an existing entry's destination: those fragments are redirected to the
// older entry's source, so a copy of a lazy copy never chains (§III-A1:
// "A→B then B→C yields C←A"). Fragments whose source equals their
// destination after redirection are dropped — memory already holds the
// right bytes.
func (t *CTT) collapse(dst memdata.Range, src memdata.Addr, record bool) []piece {
	srcR := memdata.Range{Start: src, Size: dst.Size}
	overs := t.DestCover(srcR)
	var out []piece
	cur := src
	end := srcR.End()
	emit := func(from, to memdata.Addr, redirect *Entry) {
		if to <= from {
			return
		}
		p := piece{
			dst: memdata.Range{Start: dst.Start + (from - src), Size: uint64(to - from)},
			src: from,
		}
		if redirect != nil {
			p.src = redirect.SrcFor(from)
			if record {
				t.Stats.Collapses++
			}
		}
		if p.src == p.dst.Start {
			if record {
				t.Stats.Identities++
			}
			return
		}
		out = append(out, p)
	}
	for _, e := range overs {
		o := e.Dst.Intersect(srcR)
		emit(cur, o.Start, nil)
		emit(o.Start, o.End(), e)
		cur = o.End()
	}
	emit(cur, end, nil)
	return out
}

// tryMerge attempts to absorb p into an entry adjacent in both destination
// and source space (the paper merges element-by-element copies of an
// array into one entry). Reports whether p was absorbed.
func (t *CTT) tryMerge(p piece) bool {
	if t.noMerge {
		return false
	}
	// Existing entry immediately before the piece.
	if p.dst.Start > 0 {
		if e := t.LookupDest(p.dst.Start - 1); e != nil &&
			e.Dst.End() == p.dst.Start &&
			e.SrcRange().End() == p.src &&
			e.Dst.Size+p.dst.Size <= MaxEntrySize {
			t.mutate(e, memdata.Range{Start: e.Dst.Start, Size: e.Dst.Size + p.dst.Size}, e.Src)
			t.Stats.Merges++
			return true
		}
	}
	// Existing entry immediately after the piece.
	if e := t.LookupDest(p.dst.End()); e != nil &&
		e.Dst.Start == p.dst.End() &&
		e.Src == p.src+memdata.Addr(p.dst.Size) &&
		e.Dst.Size+p.dst.Size <= MaxEntrySize {
		t.mutate(e, memdata.Range{Start: p.dst.Start, Size: e.Dst.Size + p.dst.Size}, p.src)
		t.Stats.Merges++
		return true
	}
	return false
}

// Insert records the prospective copy (dst ← src). It applies, in order:
// destination-overlap trimming of existing entries, chain collapsing of the
// new copy, and adjacency merging. It returns false — leaving the table
// unchanged — if the result would exceed capacity; the caller (the Engine)
// then stalls the MCLAZY until asynchronous freeing makes room.
//
// dst must be cacheline-aligned with a positive cacheline-multiple size of
// at most MaxEntrySize (the MCLAZY alignment rules, §III-C).
func (t *CTT) Insert(dst memdata.Range, src memdata.Addr) bool {
	if !memdata.IsLineAligned(dst.Start) || dst.Size == 0 || dst.Size%memdata.LineSize != 0 {
		panic(fmt.Sprintf("core: Insert with unaligned destination %+v", dst))
	}
	if dst.Size > MaxEntrySize {
		panic(fmt.Sprintf("core: Insert larger than a huge page: %d", dst.Size))
	}

	// Capacity dry run: count how trimming and splitting change the table.
	delta := 0
	for _, e := range t.DestCover(dst) {
		switch len(e.Dst.Subtract(dst)) {
		case 0:
			delta--
		case 2:
			delta++
		}
	}
	pieces := t.collapse(dst, src, true)
	needed := 0
	for range pieces {
		needed++ // merges can only reduce this; a safe upper bound
	}
	if t.Len()+delta+needed > t.capacity {
		return false
	}

	t.Stats.ReplacedBytes += t.RemoveDestRange(dst)
	for _, p := range pieces {
		t.Stats.DeferredBytes += p.dst.Size
		if t.tryMerge(p) {
			continue
		}
		t.nextID++
		t.register(&Entry{ID: t.nextID, Dst: p.dst, Src: p.src})
		t.Stats.Pieces++
	}
	t.Stats.Inserts++
	return true
}

// PreviewSources returns the post-collapse source ranges the copy
// (dst ← src) would track if inserted now, without mutating the table or
// its statistics. The Engine uses it to stall MCLAZY operations whose
// effective sources land on BPQ-held lines.
func (t *CTT) PreviewSources(dst memdata.Range, src memdata.Addr) []memdata.Range {
	pieces := t.collapse(dst, src, false)
	out := make([]memdata.Range, 0, len(pieces))
	for _, p := range pieces {
		out = append(out, memdata.Range{Start: p.src, Size: p.dst.Size})
	}
	return out
}

// Entries returns the live entries in insertion order (compacting the
// order list as a side effect).
func (t *CTT) Entries() []*Entry {
	out := make([]*Entry, 0, len(t.entries))
	live := t.order[:0]
	for _, id := range t.order {
		if e, ok := t.entries[id]; ok {
			live = append(live, id)
			out = append(out, e)
		}
	}
	t.order = live
	return out
}

// Smallest returns the live entry with the smallest destination size
// (lowest ID breaks ties), or nil when the table is empty. The asynchronous
// freeing policy evicts smallest-first (§III-A1).
func (t *CTT) Smallest() *Entry {
	var best *Entry
	for _, e := range t.Entries() {
		if best == nil || e.Dst.Size < best.Dst.Size ||
			(e.Dst.Size == best.Dst.Size && e.ID < best.ID) {
			best = e
		}
	}
	return best
}

// CheckInvariants verifies structural invariants; tests call it after every
// mutation. It returns an error describing the first violation found.
func (t *CTT) CheckInvariants() error {
	if len(t.entries) > t.capacity {
		return fmt.Errorf("ctt: %d entries exceed capacity %d", len(t.entries), t.capacity)
	}
	var liveBytes uint64
	for _, e := range t.entries {
		liveBytes += e.Dst.Size
	}
	if liveBytes != t.trackedBytes {
		return fmt.Errorf("ctt: tracked-byte counter %d != live entry bytes %d", t.trackedBytes, liveBytes)
	}
	if t.Stats.DeferredBytes-t.Stats.UntrackedBytes != t.trackedBytes {
		return fmt.Errorf("ctt: byte conservation violated: deferred %d - untracked %d != tracked %d",
			t.Stats.DeferredBytes, t.Stats.UntrackedBytes, t.trackedBytes)
	}
	ents := t.Entries()
	for i, e := range ents {
		if e.Dst.Empty() {
			return fmt.Errorf("ctt: entry %d has empty destination", e.ID)
		}
		if e.Dst.Size > MaxEntrySize {
			return fmt.Errorf("ctt: entry %d size %d exceeds 2 MB", e.ID, e.Dst.Size)
		}
		for _, o := range ents[i+1:] {
			if e.Dst.Overlaps(o.Dst) {
				return fmt.Errorf("ctt: destination overlap between entries %d and %d", e.ID, o.ID)
			}
		}
		// Index consistency.
		if got := t.LookupDest(e.Dst.Start); got != e {
			return fmt.Errorf("ctt: dest index lost entry %d", e.ID)
		}
		found := false
		for _, s := range t.SrcOverlapping(e.SrcRange()) {
			if s == e {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("ctt: src index lost entry %d", e.ID)
		}
	}
	return nil
}
