package core

import (
	"fmt"

	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Params configures the lazy-copy engine. The defaults mirror the paper's
// simulated configuration (Table I and §III).
type Params struct {
	CTTCapacity   int       // entries per CTT (paper: 2,048)
	BPQCapacity   int       // held source writes per MC (paper: 8)
	FreeThreshold float64   // CTT occupancy that triggers async freeing (paper: 0.50)
	ParallelFrees int       // entries freed in parallel per MC (paper sweeps 1–8)
	CTTLatency    sim.Cycle // table lookup, charged on bounces (paper: 0.79 ns ≈ 3 cycles)
	HopLatency    sim.Cycle // one interconnect hop between controllers
	WPQRejectFrac float64   // bounce writeback refused above this WPQ occupancy (paper: 0.75)
	// FreePacing is the gap each async-free worker leaves between line
	// copies, bounding the freeing machinery's bandwidth so it does not
	// interfere with demand traffic (§V-C: "(MC)² limits the outstanding
	// asynchronous copies per memory controller"). Parallelism, not pace,
	// is then the knob that relieves CTT-full stalls (Fig 22).
	FreePacing sim.Cycle

	// WritebackOnBounce controls the §III-B2 optimization of writing a
	// reconstructed destination line back to memory. Disabling it is the
	// "No writeback" ablation of Fig 13.
	WritebackOnBounce bool
	// DisableMerge turns off CTT adjacency merging (ablation): contiguous
	// copies then consume one entry each, pressuring capacity.
	DisableMerge bool

	// EagerCopyFrac is the graceful-degradation high-water mark: when CTT
	// occupancy reaches this fraction of capacity, an accepted MCLAZY is
	// immediately materialized (the entry is inserted for correctness, then
	// eagerly copied and evicted) so the table cannot wedge under pressure.
	// 0 disables the fallback (the default; timing is unchanged).
	EagerCopyFrac float64
	// WritebackRetries bounds how often a rejected bounce writeback is
	// retried with exponential backoff before giving up. 0 (the default)
	// keeps the paper's drop-on-reject behavior.
	WritebackRetries int
	// WritebackBackoff is the initial retry delay, doubled per attempt.
	WritebackBackoff sim.Cycle
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		CTTCapacity:       2048,
		BPQCapacity:       8,
		FreeThreshold:     0.5,
		ParallelFrees:     1,
		CTTLatency:        3,
		HopLatency:        24,
		WPQRejectFrac:     0.75,
		FreePacing:        160,
		WritebackOnBounce: true,
		WritebackBackoff:  64,
	}
}

// EngineStats counts lazy-copy activity.
type EngineStats struct {
	LazyOps         uint64 // MCLAZY operations accepted
	LazyBytes       uint64 // bytes covered by accepted MCLAZY operations
	LazyStallsFull  uint64 // MCLAZY stalled on a full CTT
	LazyStallsBPQ   uint64 // MCLAZY stalled on BPQ-held lines
	LazyStallCycles uint64 // total cycles MCLAZY operations spent stalled

	Bounces          uint64 // destination reads redirected to sources
	BounceSrcReads   uint64 // source-line reads issued for bounces
	BounceWritebacks uint64 // reconstructed lines written back to memory
	WritebackRejects uint64 // writebacks refused (WPQ over threshold)
	MemFills         uint64 // bounce bytes taken from memory (partially tracked lines)

	BPQHolds      uint64 // source writes held in a BPQ
	BPQMerges     uint64 // CPU writes merged into a held line
	BPQForwards   uint64 // CPU reads serviced from a held line
	BPQStallsFull uint64 // writes that waited for a BPQ slot
	BPQCopies     uint64 // destination lines lazily copied due to source writes

	DroppedInternal uint64 // internal writes dropped against newer held writes

	Frees      uint64 // entries evicted by asynchronous freeing
	FreedBytes uint64
	MCFrees    uint64 // MCFREE operations

	EagerFallbacks     uint64 // MCLAZY ops eagerly materialized (CTT high-water)
	EagerFallbackBytes uint64
	ForcedEvictions    uint64 // CTT entries evicted by injected faults

	WritebackRetries        uint64 // rejected writebacks retried with backoff
	WritebackRetrySuccesses uint64 // retried writebacks that eventually landed
	WritebackRetryGiveups   uint64 // retried writebacks that exhausted attempts

	// Untracked-byte classification: every byte the CTT stops tracking is
	// attributed to exactly one cause at its RemoveDestRange call site.
	// Together with the CTT's ReplacedBytes (bytes displaced by a newer
	// MCLAZY) these partition CTTStats.UntrackedBytes — the conservation
	// law CheckConservation verifies.
	OverwrittenBytes  uint64 // untracked because the CPU overwrote the destination
	MaterializedBytes uint64 // untracked because the engine copied the bytes (bounce writebacks, BPQ cascades, async frees)
	MCFreedBytes      uint64 // untracked by an MCFREE hint
}

type heldWrite struct {
	data []byte
}

type bpq struct {
	used    int
	waiters sim.FnQueue
}

type pendingLazy struct {
	dst       memdata.Range
	src       memdata.Addr
	done      func()
	since     sim.Cycle
	queued    bool
	fullStall bool       // stalled on a full CTT (vs a BPQ conflict)
	sp        txtrace.Tx // ctt.insert span, open across stalls
}

// Engine is the (MC)² lazy-copy machinery shared by all memory controllers.
// It installs per-controller hooks (HookFor) and serves MCLAZY/MCFREE
// operations arriving from the interconnect. All methods run in engine
// (event) context.
type Engine struct {
	eng   *sim.Engine
	p     Params
	ctt   *CTT
	mcs   []*memctrl.Controller
	route func(memdata.Addr) int
	tr    *txtrace.Tracer

	flt      *faultinject.Plane // nil when no fault schedule is active
	inv      *invariant.Oracles // nil when invariant oracles are off
	bpqNames []string           // precomputed BPQ queue names for occupancy checks

	bpqs        []bpq
	held        map[memdata.Addr]*heldWrite
	heldWaiters []func() // BPQ finishes waiting on other held lines
	pending     []*pendingLazy
	freeWorkers int
	freeing     map[uint64]bool // entry IDs claimed by a free worker
	// destGen counts CPU writes observed per line. Reconstructed lines
	// (bounce writebacks, BPQ cascades, async frees) capture the counter
	// when their value is composed and drop themselves if a newer CPU
	// write arrived meanwhile (Fig 9: "bounce requests for D are dropped").
	destGen map[memdata.Addr]uint64

	Stats EngineStats
}

// NewEngine creates the lazy-copy engine over the given controllers.
// route maps a physical address to the index of its owning controller.
func NewEngine(eng *sim.Engine, p Params, mcs []*memctrl.Controller, route func(memdata.Addr) int) *Engine {
	e := &Engine{
		eng:     eng,
		p:       p,
		ctt:     newCTT(p.CTTCapacity, p.DisableMerge),
		mcs:     mcs,
		route:   route,
		bpqs:    make([]bpq, len(mcs)),
		held:    make(map[memdata.Addr]*heldWrite),
		freeing: make(map[uint64]bool),
		destGen: make(map[memdata.Addr]uint64),
	}
	for i := range mcs {
		mcs[i].SetHook(&mcHook{e: e, mc: i})
	}
	return e
}

// CTT exposes the table (stats, tests).
func (e *Engine) CTT() *CTT { return e.ctt }

// SetTracer attaches the transaction tracer (nil disables).
func (e *Engine) SetTracer(t *txtrace.Tracer) { e.tr = t }

// SetFaults attaches the machine's fault-injection plane (nil disables).
func (e *Engine) SetFaults(p *faultinject.Plane) { e.flt = p }

// SetInvariants attaches the machine's invariant oracles (nil disables).
func (e *Engine) SetInvariants(o *invariant.Oracles) {
	e.inv = o
	if o.QueuesOn() {
		e.bpqNames = make([]string, len(e.mcs))
		for i := range e.bpqNames {
			e.bpqNames[i] = fmt.Sprintf("bpq%d", i)
		}
	}
}

// Idle reports whether no lazy-copy machinery is in flight.
func (e *Engine) Idle() bool {
	return len(e.held) == 0 && len(e.heldWaiters) == 0 && len(e.pending) == 0 && e.freeWorkers == 0
}

// CheckConservation verifies the CTT/BPQ byte-conservation laws: every
// destination byte ever deferred by an accepted MCLAZY is either still
// tracked or was untracked for exactly one attributed reason — displaced by
// a newer MCLAZY, overwritten by the CPU, materialized by the engine's own
// copies (bounces, BPQ cascades, async frees), or dropped by an MCFREE
// hint. Valid at any point; the attribution partition additionally requires
// no trims from unclassified call sites, which this check enforces.
func (e *Engine) CheckConservation() error {
	cs := e.ctt.Stats
	if cs.DeferredBytes-cs.UntrackedBytes != e.ctt.TrackedBytes() {
		return fmt.Errorf("core: CTT byte conservation violated: deferred %d - untracked %d != tracked %d",
			cs.DeferredBytes, cs.UntrackedBytes, e.ctt.TrackedBytes())
	}
	attributed := cs.ReplacedBytes + e.Stats.OverwrittenBytes + e.Stats.MaterializedBytes + e.Stats.MCFreedBytes
	if attributed != cs.UntrackedBytes {
		return fmt.Errorf("core: untracked bytes unattributed: replaced %d + overwritten %d + materialized %d + mcfreed %d != untracked %d",
			cs.ReplacedBytes, e.Stats.OverwrittenBytes, e.Stats.MaterializedBytes, e.Stats.MCFreedBytes, cs.UntrackedBytes)
	}
	return nil
}

// mcHook adapts the engine to one controller's memctrl.Hook.
type mcHook struct {
	e  *Engine
	mc int
}

func (h *mcHook) FilterRead(a memdata.Addr, tx txtrace.Tx, done func([]byte)) bool {
	return h.e.filterRead(h.mc, a, tx, done)
}

func (h *mcHook) FilterWrite(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) bool {
	return h.e.filterWrite(h.mc, a, data, tx, release)
}

func lineRange(a memdata.Addr) memdata.Range {
	return memdata.Range{Start: memdata.LineAlign(a), Size: memdata.LineSize}
}

// ---------------------------------------------------------------------------
// Read path (§III-B2: "Read from destination", "Read from source")
// ---------------------------------------------------------------------------

func (e *Engine) filterRead(mc int, a memdata.Addr, tx txtrace.Tx, done func([]byte)) bool {
	if !memdata.IsLineAligned(a) {
		panic(fmt.Sprintf("core: controller read of unaligned address %#x", a))
	}
	// Reads of a BPQ-held source line are serviced from the BPQ (state 3).
	if hw, ok := e.held[a]; ok {
		e.Stats.BPQForwards++
		if tx != 0 {
			now := uint64(e.eng.Now())
			e.tr.Complete(tx, txtrace.StageBPQForward, uint64(a), now, now+uint64(e.p.CTTLatency), 0)
		}
		data := append([]byte(nil), hw.data...)
		e.inv.CheckRead(a, data, e.eng.Now())
		e.eng.After(e.p.CTTLatency, func() { done(data) })
		return true
	}
	if len(e.ctt.DestCover(lineRange(a))) == 0 {
		return false // untracked, or read-from-source: proceed normally
	}
	// Read from destination: bounce to the source (Fig 7). The CTT lookup
	// preempts the DRAM access, then the request crosses the interconnect.
	e.Stats.Bounces++
	bsp := txtrace.Tx(0)
	if tx != 0 {
		now := uint64(e.eng.Now())
		e.tr.Complete(tx, txtrace.StageCTTHit, uint64(a), now, now+uint64(e.p.CTTLatency), 0)
		bsp = e.tr.Begin(tx, txtrace.StageBounce, uint64(a), now)
	}
	e.eng.After(e.p.CTTLatency+e.p.HopLatency, func() {
		gen := e.destGen[a]
		// The composed value is bound here: composeDestLine queries the CTT
		// and snapshots every source at call time.
		bound := e.eng.Now()
		e.composeDestLine(a, bsp, func(data []byte) {
			e.eng.After(e.p.HopLatency, func() {
				e.tr.End(bsp, uint64(e.eng.Now()))
				e.inv.CheckRead(a, data, bound)
				done(data)
			})
			e.maybeWriteback(a, gen, bsp, data)
		})
	})
	return true
}

// maybeWriteback sends a reconstructed destination line to memory so that
// future reads are serviced normally — unless the destination controller's
// WPQ is too full (the paper's 75% rule, §III-B2). With WritebackRetries
// set, a rejected writeback retries with bounded exponential backoff
// instead of being dropped outright.
func (e *Engine) maybeWriteback(a memdata.Addr, gen uint64, tx txtrace.Tx, data []byte) {
	if !e.p.WritebackOnBounce {
		return
	}
	e.tryWriteback(a, gen, tx, data, 0)
}

func (e *Engine) tryWriteback(a memdata.Addr, gen uint64, tx txtrace.Tx, data []byte, attempt int) {
	mc := e.mcs[e.route(a)]
	rejected := mc.WPQOccupancy() >= e.p.WPQRejectFrac
	if !rejected && e.flt.Fire(faultinject.KindWPQReject, uint64(a), uint64(e.eng.Now())) {
		rejected = true
	}
	if rejected {
		e.Stats.WritebackRejects++
		e.tr.Anomaly(txtrace.AnomalyWPQReject, e.route(a), uint64(a), uint64(e.eng.Now()))
		if attempt < e.p.WritebackRetries {
			e.Stats.WritebackRetries++
			e.eng.After(e.p.WritebackBackoff<<attempt, func() {
				if e.destGen[a] != gen {
					e.Stats.DroppedInternal++ // a CPU write superseded the value
					return
				}
				e.tryWriteback(a, gen, tx, data, attempt+1)
			})
			return
		}
		if e.p.WritebackRetries > 0 {
			e.Stats.WritebackRetryGiveups++
		}
		if tx != 0 {
			now := uint64(e.eng.Now())
			e.tr.Complete(tx, txtrace.StageBounceWriteback, uint64(a), now, now, txtrace.FlagRejected)
		}
		return
	}
	if attempt > 0 {
		e.Stats.WritebackRetrySuccesses++
	}
	e.Stats.BounceWritebacks++
	// The write goes through the full hooked path: it trims the CTT entry
	// and, if this line is itself the source of another prospective copy,
	// triggers the dependent lazy copies first.
	done := func() {}
	if wsp := e.tr.Begin(tx, txtrace.StageBounceWriteback, uint64(a), uint64(e.eng.Now())); wsp != 0 {
		done = func() { e.tr.EndFlags(wsp, uint64(e.eng.Now()), txtrace.FlagWrite) }
	}
	e.writeReconstructed(a, gen, tx, data, done)
}

// writeReconstructed lands a lazily reconstructed destination line unless
// a CPU write to it arrived after the value was composed, in which case
// the reconstruction is stale and dropped.
func (e *Engine) writeReconstructed(a memdata.Addr, gen uint64, tx txtrace.Tx, data []byte, done func()) {
	if e.destGen[a] != gen {
		e.Stats.DroppedInternal++
		e.eng.After(0, done)
		return
	}
	e.hookedWrite(a, data, tx, done, false)
}

// composeDestLine reconstructs the 64-byte destination line at a: bytes
// covered by CTT entries are fetched from their sources (snapshot at call
// time), remaining bytes from memory. cb receives the completed line once
// all fetches finish.
func (e *Engine) composeDestLine(a memdata.Addr, tx txtrace.Tx, cb func([]byte)) {
	lr := lineRange(a)
	type seg struct {
		part memdata.Range // destination bytes within the line
		src  memdata.Addr  // source of part.Start
	}
	var segs []seg
	covered := uint64(0)
	for _, ent := range e.ctt.DestCover(lr) {
		part := ent.Dst.Intersect(lr)
		segs = append(segs, seg{part: part, src: ent.SrcFor(part.Start)})
		covered += part.Size
	}

	// Determine every line we must read: the needed source lines, plus the
	// destination line itself when entries don't cover it fully.
	needs := map[memdata.Addr][]byte{}
	var order []memdata.Addr
	addNeed := func(l memdata.Addr) {
		if _, ok := needs[l]; !ok {
			needs[l] = nil
			order = append(order, l)
		}
	}
	for _, s := range segs {
		for _, l := range (memdata.Range{Start: s.src, Size: s.part.Size}).Lines() {
			addNeed(l)
		}
	}
	if covered < memdata.LineSize {
		e.Stats.MemFills++
		addNeed(a)
	}

	remaining := len(order)
	finish := func() {
		out := make([]byte, memdata.LineSize)
		if covered < memdata.LineSize {
			copy(out, needs[a])
		}
		for _, s := range segs {
			for i := uint64(0); i < s.part.Size; i++ {
				sb := s.src + memdata.Addr(i)
				out[s.part.Start-a+memdata.Addr(i)] = needs[memdata.LineAlign(sb)][memdata.LineOffset(sb)]
			}
		}
		cb(out)
	}
	if remaining == 0 {
		finish()
		return
	}
	for _, l := range order {
		l := l
		e.Stats.BounceSrcReads++
		ssp := e.tr.Begin(tx, txtrace.StageBounceSrcRead, uint64(l), uint64(e.eng.Now()))
		e.mcs[e.route(l)].RawReadLineSnapshotTx(l, ssp, func(d []byte) {
			e.tr.End(ssp, uint64(e.eng.Now()))
			needs[l] = d
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Write path (§III-B2: "Write to destination", "Write to source")
// ---------------------------------------------------------------------------

func (e *Engine) filterWrite(mc int, a memdata.Addr, data []byte, tx txtrace.Tx, release func()) bool {
	if !memdata.IsLineAligned(a) {
		panic(fmt.Sprintf("core: controller write of unaligned address %#x", a))
	}
	// Every CPU write invalidates in-flight reconstructions of this line.
	e.destGen[a]++
	// Writes to a held line merge into the BPQ entry (state 3).
	if hw, ok := e.held[a]; ok {
		e.Stats.BPQMerges++
		if tx != 0 {
			now := uint64(e.eng.Now())
			e.tr.Complete(tx, txtrace.StageBPQMerge, uint64(a), now, now+uint64(e.p.CTTLatency), txtrace.FlagWrite)
		}
		copy(hw.data, data)
		e.inv.ObserveWrite(a, hw.data) // merged value is forwardable immediately
		e.eng.After(e.p.CTTLatency, release)
		return true
	}
	if !e.ctt.HasSrcOverlap(lineRange(a)) {
		// Write to destination (or untracked): stop tracking the line and
		// let the controller perform the write normally.
		e.Stats.OverwrittenBytes += e.ctt.RemoveDestRange(lineRange(a))
		e.wakePending()
		return false
	}
	// Write to source: hold in the BPQ while the lazy copies execute.
	qsp := e.tr.Begin(tx, txtrace.StageBPQWait, uint64(a), uint64(e.eng.Now()))
	e.acquireBPQ(mc, a, func() {
		e.tr.End(qsp, uint64(e.eng.Now()))
		e.processSrcWrite(mc, a, data, tx, release, true)
	})
	return true
}

// hookedWrite routes an engine-generated write through the same consistency
// rules as a CPU write (trim destinations, cascade through sources), but
// without consuming a CPU-visible BPQ slot when useBPQ is false — internal
// cascades are the controller's own machinery.
func (e *Engine) hookedWrite(a memdata.Addr, data []byte, tx txtrace.Tx, release func(), useBPQ bool) {
	if _, ok := e.held[a]; ok {
		// A CPU write to this line is already held in a BPQ and is newer
		// than this reconstructed value: drop the internal write (Fig 9
		// state 6: "bounce requests for D are dropped on reaching this
		// state"). The held write's processing removes the tracking.
		e.Stats.DroppedInternal++
		e.eng.After(e.p.CTTLatency, release)
		return
	}
	mc := e.route(a)
	if !e.ctt.HasSrcOverlap(lineRange(a)) {
		// Between untracking the line and the WPQ accepting the write, the
		// line's visible value is ambiguous (a read now would fetch stale
		// memory). Mark the window so the shadow oracle skips it.
		if e.inv.ShadowOn() {
			e.inv.BeginInternalWrite(a)
			inner := release
			release = func() { e.inv.EndInternalWrite(a); inner() }
		}
		e.Stats.MaterializedBytes += e.ctt.RemoveDestRange(lineRange(a))
		e.wakePending()
		e.mcs[mc].RawWriteLineOwnedTx(a, data, tx, release)
		return
	}
	if useBPQ {
		e.acquireBPQ(mc, a, func() { e.processSrcWrite(mc, a, data, tx, release, true) })
	} else {
		e.processSrcWrite(mc, a, data, tx, release, false)
	}
}

// processSrcWrite implements states 3–6 of Fig 9: the write to a tracked
// source line is held; every destination line that prospectively copies
// from it is reconstructed (from memory, not the held data) and written;
// then the held write proceeds to memory.
func (e *Engine) processSrcWrite(mc int, a memdata.Addr, data []byte, tx txtrace.Tx, release func(), slotHeld bool) {
	e.Stats.BPQHolds++
	hsp := e.tr.Begin(tx, txtrace.StageBPQHold, uint64(a), uint64(e.eng.Now()))
	hw := &heldWrite{data: append([]byte(nil), data...)}
	e.held[a] = hw
	e.inv.ObserveWrite(a, hw.data) // held value is forwardable immediately
	// The BPQ is a posted buffer: the writer proceeds once the write is
	// held (reads forward from the BPQ); the memory write lands after the
	// dependent lazy copies complete.
	e.eng.After(e.p.CTTLatency, release)

	// Collect the destination lines depending on this source line.
	lr := lineRange(a)
	depLines := map[memdata.Addr]bool{}
	var order []memdata.Addr
	for _, ent := range e.ctt.SrcOverlapping(lr) {
		ov := ent.SrcRange().Intersect(lr)
		dst := memdata.Range{Start: ent.Dst.Start + (ov.Start - ent.Src), Size: ov.Size}
		for _, dl := range dst.Lines() {
			if !depLines[dl] {
				depLines[dl] = true
				order = append(order, dl)
			}
		}
	}

	remaining := len(order)
	var finish func()
	finish = func() {
		// The paper's rule (Fig 9 state 4): the held write may only proceed
		// once no entry references this source line. A reference can
		// legitimately outlive our copies when the dependent destination
		// line is itself held in another BPQ — its tracking is removed by
		// that write's completion, so wait for it. Anything else is a bug.
		if e.ctt.HasSrcOverlap(lr) {
			for _, ent := range e.ctt.SrcOverlapping(lr) {
				ov := ent.SrcRange().Intersect(lr)
				dst := memdata.Range{Start: ent.Dst.Start + (ov.Start - ent.Src), Size: ov.Size}
				for _, dl := range dst.Lines() {
					if _, held := e.held[dl]; !held {
						panic(fmt.Sprintf("core: source %#x still referenced by entry %d after BPQ processing", a, ent.ID))
					}
				}
			}
			e.heldWaiters = append(e.heldWaiters, finish)
			return
		}
		// The held line may itself have been a tracked destination.
		e.Stats.OverwrittenBytes += e.ctt.RemoveDestRange(lr)
		delete(e.held, a)
		e.tr.EndFlags(hsp, uint64(e.eng.Now()), txtrace.FlagWrite)
		// Unheld but not yet WPQ-accepted: reads in this window fetch stale
		// memory, so mark it for the shadow oracle.
		wdone := func() {}
		if e.inv.ShadowOn() {
			e.inv.BeginInternalWrite(a)
			wdone = func() { e.inv.EndInternalWrite(a) }
		}
		e.mcs[mc].RawWriteLineOwnedTx(a, hw.data, hsp, wdone)
		if slotHeld {
			e.releaseBPQ(mc)
		}
		e.runHeldWaiters()
		e.wakePending()
	}
	if remaining == 0 {
		finish()
		return
	}
	for _, dl := range order {
		dl := dl
		e.Stats.BPQCopies++
		gen := e.destGen[dl]
		e.composeDestLine(dl, hsp, func(lineData []byte) {
			// Writing the reconstructed line trims its CTT entries and
			// cascades if the line is a source elsewhere.
			e.writeReconstructed(dl, gen, hsp, lineData, func() {
				remaining--
				if remaining == 0 {
					finish()
				}
			})
		})
	}
}

// runHeldWaiters retries BPQ finishes that were waiting for other held
// lines to drain.
func (e *Engine) runHeldWaiters() {
	if len(e.heldWaiters) == 0 {
		return
	}
	waiters := e.heldWaiters
	e.heldWaiters = nil
	for _, w := range waiters {
		w()
	}
}

func (e *Engine) acquireBPQ(mc int, a memdata.Addr, fn func()) {
	// Injected BPQ stall: the acquisition freezes for the schedule's window
	// before contending for a slot.
	if w := e.flt.FireWindow(faultinject.KindBPQStall, uint64(a), uint64(e.eng.Now())); w != 0 {
		e.eng.After(sim.Cycle(w), func() { e.acquireBPQSlot(mc, a, fn) })
		return
	}
	e.acquireBPQSlot(mc, a, fn)
}

func (e *Engine) acquireBPQSlot(mc int, a memdata.Addr, fn func()) {
	q := &e.bpqs[mc]
	if q.used < e.p.BPQCapacity {
		q.used++
		if e.inv.QueuesOn() {
			e.inv.CheckQueue(e.bpqNames[mc], q.used, e.p.BPQCapacity)
		}
		fn()
		return
	}
	e.Stats.BPQStallsFull++
	e.tr.Anomaly(txtrace.AnomalyBPQSaturated, mc, uint64(a), uint64(e.eng.Now()))
	q.waiters.Push(fn)
}

func (e *Engine) releaseBPQ(mc int) {
	q := &e.bpqs[mc]
	if q.waiters.Len() > 0 {
		q.waiters.Pop()()
		return
	}
	q.used--
	if e.inv.QueuesOn() {
		e.inv.CheckQueue(e.bpqNames[mc], q.used, e.p.BPQCapacity)
	}
}

// ---------------------------------------------------------------------------
// MCLAZY / MCFREE (§III-C)
// ---------------------------------------------------------------------------

// MCLazy records the prospective copy (dst ← src); done fires when every
// controller has accepted the CTT update. The operation stalls while the
// CTT is full or while BPQ-held lines overlap either buffer (Fig 9:
// "prospective copies involving S1 or S2 are stalled").
func (e *Engine) MCLazy(dst memdata.Range, src memdata.Addr, tx txtrace.Tx, done func()) {
	if o := e.inv; o.WatchdogOn() {
		id := o.TxBegin(uint64(dst.Start))
		inner := done
		done = func() { o.TxEnd(id); inner() }
	}
	sp := e.tr.Begin(tx, txtrace.StageCTTInsert, uint64(dst.Start), uint64(e.eng.Now()))
	pl := &pendingLazy{dst: dst, src: src, done: done, since: e.eng.Now(), sp: sp}
	e.tryLazy(pl)
}

func (e *Engine) tryLazy(pl *pendingLazy) {
	if e.lazyConflicts(pl) {
		if !pl.queued {
			e.Stats.LazyStallsBPQ++
			pl.queued = true
			e.pending = append(e.pending, pl)
		}
		pl.fullStall = false
		return
	}
	if !e.ctt.Insert(pl.dst, pl.src) {
		if !pl.queued {
			e.Stats.LazyStallsFull++
			pl.queued = true
			e.pending = append(e.pending, pl)
		}
		pl.fullStall = true
		e.maybeStartFree(true)
		return
	}
	if pl.queued {
		e.Stats.LazyStallCycles += uint64(e.eng.Now() - pl.since)
		for i, q := range e.pending {
			if q == pl {
				e.pending = append(e.pending[:i], e.pending[i+1:]...)
				break
			}
		}
	}
	// The insert redefines every destination line: any in-flight
	// reconstruction composed under an older entry is now stale.
	for _, l := range pl.dst.Lines() {
		e.destGen[l]++
	}
	e.Stats.LazyOps++
	e.Stats.LazyBytes += pl.dst.Size
	// Shadow oracle: replay the accepted copy eagerly — from this cycle on,
	// reads of dst must return the copied bytes.
	e.inv.ObserveCopy(pl.dst, pl.src)
	e.tr.End(pl.sp, uint64(e.eng.Now()+e.p.CTTLatency))
	// Injected CTT eviction storm: force the smallest entry out of the
	// table through the regular materialization path.
	if e.flt.Fire(faultinject.KindCTTEvict, uint64(pl.dst.Start), uint64(e.eng.Now())) {
		if ent := e.pickFreeEntry(); ent != nil {
			e.Stats.ForcedEvictions++
			e.materializeEntry(ent)
		}
	}
	// Graceful degradation: past the high-water mark the accepted copy is
	// materialized immediately, so sustained pressure degrades to eager
	// copying instead of wedging the table.
	if e.p.EagerCopyFrac > 0 && float64(e.ctt.Len()) >= e.p.EagerCopyFrac*float64(e.p.CTTCapacity) {
		e.Stats.EagerFallbacks++
		e.Stats.EagerFallbackBytes += pl.dst.Size
		for _, ent := range e.ctt.DestCover(pl.dst) {
			e.materializeEntry(ent)
		}
	}
	e.maybeStartFree(false)
	e.eng.After(e.p.CTTLatency, pl.done)
}

// lazyConflicts reports whether the prospective copy touches any BPQ-held
// line: its destination, its source, or — crucially — any source it would
// be redirected to by chain collapsing.
func (e *Engine) lazyConflicts(pl *pendingLazy) bool {
	if e.conflictsWithHeld(pl.dst) || e.conflictsWithHeld(memdata.Range{Start: pl.src, Size: pl.dst.Size}) {
		return true
	}
	if len(e.held) == 0 {
		return false
	}
	for _, sr := range e.ctt.PreviewSources(pl.dst, pl.src) {
		if e.conflictsWithHeld(sr) {
			return true
		}
	}
	return false
}

func (e *Engine) conflictsWithHeld(r memdata.Range) bool {
	for _, l := range r.Lines() {
		if _, ok := e.held[l]; ok {
			return true
		}
	}
	return false
}

// wakePending retries stalled MCLAZY operations after CTT or BPQ changes.
func (e *Engine) wakePending() {
	if len(e.pending) == 0 {
		return
	}
	queued := append([]*pendingLazy(nil), e.pending...)
	for _, pl := range queued {
		e.tryLazy(pl)
	}
}

// MCFree hints that the buffer r is dead: tracking for every fully
// contained destination line is dropped without copying (§III-C).
func (e *Engine) MCFree(r memdata.Range, tx txtrace.Tx, done func()) {
	if o := e.inv; o.WatchdogOn() {
		id := o.TxBegin(uint64(r.Start))
		inner := done
		done = func() { o.TxEnd(id); inner() }
	}
	if tx != 0 {
		now := uint64(e.eng.Now())
		e.tr.Complete(tx, txtrace.StageCTTInsert, uint64(r.Start), now, now+uint64(e.p.CTTLatency), 0)
	}
	start := memdata.LineUp(r.Start)
	end := memdata.LineAlign(r.End())
	if end > start {
		inner := memdata.Range{Start: start, Size: uint64(end - start)}
		// Shadow oracle: MCFREE is the last cycle the buffer's contents are
		// defined — compare the visible value of still-tracked lines against
		// the shadow before dropping their tracking (bounded per free).
		if e.inv.ShadowOn() {
			checked := 0
			for _, l := range inner.Lines() {
				if checked >= maxFreeChecks {
					break
				}
				if len(e.ctt.DestCover(lineRange(l))) == 0 {
					continue
				}
				checked++
				e.inv.CheckFreeLine(l, e.peekVisibleLine(l))
			}
		}
		e.Stats.MCFreedBytes += e.ctt.RemoveDestRange(inner)
		// Freed lines are undefined; stale in-flight reconstructions must
		// not land after the free and resurrect old data as fresh writes.
		for _, l := range inner.Lines() {
			e.destGen[l]++
		}
		e.inv.ObserveFree(inner)
	}
	e.Stats.MCFrees++
	e.wakePending()
	e.eng.After(e.p.CTTLatency, done)
}

// maxFreeChecks bounds the number of still-tracked lines the shadow oracle
// byte-compares per MCFREE (the peek composes values synchronously).
const maxFreeChecks = 64

// peekVisibleLine computes the value a read of line a issued now would
// bind, with no timing, stats, or side effects: BPQ-held data wins, then a
// synchronous compose over the CTT with WPQ-forward/phys source bytes —
// the same precedence as the event-driven read path.
func (e *Engine) peekVisibleLine(a memdata.Addr) []byte {
	if hw, ok := e.held[a]; ok {
		return append([]byte(nil), hw.data...)
	}
	lr := lineRange(a)
	out := make([]byte, memdata.LineSize)
	copy(out, e.mcs[e.route(a)].PeekLine(a))
	for _, ent := range e.ctt.DestCover(lr) {
		part := ent.Dst.Intersect(lr)
		src := ent.SrcFor(part.Start)
		for i := uint64(0); i < part.Size; i++ {
			sa := src + memdata.Addr(i)
			sl := e.mcs[e.route(sa)].PeekLine(memdata.LineAlign(sa))
			out[part.Start-a+memdata.Addr(i)] = sl[memdata.LineOffset(sa)]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Asynchronous freeing (§III-A1 "Avoiding CTT overflow", §V-C scalability)
// ---------------------------------------------------------------------------

func (e *Engine) freeTarget() int {
	return int(e.p.FreeThreshold * float64(e.p.CTTCapacity))
}

// maybeStartFree spawns free workers while occupancy is at or above the
// threshold. Each worker evicts the smallest entry by performing its copy,
// then re-checks occupancy. force starts a worker even below threshold
// (used when an MCLAZY stalled on a full table).
func (e *Engine) maybeStartFree(force bool) {
	limit := e.p.ParallelFrees * len(e.mcs)
	// pickFreeEntry guards against a livelock: with every live entry already
	// claimed by a worker (tiny table, high parallelism), starting another
	// worker would have it exit immediately and the loop spin forever.
	for e.freeWorkers < limit && e.pickFreeEntry() != nil && (e.ctt.Len() >= e.freeTarget() || (force && e.freeWorkers == 0 && e.ctt.Len() > 0)) {
		e.freeWorkers++
		e.freeWorker()
		force = false
	}
}

func (e *Engine) hasFullStall() bool {
	for _, pl := range e.pending {
		if pl.fullStall {
			return true
		}
	}
	return false
}

// pickFreeEntry returns the smallest unclaimed entry, or nil. Claiming
// prevents parallel workers from redundantly copying the same entry.
func (e *Engine) pickFreeEntry() *Entry {
	var best *Entry
	for _, ent := range e.ctt.Entries() {
		if e.freeing[ent.ID] {
			continue
		}
		if best == nil || ent.Dst.Size < best.Dst.Size ||
			(ent.Dst.Size == best.Dst.Size && ent.ID < best.ID) {
			best = ent
		}
	}
	return best
}

func (e *Engine) freeWorker() {
	if e.ctt.Len() < e.freeTarget() && !e.hasFullStall() {
		e.freeWorkers--
		e.inv.CheckRefcount("core.free_workers", e.freeWorkers)
		return
	}
	ent := e.pickFreeEntry()
	if ent == nil {
		e.freeWorkers--
		e.inv.CheckRefcount("core.free_workers", e.freeWorkers)
		return
	}
	e.freeing[ent.ID] = true
	e.Stats.Frees++
	e.Stats.FreedBytes += ent.Dst.Size
	fsp := e.tr.BeginRoot(txtrace.StageFree, txtrace.TrackEngine, uint64(ent.Dst.Start), uint64(e.eng.Now()))
	lines := ent.Dst.Lines()
	var step func(i int)
	step = func(i int) {
		// The entry may shrink or vanish while we work (writes, bounces).
		for i < len(lines) && e.ctt.LookupDest(lines[i]) == nil {
			i++
		}
		if i >= len(lines) {
			delete(e.freeing, ent.ID)
			e.tr.End(fsp, uint64(e.eng.Now()))
			e.eng.After(0, e.freeWorker)
			return
		}
		dl := lines[i]
		// Background freeing yields to demand traffic: back off while the
		// destination controller's write queue is busy.
		if e.mcs[e.route(dl)].WPQOccupancy() >= 0.5 {
			e.eng.After(e.p.FreePacing, func() { step(i) })
			return
		}
		gen := e.destGen[dl]
		e.composeDestLine(dl, fsp, func(data []byte) {
			e.writeReconstructed(dl, gen, fsp, data, func() {
				e.eng.After(e.p.FreePacing, func() { step(i + 1) })
			})
		})
	}
	step(0)
}

// materializeEntry eagerly performs one CTT entry's copy and thereby
// evicts it, using the same compose/write/trim machinery as the async free
// workers but pinned to this entry and without pacing — forced evictions
// (injected faults) and the eager-copy fallback are urgent, not
// background, work. Claimed entries are skipped (a worker already owns
// them).
func (e *Engine) materializeEntry(ent *Entry) {
	if ent == nil || e.freeing[ent.ID] {
		return
	}
	e.freeing[ent.ID] = true
	e.freeWorkers++
	e.Stats.Frees++
	e.Stats.FreedBytes += ent.Dst.Size
	fsp := e.tr.BeginRoot(txtrace.StageFree, txtrace.TrackEngine, uint64(ent.Dst.Start), uint64(e.eng.Now()))
	lines := ent.Dst.Lines()
	var step func(i int)
	step = func(i int) {
		for i < len(lines) && e.ctt.LookupDest(lines[i]) == nil {
			i++
		}
		if i >= len(lines) {
			delete(e.freeing, ent.ID)
			e.tr.End(fsp, uint64(e.eng.Now()))
			e.freeWorkers--
			e.inv.CheckRefcount("core.free_workers", e.freeWorkers)
			e.wakePending()
			return
		}
		dl := lines[i]
		gen := e.destGen[dl]
		e.composeDestLine(dl, fsp, func(data []byte) {
			e.writeReconstructed(dl, gen, fsp, data, func() { step(i + 1) })
		})
	}
	step(0)
}
