package core

import "mcsquare/internal/metrics"

// PublishMetrics registers the lazy-copy engine's counters under the
// "engine" namespace and the copy tracking table's under "ctt". Called by
// the machine with its root scope.
func (e *Engine) PublishMetrics(s metrics.Scope) {
	en := s.Scope("engine")
	en.Counter("lazy_ops", &e.Stats.LazyOps)
	en.Counter("lazy_bytes", &e.Stats.LazyBytes)
	en.Counter("lazy_stalls_full", &e.Stats.LazyStallsFull)
	en.Counter("lazy_stalls_bpq", &e.Stats.LazyStallsBPQ)
	en.Counter("lazy_stall_cycles", &e.Stats.LazyStallCycles)
	en.Counter("bounces", &e.Stats.Bounces)
	en.Counter("bounce_src_reads", &e.Stats.BounceSrcReads)
	en.Counter("bounce_writebacks", &e.Stats.BounceWritebacks)
	en.Counter("writeback_rejects", &e.Stats.WritebackRejects)
	en.Counter("mem_fills", &e.Stats.MemFills)
	en.Counter("bpq_holds", &e.Stats.BPQHolds)
	en.Counter("bpq_merges", &e.Stats.BPQMerges)
	en.Counter("bpq_forwards", &e.Stats.BPQForwards)
	en.Counter("bpq_stalls_full", &e.Stats.BPQStallsFull)
	en.Counter("bpq_copies", &e.Stats.BPQCopies)
	en.Counter("dropped_internal", &e.Stats.DroppedInternal)
	en.Counter("frees", &e.Stats.Frees)
	en.Counter("freed_bytes", &e.Stats.FreedBytes)
	en.Counter("mcfrees", &e.Stats.MCFrees)
	en.Counter("eager_fallbacks", &e.Stats.EagerFallbacks)
	en.Counter("eager_fallback_bytes", &e.Stats.EagerFallbackBytes)
	en.Counter("forced_evictions", &e.Stats.ForcedEvictions)
	en.Counter("writeback_retries", &e.Stats.WritebackRetries)
	en.Counter("writeback_retry_successes", &e.Stats.WritebackRetrySuccesses)
	en.Counter("writeback_retry_giveups", &e.Stats.WritebackRetryGiveups)
	en.Counter("overwritten_bytes", &e.Stats.OverwrittenBytes)
	en.Counter("materialized_bytes", &e.Stats.MaterializedBytes)
	en.Counter("mcfreed_bytes", &e.Stats.MCFreedBytes)

	ct := s.Scope("ctt")
	ct.Counter("inserts", &e.ctt.Stats.Inserts)
	ct.Counter("pieces", &e.ctt.Stats.Pieces)
	ct.Counter("merges", &e.ctt.Stats.Merges)
	ct.Counter("collapses", &e.ctt.Stats.Collapses)
	ct.Counter("identities", &e.ctt.Stats.Identities)
	ct.Counter("trims", &e.ctt.Stats.Trims)
	ct.Counter("removed", &e.ctt.Stats.Removed)
	ct.Counter("deferred_bytes", &e.ctt.Stats.DeferredBytes)
	ct.Counter("untracked_bytes", &e.ctt.Stats.UntrackedBytes)
	ct.Counter("replaced_bytes", &e.ctt.Stats.ReplacedBytes)
	ct.Gauge("high_water", func() float64 { return float64(e.ctt.Stats.HighWater) })
	ct.Gauge("entries", func() float64 { return float64(e.ctt.Len()) })
	ct.Gauge("tracked_bytes", func() float64 { return float64(e.ctt.TrackedBytes()) })
}
