package core

import (
	"math/rand"
	"testing"

	"mcsquare/internal/memdata"
)

const line = memdata.LineSize

func rng(start, size uint64) memdata.Range {
	return memdata.Range{Start: memdata.Addr(start), Size: size}
}

func mustInsert(t *testing.T, c *CTT, dst memdata.Range, src memdata.Addr) {
	t.Helper()
	if !c.Insert(dst, src) {
		t.Fatalf("Insert(%+v <- %#x) hit capacity", dst, src)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBasic(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, 2*line), 0x8000)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	e := c.LookupDest(0x1000 + 70)
	if e == nil || e.Src != 0x8000 {
		t.Fatalf("LookupDest = %+v", e)
	}
	if e.SrcFor(0x1040) != 0x8040 {
		t.Fatalf("SrcFor = %#x", e.SrcFor(0x1040))
	}
	if c.LookupDest(0x1000+2*line) != nil {
		t.Fatal("LookupDest past end matched")
	}
}

func TestInsertTrimsOverlappingDest(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, 4*line), 0x8000)
	// New copy overwrites the middle two lines of the old destination.
	mustInsert(t, c, rng(0x1040, 2*line), 0x20000)
	// Old entry must be split into the first and last line.
	if e := c.LookupDest(0x1000); e == nil || e.Src != 0x8000 || e.Dst.Size != line {
		t.Fatalf("head fragment: %+v", e)
	}
	if e := c.LookupDest(0x10C0); e == nil || e.Src != 0x80C0 || e.Dst.Size != line {
		t.Fatalf("tail fragment: %+v", e)
	}
	if e := c.LookupDest(0x1040); e == nil || e.Src != 0x20000 || e.Dst.Size != 2*line {
		t.Fatalf("new entry: %+v", e)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestInsertExactOverwriteReplaces(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, 2*line), 0x8000)
	mustInsert(t, c, rng(0x1000, 2*line), 0x9000)
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if e := c.LookupDest(0x1000); e.Src != 0x9000 {
		t.Fatalf("Src = %#x", e.Src)
	}
}

func TestChainCollapse(t *testing.T) {
	c := NewCTT(16)
	// copy 1: A(0x8000) -> B(0x1000); copy 2: B -> C(0x4000).
	mustInsert(t, c, rng(0x1000, 2*line), 0x8000)
	mustInsert(t, c, rng(0x4000, 2*line), 0x1000)
	e := c.LookupDest(0x4000)
	if e == nil || e.Src != 0x8000 {
		t.Fatalf("chain not collapsed: %+v", e)
	}
	if c.Stats.Collapses == 0 {
		t.Fatal("collapse not counted")
	}
}

func TestChainCollapsePartial(t *testing.T) {
	c := NewCTT(16)
	// B[0x1000,0x1080) <- A. Then C <- [0xFC0, 0x10C0): one line before B,
	// two lines inside B's tracked range... only the first line of B is
	// covered by the new source's middle portion.
	mustInsert(t, c, rng(0x1000, 2*line), 0x8000)
	// New copy: dst 0x4000 size 4 lines, src 0xFC0 (covers line before B,
	// B's two lines, then one line after B).
	mustInsert(t, c, rng(0x4000, 4*line), 0xFC0)
	// Expect three pieces: src 0xFC0 (1 line, not redirected),
	// src 0x8000 (2 lines, redirected), src 0x10C0->? (1 line, not redirected).
	if e := c.LookupDest(0x4000); e == nil || e.Src != 0xFC0 || e.Dst.Size != line {
		t.Fatalf("head piece: %+v", e)
	}
	if e := c.LookupDest(0x4040); e == nil || e.Src != 0x8000 || e.Dst.Size != 2*line {
		t.Fatalf("redirected piece: %+v", e)
	}
	if e := c.LookupDest(0x40C0); e == nil || e.Src != 0x1080 || e.Dst.Size != line {
		t.Fatalf("tail piece: %+v", e)
	}
}

func TestIdentityPieceDropped(t *testing.T) {
	c := NewCTT(16)
	// B <- A, then A <- B: the second collapses to A <- A and is dropped.
	mustInsert(t, c, rng(0x1000, line), 0x8000)
	mustInsert(t, c, rng(0x8000, line), 0x1000)
	if c.LookupDest(0x8000) != nil {
		t.Fatal("identity copy was tracked")
	}
	if c.Stats.Identities != 1 {
		t.Fatalf("Identities = %d", c.Stats.Identities)
	}
	// The original entry must survive.
	if c.LookupDest(0x1000) == nil {
		t.Fatal("original entry lost")
	}
}

func TestAdjacentMerge(t *testing.T) {
	c := NewCTT(16)
	// Element-by-element copies of a contiguous array merge into one entry.
	for i := uint64(0); i < 8; i++ {
		mustInsert(t, c, rng(0x1000+i*line, line), memdata.Addr(0x8000+i*line))
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 merged entry", c.Len())
	}
	e := c.LookupDest(0x1000)
	if e.Dst.Size != 8*line || e.Src != 0x8000 {
		t.Fatalf("merged entry: %+v", e)
	}
	if c.Stats.Merges != 7 {
		t.Fatalf("Merges = %d", c.Stats.Merges)
	}
}

func TestMergeBackward(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1040, line), 0x8040)
	mustInsert(t, c, rng(0x1000, line), 0x8000) // immediately before existing
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	e := c.LookupDest(0x1000)
	if e.Dst.Size != 2*line || e.Src != 0x8000 {
		t.Fatalf("merged entry: %+v", e)
	}
}

func TestMergeRespectsMaxSize(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x400000, MaxEntrySize), 0x4000000)
	// Adjacent in both dst and src, but merging would exceed 2 MB.
	mustInsert(t, c, rng(0x400000+MaxEntrySize, line), 0x4000000+MaxEntrySize)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, merge exceeded 21-bit size", c.Len())
	}
}

func TestNoMergeWhenSourcesDisjoint(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, line), 0x8000)
	mustInsert(t, c, rng(0x1040, line), 0x9000) // adjacent dst, distant src
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestRemoveDestRange(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, 4*line), 0x8000)
	// Write to the second line: the entry splits around it.
	trimmed := c.RemoveDestRange(rng(0x1040, line))
	if trimmed != line {
		t.Fatalf("trimmed = %d", trimmed)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.LookupDest(0x1040) != nil {
		t.Fatal("trimmed line still tracked")
	}
	if e := c.LookupDest(0x1000); e == nil || e.Dst.Size != line {
		t.Fatalf("head: %+v", e)
	}
	if e := c.LookupDest(0x1080); e == nil || e.Src != 0x8080 || e.Dst.Size != 2*line {
		t.Fatalf("tail: %+v", e)
	}
	// Removing a range nothing tracks returns 0.
	if c.RemoveDestRange(rng(0x90000, line)) != 0 {
		t.Fatal("untracked trim returned nonzero")
	}
}

func TestSrcOverlapping(t *testing.T) {
	c := NewCTT(16)
	mustInsert(t, c, rng(0x1000, 2*line), 0x8000)
	mustInsert(t, c, rng(0x4000, 2*line), 0x8040) // shares source line 0x8040
	got := c.SrcOverlapping(rng(0x8040, line))
	if len(got) != 2 {
		t.Fatalf("SrcOverlapping found %d entries, want 2", len(got))
	}
	if got[0].ID >= got[1].ID {
		t.Fatal("SrcOverlapping not in insertion order")
	}
	if !c.HasSrcOverlap(rng(0x8000, 1)) || c.HasSrcOverlap(rng(0x20000, line)) {
		t.Fatal("HasSrcOverlap wrong")
	}
}

func TestCapacityRefusalLeavesTableUnchanged(t *testing.T) {
	c := NewCTT(2)
	mustInsert(t, c, rng(0x1000, line), 0x8000)
	mustInsert(t, c, rng(0x3000, line), 0x9000)
	// This insert would split nothing and add one entry: over capacity.
	if c.Insert(rng(0x5000, line), 0xA000) {
		t.Fatal("Insert succeeded over capacity")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after refused insert", c.Len())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// An exact overwrite frees as much as it adds and must succeed.
	if !c.Insert(rng(0x1000, line), 0xB000) {
		t.Fatal("replacement insert refused")
	}
}

func TestSmallest(t *testing.T) {
	c := NewCTT(16)
	if c.Smallest() != nil {
		t.Fatal("Smallest of empty table")
	}
	mustInsert(t, c, rng(0x1000, 4*line), 0x8000)
	mustInsert(t, c, rng(0x3000, line), 0x9000)
	mustInsert(t, c, rng(0x5000, 2*line), 0xA000)
	if e := c.Smallest(); e.Dst.Start != 0x3000 {
		t.Fatalf("Smallest = %+v", e)
	}
}

func TestInsertAlignmentPanics(t *testing.T) {
	c := NewCTT(16)
	for name, fn := range map[string]func(){
		"unaligned dst":  func() { c.Insert(rng(0x1001, line), 0x8000) },
		"partial line":   func() { c.Insert(rng(0x1000, 32), 0x8000) },
		"zero size":      func() { c.Insert(rng(0x1000, 0), 0x8000) },
		"over huge page": func() { c.Insert(rng(0x1000, MaxEntrySize+line), 0x8000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// ---------------------------------------------------------------------------
// Oracle-based randomized test.
//
// The oracle maps every destination byte to the "ultimate" source byte it
// will be lazily filled from (or nothing if untracked). The CTT must agree:
// for every tracked destination byte, following the entry's mapping and the
// oracle's mapping must land at the same address.
// ---------------------------------------------------------------------------

type byteOracle struct {
	m map[memdata.Addr]memdata.Addr // dst byte -> ultimate src byte
}

func newByteOracle() *byteOracle { return &byteOracle{m: make(map[memdata.Addr]memdata.Addr)} }

func (o *byteOracle) insert(dst memdata.Range, src memdata.Addr) {
	// Resolve each new destination byte through the existing mapping
	// (chain collapse), dropping identities.
	resolved := make([]memdata.Addr, dst.Size)
	for i := uint64(0); i < dst.Size; i++ {
		s := src + memdata.Addr(i)
		if ult, ok := o.m[s]; ok {
			s = ult
		}
		resolved[i] = s
	}
	for i := uint64(0); i < dst.Size; i++ {
		d := dst.Start + memdata.Addr(i)
		if resolved[i] == d {
			delete(o.m, d)
		} else {
			o.m[d] = resolved[i]
		}
	}
}

func (o *byteOracle) removeDest(r memdata.Range) {
	for i := uint64(0); i < r.Size; i++ {
		delete(o.m, r.Start+memdata.Addr(i))
	}
}

func TestCTTMatchesOracleRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	c := NewCTT(1 << 16) // effectively unbounded for this test
	o := newByteOracle()

	const region = 1 << 16 // keep addresses colliding often
	randLineAddr := func() memdata.Addr {
		return memdata.Addr(r.Intn(region/line)) * line
	}

	for step := 0; step < 3000; step++ {
		switch r.Intn(3) {
		case 0, 1: // insert
			size := uint64(1+r.Intn(8)) * line
			dst := memdata.Range{Start: randLineAddr(), Size: size}
			src := memdata.Addr(r.Intn(region)) // arbitrary byte alignment
			c.Insert(dst, src)
			o.insert(dst, src)
		case 2: // remove a dest range (a write or MCFREE)
			size := uint64(1+r.Intn(4)) * line
			rr := memdata.Range{Start: randLineAddr(), Size: size}
			c.RemoveDestRange(rr)
			o.removeDest(rr)
		}
		if step%100 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Full cross-check over the region.
	for a := memdata.Addr(0); a < region; a++ {
		e := c.LookupDest(a)
		want, tracked := o.m[a]
		if e == nil {
			if tracked {
				t.Fatalf("byte %#x: oracle tracked -> %#x, CTT untracked", a, want)
			}
			continue
		}
		got := e.SrcFor(a)
		if !tracked {
			t.Fatalf("byte %#x: CTT tracked -> %#x, oracle untracked", a, got)
		}
		if got != want {
			t.Fatalf("byte %#x: CTT -> %#x, oracle -> %#x", a, got, want)
		}
	}
}

func BenchmarkCTTInsertLookup(b *testing.B) {
	c := NewCTT(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst := rng(uint64(i%1000)*4096, 16*line)
		c.Insert(dst, memdata.Addr(0x10000000+uint64(i%997)*4096))
		c.LookupDest(dst.Start + 64)
		if c.Len() > 1500 {
			c.RemoveDestRange(dst)
		}
	}
}

// Property: PreviewSources predicts exactly the source ranges the insert
// creates (same table state, no mutation by the preview).
func TestPreviewSourcesMatchesInsertQuick(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		c := NewCTT(1 << 12)
		// Seed with a few random entries.
		for i := 0; i < 5; i++ {
			size := uint64(1+r.Intn(6)) * line
			dst := memdata.Addr(r.Intn(1<<14)) &^ (line - 1)
			src := memdata.Addr(r.Intn(1 << 14))
			c.Insert(memdata.Range{Start: dst, Size: size}, src)
		}
		size := uint64(1+r.Intn(6)) * line
		dst := memdata.Range{Start: memdata.Addr(r.Intn(1<<14)) &^ (line - 1), Size: size}
		src := memdata.Addr(r.Intn(1 << 14))

		preview := c.PreviewSources(dst, src)
		before := c.Len()
		if !c.Insert(dst, src) {
			t.Fatal("insert refused with huge capacity")
		}
		_ = before
		// Every byte of the inserted destination must map to the source
		// byte the preview predicted.
		pi := 0
		off := uint64(0)
		for _, e := range c.DestCover(dst) {
			part := e.Dst.Intersect(dst)
			for b := uint64(0); b < part.Size; b++ {
				want := e.SrcFor(part.Start + memdata.Addr(b))
				// Advance through preview ranges to find the matching byte.
				for pi < len(preview) && off >= preview[pi].Size {
					pi++
					off = 0
				}
				if pi >= len(preview) {
					break // identity-dropped bytes have no preview range
				}
				got := preview[pi].Start + memdata.Addr(off)
				if got != want {
					t.Fatalf("trial %d: preview %#x != actual %#x", trial, got, want)
				}
				off++
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
