package core

import (
	"bytes"
	"testing"

	"mcsquare/internal/memdata"
)

// Failure-injection regression tests (DESIGN.md §7): each drives one bounded
// resource well past its limit — a CTT overflow storm, a saturated BPQ, a
// write-path that rejects every bounce writeback — and asserts both the
// stall/reject accounting and observational equivalence against the shadow
// eager-copy oracle. The point is that overload degrades into stalls and
// retries, never into wrong data.

// sweepRegion checks every line of [start, end) against the shadow.
func sweepRegion(r *rig, start, end memdata.Addr, what string) {
	for a := start; a < end; a += line {
		r.check(a, what)
	}
}

// TestFailureCTTOverflowStorm: a 4-entry CTT receives 40 unmergeable copies
// interleaved with source writes and demand reads. MCLAZY must stall (and
// account the stalled cycles), asynchronous freeing must run, and every
// byte must still match the oracle.
func TestFailureCTTOverflowStorm(t *testing.T) {
	p := DefaultParams()
	p.CTTCapacity = 4
	p.FreeThreshold = 0.5
	p.ParallelFrees = 2
	r := newRig(t, p)
	r.fill(31)
	const n = 40
	dstAt := func(i uint64) memdata.Range { return rng(0x10000+i*0x1000, 2*line) }
	srcAt := func(i uint64) memdata.Addr { return memdata.Addr(0x80000 + i*0x1000) }
	r.run(func() {
		for i := uint64(0); i < n; i++ {
			r.lazyCopy(dstAt(i), srcAt(i))
			if i%4 == 1 {
				// Dirty an earlier source: forces a BPQ-held lazy copy while
				// the table is already saturated.
				a := srcAt(i - 1)
				d := bytes.Repeat([]byte{byte(i)}, line)
				r.write(a, d)
			}
			if i%3 == 2 {
				r.check(dstAt(i-1).Start, "read under storm")
			}
		}
		sweepRegion(r, 0x10000, memdata.Addr(0x10000+n*0x1000), "dest sweep")
		sweepRegion(r, 0x80000, memdata.Addr(0x80000+n*0x1000), "source sweep")
	})
	s := r.lazy.Stats
	if s.LazyStallsFull == 0 {
		t.Fatal("40 copies through a 4-entry CTT never stalled on capacity")
	}
	if s.LazyStallCycles == 0 {
		t.Fatal("stalls recorded but no stall cycles accounted")
	}
	if s.Frees == 0 {
		t.Fatal("async freeing never relieved the full CTT")
	}
	if s.LazyOps != n {
		t.Fatalf("LazyOps = %d, want %d (no copy may be dropped)", s.LazyOps, n)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after the storm drained")
	}
}

// TestFailureBPQSaturation: a single-slot BPQ takes a burst of 32 posted
// source writes against one big tracked copy. Writes must queue (stall),
// every held line must still trigger its lazy copy, and both the as-of-copy
// destination and the post-write source must match the oracle.
func TestFailureBPQSaturation(t *testing.T) {
	p := DefaultParams()
	p.BPQCapacity = 1
	r := newRig(t, p)
	r.fill(32)
	const lines = 32
	r.run(func() {
		dst := rng(0x10000, lines*line)
		r.lazyCopy(dst, 0x80000)
		released := 0
		for i := uint64(0); i < lines; i++ {
			a := memdata.Addr(0x80000 + i*line)
			d := bytes.Repeat([]byte{0xC0 | byte(i)}, line)
			r.shadow.WriteLine(a, d)
			r.mc(a).WriteLine(a, d, func() { released++ })
		}
		for released < lines {
			r.proc.Wait(1000)
		}
		sweepRegion(r, 0x10000, 0x10000+lines*line, "dest as-of-copy")
		sweepRegion(r, 0x80000, 0x80000+lines*line, "source new data")
	})
	s := r.lazy.Stats
	if s.BPQStallsFull == 0 {
		t.Fatal("32 posted writes through a 1-slot BPQ never stalled")
	}
	if s.BPQHolds == 0 || s.BPQCopies == 0 {
		t.Fatalf("BPQ machinery idle under saturation: %+v", s)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after BPQ drained")
	}
}

// TestFailureWPQWriteRejection: with the WPQ-pressure rule pinned to reject
// every bounce writeback (the extreme of the paper's 75% threshold), bounces
// keep servicing reads correctly, entries stay live, and no writeback ever
// lands.
func TestFailureWPQWriteRejection(t *testing.T) {
	p := DefaultParams()
	p.WPQRejectFrac = 0
	r := newRig(t, p)
	r.fill(33)
	const lines = 8
	r.run(func() {
		dst := rng(0x10000, lines*line)
		r.lazyCopy(dst, 0x80000)
		// Two read passes: the first's writebacks are all rejected, so the
		// second must bounce again — and still be correct.
		for pass := 0; pass < 2; pass++ {
			sweepRegion(r, 0x10000, 0x10000+lines*line, "bounce pass")
		}
	})
	s := r.lazy.Stats
	if s.WritebackRejects == 0 {
		t.Fatal("no writebacks rejected despite WPQRejectFrac=0")
	}
	if s.BounceWritebacks != 0 {
		t.Fatalf("BounceWritebacks = %d, want 0 (every writeback must be refused)", s.BounceWritebacks)
	}
	if s.Bounces < 2*lines {
		t.Fatalf("Bounces = %d, want >= %d (rejected lines must bounce again)", s.Bounces, 2*lines)
	}
	if r.lazy.CTT().Len() == 0 {
		t.Fatal("entries vanished although no writeback ever trimmed them")
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
