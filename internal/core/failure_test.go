package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memdata"
)

// Failure-injection regression tests (DESIGN.md §12): every fault is
// injected through an internal/faultinject schedule — the single injection
// mechanism — bound around rig construction exactly as the runner binds one
// around a job. Each test drives one fault kind hard (forced CTT evictions,
// BPQ stall windows, WPQ rejection bursts, DRAM read corruption) and
// asserts both the fault accounting and observational equivalence against
// the shadow eager-copy oracle. The point is that injected adversity
// degrades into stalls, retries, and eager fallbacks — never into wrong
// data.

// newFaultRig builds a rig with sched's fault plane installed and, when
// icfg enables anything, the invariant oracles too (readable as r.flt and
// r.inv). The collectors are bound only around construction, mirroring how
// the runner scopes them to one job.
func newFaultRig(t *testing.T, p Params, sched faultinject.Schedule, icfg invariant.Config) *rig {
	t.Helper()
	frel := faultinject.NewCollector(&sched).Bind()
	irel := invariant.NewCollector(icfg).Bind()
	r := newRig(t, p)
	frel()
	irel()
	return r
}

// sweepRegion checks every line of [start, end) against the shadow.
func sweepRegion(r *rig, start, end memdata.Addr, what string) {
	for a := start; a < end; a += line {
		r.check(a, what)
	}
}

// TestFaultCTTEvictionStorm: every second accepted MCLAZY forces the
// eviction (eager materialization) of a live CTT entry. Copies must all be
// accepted, forced frees must run, and every byte must still match the
// oracle.
func TestFaultCTTEvictionStorm(t *testing.T) {
	sched := faultinject.Schedule{Seed: 31, CTTEvictEvery: 2}
	r := newFaultRig(t, DefaultParams(), sched, invariant.Config{})
	r.fill(31)
	const n = 24
	r.run(func() {
		for i := uint64(0); i < n; i++ {
			r.lazyCopy(rng(0x10000+i*0x1000, 2*line), memdata.Addr(0x80000+i*0x1000))
		}
		sweepRegion(r, 0x10000, memdata.Addr(0x10000+n*0x1000), "dest sweep")
		sweepRegion(r, 0x80000, memdata.Addr(0x80000+n*0x1000), "source sweep")
	})
	if got := r.flt.Fired(faultinject.KindCTTEvict); got == 0 {
		t.Fatal("schedule with CTTEvictEvery=2 never fired")
	}
	s := r.lazy.Stats
	if s.ForcedEvictions == 0 {
		t.Fatal("fired evictions materialized no entry")
	}
	if s.Frees == 0 || s.FreedBytes == 0 {
		t.Fatalf("forced evictions did not run the free path: %+v", s)
	}
	if s.LazyOps != n {
		t.Fatalf("LazyOps = %d, want %d (no copy may be dropped)", s.LazyOps, n)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after the storm drained")
	}
}

// TestFaultBPQStallWindows: every second BPQ acquisition is stalled for a
// 400-cycle window. Held source writes must still complete their lazy
// copies, and both the as-of-copy destination and the post-write source
// must match the oracle.
func TestFaultBPQStallWindows(t *testing.T) {
	sched := faultinject.Schedule{Seed: 32, BPQStallEvery: 2, BPQStallCycles: 400}
	r := newFaultRig(t, DefaultParams(), sched, invariant.Config{})
	r.fill(32)
	const lines = 16
	r.run(func() {
		dst := rng(0x10000, lines*line)
		r.lazyCopy(dst, 0x80000)
		released := 0
		for i := uint64(0); i < lines; i++ {
			a := memdata.Addr(0x80000 + i*line)
			d := bytes.Repeat([]byte{0xC0 | byte(i)}, line)
			r.shadow.WriteLine(a, d)
			r.mc(a).WriteLine(a, d, func() { released++ })
		}
		for released < lines {
			r.proc.Wait(1000)
		}
		sweepRegion(r, 0x10000, 0x10000+lines*line, "dest as-of-copy")
		sweepRegion(r, 0x80000, 0x80000+lines*line, "source new data")
	})
	if got := r.flt.Fired(faultinject.KindBPQStall); got == 0 {
		t.Fatal("schedule with BPQStallEvery=2 never fired")
	}
	s := r.lazy.Stats
	if s.BPQHolds == 0 || s.BPQCopies == 0 {
		t.Fatalf("BPQ machinery idle under stall windows: %+v", s)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after BPQ drained")
	}
}

// TestFaultWPQRejectionBurst: the plane rejects every bounce writeback
// regardless of WPQ occupancy (WPQRejectEvery=1 — the injected extreme of
// the paper's 75% rule). Bounces keep servicing reads correctly, entries
// stay live, and no writeback ever lands.
func TestFaultWPQRejectionBurst(t *testing.T) {
	sched := faultinject.Schedule{Seed: 33, WPQRejectEvery: 1}
	r := newFaultRig(t, DefaultParams(), sched, invariant.Config{})
	r.fill(33)
	const lines = 8
	r.run(func() {
		dst := rng(0x10000, lines*line)
		r.lazyCopy(dst, 0x80000)
		// Two read passes: the first's writebacks are all rejected, so the
		// second must bounce again — and still be correct.
		for pass := 0; pass < 2; pass++ {
			sweepRegion(r, 0x10000, 0x10000+lines*line, "bounce pass")
		}
	})
	s := r.lazy.Stats
	if got := r.flt.Fired(faultinject.KindWPQReject); got == 0 {
		t.Fatal("schedule with WPQRejectEvery=1 never fired")
	}
	if s.WritebackRejects == 0 {
		t.Fatal("no writebacks rejected despite the burst schedule")
	}
	if s.BounceWritebacks != 0 {
		t.Fatalf("BounceWritebacks = %d, want 0 (every writeback must be refused)", s.BounceWritebacks)
	}
	if s.Bounces < 2*lines {
		t.Fatalf("Bounces = %d, want >= %d (rejected lines must bounce again)", s.Bounces, 2*lines)
	}
	if r.lazy.CTT().Len() == 0 {
		t.Fatal("entries vanished although no writeback ever trimmed them")
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultWritebackRetrySucceeds: with bounded retry-with-backoff enabled,
// a rejected writeback is retried and (the next offer not firing under
// WPQRejectEvery=2) lands, trimming its entry — graceful degradation
// instead of a permanent bounce.
func TestFaultWritebackRetrySucceeds(t *testing.T) {
	sched := faultinject.Schedule{Seed: 34, WPQRejectEvery: 2}
	p := DefaultParams()
	p.WritebackRetries = 3
	r := newFaultRig(t, p, sched, invariant.Config{})
	r.fill(34)
	const lines = 8
	r.run(func() {
		dst := rng(0x10000, lines*line)
		r.lazyCopy(dst, 0x80000)
		sweepRegion(r, 0x10000, 0x10000+lines*line, "first pass")
		sweepRegion(r, 0x10000, 0x10000+lines*line, "second pass")
	})
	s := r.lazy.Stats
	if r.flt.Fired(faultinject.KindWPQReject) == 0 {
		t.Fatal("schedule with WPQRejectEvery=2 never fired")
	}
	if s.WritebackRetries == 0 {
		t.Fatal("rejected writebacks were never retried despite WritebackRetries=3")
	}
	if s.WritebackRetrySuccesses == 0 {
		t.Fatal("no retried writeback ever landed")
	}
	if s.WritebackRetryGiveups != 0 {
		t.Fatalf("WritebackRetryGiveups = %d, want 0 (alternating rejection must admit every retry)",
			s.WritebackRetryGiveups)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDRAMCorruptionRetries: every second DRAM array read returns a
// single-bit upset. The per-line checksum must detect each one, charge a
// re-read, and deliver the correct data — reads never observe the flip.
func TestFaultDRAMCorruptionRetries(t *testing.T) {
	sched := faultinject.Schedule{Seed: 35, DRAMCorruptEvery: 2}
	r := newFaultRig(t, DefaultParams(), sched, invariant.Config{})
	r.fill(35)
	const lines = 32
	r.run(func() {
		sweepRegion(r, 0x40000, 0x40000+lines*line, "plain DRAM reads")
	})
	fired := r.flt.Fired(faultinject.KindDRAMCorrupt)
	if fired == 0 {
		t.Fatal("schedule with DRAMCorruptEvery=2 never fired")
	}
	var retries uint64
	for _, mc := range r.mcs {
		retries += mc.Stats.ECCRetries
	}
	if retries != fired {
		t.Fatalf("ECCRetries = %d, want %d (every single-bit upset must be detected and retried)",
			retries, fired)
	}
}

// TestFaultEagerFallbackHighWater: the graceful-degradation high-water mark
// (EagerCopyFrac) eagerly materializes tracked entries once CTT occupancy
// crosses it, bounding occupancy without dropping a copy or corrupting a
// byte.
func TestFaultEagerFallbackHighWater(t *testing.T) {
	p := DefaultParams()
	p.CTTCapacity = 16
	p.EagerCopyFrac = 0.5
	r := newFaultRig(t, p, faultinject.Schedule{}, invariant.Config{})
	r.fill(36)
	const n = 24
	r.run(func() {
		for i := uint64(0); i < n; i++ {
			r.lazyCopy(rng(0x10000+i*0x1000, line), memdata.Addr(0x80000+i*0x1000))
		}
		sweepRegion(r, 0x10000, memdata.Addr(0x10000+n*0x1000), "dest sweep")
	})
	s := r.lazy.Stats
	if s.EagerFallbacks == 0 || s.EagerFallbackBytes == 0 {
		t.Fatalf("CTT never crossed the high-water mark: %+v", s)
	}
	if s.LazyOps != n {
		t.Fatalf("LazyOps = %d, want %d", s.LazyOps, n)
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after fallbacks drained")
	}
}

// chaosFired runs one corpus program under a full FromSeed chaos schedule
// with every invariant oracle on, failing the test on any divergence or
// oracle violation, and returns the per-kind fired counts plus the engine
// stats for determinism comparison.
func chaosFired(t *testing.T, prog *corpusProgram, seed uint64) ([faultinject.NumKinds]uint64, EngineStats) {
	t.Helper()
	sched := faultinject.FromSeed(seed)
	fcol := faultinject.NewCollector(&sched)
	frel := fcol.Bind()
	icol := invariant.NewCollector(invariant.All())
	irel := icol.Bind()
	r, failure := runProgram(t, prog)
	frel()
	irel()
	if failure != "" {
		t.Fatalf("%s diverged under chaos: %s", prog.name, failure)
	}
	if n := icol.TotalViolations(); n > 0 {
		icol.Report(os.Stderr)
		t.Fatalf("%s: %d invariant violation(s) under chaos", prog.name, n)
	}
	var fired [faultinject.NumKinds]uint64
	for k := faultinject.Kind(0); k < faultinject.NumKinds; k++ {
		fired[k] = r.flt.Fired(k)
	}
	return fired, r.lazy.Stats
}

// TestCorpusReplayChaos replays every persisted corpus program under a
// fixed-seed chaos schedule with all invariant oracles enabled: zero
// violations, zero divergence, and — replayed a second time — bit-identical
// fault counts and engine stats (the determinism contract the runner
// depends on at any worker count).
func TestCorpusReplayChaos(t *testing.T) {
	const chaosSeed = 0xC0FFEE
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ops"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus: testdata/corpus/*.ops missing")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parseProgram(strings.TrimSuffix(filepath.Base(f), ".ops"), data)
			if err != nil {
				t.Fatal(err)
			}
			fired1, stats1 := chaosFired(t, prog, chaosSeed)
			fired2, stats2 := chaosFired(t, prog, chaosSeed)
			if fired1 != fired2 {
				t.Fatalf("fault schedule replay diverged:\n first %v\nsecond %v", fired1, fired2)
			}
			if stats1 != stats2 {
				t.Fatalf("engine stats diverged across identical chaos replays:\n first %+v\nsecond %+v",
					stats1, stats2)
			}
		})
	}
}

// TestChaosEquivalenceFuzz is the chaos-mode sibling of the main
// observational-equivalence fuzzer: random op programs under a derived
// chaos schedule and full oracles. Failures persist to testdata/corpus/
// like the plain fuzzer's, so chaos-found bugs stay found.
func TestChaosEquivalenceFuzz(t *testing.T) {
	seeds := []int64{7101, 7202}
	for _, seed := range seeds {
		p := DefaultParams()
		p.CTTCapacity = 64
		prog := genEquivalenceProgram(fmt.Sprintf("chaos-seed%d", seed), p, seed, 1<<16, 250)
		sched := faultinject.FromSeed(uint64(seed))
		frel := faultinject.NewCollector(&sched).Bind()
		icol := invariant.NewCollector(invariant.All())
		irel := icol.Bind()
		_, failure := runProgram(t, prog)
		frel()
		irel()
		if failure != "" {
			persistFailure(t, prog)
			t.Fatalf("seed %d diverged under chaos: %s", seed, failure)
		}
		if n := icol.TotalViolations(); n > 0 {
			persistFailure(t, prog)
			icol.Report(os.Stderr)
			t.Fatalf("seed %d: %d invariant violation(s) under chaos", seed, n)
		}
	}
}
