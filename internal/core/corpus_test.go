package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// Seeded-corpus fuzzing: the observational-equivalence fuzzers generate
// op programs — a parameter block plus a flat list of copy/write/read/free
// operations — and replay them through runProgram, which checks every read
// against the shadow eager-copy oracle and finishes with a full-region
// sweep, CTT invariants, and an idle check. A program that fails is
// persisted under testdata/corpus/ in a line-oriented text format, and
// TestCorpusReplay re-runs every persisted program on each go test, so a
// once-found bug stays found.
//
// Program format (addresses hex, # starts a comment):
//
//	param ctt 64          CTT entries            param seed 7
//	param bpq 8           BPQ slots              param region 0x20000
//	param merge off       disable adjacency merging
//	param writeback off   disable bounce writeback
//	param wpqfrac 0.75    WPQ rejection threshold
//	param frees 2         parallel free workers
//	copy 0x10000 0x20005 256   dst src bytes (dst line-aligned, size n*64)
//	write 0x10040 0xab         line-aligned addr, fill byte
//	read 0x10000
//	free 0x10000 128           addr bytes
//
// MCFree makes the freed destination bytes undefined (tracking may be
// dropped, leaving stale memory), so the replayer taints freed lines —
// and lines later copied from them — and exempts tainted lines from
// oracle comparison until a write redefines them. Reads of tainted lines
// are still issued; they must not wedge or crash the engine.

type corpusOp struct {
	kind string       // copy | write | read | free
	a    memdata.Addr // copy dst / write / read / free address
	b    memdata.Addr // copy src
	size uint64       // copy / free bytes
	fill byte         // write fill byte
}

type corpusProgram struct {
	name   string
	params Params
	seed   int64
	region uint64
	ops    []corpusOp
}

// fillLine derives a full line of data from a fill byte; deterministic so
// a persisted program replays the exact write.
func fillLine(fill byte) []byte {
	d := make([]byte, line)
	for i := range d {
		d[i] = fill ^ byte(7*i)
	}
	return d
}

func onoff(enabled bool) string {
	if enabled {
		return "on"
	}
	return "off"
}

// String renders the program in its file format (round-trips with
// parseProgram).
func (p *corpusProgram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", p.name)
	fmt.Fprintf(&b, "param ctt %d\n", p.params.CTTCapacity)
	fmt.Fprintf(&b, "param bpq %d\n", p.params.BPQCapacity)
	fmt.Fprintf(&b, "param merge %s\n", onoff(!p.params.DisableMerge))
	fmt.Fprintf(&b, "param writeback %s\n", onoff(p.params.WritebackOnBounce))
	fmt.Fprintf(&b, "param wpqfrac %g\n", p.params.WPQRejectFrac)
	fmt.Fprintf(&b, "param frees %d\n", p.params.ParallelFrees)
	fmt.Fprintf(&b, "param seed %d\n", p.seed)
	fmt.Fprintf(&b, "param region %#x\n", p.region)
	for _, op := range p.ops {
		switch op.kind {
		case "copy":
			fmt.Fprintf(&b, "copy %#x %#x %d\n", uint64(op.a), uint64(op.b), op.size)
		case "write":
			fmt.Fprintf(&b, "write %#x %#x\n", uint64(op.a), op.fill)
		case "read":
			fmt.Fprintf(&b, "read %#x\n", uint64(op.a))
		case "free":
			fmt.Fprintf(&b, "free %#x %d\n", uint64(op.a), op.size)
		}
	}
	return b.String()
}

// parseProgram parses and validates the file format above. Validation is
// strict so a malformed hand-written corpus file fails loudly instead of
// silently checking nothing.
func parseProgram(name string, data []byte) (*corpusProgram, error) {
	p := &corpusProgram{name: name, params: DefaultParams(), seed: 1, region: 1 << 16}
	num := func(s string) (uint64, error) { return strconv.ParseUint(s, 0, 64) }
	for ln, raw := range strings.Split(string(data), "\n") {
		text := raw
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		f := strings.Fields(text)
		if len(f) == 0 {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("%s:%d: %s", name, ln+1, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "param":
			if len(f) != 3 {
				return nil, fail("param wants 2 args")
			}
			switch f[1] {
			case "ctt", "bpq", "frees", "seed", "region":
				v, err := num(f[2])
				if err != nil {
					return nil, fail("bad value %q", f[2])
				}
				switch f[1] {
				case "ctt":
					p.params.CTTCapacity = int(v)
				case "bpq":
					p.params.BPQCapacity = int(v)
				case "frees":
					p.params.ParallelFrees = int(v)
				case "seed":
					p.seed = int64(v)
				case "region":
					p.region = v
				}
			case "merge":
				p.params.DisableMerge = f[2] == "off"
			case "writeback":
				p.params.WritebackOnBounce = f[2] == "on"
			case "wpqfrac":
				v, err := strconv.ParseFloat(f[2], 64)
				if err != nil {
					return nil, fail("bad value %q", f[2])
				}
				p.params.WPQRejectFrac = v
			default:
				return nil, fail("unknown param %q", f[1])
			}
			continue
		case "copy":
			if len(f) != 4 {
				return nil, fail("copy wants dst src size")
			}
			dst, e1 := num(f[1])
			src, e2 := num(f[2])
			size, e3 := num(f[3])
			if e1 != nil || e2 != nil || e3 != nil {
				return nil, fail("bad copy operands")
			}
			if dst%line != 0 || size == 0 || size%line != 0 {
				return nil, fail("copy dst/size must be line-aligned")
			}
			d := memdata.Range{Start: memdata.Addr(dst), Size: size}
			if d.Overlaps(memdata.Range{Start: memdata.Addr(src), Size: size}) {
				return nil, fail("copy ranges overlap")
			}
			if dst+size > p.region || src+size > p.region {
				return nil, fail("copy outside region %#x", p.region)
			}
			p.ops = append(p.ops, corpusOp{kind: "copy", a: memdata.Addr(dst), b: memdata.Addr(src), size: size})
		case "write":
			if len(f) != 3 {
				return nil, fail("write wants addr fill")
			}
			a, e1 := num(f[1])
			fill, e2 := num(f[2])
			if e1 != nil || e2 != nil || fill > 0xFF {
				return nil, fail("bad write operands")
			}
			if a%line != 0 || a+line > p.region {
				return nil, fail("write must be a line inside the region")
			}
			p.ops = append(p.ops, corpusOp{kind: "write", a: memdata.Addr(a), fill: byte(fill)})
		case "read":
			if len(f) != 2 {
				return nil, fail("read wants addr")
			}
			a, err := num(f[1])
			if err != nil || a+line > p.region {
				return nil, fail("bad read addr")
			}
			p.ops = append(p.ops, corpusOp{kind: "read", a: memdata.Addr(a)})
		case "free":
			if len(f) != 3 {
				return nil, fail("free wants addr size")
			}
			a, e1 := num(f[1])
			size, e2 := num(f[2])
			if e1 != nil || e2 != nil || size == 0 || a+size > p.region {
				return nil, fail("bad free operands")
			}
			p.ops = append(p.ops, corpusOp{kind: "free", a: memdata.Addr(a), size: size})
		default:
			return nil, fail("unknown op %q", f[0])
		}
	}
	if p.region > rigMem {
		return nil, fmt.Errorf("%s: region %#x exceeds rig memory %#x", name, p.region, uint64(rigMem))
	}
	return p, nil
}

// runProgram replays a program against a fresh rig and reports the first
// divergence from the oracle (empty string = equivalent). It never calls
// t.Fatal itself so callers can persist the failing program first.
func runProgram(t *testing.T, prog *corpusProgram) (*rig, string) {
	t.Helper()
	r := newRig(t, prog.params)
	r.fill(prog.seed)
	undef := make(map[memdata.Addr]bool) // lines exempt from oracle comparison
	lineOf := func(a memdata.Addr) memdata.Addr { return a &^ (line - 1) }
	r.proc = r.eng.Go("corpus", func(p *sim.Proc) {
		for i, op := range prog.ops {
			if r.failed != "" {
				return
			}
			what := fmt.Sprintf("op %d: %s %#x", i, op.kind, uint64(op.a))
			switch op.kind {
			case "copy":
				r.lazyCopy(memdata.Range{Start: op.a, Size: op.size}, op.b)
				for off := uint64(0); off < op.size; off += line {
					tainted := undef[lineOf(op.b+memdata.Addr(off))] ||
						undef[lineOf(op.b+memdata.Addr(off+line-1))]
					undef[op.a+memdata.Addr(off)] = tainted
				}
			case "write":
				r.write(op.a, fillLine(op.fill))
				undef[op.a] = false
			case "read":
				if undef[lineOf(op.a)] {
					r.read(lineOf(op.a)) // exercise, don't compare
				} else {
					r.check(lineOf(op.a), what)
				}
			case "free":
				done := false
				r.lazy.MCFree(memdata.Range{Start: op.a, Size: op.size}, 0, func() {
					done = true
					if !r.proc.Finished() {
						r.proc.Resume()
					}
				})
				for !done {
					r.proc.Suspend()
				}
				for l := lineOf(op.a); l < op.a+memdata.Addr(op.size); l += line {
					undef[l] = true
				}
			}
		}
		// Final sweep: every untainted line in the region must match.
		for a := memdata.Addr(0); a < memdata.Addr(prog.region); a += line {
			if r.failed != "" {
				return
			}
			if !undef[a] {
				r.check(a, "final sweep")
			}
		}
	})
	r.eng.Drain()
	if r.failed != "" {
		return r, r.failed
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		return r, err.Error()
	}
	if !r.lazy.Idle() {
		return r, "engine not idle after drain"
	}
	return r, ""
}

// persistFailure writes the failing program to the regression corpus so
// TestCorpusReplay reproduces it on every future go test.
func persistFailure(t *testing.T, prog *corpusProgram) {
	t.Helper()
	dir := filepath.Join("testdata", "corpus")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Errorf("persist corpus: %v", err)
		return
	}
	path := filepath.Join(dir, prog.name+".ops")
	if err := os.WriteFile(path, []byte(prog.String()), 0o644); err != nil {
		t.Errorf("persist corpus: %v", err)
		return
	}
	t.Logf("failing op sequence persisted to %s", path)
}

// TestCorpusReplay replays every persisted program. The corpus is seeded
// with hand-written programs covering the regressions the fuzzers are most
// likely to refind (chain collapse under source writes, misaligned sources
// with frees, CTT overflow, BPQ cascades).
func TestCorpusReplay(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.ops"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus: testdata/corpus/*.ops missing")
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parseProgram(strings.TrimSuffix(filepath.Base(f), ".ops"), data)
			if err != nil {
				t.Fatal(err)
			}
			if _, failure := runProgram(t, prog); failure != "" {
				t.Fatalf("corpus replay diverged: %s", failure)
			}
		})
	}
}

// TestCorpusCoversWPQWritebackReject pins the corpus's coverage of the
// WPQ rejection path: the wpq-writeback-reject program (wpqfrac 0) must
// actually refuse bounce writebacks, or a future edit could silently turn
// it into a no-op for the failure mode it exists to exercise.
func TestCorpusCoversWPQWritebackReject(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "corpus", "wpq-writeback-reject.ops"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parseProgram("wpq-writeback-reject", data)
	if err != nil {
		t.Fatal(err)
	}
	r, failure := runProgram(t, prog)
	if failure != "" {
		t.Fatalf("replay diverged: %s", failure)
	}
	if r.lazy.Stats.WritebackRejects == 0 {
		t.Fatal("program did not exercise WritebackRejects; WPQ rejection path uncovered")
	}
	if r.lazy.Stats.Bounces < 2 {
		t.Fatalf("Bounces = %d; rejected writebacks should force repeated bounces", r.lazy.Stats.Bounces)
	}
}

// TestProgramRoundTrip: String and parseProgram are inverses, so persisted
// failures replay the exact op sequence that failed.
func TestProgramRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.CTTCapacity = 16
	p.BPQCapacity = 2
	p.DisableMerge = true
	p.WritebackOnBounce = false
	p.WPQRejectFrac = 0.5
	p.ParallelFrees = 4
	prog := &corpusProgram{
		name: "roundtrip", params: p, seed: 99, region: 0x20000,
		ops: []corpusOp{
			{kind: "copy", a: 0x1000, b: 0x5005, size: 128},
			{kind: "write", a: 0x1040, fill: 0xAB},
			{kind: "read", a: 0x1000},
			{kind: "free", a: 0x1000, size: 128},
		},
	}
	got, err := parseProgram("roundtrip", []byte(prog.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != prog.String() {
		t.Fatalf("round trip changed program:\n%s---\n%s", prog.String(), got.String())
	}
	if got.params != prog.params || got.seed != prog.seed || got.region != prog.region {
		t.Fatalf("round trip changed header: %+v vs %+v", got.params, prog.params)
	}
}

// TestParseProgramRejectsInvalid: malformed corpus files fail loudly.
func TestParseProgramRejectsInvalid(t *testing.T) {
	bad := []string{
		"copy 0x10 0x2000 64",     // misaligned dst
		"copy 0x1000 0x1010 64",   // overlapping ranges
		"copy 0x1000 0x2000 60",   // size not line-multiple
		"write 0x1004 0xab",       // misaligned write
		"write 0x1000 0x1ff",      // fill out of range
		"param region 0x200000\n", // region beyond rig memory
		"param bogus 1",           // unknown param
		"poke 0x1000",             // unknown op
		"read 0x10000",            // outside default region? (== region edge)
	}
	for _, src := range bad {
		if _, err := parseProgram("bad", []byte(src)); err == nil {
			t.Errorf("parseProgram accepted %q", src)
		}
	}
}
