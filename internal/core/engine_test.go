package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mcsquare/internal/dram"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// rig is a two-controller test system with a shadow "eager" memory: every
// lazy copy is performed immediately on the shadow, and every read through
// the real stack must match it.
type rig struct {
	t      *testing.T
	eng    *sim.Engine
	phys   *memdata.Physical
	shadow *memdata.Physical
	mcs    []*memctrl.Controller
	lazy   *Engine
	tr     *txtrace.Tracer    // nil unless a collector was bound at newRig
	flt    *faultinject.Plane // nil unless a fault collector was bound
	inv    *invariant.Oracles // nil unless an invariant collector was bound
	proc   *sim.Proc
	failed string // first failure; reported after the engine drains
}

// routeLine interleaves cachelines across the two controllers.
func routeLine(a memdata.Addr) int { return int(uint64(a)>>memdata.LineShift) & 1 }

const rigMem = 1 << 20

func newRig(t *testing.T, p Params) *rig {
	eng := sim.NewEngine()
	phys := memdata.NewPhysical(rigMem)
	shadow := memdata.NewPhysical(rigMem)
	mcs := []*memctrl.Controller{
		memctrl.New(0, eng, memctrl.DefaultConfig(), dram.NewChannel(dram.DDR4Config()), phys),
		memctrl.New(1, eng, memctrl.DefaultConfig(), dram.NewChannel(dram.DDR4Config()), phys),
	}
	lazy := NewEngine(eng, p, mcs, routeLine)
	// Same wiring as machine.New: collectors bound to the constructing
	// goroutine hand the rig its tracer, fault plane, and invariant oracles;
	// with none bound these are all nil.
	tr := txtrace.AmbientCollector().NewTracer()
	for _, mc := range mcs {
		mc.SetTracer(tr)
	}
	lazy.SetTracer(tr)
	r := &rig{t: t, eng: eng, phys: phys, shadow: shadow, mcs: mcs, lazy: lazy, tr: tr}
	if fc := faultinject.AmbientCollector(); fc != nil {
		r.flt = fc.NewPlane()
		r.flt.SetTracer(tr)
		for _, mc := range mcs {
			mc.SetFaults(r.flt)
		}
		lazy.SetFaults(r.flt)
	}
	if ic := invariant.AmbientCollector(); ic != nil {
		r.inv = ic.NewOracles(eng, tr)
		for _, mc := range mcs {
			mc.SetInvariants(r.inv)
		}
		lazy.SetInvariants(r.inv)
	}
	return r
}

// fill seeds both memories with identical pseudorandom content.
func (r *rig) fill(seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	buf := make([]byte, rigMem)
	rnd.Read(buf)
	r.phys.Write(0, buf)
	r.shadow.Write(0, buf)
	r.inv.ObserveInit(0, buf) // mirror backdoor seeding into the oracle shadow
}

// run executes fn as a simulated process and drains the engine. Failures
// recorded by check are reported here: calling t.Fatal on the workload
// goroutine would Goexit it and strand the engine.
func (r *rig) run(fn func()) {
	r.proc = r.eng.Go("test", func(p *sim.Proc) { fn() })
	r.eng.Drain()
	if r.failed != "" {
		r.t.Fatal(r.failed)
	}
}

func (r *rig) mc(a memdata.Addr) *memctrl.Controller { return r.mcs[routeLine(a)] }

// read performs a hooked line read and blocks the test process. With a
// tracer attached it opens a root span per read, standing in for the CPU
// layer the rig omits.
func (r *rig) read(a memdata.Addr) []byte {
	var out []byte
	done := false
	sp := r.tr.BeginRoot(txtrace.StageCPULoad, 0, uint64(a), uint64(r.eng.Now()))
	r.mc(a).ReadLineTx(a, sp, func(d []byte) {
		r.tr.End(sp, uint64(r.eng.Now()))
		out = d
		done = true
		if !r.proc.Finished() {
			r.proc.Resume()
		}
	})
	for !done {
		r.proc.Suspend()
	}
	return out
}

// write performs a hooked full-line write, blocking until released, and
// mirrors it on the shadow.
func (r *rig) write(a memdata.Addr, data []byte) {
	done := false
	sp := r.tr.BeginRoot(txtrace.StageCPUStore, 0, uint64(a), uint64(r.eng.Now()))
	r.mc(a).WriteLineTx(a, data, sp, func() {
		r.tr.EndFlags(sp, uint64(r.eng.Now()), txtrace.FlagWrite)
		done = true
		if !r.proc.Finished() {
			r.proc.Resume()
		}
	})
	for !done {
		r.proc.Suspend()
	}
	r.shadow.WriteLine(a, data)
}

// lazyCopy issues MCLAZY and mirrors an eager copy on the shadow.
func (r *rig) lazyCopy(dst memdata.Range, src memdata.Addr) {
	done := false
	sp := r.tr.BeginRoot(txtrace.StageCPUMCLazy, 0, uint64(dst.Start), uint64(r.eng.Now()))
	r.lazy.MCLazy(dst, src, sp, func() {
		r.tr.End(sp, uint64(r.eng.Now()))
		done = true
		if !r.proc.Finished() {
			r.proc.Resume()
		}
	})
	for !done {
		r.proc.Suspend()
	}
	r.shadow.Copy(dst.Start, src, dst.Size)
}

// check reads the line at a through the stack and compares with the shadow.
func (r *rig) check(a memdata.Addr, what string) {
	if r.failed != "" {
		return
	}
	got := r.read(a)
	want := r.shadow.ReadLine(a)
	if !bytes.Equal(got, want) {
		r.failed = fmt.Sprintf("%s: line %#x mismatch\n got %x\nwant %x", what, a, got, want)
	}
}

func TestLazyCopyReadFromDest(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(1)
	r.run(func() {
		dst := rng(0x10000, 8*line)
		r.lazyCopy(dst, 0x40000)
		for i := uint64(0); i < 8; i++ {
			r.check(dst.Start+memdata.Addr(i*line), "aligned dest read")
		}
	})
	if r.lazy.Stats.Bounces == 0 {
		t.Fatal("no bounces recorded")
	}
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyCopyMisalignedSource(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(2)
	r.run(func() {
		// Source misaligned by 5 bytes: every dest line needs two source lines.
		dst := rng(0x10000, 4*line)
		r.lazyCopy(dst, 0x40005)
		for i := uint64(0); i < 4; i++ {
			r.check(dst.Start+memdata.Addr(i*line), "misaligned dest read")
		}
	})
	// 4 bounced lines, each needing 2 source reads.
	if r.lazy.Stats.BounceSrcReads < 8 {
		t.Fatalf("BounceSrcReads = %d, want >= 8", r.lazy.Stats.BounceSrcReads)
	}
}

func TestBounceWritebackRemovesEntry(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(3)
	r.run(func() {
		dst := rng(0x10000, line)
		r.lazyCopy(dst, 0x40000)
		r.check(dst.Start, "first read")
	})
	// The bounce writeback should have trimmed the entry.
	if r.lazy.CTT().Len() != 0 {
		t.Fatalf("entry not trimmed after bounce writeback: %d live", r.lazy.CTT().Len())
	}
	if r.lazy.Stats.BounceWritebacks != 1 {
		t.Fatalf("BounceWritebacks = %d", r.lazy.Stats.BounceWritebacks)
	}
	// A second read must be a plain memory read with the copied data.
	r2 := newRig(t, DefaultParams())
	_ = r2
}

func TestNoWritebackAblationKeepsEntry(t *testing.T) {
	p := DefaultParams()
	p.WritebackOnBounce = false
	r := newRig(t, p)
	r.fill(4)
	r.run(func() {
		dst := rng(0x10000, line)
		r.lazyCopy(dst, 0x40000)
		r.check(dst.Start, "read 1")
		r.check(dst.Start, "read 2") // still correct, bounces again
	})
	if r.lazy.CTT().Len() != 1 {
		t.Fatalf("entry count = %d, want 1 (no writeback)", r.lazy.CTT().Len())
	}
	if r.lazy.Stats.Bounces != 2 {
		t.Fatalf("Bounces = %d, want 2", r.lazy.Stats.Bounces)
	}
}

func TestWriteToDestStopsTracking(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(5)
	r.run(func() {
		dst := rng(0x10000, 2*line)
		r.lazyCopy(dst, 0x40000)
		fresh := make([]byte, line)
		for i := range fresh {
			fresh[i] = 0xEE
		}
		r.write(dst.Start, fresh)
		r.check(dst.Start, "written dest line")
		r.check(dst.Start+line, "remaining lazy line")
	})
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFig9WriteToSource walks the paper's state machine: a write to the
// source triggers the lazy copy (BPQ hold), the destination receives the
// pre-write data, and the source finally holds the new data.
func TestFig9WriteToSource(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(6)
	r.run(func() {
		src := memdata.Addr(0x40000)
		dst := rng(0x10000, 2*line)
		oldSrc := r.shadow.ReadLine(src)
		r.lazyCopy(dst, src)

		newData := make([]byte, line)
		for i := range newData {
			newData[i] = 0x5A
		}
		r.write(src, newData) // state 2 -> 3 -> 4 -> 1

		// Destination must show the data as of the copy, not the new write.
		got := r.read(dst.Start)
		if !bytes.Equal(got, oldSrc) {
			t.Fatal("dest observed post-copy source write")
		}
		r.check(dst.Start, "dest vs shadow")
		r.check(src, "source holds new data")
		r.check(dst.Start+line, "second dest line")
	})
	if r.lazy.Stats.BPQHolds == 0 || r.lazy.Stats.BPQCopies == 0 {
		t.Fatalf("BPQ not exercised: %+v", r.lazy.Stats)
	}
	if r.lazy.CTT().Len() != 0 {
		t.Fatalf("%d entries left; source write should have flushed both dest lines of the entry it covered",
			r.lazy.CTT().Len())
	}
}

// TestFig9MisalignedSourceWrite covers states 5-6: with a misaligned
// source, a destination line depends on two source lines; writes to both
// must each preserve dest consistency.
func TestFig9MisalignedSourceWrite(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(7)
	r.run(func() {
		src := memdata.Addr(0x40020) // mid-line: D depends on S1 and S2
		dst := rng(0x10000, line)
		r.lazyCopy(dst, src)
		wantDest := r.shadow.ReadLine(dst.Start)

		n1 := bytes.Repeat([]byte{0x11}, line)
		n2 := bytes.Repeat([]byte{0x22}, line)
		r.write(0x40000, n1) // Si
		r.write(0x40040, n2) // Sj

		got := r.read(dst.Start)
		if !bytes.Equal(got, wantDest) {
			t.Fatal("dest corrupted by source writes")
		}
		r.check(0x40000, "S1 new data")
		r.check(0x40040, "S2 new data")
	})
}

func TestChainCollapseEndToEnd(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(8)
	r.run(func() {
		a := memdata.Addr(0x40000)
		b := rng(0x10000, 2*line)
		c := rng(0x20000, 2*line)
		r.lazyCopy(b, a)       // B <- A
		r.lazyCopy(c, b.Start) // C <- B, collapses to C <- A
		r.check(c.Start, "C line 0")
		r.check(c.Start+line, "C line 1")
		r.check(b.Start, "B line 0")
	})
	if r.lazy.CTT().Stats.Collapses == 0 {
		t.Fatal("chain not collapsed")
	}
}

func TestReverseChainThroughBPQ(t *testing.T) {
	// C <- B, then B <- A: B is both a tracked source (of C) and a tracked
	// destination (of A). Reads of all three must stay consistent.
	r := newRig(t, DefaultParams())
	r.fill(9)
	r.run(func() {
		a := memdata.Addr(0x40000)
		b := rng(0x10000, 2*line)
		c := rng(0x20000, 2*line)
		r.lazyCopy(c, b.Start) // C <- B
		r.lazyCopy(b, a)       // B <- A
		r.check(c.Start, "C sees old B")
		r.check(c.Start+line, "C line 1")
		r.check(b.Start, "B sees A")
		r.check(b.Start+line, "B line 1")
	})
	if err := r.lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMCFreeDropsTracking(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(10)
	r.run(func() {
		dst := rng(0x10000, 4*line)
		r.lazyCopy(dst, 0x40000)
		done := false
		r.lazy.MCFree(dst, 0, func() {
			done = true
			if !r.proc.Finished() {
				r.proc.Resume()
			}
		})
		for !done {
			r.proc.Suspend()
		}
	})
	if r.lazy.CTT().Len() != 0 {
		t.Fatalf("MCFree left %d entries", r.lazy.CTT().Len())
	}
	if r.lazy.Stats.MCFrees != 1 {
		t.Fatalf("MCFrees = %d", r.lazy.Stats.MCFrees)
	}
}

func TestCTTFullStallsAndAsyncFrees(t *testing.T) {
	p := DefaultParams()
	p.CTTCapacity = 8
	p.FreeThreshold = 0.5
	r := newRig(t, p)
	r.fill(11)
	r.run(func() {
		// Far-apart copies that cannot merge; more than capacity.
		for i := uint64(0); i < 20; i++ {
			dst := rng(0x10000+i*0x1000, line)
			r.lazyCopy(dst, memdata.Addr(0x40000+i*0x1000))
		}
		// All copies eventually accepted; data still correct.
		for i := uint64(0); i < 20; i++ {
			r.check(memdata.Addr(0x10000+i*0x1000), "copied line")
		}
	})
	if r.lazy.Stats.Frees == 0 {
		t.Fatal("async freeing never ran")
	}
	if r.lazy.Stats.LazyOps != 20 {
		t.Fatalf("LazyOps = %d", r.lazy.Stats.LazyOps)
	}
	if !r.lazy.Idle() {
		t.Fatal("engine not idle after drain")
	}
}

func TestBPQBackpressure(t *testing.T) {
	p := DefaultParams()
	p.BPQCapacity = 1
	r := newRig(t, p)
	r.fill(12)
	r.run(func() {
		// One big copy; then write many source lines back-to-back without
		// waiting (posted writes), forcing BPQ stalls.
		dst := rng(0x10000, 16*line)
		r.lazyCopy(dst, 0x40000)
		released := 0
		for i := uint64(0); i < 16; i++ {
			a := memdata.Addr(0x40000 + i*line)
			d := bytes.Repeat([]byte{byte(i)}, line)
			r.shadow.WriteLine(a, d)
			r.mc(a).WriteLine(a, d, func() { released++ })
		}
		// Wait for all releases.
		for released < 16 {
			r.proc.Wait(1000)
		}
		for i := uint64(0); i < 16; i++ {
			r.check(memdata.Addr(0x10000+i*line), "dest as-of-copy")
			r.check(memdata.Addr(0x40000+i*line), "src new data")
		}
	})
	if r.lazy.Stats.BPQStallsFull == 0 {
		t.Fatal("expected BPQ stalls with capacity 1")
	}
}

func TestMCLazyStallsOnHeldLines(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.fill(13)
	r.run(func() {
		dst := rng(0x10000, line)
		r.lazyCopy(dst, 0x40000)
		// Write the source (gets held briefly) and immediately issue a new
		// prospective copy whose source is the same line.
		d := bytes.Repeat([]byte{9}, line)
		r.shadow.WriteLine(0x40000, d)
		r.mc(0x40000).WriteLine(0x40000, d, func() {})
		dst2 := rng(0x20000, line)
		r.lazyCopy(dst2, 0x40000) // must wait for the BPQ to drain
		r.shadow.Copy(dst2.Start, 0x40000, line)
		r.check(dst2.Start, "copy after source write sees new data")
	})
	if r.lazy.Stats.LazyStallsBPQ == 0 {
		t.Fatal("MCLAZY did not stall on held lines")
	}
}

// genEquivalenceProgram rolls a random op program: lazy copies, line
// writes, reads, and occasional frees over colliding buffers with arbitrary
// source alignment. The program is a concrete artifact — if its replay
// diverges from the oracle, it is persisted verbatim to the regression
// corpus (see corpus_test.go).
func genEquivalenceProgram(name string, p Params, seed int64, region uint64, steps int) *corpusProgram {
	prog := &corpusProgram{name: name, params: p, seed: seed, region: region}
	rnd := rand.New(rand.NewSource(seed))
	randLine := func() memdata.Addr {
		return memdata.Addr(rnd.Intn(int(region)/line)) * line
	}
	for step := 0; step < steps; step++ {
		switch rnd.Intn(10) {
		case 0, 1, 2, 3: // lazy copy
			size := uint64(1+rnd.Intn(8)) * line
			dst := memdata.Range{Start: randLine(), Size: size}
			src := memdata.Addr(rnd.Intn(int(region) - int(size)))
			if dst.Overlaps(memdata.Range{Start: src, Size: size}) {
				continue // memcpy forbids overlap
			}
			prog.ops = append(prog.ops, corpusOp{kind: "copy", a: dst.Start, b: src, size: size})
		case 4, 5: // write a line
			prog.ops = append(prog.ops, corpusOp{kind: "write", a: randLine(), fill: byte(rnd.Intn(256))})
		case 6: // rarely, free a small range
			if rnd.Intn(4) == 0 {
				size := uint64(1+rnd.Intn(4)) * line
				a := randLine()
				if uint64(a)+size <= region {
					prog.ops = append(prog.ops, corpusOp{kind: "free", a: a, size: size})
					continue
				}
			}
			prog.ops = append(prog.ops, corpusOp{kind: "read", a: randLine()})
		default: // read and verify
			prog.ops = append(prog.ops, corpusOp{kind: "read", a: randLine()})
		}
	}
	return prog
}

// TestRandomizedObservationalEquivalence is the package's big hammer: a
// random mix of lazy copies, writes, reads, and frees must be
// byte-identical to eager copies. Failures persist their op sequence to
// testdata/corpus/ for permanent regression replay.
func TestRandomizedObservationalEquivalence(t *testing.T) {
	seeds := []int64{101, 202, 303}
	for _, seed := range seeds {
		p := DefaultParams()
		p.CTTCapacity = 64 // small: exercise freeing under load
		prog := genEquivalenceProgram(fmt.Sprintf("rand-seed%d", seed), p, seed, 1<<17, 400)
		if _, failure := runProgram(t, prog); failure != "" {
			persistFailure(t, prog)
			t.Fatalf("seed %d diverged: %s", seed, failure)
		}
	}
}

// TestWritebackRejectionKeepsEntryCorrect: when the WPQ is busy enough that
// the bounce writeback is refused (the paper's 75% rule), the entry stays
// live and later reads still return correct data.
func TestWritebackRejectionKeepsEntryCorrect(t *testing.T) {
	p := DefaultParams()
	p.WPQRejectFrac = 0.0 // reject every writeback: the extreme of the rule
	r := newRig(t, p)
	r.fill(21)
	r.run(func() {
		dst := rng(0x10000, 4*line)
		r.lazyCopy(dst, 0x40000)
		r.check(dst.Start, "read 1")
		r.check(dst.Start, "read 2 (bounces again)")
		r.check(dst.Start+line, "other line")
	})
	if r.lazy.Stats.WritebackRejects == 0 {
		t.Fatal("no writebacks were rejected despite frac=0")
	}
	if r.lazy.Stats.BounceWritebacks != 0 {
		t.Fatalf("BounceWritebacks = %d, want 0", r.lazy.Stats.BounceWritebacks)
	}
	if r.lazy.CTT().Len() == 0 {
		t.Fatal("entries vanished without writebacks")
	}
}

// TestEquivalenceAcrossConfigurations re-runs the randomized equivalence
// fuzz under adversarial parameter corners: tiny CTT, single-slot BPQ, no
// writeback, no merging. Failures persist to testdata/corpus/ like the
// main fuzzer's.
func TestEquivalenceAcrossConfigurations(t *testing.T) {
	configs := []struct {
		name   string
		mutate func(*Params)
	}{
		{"tiny-ctt", func(p *Params) { p.CTTCapacity = 8 }},
		{"one-bpq", func(p *Params) { p.BPQCapacity = 1 }},
		{"no-writeback", func(p *Params) { p.WritebackOnBounce = false }},
		{"no-merge", func(p *Params) { p.DisableMerge = true }},
		{"combined", func(p *Params) { p.CTTCapacity = 8; p.BPQCapacity = 1; p.DisableMerge = true }},
	}
	for ci, cfg := range configs {
		p := DefaultParams()
		cfg.mutate(&p)
		prog := genEquivalenceProgram("cfg-"+cfg.name, p, int64(500+ci), 1<<16, 150)
		if _, failure := runProgram(t, prog); failure != "" {
			persistFailure(t, prog)
			t.Fatalf("config %s diverged: %s", cfg.name, failure)
		}
	}
}
