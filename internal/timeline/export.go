package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mcsquare/internal/metrics"
	"mcsquare/internal/txtrace"
)

// ---------------------------------------------------------------------------
// CSV / JSON timeline files (mcsim -timeline / mcfigures -timeline)
// ---------------------------------------------------------------------------

// valueString renders a Value for CSV/Perfetto: counters and histograms by
// count, gauges by value. Floats use the shortest round-trip form so the
// output is deterministic and diff-friendly.
func valueString(v metrics.Value) string {
	if v.Kind == metrics.KindGauge {
		return strconv.FormatFloat(v.Value, 'g', -1, 64)
	}
	return strconv.FormatUint(v.Count, 10)
}

// WriteCSV writes every recorder's windows as flat CSV rows:
//
//	machine,window,start,end,metric,kind,count,value
//
// Rows appear machine-major, window-minor, metric names sorted — fully
// deterministic. Recorders are finalized first.
func WriteCSV(w io.Writer, recs []*Recorder) error {
	if _, err := io.WriteString(w, "machine,window,start,end,metric,kind,count,value\n"); err != nil {
		return err
	}
	var sb strings.Builder
	for mi, r := range recs {
		if r == nil {
			continue
		}
		r.Finalize()
		for _, win := range r.Windows() {
			for _, name := range win.Sample.Names() {
				v := win.Sample.Values[name]
				sb.Reset()
				fmt.Fprintf(&sb, "%d,%d,%d,%d,%s,%s,%d,%s\n",
					mi, win.Index, win.Start, win.End, name, v.Kind,
					v.Count, strconv.FormatFloat(v.Value, 'g', -1, 64))
				if _, err := io.WriteString(w, sb.String()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// machineJSON is one machine's timeline in the JSON export.
type machineJSON struct {
	Machine int      `json:"machine"`
	Windows []Window `json:"windows"`
}

type timelineJSON struct {
	WindowCycles uint64        `json:"window_cycles"`
	Machines     []machineJSON `json:"machines"`
}

// WriteJSON writes every recorder's windows as one indented JSON document
// (snapshot keys sort deterministically). Recorders are finalized first.
func WriteJSON(w io.Writer, recs []*Recorder) error {
	doc := timelineJSON{Machines: []machineJSON{}}
	for mi, r := range recs {
		if r == nil {
			continue
		}
		r.Finalize()
		if doc.WindowCycles == 0 {
			doc.WindowCycles = uint64(r.WindowCycles())
		}
		doc.Machines = append(doc.Machines, machineJSON{Machine: mi, Windows: r.Windows()})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Write picks the format from the file name: names ending in ".csv" get
// WriteCSV, everything else WriteJSON.
func Write(w io.Writer, name string, recs []*Recorder) error {
	if strings.HasSuffix(name, ".csv") {
		return WriteCSV(w, recs)
	}
	return WriteJSON(w, recs)
}

// ---------------------------------------------------------------------------
// Perfetto counter tracks merged with txtrace spans
// ---------------------------------------------------------------------------

// counterNames returns the metric names worth a counter track for r: those
// passing the recorder's track filter that change in at least one window
// (an explicit filter keeps even flat tracks — the user asked for them).
func counterNames(r *Recorder, wins []Window) []string {
	seen := map[string]bool{}
	for _, win := range wins {
		for name, v := range win.Sample.Values {
			if seen[name] || !r.selected(name) {
				continue
			}
			if len(r.tracks) > 0 || v.Count != 0 || v.Value != 0 {
				seen[name] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// writeCounters emits one ph:"C" event per (metric, window) under pid,
// ts-anchored at the window's start so the curve spans the window it
// measures. Events per track are emitted in window order, so ts is
// strictly monotonic within each counter track.
func writeCounters(ew *txtrace.EventWriter, pid int, r *Recorder) {
	wins := r.Windows()
	for _, name := range counterNames(r, wins) {
		for _, win := range wins {
			v, ok := win.Sample.Values[name]
			if !ok {
				continue
			}
			ew.Emit(fmt.Sprintf(`{"name":"%s","cat":"timeline","ph":"C","pid":%d,"ts":%d,"args":{"value":%s}}`,
				name, pid, win.Start, valueString(v)))
		}
	}
}

// ExportPerfetto writes spans and counter tracks as one Chrome
// trace-event document: machine i's tracer (if any) and recorder (if any)
// share pid i, so Perfetto renders the span tree and the metric curves on
// one timebase. Either slice may be shorter or hold nils; recorders are
// finalized first.
func ExportPerfetto(w io.Writer, tracers []*txtrace.Tracer, recs []*Recorder) error {
	n := len(tracers)
	if len(recs) > n {
		n = len(recs)
	}
	ew := txtrace.NewEventWriter(w)
	for pid := 0; pid < n; pid++ {
		var t *txtrace.Tracer
		if pid < len(tracers) {
			t = tracers[pid]
		}
		if t != nil {
			ew.WriteTracer(pid, t)
		}
		var r *Recorder
		if pid < len(recs) {
			r = recs[pid]
		}
		if r != nil {
			r.Finalize()
			if t == nil {
				// No spans named this process; do it here.
				ew.Emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"machine%d"}}`, pid, pid))
			}
			writeCounters(ew, pid, r)
		}
	}
	return ew.Close()
}
