package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
)

// testRig builds an engine + registry pair with one owned counter and one
// gauge tracking a variable the test mutates from events.
type testRig struct {
	eng   *sim.Engine
	reg   *metrics.Registry
	ops   uint64
	depth float64
}

func newRig(t *testing.T) *testRig {
	t.Helper()
	rig := &testRig{eng: sim.NewEngine(), reg: metrics.NewRegistry()}
	t.Cleanup(rig.eng.Close)
	rig.reg.Counter("test.ops", &rig.ops)
	rig.reg.Gauge("test.depth", func() float64 { return rig.depth })
	rig.reg.CounterFunc("sim.cycles", func() uint64 { return uint64(rig.eng.Now()) })
	return rig
}

func TestRecorderWindows(t *testing.T) {
	rig := newRig(t)
	col := NewCollector(Config{Enabled: true, WindowCycles: 100})
	rec := col.NewRecorder(rig.reg, rig.eng)

	// 3 ops in window 0, 1 in window 1, none in window 2, 2 in the partial.
	for _, c := range []sim.Cycle{10, 50, 99} {
		rig.eng.At(c, func() { rig.ops++; rig.depth += 1 })
	}
	rig.eng.At(150, func() { rig.ops++ })
	rig.eng.At(320, func() { rig.ops += 2; rig.depth = 7 })
	rig.eng.RunUntil(350)
	rec.Finalize()

	wins := rec.Windows()
	if len(wins) != 4 {
		t.Fatalf("got %d windows, want 4: %+v", len(wins), wins)
	}
	wantOps := []uint64{3, 1, 0, 2}
	wantEnd := []sim.Cycle{100, 200, 300, 350}
	var cyc uint64
	for i, w := range wins {
		if w.Index != i || w.End != wantEnd[i] {
			t.Errorf("window %d: index=%d end=%d, want index=%d end=%d", i, w.Index, w.End, i, wantEnd[i])
		}
		if got := w.Sample.Counter("test.ops"); got != wantOps[i] {
			t.Errorf("window %d: ops delta = %d, want %d", i, got, wantOps[i])
		}
		cyc += w.Sample.Counter("sim.cycles")
	}
	// A clock-reading CounterFunc observes the advance target at sample
	// time, so per-window cycle deltas are lumpy — but they must total the
	// run length (windows Start/End carry the exact per-window timebase).
	if cyc != 350 {
		t.Errorf("sim.cycles deltas total %d, want 350", cyc)
	}
	if g := wins[3].Sample.Gauge("test.depth"); g != 7 {
		t.Errorf("partial window gauge = %v, want 7", g)
	}
	// Gauge in window 0 reads the value at the end boundary (3 after the
	// three events), not a delta.
	if g := wins[0].Sample.Gauge("test.depth"); g != 3 {
		t.Errorf("window 0 gauge = %v, want 3", g)
	}
}

func TestFinalizeIdempotentAndEmptyTail(t *testing.T) {
	rig := newRig(t)
	col := NewCollector(Config{Enabled: true, WindowCycles: 50})
	rec := col.NewRecorder(rig.reg, rig.eng)
	rig.eng.At(10, func() { rig.ops++ })
	rig.eng.RunUntil(50) // exactly one boundary, no partial tail
	col.Finalize()
	col.Finalize()
	if n := len(rec.Windows()); n != 1 {
		t.Fatalf("got %d windows, want 1 (no empty tail, no double-finalize)", n)
	}
}

func TestDisabledCollectorIsNil(t *testing.T) {
	if NewCollector(Config{}) != nil {
		t.Fatal("disabled config must yield nil collector")
	}
	var c *Collector
	if c.NewRecorder(nil, nil) != nil {
		t.Fatal("nil collector must hand out nil recorders")
	}
	release := c.Bind()
	release()
	if c.Recorders() != nil {
		t.Fatal("nil collector must report no recorders")
	}
	var r *Recorder
	r.Finalize()
	if r.Windows() != nil {
		t.Fatal("nil recorder must report no windows")
	}
}

func TestAmbientBinding(t *testing.T) {
	col := NewCollector(Config{Enabled: true})
	if AmbientCollector() != nil {
		t.Fatal("ambient collector leaked from another test")
	}
	release := col.Bind()
	if AmbientCollector() != col {
		t.Fatal("ambient collector not visible after Bind")
	}
	release()
	if AmbientCollector() != nil {
		t.Fatal("ambient collector still bound after release")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		eng := sim.NewEngine()
		defer eng.Close()
		reg := metrics.NewRegistry()
		var ops uint64
		reg.Counter("test.ops", &ops)
		col := NewCollector(Config{Enabled: true, WindowCycles: 64})
		rec := col.NewRecorder(reg, eng)
		var step func()
		step = func() {
			ops++
			if eng.Now() < 1000 {
				eng.After(17, step)
			}
		}
		eng.After(0, step)
		eng.Drain()
		rec.Finalize()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []*Recorder{rec}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("CSV differs across identical runs:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "test.ops") {
		t.Fatalf("CSV missing metric rows:\n%s", a)
	}
}

func TestWriteJSONShape(t *testing.T) {
	rig := newRig(t)
	col := NewCollector(Config{Enabled: true, WindowCycles: 100})
	rec := col.NewRecorder(rig.reg, rig.eng)
	rig.eng.At(42, func() { rig.ops++ })
	rig.eng.RunUntil(250)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WindowCycles uint64 `json:"window_cycles"`
		Machines     []struct {
			Machine int `json:"machine"`
			Windows []struct {
				Index  int                      `json:"index"`
				Start  uint64                   `json:"start"`
				End    uint64                   `json:"end"`
				Sample map[string]metrics.Value `json:"sample"`
			} `json:"windows"`
		} `json:"machines"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.WindowCycles != 100 || len(doc.Machines) != 1 {
		t.Fatalf("unexpected doc header: %+v", doc)
	}
	wins := doc.Machines[0].Windows
	if len(wins) != 3 || wins[0].Sample["test.ops"].Count != 1 {
		t.Fatalf("unexpected windows: %+v", wins)
	}
}

func TestCurrentLiveView(t *testing.T) {
	rig := newRig(t)
	col := NewCollector(Config{Enabled: true, WindowCycles: 100})
	rec := col.NewRecorder(rig.reg, rig.eng)
	rig.eng.At(130, func() { rig.ops++ })
	rig.eng.RunUntil(160)
	cur := rec.Current()
	if cur.Index != 1 || cur.Start != 100 || cur.End != 160 {
		t.Fatalf("current window = %+v", cur)
	}
	if cur.Sample.Counter("test.ops") != 1 {
		t.Fatalf("current delta ops = %d, want 1", cur.Sample.Counter("test.ops"))
	}
}

func TestTrackFilter(t *testing.T) {
	r := &Recorder{tracks: []string{"ctt", "engine.bounces"}}
	for name, want := range map[string]bool{
		"ctt.entries":    true,
		"ctt":            true,
		"cttx.other":     false,
		"engine.bounces": true,
		"engine.lazy":    false,
		"mc0.reads":      false,
	} {
		if got := r.selected(name); got != want {
			t.Errorf("selected(%q) = %v, want %v", name, got, want)
		}
	}
	open := &Recorder{}
	if !open.selected("anything.at.all") {
		t.Error("empty filter must select everything")
	}
}
