package timeline

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"

	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
)

// Collector gathers the timeline recorder of every machine built while it
// is bound to a goroutine, mirroring txtrace.Collector: the runner (or a
// cmd binary) binds one around a run, machine.New asks AmbientCollector()
// for a recorder, and the caller exports all of them afterwards. A nil
// Collector (timeline disabled) hands out nil recorders.
type Collector struct {
	cfg Config
	mu  sync.Mutex
	rcs []*Recorder
}

// NewCollector builds a collector that hands out recorders configured by
// cfg. Returns nil when cfg.Enabled is false, so callers can bind
// unconditionally and pay nothing when the timeline is off.
func NewCollector(cfg Config) *Collector {
	if !cfg.Enabled {
		return nil
	}
	return &Collector{cfg: cfg}
}

// Config returns the collector's configuration (zero for nil).
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// NewRecorder creates, records, and returns one recorder sampling reg at
// eng's window boundaries (nil from a nil collector). Safe to call from
// any goroutine.
func (c *Collector) NewRecorder(reg *metrics.Registry, eng *sim.Engine) *Recorder {
	if c == nil {
		return nil
	}
	r := newRecorder(c.cfg, reg, eng)
	c.mu.Lock()
	c.rcs = append(c.rcs, r)
	c.mu.Unlock()
	return r
}

// Recorders returns the collected recorders in creation order.
func (c *Collector) Recorders() []*Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Recorder(nil), c.rcs...)
}

// Finalize closes every recorder's trailing partial window.
func (c *Collector) Finalize() {
	for _, r := range c.Recorders() {
		r.Finalize()
	}
}

// ambient maps goroutine id → bound collector (same pattern as
// metrics.Collector and txtrace.Collector: bind/lookup only at job
// boundaries and machine construction, never per event).
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Collector{}
)

// Bind attaches c to the calling goroutine and returns a release func that
// restores whatever was bound before. Binding a nil collector is a no-op
// that still returns a valid release func.
func (c *Collector) Bind() (release func()) {
	if c == nil {
		return func() {}
	}
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = c
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// AmbientCollector returns the collector bound to the calling goroutine,
// or nil (machine.New then runs without a timeline).
func AmbientCollector() *Collector {
	ambientMu.Lock()
	defer ambientMu.Unlock()
	if len(ambient) == 0 {
		return nil // nothing bound anywhere: skip the goid parse
	}
	return ambient[goid()]
}

// goid parses the calling goroutine's id from its stack header (same
// helper as packages metrics and txtrace keep privately).
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("timeline: cannot parse goroutine id from stack header")
	}
	return id
}
