// Package timeline is the simulator's time-series telemetry plane: it
// samples every registered metric at fixed simulated-cycle window
// boundaries, turning the end-of-run metrics registry into per-window
// counter-rate and gauge tracks.
//
// Sampling rides the engine's OnAdvance hook. When simulated time moves
// from cycle F to cycle T, every event at or before F has executed and no
// event exists strictly between F and T, so for each window boundary B in
// (F, T] the registry holds exactly "the state after all events before B"
// — a quantity determined solely by the (deterministic) event history of
// one machine's engine, never by wall-clock, goroutine scheduling, or the
// -jobs value. Two runs of the same simulation therefore produce
// byte-identical timelines at any parallelism.
//
// Each window stores a metrics.Snapshot delta: counters and histograms
// report the increase over the window, gauges report their value at the
// window's end boundary. One caveat: a CounterFunc or gauge closure that
// reads the engine clock observes the advance target (the cycle of the
// next event), not the boundary itself — Window.Start/End carry the exact
// per-window timebase, so clock-derived metrics stay deterministic but
// lumpy. The hot path (one nil-check per time-advancing event, one atomic
// load per actual advance) allocates nothing while disabled and allocates
// only the per-window snapshot when enabled.
package timeline

import (
	"strings"
	"sync"
	"sync/atomic"

	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
)

// DefaultWindowCycles is the sampling window used when Config leaves
// WindowCycles zero: fine enough to resolve CTT ramps and chaos windows,
// coarse enough that a paper-scale run stays in the hundreds of windows.
const DefaultWindowCycles = 100_000

// Config configures the timeline plane for a run.
type Config struct {
	// Enabled gates the plane; when false NewCollector returns nil and
	// nothing is recorded.
	Enabled bool
	// WindowCycles is the sampling window in simulated cycles. <= 0 uses
	// DefaultWindowCycles.
	WindowCycles uint64
	// Tracks optionally restricts the Perfetto counter-track export to
	// metric names with one of these dotted prefixes (e.g. "ctt",
	// "engine.bounces"). Empty exports every metric that changes at least
	// once. CSV/JSON exports always carry every metric.
	Tracks []string
}

// window returns the effective sampling window.
func (c Config) window() sim.Cycle {
	if c.WindowCycles == 0 {
		return DefaultWindowCycles
	}
	return c.WindowCycles
}

// Window is one sampled interval [Start, End) of a machine's timeline.
type Window struct {
	Index int       `json:"index"`
	Start sim.Cycle `json:"start"`
	End   sim.Cycle `json:"end"`
	// Sample holds the per-window readings: counter and histogram values
	// are deltas over the window, gauges are the value observed at End.
	Sample *metrics.Snapshot `json:"sample"`
}

// Recorder samples one machine's registry at window boundaries of its
// engine. Create recorders through a Collector; a nil Recorder is inert.
//
// Concurrency: the sim goroutine drives sampling; mu guards the window
// list and scratch snapshots so the live-inspection endpoint (Current,
// Windows) can read from another goroutine. Live reads of gauge closures
// race benignly with the sim — the -serve endpoint is a best-effort
// debugging view, not a determinism surface.
type Recorder struct {
	reg    *metrics.Registry
	eng    *sim.Engine
	window sim.Cycle
	tracks []string

	next atomic.Uint64 // next boundary to sample; atomic for the fast path

	mu        sync.Mutex
	prev, cur metrics.Snapshot // scratch: reading at last boundary / this one
	windows   []Window
	finalized bool
}

func newRecorder(cfg Config, reg *metrics.Registry, eng *sim.Engine) *Recorder {
	r := &Recorder{reg: reg, eng: eng, window: cfg.window(), tracks: cfg.Tracks}
	r.next.Store(uint64(r.window))
	reg.SnapshotInto(&r.prev) // baseline at cycle 0
	eng.OnAdvance(r.advance)
	return r
}

// WindowCycles reports the recorder's sampling window.
func (r *Recorder) WindowCycles() sim.Cycle { return r.window }

// advance is the engine hook: sample every boundary in (from, to].
func (r *Recorder) advance(_, to sim.Cycle) {
	if to < r.next.Load() {
		return
	}
	r.mu.Lock()
	next := sim.Cycle(r.next.Load())
	for next <= to {
		r.sampleLocked(next)
		next += r.window
		r.next.Store(uint64(next))
	}
	r.mu.Unlock()
}

// sampleLocked closes the window ending at boundary b.
func (r *Recorder) sampleLocked(b sim.Cycle) {
	r.reg.SnapshotInto(&r.cur)
	delta := r.cur.Delta(&r.prev) // fresh snapshot: it is retained in the window
	r.prev, r.cur = r.cur, r.prev
	r.windows = append(r.windows, Window{
		Index:  len(r.windows),
		Start:  b - r.window,
		End:    b,
		Sample: delta,
	})
}

// Finalize closes the trailing partial window [lastBoundary, Now) if the
// engine stopped mid-window, and detaches the engine hook. Idempotent;
// exports and the runner call it when a run completes.
func (r *Recorder) Finalize() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.finalized {
		return
	}
	r.finalized = true
	r.eng.OnAdvance(nil)
	start := sim.Cycle(r.next.Load()) - r.window
	if end := r.eng.Now(); end > start {
		r.reg.SnapshotInto(&r.cur)
		delta := r.cur.Delta(&r.prev)
		r.prev, r.cur = r.cur, r.prev
		r.windows = append(r.windows, Window{
			Index:  len(r.windows),
			Start:  start,
			End:    end,
			Sample: delta,
		})
	}
}

// Windows returns the closed windows recorded so far.
func (r *Recorder) Windows() []Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Window(nil), r.windows...)
}

// Current returns a live view of the in-progress window: its start cycle
// and the metric deltas accumulated since the last closed boundary. Used
// by the -serve inspection endpoint.
func (r *Recorder) Current() Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur metrics.Snapshot
	r.reg.SnapshotInto(&cur)
	return Window{
		Index:  len(r.windows),
		Start:  sim.Cycle(r.next.Load()) - r.window,
		End:    r.eng.Now(),
		Sample: cur.Delta(&r.prev),
	}
}

// selected reports whether a metric name belongs on the Perfetto counter
// export given the recorder's track filter.
func (r *Recorder) selected(name string) bool {
	if len(r.tracks) == 0 {
		return true
	}
	for _, p := range r.tracks {
		if name == p || (strings.HasPrefix(name, p) && len(name) > len(p) && name[len(p)] == '.') {
			return true
		}
	}
	return false
}
