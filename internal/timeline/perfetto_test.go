package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// traceEvent mirrors the Chrome trace-event fields the exports emit.
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   uint64                 `json:"ts"`
	Dur  uint64                 `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

func decodeTrace(t *testing.T, data []byte) []traceEvent {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not well-formed JSON: %v\n%s", err, data)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// buildTraced runs a tiny simulation with both a tracer and a recorder on
// one registry/engine, returning the pair.
func buildTraced(t *testing.T) (*txtrace.Tracer, *Recorder) {
	t.Helper()
	eng := sim.NewEngine()
	t.Cleanup(eng.Close)
	reg := metrics.NewRegistry()
	var ops uint64
	reg.Counter("test.ops", &ops)
	tr := txtrace.New(txtrace.Config{Enabled: true})
	col := NewCollector(Config{Enabled: true, WindowCycles: 50})
	rec := col.NewRecorder(reg, eng)
	for i := 0; i < 4; i++ {
		start := sim.Cycle(i * 40)
		eng.At(start, func() {
			ops++
			tx := tr.BeginRoot(txtrace.StageCPULoad, 0, 0x1000, eng.Now())
			tr.End(tx, eng.Now()+10)
		})
	}
	eng.RunUntil(200)
	rec.Finalize()
	return tr, rec
}

func TestExportPerfettoValidates(t *testing.T) {
	tr, rec := buildTraced(t)
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, []*txtrace.Tracer{tr}, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())

	known := map[string]bool{}
	for _, s := range txtrace.StageNames() {
		known[s] = true
	}
	var spanSeen, counterSeen bool
	counterTs := map[string]uint64{}  // counter track name → last ts
	counterFirst := map[string]bool{} // seen at least one event
	rootTs := map[[2]int]uint64{}     // (pid, tid) → last root span ts
	rootFirst := map[[2]int]bool{}
	for _, ev := range events {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("unexpected metadata event %q", ev.Name)
			}
		case "X":
			spanSeen = true
			if !known[ev.Name] {
				t.Errorf("span stage %q not in txtrace.StageNames", ev.Name)
			}
			if _, ok := ev.Args["tx"]; !ok {
				t.Errorf("span missing tx arg: %+v", ev)
			}
			// Root spans (no parent) are recorded in begin order, so their
			// ts is monotonic per (pid, track).
			if _, nested := ev.Args["parent"]; !nested {
				key := [2]int{ev.Pid, ev.Tid}
				if rootFirst[key] && ev.Ts < rootTs[key] {
					t.Errorf("root span ts went backwards on pid %d tid %d: %d < %d", ev.Pid, ev.Tid, ev.Ts, rootTs[key])
				}
				rootFirst[key], rootTs[key] = true, ev.Ts
			}
		case "C":
			counterSeen = true
			if ev.Cat != "timeline" {
				t.Errorf("counter event cat = %q, want timeline", ev.Cat)
			}
			if !strings.Contains(ev.Name, ".") && ev.Name != "sim" {
				t.Errorf("counter track %q is not a dotted metric name", ev.Name)
			}
			if _, ok := ev.Args["value"]; !ok {
				t.Errorf("counter event missing value arg: %+v", ev)
			}
			if counterFirst[ev.Name] && ev.Ts <= counterTs[ev.Name] {
				t.Errorf("counter track %q ts not strictly monotonic: %d after %d", ev.Name, ev.Ts, counterTs[ev.Name])
			}
			counterFirst[ev.Name], counterTs[ev.Name] = true, ev.Ts
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	if !spanSeen || !counterSeen {
		t.Fatalf("export missing spans (%v) or counters (%v)", spanSeen, counterSeen)
	}
	if !counterFirst["test.ops"] {
		t.Fatal("expected a test.ops counter track")
	}
}

// The plain txtrace.Export must be byte-identical to ExportPerfetto with
// no recorders: the EventWriter refactor is not allowed to change bytes.
func TestExportPerfettoMatchesPlainExport(t *testing.T) {
	tr, _ := buildTraced(t)
	var plain, merged bytes.Buffer
	if err := txtrace.Export(&plain, []*txtrace.Tracer{tr, nil}); err != nil {
		t.Fatal(err)
	}
	if err := ExportPerfetto(&merged, []*txtrace.Tracer{tr, nil}, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), merged.Bytes()) {
		t.Fatal("ExportPerfetto without recorders diverges from txtrace.Export")
	}
}

// A recorder on a machine with no tracer still gets a named process.
func TestExportPerfettoRecorderOnly(t *testing.T) {
	_, rec := buildTraced(t)
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, nil, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	var named, counters bool
	for _, ev := range events {
		if ev.Ph == "M" && ev.Name == "process_name" {
			named = true
		}
		if ev.Ph == "C" {
			counters = true
		}
	}
	if !named || !counters {
		t.Fatalf("recorder-only export missing process name (%v) or counters (%v)", named, counters)
	}
}

// Deterministic: two identical exports are byte-identical.
func TestExportPerfettoDeterministic(t *testing.T) {
	tr, rec := buildTraced(t)
	var a, b bytes.Buffer
	if err := ExportPerfetto(&a, []*txtrace.Tracer{tr}, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	if err := ExportPerfetto(&b, []*txtrace.Tracer{tr}, []*Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated export differs")
	}
}
