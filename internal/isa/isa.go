// Package isa implements the two instructions (MC)² adds to the CPU
// (§III-C): MCLAZY, which registers a prospective copy, and MCFREE, which
// hints that a buffer is dead.
//
// MCLAZY's architectural side effects happen here, in order:
//  1. destination cachelines are invalidated from every cache (their
//     contents are about to be redefined by the lazy copy);
//  2. any still-dirty source cachelines are written back (the software
//     wrapper already issued CLWBs; this sweep is the hardware guarantee
//     that MC-observed memory holds the source as-of-copy). The caches'
//     FIFO write path delivers these writebacks before the packet;
//  3. the packet crosses the interconnect and every controller inserts the
//     CTT entry.
package isa

import (
	"mcsquare/internal/cache"
	"mcsquare/internal/core"
	"mcsquare/internal/cpu"
	"mcsquare/internal/interconnect"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Stats counts instruction activity.
type Stats struct {
	MCLazies        uint64
	MCFrees         uint64
	DestInvalidated uint64 // destination lines found cached and dropped
	SrcFlushed      uint64 // source lines still dirty at MCLAZY (wrapper missed them)
	PacketCycles    uint64 // total cycles from issue to CTT acceptance
}

// Unit dispatches the (MC)² instructions for all cores. It satisfies
// cpu.LazyIssuer.
type Unit struct {
	eng    *sim.Engine
	hier   *cache.Hierarchy
	lazy   *core.Engine
	hopLat sim.Cycle
	nMCs   int
	tr     *txtrace.Tracer

	Stats Stats
}

// SetTracer attaches the transaction tracer (nil disables).
func (u *Unit) SetTracer(t *txtrace.Tracer) { u.tr = t }

var _ cpu.LazyIssuer = (*Unit)(nil)

// New creates the instruction unit. hopLat is the cache-to-controller
// interconnect latency charged to each packet; controllers is the number
// of CTTs the packet broadcast reaches.
func New(eng *sim.Engine, hier *cache.Hierarchy, lazy *core.Engine, hopLat sim.Cycle, controllers int) *Unit {
	if controllers <= 0 {
		controllers = 1
	}
	return &Unit{eng: eng, hier: hier, lazy: lazy, hopLat: hopLat, nMCs: controllers}
}

// bus returns the hierarchy's interconnect: MCLAZY packets travel the same
// link as memory traffic.
func (u *Unit) bus() *interconnect.Bus { return u.hier.Bus() }

// MCLazy implements the MCLAZY instruction. dst must be cacheline-aligned
// with a cacheline-multiple size no larger than a huge page; src may have
// any alignment. done fires when the CTT has accepted the entry.
func (u *Unit) MCLazy(coreID int, dst memdata.Range, src memdata.Addr, tx txtrace.Tx, done func()) {
	u.Stats.MCLazies++
	start := u.eng.Now()
	psp := u.tr.Begin(tx, txtrace.StageISAPacket, uint64(dst.Start), uint64(start))

	u.Stats.DestInvalidated += uint64(u.hier.InvalidateRange(dst))
	srcRange := memdata.Range{Start: src, Size: dst.Size}
	dirty := u.hier.FlushRangeTx(srcRange, psp, func() {
		// The packet is broadcast so every controller inserts the entry
		// (Fig 6 step 3); the shared-table model makes that one logical
		// insert, fired on the first endpoint delivery.
		fired := false
		u.bus().Broadcast(u.nMCs, func(int) {
			if fired {
				return
			}
			fired = true
			u.lazy.MCLazy(dst, src, psp, func() {
				// The acceptance acknowledgment crosses back to the core.
				u.bus().SendTx(16, psp, func() {
					u.Stats.PacketCycles += uint64(u.eng.Now() - start)
					u.tr.End(psp, uint64(u.eng.Now()))
					done()
				})
			})
		})
	})
	u.Stats.SrcFlushed += uint64(dirty)
}

// MCFree implements the MCFREE instruction: CTT entries whose destination
// lies inside r are dropped. Reads of the freed buffer are undefined until
// it is rewritten, so cached copies may be left in place.
func (u *Unit) MCFree(coreID int, r memdata.Range, tx txtrace.Tx, done func()) {
	u.Stats.MCFrees++
	psp := u.tr.Begin(tx, txtrace.StageISAPacket, uint64(r.Start), uint64(u.eng.Now()))
	fired := false
	u.bus().Broadcast(u.nMCs, func(int) {
		if fired {
			return
		}
		fired = true
		u.lazy.MCFree(r, psp, func() {
			u.tr.End(psp, uint64(u.eng.Now()))
			done()
		})
	})
}
