package isa_test

import (
	"bytes"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
)

func newM() *machine.Machine { return machine.New(machine.DefaultParams()) }

func TestMCLazyInvalidatesDestination(t *testing.T) {
	m := newM()
	src := m.AllocPage(8 << 10)
	dst := m.AllocPage(8 << 10)
	m.FillRandom(src, 8<<10, 1)
	m.Run(func(c *cpu.Core) {
		// Cache the destination with stale data first.
		for a := dst; a < dst+8<<10; a += memdata.LineSize {
			c.LoadAsync(a, 8)
		}
		c.Fence()
		c.MCLazy(memdata.Range{Start: dst, Size: 8 << 10}, src)
		c.Fence()
		// The first read after MCLAZY must return the source data, not the
		// stale cached destination.
		got := c.Load(dst, 64)
		want := c.Load(src, 64)
		if !bytes.Equal(got, want) {
			t.Error("stale cached destination survived MCLAZY")
		}
	})
	if m.ISA.Stats.DestInvalidated == 0 {
		t.Fatal("no destination lines were invalidated")
	}
}

func TestMCLazyFlushesDirtySource(t *testing.T) {
	m := newM()
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.FillRandom(src, 4096, 2)
	m.Run(func(c *cpu.Core) {
		// Dirty the source in the cache; skip the wrapper's CLWBs to force
		// the instruction's own safety flush.
		c.Store(src, bytes.Repeat([]byte{0xAB}, 64))
		c.Fence()
		c.MCLazy(memdata.Range{Start: dst, Size: 4096}, src)
		c.Fence()
		got := c.Load(dst, 1)
		if got[0] != 0xAB {
			t.Error("lazy copy missed the dirty cached source data")
		}
	})
	if m.ISA.Stats.SrcFlushed == 0 {
		t.Fatal("dirty source line was not flushed by MCLAZY")
	}
}

func TestMCFreeThroughUnit(t *testing.T) {
	m := newM()
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.FillRandom(src, 4096, 3)
	m.Run(func(c *cpu.Core) {
		c.MCLazy(memdata.Range{Start: dst, Size: 4096}, src)
		// MCLAZY and MCFREE proceed in parallel without ordering (§III-C);
		// the fence makes the free observe the inserted entry.
		c.Fence()
		c.MCFree(memdata.Range{Start: dst, Size: 4096})
		c.Fence()
	})
	if m.ISA.Stats.MCFrees != 1 {
		t.Fatalf("MCFrees = %d", m.ISA.Stats.MCFrees)
	}
	if m.Lazy.CTT().Len() != 0 {
		t.Fatalf("CTT has %d entries after MCFREE", m.Lazy.CTT().Len())
	}
}

func TestPacketCyclesAccumulate(t *testing.T) {
	m := newM()
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.Run(func(c *cpu.Core) {
		c.MCLazy(memdata.Range{Start: dst, Size: 4096}, src)
		c.Fence()
	})
	if m.ISA.Stats.MCLazies != 1 || m.ISA.Stats.PacketCycles == 0 {
		t.Fatalf("stats: %+v", m.ISA.Stats)
	}
}
