package isa

import "mcsquare/internal/metrics"

// PublishMetrics registers the instruction unit's counters under the
// given scope (the machine uses "isa").
func (u *Unit) PublishMetrics(s metrics.Scope) {
	s.Counter("mclazies", &u.Stats.MCLazies)
	s.Counter("mcfrees", &u.Stats.MCFrees)
	s.Counter("dest_invalidated", &u.Stats.DestInvalidated)
	s.Counter("src_flushed", &u.Stats.SrcFlushed)
	s.Counter("packet_cycles", &u.Stats.PacketCycles)
}
