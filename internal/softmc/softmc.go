// Package softmc is the software layer of (MC)²: the memcpy_lazy C library
// function of §III-D (reproduced from the paper's Fig 8 pseudocode, byte
// for byte) and the interposer policy that transparently redirects large
// memcpy calls to it.
package softmc

import (
	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
)

// MemcpyLazy copies size bytes from src to dst with semantics identical to
// memcpy, using MCLAZY for every cacheline-aligned page-bounded chunk and
// plain copies for the fringes (the paper's Fig 8):
//
//  1. eagerly copy the bytes needed to cacheline-align dst;
//  2. per iteration, bound the chunk by the bytes remaining in the source
//     and destination pages so each MCLAZY stays within one page of each;
//  3. chunks smaller than a cacheline are copied eagerly; larger chunks are
//     rounded down to a line multiple, the source lines are written back
//     with CLWB, and MCLAZY is issued;
//  4. a final fence orders the prospective copies with future accesses.
//
// Addresses here are physical, as the simulated workloads run identity-
// mapped; oskern wraps this for paged address spaces.
func MemcpyLazy(c *cpu.Core, dst, src memdata.Addr, size uint64) {
	// Cacheline-align dst (Fig 8 lines 3-7).
	leftFringe := memdata.AlignRem(dst, memdata.LineSize)
	if leftFringe > size {
		leftFringe = size
	}
	if leftFringe > 0 {
		c.Memcpy(dst, src, leftFringe)
		dst += memdata.Addr(leftFringe)
		src += memdata.Addr(leftFringe)
		size -= leftFringe
	}
	for size > 0 {
		// Re-align dst if a sub-line chunk (a source page boundary falling
		// mid-line) left it unaligned — a case Fig 8 leaves implicit but
		// MCLAZY's alignment rule requires.
		if fr := memdata.AlignRem(dst, memdata.LineSize); fr > 0 {
			if fr > size {
				fr = size
			}
			c.Memcpy(dst, src, fr)
			dst += memdata.Addr(fr)
			src += memdata.Addr(fr)
			size -= fr
			continue
		}
		// Bytes remaining in the current source and destination pages
		// (Fig 8 lines 10-13). A page-aligned address has a full page left.
		srcOff := memdata.PageSize - memdata.PageOffset(src)
		dstOff := memdata.PageSize - memdata.PageOffset(dst)
		copySize := min(min(srcOff, dstOff), size)
		if copySize < memdata.LineSize {
			c.Memcpy(dst, src, copySize)
		} else {
			copySize &^= memdata.LineSize - 1
			// Write back each source cacheline so MC-visible memory holds
			// the data as of this call (§IV: the wrapper issues CLWB per
			// line to model the writeback cost).
			for l := memdata.LineAlign(src); l < memdata.LineUp(src+memdata.Addr(copySize)); l += memdata.LineSize {
				c.CLWB(l)
			}
			c.MCLazy(memdata.Range{Start: dst, Size: copySize}, src)
		}
		dst += memdata.Addr(copySize)
		src += memdata.Addr(copySize)
		size -= copySize
	}
	c.Fence() // mfence (Fig 8 line 23)
}

// MemcpyEager is the baseline: a plain cache-level copy followed by a
// fence, so both paths measure to completion of the same visible state.
func MemcpyEager(c *cpu.Core, dst, src memdata.Addr, size uint64) {
	c.Memcpy(dst, src, size)
	c.Fence()
}

// Interposer is the copy_interpose.so policy: memcpy calls at or above
// Threshold bytes become lazy copies, smaller ones stay eager. A zero
// Interposer never redirects (Threshold 0 means "disabled" here; the paper
// redirects calls ≥ 1 KB for Protobuf).
type Interposer struct {
	Threshold uint64 // 0 disables redirection

	Redirected uint64 // calls sent to MemcpyLazy
	Passed     uint64 // calls left eager
}

// Memcpy applies the interposition policy to one memcpy call.
func (ip *Interposer) Memcpy(c *cpu.Core, dst, src memdata.Addr, size uint64) {
	if ip.Threshold != 0 && size >= ip.Threshold {
		ip.Redirected++
		MemcpyLazy(c, dst, src, size)
		return
	}
	ip.Passed++
	MemcpyEager(c, dst, src, size)
}

// Free releases a buffer with the MCFREE hint (munmap-style): tracking for
// the buffer is dropped and its contents become undefined.
func Free(c *cpu.Core, r memdata.Range) {
	c.MCFree(r)
	c.Fence()
}
