package softmc

import (
	"bytes"
	"math/rand"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
)

func newM() *machine.Machine { return machine.New(machine.DefaultParams()) }

// TestWrapperFringeHandling drives memcpy_lazy over every alignment class
// of Fig 8: unaligned head, sub-line chunks at page boundaries, unaligned
// tail — and verifies byte-exact results.
func TestWrapperFringeHandling(t *testing.T) {
	cases := []struct {
		name   string
		dstOff uint64
		srcOff uint64
		size   uint64
	}{
		{"aligned-page", 0, 0, 4096},
		{"unaligned-head", 7, 0, 4096},
		{"unaligned-both", 13, 41, 5000},
		{"sub-line", 3, 9, 40},
		{"exact-line", 0, 0, 64},
		{"line-plus-byte", 0, 0, 65},
		{"page-straddle", 4090, 17, 8192},
		{"src-page-boundary-mid-line", 64, 4090, 3000},
		{"huge", 5, 5, 64 << 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newM()
			region := m.AllocPage(256 << 10)
			m.FillRandom(region, 256<<10, 5)
			src := region + memdata.Addr(tc.srcOff)
			dst := region + 128<<10 + memdata.Addr(tc.dstOff)
			want := m.Phys.Read(src, tc.size)
			var got []byte
			m.Run(func(c *cpu.Core) {
				MemcpyLazy(c, dst, src, tc.size)
				got = c.Load(dst, tc.size)
			})
			if !bytes.Equal(got, want) {
				t.Fatal("data mismatch")
			}
		})
	}
}

// TestWrapperChunksStayInPages verifies the Fig 8 invariant: every MCLAZY
// the wrapper issues stays within one source page and one destination page.
func TestWrapperChunksStayInPages(t *testing.T) {
	m := newM()
	region := m.AllocPage(128 << 10)
	m.FillRandom(region, 128<<10, 6)
	src := region + 4090 // forces page-boundary chunking
	dst := region + 64<<10 + 3
	m.Run(func(c *cpu.Core) {
		MemcpyLazy(c, dst, src, 20000)
	})
	for _, e := range m.Lazy.CTT().Entries() {
		if memdata.PageAlign(e.Dst.Start) != memdata.PageAlign(e.Dst.End()-1) {
			t.Fatalf("entry destination crosses a page: %+v", e)
		}
		sr := e.SrcRange()
		if memdata.PageAlign(sr.Start) != memdata.PageAlign(sr.End()-1) {
			t.Fatalf("entry source crosses a page: %+v", e)
		}
	}
}

func TestInterposerCounters(t *testing.T) {
	m := newM()
	buf := m.AllocPage(64 << 10)
	m.FillRandom(buf, 64<<10, 7)
	ip := &Interposer{Threshold: 1024}
	m.Run(func(c *cpu.Core) {
		ip.Memcpy(c, buf+32<<10, buf, 512)
		ip.Memcpy(c, buf+40<<10, buf, 1024)
		ip.Memcpy(c, buf+48<<10, buf, 4096)
	})
	if ip.Passed != 1 || ip.Redirected != 2 {
		t.Fatalf("passed=%d redirected=%d", ip.Passed, ip.Redirected)
	}
	// Disabled interposer never redirects.
	ip2 := &Interposer{}
	m2 := newM()
	buf2 := m2.AllocPage(16 << 10)
	m2.Run(func(c *cpu.Core) { ip2.Memcpy(c, buf2+8<<10, buf2, 4096) })
	if ip2.Redirected != 0 || m2.Lazy.Stats.LazyOps != 0 {
		t.Fatal("disabled interposer redirected")
	}
}

func TestEagerMatchesLazyRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		size := uint64(1 + rnd.Intn(20000))
		srcOff := uint64(rnd.Intn(64))
		dstOff := uint64(rnd.Intn(64))

		mE := newM()
		regE := mE.AllocPage(128 << 10)
		mE.FillRandom(regE, 128<<10, int64(trial))
		var gotE []byte
		mE.Run(func(c *cpu.Core) {
			MemcpyEager(c, regE+64<<10+memdata.Addr(dstOff), regE+memdata.Addr(srcOff), size)
			gotE = c.Load(regE+64<<10+memdata.Addr(dstOff), size)
		})

		mL := newM()
		regL := mL.AllocPage(128 << 10)
		mL.FillRandom(regL, 128<<10, int64(trial))
		var gotL []byte
		mL.Run(func(c *cpu.Core) {
			MemcpyLazy(c, regL+64<<10+memdata.Addr(dstOff), regL+memdata.Addr(srcOff), size)
			gotL = c.Load(regL+64<<10+memdata.Addr(dstOff), size)
		})

		if !bytes.Equal(gotE, gotL) {
			t.Fatalf("trial %d (size=%d src+%d dst+%d): eager and lazy differ",
				trial, size, srcOff, dstOff)
		}
	}
}

func TestFreeHint(t *testing.T) {
	m := newM()
	buf := m.AllocPage(16 << 10)
	m.FillRandom(buf, 16<<10, 9)
	m.Run(func(c *cpu.Core) {
		MemcpyLazy(c, buf+8<<10, buf, 4096)
		Free(c, memdata.Range{Start: buf + 8<<10, Size: 4096})
	})
	if m.Lazy.CTT().Len() != 0 {
		t.Fatalf("%d entries after Free", m.Lazy.CTT().Len())
	}
}
