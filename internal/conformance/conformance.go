// Package conformance validates the simulator against analytically derived
// ground truth instead of against itself.
//
// Determinism tests prove outputs are stable; nothing about stability says
// they are right. This package closes that gap with three pillars:
//
//  1. Closed-form oracles: directed access generators (row-hit streams,
//     row-miss ping-pong, N-bank interleave, read/write turnaround,
//     saturating sequential streams) are driven through dram.Channel and
//     end-to-end through memctrl and machine, and the observed completion
//     times are compared against latencies and bandwidths computed in
//     closed form from the dram.Config timing parameters. Derivations live
//     in DESIGN.md §13; the tolerance policy is "exact at the channel and
//     controller level, analytic bounds plus an additivity law end-to-end".
//
//  2. Metamorphic invariants: scaling laws the model must obey regardless
//     of its constants — halving the burst time doubles bus-limited peak
//     bandwidth, adding banks never slows a fixed (bank, row) trace, lazy
//     (MC)² runs leave the same visible memory image as eager copies, and
//     the CTT byte ledger conserves (deferred = tracked + untracked, with
//     every untracked byte attributed to exactly one cause).
//
//  3. Mutation detection: internal/dram's -tags mcsq_skew build silently
//     lengthens tCAS while Config reports the nominal value; CI asserts
//     this package FAILS under that build, proving the oracles have teeth.
//
// New timing backends (a DMA engine, CXL memory) register a Backend here
// and inherit the whole channel-level suite.
package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"mcsquare/internal/dram"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// Timer is the minimal surface a channel timing backend must expose to be
// validated: the dram.Channel contract of "one timed access, completion
// cycle returned". dram.Channel satisfies it directly.
type Timer interface {
	// Access performs a cacheline access beginning no earlier than now and
	// returns the cycle its data burst completes.
	Access(now sim.Cycle, a memdata.Addr, write bool) sim.Cycle
	// Config reports the timing parameters the oracles derive expectations
	// from.
	Config() dram.Config
}

// Backend is one registered channel timing model. New must return a fresh
// timer (cold banks, idle bus) for the given configuration; oracles create
// many independent timers per run.
type Backend struct {
	Name string
	New  func(cfg dram.Config) Timer
}

var (
	backendMu sync.Mutex
	backends  []Backend
)

// RegisterBackend adds a timing backend to the conformance registry. Every
// registered backend is run through the full channel-level oracle suite by
// TestChannelOracles. Duplicate names panic: the report keys checks by
// backend name.
func RegisterBackend(b Backend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	for _, x := range backends {
		if x.Name == b.Name {
			panic(fmt.Sprintf("conformance: duplicate backend %q", b.Name))
		}
	}
	backends = append(backends, b)
}

// Backends returns the registered backends in registration order.
func Backends() []Backend {
	backendMu.Lock()
	defer backendMu.Unlock()
	return append([]Backend(nil), backends...)
}

func init() {
	RegisterBackend(Backend{
		Name: "ddr4",
		New:  func(cfg dram.Config) Timer { return dram.NewChannel(cfg) },
	})
}

// Check is one oracle comparison: a measured quantity against its
// closed-form expectation. Tolerance is absolute, in the same unit.
type Check struct {
	Name      string  `json:"name"`
	Backend   string  `json:"backend,omitempty"`
	Unit      string  `json:"unit"`
	Expected  float64 `json:"expected"`
	Measured  float64 `json:"measured"`
	Tolerance float64 `json:"tolerance"`
	Pass      bool    `json:"pass"`
	Detail    string  `json:"detail,omitempty"`
}

// eval fills Pass from the comparison.
func (c Check) eval() Check {
	diff := c.Expected - c.Measured
	if diff < 0 {
		diff = -diff
	}
	c.Pass = diff <= c.Tolerance
	return c
}

// exactCycles builds a zero-tolerance cycle-count check.
func exactCycles(name string, expected, measured sim.Cycle) Check {
	return Check{
		Name:     name,
		Unit:     "cycles",
		Expected: float64(expected),
		Measured: float64(measured),
	}.eval()
}

// Report aggregates every check from one suite run; the conformance CI job
// uploads it as a JSON artifact.
type Report struct {
	Suite    string  `json:"suite"`
	Checks   []Check `json:"checks"`
	Passes   int     `json:"passes"`
	Failures int     `json:"failures"`
}

var (
	reportMu  sync.Mutex
	runReport = &Report{Suite: "timing-conformance"}
)

// record adds checks to the run-wide report (written by TestMain when
// MCSQ_CONFORMANCE_REPORT names a path).
func record(cs ...Check) {
	reportMu.Lock()
	defer reportMu.Unlock()
	for _, c := range cs {
		runReport.Checks = append(runReport.Checks, c)
		if c.Pass {
			runReport.Passes++
		} else {
			runReport.Failures++
		}
	}
}

// writeReport dumps the aggregated report as indented JSON, checks sorted
// by (backend, name) for stable artifacts.
func writeReport(path string) error {
	reportMu.Lock()
	defer reportMu.Unlock()
	sort.SliceStable(runReport.Checks, func(i, j int) bool {
		a, b := runReport.Checks[i], runReport.Checks[j]
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		return a.Name < b.Name
	})
	data, err := json.MarshalIndent(runReport, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
