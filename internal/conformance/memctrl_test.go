package conformance

import (
	"testing"

	"mcsquare/internal/dram"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// mcRig is a bare controller over one channel: no caches, no cores, so the
// controller's queueing and drain policy are the only things between the
// test and the closed-form channel math.
type mcRig struct {
	eng *sim.Engine
	mc  *memctrl.Controller
	cfg dram.Config
	mcc memctrl.Config
}

func newMCRig() *mcRig {
	eng := sim.NewEngine()
	cfg := dram.DDR4Config()
	mcc := memctrl.DefaultConfig()
	ch := dram.NewChannel(cfg)
	phys := memdata.NewPhysical(1 << 24)
	return &mcRig{
		eng: eng,
		mc:  memctrl.New(0, eng, mcc, ch, phys),
		cfg: cfg,
		mcc: mcc,
	}
}

// readDoneAt schedules a raw read at cycle `at` and returns a pointer that
// holds the completion cycle after eng.Drain().
func (r *mcRig) readDoneAt(at sim.Cycle, a memdata.Addr) *sim.Cycle {
	done := new(sim.Cycle)
	r.eng.At(at, func() {
		r.mc.RawReadLine(a, func([]byte) { *done = r.eng.Now() })
	})
	return done
}

// TestControllerOracles drives directed traffic through memctrl and checks
// completion cycles against expectations composed from the channel closed
// forms plus the controller's AcceptLatency. Derivations in DESIGN.md §13.
func TestControllerOracles(t *testing.T) {
	var checks []Check
	line := memdata.Addr(memdata.LineSize)

	// Cold read on an idle controller: the demand-read path charges no
	// front-end latency — completion is exactly the channel's cold access.
	{
		r := newMCRig()
		done := r.readDoneAt(0, 0)
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_cold_read",
			r.cfg.TRCD+r.cfg.TCAS+r.cfg.TBL, *done))
	}

	// Dependent row-hit read: issued the cycle the previous read completes,
	// next line of the same row.
	{
		r := newMCRig()
		done := new(sim.Cycle)
		r.eng.At(0, func() {
			r.mc.RawReadLine(0, func([]byte) {
				first := r.eng.Now()
				r.mc.RawReadLine(line, func([]byte) { *done = r.eng.Now() - first })
			})
		})
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_dependent_hit_read",
			r.cfg.TCAS+r.cfg.TBL, *done))
	}

	// WPQ forwarding: a read of a line whose write is still buffered (or in
	// flight) is serviced from the queue in one AcceptLatency.
	{
		r := newMCRig()
		buf := make([]byte, memdata.LineSize)
		r.eng.At(0, func() { r.mc.RawWriteLine(0, buf, func() {}) })
		issue := sim.Cycle(2) // before the posted write lands
		done := r.readDoneAt(issue, 0)
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_wpq_forward",
			r.mcc.AcceptLatency, *done-issue))
	}

	// Write→read turnaround through the controller: the posted write drains
	// opportunistically at cycle 0 (no reads pending), finishing at the
	// channel's cold-access time; a read of the same line issued after it
	// lands waits out write recovery.
	{
		r := newMCRig()
		buf := make([]byte, memdata.LineSize)
		r.eng.At(0, func() { r.mc.RawWriteLine(0, buf, func() {}) })
		doneW := r.cfg.TRCD + r.cfg.TCAS + r.cfg.TBL
		done := r.readDoneAt(doneW+8, 0) // 8 > 0 cycles past landing: not forwarded
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_write_read_turnaround",
			doneW+r.cfg.TWR+r.cfg.TCAS+r.cfg.TBL, *done))
	}

	// Bank-level parallelism: N reads to N distinct banks posted in the same
	// cycle overlap their activates; only the bursts serialize, so the last
	// completes at tRCD+tCAS+N·tBL.
	{
		r := newMCRig()
		const n = 8
		rows := distinctBankRows(r.cfg, n)
		var last sim.Cycle
		r.eng.At(0, func() {
			for _, rid := range rows {
				r.mc.RawReadLine(rowAddr(r.cfg, rid), func([]byte) { last = r.eng.Now() })
			}
		})
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_blp_08reads_last_done",
			r.cfg.TRCD+r.cfg.TCAS+sim.Cycle(n)*r.cfg.TBL, last))
	}

	// Same-bank contention: N same-row reads posted in the same cycle
	// serialize at the column interval — the channel hit-stream law seen
	// through the controller unchanged.
	{
		r := newMCRig()
		const n = 8
		var last sim.Cycle
		r.eng.At(0, func() {
			for i := 0; i < n; i++ {
				r.mc.RawReadLine(memdata.Addr(i)*line, func([]byte) { last = r.eng.Now() })
			}
		})
		r.eng.Drain()
		checks = append(checks, exactCycles("mc_samebank_08reads_last_done",
			r.cfg.TRCD+r.cfg.TCAS+r.cfg.TBL+(n-1)*max(r.cfg.TCCD+r.cfg.TCAS, r.cfg.TBL), last))
	}

	record(checks...)
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s: expected %v %s, measured %v",
				c.Name, c.Expected, c.Unit, c.Measured)
		} else {
			t.Logf("%s: %v %s", c.Name, c.Measured, c.Unit)
		}
	}
}

// TestControllerDrainKeepsForwarding pins the posted-write contract the
// turnaround oracle depends on: a write is forwardable from acceptance
// until it lands, and never afterwards returns stale data.
func TestControllerDrainKeepsForwarding(t *testing.T) {
	r := newMCRig()
	buf := make([]byte, memdata.LineSize)
	for i := range buf {
		buf[i] = 0xA5
	}
	r.eng.At(0, func() { r.mc.RawWriteLine(0, buf, func() {}) })

	forwarded := r.readDoneAt(1, 0) // in flight: forwarded
	var late []byte
	r.eng.At(500, func() { // long after landing: from the array
		r.mc.RawReadLine(0, func(d []byte) { late = d })
	})
	r.eng.Drain()

	if got := *forwarded - 1; got != r.mcc.AcceptLatency {
		t.Errorf("in-flight read latency %d, want AcceptLatency %d", got, r.mcc.AcceptLatency)
	}
	for i, b := range late {
		if b != 0xA5 {
			t.Fatalf("byte %d after landing = %#x, want 0xA5", i, b)
		}
	}
	if !r.mc.Quiesce() {
		t.Error("controller not quiescent after drain")
	}
}
