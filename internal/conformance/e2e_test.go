package conformance

import (
	"testing"

	"mcsquare/internal/cache"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// baselineParams is the single-core, single-channel, prefetch-off machine
// the end-to-end latency oracles run on: every load's path is
// core → L1 → L2 → interconnect → controller → DRAM with nothing
// overlapping, so completion times decompose exactly.
func baselineParams() machine.Params {
	p := machine.DefaultParams()
	p.Cores = 1
	p.Channels = 1
	p.Cache = cache.DefaultConfig(1)
	p.Cache.Prefetch.Enabled = false
	p.LazyEnabled = false
	return p
}

// TestMachineLatencyDecomposition pins the exact end-to-end latency of the
// three canonical loads on an idle machine. A demand miss costs
//
//	IssueCost + L1Latency + L2Latency + 2·XConLat + dramLat
//
// with dramLat the channel closed form (cold activate or row hit), and an
// L1 hit costs IssueCost + L1Latency. Zero tolerance: any extra or missing
// cycle anywhere on the load path breaks this.
func TestMachineLatencyDecomposition(t *testing.T) {
	p := baselineParams()
	m := machine.New(p)
	a := m.Alloc(1<<20, memdata.LineSize)

	memPath := p.CPU.IssueCost + p.Cache.L1Latency + p.Cache.L2Latency + 2*p.Cache.XConLat
	var cold, hit, l1 sim.Cycle
	m.Run(func(c *cpu.Core) {
		s := c.Now()
		c.Load(a, 8)
		cold = c.Now() - s
		s = c.Now()
		c.Load(a+memdata.LineSize, 8) // next line, same DRAM row
		hit = c.Now() - s
		s = c.Now()
		c.Load(a, 8) // still resident in L1
		l1 = c.Now() - s
	})

	checks := []Check{
		exactCycles("e2e_cold_load_latency",
			memPath+p.DRAM.TRCD+p.DRAM.TCAS+p.DRAM.TBL, cold),
		exactCycles("e2e_rowhit_load_latency",
			memPath+p.DRAM.TCAS+p.DRAM.TBL, hit),
		exactCycles("e2e_l1_hit_latency",
			p.CPU.IssueCost+p.Cache.L1Latency, l1),
	}
	record(checks...)
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s: expected %v %s, measured %v",
				c.Name, c.Expected, c.Unit, c.Measured)
		} else {
			t.Logf("%s: %v %s", c.Name, c.Measured, c.Unit)
		}
	}
}

// TestMachineTCASAdditivity is the end-to-end additivity law: on two
// machines identical except for a ΔtCAS in the DRAM config, a chain of K
// dependent cache-missing loads completes exactly K·Δ cycles later on the
// slower machine. Every load crosses DRAM exactly once, tCAS sits on the
// critical path of every access, and the dependent chain leaves the banks
// and bus idle between accesses, so nothing can absorb the delta. This is
// the whole-stack version of the mutation canary: a model that loses or
// double-charges tCAS anywhere between core and DRAM fails it.
func TestMachineTCASAdditivity(t *testing.T) {
	const (
		K     = 64
		delta = 16
	)
	run := func(extraTCAS sim.Cycle) sim.Cycle {
		p := baselineParams()
		p.DRAM.TCAS += extraTCAS
		m := machine.New(p)
		base := m.Alloc(64<<20, memdata.LineSize)
		// Distinct lines spread by an odd stride of rows so no two loads
		// share a cacheline and the L2 holds them all without eviction.
		return m.Run(func(c *cpu.Core) {
			for i := uint64(0); i < K; i++ {
				c.Load(base+memdata.Addr(i*37*p.DRAM.RowSize), 8)
			}
		})
	}
	fast, slow := run(0), run(delta)
	ck := exactCycles("e2e_tcas_additivity_delta", K*delta, slow-fast)
	record(ck)
	if !ck.Pass {
		t.Errorf("K·Δ additivity: expected %v extra cycles, measured %v (fast=%d slow=%d)",
			ck.Expected, ck.Measured, fast, slow)
	} else {
		t.Logf("Δ completion = %v cycles for K=%d, Δ=%d", ck.Measured, K, delta)
	}
}

// TestMachineStreamingBandwidth bounds full-machine streaming read
// bandwidth. The ceiling is analytic and inviolable: Channels data buses,
// each delivering at most one line per tBL. The floor is an empirical
// regression guard — with deep queues (so the cores, not the queues, are
// never the limiter) the wired machine has historically sustained ≥52% of
// the bus ceiling on this generator; dropping under 45% means someone
// serialized the memory path. Tolerances documented in DESIGN.md §13.
func TestMachineStreamingBandwidth(t *testing.T) {
	p := machine.DefaultParams()
	p.LazyEnabled = false
	p.Cache.MSHRsPerCore = 64
	p.Cache.Prefetch.MaxInflight = 64
	p.MC.RPQCapacity = 256
	m := machine.New(p)

	const region = 1 << 20
	bases := make([]memdata.Addr, p.Cores)
	for i := range bases {
		bases[i] = m.Alloc(region, 1<<12)
	}
	ws := make([]func(c *cpu.Core), p.Cores)
	for i := range ws {
		base := bases[i]
		ws[i] = func(c *cpu.Core) {
			for off := memdata.Addr(0); off < region; off += memdata.LineSize {
				c.LoadAsync(base+off, 8)
			}
			c.Fence()
		}
	}
	last := m.Run(ws...)

	bw := float64(p.Cores) * region / float64(last)
	ceiling := float64(p.Channels) * float64(memdata.LineSize) / float64(p.DRAM.TBL)
	checks := []Check{
		{
			Name: "e2e_stream_bw_under_ceiling", Unit: "bytes/cycle",
			Expected: ceiling, Measured: bw, Tolerance: 0,
			Pass:   bw <= ceiling,
			Detail: "one-sided: measured must not exceed Channels·LineSize/tBL",
		},
		{
			Name: "e2e_stream_bw_floor", Unit: "bytes/cycle",
			Expected: 0.45 * ceiling, Measured: bw, Tolerance: 0,
			Pass:   bw >= 0.45*ceiling,
			Detail: "one-sided regression floor at 45% of bus ceiling",
		},
	}
	record(checks...)
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("%s: measured %.3f %s vs bound %.3f", c.Name, c.Measured, c.Unit, c.Expected)
		} else {
			t.Logf("%s: %.3f %s (bound %.3f)", c.Name, c.Measured, c.Unit, c.Expected)
		}
	}
}
