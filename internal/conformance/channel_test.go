package conformance

import (
	"fmt"
	"os"
	"testing"

	"mcsquare/internal/dram"
)

// TestMain writes the aggregated conformance report when the environment
// names a destination (the CI job sets MCSQ_CONFORMANCE_REPORT and uploads
// the file as an artifact).
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("MCSQ_CONFORMANCE_REPORT"); path != "" {
		if err := writeReport(path); err != nil {
			fmt.Fprintf(os.Stderr, "conformance: writing report: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// TestChannelOracles runs every closed-form channel oracle against every
// registered backend at the default DDR4 geometry.
func TestChannelOracles(t *testing.T) {
	for _, b := range Backends() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			checks := ChannelOracles(b, dram.DDR4Config())
			record(checks...)
			for _, c := range checks {
				if !c.Pass {
					t.Errorf("%s: expected %v %s, measured %v (tolerance %v) %s",
						c.Name, c.Expected, c.Unit, c.Measured, c.Tolerance, c.Detail)
				} else {
					t.Logf("%s: %v %s (expected %v ± %v)",
						c.Name, c.Measured, c.Unit, c.Expected, c.Tolerance)
				}
			}
		})
	}
}

// TestChannelOraclesAltGeometries re-derives every expectation for timing
// sets far from the DDR4 defaults. The oracles must track the config, not
// memorize constants — this is what lets a future backend (or a retuned
// channel) reuse the suite.
func TestChannelOraclesAltGeometries(t *testing.T) {
	geometries := map[string]dram.Config{
		"slow_bus": { // burst dominates: bus-limited everywhere
			Banks: 8, RowSize: 4 << 10,
			TRCD: 40, TRP: 40, TCAS: 40, TBL: 100, TCCD: 8, TWR: 48,
		},
		"tight_timings": {
			Banks: 32, RowSize: 16 << 10,
			TRCD: 20, TRP: 24, TCAS: 16, TBL: 4, TCCD: 4, TWR: 20,
		},
		"single_bank": {
			Banks: 1, RowSize: 8 << 10,
			TRCD: 56, TRP: 56, TCAS: 56, TBL: 10, TCCD: 8, TWR: 60,
		},
	}
	for _, b := range Backends() {
		b := b
		for name, cfg := range geometries {
			cfg := cfg
			t.Run(b.Name+"/"+name, func(t *testing.T) {
				for _, c := range ChannelOracles(b, cfg) {
					if !c.Pass {
						t.Errorf("%s: expected %v %s, measured %v (tolerance %v)",
							c.Name, c.Expected, c.Unit, c.Measured, c.Tolerance)
					}
				}
			})
		}
	}
}
