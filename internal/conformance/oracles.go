package conformance

import (
	"fmt"

	"mcsquare/internal/dram"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// ---------------------------------------------------------------------------
// Reference address mapping
// ---------------------------------------------------------------------------
//
// The oracles need addresses with known bank relationships (same bank +
// different row, N distinct banks, ...). They derive them from the channel
// layout documented at dram.(*Channel).mapAddr — [row | bank | column] with
// the higher row bits XOR-folded into the bank index — which the table-
// driven tests in internal/dram pin against the implementation. Backends
// registering here are expected to use the same layout.

// refBankRow is the documented address decomposition.
func refBankRow(cfg dram.Config, a memdata.Addr) (bank int, row int64) {
	rowID := uint64(a) / cfg.RowSize
	banks := uint64(cfg.Banks)
	hash := rowID
	if banks > 1 { // folding by 1 would never terminate
		for h := rowID / banks; h != 0; h /= banks {
			hash ^= h
		}
	}
	return int(hash % banks), int64(rowID / banks)
}

// rowAddr returns the first byte address of the given rowID.
func rowAddr(cfg dram.Config, rowID uint64) memdata.Addr {
	return memdata.Addr(rowID * cfg.RowSize)
}

// conflictingRow finds the smallest rowID that shares row 0's bank with a
// different row index (an activate/precharge conflict partner).
func conflictingRow(cfg dram.Config) uint64 {
	b0, r0 := refBankRow(cfg, rowAddr(cfg, 0))
	for rid := uint64(1); rid < 1<<20; rid++ {
		if b, r := refBankRow(cfg, rowAddr(cfg, rid)); b == b0 && r != r0 {
			return rid
		}
	}
	panic("conformance: no conflicting row found")
}

// distinctBankRows returns n rowIDs mapping to n distinct banks.
func distinctBankRows(cfg dram.Config, n int) []uint64 {
	if n > cfg.Banks {
		panic(fmt.Sprintf("conformance: want %d banks, channel has %d", n, cfg.Banks))
	}
	seen := map[int]bool{}
	var out []uint64
	for rid := uint64(0); len(out) < n && rid < 1<<20; rid++ {
		if b, _ := refBankRow(cfg, rowAddr(cfg, rid)); !seen[b] {
			seen[b] = true
			out = append(out, rid)
		}
	}
	if len(out) < n {
		panic("conformance: bank search exhausted")
	}
	return out
}

// ---------------------------------------------------------------------------
// Closed-form channel oracles
// ---------------------------------------------------------------------------
//
// Derivations (DESIGN.md §13). Writing tACT = tRCD+tCAS for the cold-bank
// column latency and C = tCCD+tCAS for the same-bank column interval, the
// bank-busy-until model yields, exactly:
//
//	cold access            tRCD + tCAS + tBL
//	isolated row hit       tCAS + tBL
//	row conflict           tRP + tRCD + tCAS + tBL
//	hit-stream interval    max(tCCD+tCAS, tBL)        (back-to-back issue)
//	ping-pong interval     max(tCCD+tRP+tRCD+tCAS, tBL)
//	write→read turnaround  tWR + tCAS + tBL           (after the write burst)
//	write→write interval   max(tBL, tCCD) + tCAS      (serial issue)
//	N-bank interleave      max(tBL, (tCCD+tCAS)/N) per access, steady state
//	sequential stream      per row: tBL to open (bus-limited) then
//	                       (linesPerRow-1)·(tCCD+tCAS)
//
// Note the same-bank hit stream is column-serialized at tCCD+tCAS, not
// bus-limited at tBL: the model charges the full tCAS latency before each
// burst with no column pipelining. Bus saturation therefore needs at least
// ⌈(tCCD+tCAS)/tBL⌉ banks — which is what the interleave oracle measures.

// ChannelOracles runs every channel-level closed-form oracle against the
// backend at the given config and returns the checks (Pass already filled,
// tolerance zero unless stated in the check's Detail).
func ChannelOracles(b Backend, cfg dram.Config) []Check {
	var out []Check
	add := func(c Check) {
		c.Backend = b.Name
		out = append(out, c)
	}

	a0 := rowAddr(cfg, 0)
	aConf := rowAddr(cfg, conflictingRow(cfg))

	// Cold access, isolated row hit, row conflict: serial issue so each
	// latency is observed in isolation.
	{
		t := b.New(cfg)
		d1 := t.Access(0, a0, false)
		add(exactCycles("cold_access_latency", cfg.TRCD+cfg.TCAS+cfg.TBL, d1))
		d2 := t.Access(d1, a0+memdata.LineSize, false)
		add(exactCycles("row_hit_latency", cfg.TCAS+cfg.TBL, d2-d1))
		d3 := t.Access(d2, aConf, false)
		add(exactCycles("row_conflict_latency", cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBL, d3-d2))
	}

	// Write→read turnaround and write→write pipelining.
	{
		t := b.New(cfg)
		dw := t.Access(0, a0, true)
		add(exactCycles("write_done", cfg.TRCD+cfg.TCAS+cfg.TBL, dw))
		dr := t.Access(dw, a0, false)
		add(exactCycles("write_read_turnaround", cfg.TWR+cfg.TCAS+cfg.TBL, dr-dw))
	}
	{
		t := b.New(cfg)
		dw := t.Access(0, a0, true)
		dw2 := t.Access(dw, a0+memdata.LineSize, true)
		add(exactCycles("write_write_interval", max(cfg.TBL, cfg.TCCD)+cfg.TCAS, dw2-dw))
	}

	// Single-bank row-hit stream, back-to-back issue: K accesses to one
	// open row, all posted at cycle 0 (an infinitely deep queue).
	{
		const K = 64
		t := b.New(cfg)
		var done sim.Cycle
		for i := 0; i < K; i++ {
			done = t.Access(0, a0+memdata.Addr(i%64)*memdata.LineSize, false)
		}
		exp := cfg.TRCD + cfg.TCAS + cfg.TBL + (K-1)*max(cfg.TCCD+cfg.TCAS, cfg.TBL)
		add(exactCycles("hit_stream_completion", exp, done))
	}

	// Row-miss ping-pong: K accesses alternating between two conflicting
	// rows of one bank, all posted at cycle 0.
	{
		const K = 32
		t := b.New(cfg)
		var done sim.Cycle
		for i := 0; i < K; i++ {
			a := a0
			if i%2 == 1 {
				a = aConf
			}
			done = t.Access(0, a, false)
		}
		exp := cfg.TRCD + cfg.TCAS + cfg.TBL +
			(K-1)*max(cfg.TCCD+cfg.TRP+cfg.TRCD+cfg.TCAS, cfg.TBL)
		add(exactCycles("miss_pingpong_completion", exp, done))
	}

	// N-bank interleave: round-robin row hits across N banks, all posted at
	// cycle 0. Steady-state interval per access is max(tBL, (tCCD+tCAS)/N):
	// the bank-level-parallelism curve, and the generator that saturates the
	// bus once N·tBL ≥ tCCD+tCAS.
	for _, c := range interleaveChecks(b, cfg) {
		add(c)
	}

	// Saturating sequential stream (directed; preconditions checked).
	if c, ok := sequentialStreamCheck(b, cfg); ok {
		add(c)
	}

	return out
}

// interleaveChecks measures the steady-state interleave interval for each
// power-of-two bank count up to the channel's, over a window aligned to N
// so fractional per-access intervals are exact.
func interleaveChecks(b Backend, cfg dram.Config) []Check {
	var out []Check
	for n := 1; n <= cfg.Banks; n *= 2 {
		rows := distinctBankRows(cfg, n)
		t := b.New(cfg)
		const rounds = 64 // accesses per bank
		warm := rounds / 2 * n
		var warmDone, done sim.Cycle
		for i := 0; i < rounds*n; i++ {
			line := memdata.Addr(i/n) % (memdata.Addr(cfg.RowSize) / memdata.LineSize)
			done = t.Access(0, rowAddr(cfg, rows[i%n])+line*memdata.LineSize, false)
			if i+1 == warm {
				warmDone = done
			}
		}
		window := rounds*n - warm
		measured := float64(done-warmDone) / float64(window)
		exp := float64(cfg.TBL)
		if perBank := float64(cfg.TCCD+cfg.TCAS) / float64(n); perBank > exp {
			exp = perBank
		}
		out = append(out, Check{
			Name:      fmt.Sprintf("interleave_%02dbank_interval", n),
			Unit:      "cycles/access",
			Expected:  exp,
			Measured:  measured,
			Tolerance: 1e-9,
			Detail:    "steady-state, window aligned to bank count",
		}.eval())
	}
	return out
}

// sequentialStreamCheck drives a saturating sequential stream (every line
// of 2·Banks consecutive rows, posted at cycle 0) and checks the exact
// completion time: each row costs tBL to open (hidden behind the previous
// row's bursts) plus (linesPerRow-1)·(tCCD+tCAS) of column-serialized hits.
// Returns ok=false for geometries where the derivation's preconditions do
// not hold (consecutive rows sharing a bank, or rows too short to hide the
// activate latency).
func sequentialStreamCheck(b Backend, cfg dram.Config) (Check, bool) {
	linesPerRow := sim.Cycle(cfg.RowSize / memdata.LineSize)
	rows := sim.Cycle(2 * cfg.Banks)
	colInterval := cfg.TCCD + cfg.TCAS

	// Preconditions for the closed form.
	if linesPerRow < 2 || colInterval < cfg.TBL {
		return Check{}, false
	}
	// A row's worth of column traffic must hide the next row's activate
	// (and a revisited bank's precharge+activate).
	if (linesPerRow-1)*colInterval < cfg.TRP+cfg.TRCD+cfg.TCAS+cfg.TBL {
		return Check{}, false
	}
	// Consecutive rows must land on distinct banks, and a bank must rest at
	// least one row before being revisited.
	prev := [2]int{-1, -1}
	for r := sim.Cycle(0); r < rows; r++ {
		bank, _ := refBankRow(cfg, rowAddr(cfg, uint64(r)))
		if bank == prev[0] || bank == prev[1] {
			return Check{}, false
		}
		prev[0], prev[1] = prev[1], bank
	}

	t := b.New(cfg)
	var done sim.Cycle
	for r := sim.Cycle(0); r < rows; r++ {
		base := rowAddr(cfg, uint64(r))
		for l := sim.Cycle(0); l < linesPerRow; l++ {
			done = t.Access(0, base+memdata.Addr(l)*memdata.LineSize, false)
		}
	}
	// First access pays the cold activate; every row then contributes
	// (linesPerRow-1) column intervals; each of the (rows-1) transitions
	// plus the final burst contributes tBL.
	exp := cfg.TRCD + cfg.TCAS + rows*(linesPerRow-1)*colInterval + rows*cfg.TBL
	return exactCycles("sequential_stream_completion", exp, done), true
}

// peakBandwidth measures bus-saturating read bandwidth (bytes/cycle) via a
// full-bank interleave of rounds accesses per bank, posted at cycle 0.
// Used by the burst-halving metamorphic law.
func peakBandwidth(b Backend, cfg dram.Config, rounds int) float64 {
	rows := distinctBankRows(cfg, cfg.Banks)
	t := b.New(cfg)
	n := len(rows)
	warm := rounds / 2 * n
	var warmDone, done sim.Cycle
	for i := 0; i < rounds*n; i++ {
		line := memdata.Addr(i/n) % (memdata.Addr(cfg.RowSize) / memdata.LineSize)
		done = t.Access(0, rowAddr(cfg, rows[i%n])+line*memdata.LineSize, false)
		if i+1 == warm {
			warmDone = done
		}
	}
	return float64((rounds*n-warm)*memdata.LineSize) / float64(done-warmDone)
}
