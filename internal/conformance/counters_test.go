package conformance

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcsquare/internal/dram"
	"mcsquare/internal/fleet"
	"mcsquare/internal/machine"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
)

// The counter audit: every uint64 stats field on the hot components must
// have a registry twin that reads through to the exact same memory (set
// the field via reflection, observe the sentinel through a snapshot), and
// ResetStats must zero every field. Adding a counter without registering
// it — or registering one against the wrong field — fails here, and the
// full field→metric mapping is locked by testdata/counters.golden.

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// nameOverrides lists registered names that are not the mechanical
// snake_case of the field (historical spellings, kept stable because the
// figure pipeline keys on them).
var nameOverrides = map[string]string{
	"MCFrees":      "mcfrees",
	"MCFreedBytes": "mcfreed_bytes",
}

// snakeCase converts a Go field name, treating an uppercase run as one
// acronym (ECCRetries → ecc_retries, LazyStallsBPQ → lazy_stalls_bpq).
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		upper := r >= 'A' && r <= 'Z'
		if upper && i > 0 {
			prevUpper := rs[i-1] >= 'A' && rs[i-1] <= 'Z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if !prevUpper || nextLower {
				b.WriteByte('_')
			}
		}
		if upper {
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func metricName(field string) string {
	if n, ok := nameOverrides[field]; ok {
		return n
	}
	return snakeCase(field)
}

// auditCounters sets a distinct sentinel in every uint64 field of the
// struct at v (addressable), then checks the registry exposes each under
// prefix.<name> with exactly that value. Returns the audited mapping.
func auditCounters(t *testing.T, reg *metrics.Registry, prefix string, v reflect.Value) []string {
	t.Helper()
	var mapping []string
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Uint64 || !f.IsExported() {
			continue // gauges (ints, funcs) are outside the counter audit
		}
		sentinel := uint64(1000 + 7*i)
		v.Field(i).SetUint(sentinel)
		name := prefix + "." + metricName(f.Name)
		snap := reg.Snapshot()
		val, ok := snap.Get(name)
		if !ok {
			t.Errorf("%s.%s: no registry twin %q", typ.Name(), f.Name, name)
			continue
		}
		if val.Kind != metrics.KindCounter || val.Count != sentinel {
			t.Errorf("%s registered against the wrong field: counter reads %d, field holds %d",
				name, val.Count, sentinel)
		}
		mapping = append(mapping, fmt.Sprintf("%s.%s -> %s", typ.Name(), f.Name, name))
	}
	return mapping
}

// auditReset zeroes via the component's ResetStats and checks every uint64
// field went back to zero (sentinels were planted by auditCounters).
func auditReset(t *testing.T, what string, reset func(), v reflect.Value) {
	t.Helper()
	reset()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Uint64 || !typ.Field(i).IsExported() {
			continue
		}
		if got := v.Field(i).Uint(); got != 0 {
			t.Errorf("%s: ResetStats left %s.%s = %d", what, typ.Name(), typ.Field(i).Name, got)
		}
	}
}

func TestCounterRegistryAudit(t *testing.T) {
	var mapping []string

	// DRAM channel: counters live directly on the Channel struct.
	{
		reg := metrics.NewRegistry()
		ch := dram.NewChannel(dram.DDR4Config())
		ch.PublishMetrics(reg.Scope("dram"))
		mapping = append(mapping, auditCounters(t, reg, "dram", reflect.ValueOf(ch).Elem())...)
		auditReset(t, "dram", ch.ResetStats, reflect.ValueOf(ch).Elem())
	}

	// Memory controller: counters live on Controller.Stats.
	{
		reg := metrics.NewRegistry()
		eng := sim.NewEngine()
		ch := dram.NewChannel(dram.DDR4Config())
		mc := memctrl.New(0, eng, memctrl.DefaultConfig(), ch, memdata.NewPhysical(1<<20))
		mc.PublishMetrics(reg.Scope("mc"))
		mapping = append(mapping, auditCounters(t, reg, "mc", reflect.ValueOf(&mc.Stats).Elem())...)
		auditReset(t, "mc", mc.ResetStats, reflect.ValueOf(&mc.Stats).Elem())
	}

	// Lazy-copy engine and CTT: registered by the machine under the
	// "engine" and "ctt" namespaces. No ResetStats here — the engine's
	// ledger must never be reset mid-run or conservation breaks.
	{
		m := machine.New(machine.DefaultParams())
		mapping = append(mapping, auditCounters(t, m.Metrics, "engine",
			reflect.ValueOf(&m.Lazy.Stats).Elem())...)
		mapping = append(mapping, auditCounters(t, m.Metrics, "ctt",
			reflect.ValueOf(&m.Lazy.CTT().Stats).Elem())...)
	}

	// Fleet result: run counters under "fleet", the fault-tolerance
	// plane's availability accounting under "fleet.resilience". No
	// ResetStats — a Result is a per-run value, never reused.
	{
		reg := metrics.NewRegistry()
		res := &fleet.Result{Latencies: &stats.Histogram{}}
		res.PublishInto(reg)
		mapping = append(mapping, auditCounters(t, reg, "fleet",
			reflect.ValueOf(res).Elem())...)
		mapping = append(mapping, auditCounters(t, reg, "fleet.resilience",
			reflect.ValueOf(&res.Resilience).Elem())...)
	}

	if t.Failed() {
		return
	}
	got := strings.Join(mapping, "\n") + "\n"
	golden := filepath.Join("testdata", "counters.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d mappings)", golden, len(mapping))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("counter mapping drifted (rerun with -update if intentional):\nwant:\n%s\ngot:\n%s",
			want, got)
	}
}
