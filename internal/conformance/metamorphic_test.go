package conformance

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mcsquare/internal/cpu"
	"mcsquare/internal/dram"
	"mcsquare/internal/invariant"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
)

// ---------------------------------------------------------------------------
// Burst-time scaling
// ---------------------------------------------------------------------------

// TestBurstHalvingDoublesBandwidth: with enough banks engaged that the data
// bus is the bottleneck (B·tBL ≥ tCCD+tCAS at both burst lengths), peak
// bandwidth is LineSize/tBL — so halving tBL doubles it exactly.
func TestBurstHalvingDoublesBandwidth(t *testing.T) {
	for _, b := range Backends() {
		cfg := dram.DDR4Config() // 16·5 = 80 ≥ 64: bus-limited at both lengths
		half := cfg
		half.TBL = cfg.TBL / 2

		bw1 := peakBandwidth(b, cfg, 64)
		bw2 := peakBandwidth(b, half, 64)
		ck := Check{
			Name: "burst_halving_bandwidth_ratio", Backend: b.Name, Unit: "ratio",
			Expected: 2, Measured: bw2 / bw1, Tolerance: 1e-9,
			Detail: "bus-limited regime: peak bw = LineSize/tBL",
		}.eval()
		record(ck)
		if !ck.Pass {
			t.Errorf("%s: bw(tBL/2)/bw(tBL) = %v, want 2", b.Name, ck.Measured)
		}
	}
}

// TestBurstScalingLaws is the property form over random geometries: halving
// the burst time never decreases peak bandwidth and can at most double it,
// whether the config lands in the bus- or the bank-limited regime.
func TestBurstScalingLaws(t *testing.T) {
	b := Backends()[0]
	law := func(bankSel, rowSel, tRCD, tRP, tCAS, tBL, tCCD uint8) bool {
		cfg := dram.Config{
			Banks:   2 << (bankSel % 5),           // 2..32
			RowSize: 1 << (10 + uint64(rowSel)%3), // 1K..4K
			TRCD:    sim.Cycle(tRCD%64) + 1,
			TRP:     sim.Cycle(tRP%64) + 1,
			TCAS:    sim.Cycle(tCAS%64) + 1,
			TBL:     2 * (sim.Cycle(tBL%32) + 1), // even, 2..64
			TCCD:    sim.Cycle(tCCD%16) + 1,
			TWR:     20,
		}
		half := cfg
		half.TBL = cfg.TBL / 2
		bw1 := peakBandwidth(b, cfg, 16)
		bw2 := peakBandwidth(b, half, 16)
		return bw2 >= bw1-1e-9 && bw2 <= 2*bw1+1e-9
	}
	if err := quick.Check(law, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------------
// Bank-count monotonicity
// ---------------------------------------------------------------------------
//
// "Adding banks never slows a trace down" is false for raw address traces:
// the XOR-folded bank hash can map two addresses to the same bank under 2B
// banks that were apart under B (rowIDs 0 and 33 collide at 32 banks but
// not at 16). The honest statement is over abstract traces of (bank slot,
// row slot) pairs realized per config so that equal abstract accesses stay
// row hits and distinct bank slots can only merge when banks shrink —
// growing the bank count then only ever splits conflicts. See DESIGN.md §13.

const bankSlots = 32 // abstract bank-slot space; every tested Banks divides it

type absAccess struct {
	slot int // [0, bankSlots)
	row  int
}

// realizeAddr finds an address whose reference (bank, row) is exactly
// (slot mod B, row·(bankSlots/B) + slot/B). Within any aligned block of B
// consecutive rowIDs the XOR-folded hash permutes the banks, so the search
// always succeeds in one block.
func realizeAddr(cfg dram.Config, a absAccess) memdata.Addr {
	wantBank := a.slot % cfg.Banks
	wantRow := int64(a.row*(bankSlots/cfg.Banks) + a.slot/cfg.Banks)
	base := uint64(wantRow) * uint64(cfg.Banks)
	for j := uint64(0); j < uint64(cfg.Banks); j++ {
		addr := rowAddr(cfg, base+j)
		if bank, row := refBankRow(cfg, addr); bank == wantBank && row == wantRow {
			return addr
		}
	}
	panic("conformance: realizeAddr: no rowID matches")
}

func runAbstractTrace(b Backend, cfg dram.Config, trace []absAccess) sim.Cycle {
	tm := b.New(cfg)
	var done sim.Cycle
	for _, a := range trace {
		done = tm.Access(0, realizeAddr(cfg, a), false)
	}
	return done
}

func TestBanksMonotonicity(t *testing.T) {
	b := Backends()[0]
	base := dram.DDR4Config()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		trace := make([]absAccess, 100)
		for i := range trace {
			trace[i] = absAccess{slot: rng.Intn(bankSlots), row: rng.Intn(4)}
		}
		prev := sim.Cycle(1<<62 - 1)
		for _, banks := range []int{4, 8, 16, 32} {
			cfg := base
			cfg.Banks = banks
			done := runAbstractTrace(b, cfg, trace)
			if done > prev {
				t.Fatalf("trial %d: %d banks finished at %d, slower than %d banks at %d",
					trial, banks, done, banks/2, prev)
			}
			prev = done
		}
	}
}

// ---------------------------------------------------------------------------
// Lazy/eager differential
// ---------------------------------------------------------------------------

// copyProgram is one deterministic mixed workload: a bulk copy (lazy or
// eager), then interleaved source writes, destination writes, destination
// reads, and a partial free — the full set of (MC)² interception paths.
// It returns every byte the program observed.
func copyProgram(m *machine.Machine, lazy bool, seed int64) []byte {
	const size = 1 << 16
	src := m.AllocPage(size)
	dst := m.AllocPage(size)
	m.FillRandom(src, size, seed)

	var observed []byte
	m.Run(func(c *cpu.Core) {
		if lazy {
			softmc.MemcpyLazy(c, dst, src, size)
		} else {
			c.Memcpy(dst, src, size)
		}
		c.Fence()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			off := memdata.Addr(rng.Intn(size-64)) &^ 7
			switch rng.Intn(4) {
			case 0: // overwrite a deferred destination chunk
				c.Store(dst+off, []byte{byte(i), 2, 3, 4, 5, 6, 7, 8})
			case 1: // mutate the source after the copy
				c.Store(src+off, []byte{9, byte(i), 11, 12, 13, 14, 15, 16})
			case 2: // demand-read the destination (bounce or materialized)
				observed = append(observed, c.Load(dst+off, 8)...)
			case 3:
				observed = append(observed, c.Load(src+off, 8)...)
			}
		}
		// Final sweep: the complete visible image of both buffers.
		observed = append(observed, c.ReadBytes(dst, size)...)
		observed = append(observed, c.ReadBytes(src, size)...)
		// MCFREE makes never-materialized destination bytes undefined (the
		// deferred copy is simply dropped), so it runs after the sweep; the
		// shadow oracle still checks the freed region's post-free reads.
		if lazy {
			c.MCFree(memdata.Range{Start: dst + size/2, Size: size / 4})
			c.Load(dst+size/2+128, 8)
		}
		c.Fence()
	})
	return observed
}

// TestLazyEagerEquivalence runs the same program on a lazy machine under
// the invariant shadow (which replays every copy eagerly and checks each
// read) and on an eager-copy machine, and requires byte-identical
// observations — the paper's correctness claim, checked end to end.
func TestLazyEagerEquivalence(t *testing.T) {
	col := invariant.NewCollector(invariant.All())
	release := col.Bind()
	lazyM := machine.New(machine.DefaultParams())
	lazyBytes := copyProgram(lazyM, true, 42)
	release()

	eagerP := machine.DefaultParams()
	eagerP.LazyEnabled = false
	eagerBytes := copyProgram(machine.New(eagerP), false, 42)

	if col.TotalViolations() != 0 {
		t.Errorf("shadow oracle saw %d violations in the lazy run", col.TotalViolations())
		for _, v := range col.Violations()[:min(len(col.Violations()), 5)] {
			t.Logf("violation: %+v", v)
		}
	}
	if !bytes.Equal(lazyBytes, eagerBytes) {
		for i := range lazyBytes {
			if lazyBytes[i] != eagerBytes[i] {
				t.Fatalf("lazy and eager observations diverge at byte %d: %#x vs %#x",
					i, lazyBytes[i], eagerBytes[i])
			}
		}
		t.Fatalf("observation lengths differ: %d vs %d", len(lazyBytes), len(eagerBytes))
	}
	if !lazyM.Lazy.Idle() {
		t.Error("lazy engine not idle after drain")
	}
	if err := lazyM.Lazy.CheckConservation(); err != nil {
		t.Errorf("byte ledger: %v", err)
	}
}

// TestCTTByteConservation drives every untracking path — replacement by a
// newer copy, destination overwrite, source-write materialization, and
// MCFREE — and checks the two ledger laws: deferred − untracked = tracked,
// and every untracked byte attributed to exactly one cause. The counters
// are maintained by independent code paths; agreement is a real check.
func TestCTTByteConservation(t *testing.T) {
	m := machine.New(machine.DefaultParams())
	const size = 1 << 15
	src := m.AllocPage(size)
	dst := m.AllocPage(size)
	m.FillRandom(src, size, 99)

	m.Run(func(c *cpu.Core) {
		c.MCLazy(memdata.Range{Start: dst, Size: size}, src)
		c.Fence()
		// Replacement: re-copy over half of the tracked range.
		c.MCLazy(memdata.Range{Start: dst, Size: size / 2}, src)
		c.Fence()
		for i := 0; i < 32; i++ {
			c.Store(dst+memdata.Addr(i*512), make([]byte, 64)) // overwrite
			c.Store(src+memdata.Addr(i*512), make([]byte, 64)) // source write
			c.Load(dst+memdata.Addr(i*512+128), 8)             // bounce read
		}
		c.MCFree(memdata.Range{Start: dst + size/2, Size: size / 4})
		c.Fence()
	})

	lz := m.Lazy
	if err := lz.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	cs := lz.CTT().Stats
	if cs.DeferredBytes == 0 || cs.UntrackedBytes == 0 {
		t.Fatalf("degenerate run: deferred=%d untracked=%d", cs.DeferredBytes, cs.UntrackedBytes)
	}
	record(Check{
		Name: "ctt_byte_conservation", Unit: "bytes",
		Expected: float64(cs.DeferredBytes - cs.UntrackedBytes),
		Measured: float64(lz.CTT().TrackedBytes()),
		Pass:     true,
		Detail:   "deferred − untracked = tracked, all untracked bytes attributed",
	})
}
