package conformance

import (
	"testing"

	"mcsquare/internal/cache"
	"mcsquare/internal/cpu"
	"mcsquare/internal/invariant"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
)

// fuzzParams is a one-core machine small enough to build per fuzz case.
func fuzzParams() machine.Params {
	p := machine.DefaultParams()
	p.Cores = 1
	p.Channels = 1
	p.MemSize = 4 << 20
	p.Cache = cache.DefaultConfig(1)
	return p
}

// FuzzLazyEagerEquivalence decodes the input into a program of lazy
// copies, stores, loads, and frees over two small buffers and runs it on a
// lazy machine under the invariant shadow, which replays every copy
// eagerly and checks each read against the eager image. Any schedule the
// fuzzer finds where a bounce, writeback, materialization, or free returns
// the wrong bytes is a violation; the CTT byte ledger must also balance.
func FuzzLazyEagerEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xC3, 0x04, 0x45})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x00, 0x3C, 0xC3, 0x81, 0x7E})

	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 64 {
			program = program[:64] // bound simulated work per case
		}
		col := invariant.NewCollector(invariant.All())
		release := col.Bind()
		defer release()

		m := machine.New(fuzzParams())
		const size = 1 << 14
		src := m.AllocPage(size)
		dst := m.AllocPage(size)
		m.FillRandom(src, size, 7)
		m.FillRandom(dst, size, 8)

		m.Run(func(c *cpu.Core) {
			for i := 0; i+1 < len(program); i += 2 {
				op, arg := program[i]>>6, uint64(program[i]&0x3F)<<8|uint64(program[i+1])
				off := memdata.Addr(arg) % size
				switch op {
				case 0: // lazy-copy a line-aligned chunk
					chunk := memdata.LineAlign(off) % (size / 2)
					n := uint64(size/2) - uint64(chunk)
					c.MCLazy(memdata.Range{Start: dst + chunk, Size: n}, src+chunk)
					c.Fence()
				case 1:
					c.Store(dst+off%(size-8), []byte{program[i], 2, 3, 4, 5, 6, 7, 8})
				case 2:
					c.Store(src+off%(size-8), []byte{program[i+1], 3, 4, 5, 6, 7, 8, 9})
				case 3:
					c.Load(dst+off%(size-8), 8)
				}
			}
			c.Fence()
			c.ReadBytes(dst, size) // full sweep, every line shadow-checked
		})

		if n := col.TotalViolations(); n != 0 {
			t.Fatalf("%d shadow violations for program %x", n, program)
		}
		if err := m.Lazy.CheckConservation(); err != nil {
			t.Fatalf("byte ledger: %v (program %x)", err, program)
		}
		if err := m.Lazy.CTT().CheckInvariants(); err != nil {
			t.Fatalf("CTT invariants: %v (program %x)", err, program)
		}
		if !m.Lazy.Idle() {
			t.Fatalf("engine not idle after drain (program %x)", program)
		}
	})
}
