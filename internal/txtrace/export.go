package txtrace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
)

// ---------------------------------------------------------------------------
// Chrome/Perfetto trace-event JSON export
// ---------------------------------------------------------------------------
//
// The format is the Chrome trace-event JSON array ("traceEvents" with
// ph:"X" complete events and ph:"M" metadata), which Perfetto's UI loads
// directly. ts and dur are simulated cycles (Perfetto renders them as
// microseconds; only relative magnitudes matter). pid is the tracer's index
// in the export — one "process" per simulated machine — and tid is the
// span's track (CPU core id, or the synthetic engine/orphan tracks).
//
// Output is deterministic: tracers in caller order, spans in id order,
// hand-formatted fields. Two runs of the same deterministic simulation
// export byte-identical traces.

// tidFor maps a span track to a Chrome thread id (tids must be >= 0).
func tidFor(track int32) int32 {
	switch track {
	case TrackEngine:
		return 1000
	case TrackOrphan:
		return 1001
	default:
		return track
	}
}

func trackName(track int32) string {
	switch track {
	case TrackEngine:
		return "mc2-engine"
	case TrackOrphan:
		return "orphan"
	default:
		return fmt.Sprintf("core%d", track)
	}
}

// flagString renders annotation flags (FlagDone is implied and omitted).
func flagString(f Flags) string {
	var b []byte
	add := func(s string) {
		if len(b) > 0 {
			b = append(b, '|')
		}
		b = append(b, s...)
	}
	if f&FlagWrite != 0 {
		add("write")
	}
	if f&FlagRowHit != 0 {
		add("row_hit")
	}
	if f&FlagRowMiss != 0 {
		add("row_miss")
	}
	if f&FlagRejected != 0 {
		add("rejected")
	}
	return string(b)
}

// EventWriter incrementally builds one Chrome trace-event JSON document.
// It exists so other planes (the timeline's ph:"C" counter tracks) can
// merge their events into the same document as the span trees and share
// one timebase; Export is a thin wrapper. Formatting is hand-rolled and
// deterministic: Close the writer to finish the document.
type EventWriter struct {
	bw    *bufio.Writer
	first bool
}

// NewEventWriter starts a trace-event document on w.
func NewEventWriter(w io.Writer) *EventWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	return &EventWriter{bw: bw, first: true}
}

// Emit appends one pre-formatted JSON event object.
func (ew *EventWriter) Emit(line string) {
	if !ew.first {
		ew.bw.WriteString(",")
	}
	ew.first = false
	ew.bw.WriteString("\n")
	ew.bw.WriteString(line)
}

// WriteTracer emits tracer t's process/track metadata and spans under the
// given pid. Spans appear in id order.
func (ew *EventWriter) WriteTracer(pid int, t *Tracer) {
	spans := t.Spans()
	// Metadata: name the process and every track that appears.
	ew.Emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"machine%d"}}`, pid, pid))
	tracks := map[int32]bool{}
	var order []int32
	for _, sp := range spans {
		if !tracks[sp.Track] {
			tracks[sp.Track] = true
			order = append(order, sp.Track)
		}
	}
	sort.Slice(order, func(i, j int) bool { return tidFor(order[i]) < tidFor(order[j]) })
	for _, tr := range order {
		ew.Emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"%s"}}`,
			pid, tidFor(tr), trackName(tr)))
	}
	for _, sp := range spans {
		line := fmt.Sprintf(`{"name":"%s","cat":"mem","ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{"span":%d,"tx":%d`,
			sp.Stage, pid, tidFor(sp.Track), sp.Start, sp.End-sp.Start, sp.ID, sp.Root)
		if sp.Parent != 0 {
			line += `,"parent":` + strconv.FormatUint(sp.Parent, 10)
		}
		line += `,"addr":"0x` + strconv.FormatUint(sp.Addr, 16) + `"`
		if fs := flagString(sp.Flags); fs != "" {
			line += `,"flags":"` + fs + `"`
		}
		line += "}}"
		ew.Emit(line)
	}
}

// Close finishes the document and flushes buffered output.
func (ew *EventWriter) Close() error {
	ew.bw.WriteString("\n]}\n")
	return ew.bw.Flush()
}

// Export writes the tracers' flight recorders as one Chrome trace-event
// JSON document. Nil tracers are skipped (but still consume a pid slot, so
// machine numbering is stable across configurations).
func Export(w io.Writer, tracers []*Tracer) error {
	ew := NewEventWriter(w)
	for pid, t := range tracers {
		if t == nil {
			continue
		}
		ew.WriteTracer(pid, t)
	}
	return ew.Close()
}

// Dump writes this tracer's flight recorder alone — the anomaly-hook path.
func (t *Tracer) Dump(w io.Writer) error {
	return Export(w, []*Tracer{t})
}

// ---------------------------------------------------------------------------
// Collector: ambient per-goroutine tracer registration
// ---------------------------------------------------------------------------

// Collector gathers the tracer of every machine built while it is bound to
// a goroutine, mirroring metrics.Collector: the runner (or a cmd binary)
// binds one around a run, machine.New asks AmbientCollector() for a
// tracer, and the caller exports all of them afterwards. A nil Collector
// (tracing disabled) hands out nil tracers.
type Collector struct {
	cfg Config
	mu  sync.Mutex
	trs []*Tracer
}

// NewCollector builds a collector that hands out tracers configured by
// cfg. Returns nil when cfg.Enabled is false, so callers can bind
// unconditionally and pay nothing when tracing is off.
func NewCollector(cfg Config) *Collector {
	if !cfg.Enabled {
		return nil
	}
	return &Collector{cfg: cfg}
}

// NewTracer creates, records, and returns one tracer (nil from a nil
// collector). Safe to call from any goroutine.
func (c *Collector) NewTracer() *Tracer {
	if c == nil {
		return nil
	}
	t := New(c.cfg)
	c.mu.Lock()
	c.trs = append(c.trs, t)
	c.mu.Unlock()
	return t
}

// Tracers returns the collected tracers in creation order.
func (c *Collector) Tracers() []*Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Tracer(nil), c.trs...)
}

// Export writes every collected tracer as one trace document.
func (c *Collector) Export(w io.Writer) error {
	return Export(w, c.Tracers())
}

// ambient maps goroutine id → bound collector (same pattern as
// metrics.Collector: bind/lookup only at job boundaries and machine
// construction, never per event).
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Collector{}
)

// Bind attaches c to the calling goroutine and returns a release func that
// restores whatever was bound before. Binding a nil collector is a no-op
// that still returns a valid release func.
func (c *Collector) Bind() (release func()) {
	if c == nil {
		return func() {}
	}
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = c
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// AmbientCollector returns the collector bound to the calling goroutine,
// or nil (machine.New then runs untraced).
func AmbientCollector() *Collector {
	ambientMu.Lock()
	defer ambientMu.Unlock()
	if len(ambient) == 0 {
		return nil // nothing bound anywhere: skip the goid parse
	}
	return ambient[goid()]
}

// goid parses the calling goroutine's id from its stack header (same
// helper as package metrics keeps privately; called only at bind points
// and machine construction).
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("txtrace: cannot parse goroutine id from stack header")
	}
	return id
}
