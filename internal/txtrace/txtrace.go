// Package txtrace is the simulator's transaction tracer: a structured,
// low-overhead record of individual memory operations as they move through
// the hierarchy — CPU issue, L1/L2 lookup, interconnect hop, controller
// queues (RPQ/WPQ), the (MC)² CTT lookup and BPQ bounce machinery, and the
// DRAM bank/row access — organized as span trees keyed by a transaction ID
// (Tx) threaded through the existing callback plumbing.
//
// Design constraints, in priority order:
//
//  1. Zero cost when disabled. A disabled tracer is a nil *Tracer; every
//     method is nil-safe and the untraced fast path (tx == 0) is a single
//     predictable branch. No closures are allocated for untraced spans —
//     call sites only wrap a completion callback after checking the span
//     id is nonzero, and prefer Complete() (no closure at all) wherever
//     the end time is known synchronously.
//
//  2. Bounded memory. Spans land in a fixed-size ring buffer — a flight
//     recorder, not a log: under sustained load old spans are overwritten
//     and the recorder always holds the most recent window. Per-stage
//     latency histograms are fed at span end regardless of ring residency,
//     so aggregate distributions survive wrap-around.
//
//  3. Determinism. Sampling is counter-based (every Nth root transaction),
//     not random, and span ids are assigned in event order, so two runs of
//     the same deterministic simulation produce byte-identical traces.
//
// The tracer exports two ways: Chrome/Perfetto trace-event JSON (Export)
// for timeline inspection, and per-stage latency histograms plus p50/p95/
// p99 gauges published into a metrics.Registry scope (PublishMetrics) so
// mcfigures -stats and runner snapshots pick them up automatically.
//
// Anomaly triggers: the (MC)² engine reports BPQ saturation and WPQ-reject
// throttling events through Anomaly(); each is recorded as an instant span,
// counted, kept in a bounded list, and forwarded to an optional hook — the
// hook typically dumps the flight recorder, turning a failure-injection
// detection into a diagnosable timeline.
package txtrace

import "mcsquare/internal/stats"

// Tx identifies one traced span. Zero means "untraced": every producer
// checks for it with one branch and skips all recording work.
type Tx = uint64

// Stage labels what a span measures. Stage names double as metric name
// components ("txtrace.<stage>...") and Chrome trace event names.
type Stage uint8

const (
	// CPU-issued root operations, one span per cacheline touched.
	StageCPULoad Stage = iota
	StageCPUStore
	StageCPUNTStore
	StageCPUCLWB
	StageCPUMCLazy
	StageCPUMCFree

	// Cache hierarchy.
	StageL1Hit
	StageL1Miss
	StageMSHRWait
	StageL2Hit
	StageL2Miss

	// Interconnect.
	StageXConHop

	// Memory controller queues and DRAM.
	StageRPQWait
	StageWPQWait
	StageWPQForward
	StageDRAMRead
	StageDRAMWrite

	// (MC)² machinery.
	StageISAPacket       // MCLAZY/MCFREE packet: flush + broadcast + ack
	StageCTTInsert       // engine-side MCLAZY service, including stalls
	StageCTTHit          // destination read matched a CTT entry
	StageBounce          // full bounce: redirect, compose, return
	StageBounceSrcRead   // one source-line fetch of a bounce
	StageBounceWriteback // reconstructed line written back to memory
	StageBPQForward      // read serviced from a BPQ-held line
	StageBPQMerge        // CPU write merged into a held line
	StageBPQWait         // source write waiting for a BPQ slot
	StageBPQHold         // source write held while dependents copy
	StageFree            // async free worker copying one line

	// Anomaly instants (see Anomaly).
	StageAnomalyBPQ
	StageAnomalyWPQ
	StageFaultInject        // a fault-injection plane fired (internal/faultinject)
	StageInvariantViolation // a runtime invariant oracle tripped (internal/invariant)

	numStages
)

var stageNames = [numStages]string{
	"cpu.load", "cpu.store", "cpu.nt_store", "cpu.clwb", "cpu.mclazy", "cpu.mcfree",
	"l1.hit", "l1.miss", "l1.mshr_wait", "l2.hit", "l2.miss",
	"xcon.hop",
	"mc.rpq_wait", "mc.wpq_wait", "mc.wpq_forward", "dram.read", "dram.write",
	"isa.packet", "ctt.insert", "ctt.hit",
	"mc2.bounce", "mc2.bounce_src_read", "mc2.bounce_writeback",
	"mc2.bpq_forward", "mc2.bpq_merge", "mc2.bpq_wait", "mc2.bpq_hold",
	"mc2.free",
	"anomaly.bpq_saturated", "anomaly.wpq_reject",
	"fault.inject", "invariant.violation",
}

func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "stage(?)"
}

// StageNames returns every stage name (for validation tooling).
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// Flags annotate a span.
type Flags uint8

const (
	FlagDone     Flags = 1 << iota // End/Complete ran; Start..End is valid
	FlagWrite                      // the operation is a write
	FlagRowHit                     // DRAM access hit the open row
	FlagRowMiss                    // DRAM access missed the open row
	FlagRejected                   // writeback refused (WPQ over threshold)
)

// Track values for spans not owned by a CPU core. Core-owned spans use the
// core id (>= 0) as their track.
const (
	TrackEngine int32 = -1 // (MC)² background machinery (frees, anomalies)
	TrackOrphan int32 = -2 // parent span already evicted from the ring
)

// Span is one recorded interval. Times are simulated cycles.
type Span struct {
	ID     Tx
	Parent Tx // 0 for roots
	Root   Tx // transaction id: the root span of this tree
	Start  uint64
	End    uint64
	Addr   uint64
	Track  int32
	Stage  Stage
	Flags  Flags
}

// Config sizes and gates a Tracer.
type Config struct {
	// Enabled gates tracing; when false, New returns nil (the zero-cost
	// disabled tracer).
	Enabled bool
	// SampleEvery records every Nth root transaction (deterministic,
	// counter-based). Values <= 1 record all of them.
	SampleEvery int
	// BufferSpans is the flight-recorder capacity, rounded up to a power
	// of two. <= 0 uses the default of 65536 spans (~3.5 MB).
	BufferSpans int
}

const defaultBufferSpans = 1 << 16

// AnomalyKind discriminates the trigger events the (MC)² engine reports.
type AnomalyKind uint8

const (
	AnomalyBPQSaturated  AnomalyKind = iota // source write waited for a BPQ slot
	AnomalyWPQReject                        // bounce writeback refused (WPQ > threshold)
	AnomalyFaultInjected                    // a fault-injection plane fired (MC field carries the fault kind)
	AnomalyInvariant                        // a runtime invariant oracle recorded a violation
	AnomalyWatchdog                         // the transaction liveness watchdog tripped
	numAnomalyKinds
)

func (k AnomalyKind) String() string {
	switch k {
	case AnomalyBPQSaturated:
		return "bpq_saturated"
	case AnomalyWPQReject:
		return "wpq_reject"
	case AnomalyFaultInjected:
		return "fault_injected"
	case AnomalyInvariant:
		return "invariant_violation"
	case AnomalyWatchdog:
		return "watchdog_trip"
	}
	return "anomaly(?)"
}

var anomalyStage = [numAnomalyKinds]Stage{
	StageAnomalyBPQ, StageAnomalyWPQ,
	StageFaultInject, StageInvariantViolation, StageInvariantViolation,
}

// Anomaly is one trigger event.
type Anomaly struct {
	Kind  AnomalyKind
	MC    int // controller index reporting the event
	Addr  uint64
	Cycle uint64
}

// maxAnomalies bounds the retained anomaly list (counters keep counting).
const maxAnomalies = 1024

// Tracer is one machine's flight recorder. All methods are safe on a nil
// receiver (the disabled tracer) and run in engine (event) context — the
// simulator guarantees single-threaded access, so there is no locking.
type Tracer struct {
	sampleEvery uint64
	rootsSeen   uint64 // roots offered to BeginRoot (sampled or not)
	nextID      Tx     // next span id; ids start at 1
	ring        []Span
	mask        uint64
	spansLost   uint64 // End calls whose span was already overwritten

	hists      [numStages]stats.Histogram
	anoms      []Anomaly
	anomCounts [numAnomalyKinds]uint64
	anomalyFn  func(Anomaly)
}

// New builds a tracer, or returns nil (the disabled tracer) when
// cfg.Enabled is false.
func New(cfg Config) *Tracer {
	if !cfg.Enabled {
		return nil
	}
	n := cfg.BufferSpans
	if n <= 0 {
		n = defaultBufferSpans
	}
	size := 1
	for size < n {
		size <<= 1
	}
	every := uint64(1)
	if cfg.SampleEvery > 1 {
		every = uint64(cfg.SampleEvery)
	}
	return &Tracer{
		sampleEvery: every,
		nextID:      1,
		ring:        make([]Span, size),
		mask:        uint64(size - 1),
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// BeginRoot starts a new transaction (a root span) on the given track if
// the deterministic sampler selects it; otherwise it returns 0 and the
// whole tree is skipped at zero cost.
func (t *Tracer) BeginRoot(stage Stage, track int32, addr uint64, now uint64) Tx {
	if t == nil {
		return 0
	}
	t.rootsSeen++
	if (t.rootsSeen-1)%t.sampleEvery != 0 {
		return 0
	}
	id := t.nextID
	t.nextID++
	t.ring[id&t.mask] = Span{
		ID: id, Root: id, Start: now, Addr: addr, Track: track, Stage: stage,
	}
	return id
}

// Begin starts a child span under parent. Untraced parents (0) propagate:
// the child is untraced too.
func (t *Tracer) Begin(parent Tx, stage Stage, addr uint64, now uint64) Tx {
	if parent == 0 || t == nil {
		return 0
	}
	id := t.nextID
	t.nextID++
	root, track := parent, TrackOrphan
	if ps := &t.ring[parent&t.mask]; ps.ID == parent {
		root, track = ps.Root, ps.Track
	}
	t.ring[id&t.mask] = Span{
		ID: id, Parent: parent, Root: root, Start: now, Addr: addr, Track: track, Stage: stage,
	}
	return id
}

// End closes a span: the stage histogram records its latency and, if the
// span still lives in the ring, its record is completed.
func (t *Tracer) End(id Tx, now uint64) { t.EndFlags(id, now, 0) }

// EndFlags is End with extra annotation flags.
func (t *Tracer) EndFlags(id Tx, now uint64, flags Flags) {
	if id == 0 || t == nil {
		return
	}
	sp := &t.ring[id&t.mask]
	if sp.ID != id {
		// Overwritten before completion: the latency is unknowable, count
		// the loss instead of feeding a bogus histogram sample.
		t.spansLost++
		return
	}
	sp.End = now
	sp.Flags |= FlagDone | flags
	t.hists[sp.Stage].Add(float64(now - sp.Start))
}

// Complete records a child span whose duration is already known — the
// common case for latencies computed synchronously (bus hops, DRAM access
// completion times, L1 hit latency). It allocates nothing and needs no
// closure at the call site.
func (t *Tracer) Complete(parent Tx, stage Stage, addr uint64, start, end uint64, flags Flags) {
	if parent == 0 || t == nil {
		return
	}
	id := t.nextID
	t.nextID++
	root, track := parent, TrackOrphan
	if ps := &t.ring[parent&t.mask]; ps.ID == parent {
		root, track = ps.Root, ps.Track
	}
	t.ring[id&t.mask] = Span{
		ID: id, Parent: parent, Root: root, Start: start, End: end,
		Addr: addr, Track: track, Stage: stage, Flags: FlagDone | flags,
	}
	t.hists[stage].Add(float64(end - start))
}

// Anomaly records a trigger event: an instant span on the engine track
// (recorded even when sampling skips regular transactions — anomalies are
// the needles the recorder exists for), a bounded list entry, a counter,
// and the optional hook. The hook runs synchronously in engine context and
// must not mutate simulation state; dumping the recorder is its job.
func (t *Tracer) Anomaly(kind AnomalyKind, mc int, addr uint64, now uint64) {
	if t == nil {
		return
	}
	t.anomCounts[kind]++
	id := t.nextID
	t.nextID++
	t.ring[id&t.mask] = Span{
		ID: id, Root: id, Start: now, End: now, Addr: addr,
		Track: TrackEngine, Stage: anomalyStage[kind], Flags: FlagDone,
	}
	a := Anomaly{Kind: kind, MC: mc, Addr: addr, Cycle: now}
	if len(t.anoms) < maxAnomalies {
		t.anoms = append(t.anoms, a)
	}
	if t.anomalyFn != nil {
		t.anomalyFn(a)
	}
}

// SetAnomalyHook installs fn, called synchronously on every anomaly.
func (t *Tracer) SetAnomalyHook(fn func(Anomaly)) {
	if t == nil {
		return
	}
	t.anomalyFn = fn
}

// Anomalies returns the retained trigger events in arrival order.
func (t *Tracer) Anomalies() []Anomaly {
	if t == nil {
		return nil
	}
	return append([]Anomaly(nil), t.anoms...)
}

// AnomalyCount returns how many anomalies of the kind were reported
// (unbounded, unlike the retained list).
func (t *Tracer) AnomalyCount(kind AnomalyKind) uint64 {
	if t == nil {
		return 0
	}
	return t.anomCounts[kind]
}

// Spans returns every live, completed span in id order — the flight
// recorder's current window. Intended for tests and dump paths.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	lo, hi := t.liveRange()
	for id := lo; id < hi; id++ {
		if sp := t.ring[id&t.mask]; sp.ID == id && sp.Flags&FlagDone != 0 {
			out = append(out, sp)
		}
	}
	return out
}

// SpansRecorded returns the total number of spans ever recorded (including
// ones since evicted from the ring).
func (t *Tracer) SpansRecorded() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID - 1
}

// SpansLost returns how many spans were evicted before their End arrived.
func (t *Tracer) SpansLost() uint64 {
	if t == nil {
		return 0
	}
	return t.spansLost
}

// StageCount returns how many completed spans the stage histogram has seen
// (survives ring wrap-around).
func (t *Tracer) StageCount(s Stage) int {
	if t == nil {
		return 0
	}
	return t.hists[s].N()
}

// liveRange returns the half-open span-id interval currently backed by the
// ring: the last len(ring) ids assigned.
func (t *Tracer) liveRange() (lo, hi uint64) {
	hi = t.nextID
	lo = 1
	if assigned := hi - 1; assigned > uint64(len(t.ring)) {
		lo = hi - uint64(len(t.ring))
	}
	return lo, hi
}
