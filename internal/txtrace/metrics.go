package txtrace

import "mcsquare/internal/metrics"

// PublishMetrics registers the tracer's per-stage latency distributions
// into a metrics scope (machine.New passes Scope("txtrace")): one
// histogram per stage ("txtrace.mc.rpq_wait") plus p50/p95/p99 gauges
// computed on demand — snapshots only carry a histogram's count and sum,
// so the percentiles each get a gauge of their own to survive into
// mcfigures -stats output. Registration happens only when a tracer is
// attached: an untraced machine's metric name set is unchanged (the
// figures golden test pins it).
func (t *Tracer) PublishMetrics(s metrics.Scope) {
	if t == nil {
		return
	}
	for st := Stage(0); st < numStages; st++ {
		h := &t.hists[st]
		name := stageNames[st]
		s.Histogram(name, h)
		s.Gauge(name+".p50", func() float64 { return h.Percentile(50) })
		s.Gauge(name+".p95", func() float64 { return h.Percentile(95) })
		s.Gauge(name+".p99", func() float64 { return h.Percentile(99) })
	}
	s.CounterFunc("spans", func() uint64 { return t.nextID - 1 })
	s.Counter("spans_lost", &t.spansLost)
	s.CounterFunc("roots_seen", func() uint64 { return t.rootsSeen })
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		s.Counter("anomalies."+k.String(), &t.anomCounts[k])
	}
}
