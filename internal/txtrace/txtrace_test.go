package txtrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcsquare/internal/metrics"
)

// traceOneOp exercises the call pattern one traced memory operation makes:
// a root, a child with a deferred end, and two synchronous Complete legs.
func traceOneOp(t *Tracer, i uint64) {
	root := t.BeginRoot(StageCPULoad, 0, 0x4000+i*64, i)
	miss := t.Begin(root, StageL1Miss, 0x4000+i*64, i+4)
	t.Complete(miss, StageXConHop, 0, i+8, i+32, 0)
	t.Complete(miss, StageDRAMRead, 0x4000+i*64, i+32, i+80, FlagRowHit)
	t.End(miss, i+90)
	t.End(root, i+100)
}

// TestDisabledPathAllocatesNothing is the satellite guarantee: with
// tracing disabled (nil tracer — what every component holds when no
// collector is bound), the full span call pattern performs zero
// allocations.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var tr *Tracer // disabled
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		traceOneOp(tr, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestUnsampledPathAllocatesNothing: with tracing enabled but the sampler
// skipping a root, the whole tree is untraced and allocation-free.
func TestUnsampledPathAllocatesNothing(t *testing.T) {
	tr := New(Config{Enabled: true, SampleEvery: 1 << 30, BufferSpans: 64})
	traceOneOp(tr, 0) // consume the one sampled root
	var i uint64 = 1
	allocs := testing.AllocsPerRun(1000, func() {
		traceOneOp(tr, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.BeginRoot(StageCPULoad, 0, 0, 0); id != 0 {
		t.Fatalf("nil BeginRoot returned %d", id)
	}
	if id := tr.Begin(7, StageL1Miss, 0, 0); id != 0 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.End(7, 0)
	tr.Complete(7, StageL2Hit, 0, 0, 1, 0)
	tr.Anomaly(AnomalyWPQReject, 0, 0, 0)
	tr.SetAnomalyHook(func(Anomaly) {})
	if tr.Enabled() || tr.Spans() != nil || tr.SpansRecorded() != 0 {
		t.Fatal("nil tracer reported state")
	}
	if err := Export(&bytes.Buffer{}, []*Tracer{nil}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanTreeAndHistograms(t *testing.T) {
	tr := New(Config{Enabled: true, BufferSpans: 256})
	traceOneOp(tr, 0)
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	root := spans[0]
	if root.Stage != StageCPULoad || root.Parent != 0 || root.Root != root.ID {
		t.Fatalf("bad root span: %+v", root)
	}
	for _, sp := range spans[1:] {
		if sp.Root != root.ID {
			t.Fatalf("span %d has root %d, want %d", sp.ID, sp.Root, root.ID)
		}
		if sp.Track != root.Track {
			t.Fatalf("span %d did not inherit track: %+v", sp.ID, sp)
		}
	}
	if spans[1].Parent != root.ID {
		t.Fatalf("miss span parent = %d, want %d", spans[1].Parent, root.ID)
	}
	if got := tr.StageCount(StageDRAMRead); got != 1 {
		t.Fatalf("dram.read histogram has %d samples, want 1", got)
	}
	if d := spans[0].End - spans[0].Start; d != 100 {
		t.Fatalf("root duration = %d, want 100", d)
	}
	// The DRAM leg carries its row-hit flag.
	var dram *Span
	for i := range spans {
		if spans[i].Stage == StageDRAMRead {
			dram = &spans[i]
		}
	}
	if dram == nil || dram.Flags&FlagRowHit == 0 {
		t.Fatalf("dram span missing row-hit flag: %+v", dram)
	}
}

func TestDeterministicSampling(t *testing.T) {
	tr := New(Config{Enabled: true, SampleEvery: 3, BufferSpans: 1024})
	sampled := 0
	for i := uint64(0); i < 9; i++ {
		if tr.BeginRoot(StageCPUStore, 1, i, i) != 0 {
			sampled++
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 roots at 1-in-3, want 3", sampled)
	}
	// Roots 0, 3, 6 are the sampled ones: counter-based, not random.
	tr2 := New(Config{Enabled: true, SampleEvery: 3, BufferSpans: 1024})
	for i := uint64(0); i < 9; i++ {
		id := tr2.BeginRoot(StageCPUStore, 1, i, i)
		if (i%3 == 0) != (id != 0) {
			t.Fatalf("root %d sampling = %v, want every 3rd starting at 0", i, id != 0)
		}
	}
}

func TestRingWrapCountsLostSpans(t *testing.T) {
	tr := New(Config{Enabled: true, BufferSpans: 4})
	first := tr.BeginRoot(StageCPULoad, 0, 0, 0)
	for i := uint64(1); i <= 8; i++ { // overwrite the whole ring
		id := tr.BeginRoot(StageCPUStore, 0, i, i)
		tr.End(id, i+1)
	}
	tr.End(first, 100) // its slot now holds a newer span
	if tr.SpansLost() != 1 {
		t.Fatalf("spans_lost = %d, want 1", tr.SpansLost())
	}
	if tr.StageCount(StageCPULoad) != 0 {
		t.Fatal("lost span fed its histogram")
	}
	if tr.StageCount(StageCPUStore) != 8 {
		t.Fatalf("store histogram has %d samples, want 8", tr.StageCount(StageCPUStore))
	}
	for _, sp := range tr.Spans() {
		if sp.ID == first {
			t.Fatal("evicted span still exported")
		}
	}
}

func TestAnomalyTrigger(t *testing.T) {
	tr := New(Config{Enabled: true, SampleEvery: 1000, BufferSpans: 64})
	var fired []Anomaly
	tr.SetAnomalyHook(func(a Anomaly) { fired = append(fired, a) })
	tr.Anomaly(AnomalyBPQSaturated, 1, 0x8000, 42)
	tr.Anomaly(AnomalyWPQReject, 0, 0x9000, 50)
	if len(fired) != 2 || fired[0].Kind != AnomalyBPQSaturated || fired[1].Cycle != 50 {
		t.Fatalf("hook saw %+v", fired)
	}
	if tr.AnomalyCount(AnomalyWPQReject) != 1 {
		t.Fatal("anomaly counter not incremented")
	}
	// Anomalies bypass sampling: both appear as instant spans.
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Stage != StageAnomalyBPQ || spans[0].Track != TrackEngine {
		t.Fatalf("anomaly spans = %+v", spans)
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "anomaly.bpq_saturated") {
		t.Fatal("dump missing anomaly span")
	}
}

func TestExportValidAndDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(Config{Enabled: true, BufferSpans: 256})
		for i := uint64(0); i < 20; i++ {
			traceOneOp(tr, i*128)
		}
		tr.Anomaly(AnomalyWPQReject, 0, 0xdead<<6, 999)
		return tr
	}
	var a, b bytes.Buffer
	if err := Export(&a, []*Tracer{build()}); err != nil {
		t.Fatal(err)
	}
	if err := Export(&b, []*Tracer{build()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical traces exported differently")
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"cpu.load", "l1.miss", "xcon.hop", "dram.read", "anomaly.wpq_reject", "process_name", "thread_name"} {
		if !names[want] {
			t.Fatalf("export missing %q events; have %v", want, names)
		}
	}
}

func TestCollectorAmbientBinding(t *testing.T) {
	if AmbientCollector() != nil {
		t.Fatal("ambient collector leaked from another test")
	}
	col := NewCollector(Config{Enabled: true, BufferSpans: 64})
	release := col.Bind()
	tr := AmbientCollector().NewTracer()
	if tr == nil {
		t.Fatal("bound collector handed out nil tracer")
	}
	release()
	if AmbientCollector() != nil {
		t.Fatal("release did not unbind")
	}
	if got := col.Tracers(); len(got) != 1 || got[0] != tr {
		t.Fatalf("collector holds %v", got)
	}

	// Disabled config: nil collector, nil tracers, no-op bind.
	var off *Collector = NewCollector(Config{})
	if off != nil {
		t.Fatal("disabled collector not nil")
	}
	releaseOff := off.Bind()
	if off.NewTracer() != nil {
		t.Fatal("disabled collector handed out a tracer")
	}
	releaseOff()
}

func TestPublishMetrics(t *testing.T) {
	tr := New(Config{Enabled: true, BufferSpans: 256})
	for i := uint64(0); i < 10; i++ {
		traceOneOp(tr, i*100)
	}
	reg := metrics.NewRegistry()
	tr.PublishMetrics(reg.Scope("txtrace"))
	snap := reg.Snapshot()
	if v, ok := snap.Get("txtrace.dram.read"); !ok || v.Count != 10 {
		t.Fatalf("txtrace.dram.read = %+v", v)
	}
	if v, ok := snap.Get("txtrace.dram.read.p99"); !ok || v.Value != 48 {
		t.Fatalf("txtrace.dram.read.p99 = %+v, want 48", v)
	}
	if snap.Counter("txtrace.spans") != tr.SpansRecorded() {
		t.Fatal("span counter mismatch")
	}
	if _, ok := snap.Get("txtrace.anomalies.wpq_reject"); !ok {
		t.Fatal("anomaly counters not published")
	}
}
