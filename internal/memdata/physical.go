package memdata

import "fmt"

// Physical is the machine's flat byte-addressable backing store. All DRAM
// reads and writes ultimately land here, so data read back through the full
// cache + controller + CTT stack can be compared against what software
// wrote — the basis of the observational-equivalence tests.
type Physical struct {
	data []byte
}

// NewPhysical allocates a backing store of the given size in bytes.
func NewPhysical(size uint64) *Physical {
	return &Physical{data: make([]byte, size)}
}

// Size returns the store's capacity in bytes.
func (p *Physical) Size() uint64 { return uint64(len(p.data)) }

func (p *Physical) check(a Addr, n uint64) {
	if uint64(a)+n > uint64(len(p.data)) {
		panic(fmt.Sprintf("memdata: access [%#x,%#x) outside physical memory of %d bytes",
			a, uint64(a)+n, len(p.data)))
	}
}

// Read copies n bytes starting at a into a fresh slice.
func (p *Physical) Read(a Addr, n uint64) []byte {
	p.check(a, n)
	out := make([]byte, n)
	copy(out, p.data[a:uint64(a)+n])
	return out
}

// ReadInto copies len(dst) bytes starting at a into dst.
func (p *Physical) ReadInto(a Addr, dst []byte) {
	p.check(a, uint64(len(dst)))
	copy(dst, p.data[a:])
}

// Write copies src into the store starting at a.
func (p *Physical) Write(a Addr, src []byte) {
	p.check(a, uint64(len(src)))
	copy(p.data[a:], src)
}

// ReadLine copies the 64-byte cacheline containing a into a fresh slice.
// a must be line-aligned.
func (p *Physical) ReadLine(a Addr) []byte {
	if !IsLineAligned(a) {
		panic(fmt.Sprintf("memdata: ReadLine of unaligned address %#x", a))
	}
	return p.Read(a, LineSize)
}

// WriteLine stores a full 64-byte cacheline at a. a must be line-aligned
// and len(line) must be LineSize.
func (p *Physical) WriteLine(a Addr, line []byte) {
	if !IsLineAligned(a) {
		panic(fmt.Sprintf("memdata: WriteLine of unaligned address %#x", a))
	}
	if len(line) != LineSize {
		panic(fmt.Sprintf("memdata: WriteLine with %d bytes", len(line)))
	}
	p.Write(a, line)
}

// Zero clears n bytes starting at a.
func (p *Physical) Zero(a Addr, n uint64) {
	p.check(a, n)
	clear(p.data[a : uint64(a)+n])
}

// Copy performs an immediate (non-simulated) copy of n bytes from src to
// dst within the store. Used by test oracles and OS bootstrap, never by the
// timed simulation path.
func (p *Physical) Copy(dst, src Addr, n uint64) {
	p.check(src, n)
	p.check(dst, n)
	copy(p.data[dst:uint64(dst)+n], p.data[src:uint64(src)+n])
}
