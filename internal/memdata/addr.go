// Package memdata provides the physical memory substrate of the simulated
// machine: address types, cacheline/page arithmetic, byte ranges, and a
// flat byte-addressable backing store.
//
// Everything above this package (caches, controllers, the CTT) operates on
// these types, so the constants here define the machine's granularities.
package memdata

// Addr is a physical byte address.
type Addr uint64

// VAddr is a virtual byte address (translated by internal/oskern).
type VAddr uint64

// Fundamental granularities of the simulated machine. These match the
// paper's simulated configuration (64 B cachelines, 4 KB pages, 2 MB huge
// pages).
const (
	LineShift = 6
	LineSize  = 1 << LineShift // 64 B

	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB

	HugePageShift = 21
	HugePageSize  = 1 << HugePageShift // 2 MB
)

// LineAlign rounds a down to a cacheline boundary.
func LineAlign(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns a's offset within its cacheline.
func LineOffset(a Addr) uint64 { return uint64(a) & (LineSize - 1) }

// IsLineAligned reports whether a is cacheline-aligned.
func IsLineAligned(a Addr) bool { return LineOffset(a) == 0 }

// LineUp rounds a up to the next cacheline boundary (identity if aligned).
func LineUp(a Addr) Addr { return (a + LineSize - 1) &^ (LineSize - 1) }

// PageAlign rounds a down to a 4 KB page boundary.
func PageAlign(a Addr) Addr { return a &^ (PageSize - 1) }

// PageOffset returns a's offset within its 4 KB page.
func PageOffset(a Addr) uint64 { return uint64(a) & (PageSize - 1) }

// AlignRem returns the number of bytes needed to advance a to the next
// multiple of align (0 if already aligned). align must be a power of two.
// This is the ALIGN_REM macro from the paper's Fig 8 pseudocode.
func AlignRem(a Addr, align uint64) uint64 {
	rem := uint64(a) & (align - 1)
	if rem == 0 {
		return 0
	}
	return align - rem
}

// Range is a half-open byte range [Start, Start+Size) of physical memory.
type Range struct {
	Start Addr
	Size  uint64
}

// End returns the exclusive end address.
func (r Range) End() Addr { return r.Start + Addr(r.Size) }

// Empty reports whether the range covers no bytes.
func (r Range) Empty() bool { return r.Size == 0 }

// Contains reports whether a lies within the range.
func (r Range) Contains(a Addr) bool { return a >= r.Start && a < r.End() }

// ContainsRange reports whether o lies entirely within r.
func (r Range) ContainsRange(o Range) bool {
	return o.Start >= r.Start && o.End() <= r.End()
}

// Overlaps reports whether the two ranges share any byte.
func (r Range) Overlaps(o Range) bool {
	return !r.Empty() && !o.Empty() && r.Start < o.End() && o.Start < r.End()
}

// Intersect returns the overlapping part of r and o (possibly empty).
func (r Range) Intersect(o Range) Range {
	start := max(r.Start, o.Start)
	end := min(r.End(), o.End())
	if end <= start {
		return Range{}
	}
	return Range{Start: start, Size: uint64(end - start)}
}

// Subtract returns the parts of r not covered by o: zero, one, or two
// disjoint ranges in ascending order.
func (r Range) Subtract(o Range) []Range {
	inter := r.Intersect(o)
	if inter.Empty() {
		if r.Empty() {
			return nil
		}
		return []Range{r}
	}
	var out []Range
	if inter.Start > r.Start {
		out = append(out, Range{Start: r.Start, Size: uint64(inter.Start - r.Start)})
	}
	if inter.End() < r.End() {
		out = append(out, Range{Start: inter.End(), Size: uint64(r.End() - inter.End())})
	}
	return out
}

// Lines returns the cacheline-aligned addresses of every line the range
// touches (including partially covered fringe lines).
func (r Range) Lines() []Addr {
	if r.Empty() {
		return nil
	}
	first := LineAlign(r.Start)
	last := LineAlign(r.End() - 1)
	out := make([]Addr, 0, (last-first)/LineSize+1)
	for a := first; a <= last; a += LineSize {
		out = append(out, a)
	}
	return out
}

// NumLines returns how many cachelines the range touches.
func (r Range) NumLines() uint64 {
	if r.Empty() {
		return 0
	}
	first := LineAlign(r.Start)
	last := LineAlign(r.End() - 1)
	return uint64(last-first)/LineSize + 1
}
