package memdata

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLineHelpers(t *testing.T) {
	cases := []struct {
		a       Addr
		aligned Addr
		off     uint64
		up      Addr
	}{
		{0, 0, 0, 0},
		{1, 0, 1, 64},
		{63, 0, 63, 64},
		{64, 64, 0, 64},
		{100, 64, 36, 128},
		{4096, 4096, 0, 4096},
	}
	for _, c := range cases {
		if got := LineAlign(c.a); got != c.aligned {
			t.Errorf("LineAlign(%d) = %d, want %d", c.a, got, c.aligned)
		}
		if got := LineOffset(c.a); got != c.off {
			t.Errorf("LineOffset(%d) = %d, want %d", c.a, got, c.off)
		}
		if got := LineUp(c.a); got != c.up {
			t.Errorf("LineUp(%d) = %d, want %d", c.a, got, c.up)
		}
	}
}

func TestAlignRem(t *testing.T) {
	cases := []struct {
		a     Addr
		align uint64
		want  uint64
	}{
		{0, 64, 0},
		{1, 64, 63},
		{64, 64, 0},
		{100, 64, 28},
		{4095, 4096, 1},
		{4097, 4096, 4095},
	}
	for _, c := range cases {
		if got := AlignRem(c.a, c.align); got != c.want {
			t.Errorf("AlignRem(%d,%d) = %d, want %d", c.a, c.align, got, c.want)
		}
	}
}

func TestRangeBasics(t *testing.T) {
	r := Range{Start: 100, Size: 50} // [100,150)
	if r.End() != 150 {
		t.Fatalf("End = %d", r.End())
	}
	if !r.Contains(100) || !r.Contains(149) || r.Contains(150) || r.Contains(99) {
		t.Fatal("Contains wrong at boundaries")
	}
	if !r.Overlaps(Range{Start: 149, Size: 1}) || r.Overlaps(Range{Start: 150, Size: 10}) {
		t.Fatal("Overlaps wrong at boundaries")
	}
	if (Range{}).Overlaps(r) {
		t.Fatal("empty range overlaps")
	}
	got := r.Intersect(Range{Start: 120, Size: 100})
	if got.Start != 120 || got.Size != 30 {
		t.Fatalf("Intersect = %+v", got)
	}
}

func TestRangeSubtract(t *testing.T) {
	r := Range{Start: 100, Size: 100} // [100,200)
	cases := []struct {
		o    Range
		want []Range
	}{
		{Range{Start: 0, Size: 50}, []Range{r}},                      // disjoint
		{Range{Start: 100, Size: 100}, nil},                          // exact
		{Range{Start: 50, Size: 300}, nil},                           // superset
		{Range{Start: 100, Size: 30}, []Range{{130, 70}}},            // prefix
		{Range{Start: 170, Size: 30}, []Range{{100, 70}}},            // suffix
		{Range{Start: 140, Size: 20}, []Range{{100, 40}, {160, 40}}}, // middle
		{Range{Start: 90, Size: 20}, []Range{{110, 90}}},             // overlap left
		{Range{Start: 190, Size: 20}, []Range{{100, 90}}},            // overlap right
	}
	for _, c := range cases {
		got := r.Subtract(c.o)
		if len(got) != len(c.want) {
			t.Fatalf("Subtract(%+v) = %+v, want %+v", c.o, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Subtract(%+v) = %+v, want %+v", c.o, got, c.want)
			}
		}
	}
}

// Property: Subtract + Intersect partition the range exactly.
func TestRangeSubtractPartitionQuick(t *testing.T) {
	f := func(s1, n1, s2, n2 uint16) bool {
		r := Range{Start: Addr(s1), Size: uint64(n1)}
		o := Range{Start: Addr(s2), Size: uint64(n2)}
		covered := uint64(0)
		for _, p := range r.Subtract(o) {
			if p.Empty() || !r.ContainsRange(p) || p.Overlaps(o) {
				return false
			}
			covered += p.Size
		}
		return covered+r.Intersect(o).Size == r.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeLines(t *testing.T) {
	r := Range{Start: 100, Size: 100} // touches lines 64,128,192
	lines := r.Lines()
	want := []Addr{64, 128, 192}
	if len(lines) != len(want) {
		t.Fatalf("Lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("Lines = %v, want %v", lines, want)
		}
	}
	if r.NumLines() != 3 {
		t.Fatalf("NumLines = %d", r.NumLines())
	}
	if (Range{}).NumLines() != 0 || len((Range{}).Lines()) != 0 {
		t.Fatal("empty range has lines")
	}
	one := Range{Start: 64, Size: 64}
	if one.NumLines() != 1 {
		t.Fatalf("aligned single line NumLines = %d", one.NumLines())
	}
}

func TestPhysicalReadWrite(t *testing.T) {
	p := NewPhysical(1 << 16)
	data := []byte("hello, lazy memcpy")
	p.Write(1000, data)
	if got := p.Read(1000, uint64(len(data))); !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
	// Read must return a copy, not an alias.
	got := p.Read(1000, 5)
	got[0] = 'X'
	if p.Read(1000, 1)[0] != 'h' {
		t.Fatal("Read aliased backing store")
	}
}

func TestPhysicalLines(t *testing.T) {
	p := NewPhysical(1 << 12)
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	p.WriteLine(128, line)
	if got := p.ReadLine(128); !bytes.Equal(got, line) {
		t.Fatal("ReadLine mismatch")
	}
}

func TestPhysicalZeroAndCopy(t *testing.T) {
	p := NewPhysical(1 << 12)
	p.Write(0, []byte{1, 2, 3, 4})
	p.Copy(100, 0, 4)
	if !bytes.Equal(p.Read(100, 4), []byte{1, 2, 3, 4}) {
		t.Fatal("Copy mismatch")
	}
	p.Zero(100, 2)
	if !bytes.Equal(p.Read(100, 4), []byte{0, 0, 3, 4}) {
		t.Fatal("Zero mismatch")
	}
}

func TestPhysicalBoundsPanics(t *testing.T) {
	p := NewPhysical(64)
	for name, fn := range map[string]func(){
		"read past end":    func() { p.Read(60, 8) },
		"write past end":   func() { p.Write(64, []byte{1}) },
		"unaligned line":   func() { p.ReadLine(3) },
		"short line write": func() { p.WriteLine(0, []byte{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
