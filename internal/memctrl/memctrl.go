// Package memctrl models a memory controller: the agent that owns one DRAM
// channel and marshals every access to it through read and write pending
// queues (RPQ/WPQ) with finite capacity and back-pressure.
//
// The controller exposes a Hook interception point consulted on every
// controller-observed access. The (MC)² lazy-copy engine (internal/core)
// installs itself there; the controller itself knows nothing about lazy
// copies. Raw variants of read/write bypass the hook so the lazy-copy
// engine can access memory without re-triggering itself.
package memctrl

import (
	"fmt"

	"mcsquare/internal/dram"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Hook intercepts controller-observed accesses. Implementations run in
// engine (event) context and must eventually invoke the provided completion
// callback if they claim an access. tx is the access's transaction-trace
// id (0 when untraced); hooks thread it into any spans they record.
type Hook interface {
	// FilterRead is consulted when a cacheline read arrives at the
	// controller. Returning true claims the read: the hook must call done
	// (with the 64-byte line) itself, and the controller takes no action.
	FilterRead(a memdata.Addr, tx txtrace.Tx, done func(data []byte)) bool

	// FilterWrite is consulted when a cacheline write arrives. Returning
	// true claims the write: the hook must complete it (typically after
	// lazy copies) and call release when the writer may proceed.
	FilterWrite(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) bool
}

// Config sizes a controller's queues and policies.
type Config struct {
	RPQCapacity int // outstanding reads
	WPQCapacity int // buffered writes
	// Write drain watermarks: the controller starts draining writes to DRAM
	// when occupancy reaches DrainHigh and stops at DrainLow; it also
	// drains opportunistically when no reads are pending.
	DrainHigh int
	DrainLow  int
	// AcceptLatency models the controller front-end (decode + queue insert).
	AcceptLatency sim.Cycle
}

// DefaultConfig returns queue sizes typical of a DDR4 controller.
func DefaultConfig() Config {
	return Config{
		RPQCapacity:   32,
		WPQCapacity:   64,
		DrainHigh:     48,
		DrainLow:      16,
		AcceptLatency: 4,
	}
}

type pendingWrite struct {
	addr memdata.Addr
	data []byte
	tx   txtrace.Tx // traced writer, for the dram.write span at drain time
}

// Stats holds controller counters.
type Stats struct {
	Reads          uint64
	Writes         uint64
	ReadStalls     uint64 // reads that waited for an RPQ slot
	WriteStalls    uint64 // writes that waited for a WPQ slot
	Forwards       uint64 // reads serviced from the WPQ
	RejectedWrites uint64 // hook-side writebacks refused (WPQ pressure)
	ECCRetries     uint64 // DRAM reads re-issued after a detected bit upset
}

// Controller owns one DRAM channel. All methods must be called in engine
// (event) context.
type Controller struct {
	ID   int
	eng  *sim.Engine
	cfg  Config
	ch   *dram.Channel
	phys *memdata.Physical
	hook Hook
	tr   *txtrace.Tracer

	flt *faultinject.Plane // nil when no fault schedule is active
	inv *invariant.Oracles // nil when invariant oracles are off
	// Queue names for occupancy violations, precomputed so the checks
	// allocate nothing on the hot path.
	rpqName, wpqName string

	rpqUsed     int
	rpqWaiters  sim.FnQueue
	wpqUsed     int
	wpqWaiters  sim.FnQueue
	writeBuf    []pendingWrite          // accepted, not yet issued to DRAM
	wbHead      int                     // writeBuf dequeue index (backing array reused)
	inFlightWr  map[memdata.Addr][]byte // issued to DRAM, not yet landed
	pendingRead int                     // reads currently queued or in DRAM

	Stats Stats
}

// New creates a controller over the given channel and backing store.
func New(id int, eng *sim.Engine, cfg Config, ch *dram.Channel, phys *memdata.Physical) *Controller {
	return &Controller{
		ID:         id,
		eng:        eng,
		cfg:        cfg,
		ch:         ch,
		phys:       phys,
		inFlightWr: make(map[memdata.Addr][]byte),
	}
}

// SetHook installs the access interception hook (nil to remove).
func (c *Controller) SetHook(h Hook) { c.hook = h }

// SetTracer attaches the transaction tracer (nil disables).
func (c *Controller) SetTracer(t *txtrace.Tracer) { c.tr = t }

// SetFaults attaches the machine's fault-injection plane (nil disables).
func (c *Controller) SetFaults(p *faultinject.Plane) { c.flt = p }

// SetInvariants attaches the machine's invariant oracles (nil disables).
func (c *Controller) SetInvariants(o *invariant.Oracles) {
	c.inv = o
	if o.QueuesOn() {
		c.rpqName = fmt.Sprintf("mc%d.rpq", c.ID)
		c.wpqName = fmt.Sprintf("mc%d.wpq", c.ID)
	}
}

// Channel returns the controller's DRAM channel (for stats).
func (c *Controller) Channel() *dram.Channel { return c.ch }

// WPQOccupancy returns the fraction of WPQ slots in use, in [0,1]. A
// controller configured with no WPQ reports 1.0 (full): occupancy feeds
// hook throttling decisions (writeback rejection, free-worker pacing),
// and the old 0/0 NaN compared false everywhere, silently disabling
// throttling exactly when the queue could absorb nothing.
func (c *Controller) WPQOccupancy() float64 {
	if c.cfg.WPQCapacity <= 0 {
		return 1.0
	}
	return float64(c.wpqUsed) / float64(c.cfg.WPQCapacity)
}

// ReadLine requests the 64-byte line at a (line-aligned). The hook is
// consulted first; otherwise the read is queued and done is called with the
// line data when DRAM returns it.
func (c *Controller) ReadLine(a memdata.Addr, done func(data []byte)) {
	c.ReadLineTx(a, 0, done)
}

// ReadLineTx is ReadLine carrying a transaction-trace id.
func (c *Controller) ReadLineTx(a memdata.Addr, tx txtrace.Tx, done func(data []byte)) {
	if o := c.inv; o.WatchdogOn() {
		id := o.TxBegin(uint64(a))
		inner := done
		done = func(d []byte) { o.TxEnd(id); inner(d) }
	}
	if c.hook != nil && c.hook.FilterRead(a, tx, done) {
		return
	}
	// CPU-visible read the hook did not claim: check it against the shadow.
	c.rawReadLine(a, tx, done, c.inv.ShadowOn())
}

// RawReadLine is ReadLine without hook interception.
func (c *Controller) RawReadLine(a memdata.Addr, done func(data []byte)) {
	c.RawReadLineTx(a, 0, done)
}

// RawReadLineTx is RawReadLine carrying a transaction-trace id: traced
// reads record an mc.rpq_wait span (zero-length when a slot was free), a
// dram.read span with the row hit/miss outcome, or an mc.wpq_forward span
// when serviced from the write queue.
func (c *Controller) RawReadLineTx(a memdata.Addr, tx txtrace.Tx, done func(data []byte)) {
	c.rawReadLine(a, tx, done, false)
}

// rawReadLine is the shared read path. check enables the shadow-memory
// comparison: the returned value is bound at the forwarding check (forward
// hits) or at DRAM issue (array reads), and the oracle is consulted with
// that cycle so later legitimate writes don't count as mismatches.
func (c *Controller) rawReadLine(a memdata.Addr, tx txtrace.Tx, done func(data []byte), check bool) {
	c.Stats.Reads++
	// Forward from pending writes: the freshest value may still be queued.
	if d := c.forward(a); d != nil {
		c.Stats.Forwards++
		if check {
			c.inv.CheckRead(a, d, c.eng.Now())
		}
		if tx != 0 {
			now := uint64(c.eng.Now())
			c.tr.Complete(tx, txtrace.StageWPQForward, uint64(a), now, now+uint64(c.cfg.AcceptLatency), 0)
		}
		c.eng.After(c.cfg.AcceptLatency, func() { done(d) })
		return
	}
	rsp := c.tr.Begin(tx, txtrace.StageRPQWait, uint64(a), uint64(c.eng.Now()))
	c.acquireRPQ(func() {
		c.tr.End(rsp, uint64(c.eng.Now()))
		// Re-check forwarding: a write may have been queued while waiting.
		if d := c.forward(a); d != nil {
			c.Stats.Forwards++
			c.releaseRPQ()
			if check {
				c.inv.CheckRead(a, d, c.eng.Now())
			}
			if tx != 0 {
				now := uint64(c.eng.Now())
				c.tr.Complete(tx, txtrace.StageWPQForward, uint64(a), now, now, 0)
			}
			done(d)
			return
		}
		bound := c.eng.Now()
		c.pendingRead++
		rowHits := c.ch.RowHits
		finish := c.ch.Access(c.eng.Now(), a, false)
		if tx != 0 {
			fl := txtrace.FlagRowMiss
			if c.ch.RowHits > rowHits {
				fl = txtrace.FlagRowHit
			}
			c.tr.Complete(tx, txtrace.StageDRAMRead, uint64(a), uint64(c.eng.Now()), uint64(finish), fl)
		}
		c.eng.At(finish, func() {
			data := c.phys.ReadLine(a)
			c.finishRead(a, tx, data, func(d []byte) {
				c.pendingRead--
				c.releaseRPQ()
				if check {
					c.inv.CheckRead(a, d, bound)
				}
				done(d)
				c.maybeDrain()
			})
		})
	})
}

// finishRead completes a DRAM read burst. When the fault plane schedules a
// transient single-bit upset here, the per-line checksum ECC model detects
// the corruption, charges one full re-read of the line (the RPQ slot stays
// held), and delivers the intact data at the retry's finish time.
func (c *Controller) finishRead(a memdata.Addr, tx txtrace.Tx, data []byte, deliver func(data []byte)) {
	if c.flt.Fire(faultinject.KindDRAMCorrupt, uint64(a), uint64(c.eng.Now())) {
		want := dram.LineChecksum(data)
		bad := dram.CorruptBit(data, c.flt.Rand(uint64(len(data))*8))
		if dram.LineChecksum(bad) != want {
			c.Stats.ECCRetries++
			finish := c.ch.Access(c.eng.Now(), a, false)
			if tx != 0 {
				c.tr.Complete(tx, txtrace.StageDRAMRead, uint64(a), uint64(c.eng.Now()), uint64(finish), txtrace.FlagRowHit)
			}
			c.eng.At(finish, func() { deliver(data) })
			return
		}
	}
	deliver(data)
}

// RawReadLineSnapshot is RawReadLine except that the data is captured at
// call time (from the WPQ or memory) while completion is still charged the
// full queue + DRAM latency. The (MC)² engine uses it for bounce and
// lazy-copy source reads, which the controller orders ahead of any write
// that arrives later — guaranteeing as-of-copy data even under queue
// back-pressure.
func (c *Controller) RawReadLineSnapshot(a memdata.Addr, done func(data []byte)) {
	c.RawReadLineSnapshotTx(a, 0, done)
}

// RawReadLineSnapshotTx is RawReadLineSnapshot carrying a transaction-trace
// id (same spans as RawReadLineTx).
func (c *Controller) RawReadLineSnapshotTx(a memdata.Addr, tx txtrace.Tx, done func(data []byte)) {
	c.Stats.Reads++
	var data []byte
	if d := c.forward(a); d != nil {
		c.Stats.Forwards++
		data = make([]byte, memdata.LineSize)
		copy(data, d)
		if tx != 0 {
			now := uint64(c.eng.Now())
			c.tr.Complete(tx, txtrace.StageWPQForward, uint64(a), now, now+uint64(c.cfg.AcceptLatency), 0)
		}
		c.eng.After(c.cfg.AcceptLatency, func() { done(data) })
		return
	}
	data = c.phys.ReadLine(a)
	rsp := c.tr.Begin(tx, txtrace.StageRPQWait, uint64(a), uint64(c.eng.Now()))
	c.acquireRPQ(func() {
		c.tr.End(rsp, uint64(c.eng.Now()))
		c.pendingRead++
		rowHits := c.ch.RowHits
		finish := c.ch.Access(c.eng.Now(), a, false)
		if tx != 0 {
			fl := txtrace.FlagRowMiss
			if c.ch.RowHits > rowHits {
				fl = txtrace.FlagRowHit
			}
			c.tr.Complete(tx, txtrace.StageDRAMRead, uint64(a), uint64(c.eng.Now()), uint64(finish), fl)
		}
		c.eng.At(finish, func() {
			c.finishRead(a, tx, data, func(d []byte) {
				c.pendingRead--
				c.releaseRPQ()
				done(d)
				c.maybeDrain()
			})
		})
	})
}

// WriteLine posts a full-line write. The hook is consulted first; otherwise
// the write is buffered in the WPQ and release is called once a slot is
// held (posted-write semantics; DRAM completion happens later).
func (c *Controller) WriteLine(a memdata.Addr, data []byte, release func()) {
	c.WriteLineTx(a, data, 0, release)
}

// WriteLineTx is WriteLine carrying a transaction-trace id.
func (c *Controller) WriteLineTx(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) {
	if o := c.inv; o.WatchdogOn() {
		id := o.TxBegin(uint64(a))
		inner := release
		release = func() { o.TxEnd(id); inner() }
	}
	if c.hook != nil && c.hook.FilterWrite(a, data, tx, release) {
		return
	}
	if len(data) != memdata.LineSize {
		panic("memctrl: WriteLine with partial line")
	}
	cp := make([]byte, memdata.LineSize)
	copy(cp, data)
	c.rawWriteLineOwned(a, cp, tx, release, c.inv.ShadowOn())
}

// WriteLineOwned is WriteLine with ownership transfer: the caller hands
// the line buffer over and must not reuse or mutate it afterwards. The
// write paths that already build a private copy (cache writebacks, NT
// stores, CLWB, reconstructed (MC)² lines) use this to skip the
// controller's defensive copy — one 64-byte allocation per write on the
// hottest store path. Hook implementations observe the data during the
// FilterWrite call and must copy anything they keep (they do).
func (c *Controller) WriteLineOwned(a memdata.Addr, data []byte, release func()) {
	c.WriteLineOwnedTx(a, data, 0, release)
}

// WriteLineOwnedTx is WriteLineOwned carrying a transaction-trace id.
func (c *Controller) WriteLineOwnedTx(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) {
	if o := c.inv; o.WatchdogOn() {
		id := o.TxBegin(uint64(a))
		inner := release
		release = func() { o.TxEnd(id); inner() }
	}
	if c.hook != nil && c.hook.FilterWrite(a, data, tx, release) {
		return
	}
	c.rawWriteLineOwned(a, data, tx, release, c.inv.ShadowOn())
}

// RawWriteLine is WriteLine without hook interception.
func (c *Controller) RawWriteLine(a memdata.Addr, data []byte, release func()) {
	c.RawWriteLineTx(a, data, 0, release)
}

// RawWriteLineTx is RawWriteLine carrying a transaction-trace id.
func (c *Controller) RawWriteLineTx(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) {
	if len(data) != memdata.LineSize {
		panic("memctrl: WriteLine with partial line")
	}
	cp := make([]byte, memdata.LineSize)
	copy(cp, data)
	c.RawWriteLineOwnedTx(a, cp, tx, release)
}

// RawWriteLineOwned is RawWriteLine with ownership transfer (see
// WriteLineOwned). The buffer may still be read through write-forwarding
// until the write lands, which is safe precisely because nobody mutates
// it after the handoff.
func (c *Controller) RawWriteLineOwned(a memdata.Addr, data []byte, release func()) {
	c.RawWriteLineOwnedTx(a, data, 0, release)
}

// RawWriteLineOwnedTx is RawWriteLineOwned carrying a transaction-trace
// id: traced writes record an mc.wpq_wait span covering the slot wait plus
// accept latency, and a dram.write span when the drain issues the line.
func (c *Controller) RawWriteLineOwnedTx(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) {
	c.rawWriteLineOwned(a, data, tx, release, false)
}

// rawWriteLineOwned is the shared write path. observe replays CPU-visible
// writes into the shadow at WPQ-accept time — the cycle the write becomes
// forwardable, i.e. the first cycle a read can legally return it.
func (c *Controller) rawWriteLineOwned(a memdata.Addr, data []byte, tx txtrace.Tx, release func(), observe bool) {
	if len(data) != memdata.LineSize {
		panic("memctrl: WriteLine with partial line")
	}
	c.Stats.Writes++
	wsp := c.tr.Begin(tx, txtrace.StageWPQWait, uint64(a), uint64(c.eng.Now()))
	c.acquireWPQ(func() {
		c.tr.EndFlags(wsp, uint64(c.eng.Now())+uint64(c.cfg.AcceptLatency), txtrace.FlagWrite)
		if observe {
			c.inv.ObserveWrite(a, data)
		}
		c.writeBuf = append(c.writeBuf, pendingWrite{addr: a, data: data, tx: tx})
		c.eng.After(c.cfg.AcceptLatency, release)
		c.maybeDrain()
	})
}

// TryRawWriteLine behaves like RawWriteLine but refuses (returns false)
// instead of waiting when WPQ occupancy is at or above the given fraction.
// The (MC)² bounce-writeback optimization uses this with the paper's 75 %
// threshold to avoid contending with demand traffic.
func (c *Controller) TryRawWriteLine(a memdata.Addr, data []byte, frac float64) bool {
	if float64(c.wpqUsed) >= frac*float64(c.cfg.WPQCapacity) {
		c.Stats.RejectedWrites++
		return false
	}
	c.RawWriteLine(a, data, func() {})
	return true
}

// forward returns buffered/in-flight write data for a, or nil.
func (c *Controller) forward(a memdata.Addr) []byte {
	// Scan newest-first so the latest write wins.
	for i := len(c.writeBuf) - 1; i >= c.wbHead; i-- {
		if c.writeBuf[i].addr == a {
			return c.writeBuf[i].data
		}
	}
	if d, ok := c.inFlightWr[a]; ok {
		return d
	}
	return nil
}

// buffered reports the writes accepted but not yet issued to DRAM.
func (c *Controller) buffered() int { return len(c.writeBuf) - c.wbHead }

// popWrite dequeues the oldest buffered write, reusing the backing array
// once drained instead of reslicing capacity away.
func (c *Controller) popWrite() pendingWrite {
	w := c.writeBuf[c.wbHead]
	c.writeBuf[c.wbHead] = pendingWrite{}
	c.wbHead++
	if c.wbHead == len(c.writeBuf) {
		c.writeBuf = c.writeBuf[:0]
		c.wbHead = 0
	}
	return w
}

func (c *Controller) acquireRPQ(fn func()) {
	if c.rpqUsed < c.cfg.RPQCapacity {
		c.rpqUsed++
		c.inv.CheckQueue(c.rpqName, c.rpqUsed, c.cfg.RPQCapacity)
		fn()
		return
	}
	c.Stats.ReadStalls++
	c.rpqWaiters.Push(fn)
}

func (c *Controller) releaseRPQ() {
	if c.rpqWaiters.Len() > 0 {
		c.rpqWaiters.Pop()() // slot transfers directly
		return
	}
	c.rpqUsed--
	c.inv.CheckQueue(c.rpqName, c.rpqUsed, c.cfg.RPQCapacity)
}

func (c *Controller) acquireWPQ(fn func()) {
	if c.wpqUsed < c.cfg.WPQCapacity {
		c.wpqUsed++
		c.inv.CheckQueue(c.wpqName, c.wpqUsed, c.cfg.WPQCapacity)
		fn()
		return
	}
	c.Stats.WriteStalls++
	c.wpqWaiters.Push(fn)
}

func (c *Controller) releaseWPQ() {
	if c.wpqWaiters.Len() > 0 {
		c.wpqWaiters.Pop()()
		return
	}
	c.wpqUsed--
	c.inv.CheckQueue(c.wpqName, c.wpqUsed, c.cfg.WPQCapacity)
}

// maybeDrain issues buffered writes to DRAM according to the drain policy:
// drain aggressively above DrainHigh (down to DrainLow), and
// opportunistically when the read path is idle. Eligible writes issue
// back-to-back — the channel's bank/bus model pipelines them, so write
// drains run at burst bandwidth like a real controller's write bursts.
func (c *Controller) maybeDrain() {
	high := c.buffered() >= c.cfg.DrainHigh
	for c.buffered() > 0 {
		idle := c.pendingRead == 0
		if !high && !idle {
			return
		}
		if high && !idle && c.buffered() <= c.cfg.DrainLow {
			return
		}
		w := c.popWrite()
		c.inFlightWr[w.addr] = w.data
		rowHits := c.ch.RowHits
		finish := c.ch.Access(c.eng.Now(), w.addr, true)
		if w.tx != 0 {
			fl := txtrace.FlagWrite | txtrace.FlagRowMiss
			if c.ch.RowHits > rowHits {
				fl = txtrace.FlagWrite | txtrace.FlagRowHit
			}
			c.tr.Complete(w.tx, txtrace.StageDRAMWrite, uint64(w.addr), uint64(c.eng.Now()), uint64(finish), fl)
		}
		c.eng.At(finish, func() {
			c.phys.WriteLine(w.addr, w.data)
			// Only clear the in-flight entry if a newer write to the same
			// address hasn't replaced it.
			if d, ok := c.inFlightWr[w.addr]; ok && &d[0] == &w.data[0] {
				delete(c.inFlightWr, w.addr)
			}
			c.releaseWPQ()
			c.maybeDrain()
		})
	}
}

// PeekLine returns the value a raw read issued now would eventually
// deliver (WPQ forward or backing store), with no timing, stats, or side
// effects. The invariant oracles use it to compute MCFREE-time visible
// values synchronously. The returned slice must not be mutated.
func (c *Controller) PeekLine(a memdata.Addr) []byte {
	if d := c.forward(a); d != nil {
		return d
	}
	return c.phys.ReadLine(a)
}

// ResetStats zeroes the controller's counters without touching queue or
// timing state, mirroring dram.(*Channel).ResetStats. Registry views keep
// pointing at the same fields, so published metrics reset with them.
func (c *Controller) ResetStats() { c.Stats = Stats{} }

// Quiesce reports whether the controller has no queued or in-flight work.
func (c *Controller) Quiesce() bool {
	return c.rpqUsed == 0 && c.wpqUsed == 0 && c.buffered() == 0 && len(c.inFlightWr) == 0
}
