package memctrl

import "mcsquare/internal/metrics"

// PublishMetrics registers the controller's counters under the given
// scope (the machine uses "mc<ID>"). The Stats struct stays the storage;
// the registry only holds views.
func (c *Controller) PublishMetrics(s metrics.Scope) {
	s.Counter("reads", &c.Stats.Reads)
	s.Counter("writes", &c.Stats.Writes)
	s.Counter("read_stalls", &c.Stats.ReadStalls)
	s.Counter("write_stalls", &c.Stats.WriteStalls)
	s.Counter("forwards", &c.Stats.Forwards)
	s.Counter("rejected_writes", &c.Stats.RejectedWrites)
	s.Counter("ecc_retries", &c.Stats.ECCRetries)
	s.Gauge("wpq_occupancy", c.WPQOccupancy)
}
