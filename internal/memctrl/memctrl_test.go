package memctrl

import (
	"bytes"
	"testing"

	"mcsquare/internal/dram"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

func newTestMC(eng *sim.Engine) (*Controller, *memdata.Physical) {
	phys := memdata.NewPhysical(1 << 24)
	ch := dram.NewChannel(dram.DDR4Config())
	return New(0, eng, DefaultConfig(), ch, phys), phys
}

func TestReadReturnsMemoryData(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	want := make([]byte, memdata.LineSize)
	for i := range want {
		want[i] = byte(i * 3)
	}
	phys.WriteLine(256, want)

	var got []byte
	var doneAt sim.Cycle
	eng.After(0, func() {
		mc.ReadLine(256, func(d []byte) { got = d; doneAt = eng.Now() })
	})
	eng.Drain()
	if !bytes.Equal(got, want) {
		t.Fatal("read data mismatch")
	}
	if doneAt == 0 {
		t.Fatal("read completed instantly")
	}
}

func TestWriteThenReadForwards(t *testing.T) {
	eng := sim.NewEngine()
	mc, _ := newTestMC(eng)
	data := make([]byte, memdata.LineSize)
	data[0] = 0xAB

	var got []byte
	eng.After(0, func() {
		mc.WriteLine(512, data, func() {})
		mc.ReadLine(512, func(d []byte) { got = d })
	})
	eng.Drain()
	if got[0] != 0xAB {
		t.Fatal("read did not observe pending write")
	}
	if mc.Stats.Forwards == 0 {
		t.Fatal("expected WPQ forwarding")
	}
}

func TestWriteEventuallyLandsInMemory(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	data := make([]byte, memdata.LineSize)
	data[7] = 0x77
	eng.After(0, func() { mc.WriteLine(1024, data, func() {}) })
	eng.Drain()
	if phys.ReadLine(1024)[7] != 0x77 {
		t.Fatal("write never drained to memory")
	}
	if !mc.Quiesce() {
		t.Fatal("controller did not quiesce")
	}
}

func TestLatestWriteWins(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	a := memdata.Addr(2048)
	mk := func(b byte) []byte {
		d := make([]byte, memdata.LineSize)
		d[0] = b
		return d
	}
	var got []byte
	eng.After(0, func() {
		mc.WriteLine(a, mk(1), func() {})
		mc.WriteLine(a, mk(2), func() {})
		mc.ReadLine(a, func(d []byte) { got = d })
	})
	eng.Drain()
	if got[0] != 2 {
		t.Fatalf("forwarded stale write: got %d", got[0])
	}
	if phys.ReadLine(a)[0] != 2 {
		t.Fatalf("memory holds stale value %d", phys.ReadLine(a)[0])
	}
}

func TestRPQBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	mc, _ := newTestMC(eng)
	n := mc.cfg.RPQCapacity * 3
	completed := 0
	eng.After(0, func() {
		for i := 0; i < n; i++ {
			// Distinct rows in the same bank to force serialization.
			a := memdata.Addr(uint64(i) * 8192 * 16)
			mc.ReadLine(a, func([]byte) { completed++ })
		}
	})
	eng.Drain()
	if completed != n {
		t.Fatalf("completed %d of %d reads", completed, n)
	}
	if mc.Stats.ReadStalls == 0 {
		t.Fatal("expected RPQ stalls with 3x capacity reads")
	}
}

func TestWPQBackpressureAndDrain(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	n := mc.cfg.WPQCapacity * 2
	released := 0
	eng.After(0, func() {
		for i := 0; i < n; i++ {
			d := make([]byte, memdata.LineSize)
			d[0] = byte(i)
			mc.WriteLine(memdata.Addr(i*memdata.LineSize), d, func() { released++ })
		}
	})
	eng.Drain()
	if released != n {
		t.Fatalf("released %d of %d writes", released, n)
	}
	if mc.Stats.WriteStalls == 0 {
		t.Fatal("expected WPQ stalls")
	}
	for i := 0; i < n; i++ {
		if phys.ReadLine(memdata.Addr(i * memdata.LineSize))[0] != byte(i) {
			t.Fatalf("write %d lost", i)
		}
	}
}

func TestTryRawWriteLineRejectsUnderPressure(t *testing.T) {
	eng := sim.NewEngine()
	mc, _ := newTestMC(eng)
	d := make([]byte, memdata.LineSize)
	var rejected bool
	eng.After(0, func() {
		// Fill the WPQ beyond 75%.
		for i := 0; i < mc.cfg.WPQCapacity; i++ {
			mc.RawWriteLine(memdata.Addr(i*memdata.LineSize), d, func() {})
		}
		rejected = !mc.TryRawWriteLine(0, d, 0.75)
	})
	eng.Drain()
	if !rejected {
		t.Fatal("TryRawWriteLine accepted despite full WPQ")
	}
	if mc.Stats.RejectedWrites != 1 {
		t.Fatalf("RejectedWrites = %d", mc.Stats.RejectedWrites)
	}
}

type claimAllHook struct {
	reads, writes int
}

func (h *claimAllHook) FilterRead(a memdata.Addr, tx txtrace.Tx, done func([]byte)) bool {
	h.reads++
	done(make([]byte, memdata.LineSize))
	return true
}
func (h *claimAllHook) FilterWrite(a memdata.Addr, data []byte, tx txtrace.Tx, release func()) bool {
	h.writes++
	release()
	return true
}

func TestHookInterception(t *testing.T) {
	eng := sim.NewEngine()
	mc, _ := newTestMC(eng)
	h := &claimAllHook{}
	mc.SetHook(h)
	eng.After(0, func() {
		mc.ReadLine(0, func([]byte) {})
		mc.WriteLine(64, make([]byte, memdata.LineSize), func() {})
		// Raw variants must bypass the hook.
		mc.RawReadLine(128, func([]byte) {})
		mc.RawWriteLine(192, make([]byte, memdata.LineSize), func() {})
	})
	eng.Drain()
	if h.reads != 1 || h.writes != 1 {
		t.Fatalf("hook saw %d reads, %d writes; want 1, 1", h.reads, h.writes)
	}
}

func TestManyMixedOpsQuiesce(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	// Interleave reads and writes over a small region; ensure everything
	// completes and the final memory state reflects the last write per line.
	last := map[memdata.Addr]byte{}
	eng.After(0, func() {
		for i := 0; i < 500; i++ {
			a := memdata.Addr((i % 37) * memdata.LineSize)
			if i%3 == 0 {
				mc.ReadLine(a, func([]byte) {})
			} else {
				d := make([]byte, memdata.LineSize)
				d[0] = byte(i)
				last[a] = byte(i)
				mc.WriteLine(a, d, func() {})
			}
		}
	})
	eng.Drain()
	if !mc.Quiesce() {
		t.Fatal("controller did not quiesce")
	}
	for a, v := range last {
		if phys.ReadLine(a)[0] != v {
			t.Fatalf("line %d: got %d want %d", a, phys.ReadLine(a)[0], v)
		}
	}
}

// TestSnapshotReadCapturesAtIssue: RawReadLineSnapshot must return the data
// as of the call, even when a write to the same line lands before the read's
// DRAM completion — the ordering guarantee (MC)² bounce reads rely on.
func TestSnapshotReadCapturesAtIssue(t *testing.T) {
	eng := sim.NewEngine()
	mc, phys := newTestMC(eng)
	a := memdata.Addr(4096)
	old := make([]byte, memdata.LineSize)
	old[0] = 0x01
	phys.WriteLine(a, old)

	newer := make([]byte, memdata.LineSize)
	newer[0] = 0x02
	var snap, plain []byte
	eng.After(0, func() {
		mc.RawReadLineSnapshot(a, func(d []byte) { snap = d })
		// A write arrives immediately after the snapshot was taken.
		mc.RawWriteLine(a, newer, func() {})
		// A regular read issued after the write must see the new data.
		mc.RawReadLine(a, func(d []byte) { plain = d })
	})
	eng.Drain()
	if snap[0] != 0x01 {
		t.Fatalf("snapshot read returned %#x, want the as-of-issue value 0x01", snap[0])
	}
	if plain[0] != 0x02 {
		t.Fatalf("plain read returned %#x, want the forwarded new value 0x02", plain[0])
	}
}

// TestWPQOccupancyZeroCapacity pins the divide-by-zero fix: a controller
// configured with no write queue must report itself as full (1.0), not NaN.
// NaN poisoned every threshold comparison downstream — `NaN >= frac` is
// false, so throttling that should engage with a zero-capacity WPQ was
// silently disabled instead.
func TestWPQOccupancyZeroCapacity(t *testing.T) {
	eng := sim.NewEngine()
	phys := memdata.NewPhysical(1 << 20)
	ch := dram.NewChannel(dram.DDR4Config())
	cfg := DefaultConfig()
	cfg.WPQCapacity = 0
	mc := New(0, eng, cfg, ch, phys)

	occ := mc.WPQOccupancy()
	if occ != occ { // NaN check
		t.Fatal("WPQOccupancy returned NaN for zero capacity")
	}
	if occ != 1.0 {
		t.Fatalf("WPQOccupancy = %v with zero capacity, want 1.0 (full)", occ)
	}
	// The value must behave as "full" against the paper's 75% rule.
	if !(occ >= 0.75) {
		t.Fatal("zero-capacity occupancy does not trip threshold comparisons")
	}
}
