// Package copykit defines the copy-mechanism abstraction the workloads are
// parameterized over, so every experiment runs unchanged against the eager
// baseline, (MC)² lazy copies, and the zIO-style elision baseline.
//
// Reads and writes go through the Copier because copy-eliding baselines
// (zIO) must intercept accesses to elided destinations; the eager and lazy
// implementations pass them straight to the core.
package copykit

import (
	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
	"mcsquare/internal/softmc"
)

// Copier is one copy mechanism under test.
type Copier interface {
	// Name identifies the mechanism in result tables.
	Name() string
	// Memcpy copies n bytes from src to dst with memcpy semantics.
	Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64)
	// Read returns n bytes at a (dependent-load semantics).
	Read(c *cpu.Core, a memdata.Addr, n uint64) []byte
	// ReadAsync touches n bytes at a without consuming the value
	// (streaming semantics).
	ReadAsync(c *cpu.Core, a memdata.Addr, n uint64)
	// Write stores data at a.
	Write(c *cpu.Core, a memdata.Addr, data []byte)
	// Free hints that [r.Start, r.End) is dead.
	Free(c *cpu.Core, r memdata.Range)
}

// Eager is the native memcpy baseline.
type Eager struct{}

// Name implements Copier.
func (Eager) Name() string { return "memcpy" }

// Memcpy implements Copier with a plain cache-level copy.
func (Eager) Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	softmc.MemcpyEager(c, dst, src, n)
}

// Read implements Copier.
func (Eager) Read(c *cpu.Core, a memdata.Addr, n uint64) []byte { return c.Load(a, n) }

// ReadAsync implements Copier.
func (Eager) ReadAsync(c *cpu.Core, a memdata.Addr, n uint64) { c.LoadAsync(a, n) }

// Write implements Copier.
func (Eager) Write(c *cpu.Core, a memdata.Addr, data []byte) { c.Store(a, data) }

// Free implements Copier (no-op: nothing is tracked).
func (Eager) Free(c *cpu.Core, r memdata.Range) {}

// Lazy is (MC)² behind the copy_interpose.so policy: calls at or above
// Threshold go through memcpy_lazy.
type Lazy struct {
	Threshold uint64 // 0 means every copy is lazy
}

// Name implements Copier.
func (Lazy) Name() string { return "mc2" }

// Memcpy implements Copier.
func (l Lazy) Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	if n >= l.Threshold {
		softmc.MemcpyLazy(c, dst, src, n)
	} else {
		softmc.MemcpyEager(c, dst, src, n)
	}
}

// Read implements Copier.
func (Lazy) Read(c *cpu.Core, a memdata.Addr, n uint64) []byte { return c.Load(a, n) }

// ReadAsync implements Copier.
func (Lazy) ReadAsync(c *cpu.Core, a memdata.Addr, n uint64) { c.LoadAsync(a, n) }

// Write implements Copier.
func (Lazy) Write(c *cpu.Core, a memdata.Addr, data []byte) { c.Store(a, data) }

// Free implements Copier with MCFREE.
func (Lazy) Free(c *cpu.Core, r memdata.Range) { softmc.Free(c, r) }

// SoftMC is memcpy_lazy unconditionally: the raw §III-D library with no
// interposer policy on top, so even sub-line calls take the lazy path's
// alignment fringes. The mc2 mechanism is SoftMC plus the 1 KB threshold;
// keeping the raw library as its own mechanism isolates the library from
// the policy in comparisons.
type SoftMC struct{}

// Name implements Copier.
func (SoftMC) Name() string { return "softmc" }

// Memcpy implements Copier.
func (SoftMC) Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	softmc.MemcpyLazy(c, dst, src, n)
}

// Read implements Copier.
func (SoftMC) Read(c *cpu.Core, a memdata.Addr, n uint64) []byte { return c.Load(a, n) }

// ReadAsync implements Copier.
func (SoftMC) ReadAsync(c *cpu.Core, a memdata.Addr, n uint64) { c.LoadAsync(a, n) }

// Write implements Copier.
func (SoftMC) Write(c *cpu.Core, a memdata.Addr, data []byte) { c.Store(a, data) }

// Free implements Copier with MCFREE.
func (SoftMC) Free(c *cpu.Core, r memdata.Range) { softmc.Free(c, r) }
