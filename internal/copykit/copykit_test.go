package copykit

import (
	"bytes"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
)

func newM(lazy bool) *machine.Machine {
	p := machine.DefaultParams()
	p.LazyEnabled = lazy
	return machine.New(p)
}

func roundTrip(t *testing.T, m *machine.Machine, cp Copier) {
	t.Helper()
	src := m.AllocPage(16 << 10)
	dst := m.AllocPage(16 << 10)
	m.FillRandom(src, 16<<10, 1)
	want := m.Phys.Read(src, 16<<10)
	m.Run(func(c *cpu.Core) {
		cp.Memcpy(c, dst, src, 16<<10)
		got := cp.Read(c, dst, 16<<10)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: copy mismatch", cp.Name())
		}
		cp.Write(c, dst, []byte{0x11})
		c.Fence()
		if cp.Read(c, dst, 1)[0] != 0x11 {
			t.Errorf("%s: write not visible", cp.Name())
		}
		cp.ReadAsync(c, dst+64, 8)
		c.Fence()
		cp.Free(c, memdata.Range{Start: dst, Size: 16 << 10})
	})
}

func TestEagerRoundTrip(t *testing.T) { roundTrip(t, newM(false), Eager{}) }

func TestLazyRoundTrip(t *testing.T) { roundTrip(t, newM(true), Lazy{Threshold: 1024}) }

func TestLazyThresholdRouting(t *testing.T) {
	m := newM(true)
	src := m.AllocPage(8 << 10)
	dst := m.AllocPage(8 << 10)
	m.FillRandom(src, 8<<10, 2)
	cp := Lazy{Threshold: 2048}
	m.Run(func(c *cpu.Core) {
		cp.Memcpy(c, dst, src, 1024) // below: eager
	})
	if m.Lazy.Stats.LazyOps != 0 {
		t.Fatal("below-threshold copy went lazy")
	}
	m.Run(func(c *cpu.Core) {
		cp.Memcpy(c, dst+4096, src+4096, 4096) // above: lazy
	})
	if m.Lazy.Stats.LazyOps == 0 {
		t.Fatal("above-threshold copy stayed eager")
	}
}

func TestZeroThresholdAlwaysLazy(t *testing.T) {
	m := newM(true)
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.FillRandom(src, 4096, 3)
	m.Run(func(c *cpu.Core) {
		Lazy{}.Memcpy(c, dst, src, 128)
	})
	if m.Lazy.Stats.LazyOps == 0 {
		t.Fatal("zero-threshold Lazy copier did not go lazy")
	}
}

func TestNames(t *testing.T) {
	if (Eager{}).Name() != "memcpy" || (Lazy{}).Name() != "mc2" {
		t.Fatal("copier names changed; result tables depend on them")
	}
}
