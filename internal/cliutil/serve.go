package cliutil

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"mcsquare/internal/metrics"
	"mcsquare/internal/timeline"
)

// ServeState is the live data the -serve inspection endpoint exposes. The
// CLI fills it before the run starts (collectors exist up front) and the
// HTTP handlers read whatever is current. Reads race benignly with the
// simulation: the endpoint is a best-effort debugging view of a running
// process, not a determinism surface — deterministic output goes through
// -stats / -timeline files.
type ServeState struct {
	Metrics  *metrics.Collector
	Timeline *timeline.Collector
}

// timelineView is the /timeline response: per-machine closed-window
// counts plus the live in-progress window.
type timelineView struct {
	Enabled      bool   `json:"enabled"`
	WindowCycles uint64 `json:"window_cycles,omitempty"`
	Machines     []struct {
		Machine int              `json:"machine"`
		Closed  int              `json:"closed_windows"`
		Current *timeline.Window `json:"current"`
	} `json:"machines,omitempty"`
}

// NewServeMux builds the inspection endpoint's routes:
//
//	/metrics      — merged live metrics snapshot (JSON)
//	/timeline     — per-machine window counts + the current window (JSON)
//	/debug/pprof  — the standard net/http/pprof handlers
func NewServeMux(st *ServeState) *http.ServeMux {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if st.Metrics == nil {
			http.Error(w, `{"error":"metrics collector not bound"}`, http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, st.Metrics.Snapshot())
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		var view timelineView
		if st.Timeline != nil {
			view.Enabled = true
			view.WindowCycles = st.Timeline.Config().WindowCycles
			if view.WindowCycles == 0 {
				view.WindowCycles = timeline.DefaultWindowCycles
			}
			for i, rec := range st.Timeline.Recorders() {
				cur := rec.Current()
				view.Machines = append(view.Machines, struct {
					Machine int              `json:"machine"`
					Closed  int              `json:"closed_windows"`
					Current *timeline.Window `json:"current"`
				}{Machine: i, Closed: cur.Index, Current: &cur})
			}
		}
		writeJSON(w, view)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the inspection endpoint on addr, returning the bound
// address (addr may use port 0) and a shutdown func. The listener is
// bound synchronously — an unusable address fails here, before the
// simulation runs — and served on a background goroutine.
func Serve(addr string, st *ServeState) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("-serve %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewServeMux(st)}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
