// Package cliutil holds the flag-layer plumbing that cmd/mcsim and
// cmd/mcfigures previously duplicated: machine-spec loading with override
// layering (-config file, then repeatable -set Path=value patches), output
// destination validation, metrics/fault/invariant wiring, and the
// registry-driven workload × mechanism table behind -list.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"strings"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/metrics"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/workloads"

	// Out-of-tree mechanisms self-register with the config registry; the
	// CLIs see the full catalog by importing them here.
	_ "mcsquare/internal/zio"
)

// StringList is a repeatable string flag (flag.Var) collecting every
// occurrence in order.
type StringList []string

// String renders the collected values for flag's usage output.
func (s *StringList) String() string { return strings.Join(*s, ",") }

// Set appends one occurrence.
func (s *StringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// SpecClock is the cycle→wall-time converter for a loaded spec: every CLI
// summary that prints nanoseconds or milliseconds goes through it, so a
// -set ClockGHz=2 machine reports real wall time instead of the Table I
// default's. A nil spec (or an unset ClockGHz) falls back to 4 GHz.
func SpecClock(spec *config.MachineSpec) stats.Clock {
	if spec == nil {
		return stats.DefaultClock
	}
	return stats.Clock(spec.ClockGHz)
}

// LoadSpec builds the run's machine spec from the override layers: the
// built-in default, then the -config file (a partial spec patching the
// default), then each -set Path=value assignment in flag order. The result
// is validated; the returned error is a *config.ValidationError for value
// problems and wraps file/parse errors otherwise.
func LoadSpec(path string, sets []string) (*config.MachineSpec, error) {
	spec := config.Default()
	if path != "" {
		s, err := config.Load(path)
		if err != nil {
			return nil, err
		}
		spec = s
	}
	var ovs config.Overrides
	for _, a := range sets {
		ov, err := config.ParseAssignment(a)
		if err != nil {
			return nil, fmt.Errorf("-set %q: %w", a, err)
		}
		ovs = append(ovs, ov)
	}
	if err := spec.Apply(ovs); err != nil {
		return nil, fmt.Errorf("-set: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// CreateOutput opens path for writing ("-" = stdout, "" = none). Callers
// invoke it before the simulation runs so an unwritable path fails in
// milliseconds, not after the sweep.
func CreateOutput(path string) (*os.File, error) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	}
	return os.Create(path)
}

// CloseOutput closes a CreateOutput file, leaving stdout open.
func CloseOutput(f *os.File) error {
	if f == nil || f == os.Stdout {
		return nil
	}
	return f.Close()
}

// WriteStats dumps a metrics snapshot as JSON to path ("-" = stdout).
func WriteStats(path string, s *metrics.Snapshot) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// ParseFaults parses a -faults value (a bare seed or a schedule JSON file)
// into a schedule; empty means no injection.
func ParseFaults(spec string) (*faultinject.Schedule, error) {
	if spec == "" {
		return nil, nil
	}
	s, err := faultinject.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// TimelineConfig resolves the timeline configuration from the flag layer
// and the spec's Timeline block: -timeline (an output path) or -serve
// forces the plane on, the spec block supplies window/tracks, and a
// -timeline-window override (> 0) wins over the spec's window.
func TimelineConfig(spec *config.MachineSpec, outPath string, window uint64, serve bool) timeline.Config {
	var cfg timeline.Config
	if spec != nil {
		cfg = spec.Timeline.Config()
	}
	if outPath != "" || serve {
		cfg.Enabled = true
	}
	if window > 0 {
		cfg.WindowCycles = window
	}
	return cfg
}

// WriteTimeline writes the recorders' windows to path ("-" = stdout):
// names ending in .csv get CSV, everything else the JSON document.
func WriteTimeline(path string, recs []*timeline.Recorder) error {
	if path == "-" {
		return timeline.Write(os.Stdout, path, recs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := timeline.Write(f, path, recs); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

// Invariants maps the -invariants flag to an oracle configuration.
func Invariants(enabled bool) invariant.Config {
	if enabled {
		return invariant.All()
	}
	return invariant.Config{}
}

// PrintMechanisms writes the mechanism registry, one line per mechanism
// with its capabilities.
func PrintMechanisms(w io.Writer) {
	fmt.Fprintln(w, "mechanism  capabilities")
	for _, mech := range config.Mechanisms() {
		caps := make([]string, len(mech.Caps))
		for i, c := range mech.Caps {
			caps[i] = string(c)
		}
		fmt.Fprintf(w, "%-10s %s\n", mech.Name, strings.Join(caps, ", "))
		if mech.Summary != "" {
			fmt.Fprintf(w, "%-10s   %s\n", "", mech.Summary)
		}
	}
}

// PrintWorkloads writes the workload catalog with each workload's
// supported mechanisms, computed from capability declarations.
func PrintWorkloads(w io.Writer) {
	fmt.Fprintln(w, "workload   mechanisms")
	for _, wl := range workloads.Catalog() {
		fmt.Fprintf(w, "%-10s %s\n", wl.Name, strings.Join(wl.Mechanisms(), ", "))
		if wl.Note != "" {
			fmt.Fprintf(w, "%-10s   (%s)\n", "", wl.Note)
		}
	}
}
