package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
)

// withResilience installs a normalized resilience block on a constructed
// fleet (syntheticFleet specs carry none).
func withResilience(f *Fleet, r config.ResilienceSpec) {
	rn := r.Normalized()
	f.Block.Resilience = &rn
}

// bindStorm binds a cell-local fault collector carrying sched for the
// duration of the test, the way the runner and figure cells do.
func bindStorm(t *testing.T, sched faultinject.Schedule) {
	t.Helper()
	col := faultinject.NewCollector(&sched)
	if col == nil {
		t.Fatal("bindStorm: schedule is inactive")
	}
	t.Cleanup(col.Bind())
}

// testStorm is a busy fleet storm: crashes roughly every 50k cycles per
// machine (10k down), brownouts half the time at 4x, probes lossy 1-in-8.
func testStorm(seed uint64) faultinject.Schedule {
	return faultinject.Schedule{
		Seed:                 seed,
		CrashMeanUpCycles:    50_000,
		CrashMeanDownCycles:  10_000,
		BrownoutMeanUpCycles: 40_000,
		BrownoutMeanCycles:   20_000,
		BrownoutFactor:       4,
		ProbeLossEvery:       8,
	}
}

// conservation asserts the fleet availability invariant.
func conservation(t *testing.T, res *Result) {
	t.Helper()
	sum := res.Completed + res.Resilience.TimedOut + res.Resilience.Shed +
		res.Dropped + res.Resilience.Failed
	if sum != res.Offered {
		t.Fatalf("conservation violated: offered %d != completed %d + timedout %d + shed %d + dropped %d + failed %d",
			res.Offered, res.Completed, res.Resilience.TimedOut,
			res.Resilience.Shed, res.Dropped, res.Resilience.Failed)
	}
}

func TestResilienceConservationUnderStorm(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 4, 100)
	f.Block.Requests = 4000 // long enough that every storm kind fires
	withResilience(f, config.ResilienceSpec{
		Health:  &config.HealthSpec{Enabled: true, ProbeIntervalCycles: 5_000},
		Retry:   &config.RetrySpec{Enabled: true},
		Hedge:   &config.HedgeSpec{Enabled: true},
		Breaker: &config.BreakerSpec{Enabled: true},
		Shed:    &config.ShedSpec{Enabled: true},
	})
	bindStorm(t, testStorm(11))
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.8)
	if !res.ResilienceOn {
		t.Fatal("resilience plane did not engage")
	}
	conservation(t, res)
	if res.Resilience.Crashes == 0 {
		t.Fatal("storm produced no crashes")
	}
	if res.Resilience.Brownouts == 0 {
		t.Fatal("storm produced no brownouts")
	}
	if res.Resilience.ProbesSent == 0 || res.Resilience.ProbesLost == 0 {
		t.Fatalf("probe accounting: sent %d lost %d",
			res.Resilience.ProbesSent, res.Resilience.ProbesLost)
	}
	var down float64
	for _, d := range res.DowntimeCycles {
		down += d
	}
	if down <= 0 {
		t.Fatal("crashes recorded but no downtime accumulated")
	}
}

func TestResilienceDeterministicReplay(t *testing.T) {
	run := func(sched faultinject.Schedule) *Result {
		f, cal := syntheticFleet(t, "hash", 3, 100)
		withResilience(f, config.ResilienceSpec{
			Health: &config.HealthSpec{Enabled: true, ProbeIntervalCycles: 5_000},
			Retry:  &config.RetrySpec{Enabled: true},
		})
		col := faultinject.NewCollector(&sched)
		defer col.Bind()()
		return f.Simulate(cal, cal.CapacityReqPerCycle()*0.7)
	}
	sched := testStorm(23)
	a := run(sched)

	// Round-trip the schedule through its JSON form, the CI replay path.
	b, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	var back faultinject.Schedule
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != sched {
		t.Fatalf("storm lost in JSON round trip: %+v vs %+v", back, sched)
	}
	c := run(back)
	if a.Resilience != c.Resilience || a.Completed != c.Completed ||
		a.Dropped != c.Dropped || a.GoodputKOps() != c.GoodputKOps() {
		t.Fatalf("replayed storm diverged:\n first: %+v / completed %d\nreplay: %+v / completed %d",
			a.Resilience, a.Completed, c.Resilience, c.Completed)
	}
	conservation(t, a)
}

func TestCrashFailoverWithRetries(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 3, 100)
	withResilience(f, config.ResilienceSpec{
		Health: &config.HealthSpec{Enabled: true, ProbeIntervalCycles: 2_000, FailThreshold: 1, RestoreThreshold: 1},
		Retry:  &config.RetrySpec{Enabled: true, MaxAttempts: 4},
	})
	bindStorm(t, faultinject.Schedule{
		Seed:                31,
		CrashMeanUpCycles:   20_000,
		CrashMeanDownCycles: 20_000,
	})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.6)
	conservation(t, res)
	if res.Resilience.Crashes == 0 {
		t.Fatal("no crashes under a crash-heavy storm")
	}
	if res.Resilience.Retries == 0 {
		t.Fatal("crash-flushed requests were never retried")
	}
	if res.Resilience.FailedOver == 0 {
		t.Fatal("no request completed on a retry attempt")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed despite retries")
	}
}

func TestHedgingFirstWins(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	withResilience(f, config.ResilienceSpec{
		// Hedge aggressively: any request not done 50 cycles after arrival
		// (service is 100) issues a duplicate.
		Hedge: &config.HedgeSpec{Enabled: true, DelayCycles: 50},
	})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.8)
	conservation(t, res)
	if res.Resilience.Hedges == 0 {
		t.Fatal("no hedges issued at a 50-cycle delay against 100-cycle service")
	}
	if res.Completed != res.Offered {
		t.Fatalf("hedging lost requests: completed %d of %d", res.Completed, res.Offered)
	}
	// First-wins is pairwise: each issued hedge produces exactly one
	// cancellation — the hedge itself when the primary wins, the primary
	// when the hedge wins — and wins are a subset of hedges.
	if res.Resilience.HedgeCancels != res.Resilience.Hedges {
		t.Fatalf("hedge accounting: %d cancels != %d hedges",
			res.Resilience.HedgeCancels, res.Resilience.Hedges)
	}
	if res.Resilience.HedgeWins > res.Resilience.Hedges {
		t.Fatalf("hedge accounting: %d wins > %d hedges",
			res.Resilience.HedgeWins, res.Resilience.Hedges)
	}
}

func TestLoadSheddingByPriority(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	// Two mix entries sharing the mvcc calibration: one sheddable
	// (priority 0), one protected (priority 1).
	f.Block.Mix = []config.MixEntry{
		{Workload: "mvcc", Weight: 0.5},
		{Workload: "kvsnap", Weight: 0.5, Priority: 1},
	}
	cal.weights = []float64{0.5, 0.5}
	for i := range cal.machines {
		cal.machines[i].samples = [][]float64{{100}, {100}}
		cal.machines[i].means = []float64{100, 100}
	}
	f.Spec.Timeline = nil
	withResilience(f, config.ResilienceSpec{
		Shed: &config.ShedSpec{Enabled: true, UtilizationHigh: 0.5, PriorityFloor: 1},
	})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*1.5)
	conservation(t, res)
	if res.Resilience.Shed == 0 {
		t.Fatal("overload shed nothing")
	}
	// Only the priority-0 entry may shed; the protected entry's requests
	// all complete or queue (queue cap is effectively unbounded here).
	mvccDone := res.PerWorkload["mvcc"].N()
	kvDone := res.PerWorkload["kvsnap"].N()
	if kvDone == 0 {
		t.Fatal("protected workload starved")
	}
	if uint64(mvccDone+kvDone) != res.Completed {
		t.Fatalf("per-workload split %d+%d != completed %d", mvccDone, kvDone, res.Completed)
	}
	if uint64(mvccDone)+res.Resilience.Shed+uint64(kvDone) != res.Offered {
		t.Fatalf("shed requests did not come out of the sheddable tier: mvcc %d kv %d shed %d offered %d",
			mvccDone, kvDone, res.Resilience.Shed, res.Offered)
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 2, 100)
	// No health checks: the balancer keeps routing to crashed machines,
	// so only the breaker can stop the bleeding.
	withResilience(f, config.ResilienceSpec{
		Retry:   &config.RetrySpec{Enabled: true},
		Breaker: &config.BreakerSpec{Enabled: true, FailThreshold: 3, OpenCycles: 30_000},
	})
	bindStorm(t, faultinject.Schedule{
		Seed:                47,
		CrashMeanUpCycles:   15_000,
		CrashMeanDownCycles: 40_000,
	})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.6)
	conservation(t, res)
	if res.Resilience.BreakerOpens == 0 {
		t.Fatal("breaker never opened against a crash-heavy storm")
	}
}

func TestTimeoutsResolveRequests(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	withResilience(f, config.ResilienceSpec{
		// A 150-cycle budget against 100-cycle service: anything that
		// waits behind one full request times out; one retry allowed.
		Retry: &config.RetrySpec{Enabled: true, MaxAttempts: 2, TimeoutCycles: 150},
	})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*1.2)
	conservation(t, res)
	if res.Resilience.TimedOut == 0 {
		t.Fatal("overload produced no timeouts under a tight budget")
	}
	if res.Resilience.Retries == 0 {
		t.Fatal("timeouts were never retried")
	}
}

// TestLegacyPathUntouchedByDefaults pins that a default spec (no
// resilience block, no storm) reports the plane off and all counters zero.
func TestLegacyPathUntouchedByDefaults(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	if res.ResilienceOn {
		t.Fatal("resilience plane engaged without a spec block or storm")
	}
	if res.Resilience != (ResilienceStats{}) {
		t.Fatalf("legacy run accumulated resilience counters: %+v", res.Resilience)
	}
}

// --- LB routing under membership change (satellite) ---

// routeSim builds a minimal fleetSim with the health plane on for direct
// route() probing.
func routeSim(t *testing.T, lb string, n int) *fleetSim {
	t.Helper()
	f, cal := syntheticFleet(t, lb, n, 100)
	withResilience(f, config.ResilienceSpec{Health: &config.HealthSpec{Enabled: true}})
	s := &fleetSim{f: f, cal: cal, res: &Result{}, rp: &resPlane{spec: *f.Block.Resilience}}
	s.machines = make([]machineState, n)
	for i := range s.machines {
		s.machines[i] = machineState{free: 1, up: true, member: true}
	}
	return s
}

func TestHashRoutingStableAcrossMembershipChange(t *testing.T) {
	s := routeSim(t, "hash", 5)
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 7
	}
	before := make([]int, len(keys))
	for i, k := range keys {
		m, ok := s.route(&attempt{rs: &reqState{req: request{hashKey: k}}}, 0)
		if !ok {
			t.Fatal("no route with all members healthy")
		}
		before[i] = m
	}
	// Machine 2 leaves the ring: survivors' keys must not move.
	s.machines[2].member = false
	moved := 0
	for i, k := range keys {
		m, ok := s.route(&attempt{rs: &reqState{req: request{hashKey: k}}}, 0)
		if !ok {
			t.Fatal("no route with four members")
		}
		if before[i] == 2 {
			if m == 2 {
				t.Fatalf("key %d still routed to the departed machine", k)
			}
			moved++
			continue
		}
		if m != before[i] {
			t.Fatalf("key %d remapped %d -> %d though its machine survived", k, before[i], m)
		}
	}
	if moved == 0 {
		t.Fatal("no key ever mapped to the departed machine; test is vacuous")
	}
}

func TestRendezvousPickProperties(t *testing.T) {
	cases := []struct {
		name    string
		members []int
	}{
		{"all", []int{0, 1, 2, 3}},
		{"sparse", []int{1, 3}},
		{"single", []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for k := uint64(0); k < 200; k++ {
				m := rendezvousPick(k*2654435761, tc.members)
				found := false
				for _, c := range tc.members {
					if c == m {
						found = true
					}
				}
				if !found {
					t.Fatalf("key %d picked non-member %d from %v", k, m, tc.members)
				}
				if m2 := rendezvousPick(k*2654435761, tc.members); m2 != m {
					t.Fatalf("pick not deterministic: %d vs %d", m, m2)
				}
			}
		})
	}
}

func TestLeastNeverRoutesToEjectedMachine(t *testing.T) {
	s := routeSim(t, "least", 3)
	// Machine 0 is idle (outstanding 0) but ejected: least must pass it
	// over even though it would win on load.
	s.machines[0].member = false
	s.machines[1].busy = 1
	s.machines[2].busy = 2
	for i := 0; i < 50; i++ {
		m, ok := s.route(&attempt{rs: &reqState{req: request{hashKey: uint64(i)}}}, 0)
		if !ok {
			t.Fatal("no route with two members")
		}
		if m == 0 {
			t.Fatal("least routed to an ejected machine")
		}
		if m != 1 {
			t.Fatalf("least picked machine %d, want the least-loaded member 1", m)
		}
	}
}

func TestRoundRobinSkipsEjectedMachine(t *testing.T) {
	s := routeSim(t, "rr", 3)
	s.machines[1].member = false
	var got []int
	for i := 0; i < 6; i++ {
		m, ok := s.route(&attempt{rs: &reqState{req: request{}}}, 0)
		if !ok {
			t.Fatal("no route")
		}
		got = append(got, m)
	}
	want := []int{0, 2, 0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rr rotation %v, want %v", got, want)
		}
	}
}

// --- satellite: depth accounting semantics and the n==0 guard ---

// TestMeanQueueDepthSemantics pins the documented depth accounting: depth
// is sampled at arrival instants, counts only waiting (queued) requests,
// and excludes the one in service. Trace arrivals every 10 cycles against
// 100-cycle service on one single-server machine: the first arrival
// starts, later ones queue, so the samples are 0,0,1,2,... until the
// first completion.
func TestMeanQueueDepthSemantics(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 1, 100)
	f.Block.Requests = 4
	f.Block.Arrival = config.ArrivalSpec{Process: "trace", GapsCycles: []float64{10}}
	res := f.Simulate(cal, 1) // trace arrivals ignore the rate
	if res.Offered != 4 {
		t.Fatalf("offered %d, want 4", res.Offered)
	}
	// Samples at t=10,20,30,40: depths 0 (starts), 0 (enters service
	// queue... busy, queues: depth sampled before placement = 0), 1, 2.
	if want := (0.0 + 0 + 1 + 2) / 4; res.MeanQueueDepth != want {
		t.Fatalf("MeanQueueDepth = %v, want %v (queued-only, arrival-instant sampling)",
			res.MeanQueueDepth, want)
	}
	if res.MaxQueueDepth != 2 {
		t.Fatalf("MaxQueueDepth = %d, want 2 (the busy request is not depth)", res.MaxQueueDepth)
	}
}

// TestZeroRequestsGuard pins the explicit n<=0 guard: a Requests=0 block
// (reachable when a caller mutates the normalized block, or if the quick
// shrink ever rounds to zero) returns an empty result instead of
// dividing by zero or indexing arrivals[0].
func TestZeroRequestsGuard(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	f.Block.Requests = 0
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	if res.Offered != 0 || res.Completed != 0 || res.Dropped != 0 {
		t.Fatalf("zero-request run produced traffic: %+v", res)
	}
	if res.MeanQueueDepth != 0 || res.DurationCycles != 0 {
		t.Fatalf("zero-request run produced rates: depth %v duration %v",
			res.MeanQueueDepth, res.DurationCycles)
	}
	// Rate 0 takes the same guard.
	f.Block.Requests = 100
	if res := f.Simulate(cal, 0); res.Offered != 0 {
		t.Fatalf("zero-rate run offered %d", res.Offered)
	}
}

// --- timeline integration ---

func TestTimelineResilienceColumns(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 3, 100)
	f.Spec.Timeline = &config.TimelineSpec{Enabled: true, WindowCycles: 10_000}
	withResilience(f, config.ResilienceSpec{
		Retry: &config.RetrySpec{Enabled: true, MaxAttempts: 2, TimeoutCycles: 150},
	})
	bindStorm(t, testStorm(59))
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.8)
	conservation(t, res)
	tl := res.Timeline
	if tl == nil || !tl.Resilience {
		t.Fatal("resilience run did not widen its timeline")
	}
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(),
		"window,start,end,arrivals,completed,dropped,goodput_kops,mean_depth,max_depth,p50_ms,p99_ms,timed_out,shed,failed,retries,hedges\n") {
		t.Fatalf("resilience CSV header missing outcome columns:\n%s", buf.String()[:min(len(buf.String()), 200)])
	}
	// Windowed outcomes sum to the run totals.
	var to, sh, fl, dr, cp uint64
	for i := range tl.Windows {
		w := &tl.Windows[i]
		to += w.TimedOut
		sh += w.Shed
		fl += w.Failed
		dr += w.Dropped
		cp += w.Completed
	}
	if to != res.Resilience.TimedOut || sh != res.Resilience.Shed ||
		fl != res.Resilience.Failed || dr != res.Dropped || cp != res.Completed {
		t.Fatalf("windowed outcomes (to %d sh %d fl %d dr %d cp %d) != totals (%d %d %d %d %d)",
			to, sh, fl, dr, cp,
			res.Resilience.TimedOut, res.Resilience.Shed, res.Resilience.Failed,
			res.Dropped, res.Completed)
	}
}
