package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/stats"
)

// ResilienceStats is the fault-tolerance plane's availability accounting.
// Together with Result.Completed and Result.Dropped it satisfies the fleet
// conservation invariant: Offered == Completed + TimedOut + Shed + Dropped
// + Failed. Hedge duplicates are extra attempts, not extra requests, and
// are accounted separately (Hedges issued, HedgeWins, HedgeCancels).
type ResilienceStats struct {
	TimedOut     uint64 // requests that exhausted their attempt budget on timeouts
	Shed         uint64 // arrivals turned away by admission control
	Failed       uint64 // requests that exhausted their budget on hard failures
	FailedOver   uint64 // completed requests that needed more than one attempt
	Retries      uint64 // retry attempts scheduled
	Hedges       uint64 // hedge attempts issued
	HedgeWins    uint64 // requests whose hedge attempt completed first
	HedgeCancels uint64 // sibling attempts cancelled by a first-wins completion
	ProbesSent   uint64 // health probes sent (per machine per tick)
	ProbesLost   uint64 // probes dropped by the storm's probe-loss schedule
	BreakerOpens uint64 // circuit-breaker open (and half-open reopen) transitions
	Crashes      uint64 // machine crash events
	Brownouts    uint64 // machine brownout-window starts
}

// ResilienceSummary renders the availability accounting the way mcsim's
// -fleet mode prints it: one block of outcome, storm, and attempt lines.
// Empty when the plane was off, so default runs print nothing new.
func (r *Result) ResilienceSummary() string {
	if !r.ResilienceOn {
		return ""
	}
	var down float64
	for _, d := range r.DowntimeCycles {
		down += d
	}
	s := &r.Resilience
	return fmt.Sprintf(
		"  resilience: unavailability %.4f (timed out %d, shed %d, failed %d; failed over %d)\n"+
			"  storm: crashes %d, brownouts %d, downtime %.0f cycles; probes %d sent / %d lost; breaker opens %d\n"+
			"  attempts: retries %d, hedges %d (wins %d, cancels %d)",
		r.Unavailability(), s.TimedOut, s.Shed, s.Failed, s.FailedOver,
		s.Crashes, s.Brownouts, down, s.ProbesSent, s.ProbesLost, s.BreakerOpens,
		s.Retries, s.Hedges, s.HedgeWins, s.HedgeCancels)
}

// breakerState is one machine's circuit-breaker position.
type breakerState uint8

const (
	brClosed breakerState = iota
	brOpen
	brHalfOpen
)

// outcomeCause tags why a request attempt (and ultimately the request)
// failed; the final resolution maps it onto the Result outcome counters.
type outcomeCause uint8

const (
	causeNone    outcomeCause = iota
	causeDropped              // queue full
	causeTimeout              // per-attempt timeout expired
	causeFailed               // machine down / no routable destination
)

// resPlane is the per-run resilience runtime: the normalized spec, the
// fleet storm, calibration-derived timeout and hedge delays, and the
// seeded per-machine fault streams. A nil *resPlane means the event loop
// runs its exact legacy path (no storms, no mitigations).
type resPlane struct {
	spec  config.ResilienceSpec
	storm faultinject.Schedule

	priorities  []int   // per mix entry, for load shedding
	p99Service  float64 // calibrated service-time p99 across the fleet
	timeoutCyc  float64 // per-attempt timeout (0 = none)
	hedgeDelay  float64 // hedge delay from arrival (0 = none)
	brownFactor float64 // service-time multiplier while browned

	crashRng   []*rand.Rand // per-machine crash up/down stream
	brownRng   []*rand.Rand // per-machine brownout stream
	probePhase []uint64     // per-machine probe-loss phase
}

// newResPlane derives the run's resilience runtime from the fleet block
// and the ambient fault collector's schedule. Returns nil when no
// mitigation is enabled and the storm is inert, so a default spec keeps
// Simulate on the byte-identical legacy path.
func (f *Fleet) newResPlane(cal *Calibration) *resPlane {
	var spec config.ResilienceSpec
	if f.Block.Resilience != nil {
		spec = *f.Block.Resilience
	}
	storm := faultinject.AmbientCollector().Schedule()
	if !spec.EnabledAny() && !storm.FleetActive() {
		return nil
	}

	rp := &resPlane{spec: spec, storm: storm}
	for _, mx := range f.Block.Mix {
		rp.priorities = append(rp.priorities, mx.Priority)
	}
	var all stats.Histogram
	for _, mc := range cal.machines {
		for _, v := range mc.samples {
			for _, x := range v {
				all.Add(x)
			}
		}
	}
	rp.p99Service = all.Percentile(99)
	if rt := spec.Retry; rt != nil && rt.Enabled {
		rp.timeoutCyc = rt.TimeoutCycles
		if rp.timeoutCyc == 0 {
			rp.timeoutCyc = rt.TimeoutP99Mult * rp.p99Service
		}
	}
	if h := spec.Hedge; h != nil && h.Enabled {
		rp.hedgeDelay = h.DelayCycles
		if rp.hedgeDelay == 0 {
			rp.hedgeDelay = h.DelayP99Mult * rp.p99Service
		}
	}
	rp.brownFactor = storm.BrownoutFactor
	if rp.brownFactor <= 1 {
		rp.brownFactor = 4
	}

	n := len(cal.machines)
	rp.crashRng = make([]*rand.Rand, n)
	rp.brownRng = make([]*rand.Rand, n)
	rp.probePhase = make([]uint64, n)
	for m := 0; m < n; m++ {
		rp.crashRng[m] = rand.New(rand.NewSource(int64(storm.FleetStreamSeed(m, 0))))
		rp.brownRng[m] = rand.New(rand.NewSource(int64(storm.FleetStreamSeed(m, 1))))
		if storm.ProbeLossEvery > 0 {
			rp.probePhase[m] = storm.FleetStreamSeed(m, 2) % storm.ProbeLossEvery
		}
	}
	return rp
}

// healthEnabled reports whether LB membership is probe-driven.
func (rp *resPlane) healthEnabled() bool {
	return rp != nil && rp.spec.Health != nil && rp.spec.Health.Enabled
}

// retryBudget returns the attempt cap (1 = no retries).
func (rp *resPlane) retryBudget() int {
	if rt := rp.spec.Retry; rt != nil && rt.Enabled {
		return rt.MaxAttempts
	}
	return 1
}

// backoff returns the delay before retry number attempt (the second
// attempt is number 2): exponential from the base, capped.
func (rp *resPlane) backoff(attempt int) float64 {
	rt := rp.spec.Retry
	d := rt.BackoffBaseCycles * math.Pow(2, float64(attempt-2))
	if d > rt.BackoffMaxCycles {
		d = rt.BackoffMaxCycles
	}
	return d
}

// mix64 is the SplitMix64 avalanche, duplicated here for rendezvous
// hashing (faultinject keeps its copy unexported).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvousPick maps a request key onto one of the member machine
// indices by highest random weight. Unlike key % n, removing one member
// never remaps a key that was assigned to a survivor — the property the
// health-checked hash LB needs so membership churn only moves traffic
// that had nowhere else to go.
func rendezvousPick(key uint64, members []int) int {
	best, bestW := -1, uint64(0)
	for _, m := range members {
		w := mix64(key ^ (uint64(m)+1)*0x9e3779b97f4a7c15)
		if best < 0 || w > bestW {
			best, bestW = m, w
		}
	}
	return best
}
