package fleet

import (
	"container/heap"
	"math"
	"strconv"

	"mcsquare/internal/metrics"
	"mcsquare/internal/stats"
)

// Result is one simulated operating point of the fleet.
type Result struct {
	Mechanism string
	Machines  int
	Clock     stats.Clock

	OfferedReqPerCycle float64
	CapacityKOps       float64

	Offered   uint64 // requests generated
	Completed uint64 // requests served to completion
	Dropped   uint64 // arrivals rejected by a full queue

	// Latencies is end-to-end request latency in cycles (queueing + service),
	// in completion order; PerWorkload splits it by mix entry.
	Latencies   *stats.Histogram
	PerWorkload map[string]*stats.Histogram

	// MeanQueueDepth is the fleet-wide queued-request count averaged over
	// arrival instants; MaxQueueDepth is its per-arrival maximum.
	MeanQueueDepth float64
	MaxQueueDepth  int

	// Served counts completions per machine (stable machine index).
	Served []uint64

	// DurationCycles spans the first arrival to the last completion.
	DurationCycles float64

	// Timeline is the run's windowed telemetry (goodput, queue depth, p99,
	// time-to-first-SLO-violation per window). Nil unless the spec's
	// Timeline block enables it.
	Timeline *Timeline
}

// OfferedKOps is the offered load in thousands of requests per second.
func (r *Result) OfferedKOps() float64 {
	return r.OfferedReqPerCycle * r.Clock.CyclesPerSecond() / 1e3
}

// GoodputKOps is the completed-request throughput in thousands of requests
// per second over the run's duration.
func (r *Result) GoodputKOps() float64 {
	if r.DurationCycles == 0 {
		return 0
	}
	return float64(r.Completed) / r.DurationCycles * r.Clock.CyclesPerSecond() / 1e3
}

// PercentileMs reads the end-to-end latency percentile in milliseconds at
// the fleet's clock.
func (r *Result) PercentileMs(p float64) float64 {
	return r.Latencies.Percentile(p) / (float64(r.Clock.CyclesPerSecond()) / 1e3)
}

// request is one generated arrival. Its random draws (workload, service
// sample index, hash key) happen at generation time in arrival order, so
// the stream is identical no matter which machines end up serving it.
type request struct {
	arrive  float64
	wl      int    // mix entry index
	sample  int    // index into the serving machine's sample vector
	hashKey uint64 // consistent-hash routing key
}

// completion is a scheduled request finish on a machine.
type completion struct {
	at  float64
	seq uint64 // tie-break: scheduling order
	m   int
	req request
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// machineState is one machine's runtime queueing state.
type machineState struct {
	free  int // idle servers
	busy  int
	queue []request // FIFO
}

func (m *machineState) outstanding() int { return m.busy + len(m.queue) }

// Simulate drives the calibrated fleet with an open-loop arrival stream at
// the given offered rate (requests per cycle) and returns the operating
// point. The whole pass is a single-threaded seeded event loop:
// byte-identical output for identical inputs.
func (f *Fleet) Simulate(cal *Calibration, rate float64) *Result {
	res := &Result{
		Mechanism:          cal.Mechanism,
		Machines:           len(f.Specs),
		Clock:              f.Clock,
		OfferedReqPerCycle: rate,
		CapacityKOps:       f.CapacityKOps(cal),
		Latencies:          &stats.Histogram{},
		PerWorkload:        map[string]*stats.Histogram{},
		Served:             make([]uint64, len(f.Specs)),
	}
	for _, mx := range f.Block.Mix {
		res.PerWorkload[mx.Workload] = &stats.Histogram{}
	}
	res.Timeline = f.newTimeline() // nil unless the spec enables it
	n := f.Block.Requests
	if f.Quick {
		n = (n + 3) / 4
	}
	if n <= 0 || rate <= 0 {
		return res
	}

	rnd := f.rng()
	cum := make([]float64, len(cal.weights))
	s := 0.0
	for i, w := range cal.weights {
		s += w
		cum[i] = s
	}

	// The arrival stream: every random draw happens here, in order.
	arrivals := make([]request, n)
	now := 0.0
	for i := range arrivals {
		switch f.Block.Arrival.Process {
		case "trace":
			gaps := f.Block.Arrival.GapsCycles
			now += gaps[i%len(gaps)]
		default: // poisson: exponential gaps at the offered rate
			now += rnd.ExpFloat64() / rate
		}
		u := rnd.Float64() * s
		wl := 0
		for u > cum[wl] && wl < len(cum)-1 {
			wl++
		}
		arrivals[i] = request{arrive: now, wl: wl, sample: rnd.Intn(1 << 30), hashKey: rnd.Uint64()}
	}
	res.Offered = uint64(n)

	machines := make([]machineState, len(cal.machines))
	for i := range machines {
		machines[i].free = cal.machines[i].servers
	}
	var (
		pending  completionHeap
		seq      uint64
		rrNext   int
		depthSum float64
		lastDone float64
	)
	service := func(m int, r request) float64 {
		v := cal.machines[m].samples[r.wl]
		return v[r.sample%len(v)]
	}
	start := func(at float64, m int, r request) {
		machines[m].free--
		machines[m].busy++
		heap.Push(&pending, completion{at: at + service(m, r), seq: seq, m: m, req: r})
		seq++
	}
	finish := func(c completion) {
		st := &machines[c.m]
		st.free++
		st.busy--
		res.Completed++
		res.Served[c.m]++
		lat := c.at - c.req.arrive
		res.Latencies.Add(lat)
		res.Timeline.completion(c.at, lat)
		res.PerWorkload[f.Block.Mix[c.req.wl].Workload].Add(lat)
		if c.at > lastDone {
			lastDone = c.at
		}
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			start(c.at, c.m, next)
		}
	}
	route := func(r request) int {
		switch f.Block.LB {
		case "rr":
			m := rrNext % len(machines)
			rrNext++
			return m
		case "hash":
			return int(r.hashKey % uint64(len(machines)))
		default: // least outstanding, ties to the lowest index
			best, bestOut := 0, math.MaxInt
			for i := range machines {
				if out := machines[i].outstanding(); out < bestOut {
					best, bestOut = i, out
				}
			}
			return best
		}
	}

	for _, r := range arrivals {
		// Completions scheduled before (or exactly at) this arrival land
		// first, so balancer state reflects them — and the order is still
		// deterministic because the heap breaks time ties by schedule order.
		for len(pending) > 0 && pending[0].at <= r.arrive {
			finish(heap.Pop(&pending).(completion))
		}
		depth := 0
		for i := range machines {
			depth += len(machines[i].queue)
		}
		depthSum += float64(depth)
		if depth > res.MaxQueueDepth {
			res.MaxQueueDepth = depth
		}
		m := route(r)
		st := &machines[m]
		dropped := false
		switch {
		case st.free > 0:
			start(r.arrive, m, r)
		case len(st.queue) < f.Block.QueueCap:
			st.queue = append(st.queue, r)
		default:
			res.Dropped++
			dropped = true
		}
		res.Timeline.arrival(r.arrive, depth, dropped)
	}
	for len(pending) > 0 {
		finish(heap.Pop(&pending).(completion))
	}
	res.MeanQueueDepth = depthSum / float64(n)
	res.DurationCycles = lastDone - arrivals[0].arrive
	res.Timeline.finalize()
	res.publishMetrics()
	return res
}

// publishMetrics registers the run's counters and SLO histogram with the
// ambient metrics collector (the runner binds one per job), under the
// fleet scope. A run outside any collector skips this.
func (r *Result) publishMetrics() {
	col := metrics.AmbientCollector()
	if col == nil {
		return
	}
	reg := metrics.NewRegistry()
	s := reg.Scope("fleet")
	s.Counter("offered", &r.Offered)
	s.Counter("completed", &r.Completed)
	s.Counter("dropped", &r.Dropped)
	s.Gauge("goodput_kops", r.GoodputKOps)
	s.Gauge("mean_queue_depth", func() float64 { return r.MeanQueueDepth })
	s.Histogram("latency_cycles", r.Latencies)
	for i := range r.Served {
		i := i
		s.Scope("machine").CounterFunc(
			"served_"+strconv.Itoa(i), func() uint64 { return r.Served[i] })
	}
	col.Add(reg)
}
