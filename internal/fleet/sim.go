package fleet

import (
	"container/heap"
	"math"
	"math/rand"
	"strconv"

	"mcsquare/internal/metrics"
	"mcsquare/internal/stats"
)

// Result is one simulated operating point of the fleet.
type Result struct {
	Mechanism string
	Machines  int
	Clock     stats.Clock

	OfferedReqPerCycle float64
	CapacityKOps       float64

	Offered   uint64 // requests generated
	Completed uint64 // requests served to completion
	Dropped   uint64 // requests rejected by a full queue (after any retries)

	// Latencies is end-to-end request latency in cycles (queueing + service),
	// in completion order; PerWorkload splits it by mix entry.
	Latencies   *stats.Histogram
	PerWorkload map[string]*stats.Histogram

	// MeanQueueDepth is the fleet-wide queued-request count averaged over
	// arrival instants; MaxQueueDepth is its per-arrival maximum. The depth
	// deliberately counts only waiting requests, not the ones occupying
	// servers: it is a queueing-delay signal (how much of the fleet's
	// latency is waiting, not service), and sampling at arrival instants
	// weights it exactly the way arriving requests experience it (PASTA).
	// Requests in service are visible separately through utilization
	// (busy servers) and the latency histograms.
	MeanQueueDepth float64
	MaxQueueDepth  int

	// Served counts completions per machine (stable machine index).
	Served []uint64

	// DurationCycles spans the first arrival to the last completion.
	DurationCycles float64

	// Timeline is the run's windowed telemetry (goodput, queue depth, p99,
	// time-to-first-SLO-violation per window). Nil unless the spec's
	// Timeline block enables it.
	Timeline *Timeline

	// ResilienceOn records whether the fault-tolerance plane ran: a
	// mitigation was enabled or a fleet fault storm was active. When false
	// the counters below stay zero and the event loop took the exact
	// legacy path.
	ResilienceOn bool
	// Resilience is the availability accounting; with ResilienceOn the
	// conservation invariant holds:
	// Offered == Completed + TimedOut + Shed + Dropped + Failed.
	Resilience ResilienceStats
	// DowntimeCycles is each machine's total crashed time.
	DowntimeCycles []float64
}

// OfferedKOps is the offered load in thousands of requests per second.
func (r *Result) OfferedKOps() float64 {
	return r.OfferedReqPerCycle * r.Clock.CyclesPerSecond() / 1e3
}

// GoodputKOps is the completed-request throughput in thousands of requests
// per second over the run's duration.
func (r *Result) GoodputKOps() float64 {
	if r.DurationCycles == 0 {
		return 0
	}
	return float64(r.Completed) / r.DurationCycles * r.Clock.CyclesPerSecond() / 1e3
}

// PercentileMs reads the end-to-end latency percentile in milliseconds at
// the fleet's clock.
func (r *Result) PercentileMs(p float64) float64 {
	return r.Latencies.Percentile(p) / (float64(r.Clock.CyclesPerSecond()) / 1e3)
}

// Unavailability is the fraction of offered requests that did not
// complete, whatever the reason (dropped, timed out, shed, failed).
func (r *Result) Unavailability() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Offered-r.Completed) / float64(r.Offered)
}

// request is one generated arrival. Its random draws (workload, service
// sample index, hash key) happen at generation time in arrival order, so
// the stream is identical no matter which machines end up serving it.
type request struct {
	arrive  float64
	wl      int    // mix entry index
	sample  int    // index into the serving machine's sample vector
	hashKey uint64 // consistent-hash routing key
}

// reqState tracks one request across its attempts. With the resilience
// plane off a request has exactly one attempt that either completes or is
// dropped at the door, and everything here stays trivial.
type reqState struct {
	req          request
	attempts     int // primary + retry attempts issued
	hedges       int // hedge attempts issued
	inflight     int // live (queued or serving) attempts
	retryPending bool
	resolved     bool
	lastCause    outcomeCause
	live         []*attempt
}

// attempt is one placement of a request onto a machine. done marks it
// finished or cancelled (timed out, lost a hedge race, crash-flushed);
// a cancelled attempt's scheduled completion still frees its server.
type attempt struct {
	rs    *reqState
	m     int
	epoch uint64 // the machine epoch the attempt started in
	hedge bool
	done  bool
}

// evKind orders the event loop's work. Only evComplete exists on the
// legacy path; everything else belongs to the resilience plane.
type evKind uint8

const (
	evComplete evKind = iota
	evTimeout
	evHedge
	evRetry
	evCrash
	evRecover
	evBrownStart
	evBrownEnd
	evProbe
)

// event is one scheduled occurrence on the fleet timebase.
type event struct {
	at   float64
	seq  uint64 // tie-break: scheduling order
	kind evKind
	m    int       // machine, for machine-scoped events
	a    *attempt  // evComplete / evTimeout
	rs   *reqState // evHedge / evRetry
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// machineState is one machine's runtime queueing and health state.
type machineState struct {
	free  int // idle servers
	busy  int
	queue []*attempt // FIFO; cancelled attempts are skipped at dequeue

	// Resilience-plane state; untouched (zero) on the legacy path.
	up       bool
	browned  bool
	epoch    uint64     // bumped on crash to invalidate stale completions
	inflight []*attempt // attempts currently occupying servers
	downAt   float64

	member     bool // health-checked LB membership
	okProbes   int
	failProbes int
	probeCount uint64

	consecFails int
	brState     breakerState
	brOpenUntil float64
	brHalfOpen  int // trial requests admitted while half-open
}

func (m *machineState) outstanding() int { return m.busy + len(m.queue) }

// fleetSim is the event loop's working state, bundled so the handlers can
// live as methods instead of a wall of closures.
type fleetSim struct {
	f   *Fleet
	cal *Calibration
	res *Result
	rp  *resPlane // nil = legacy path

	machines     []machineState
	pending      eventHeap
	seq          uint64
	rrNext       int
	lastDone     float64
	unresolved   int // requests arrived but not yet resolved
	arrivalsLeft int
}

// Simulate drives the calibrated fleet with an open-loop arrival stream at
// the given offered rate (requests per cycle) and returns the operating
// point. The whole pass is a single-threaded seeded event loop:
// byte-identical output for identical inputs. When the fleet block's
// Resilience spec enables a mitigation, or the ambient fault collector's
// schedule carries a fleet storm, the loop additionally runs the
// fault-tolerance plane; otherwise it executes the exact legacy sequence
// of operations.
func (f *Fleet) Simulate(cal *Calibration, rate float64) *Result {
	res := &Result{
		Mechanism:          cal.Mechanism,
		Machines:           len(f.Specs),
		Clock:              f.Clock,
		OfferedReqPerCycle: rate,
		CapacityKOps:       f.CapacityKOps(cal),
		Latencies:          &stats.Histogram{},
		PerWorkload:        map[string]*stats.Histogram{},
		Served:             make([]uint64, len(f.Specs)),
		DowntimeCycles:     make([]float64, len(f.Specs)),
	}
	for _, mx := range f.Block.Mix {
		res.PerWorkload[mx.Workload] = &stats.Histogram{}
	}
	n := f.Block.Requests
	if f.Quick {
		n = (n + 3) / 4
	}
	s := &fleetSim{f: f, cal: cal, res: res}
	s.rp = f.newResPlane(cal)
	res.ResilienceOn = s.rp != nil
	res.Timeline = f.newTimeline() // nil unless the spec enables it
	if res.Timeline != nil {
		res.Timeline.Resilience = res.ResilienceOn
	}
	// The explicit n guard keeps the mean-depth division and the
	// first-arrival index safe even if the quick-scale shrink above ever
	// changes: past this point len(arrivals) > 0.
	if n <= 0 || rate <= 0 {
		return res
	}

	rnd := f.rng()
	cum := make([]float64, len(cal.weights))
	sum := 0.0
	for i, w := range cal.weights {
		sum += w
		cum[i] = sum
	}

	// The arrival stream: every random draw happens here, in order. The
	// resilience plane draws from its own per-machine streams, so this
	// sequence is identical with the plane on or off.
	arrivals := make([]request, n)
	now := 0.0
	for i := range arrivals {
		switch f.Block.Arrival.Process {
		case "trace":
			gaps := f.Block.Arrival.GapsCycles
			now += gaps[i%len(gaps)]
		default: // poisson: exponential gaps at the offered rate
			now += rnd.ExpFloat64() / rate
		}
		u := rnd.Float64() * sum
		wl := 0
		for u > cum[wl] && wl < len(cum)-1 {
			wl++
		}
		arrivals[i] = request{arrive: now, wl: wl, sample: rnd.Intn(1 << 30), hashKey: rnd.Uint64()}
	}
	res.Offered = uint64(n)

	s.machines = make([]machineState, len(cal.machines))
	for i := range s.machines {
		s.machines[i].free = cal.machines[i].servers
		s.machines[i].up = true
		s.machines[i].member = true
	}
	s.arrivalsLeft = n
	s.scheduleStorm()

	depthSum := 0.0
	for _, r := range arrivals {
		// Events scheduled before (or exactly at) this arrival land first,
		// so balancer state reflects them — and the order is still
		// deterministic because the heap breaks time ties by schedule order.
		for len(s.pending) > 0 && s.pending[0].at <= r.arrive {
			s.handle(heap.Pop(&s.pending).(event))
		}
		depth := 0
		for i := range s.machines {
			depth += len(s.machines[i].queue)
		}
		depthSum += float64(depth)
		if depth > res.MaxQueueDepth {
			res.MaxQueueDepth = depth
		}
		dropped := s.arrive(r)
		s.arrivalsLeft--
		res.Timeline.arrival(r.arrive, depth, dropped)
	}
	for len(s.pending) > 0 {
		s.handle(heap.Pop(&s.pending).(event))
	}
	// Defensive: the loop above drains every live attempt, so nothing
	// should remain unresolved; if it ever does, account it as failed so
	// the conservation invariant (which tests assert) still closes.
	s.sweepUnresolved()
	res.MeanQueueDepth = depthSum / float64(len(arrivals))
	res.DurationCycles = s.lastDone - arrivals[0].arrive
	res.Timeline.finalize()
	res.publishMetrics()
	return res
}

// arrive admits, sheds, or places one arriving request. The returned flag
// reports a legacy at-the-door queue drop (for the timeline's
// arrival-instant accounting); with the plane on, drops resolve later.
func (s *fleetSim) arrive(r request) bool {
	rs := &reqState{req: r}
	s.unresolved++
	if s.rp != nil && s.shouldShed(r.wl) {
		rs.resolved = true
		s.unresolved--
		s.res.Resilience.Shed++
		s.res.Timeline.shed(r.arrive)
		return false
	}
	rs.attempts = 1
	a := &attempt{rs: rs}
	rs.live = append(rs.live, a)
	rs.inflight++
	dropped := s.dispatch(a, r.arrive)
	if s.rp != nil && s.rp.hedgeDelay > 0 && !rs.resolved {
		s.push(event{at: r.arrive + s.rp.hedgeDelay, kind: evHedge, rs: rs})
	}
	return dropped
}

// handle routes one popped event to its handler.
func (s *fleetSim) handle(e event) {
	switch e.kind {
	case evComplete:
		s.complete(e)
	case evTimeout:
		s.timeout(e)
	case evHedge:
		s.hedge(e)
	case evRetry:
		s.retry(e)
	case evCrash:
		s.crash(e)
	case evRecover:
		s.recover(e)
	case evBrownStart:
		s.brownStart(e)
	case evBrownEnd:
		s.brownEnd(e)
	case evProbe:
		s.probe(e)
	}
}

// push schedules an event, stamping the deterministic tie-break sequence.
func (s *fleetSim) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.pending, e)
}

// moreWork reports whether anything can still need servicing; recurring
// events (storm transitions, probes) reschedule themselves only while it
// holds, so the heap always drains.
func (s *fleetSim) moreWork() bool {
	return s.arrivalsLeft > 0 || s.unresolved > 0
}

// service reads the calibrated service time for a request on machine m.
func (s *fleetSim) service(m int, r request) float64 {
	v := s.cal.machines[m].samples[r.wl]
	return v[r.sample%len(v)]
}

// expo draws one exponential duration with the given mean from a
// per-machine storm stream.
func (s *fleetSim) expo(m int, rngs []*rand.Rand, mean float64) float64 {
	return rngs[m].ExpFloat64() * mean
}

// scheduleStorm seeds the initial crash/brownout transitions and the
// health-probe tick. No-op on the legacy path.
func (s *fleetSim) scheduleStorm() {
	if s.rp == nil {
		return
	}
	if s.rp.storm.CrashMeanUpCycles > 0 {
		for m := range s.machines {
			s.push(event{at: s.expo(m, s.rp.crashRng, s.rp.storm.CrashMeanUpCycles), kind: evCrash, m: m})
		}
	}
	if s.rp.storm.BrownoutMeanUpCycles > 0 {
		for m := range s.machines {
			s.push(event{at: s.expo(m, s.rp.brownRng, s.rp.storm.BrownoutMeanUpCycles), kind: evBrownStart, m: m})
		}
	}
	if s.rp.healthEnabled() {
		s.push(event{at: s.rp.spec.Health.ProbeIntervalCycles, kind: evProbe})
	}
}

// dispatch routes one attempt through the LB and places it: start, queue,
// or fail. Returns true only for a legacy at-the-door drop.
func (s *fleetSim) dispatch(a *attempt, now float64) bool {
	m, ok := s.route(a, now)
	if !ok {
		// No member machine the breakers will admit: the attempt has no
		// destination and fails immediately.
		s.attemptFail(a, now, causeFailed)
		return false
	}
	a.m = m
	st := &s.machines[m]
	if s.rp != nil {
		if st.brState == brHalfOpen {
			st.brHalfOpen++
		}
		if !st.up {
			// The balancer cannot see a crash the health checks have not
			// caught yet; the placement fails on arrival at the machine.
			s.recordFailure(m, now)
			s.attemptFail(a, now, causeFailed)
			return false
		}
		if s.rp.timeoutCyc > 0 {
			s.push(event{at: now + s.rp.timeoutCyc, kind: evTimeout, m: m, a: a})
		}
	}
	switch {
	case st.free > 0:
		s.start(now, m, a)
	case len(st.queue) < s.f.Block.QueueCap:
		st.queue = append(st.queue, a)
	default:
		if s.rp == nil {
			s.res.Dropped++
			a.rs.resolved = true
			s.unresolved--
			return true
		}
		s.recordFailure(m, now)
		s.attemptFail(a, now, causeDropped)
	}
	return false
}

// route picks the destination machine. On the legacy path this is the
// original policy over all machines; with the plane on, only members the
// circuit breakers admit are candidates (hash switches from key % n to
// rendezvous hashing so membership churn does not remap survivors).
func (s *fleetSim) route(a *attempt, now float64) (int, bool) {
	n := len(s.machines)
	if s.rp == nil {
		switch s.f.Block.LB {
		case "rr":
			m := s.rrNext % n
			s.rrNext++
			return m, true
		case "hash":
			return int(a.rs.req.hashKey % uint64(n)), true
		default: // least outstanding, ties to the lowest index
			best, bestOut := 0, math.MaxInt
			for i := range s.machines {
				if out := s.machines[i].outstanding(); out < bestOut {
					best, bestOut = i, out
				}
			}
			return best, true
		}
	}
	var members []int
	for i := range s.machines {
		if s.machines[i].member && s.breakerAllows(i, now) {
			members = append(members, i)
		}
	}
	if len(members) == 0 {
		return 0, false
	}
	switch s.f.Block.LB {
	case "rr":
		// Advance past non-members so the rotation only lands on
		// routable machines.
		for range s.machines {
			m := s.rrNext % n
			s.rrNext++
			for _, c := range members {
				if c == m {
					return m, true
				}
			}
		}
		return members[0], true
	case "hash":
		return rendezvousPick(a.rs.req.hashKey, members), true
	default:
		best, bestOut := -1, math.MaxInt
		for _, i := range members {
			if out := s.machines[i].outstanding(); out < bestOut {
				best, bestOut = i, out
			}
		}
		return best, true
	}
}

// start occupies one server of m with the attempt and schedules its
// completion; brownouts inflate the calibrated service time.
func (s *fleetSim) start(at float64, m int, a *attempt) {
	st := &s.machines[m]
	st.free--
	st.busy++
	svc := s.service(m, a.rs.req)
	if st.browned {
		svc *= s.rp.brownFactor
	}
	a.epoch = st.epoch
	if s.rp != nil {
		st.inflight = append(st.inflight, a)
	}
	s.push(event{at: at + svc, kind: evComplete, m: m, a: a})
}

// complete handles a service completion: resolve the request (first
// attempt wins), free the server, and pull the next queued attempt.
func (s *fleetSim) complete(e event) {
	a := e.a
	st := &s.machines[e.m]
	if s.rp != nil && a.epoch != st.epoch {
		return // the machine crashed since; its server pool was reset
	}
	st.free++
	st.busy--
	if s.rp != nil {
		s.removeInflight(st, a)
	}
	if !a.done {
		a.done = true
		rs := a.rs
		rs.inflight--
		s.recordSuccess(e.m)
		if !rs.resolved {
			rs.resolved = true
			s.unresolved--
			s.res.Completed++
			s.res.Served[e.m]++
			lat := e.at - rs.req.arrive
			s.res.Latencies.Add(lat)
			s.res.Timeline.completion(e.at, lat)
			s.res.PerWorkload[s.f.Block.Mix[rs.req.wl].Workload].Add(lat)
			if e.at > s.lastDone {
				s.lastDone = e.at
			}
			if rs.attempts > 1 {
				s.res.Resilience.FailedOver++
			}
			if a.hedge {
				s.res.Resilience.HedgeWins++
			}
			s.cancelSiblings(rs, a)
		}
	}
	for len(st.queue) > 0 {
		next := st.queue[0]
		st.queue = st.queue[1:]
		if next.done {
			continue // cancelled while waiting; skip to the next
		}
		s.start(e.at, e.m, next)
		break
	}
}

// removeInflight drops a from the machine's serving list.
func (s *fleetSim) removeInflight(st *machineState, a *attempt) {
	for i, x := range st.inflight {
		if x == a {
			st.inflight = append(st.inflight[:i], st.inflight[i+1:]...)
			return
		}
	}
}

// cancelSiblings marks the request's other live attempts cancelled after
// a first-wins completion; their servers drain on their own schedule.
func (s *fleetSim) cancelSiblings(rs *reqState, winner *attempt) {
	for _, l := range rs.live {
		if l != winner && !l.done {
			l.done = true
			rs.inflight--
			s.res.Resilience.HedgeCancels++
		}
	}
}

// timeout expires one attempt. The work it may still occupy a server
// with is not reclaimed — the machine finishes it obliviously — but the
// request moves on: retry if budget remains, else resolve.
func (s *fleetSim) timeout(e event) {
	a := e.a
	if a.done || a.rs.resolved {
		return
	}
	a.done = true
	a.rs.inflight--
	s.recordFailure(a.m, e.at)
	s.retryOrResolve(a.rs, e.at, causeTimeout)
}

// attemptFail marks one attempt dead at issue time and escalates.
func (s *fleetSim) attemptFail(a *attempt, now float64, cause outcomeCause) {
	a.done = true
	a.rs.inflight--
	s.retryOrResolve(a.rs, now, cause)
}

// retryOrResolve decides a failed attempt's request fate: schedule a
// backoff retry while budget remains, wait on still-live siblings, or
// resolve the request as failed.
func (s *fleetSim) retryOrResolve(rs *reqState, now float64, cause outcomeCause) {
	rs.lastCause = cause
	if rs.resolved {
		return
	}
	if !rs.retryPending && rs.attempts < s.rp.retryBudget() {
		rs.retryPending = true
		s.res.Resilience.Retries++
		s.res.Timeline.retry(now)
		s.push(event{at: now + s.rp.backoff(rs.attempts+1), kind: evRetry, rs: rs})
		return
	}
	if rs.inflight > 0 || rs.retryPending {
		return // a hedge (or an already-scheduled retry) may still win
	}
	s.resolveFailure(rs, now, rs.lastCause)
}

// resolveFailure finalizes a request that will never complete.
func (s *fleetSim) resolveFailure(rs *reqState, now float64, cause outcomeCause) {
	rs.resolved = true
	s.unresolved--
	switch cause {
	case causeDropped:
		s.res.Dropped++
	case causeTimeout:
		s.res.Resilience.TimedOut++
	default:
		s.res.Resilience.Failed++
	}
	s.res.Timeline.failure(now, cause)
}

// retry re-issues a request through the LB after its backoff.
func (s *fleetSim) retry(e event) {
	rs := e.rs
	rs.retryPending = false
	if rs.resolved {
		return
	}
	rs.attempts++
	a := &attempt{rs: rs}
	rs.live = append(rs.live, a)
	rs.inflight++
	s.dispatch(a, e.at)
}

// hedge issues a duplicate attempt for a still-unresolved request.
func (s *fleetSim) hedge(e event) {
	rs := e.rs
	if rs.resolved || rs.inflight == 0 {
		return // already decided, or nothing outstanding to duplicate
	}
	h := s.rp.spec.Hedge
	if rs.hedges >= h.MaxHedges {
		return
	}
	rs.hedges++
	s.res.Resilience.Hedges++
	s.res.Timeline.hedge(e.at)
	a := &attempt{rs: rs, hedge: true}
	rs.live = append(rs.live, a)
	rs.inflight++
	s.dispatch(a, e.at)
	if !rs.resolved && rs.hedges < h.MaxHedges {
		s.push(event{at: e.at + s.rp.hedgeDelay, kind: evHedge, rs: rs})
	}
}

// crash takes a machine down: every queued and in-service attempt fails
// over (or out), the server pool resets, and the epoch bump invalidates
// the stale completions still in the heap.
func (s *fleetSim) crash(e event) {
	st := &s.machines[e.m]
	if !st.up {
		return
	}
	st.up = false
	st.epoch++
	st.downAt = e.at
	s.res.Resilience.Crashes++
	inflight := st.inflight
	st.inflight = nil
	for _, a := range inflight {
		if !a.done {
			a.done = true
			a.rs.inflight--
			s.recordFailure(e.m, e.at)
			s.retryOrResolve(a.rs, e.at, causeFailed)
		}
	}
	queue := st.queue
	st.queue = nil
	for _, a := range queue {
		if !a.done {
			a.done = true
			a.rs.inflight--
			s.retryOrResolve(a.rs, e.at, causeFailed)
		}
	}
	st.busy = 0
	st.free = s.cal.machines[e.m].servers
	if s.moreWork() {
		s.push(event{at: e.at + s.expo(e.m, s.rp.crashRng, s.rp.storm.CrashMeanDownCycles), kind: evRecover, m: e.m})
	}
}

// recover brings a crashed machine back up (health checks readmit it on
// their own schedule; without them it serves again immediately).
func (s *fleetSim) recover(e event) {
	st := &s.machines[e.m]
	st.up = true
	s.res.DowntimeCycles[e.m] += e.at - st.downAt
	if s.moreWork() {
		s.push(event{at: e.at + s.expo(e.m, s.rp.crashRng, s.rp.storm.CrashMeanUpCycles), kind: evCrash, m: e.m})
	}
}

// brownStart begins a brownout window: new service starts on the machine
// run brownFactor times slower until it ends.
func (s *fleetSim) brownStart(e event) {
	st := &s.machines[e.m]
	st.browned = true
	s.res.Resilience.Brownouts++
	s.push(event{at: e.at + s.expo(e.m, s.rp.brownRng, s.rp.storm.BrownoutMeanCycles), kind: evBrownEnd, m: e.m})
}

// brownEnd closes the window and schedules the next one.
func (s *fleetSim) brownEnd(e event) {
	s.machines[e.m].browned = false
	if s.moreWork() {
		s.push(event{at: e.at + s.expo(e.m, s.rp.brownRng, s.rp.storm.BrownoutMeanUpCycles), kind: evBrownStart, m: e.m})
	}
}

// probe runs one global health-check tick over every machine in stable
// index order, applying the storm's counter-based probe loss and the
// fail/restore membership thresholds.
func (s *fleetSim) probe(e event) {
	hc := s.rp.spec.Health
	for m := range s.machines {
		st := &s.machines[m]
		st.probeCount++
		s.res.Resilience.ProbesSent++
		lost := false
		if every := s.rp.storm.ProbeLossEvery; every > 0 {
			lost = (st.probeCount-1)%every == s.rp.probePhase[m]
			if lost {
				s.res.Resilience.ProbesLost++
			}
		}
		if st.up && !lost {
			st.okProbes++
			st.failProbes = 0
			if !st.member && st.okProbes >= hc.RestoreThreshold {
				st.member = true
			}
		} else {
			st.failProbes++
			st.okProbes = 0
			if st.member && st.failProbes >= hc.FailThreshold {
				st.member = false
			}
		}
	}
	if s.moreWork() {
		s.push(event{at: e.at + hc.ProbeIntervalCycles, kind: evProbe})
	}
}

// shouldShed applies admission control at an arrival instant: during
// overload (busy servers over member capacity at or past the threshold),
// mix entries below the priority floor are turned away.
func (s *fleetSim) shouldShed(wl int) bool {
	sh := s.rp.spec.Shed
	if sh == nil || !sh.Enabled {
		return false
	}
	if s.rp.priorities[wl] >= sh.PriorityFloor {
		return false
	}
	busy, capacity := 0, 0
	for i := range s.machines {
		if !s.machines[i].member {
			continue
		}
		busy += s.machines[i].busy
		capacity += s.cal.machines[i].servers
	}
	if capacity == 0 {
		return true // no member capacity at all
	}
	return float64(busy)/float64(capacity) >= sh.UtilizationHigh
}

// recordFailure feeds the per-machine circuit breaker (and its
// consecutive-failure counter) after a failed placement or timeout.
func (s *fleetSim) recordFailure(m int, now float64) {
	if s.rp == nil {
		return
	}
	st := &s.machines[m]
	st.consecFails++
	br := s.rp.spec.Breaker
	if br == nil || !br.Enabled {
		return
	}
	switch st.brState {
	case brHalfOpen:
		st.brState = brOpen
		st.brOpenUntil = now + br.OpenCycles
		st.brHalfOpen = 0
		s.res.Resilience.BreakerOpens++
	case brClosed:
		if st.consecFails >= br.FailThreshold {
			st.brState = brOpen
			st.brOpenUntil = now + br.OpenCycles
			s.res.Resilience.BreakerOpens++
		}
	}
}

// recordSuccess resets the failure streak and closes a half-open breaker.
func (s *fleetSim) recordSuccess(m int) {
	if s.rp == nil {
		return
	}
	st := &s.machines[m]
	st.consecFails = 0
	if st.brState == brHalfOpen {
		st.brState = brClosed
		st.brHalfOpen = 0
	}
}

// breakerAllows reports whether the machine's breaker admits a request
// now, transitioning open → half-open once the open window elapses.
func (s *fleetSim) breakerAllows(m int, now float64) bool {
	br := s.rp.spec.Breaker
	if br == nil || !br.Enabled {
		return true
	}
	st := &s.machines[m]
	switch st.brState {
	case brOpen:
		if now < st.brOpenUntil {
			return false
		}
		st.brState = brHalfOpen
		st.brHalfOpen = 0
		return true
	case brHalfOpen:
		return st.brHalfOpen < br.HalfOpenProbes
	}
	return true
}

// sweepUnresolved closes the conservation invariant if any request
// somehow survived the drain (it should not; see Simulate).
func (s *fleetSim) sweepUnresolved() {
	if s.unresolved == 0 {
		return
	}
	s.res.Resilience.Failed += uint64(s.unresolved)
	s.unresolved = 0
}

// publishMetrics registers the run's counters and SLO histogram with the
// ambient metrics collector (the runner binds one per job), under the
// fleet scope. A run outside any collector skips this.
func (r *Result) publishMetrics() {
	col := metrics.AmbientCollector()
	if col == nil {
		return
	}
	reg := metrics.NewRegistry()
	r.PublishInto(reg)
	col.Add(reg)
}

// PublishInto registers the result's fleet.* metrics on reg: the run
// counters, derived gauges, latency histogram, per-machine served
// counters, and — under fleet.resilience — the availability accounting
// (the conformance counter audit walks these against the struct fields).
func (r *Result) PublishInto(reg *metrics.Registry) {
	s := reg.Scope("fleet")
	s.Counter("offered", &r.Offered)
	s.Counter("completed", &r.Completed)
	s.Counter("dropped", &r.Dropped)
	s.Gauge("goodput_kops", r.GoodputKOps)
	s.Gauge("mean_queue_depth", func() float64 { return r.MeanQueueDepth })
	s.Histogram("latency_cycles", r.Latencies)
	for i := range r.Served {
		s.Scope("machine").CounterFunc(
			"served_"+strconv.Itoa(i), func() uint64 { return r.Served[i] })
	}
	rs := s.Scope("resilience")
	rs.Counter("timed_out", &r.Resilience.TimedOut)
	rs.Counter("shed", &r.Resilience.Shed)
	rs.Counter("failed", &r.Resilience.Failed)
	rs.Counter("failed_over", &r.Resilience.FailedOver)
	rs.Counter("retries", &r.Resilience.Retries)
	rs.Counter("hedges", &r.Resilience.Hedges)
	rs.Counter("hedge_wins", &r.Resilience.HedgeWins)
	rs.Counter("hedge_cancels", &r.Resilience.HedgeCancels)
	rs.Counter("probes_sent", &r.Resilience.ProbesSent)
	rs.Counter("probes_lost", &r.Resilience.ProbesLost)
	rs.Counter("breaker_opens", &r.Resilience.BreakerOpens)
	rs.Counter("crashes", &r.Resilience.Crashes)
	rs.Counter("brownouts", &r.Resilience.Brownouts)
	for i := range r.DowntimeCycles {
		s.Scope("machine").Gauge(
			"downtime_cycles_"+strconv.Itoa(i), func() float64 { return r.DowntimeCycles[i] })
	}
}
