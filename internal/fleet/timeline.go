package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
)

// Timeline is the fleet event loop's windowed telemetry: per-window
// arrivals, completions, drops, queue depth, and latency percentiles,
// plus the time-to-first-SLO-violation under the spec's p99 objective.
// It exists on a Result only when the spec's Timeline block enables it,
// and — like everything in the fleet layer — is a pure function of the
// seeded event history, so two runs produce byte-identical exports.
type Timeline struct {
	WindowCycles uint64
	SLOP99Ms     float64
	Clock        stats.Clock
	Windows      []TimelineWindow

	// Resilience widens the export with the fault-tolerance plane's
	// per-window outcome columns. Off (and the export byte-identical to
	// the legacy shape) unless the run's resilience plane was active.
	Resilience bool

	// SLOViolated reports whether any window's p99 exceeded SLOP99Ms;
	// FirstViolation is the first such window's index (windows are
	// checked in time order, so its End is the time-to-first-violation
	// in cycles). Meaningful only when SLOP99Ms > 0.
	SLOViolated    bool
	FirstViolation int
}

// TimelineWindow is one [Start, End) interval of fleet time. Arrivals,
// drops, and depth samples are attributed by arrival instant; completions
// and latency by completion instant.
type TimelineWindow struct {
	Index     int
	Start     float64 // cycles
	End       float64
	Arrivals  uint64
	Completed uint64
	Dropped   uint64
	MaxDepth  int

	// Resilience-plane outcomes, attributed by resolution (or issue)
	// instant; all zero when the plane is off.
	TimedOut uint64
	Shed     uint64
	Failed   uint64
	Retries  uint64
	Hedges   uint64

	depthSum     float64
	depthSamples uint64
	lat          stats.Histogram
}

// MeanDepth is the window's queued-request count averaged over its
// arrival instants (0 with no arrivals).
func (w *TimelineWindow) MeanDepth() float64 {
	if w.depthSamples == 0 {
		return 0
	}
	return w.depthSum / float64(w.depthSamples)
}

// PercentileCycles reads the window's completion-latency percentile.
func (w *TimelineWindow) PercentileCycles(p float64) float64 { return w.lat.Percentile(p) }

// newTimeline builds the accumulator from the spec's Timeline block, or
// returns nil when the block is absent or disabled.
func (f *Fleet) newTimeline() *Timeline {
	ts := f.Spec.Timeline
	if ts == nil || !ts.Enabled {
		return nil
	}
	w := ts.WindowCycles
	if w == 0 {
		w = timeline.DefaultWindowCycles
	}
	return &Timeline{WindowCycles: w, SLOP99Ms: ts.SLOP99Ms, Clock: f.Clock, FirstViolation: -1}
}

// win returns the window covering fleet time t, growing the list (and
// zero-filling any skipped windows) as time advances.
func (t *Timeline) win(at float64) *TimelineWindow {
	idx := int(at / float64(t.WindowCycles))
	if idx < 0 {
		idx = 0
	}
	for len(t.Windows) <= idx {
		i := len(t.Windows)
		t.Windows = append(t.Windows, TimelineWindow{
			Index: i,
			Start: float64(i) * float64(t.WindowCycles),
			End:   float64(i+1) * float64(t.WindowCycles),
		})
	}
	return &t.Windows[idx]
}

// arrival records an arrival-instant observation (depth sampled before
// the routing decision, matching the fleet-wide MeanQueueDepth).
func (t *Timeline) arrival(at float64, depth int, dropped bool) {
	if t == nil {
		return
	}
	w := t.win(at)
	w.Arrivals++
	w.depthSum += float64(depth)
	w.depthSamples++
	if depth > w.MaxDepth {
		w.MaxDepth = depth
	}
	if dropped {
		w.Dropped++
	}
}

// completion records a served request at its completion instant.
func (t *Timeline) completion(at, latCycles float64) {
	if t == nil {
		return
	}
	w := t.win(at)
	w.Completed++
	w.lat.Add(latCycles)
}

// shed records an arrival turned away by admission control.
func (t *Timeline) shed(at float64) {
	if t == nil {
		return
	}
	t.win(at).Shed++
}

// failure records a request resolved without completing, at its
// resolution instant (queue drops under the resilience plane land here
// rather than on the arrival-instant Dropped flag, because retries may
// still have saved them).
func (t *Timeline) failure(at float64, cause outcomeCause) {
	if t == nil {
		return
	}
	w := t.win(at)
	switch cause {
	case causeDropped:
		w.Dropped++
	case causeTimeout:
		w.TimedOut++
	default:
		w.Failed++
	}
}

// retry records a scheduled retry attempt.
func (t *Timeline) retry(at float64) {
	if t == nil {
		return
	}
	t.win(at).Retries++
}

// hedge records an issued hedge attempt.
func (t *Timeline) hedge(at float64) {
	if t == nil {
		return
	}
	t.win(at).Hedges++
}

// finalize computes the SLO verdict once the event loop drains.
func (t *Timeline) finalize() {
	if t == nil || t.SLOP99Ms <= 0 {
		return
	}
	for i := range t.Windows {
		w := &t.Windows[i]
		if w.Completed == 0 {
			continue
		}
		if t.msOf(w.lat.Percentile(99)) > t.SLOP99Ms {
			t.SLOViolated = true
			t.FirstViolation = i
			return
		}
	}
}

// msOf converts cycles to milliseconds at the fleet's clock.
func (t *Timeline) msOf(cycles float64) float64 {
	return cycles / (t.Clock.CyclesPerSecond() / 1e3)
}

// goodputKOps is a window's completion throughput in kOps/s.
func (t *Timeline) goodputKOps(w *TimelineWindow) float64 {
	return float64(w.Completed) / float64(t.WindowCycles) * t.Clock.CyclesPerSecond() / 1e3
}

// TimeToFirstViolationMs is the end of the first violating window in
// milliseconds from run start, or -1 when the SLO held (or was unset).
func (t *Timeline) TimeToFirstViolationMs() float64 {
	if !t.SLOViolated {
		return -1
	}
	return t.msOf(t.Windows[t.FirstViolation].End)
}

// windowView is a TimelineWindow rendered for export: raw counts plus the
// derived per-window rates and latency percentiles.
type windowView struct {
	Index       int     `json:"index"`
	Start       float64 `json:"start"`
	End         float64 `json:"end"`
	Arrivals    uint64  `json:"arrivals"`
	Completed   uint64  `json:"completed"`
	Dropped     uint64  `json:"dropped"`
	GoodputKOps float64 `json:"goodput_kops"`
	MeanDepth   float64 `json:"mean_depth"`
	MaxDepth    int     `json:"max_depth"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`

	// Resilience-plane columns; omitted from JSON (and absent from CSV)
	// when the plane was off, so legacy exports are byte-identical.
	TimedOut uint64 `json:"timed_out,omitempty"`
	Shed     uint64 `json:"shed,omitempty"`
	Failed   uint64 `json:"failed,omitempty"`
	Retries  uint64 `json:"retries,omitempty"`
	Hedges   uint64 `json:"hedges,omitempty"`
}

func (t *Timeline) view(w *TimelineWindow) windowView {
	v := windowView{
		Index: w.Index, Start: w.Start, End: w.End,
		Arrivals: w.Arrivals, Completed: w.Completed, Dropped: w.Dropped,
		GoodputKOps: t.goodputKOps(w),
		MeanDepth:   w.MeanDepth(), MaxDepth: w.MaxDepth,
		P50Ms: t.msOf(w.lat.Percentile(50)), P99Ms: t.msOf(w.lat.Percentile(99)),
	}
	if t.Resilience {
		v.TimedOut, v.Shed, v.Failed = w.TimedOut, w.Shed, w.Failed
		v.Retries, v.Hedges = w.Retries, w.Hedges
	}
	return v
}

// WriteJSON writes the fleet timeline as one indented JSON document.
func (t *Timeline) WriteJSON(w io.Writer) error {
	doc := struct {
		WindowCycles   uint64       `json:"window_cycles"`
		SLOP99Ms       float64      `json:"slo_p99_ms,omitempty"`
		SLOViolated    bool         `json:"slo_violated"`
		FirstViolation int          `json:"first_violation_window"`
		Windows        []windowView `json:"windows"`
	}{
		WindowCycles: t.WindowCycles, SLOP99Ms: t.SLOP99Ms,
		SLOViolated: t.SLOViolated, FirstViolation: t.FirstViolation,
		Windows: make([]windowView, len(t.Windows)),
	}
	for i := range t.Windows {
		doc.Windows[i] = t.view(&t.Windows[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV writes the fleet timeline as flat CSV rows. Resilience runs
// append the per-window outcome columns; legacy runs keep the exact
// legacy header and row shape.
func (t *Timeline) WriteCSV(w io.Writer) error {
	header := "window,start,end,arrivals,completed,dropped,goodput_kops,mean_depth,max_depth,p50_ms,p99_ms"
	if t.Resilience {
		header += ",timed_out,shed,failed,retries,hedges"
	}
	if _, err := io.WriteString(w, header+"\n"); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for i := range t.Windows {
		v := t.view(&t.Windows[i])
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%s,%s,%d,%s,%s",
			v.Index, g(v.Start), g(v.End), v.Arrivals, v.Completed, v.Dropped,
			g(v.GoodputKOps), g(v.MeanDepth), v.MaxDepth, g(v.P50Ms), g(v.P99Ms)); err != nil {
			return err
		}
		if t.Resilience {
			if _, err := fmt.Fprintf(w, ",%d,%d,%d,%d,%d",
				v.TimedOut, v.Shed, v.Failed, v.Retries, v.Hedges); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// Write picks the format from the file name, like timeline.Write.
func (t *Timeline) Write(w io.Writer, name string) error {
	if len(name) > 4 && name[len(name)-4:] == ".csv" {
		return t.WriteCSV(w)
	}
	return t.WriteJSON(w)
}
