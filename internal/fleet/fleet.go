// Package fleet scales the single-machine simulator out to a serving
// fleet: N machines instantiated from one config.MachineSpec (or
// heterogeneous groups layering spec overrides), driven by a deterministic
// open-loop request generator through a pluggable load balancer, with
// per-request end-to-end latency accounted into SLO histograms.
//
// The layer is deliberately two-phase. Calibration runs the real
// cycle-accurate simulator — one small run per (machine, workload family)
// with the machine's own lowered params, seed, and fault plane — and keeps
// each run's per-request latency histogram as that machine's service-time
// distribution. Simulation then replays an arrival stream against those
// distributions with an event-driven queueing model, which is cheap enough
// to sweep offered load across a dozen operating points. Both phases are
// seeded and single-threaded, so a fleet run is byte-identical across
// hosts, -jobs values, and machine instantiation orders (fault planes are
// pinned to the machine's stable index, not creation order).
package fleet

import (
	"fmt"
	"math/rand"

	"mcsquare/internal/config"
	"mcsquare/internal/copykit"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/machine"
	"mcsquare/internal/stats"
	"mcsquare/internal/workloads/kvsnap"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/protobuf"
)

// Options scales a fleet run.
type Options struct {
	// Quick shrinks calibration runs and the arrival stream so tests and
	// smoke runs finish fast; the curve shapes survive.
	Quick bool
}

// Fleet is a spec expanded into per-machine specs plus the normalized
// fleet block, ready to calibrate and simulate.
type Fleet struct {
	Spec  config.MachineSpec   // the base spec (fleet block intact)
	Block config.FleetSpec     // normalized fleet block
	Specs []config.MachineSpec // one lowered-ready spec per machine
	Clock stats.Clock
	Quick bool
}

// New expands spec into a fleet. A spec without a fleet block gets
// config.DefaultFleet().
func New(spec config.MachineSpec, o Options) (*Fleet, error) {
	var block config.FleetSpec
	if spec.Fleet != nil {
		block = *spec.Fleet
	} else {
		block = config.DefaultFleet()
	}
	block = block.Normalized()

	f := &Fleet{Spec: spec, Block: block, Clock: stats.Clock(spec.ClockGHz), Quick: o.Quick}
	base := spec
	base.Fleet = nil // member machines are ordinary single machines
	if len(block.Groups) == 0 {
		for i := 0; i < block.Machines; i++ {
			f.Specs = append(f.Specs, base)
		}
		return f, nil
	}
	for gi, g := range block.Groups {
		member := base
		for _, a := range g.Set {
			ov, err := config.ParseAssignment(a)
			if err != nil {
				return nil, fmt.Errorf("fleet group %d: %w", gi, err)
			}
			if err := member.Apply(config.Overrides{ov}); err != nil {
				return nil, fmt.Errorf("fleet group %d: %w", gi, err)
			}
		}
		if err := member.Validate(); err != nil {
			return nil, fmt.Errorf("fleet group %d: %w", gi, err)
		}
		for i := 0; i < g.Count; i++ {
			f.Specs = append(f.Specs, member)
		}
	}
	return f, nil
}

// machineCalib is one machine's calibrated service model: a per-request
// service-time sample vector (cycles) per workload family in the mix.
type machineCalib struct {
	samples [][]float64 // [mixEntry][request] cycles
	means   []float64   // [mixEntry] mean service cycles
	servers int
}

// Calibration is a fleet-wide service model for one mechanism.
type Calibration struct {
	Mechanism string
	machines  []machineCalib
	weights   []float64 // normalized mix weights
}

// CapacityReqPerCycle is the fleet's saturation throughput under this
// calibration: each machine serves its mixed-mean request every
// mean-service cycles per server.
func (c *Calibration) CapacityReqPerCycle() float64 {
	total := 0.0
	for _, m := range c.machines {
		mixed := 0.0
		for i, w := range c.weights {
			mixed += w * m.means[i]
		}
		if mixed > 0 {
			total += float64(m.servers) / mixed
		}
	}
	return total
}

// CapacityKOps converts the calibrated capacity to thousands of requests
// per second at the fleet's clock.
func (f *Fleet) CapacityKOps(c *Calibration) float64 {
	return c.CapacityReqPerCycle() * f.Clock.CyclesPerSecond() / 1e3
}

// Calibrate runs one small cycle-accurate simulation per (machine, mix
// workload) under the named mechanism ("" uses the spec's own) and returns
// the fleet's service model. Machine i's runs use seed Block.Seed+i and
// pin fault-plane identity i, so a chaos schedule replays byte-identically
// no matter what order machines are calibrated in.
func (f *Fleet) Calibrate(mech string) (*Calibration, error) {
	if mech == "" {
		mech = f.Spec.Mechanism.Name
	}
	cal := &Calibration{Mechanism: mech}
	total := 0.0
	for _, mx := range f.Block.Mix {
		cal.weights = append(cal.weights, mx.Weight)
		total += mx.Weight
	}
	for i := range cal.weights {
		cal.weights[i] /= total
	}

	for i, spec := range f.Specs {
		mc, err := f.calibrateMachine(i, spec, mech)
		if err != nil {
			return nil, fmt.Errorf("fleet machine %d: %w", i, err)
		}
		cal.machines = append(cal.machines, mc)
	}
	return cal, nil
}

// calibrateMachine runs each mix workload once on machine i's spec.
func (f *Fleet) calibrateMachine(i int, spec config.MachineSpec, mech string) (machineCalib, error) {
	release := faultinject.PinPlaneID(i)
	defer release()

	spec.Mechanism.Name = mech
	params, err := spec.Params()
	if err != nil {
		return machineCalib{}, err
	}
	seed := f.Block.Seed + int64(i)
	lazy := mech != "baseline"

	mc := machineCalib{servers: f.Block.ServersPerMachine}
	if mc.servers == 0 {
		mc.servers = params.Cores
	}
	for _, mx := range f.Block.Mix {
		h, err := f.serviceRun(mx.Workload, spec, params, seed, lazy)
		if err != nil {
			return machineCalib{}, err
		}
		samples := h.Samples()
		if len(samples) == 0 {
			return machineCalib{}, fmt.Errorf("workload %s: calibration produced no samples", mx.Workload)
		}
		mc.samples = append(mc.samples, samples)
		mc.means = append(mc.means, h.Mean())
	}
	return mc, nil
}

// serviceRun executes one calibration run and returns its per-request
// latency histogram. Sizes are modest — the point is a service-time
// distribution, not the paper's headline numbers — and shrink further in
// quick mode.
func (f *Fleet) serviceRun(workload string, spec config.MachineSpec, params machine.Params, seed int64, lazy bool) (*stats.Histogram, error) {
	copier := func(m *machine.Machine) (copykit.Copier, error) {
		sp := spec
		return config.BuildCopier(&sp, m)
	}
	switch workload {
	case "mongo":
		m := mongo.NewMachineFrom(params)
		cp, err := copier(m)
		if err != nil {
			return nil, err
		}
		cfg := mongo.Config{Seed: seed, Copier: cp, Inserts: 10, Fields: 6, FieldSize: 32 << 10}
		if f.Quick {
			cfg.Inserts, cfg.Fields, cfg.FieldSize = 4, 4, 16<<10
		}
		return mongo.Run(m, cfg).Latencies, nil
	case "mvcc":
		cfg := mvcc.Config{Seed: seed, Lazy: lazy, Threads: 1, Rows: 128, OpsPerThread: 100}
		if f.Quick {
			cfg.OpsPerThread = 40
		}
		return mvcc.Run(mvcc.NewMachineFrom(params), cfg).Latencies, nil
	case "protobuf":
		m := protobuf.NewMachineFrom(params)
		cp, err := copier(m)
		if err != nil {
			return nil, err
		}
		cfg := protobuf.Config{Seed: seed, Copier: cp, Ops: 128, Burst: 64}
		if f.Quick {
			cfg.Ops, cfg.Burst = 48, 24
		}
		return protobuf.Run(m, cfg).Latencies, nil
	case "kvsnap":
		hw := params
		hw.LazyEnabled = true // the kernel flag decides whether laziness is used
		cfg := kvsnap.Config{Seed: seed, Machine: &hw, LazyCOW: lazy,
			StoreBytes: 8 << 20, Ops: 150, SnapshotEach: 50}
		if f.Quick {
			cfg.StoreBytes, cfg.Ops, cfg.SnapshotEach = 4<<20, 60, 30
		}
		return kvsnap.Run(cfg).Latencies, nil
	}
	return nil, fmt.Errorf("unknown fleet workload %q", workload)
}

// OfferedReqPerCycle resolves the fleet block's arrival rate against a
// reference calibration (normally the baseline mechanism's, so every
// mechanism column of a figure faces the same offered load).
func (f *Fleet) OfferedReqPerCycle(ref *Calibration) float64 {
	if k := f.Block.Arrival.RateKOps; k > 0 {
		return k * 1e3 / f.Clock.CyclesPerSecond()
	}
	return f.Block.Arrival.RateFraction * ref.CapacityReqPerCycle()
}

// Run is the convenience entry point (cmd/mcsim -fleet): calibrate the
// spec's own mechanism, derive the offered rate from a baseline
// calibration (reusing the mechanism's own when it is the baseline), and
// simulate.
func Run(spec config.MachineSpec, o Options) (*Result, error) {
	f, err := New(spec, o)
	if err != nil {
		return nil, err
	}
	mech := f.Spec.Mechanism.Name
	cal, err := f.Calibrate(mech)
	if err != nil {
		return nil, err
	}
	ref := cal
	if mech != "baseline" && f.Block.Arrival.RateKOps == 0 {
		if ref, err = f.Calibrate("baseline"); err != nil {
			return nil, err
		}
	}
	return f.Simulate(cal, f.OfferedReqPerCycle(ref)), nil
}

// rng returns the fleet's seeded generator; every random choice of the
// simulation phase draws from one stream in one deterministic order.
func (f *Fleet) rng() *rand.Rand {
	return rand.New(rand.NewSource(f.Block.Seed))
}
