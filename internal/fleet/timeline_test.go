package fleet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcsquare/internal/config"
)

// timelineFleet is syntheticFleet with the spec's Timeline block enabled.
func timelineFleet(t *testing.T, ts config.TimelineSpec) (*Fleet, *Calibration) {
	t.Helper()
	f, cal := syntheticFleet(t, "rr", 4, 100)
	f.Spec.Timeline = &ts
	return f, cal
}

func TestFleetTimelineWindows(t *testing.T) {
	f, cal := timelineFleet(t, config.TimelineSpec{Enabled: true, WindowCycles: 10_000})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	tl := res.Timeline
	if tl == nil {
		t.Fatal("Timeline nil with an enabled spec block")
	}
	if tl.WindowCycles != 10_000 {
		t.Fatalf("WindowCycles = %d, want 10000", tl.WindowCycles)
	}
	if len(tl.Windows) < 2 {
		t.Fatalf("only %d windows; the run should span several", len(tl.Windows))
	}
	var arr, comp, drop uint64
	for i := range tl.Windows {
		w := &tl.Windows[i]
		if w.Index != i {
			t.Fatalf("window %d has Index %d", i, w.Index)
		}
		if w.Start != float64(i)*10_000 || w.End != float64(i+1)*10_000 {
			t.Fatalf("window %d spans [%v, %v)", i, w.Start, w.End)
		}
		arr += w.Arrivals
		comp += w.Completed
		drop += w.Dropped
	}
	if arr != res.Offered {
		t.Fatalf("windowed arrivals %d != offered %d", arr, res.Offered)
	}
	if comp != res.Completed {
		t.Fatalf("windowed completions %d != completed %d", comp, res.Completed)
	}
	if drop != res.Dropped {
		t.Fatalf("windowed drops %d != dropped %d", drop, res.Dropped)
	}
	// Under capacity with deterministic service times every window that
	// completes anything reports the 100-cycle service floor at p50.
	for i := range tl.Windows {
		w := &tl.Windows[i]
		if w.Completed > 0 && w.PercentileCycles(50) < 100 {
			t.Fatalf("window %d p50 %v below the service floor", i, w.PercentileCycles(50))
		}
	}
}

func TestFleetTimelineDeterministic(t *testing.T) {
	render := func() string {
		f, cal := timelineFleet(t, config.TimelineSpec{Enabled: true, WindowCycles: 10_000})
		res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
		var buf bytes.Buffer
		if err := res.Timeline.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("fleet timeline CSV diverged across identical runs")
	}
	if !strings.HasPrefix(a, "window,start,end,arrivals,completed,dropped,goodput_kops,mean_depth,max_depth,p50_ms,p99_ms\n") {
		t.Fatalf("unexpected CSV header:\n%s", a[:min(len(a), 120)])
	}
}

func TestFleetTimelineDisabled(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 2, 100)
	if res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5); res.Timeline != nil {
		t.Fatal("Timeline non-nil without a spec block")
	}
	f.Spec.Timeline = &config.TimelineSpec{Enabled: false, WindowCycles: 500}
	if res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5); res.Timeline != nil {
		t.Fatal("Timeline non-nil with a disabled spec block")
	}
}

func TestFleetTimelineSLO(t *testing.T) {
	// The 100-cycle service floor is 2.5e-5 ms at the default 4 GHz clock:
	// an SLO below it trips in the first completing window, one far above
	// it holds everywhere.
	f, cal := timelineFleet(t, config.TimelineSpec{Enabled: true, WindowCycles: 10_000, SLOP99Ms: 1e-6})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	tl := res.Timeline
	if !tl.SLOViolated {
		t.Fatal("sub-floor SLO not violated")
	}
	if tl.FirstViolation != 0 {
		t.Fatalf("FirstViolation = %d, want 0 (every window violates)", tl.FirstViolation)
	}
	if ms := tl.TimeToFirstViolationMs(); ms <= 0 {
		t.Fatalf("TimeToFirstViolationMs = %v, want > 0", ms)
	}

	f, cal = timelineFleet(t, config.TimelineSpec{Enabled: true, WindowCycles: 10_000, SLOP99Ms: 1000})
	tl = f.Simulate(cal, cal.CapacityReqPerCycle()*0.5).Timeline
	if tl.SLOViolated {
		t.Fatal("generous SLO violated")
	}
	if tl.FirstViolation != -1 || tl.TimeToFirstViolationMs() != -1 {
		t.Fatalf("held SLO: FirstViolation = %d, ttv = %v, want -1/-1",
			tl.FirstViolation, tl.TimeToFirstViolationMs())
	}
}

func TestFleetTimelineJSONShape(t *testing.T) {
	f, cal := timelineFleet(t, config.TimelineSpec{Enabled: true, WindowCycles: 10_000, SLOP99Ms: 1e-6})
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	var buf bytes.Buffer
	if err := res.Timeline.Write(&buf, "timeline.json"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WindowCycles   uint64  `json:"window_cycles"`
		SLOP99Ms       float64 `json:"slo_p99_ms"`
		SLOViolated    bool    `json:"slo_violated"`
		FirstViolation int     `json:"first_violation_window"`
		Windows        []struct {
			Index       int     `json:"index"`
			Arrivals    uint64  `json:"arrivals"`
			Completed   uint64  `json:"completed"`
			GoodputKOps float64 `json:"goodput_kops"`
			P99Ms       float64 `json:"p99_ms"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not JSON: %v", err)
	}
	if doc.WindowCycles != 10_000 || !doc.SLOViolated || doc.FirstViolation != 0 {
		t.Fatalf("document header wrong: %+v", doc)
	}
	if len(doc.Windows) != len(res.Timeline.Windows) {
		t.Fatalf("%d windows exported, accumulator has %d", len(doc.Windows), len(res.Timeline.Windows))
	}
	for _, w := range doc.Windows {
		if w.Completed > 0 && (w.GoodputKOps <= 0 || w.P99Ms <= 0) {
			t.Fatalf("window %d has completions but degenerate rates: %+v", w.Index, w)
		}
	}

	// The .csv suffix switches format; row count matches the window count.
	buf.Reset()
	if err := res.Timeline.Write(&buf, "timeline.csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimRight(buf.String(), "\n"), "\n") + 1
	if lines != len(res.Timeline.Windows)+1 {
		t.Fatalf("CSV has %d lines, want %d windows + header", lines, len(res.Timeline.Windows))
	}
}
