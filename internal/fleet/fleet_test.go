package fleet

import (
	"reflect"
	"testing"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
)

// testSpec is a small fleet over the two cheapest workload families.
func testSpec() config.MachineSpec {
	spec := config.Default()
	spec.Fleet = &config.FleetSpec{
		Machines: 2,
		Requests: 400,
		QueueCap: 8,
		Mix: []config.MixEntry{
			{Workload: "mvcc", Weight: 0.6},
			{Workload: "protobuf", Weight: 0.4},
		},
	}
	return spec
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(testSpec(), Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if a.Offered != b.Offered || a.Completed != b.Completed || a.Dropped != b.Dropped {
		t.Fatalf("counts diverged: %+v vs %+v", a, b)
	}
	if !reflect.DeepEqual(a.Served, b.Served) {
		t.Fatalf("per-machine served diverged: %v vs %v", a.Served, b.Served)
	}
	if !reflect.DeepEqual(a.Latencies.Samples(), b.Latencies.Samples()) {
		t.Fatal("latency sample streams diverged across identical runs")
	}
	if a.GoodputKOps() <= 0 || a.PercentileMs(99) <= 0 {
		t.Fatalf("degenerate operating point: goodput=%v p99=%v", a.GoodputKOps(), a.PercentileMs(99))
	}
}

// TestCalibrationOrderIndependence pins the chaos-replay guarantee: with a
// fault schedule bound, calibrating machines in reverse order yields the
// same per-machine service model as calibrating in natural order, because
// plane identity is pinned to the stable machine index.
func TestCalibrationOrderIndependence(t *testing.T) {
	sched := faultinject.FromSeed(7)
	calibrate := func(order []int) [][]float64 {
		fcol := faultinject.NewCollector(&sched)
		release := fcol.Bind()
		defer release()
		f, err := New(testSpec(), Options{Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]float64, len(f.Specs))
		for _, i := range order {
			mc, err := f.calibrateMachine(i, f.Specs[i], "mc2")
			if err != nil {
				t.Fatal(err)
			}
			// Flatten the machine's sample vectors for comparison.
			for _, v := range mc.samples {
				out[i] = append(out[i], v...)
			}
		}
		return out
	}
	forward := calibrate([]int{0, 1})
	reverse := calibrate([]int{1, 0})
	for i := range forward {
		if len(forward[i]) == 0 {
			t.Fatalf("machine %d: empty calibration", i)
		}
		if !reflect.DeepEqual(forward[i], reverse[i]) {
			t.Fatalf("machine %d: service model depends on instantiation order", i)
		}
	}
}

// syntheticFleet builds a Fleet + Calibration with hand-authored service
// times, bypassing the simulator, for load-balancer unit tests.
func syntheticFleet(t *testing.T, lb string, machines int, service float64) (*Fleet, *Calibration) {
	t.Helper()
	spec := config.Default()
	spec.Fleet = &config.FleetSpec{
		Machines:          machines,
		Requests:          1000,
		QueueCap:          1 << 20,
		ServersPerMachine: 1,
		LB:                lb,
		Mix:               []config.MixEntry{{Workload: "mvcc", Weight: 1}},
	}
	f, err := New(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cal := &Calibration{Mechanism: "baseline", weights: []float64{1}}
	for i := 0; i < machines; i++ {
		cal.machines = append(cal.machines, machineCalib{
			samples: [][]float64{{service}},
			means:   []float64{service},
			servers: 1,
		})
	}
	return f, cal
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 4, 100)
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	if res.Completed != res.Offered || res.Dropped != 0 {
		t.Fatalf("lost requests: %+v", res)
	}
	for i, n := range res.Served {
		if n != res.Offered/4 {
			t.Fatalf("rr: machine %d served %d of %d", i, n, res.Offered)
		}
	}
}

func TestLeastOutstandingAvoidsBusyMachine(t *testing.T) {
	f, cal := syntheticFleet(t, "least", 2, 100)
	// Machine 1 is 10x slower: least-outstanding should shift load to 0.
	cal.machines[1].samples = [][]float64{{1000}}
	cal.machines[1].means = []float64{1000}
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*0.8)
	if res.Served[0] <= res.Served[1] {
		t.Fatalf("least: slow machine served more: %v", res.Served)
	}
}

func TestHashRoutingIsSticky(t *testing.T) {
	f, cal := syntheticFleet(t, "hash", 4, 100)
	a := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	b := f.Simulate(cal, cal.CapacityReqPerCycle()*0.5)
	if !reflect.DeepEqual(a.Served, b.Served) {
		t.Fatalf("hash routing not deterministic: %v vs %v", a.Served, b.Served)
	}
	spread := 0
	for _, n := range a.Served {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("hash routing collapsed onto %d machine(s): %v", spread, a.Served)
	}
}

func TestOverloadDropsAndQueues(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 2, 100)
	f.Block.QueueCap = 4
	res := f.Simulate(cal, cal.CapacityReqPerCycle()*3)
	if res.Dropped == 0 {
		t.Fatalf("3x overload with QueueCap=4 dropped nothing: %+v", res)
	}
	if res.Completed+res.Dropped != res.Offered {
		t.Fatalf("request conservation: %d + %d != %d", res.Completed, res.Dropped, res.Offered)
	}
	if res.MeanQueueDepth <= 0 || res.MaxQueueDepth == 0 {
		t.Fatalf("overload built no queue: %+v", res)
	}
	// Under light load the same fleet queues nothing and drops nothing.
	light := f.Simulate(cal, cal.CapacityReqPerCycle()*0.1)
	if light.Dropped != 0 {
		t.Fatalf("light load dropped %d", light.Dropped)
	}
}

func TestTraceArrivals(t *testing.T) {
	f, cal := syntheticFleet(t, "rr", 2, 100)
	f.Block.Arrival = config.ArrivalSpec{Process: "trace", GapsCycles: []float64{50, 150}}
	res := f.Simulate(cal, 1.0/100)
	if res.Completed != res.Offered {
		t.Fatalf("trace arrivals lost requests: %+v", res)
	}
	// Gaps average 100 cycles at service 100 on 2 machines: no queueing, so
	// every latency is exactly the service time.
	if res.Latencies.Max() != 100 {
		t.Fatalf("trace max latency = %v, want pure service time 100", res.Latencies.Max())
	}
}

func TestHeterogeneousGroups(t *testing.T) {
	spec := config.Default()
	spec.Fleet = &config.FleetSpec{
		Groups: []config.FleetGroup{
			{Count: 2},
			{Count: 1, Set: []string{"Lazy.CTTCapacity=512"}},
		},
		Mix: []config.MixEntry{{Workload: "mvcc", Weight: 1}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	f, err := New(spec, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Specs) != 3 {
		t.Fatalf("expanded %d machines, want 3", len(f.Specs))
	}
	if f.Specs[0].Lazy.CTTCapacity == f.Specs[2].Lazy.CTTCapacity {
		t.Fatal("group override did not differentiate machine 2")
	}
	if f.Specs[2].Lazy.CTTCapacity != 512 {
		t.Fatalf("machine 2 CTTCapacity = %d, want 512", f.Specs[2].Lazy.CTTCapacity)
	}
	bad := spec
	bad.Fleet = &config.FleetSpec{Groups: []config.FleetGroup{{Count: 1, Set: []string{"NoSuchField=1"}}}}
	if _, err := New(bad, Options{}); err == nil {
		t.Fatal("unknown group override did not error")
	}
}

func TestFleetValidation(t *testing.T) {
	spec := config.Default()
	spec.Fleet = &config.FleetSpec{LB: "random"}
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown LB policy validated")
	}
	spec.Fleet = &config.FleetSpec{Arrival: config.ArrivalSpec{Process: "trace"}}
	if err := spec.Validate(); err == nil {
		t.Fatal("trace arrivals without gaps validated")
	}
	spec.Fleet = &config.FleetSpec{Mix: []config.MixEntry{{Workload: "redis", Weight: 1}}}
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown mix workload validated")
	}
	spec.Fleet = &config.FleetSpec{Machines: 3}
	if err := spec.Validate(); err != nil {
		t.Fatalf("partial fleet block failed validation: %v", err)
	}
}
