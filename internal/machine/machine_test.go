package machine

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
)

func TestAllocAlignment(t *testing.T) {
	m := New(DefaultParams())
	a := m.Alloc(100, 64)
	b := m.Alloc(100, 4096)
	if !memdata.IsLineAligned(a) {
		t.Fatalf("a = %#x not line aligned", a)
	}
	if memdata.PageOffset(b) != 0 {
		t.Fatalf("b = %#x not page aligned", b)
	}
	if b < a+100 {
		t.Fatal("allocations overlap")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	p := DefaultParams()
	p.MemSize = 1 << 20
	m := New(p)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	m.Alloc(2<<20, 1)
}

// TestNewGuards pins the last-resort panics on hand-built Params — spec
// users hit the same conditions as structured errors in
// config.MachineSpec.Validate, long before New runs.
func TestNewGuards(t *testing.T) {
	expectPanic := func(name string, p Params) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(p)
	}
	p := DefaultParams()
	p.Channels = 3
	expectPanic("non-power-of-two channels", p)

	p = DefaultParams()
	p.Cores = 4 // cache geometry still sized for 8
	expectPanic("mismatched cache geometry", p)
}

// TestNewAdoptsCoreCount: zero Cache.Cores inherits the machine's core
// count (the explicit opt-in that replaced the old silent rewrite).
func TestNewAdoptsCoreCount(t *testing.T) {
	p := DefaultParams()
	p.Cores = 2
	p.Cache.Cores = 0
	m := New(p)
	if got := len(m.Cores); got != 2 {
		t.Fatalf("built %d cores, want 2", got)
	}
}

func TestRunMultipleCores(t *testing.T) {
	m := New(DefaultParams())
	order := make([]int, 0, 2)
	m.Run(
		func(c *cpu.Core) { c.Compute(100); order = append(order, 0) },
		func(c *cpu.Core) { c.Compute(50); order = append(order, 1) },
	)
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v", order)
	}
}

// TestMemcpyLazyFullStackEquivalence drives memcpy_lazy end to end —
// wrapper, CLWBs, MCLAZY cache sweeps, CTT, bounces, BPQ — against a shadow
// byte model, over random sizes and misalignments.
func TestMemcpyLazyFullStackEquivalence(t *testing.T) {
	m := New(DefaultParams())
	const region = 1 << 18
	base := m.Alloc(region, memdata.PageSize)
	m.FillRandom(base, region, 7)
	shadow := m.Phys.Read(base, region)
	rnd := rand.New(rand.NewSource(7))

	// t.Fatalf must not run on the workload goroutine (Goexit would strand
	// the engine); record the failure and report after Run.
	var failure string
	m.Run(func(c *cpu.Core) {
		for step := 0; step < 120 && failure == ""; step++ {
			switch rnd.Intn(5) {
			case 0, 1: // lazy memcpy with arbitrary alignment and size
				size := uint64(1 + rnd.Intn(12000))
				dst := uint64(rnd.Intn(region - int(size)))
				src := uint64(rnd.Intn(region - int(size)))
				dstR := memdata.Range{Start: base + memdata.Addr(dst), Size: size}
				srcR := memdata.Range{Start: base + memdata.Addr(src), Size: size}
				if dstR.Overlaps(srcR) {
					continue
				}
				softmc.MemcpyLazy(c, dstR.Start, srcR.Start, size)
				copy(shadow[dst:dst+size], shadow[src:src+size])
			case 2: // plain store
				n := uint64(1 + rnd.Intn(64))
				off := uint64(rnd.Intn(region - int(n)))
				data := make([]byte, n)
				rnd.Read(data)
				c.Store(base+memdata.Addr(off), data)
				c.Fence()
				copy(shadow[off:off+n], data)
			default: // read & verify
				n := uint64(1 + rnd.Intn(256))
				off := uint64(rnd.Intn(region - int(n)))
				got := c.Load(base+memdata.Addr(off), n)
				if !bytes.Equal(got, shadow[off:off+n]) {
					failure = fmt.Sprintf("step %d: bytes [%d,%d) mismatch", step, off, off+n)
				}
			}
		}
		// Full final verification.
		for off := uint64(0); off < region && failure == ""; off += 4096 {
			got := c.Load(base+memdata.Addr(off), 4096)
			if !bytes.Equal(got, shadow[off:off+4096]) {
				failure = fmt.Sprintf("final: page at %d mismatch", off)
			}
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
	if err := m.Lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Lazy.Stats.LazyOps == 0 {
		t.Fatal("no lazy copies were issued")
	}
}

// TestLazyBeatsEagerUncached reproduces the headline of Fig 10: for large
// uncached copies, memcpy_lazy completes far faster than eager memcpy.
func TestLazyBeatsEagerUncached(t *testing.T) {
	const size = 64 << 10
	run := func(lazy bool) sim.Cycle {
		m := New(DefaultParams())
		src := m.AllocPage(size)
		dst := m.AllocPage(size)
		m.FillRandom(src, size, 9)
		var dur sim.Cycle
		m.Run(func(c *cpu.Core) {
			start := c.Now()
			if lazy {
				softmc.MemcpyLazy(c, dst, src, size)
			} else {
				softmc.MemcpyEager(c, dst, src, size)
			}
			dur = c.Now() - start
		})
		return dur
	}
	eager := run(false)
	lz := run(true)
	if lz*2 >= eager {
		t.Fatalf("lazy %d cycles not ≥2x faster than eager %d", lz, eager)
	}
}

// TestSourceWriteAfterLazyCopyFullStack: the paper's central consistency
// property through the whole machine — writes to the source after
// memcpy_lazy must not leak into the destination, even when the writes sit
// dirty in the cache for a while.
func TestSourceWriteAfterLazyCopyFullStack(t *testing.T) {
	m := New(DefaultParams())
	const size = 8 << 10
	src := m.AllocPage(size)
	dst := m.AllocPage(size)
	m.FillRandom(src, size, 11)
	want := m.Phys.Read(src, size)

	m.Run(func(c *cpu.Core) {
		softmc.MemcpyLazy(c, dst, src, size)
		// Overwrite the whole source through the cache.
		junk := bytes.Repeat([]byte{0xFF}, size)
		c.Store(src, junk)
		c.Fence()
		// Push the dirty lines out to memory so the BPQ path runs.
		for a := src; a < src+size; a += memdata.LineSize {
			c.CLWB(a)
		}
		c.Fence()
		got := c.Load(dst, size)
		if !bytes.Equal(got, want) {
			t.Fatal("destination observed post-copy source writes")
		}
		got2 := c.Load(src, 64)
		if got2[0] != 0xFF {
			t.Fatal("source lost its new data")
		}
	})
}

func TestInterposerPolicy(t *testing.T) {
	m := New(DefaultParams())
	src := m.AllocPage(8 << 10)
	dst := m.AllocPage(8 << 10)
	m.FillRandom(src, 8<<10, 13)
	ip := &softmc.Interposer{Threshold: 1024}
	m.Run(func(c *cpu.Core) {
		ip.Memcpy(c, dst, src, 512)            // below threshold: eager
		ip.Memcpy(c, dst+4096, src+4096, 4096) // redirected
	})
	if ip.Passed != 1 || ip.Redirected != 1 {
		t.Fatalf("interposer: passed=%d redirected=%d", ip.Passed, ip.Redirected)
	}
	if m.Lazy.Stats.LazyOps == 0 {
		t.Fatal("redirected copy issued no MCLAZY")
	}
}

func TestMCFreeThroughCore(t *testing.T) {
	m := New(DefaultParams())
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.FillRandom(src, 4096, 17)
	m.Run(func(c *cpu.Core) {
		softmc.MemcpyLazy(c, dst, src, 4096)
		softmc.Free(c, memdata.Range{Start: dst, Size: 4096})
	})
	if m.Lazy.CTT().Len() != 0 {
		t.Fatalf("CTT has %d entries after MCFREE", m.Lazy.CTT().Len())
	}
}

func TestBaselineMachineHasNoLazyUnit(t *testing.T) {
	p := DefaultParams()
	p.LazyEnabled = false
	m := New(p)
	if m.Lazy != nil || m.ISA != nil {
		t.Fatal("baseline machine has lazy machinery")
	}
	// Plain copies still work.
	src := m.AllocPage(4096)
	dst := m.AllocPage(4096)
	m.FillRandom(src, 4096, 19)
	want := m.Phys.Read(src, 4096)
	m.Run(func(c *cpu.Core) {
		softmc.MemcpyEager(c, dst, src, 4096)
		got := c.Load(dst, 4096)
		if !bytes.Equal(got, want) {
			t.Fatal("eager copy mismatch")
		}
	})
}

// TestMultiCoreSharedLazy: several cores lazily copy disjoint buffers at
// once; all destinations must be correct.
func TestMultiCoreSharedLazy(t *testing.T) {
	m := New(DefaultParams())
	const size = 16 << 10
	type job struct{ src, dst memdata.Addr }
	jobs := make([]job, 4)
	wants := make([][]byte, 4)
	for i := range jobs {
		jobs[i].src = m.AllocPage(size)
		jobs[i].dst = m.AllocPage(size)
		m.FillRandom(jobs[i].src, size, int64(100+i))
		wants[i] = m.Phys.Read(jobs[i].src, size)
	}
	fns := make([]func(c *cpu.Core), 4)
	results := make([]bool, 4)
	for i := range fns {
		i := i
		fns[i] = func(c *cpu.Core) {
			softmc.MemcpyLazy(c, jobs[i].dst, jobs[i].src, size)
			got := c.Load(jobs[i].dst, size)
			results[i] = bytes.Equal(got, wants[i])
		}
	}
	m.Run(fns...)
	for i, ok := range results {
		if !ok {
			t.Fatalf("core %d: destination mismatch", i)
		}
	}
	if err := m.Lazy.CTT().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
