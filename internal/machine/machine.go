// Package machine assembles the full simulated system — cores, caches,
// interconnect, memory controllers, DRAM channels, and the (MC)² lazy-copy
// engine — from one Params struct, and provides the allocation and
// process-spawning conveniences every workload uses.
package machine

import (
	"fmt"
	"math/rand"

	"mcsquare/internal/cache"
	"mcsquare/internal/core"
	"mcsquare/internal/cpu"
	"mcsquare/internal/dram"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/interconnect"
	"mcsquare/internal/invariant"
	"mcsquare/internal/isa"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
)

// Params configures a Machine. DefaultParams mirrors the paper's Table I.
type Params struct {
	Cores    int
	MemSize  uint64 // bytes of physical memory to model
	Channels int    // DRAM channels / memory controllers (power of two)

	MC    memctrl.Config
	DRAM  dram.Config
	Cache cache.Config
	CPU   cpu.Config
	Lazy  core.Params

	// XConBytesPerCycle caps the cache-to-controller interconnect
	// bandwidth; 0 (default) models a latency-only link.
	XConBytesPerCycle float64

	// LazyEnabled installs the (MC)² engine; disable for pure-baseline
	// machines (MCLAZY then panics if used).
	LazyEnabled bool
}

// DefaultParams is the paper's simulated configuration (Table I): 8 cores
// at 4 GHz, 64 KB L1s, 2 MB shared L2 with stride prefetchers, 2 DDR4
// channels, 2,048-entry CTT, 8-entry BPQ. The paper models 3 GB of DRAM; we
// default to 256 MB of backing store, which every workload fits in —
// capacity is not a measured variable in any experiment.
func DefaultParams() Params {
	return Params{
		Cores:       8,
		MemSize:     256 << 20,
		Channels:    2,
		MC:          memctrl.DefaultConfig(),
		DRAM:        dram.DDR4Config(),
		Cache:       cache.DefaultConfig(8),
		CPU:         cpu.DefaultConfig(),
		Lazy:        core.DefaultParams(),
		LazyEnabled: true,
	}
}

// Machine is a fully wired simulated system.
type Machine struct {
	Params Params
	Eng    *sim.Engine
	Phys   *memdata.Physical
	Chans  []*dram.Channel
	MCs    []*memctrl.Controller
	Hier   *cache.Hierarchy
	Lazy   *core.Engine // nil when LazyEnabled is false
	ISA    *isa.Unit    // nil when LazyEnabled is false
	Cores  []*cpu.Core

	// Metrics is the machine's registry: every component above publishes
	// its counters here at construction, under the namespaces documented
	// in DESIGN.md (cpu<i>, l1, l2, cache, xcon, mc<i>, dram<i>, engine,
	// ctt, isa, sim). Components added after construction (oskern, zio)
	// register themselves in their own constructors.
	Metrics *metrics.Registry

	// Trace is the machine's transaction tracer, handed out by the ambient
	// txtrace.Collector bound when the machine was built; nil (tracing
	// disabled) otherwise. Every component holds the same tracer.
	Trace *txtrace.Tracer

	// Faults is the machine's fault-injection plane, handed out by the
	// ambient faultinject.Collector; nil (no faults) otherwise.
	Faults *faultinject.Plane

	// Inv is the machine's invariant-oracle state, handed out by the
	// ambient invariant.Collector; nil (oracles off) otherwise.
	Inv *invariant.Oracles

	// Timeline is the machine's time-series recorder, handed out by the
	// ambient timeline.Collector; nil (timeline disabled) otherwise.
	Timeline *timeline.Recorder

	brk memdata.Addr // bump allocator watermark
}

// New builds a machine from params.
//
// The panics below are last-resort guards for hand-built Params; specs
// built through internal/config catch the same conditions earlier, in
// MachineSpec.Validate, as structured errors.
func New(p Params) *Machine {
	if p.Channels <= 0 || p.Channels&(p.Channels-1) != 0 {
		panic(fmt.Sprintf("machine: channel count %d must be a power of two", p.Channels))
	}
	if p.Cache.Cores == 0 {
		p.Cache.Cores = p.Cores // unset geometry inherits the core count
	}
	if p.Cache.Cores != p.Cores {
		panic(fmt.Sprintf("machine: cache geometry built for %d cores but the machine has %d (set Cache.Cores to 0 to inherit, or size the cache with cache.DefaultConfig)",
			p.Cache.Cores, p.Cores))
	}
	m := &Machine{
		Params: p,
		Eng:    sim.NewEngine(),
		Phys:   memdata.NewPhysical(p.MemSize),
		brk:    memdata.PageSize, // keep page 0 unused
	}

	route := func(a memdata.Addr) int {
		return int(uint64(a)>>memdata.LineShift) & (p.Channels - 1)
	}
	for i := 0; i < p.Channels; i++ {
		ch := dram.NewChannel(p.DRAM)
		m.Chans = append(m.Chans, ch)
		m.MCs = append(m.MCs, memctrl.New(i, m.Eng, p.MC, ch, m.Phys))
	}
	bus := interconnect.New(m.Eng, interconnect.Config{
		HopLatency:    p.Cache.XConLat,
		BytesPerCycle: p.XConBytesPerCycle,
	})
	m.Hier = cache.NewWithBus(m.Eng, p.Cache, func(a memdata.Addr) *memctrl.Controller {
		return m.MCs[route(a)]
	}, bus)

	var issuer cpu.LazyIssuer
	if p.LazyEnabled {
		m.Lazy = core.NewEngine(m.Eng, p.Lazy, m.MCs, route)
		m.ISA = isa.New(m.Eng, m.Hier, m.Lazy, p.Cache.XConLat, p.Channels)
		issuer = m.ISA
	}
	for i := 0; i < p.Cores; i++ {
		m.Cores = append(m.Cores, cpu.New(i, p.CPU, m.Hier, issuer))
	}

	// Transaction tracing: an ambient collector (bound by the runner or a
	// cmd binary) hands each machine one tracer; with none bound, Trace is
	// nil and every SetTracer call below installs the zero-cost disabled
	// tracer.
	m.Trace = txtrace.AmbientCollector().NewTracer()
	for _, mc := range m.MCs {
		mc.SetTracer(m.Trace)
	}
	bus.SetTracer(m.Trace)
	m.Hier.SetTracer(m.Trace)
	if p.LazyEnabled {
		m.Lazy.SetTracer(m.Trace)
		m.ISA.SetTracer(m.Trace)
	}
	for _, c := range m.Cores {
		c.SetTracer(m.Trace)
	}

	// Fault injection and invariant oracles follow the same ambient
	// pattern: nothing bound → nil plane/oracles → every consultation below
	// is a nil check and the metric name set is unchanged.
	if fc := faultinject.AmbientCollector(); fc != nil {
		m.Faults = fc.NewPlane()
		m.Faults.SetTracer(m.Trace)
		for _, mc := range m.MCs {
			mc.SetFaults(m.Faults)
		}
		bus.SetFaults(m.Faults)
		if p.LazyEnabled {
			m.Lazy.SetFaults(m.Faults)
		}
	}
	if ic := invariant.AmbientCollector(); ic != nil {
		m.Inv = ic.NewOracles(m.Eng, m.Trace)
		for _, mc := range m.MCs {
			mc.SetInvariants(m.Inv)
		}
		m.Hier.SetInvariants(m.Inv)
		if p.LazyEnabled {
			m.Lazy.SetInvariants(m.Inv)
		}
	}

	m.Metrics = metrics.NewRegistry()
	root := m.Metrics.Scope("")
	for i, ch := range m.Chans {
		ch.PublishMetrics(root.Scope(fmt.Sprintf("dram%d", i)))
	}
	for i, mc := range m.MCs {
		mc.PublishMetrics(root.Scope(fmt.Sprintf("mc%d", i)))
	}
	bus.PublishMetrics(root.Scope("xcon"))
	m.Hier.PublishMetrics(root)
	if p.LazyEnabled {
		m.Lazy.PublishMetrics(root)
		m.ISA.PublishMetrics(root.Scope("isa"))
	}
	for i, c := range m.Cores {
		c.PublishMetrics(root.Scope(fmt.Sprintf("cpu%d", i)))
	}
	// sim.cycles is the machine's exact simulated-cycle count; the runner
	// sums it across a job's machines for exact per-job attribution.
	m.Metrics.CounterFunc("sim.cycles", func() uint64 { return uint64(m.Eng.Now()) })
	// Per-stage trace latency histograms, only when tracing is on: an
	// untraced machine's metric name set must not change.
	if m.Trace != nil {
		m.Trace.PublishMetrics(root.Scope("txtrace"))
	}
	m.Faults.PublishMetrics(root.Scope("faultinject"))
	m.Inv.PublishMetrics(root.Scope("invariant"))

	// A runner job (or mcsim -stats) binds a metrics.Collector to its
	// goroutine; every machine built inside hands over its registry so the
	// caller can snapshot all of them without plumbing.
	if c := metrics.AmbientCollector(); c != nil {
		c.Add(m.Metrics)
	}
	// The timeline plane samples this machine's registry at window
	// boundaries of its engine. Bound last so the recorder's baseline sees
	// the fully populated registry (components registering later — oskern,
	// zio — simply delta from zero).
	if tc := timeline.AmbientCollector(); tc != nil {
		m.Timeline = tc.NewRecorder(m.Metrics, m.Eng)
	}
	return m
}

// Alloc reserves size bytes aligned to align (a power of two ≥ 1) and
// returns the base physical address. Buffers are never reclaimed; build a
// fresh machine per experiment.
func (m *Machine) Alloc(size, align uint64) memdata.Addr {
	if align == 0 {
		align = 1
	}
	base := m.brk + memdata.Addr(memdata.AlignRem(m.brk, align))
	end := base + memdata.Addr(size)
	if uint64(end) > m.Phys.Size() {
		panic(fmt.Sprintf("machine: out of simulated memory (want %d bytes at %#x, have %d)",
			size, base, m.Phys.Size()))
	}
	m.brk = end
	return base
}

// AllocPage reserves size bytes page-aligned.
func (m *Machine) AllocPage(size uint64) memdata.Addr {
	return m.Alloc(size, memdata.PageSize)
}

// FillRandom writes deterministic pseudorandom bytes over [a, a+n).
func (m *Machine) FillRandom(a memdata.Addr, n uint64, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	rnd.Read(buf)
	m.Phys.Write(a, buf)
	m.Inv.ObserveInit(a, buf) // mirror backdoor seeding into the shadow
}

// Run executes one workload function per core (fn i on core i) as
// simulated processes, drains the simulation, and returns the cycle at
// which the last workload finished.
func (m *Machine) Run(workloads ...func(c *cpu.Core)) sim.Cycle {
	if len(workloads) > len(m.Cores) {
		panic(fmt.Sprintf("machine: %d workloads for %d cores", len(workloads), len(m.Cores)))
	}
	var last sim.Cycle
	for i, fn := range workloads {
		c := m.Cores[i]
		fn := fn
		m.Eng.Go(fmt.Sprintf("core%d", i), func(p *sim.Proc) {
			c.Bind(p)
			fn(c)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	m.Eng.Drain()
	return last
}

// Warm touches the range through core 0's cache so subsequent accesses hit.
// Used for "touched" (cached-source) experiments.
func (m *Machine) Warm(c *cpu.Core, r memdata.Range) {
	for _, l := range r.Lines() {
		c.LoadAsync(l, 8)
	}
	c.Fence()
}
