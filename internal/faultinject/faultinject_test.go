package faultinject

import (
	"path/filepath"
	"testing"
)

// TestFromSeedDeterministic: the seed→schedule derivation is pure, every
// kind is active, and rates/windows land in their documented ranges.
func TestFromSeedDeterministic(t *testing.T) {
	a, b := FromSeed(0xC0FFEE), FromSeed(0xC0FFEE)
	if a != b {
		t.Fatalf("FromSeed not deterministic:\n%+v\n%+v", a, b)
	}
	if a == FromSeed(0xC0FFEF) {
		t.Fatal("adjacent seeds produced identical schedules")
	}
	if !a.Active() {
		t.Fatal("FromSeed schedule inactive")
	}
	for k := Kind(0); k < NumKinds; k++ {
		if e := a.every(k); e < 16 || e >= 80 {
			t.Errorf("rate for %s = %d, want [16, 80)", k, e)
		}
	}
	for _, k := range []Kind{KindBPQStall, KindXConDelay} {
		if w := a.window(k); w < 128 || w >= 1152 {
			t.Errorf("window for %s = %d, want [128, 1152)", k, w)
		}
	}
}

// TestScheduleJSONRoundTrip: WriteJSON output parses back (via ParseSpec's
// file branch) to the identical schedule — the CI chaos artifact replays
// exactly.
func TestScheduleJSONRoundTrip(t *testing.T) {
	s := FromSeed(42)
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := s.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip changed schedule:\n%+v\n%+v", got, s)
	}
}

// TestParseSpec: a bare integer (decimal or hex) is a seed; anything else
// is a file path; a missing file is an error, not a silent no-op schedule.
func TestParseSpec(t *testing.T) {
	if s, err := ParseSpec("0xC0FFEE"); err != nil || s != FromSeed(0xC0FFEE) {
		t.Fatalf("hex seed: %+v, %v", s, err)
	}
	if s, err := ParseSpec("12648430"); err != nil || s != FromSeed(12648430) {
		t.Fatalf("decimal seed: %+v, %v", s, err)
	}
	if _, err := ParseSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing schedule file accepted")
	}
}

// TestPlaneCounterFiring: firing is purely counter-based — exactly one of
// every `every` offered events fires, and a fresh plane with the same
// (schedule, index) replays the identical firing positions.
func TestPlaneCounterFiring(t *testing.T) {
	s := Schedule{Seed: 7, WPQRejectEvery: 4}
	const offers = 100
	record := func() ([]bool, uint64) {
		p := newPlane(s, 0)
		seq := make([]bool, offers)
		for i := range seq {
			seq[i] = p.Fire(KindWPQReject, uint64(i), uint64(i))
		}
		return seq, p.Fired(KindWPQReject)
	}
	seq1, fired1 := record()
	seq2, fired2 := record()
	if fired1 != offers/4 {
		t.Fatalf("fired %d of %d offers with every=4, want %d", fired1, offers, offers/4)
	}
	if fired1 != fired2 {
		t.Fatalf("fired counts diverged: %d vs %d", fired1, fired2)
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("firing position %d diverged across identical planes", i)
		}
	}
	// Distinct machine indices derive distinct phases from the same seed
	// (not a hard requirement per-kind, but the rate is identical).
	p1 := newPlane(s, 1)
	for i := 0; i < offers; i++ {
		p1.Fire(KindWPQReject, uint64(i), uint64(i))
	}
	if p1.Fired(KindWPQReject) != fired1 {
		t.Fatalf("plane 1 fired %d, want %d (same rate, shifted phase)", p1.Fired(KindWPQReject), fired1)
	}
}

// TestFireWindow: window kinds return their configured duration when they
// fire and 0 otherwise; kinds with Every=0 never fire.
func TestFireWindow(t *testing.T) {
	s := Schedule{Seed: 9, BPQStallEvery: 1, BPQStallCycles: 321}
	p := newPlane(s, 0)
	if w := p.FireWindow(KindBPQStall, 0, 0); w != 321 {
		t.Fatalf("FireWindow = %d, want 321", w)
	}
	if w := p.FireWindow(KindXConDelay, 0, 0); w != 0 {
		t.Fatalf("inactive kind fired a %d-cycle window", w)
	}
	if p.Offered(KindXConDelay) != 0 {
		t.Fatal("inactive kind counted an offer")
	}
}

// TestNilPlane: every Plane query is nil-safe — the disabled hot path.
func TestNilPlane(t *testing.T) {
	var p *Plane
	if p.Fire(KindCTTEvict, 0, 0) || p.FireWindow(KindBPQStall, 0, 0) != 0 {
		t.Fatal("nil plane fired")
	}
	if p.Offered(KindCTTEvict) != 0 || p.Fired(KindCTTEvict) != 0 || p.FiredTotal() != 0 {
		t.Fatal("nil plane counted")
	}
	if p.Schedule() != (Schedule{}) {
		t.Fatal("nil plane has a schedule")
	}
	p.SetTracer(nil) // must not panic
}

// TestPlaneRandDeterministic: the auxiliary stream (corruption bit choice)
// replays identically for the same (schedule, index).
func TestPlaneRandDeterministic(t *testing.T) {
	s := Schedule{Seed: 11, DRAMCorruptEvery: 1}
	p1, p2 := newPlane(s, 3), newPlane(s, 3)
	for i := 0; i < 64; i++ {
		if a, b := p1.Rand(512), p2.Rand(512); a != b {
			t.Fatalf("Rand diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

// TestCollector: inactive schedules collapse to a nil collector; an active
// one hands out planes with distinct indices and sums their fired counts.
func TestCollector(t *testing.T) {
	if NewCollector(nil) != nil {
		t.Fatal("nil schedule built a collector")
	}
	if NewCollector(&Schedule{Seed: 5}) != nil {
		t.Fatal("inactive schedule built a collector")
	}
	s := Schedule{Seed: 5, CTTEvictEvery: 1}
	c := NewCollector(&s)
	if c == nil {
		t.Fatal("active schedule built no collector")
	}
	if c.Schedule() != s {
		t.Fatal("collector lost the schedule")
	}
	release := c.Bind()
	if AmbientCollector() != c {
		t.Fatal("bound collector not ambient")
	}
	p1, p2 := AmbientCollector().NewPlane(), AmbientCollector().NewPlane()
	release()
	if AmbientCollector() != nil {
		t.Fatal("collector still ambient after release")
	}
	p1.Fire(KindCTTEvict, 0, 0)
	p2.Fire(KindCTTEvict, 0, 0)
	p2.Fire(KindCTTEvict, 0, 0)
	if got := c.FiredTotal(); got != 3 {
		t.Fatalf("FiredTotal = %d, want 3", got)
	}
	if len(c.Planes()) != 2 {
		t.Fatalf("Planes = %d, want 2", len(c.Planes()))
	}
}

// TestPinPlaneID: a pinned plane id reproduces the firing sequence of the
// same creation index, regardless of the order planes are actually built in
// (the fleet layer pins each machine's stable index so chaos replays are
// byte-identical across instantiation orders).
func TestPinPlaneID(t *testing.T) {
	s := Schedule{Seed: 7, WPQRejectEvery: 4, DRAMCorruptEvery: 3}
	const offers = 200
	record := func(p *Plane) []bool {
		seq := make([]bool, offers)
		for i := range seq {
			seq[i] = p.Fire(KindWPQReject, uint64(i), uint64(i))
			p.Fire(KindDRAMCorrupt, uint64(i), uint64(i))
		}
		return seq
	}
	// Reference: planes built in natural order, no pins.
	ref := NewCollector(&s)
	want := [][]bool{record(ref.NewPlane()), record(ref.NewPlane()), record(ref.NewPlane())}

	// Planes built in reverse order, each pinned to its stable id.
	c := NewCollector(&s)
	got := make([][]bool, 3)
	for id := 2; id >= 0; id-- {
		release := PinPlaneID(id)
		got[id] = record(c.NewPlane())
		release()
	}
	for id := range want {
		for i := range want[id] {
			if got[id][i] != want[id][i] {
				t.Fatalf("plane %d: firing position %d diverged under pinned out-of-order construction", id, i)
			}
		}
	}

	// Pins are scoped: after release, NewPlane falls back to creation index.
	release := PinPlaneID(9)
	release()
	c2 := NewCollector(&s)
	p := c2.NewPlane()
	q := newPlane(s, 0)
	for i := 0; i < offers; i++ {
		if p.Fire(KindWPQReject, uint64(i), uint64(i)) != q.Fire(KindWPQReject, uint64(i), uint64(i)) {
			t.Fatalf("released pin still affected plane identity at offer %d", i)
		}
	}
}
