package faultinject

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Collector hands one Plane to every machine built while it is bound to a
// goroutine, mirroring txtrace.Collector: the runner (or a cmd binary)
// binds one around a run, machine.New asks AmbientCollector() for a plane,
// and the caller reads fault counts afterwards. A nil Collector (no
// schedule) hands out nil planes.
type Collector struct {
	sched Schedule
	mu    sync.Mutex
	pls   []*Plane
}

// NewCollector builds a collector for sched. Returns nil when sched is nil
// or fires nothing, so callers can bind unconditionally and pay nothing
// when fault injection is off.
func NewCollector(sched *Schedule) *Collector {
	if sched == nil || !sched.Active() {
		return nil
	}
	return &Collector{sched: *sched}
}

// Schedule returns the collector's schedule (zero value from nil).
func (c *Collector) Schedule() Schedule {
	if c == nil {
		return Schedule{}
	}
	return c.sched
}

// NewPlane creates, records, and returns one plane (nil from a nil
// collector). The plane's firing phases depend on its identity: the
// creation index by default, or the id pinned to the calling goroutine via
// PinPlaneID. Unpinned callers must build machines in a deterministic
// order; pinned callers (the fleet layer) may build in any order and still
// replay byte-identically.
func (c *Collector) NewPlane() *Plane {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	idx := len(c.pls)
	if id, ok := pinnedPlaneID(); ok {
		idx = id
	}
	p := newPlane(c.sched, idx)
	c.pls = append(c.pls, p)
	c.mu.Unlock()
	return p
}

// Planes returns the collected planes in creation order.
func (c *Collector) Planes() []*Plane {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Plane(nil), c.pls...)
}

// FiredTotal sums fired faults across every plane.
func (c *Collector) FiredTotal() uint64 {
	var n uint64
	for _, p := range c.Planes() {
		n += p.FiredTotal()
	}
	return n
}

// ambient maps goroutine id → bound collector (the same pattern as
// metrics/txtrace: bind/lookup only at job boundaries and machine
// construction, never per event).
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Collector{}
)

// Bind attaches c to the calling goroutine and returns a release func that
// restores whatever was bound before. Binding a nil collector is a no-op
// that still returns a valid release func.
func (c *Collector) Bind() (release func()) {
	if c == nil {
		return func() {}
	}
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = c
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// planePins maps goroutine id → pinned plane id for machines built while a
// pin is in effect (see PinPlaneID).
var (
	planePinMu sync.Mutex
	planePins  = map[uint64]int{}
)

// PinPlaneID fixes the plane identity handed out by NewPlane on the calling
// goroutine until the returned release func runs. The fleet layer pins each
// machine's stable index before construction so fault phases depend on
// which machine a plane belongs to, not on the order machines happen to be
// built in.
func PinPlaneID(id int) (release func()) {
	gid := goid()
	planePinMu.Lock()
	prev, had := planePins[gid]
	planePins[gid] = id
	planePinMu.Unlock()
	return func() {
		planePinMu.Lock()
		if had {
			planePins[gid] = prev
		} else {
			delete(planePins, gid)
		}
		planePinMu.Unlock()
	}
}

// pinnedPlaneID reports the id pinned to the calling goroutine, if any.
func pinnedPlaneID() (int, bool) {
	planePinMu.Lock()
	defer planePinMu.Unlock()
	if len(planePins) == 0 {
		return 0, false // no pins anywhere: skip the goid parse
	}
	id, ok := planePins[goid()]
	return id, ok
}

// AmbientCollector returns the collector bound to the calling goroutine,
// or nil (machine.New then runs fault-free).
func AmbientCollector() *Collector {
	ambientMu.Lock()
	defer ambientMu.Unlock()
	if len(ambient) == 0 {
		return nil // nothing bound anywhere: skip the goid parse
	}
	return ambient[goid()]
}

// goid parses the calling goroutine's id from its stack header (same
// helper as metrics/txtrace keep privately).
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("faultinject: cannot parse goroutine id from stack header")
	}
	return id
}
