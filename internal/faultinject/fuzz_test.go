package faultinject

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzScheduleRoundTrip checks that Schedule's JSON form is stable: any
// JSON that decodes into a Schedule re-encodes to a canonical form that
// decodes back to the identical value and re-encodes byte-identically.
// Chaos-run repro lines are shared as JSON (mcsim -chaos, CI artifacts),
// so a lossy or unstable round trip would silently change which faults a
// "reproduced" run injects.
func FuzzScheduleRoundTrip(f *testing.F) {
	canonical, err := json.Marshal(FromSeed(42))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(canonical)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 7, "dram_corrupt_every": 100}`))
	f.Add([]byte(`{"seed": 1, "unknown_field": true}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s Schedule
		if err := json.Unmarshal(data, &s); err != nil {
			return // invalid inputs are out of scope; decoding must just not panic
		}
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encode of decoded schedule failed: %v", err)
		}
		var s2 Schedule
		if err := json.Unmarshal(enc, &s2); err != nil {
			t.Fatalf("canonical form does not decode: %v\n%s", err, enc)
		}
		if s != s2 {
			t.Fatalf("round trip changed the schedule:\n first: %+v\nsecond: %+v", s, s2)
		}
		enc2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form unstable:\n first: %s\nsecond: %s", enc, enc2)
		}
	})
}

// FuzzFromSeedPure pins that seed→schedule derivation is a pure function
// and that every derived schedule survives the JSON round trip (it is the
// repro line printed by chaos runs).
func FuzzFromSeedPure(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := FromSeed(seed), FromSeed(seed)
		if a != b {
			t.Fatalf("FromSeed(%d) not deterministic", seed)
		}
		enc, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Schedule
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("derived schedule lost in round trip: %+v vs %+v", a, back)
		}
	})
}
