// Package faultinject is the deterministic fault-injection plane: a
// seeded schedule of adverse events (CTT eviction storms, BPQ stall
// windows, WPQ writeback rejections, interconnect packet delay and
// duplication, transient DRAM read corruption) that components consult at
// well-defined decision points. Firing is purely counter-based — the Nth
// offered event of a kind fires, with a seed-derived phase per plane — so
// a schedule replays byte-identically regardless of wall clock, worker
// count, or host: the same simulation offers the same event sequence, so
// the same faults fire at the same simulated cycles.
//
// A Schedule is reproducible from a single uint64 seed (FromSeed) and
// serializable to JSON; one Plane is built per machine (the runner and the
// cmd binaries bind a Collector around machine construction, mirroring
// txtrace). A nil *Plane is a valid no-op: every query costs one nil
// check, so the plane can be threaded through hot paths unconditionally.
package faultinject

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"mcsquare/internal/metrics"
	"mcsquare/internal/txtrace"
)

// Kind enumerates the injectable faults.
type Kind uint8

const (
	KindCTTEvict    Kind = iota // forced eviction of a CTT entry on MCLAZY accept
	KindBPQStall                // a BPQ acquisition is stalled for a window
	KindWPQReject               // a bounce writeback is rejected regardless of occupancy
	KindXConDelay               // an interconnect packet is dropped; sender retransmits with backoff
	KindXConDup                 // an interconnect packet is duplicated (bandwidth charged twice)
	KindDRAMCorrupt             // a DRAM read returns a single-bit upset; ECC detects, re-read
	NumKinds
)

var kindNames = [NumKinds]string{
	"ctt_evict", "bpq_stall", "wpq_reject", "xcon_delay", "xcon_dup", "dram_corrupt",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind(?)"
}

// Schedule is a deterministic fault schedule. A kind with Every == 0 never
// fires; otherwise every Every-th offered event of that kind fires (with a
// per-plane, seed-derived phase so distinct machines are not in lockstep).
// Window kinds (BPQ stall, interconnect delay) carry a duration in cycles.
//
// The fleet-scoped fields describe storms above the micro level: whole
// machines crashing and recovering, brownout windows that inflate a
// machine's calibrated service times, and lost LB health probes. They are
// consumed by internal/fleet's event loop on its completion-heap timebase
// (seeded per-machine streams derived from Seed), not by per-machine
// Planes; a zero value for all of them means the fleet never degrades.
type Schedule struct {
	Seed uint64 `json:"seed"`

	CTTEvictEvery    uint64 `json:"ctt_evict_every"`
	BPQStallEvery    uint64 `json:"bpq_stall_every"`
	BPQStallCycles   uint64 `json:"bpq_stall_cycles"`
	WPQRejectEvery   uint64 `json:"wpq_reject_every"`
	XConDelayEvery   uint64 `json:"xcon_delay_every"`
	XConDelayCycles  uint64 `json:"xcon_delay_cycles"`
	XConDupEvery     uint64 `json:"xcon_dup_every"`
	DRAMCorruptEvery uint64 `json:"dram_corrupt_every"`

	// CrashMeanUpCycles / CrashMeanDownCycles parameterize per-machine
	// crash+recover alternation: exponential up-times with the given mean,
	// then exponential down-times. Zero up-time mean disables crashes.
	CrashMeanUpCycles   float64 `json:"crash_mean_up_cycles,omitempty"`
	CrashMeanDownCycles float64 `json:"crash_mean_down_cycles,omitempty"`
	// Brownout windows multiply a machine's service samples by
	// BrownoutFactor while active. Zero up-time mean disables brownouts.
	BrownoutMeanUpCycles float64 `json:"brownout_mean_up_cycles,omitempty"`
	BrownoutMeanCycles   float64 `json:"brownout_mean_cycles,omitempty"`
	BrownoutFactor       float64 `json:"brownout_factor,omitempty"`
	// ProbeLossEvery drops every Nth health probe per machine (with a
	// seed-derived per-machine phase), exercising the fail/restore
	// thresholds even on healthy machines. Zero means lossless probes.
	ProbeLossEvery uint64 `json:"probe_loss_every,omitempty"`
}

// splitmix64 is the SplitMix64 mixing function: a bijective avalanche over
// uint64, the standard way to derive independent streams from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FromSeed derives a full chaos schedule from one seed: every kind active,
// with rates in [16, 80) offered events and windows in [128, 1152) cycles,
// plus a fleet storm (FleetStormFromSeed) over the same seed. The
// derivation is pure, so the same seed is the same schedule forever; the
// micro-kind mixing is untouched by the fleet fields, so pre-storm seeds
// still derive the same per-machine plane behavior.
func FromSeed(seed uint64) Schedule {
	rate := func(k Kind) uint64 { return 16 + splitmix64(seed^uint64(k)<<8)%64 }
	window := func(k Kind) uint64 { return 128 + splitmix64(seed^uint64(k)<<16)%1024 }
	s := FleetStormFromSeed(seed)
	s.CTTEvictEvery = rate(KindCTTEvict)
	s.BPQStallEvery = rate(KindBPQStall)
	s.BPQStallCycles = window(KindBPQStall)
	s.WPQRejectEvery = rate(KindWPQReject)
	s.XConDelayEvery = rate(KindXConDelay)
	s.XConDelayCycles = window(KindXConDelay)
	s.XConDupEvery = rate(KindXConDup)
	s.DRAMCorruptEvery = rate(KindDRAMCorrupt)
	return s
}

// Fleet-field derivation tags: distinct mixing inputs so adding the fleet
// storm to FromSeed could not perturb the micro-kind rates and windows
// (which committed chaos goldens depend on).
const (
	tagCrashUp   = 0xF1EE70001
	tagCrashDown = 0xF1EE70002
	tagBrownUp   = 0xF1EE70003
	tagBrownLen  = 0xF1EE70004
	tagBrownMul  = 0xF1EE70005
	tagProbeLoss = 0xF1EE70006
	tagFleetKind = 0xF1EE70000 // base for per-(machine, kind) stream seeds
)

// FleetStormFromSeed derives only the fleet-scoped storm from a seed:
// crash up-times averaging 0.4–1.2M cycles against 40–160k down-times,
// more frequent brownouts inflating service 2–7x, and 1-in-[6,30) probe
// loss. Micro kinds stay zero, so single-machine planes never fire.
func FleetStormFromSeed(seed uint64) Schedule {
	cyc := func(tag, lo, span uint64) float64 {
		return float64(lo + splitmix64(seed^uint64(tag))%span)
	}
	return Schedule{
		Seed:                 seed,
		CrashMeanUpCycles:    cyc(tagCrashUp, 400_000, 800_000),
		CrashMeanDownCycles:  cyc(tagCrashDown, 40_000, 120_000),
		BrownoutMeanUpCycles: cyc(tagBrownUp, 200_000, 400_000),
		BrownoutMeanCycles:   cyc(tagBrownLen, 50_000, 150_000),
		BrownoutFactor:       float64(2 + splitmix64(seed^uint64(tagBrownMul))%6),
		ProbeLossEvery:       6 + splitmix64(seed^uint64(tagProbeLoss))%24,
	}
}

// FleetStreamSeed derives the deterministic RNG-stream seed for one
// machine's fleet-fault stream of the given kind index (crash timing,
// brownout timing, ...). Pure, so replays are exact at any -jobs.
func (s Schedule) FleetStreamSeed(machine, kind int) uint64 {
	return splitmix64(s.Seed ^ uint64(machine)<<40 ^ uint64(tagFleetKind+kind))
}

// FleetActive reports whether any fleet-scoped storm field can degrade a
// machine or a probe.
func (s Schedule) FleetActive() bool {
	return s.CrashMeanUpCycles > 0 || s.BrownoutMeanUpCycles > 0 || s.ProbeLossEvery > 0
}

// ScaleFleet scales the fleet storm's intensity: 0 turns it off entirely,
// 1 is the schedule as-is, larger values shrink the mean healthy windows
// proportionally (and probe loss periods, floored at every-probe). Micro
// kinds are untouched; the figureResilience intensity axis uses this.
func (s Schedule) ScaleFleet(intensity float64) Schedule {
	if intensity <= 0 {
		s.CrashMeanUpCycles, s.CrashMeanDownCycles = 0, 0
		s.BrownoutMeanUpCycles, s.BrownoutMeanCycles, s.BrownoutFactor = 0, 0, 0
		s.ProbeLossEvery = 0
		return s
	}
	s.CrashMeanUpCycles /= intensity
	s.BrownoutMeanUpCycles /= intensity
	if s.ProbeLossEvery > 0 {
		scaled := uint64(float64(s.ProbeLossEvery) / intensity)
		if scaled < 1 {
			scaled = 1
		}
		s.ProbeLossEvery = scaled
	}
	return s
}

// every returns the firing period for a kind (0 = off).
func (s Schedule) every(k Kind) uint64 {
	switch k {
	case KindCTTEvict:
		return s.CTTEvictEvery
	case KindBPQStall:
		return s.BPQStallEvery
	case KindWPQReject:
		return s.WPQRejectEvery
	case KindXConDelay:
		return s.XConDelayEvery
	case KindXConDup:
		return s.XConDupEvery
	case KindDRAMCorrupt:
		return s.DRAMCorruptEvery
	}
	return 0
}

// window returns the stall/delay duration for a window kind.
func (s Schedule) window(k Kind) uint64 {
	switch k {
	case KindBPQStall:
		return s.BPQStallCycles
	case KindXConDelay:
		return s.XConDelayCycles
	}
	return 0
}

// Active reports whether any fault — micro kind or fleet storm — can
// fire. A fleet-only schedule is active so a Collector carries it to the
// fleet event loop even though no per-machine plane would ever fire.
func (s Schedule) Active() bool {
	for k := Kind(0); k < NumKinds; k++ {
		if s.every(k) != 0 {
			return true
		}
	}
	return s.FleetActive()
}

// WriteJSON serializes the schedule (the CI chaos job uploads it as the
// reproduction artifact).
func (s Schedule) WriteJSON(path string) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ParseSpec resolves a -faults flag value: a bare integer (decimal or 0x…)
// is a seed expanded via FromSeed; anything else is a path to a schedule
// JSON file.
func ParseSpec(spec string) (Schedule, error) {
	if seed, err := strconv.ParseUint(spec, 0, 64); err == nil {
		return FromSeed(seed), nil
	}
	b, err := os.ReadFile(spec)
	if err != nil {
		return Schedule{}, fmt.Errorf("faultinject: reading schedule: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return Schedule{}, fmt.Errorf("faultinject: parsing %s: %w", spec, err)
	}
	return s, nil
}

// anomalyKindFor maps fault kinds to the txtrace anomaly recorded when
// they fire. All faults share AnomalyFaultInjected; the anomaly's MC field
// carries the fault kind.
const faultAnomaly = txtrace.AnomalyFaultInjected

// Plane is one machine's fault injector. All methods are nil-safe and run
// in engine (event) context, so no locking is needed past construction.
type Plane struct {
	sched Schedule
	tr    *txtrace.Tracer
	rng   uint64 // deterministic aux stream (corruption bit choice)

	every   [NumKinds]uint64
	phase   [NumKinds]uint64
	windows [NumKinds]uint64
	offered [NumKinds]uint64
	fired   [NumKinds]uint64
}

// newPlane builds the plane for the idx-th machine of a run. The phase of
// each kind is derived from (seed, idx, kind) so parallel machines under
// one schedule do not fire in lockstep yet replay identically.
func newPlane(s Schedule, idx int) *Plane {
	p := &Plane{sched: s, rng: splitmix64(s.Seed ^ uint64(idx)*0x9e37)}
	for k := Kind(0); k < NumKinds; k++ {
		p.every[k] = s.every(k)
		p.windows[k] = s.window(k)
		if p.every[k] != 0 {
			p.phase[k] = splitmix64(s.Seed^uint64(idx)<<32^uint64(k)) % p.every[k]
		}
	}
	return p
}

// SetTracer attaches the machine's transaction tracer so every fired fault
// records a txtrace anomaly (nil disables).
func (p *Plane) SetTracer(t *txtrace.Tracer) {
	if p != nil {
		p.tr = t
	}
}

// Schedule returns the plane's schedule (zero value from a nil plane).
func (p *Plane) Schedule() Schedule {
	if p == nil {
		return Schedule{}
	}
	return p.sched
}

// Fire offers one event of kind k and reports whether the fault fires.
// addr and now annotate the recorded anomaly.
func (p *Plane) Fire(k Kind, addr, now uint64) bool {
	if p == nil || p.every[k] == 0 {
		return false
	}
	c := p.offered[k]
	p.offered[k]++
	if c%p.every[k] != p.phase[k] {
		return false
	}
	p.fired[k]++
	p.tr.Anomaly(faultAnomaly, int(k), addr, now)
	return true
}

// FireWindow is Fire for window kinds: it returns the stall/delay duration
// in cycles when the fault fires, 0 otherwise.
func (p *Plane) FireWindow(k Kind, addr, now uint64) uint64 {
	if !p.Fire(k, addr, now) {
		return 0
	}
	return p.windows[k]
}

// Rand returns a deterministic pseudorandom value in [0, n) from the
// plane's auxiliary stream (used to pick e.g. which bit a DRAM upset
// flips). n must be > 0.
func (p *Plane) Rand(n uint64) uint64 {
	p.rng = splitmix64(p.rng)
	return p.rng % n
}

// Offered returns how many events of kind k were offered to the plane.
func (p *Plane) Offered(k Kind) uint64 {
	if p == nil {
		return 0
	}
	return p.offered[k]
}

// Fired returns how many faults of kind k fired.
func (p *Plane) Fired(k Kind) uint64 {
	if p == nil {
		return 0
	}
	return p.fired[k]
}

// FiredTotal returns the total faults fired across all kinds.
func (p *Plane) FiredTotal() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for k := Kind(0); k < NumKinds; k++ {
		n += p.fired[k]
	}
	return n
}

// PublishMetrics registers faultinject.* counters (machine.New passes
// Scope("faultinject")). Registration happens only when a plane exists, so
// a fault-free machine's metric name set is unchanged.
func (p *Plane) PublishMetrics(s metrics.Scope) {
	if p == nil {
		return
	}
	for k := Kind(0); k < NumKinds; k++ {
		s.Counter("offered."+k.String(), &p.offered[k])
		s.Counter("fired."+k.String(), &p.fired[k])
	}
}
