package faultinject

import (
	"encoding/json"
	"testing"
)

func TestFleetStormFromSeedDeterministic(t *testing.T) {
	a := FleetStormFromSeed(0x5709)
	b := FleetStormFromSeed(0x5709)
	if a != b {
		t.Fatalf("storm derivation not pure: %+v vs %+v", a, b)
	}
	if !a.FleetActive() {
		t.Fatalf("derived storm inert: %+v", a)
	}
	if a.CrashMeanUpCycles < 400_000 || a.CrashMeanUpCycles >= 1_200_000 {
		t.Fatalf("CrashMeanUpCycles out of band: %g", a.CrashMeanUpCycles)
	}
	if a.BrownoutFactor < 2 {
		t.Fatalf("BrownoutFactor below 2: %g", a.BrownoutFactor)
	}
	if a.ProbeLossEvery < 6 {
		t.Fatalf("ProbeLossEvery below 6: %d", a.ProbeLossEvery)
	}
	if c := FleetStormFromSeed(0x5710); c == a {
		t.Fatal("different seeds derived identical storms")
	}
}

// TestFromSeedMicroKindsUnchanged pins that adding the fleet fields did not
// perturb FromSeed's micro-kind derivation: committed chaos goldens
// (figuretimeline's chaos cells run FromSeed(0x7E11)) depend on it.
func TestFromSeedMicroKindsUnchanged(t *testing.T) {
	s := FromSeed(0x7E11)
	micro := s
	micro.CrashMeanUpCycles = 0
	micro.CrashMeanDownCycles = 0
	micro.BrownoutMeanUpCycles = 0
	micro.BrownoutMeanCycles = 0
	micro.BrownoutFactor = 0
	micro.ProbeLossEvery = 0
	if !micro.Active() {
		t.Fatal("FromSeed derived no micro kinds")
	}
	if !s.FleetActive() {
		t.Fatal("FromSeed derived no fleet storm")
	}
	storm := FleetStormFromSeed(0x7E11)
	if s.CrashMeanUpCycles != storm.CrashMeanUpCycles ||
		s.CrashMeanDownCycles != storm.CrashMeanDownCycles ||
		s.BrownoutMeanUpCycles != storm.BrownoutMeanUpCycles ||
		s.BrownoutMeanCycles != storm.BrownoutMeanCycles ||
		s.BrownoutFactor != storm.BrownoutFactor ||
		s.ProbeLossEvery != storm.ProbeLossEvery {
		t.Fatalf("FromSeed fleet fields diverge from FleetStormFromSeed:\n%+v\n%+v", s, storm)
	}
}

func TestScaleFleet(t *testing.T) {
	s := FleetStormFromSeed(42)
	off := s.ScaleFleet(0)
	if off.FleetActive() {
		t.Fatalf("intensity 0 left the storm active: %+v", off)
	}
	// Scaling only touches the fleet fields: a full chaos schedule keeps
	// its micro kinds at every intensity.
	full := FromSeed(42)
	if quiet := full.ScaleFleet(0); quiet.FleetActive() || !quiet.Active() ||
		quiet.DRAMCorruptEvery != full.DRAMCorruptEvery {
		t.Fatalf("ScaleFleet(0) disturbed micro kinds: %+v", quiet)
	}
	one := s.ScaleFleet(1)
	if one != s {
		t.Fatalf("intensity 1 changed the storm: %+v vs %+v", one, s)
	}
	two := s.ScaleFleet(2)
	if two.CrashMeanUpCycles != s.CrashMeanUpCycles/2 ||
		two.BrownoutMeanUpCycles != s.BrownoutMeanUpCycles/2 {
		t.Fatalf("intensity 2 did not halve the mean-up cycles: %+v", two)
	}
	if two.CrashMeanDownCycles != s.CrashMeanDownCycles ||
		two.BrownoutMeanCycles != s.BrownoutMeanCycles ||
		two.BrownoutFactor != s.BrownoutFactor {
		t.Fatalf("intensity scaling touched the outage shapes: %+v", two)
	}
	if two.ProbeLossEvery == 0 {
		t.Fatal("probe loss scaled to never")
	}
	// Scaling far past the probe-loss period floors at every-probe, not 0.
	huge := s.ScaleFleet(1e9)
	if huge.ProbeLossEvery != 1 {
		t.Fatalf("extreme intensity probe loss = %d, want floor 1", huge.ProbeLossEvery)
	}
}

func TestFleetStreamSeedStable(t *testing.T) {
	s := Schedule{Seed: 99}
	for m := 0; m < 4; m++ {
		for kind := 0; kind < 3; kind++ {
			a := s.FleetStreamSeed(m, kind)
			if a != s.FleetStreamSeed(m, kind) {
				t.Fatalf("stream seed (m=%d kind=%d) not stable", m, kind)
			}
			if a == s.FleetStreamSeed(m, (kind+1)%3) {
				t.Fatalf("stream seed (m=%d) collides across kinds", m)
			}
			if a == s.FleetStreamSeed(m+1, kind) {
				t.Fatalf("stream seed (kind=%d) collides across machines", kind)
			}
		}
	}
}

func TestFleetOnlyScheduleIsActive(t *testing.T) {
	s := Schedule{Seed: 1, CrashMeanUpCycles: 100_000, CrashMeanDownCycles: 10_000}
	if !s.Active() {
		t.Fatal("fleet-only schedule reports inactive; NewCollector would drop it")
	}
	if NewCollector(&s) == nil {
		t.Fatal("NewCollector rejected a fleet-only schedule")
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("fleet fields lost in JSON: %+v vs %+v", back, s)
	}
	// A micro-only schedule must not report a fleet storm.
	micro := Schedule{Seed: 2, DRAMCorruptEvery: 1000}
	if micro.FleetActive() {
		t.Fatal("micro-only schedule reports a fleet storm")
	}
}
