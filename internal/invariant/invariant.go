// Package invariant provides runtime correctness oracles for the
// simulated memory system, cheap enough to leave on in any build:
//
//   - a shadow-memory data-integrity oracle that replays every CPU-visible
//     write and lazy copy eagerly into a sparse per-line shadow and
//     byte-compares what the memory system returns on reads and on MCFREE;
//   - a transaction liveness watchdog — no in-flight memory transaction may
//     grow older than a configurable cycle budget; on trip it dumps the
//     txtrace flight recorder and fails loudly (panics, which the runner
//     converts into a structured job error);
//   - queue-occupancy invariants — RPQ/WPQ/BPQ/MSHR occupancy never leaves
//     [0, capacity] and refcounts never go negative.
//
// One Oracles instance is built per machine (ambient Collector, mirroring
// txtrace) and threaded to the memory controllers, the (MC)² engine, and
// the cache hierarchy. Every method is nil-safe so the disabled path costs
// one nil check and zero allocations.
//
// Comparison semantics. The simulator is concurrent in simulated time: a
// read's return value is bound at a well-defined cycle (forward hit: the
// forwarding check; DRAM: the array read; bounce: compose start), and
// writes to the line after that cycle legally miss the returned value. The
// caller therefore passes the binding cycle; a mismatch only counts as a
// violation when the shadow was NOT updated at-or-after the binding cycle
// (otherwise the comparison is racy and skipped, which is counted). Lines
// whose current value the simulator itself leaves ambiguous — an internal
// reconstruction write is in flight between untracking and queue accept —
// are marked transitional by the engine and skipped too. Lines freed by
// MCFREE hold undefined data and are skipped until redefined. Lines never
// observed (e.g. seeded by test backdoor writes) are adopted on first
// read: the first comparison cannot fail, every later one can.
package invariant

import (
	"bytes"
	"fmt"
	"os"
	"sort"

	"mcsquare/internal/memdata"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// DefaultWatchdogBudget is the default maximum age, in cycles, of an
// in-flight transaction before the liveness watchdog trips. Real
// transactions in this simulator complete in hundreds of cycles; two
// million is far beyond any legitimate stall pile-up yet trips quickly on
// a genuine livelock.
const DefaultWatchdogBudget = 2_000_000

// Config selects which oracles run.
type Config struct {
	Shadow         bool   // shadow-memory data-integrity oracle
	Watchdog       bool   // transaction liveness watchdog
	Queues         bool   // queue-occupancy / refcount invariants
	WatchdogBudget uint64 // max in-flight Tx age in cycles (0 = DefaultWatchdogBudget)
	DumpPath       string // flight-recorder dump file on watchdog trip ("" = no dump)
}

// All returns a Config with every oracle enabled (the -invariants flag).
func All() Config {
	return Config{Shadow: true, Watchdog: true, Queues: true}
}

// Enabled reports whether any oracle is on.
func (c Config) Enabled() bool { return c.Shadow || c.Watchdog || c.Queues }

// Violation kinds.
const (
	KindIntegrity = "integrity" // shadow-memory byte mismatch
	KindQueue     = "queue"     // occupancy outside [0, capacity] or negative refcount
	KindLiveness  = "liveness"  // watchdog trip
)

// Violation is one recorded oracle failure.
type Violation struct {
	Kind  string `json:"kind"`
	What  string `json:"what"`
	Addr  uint64 `json:"addr"`
	Cycle uint64 `json:"cycle"`
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] cycle %d addr %#x: %s", v.Kind, v.Cycle, v.Addr, v.What)
}

// maxViolations bounds the per-machine violation list; the counters keep
// counting past it.
const maxViolations = 256

// line-state markers for the sparse shadow.
type lineState uint8

const (
	stUnknown lineState = iota // never observed: adopt on first read
	stKnown                    // shadow holds the authoritative value
	stUndef                    // freed by MCFREE: contents undefined
)

type shadowLine struct {
	state lineState
	data  []byte    // LineSize bytes when state == stKnown
	upd   sim.Cycle // cycle of the last shadow mutation of this line
}

type txInfo struct {
	addr  uint64
	start sim.Cycle
}

// WatchdogTrip is the panic value raised when the liveness watchdog
// fires. The runner classifies it as a deterministic failure.
type WatchdogTrip struct {
	Addr     uint64    // address of the oldest stuck transaction
	Age      sim.Cycle // its age when the watchdog swept
	Budget   sim.Cycle
	Inflight int // total in-flight transactions at trip time
}

func (w *WatchdogTrip) Error() string {
	return fmt.Sprintf("invariant: liveness watchdog tripped: tx on %#x in flight for %d cycles (budget %d, %d tx in flight)",
		w.Addr, w.Age, w.Budget, w.Inflight)
}

// Oracles is one machine's invariant-checking state. All methods run in
// engine (event) context — single-threaded per machine — and are nil-safe.
type Oracles struct {
	cfg Config
	eng *sim.Engine
	tr  *txtrace.Tracer

	// Shadow memory, sparse per line.
	shadow       map[memdata.Addr]*shadowLine
	transitional map[memdata.Addr]int // lines with an in-flight internal write

	checks  uint64 // comparisons performed
	skips   uint64 // comparisons skipped (racy, transitional, undefined)
	adopted uint64 // unknown lines adopted on first read

	// Violations.
	vioIntegrity uint64
	vioQueue     uint64
	vioLiveness  uint64
	vios         []Violation

	// Watchdog.
	wdBudget sim.Cycle
	inflight map[uint64]txInfo
	nextTx   uint64
	wdArmed  bool
	tripped  bool
}

func newOracles(cfg Config, eng *sim.Engine, tr *txtrace.Tracer) *Oracles {
	o := &Oracles{cfg: cfg, eng: eng, tr: tr}
	if cfg.Shadow {
		o.shadow = make(map[memdata.Addr]*shadowLine)
		o.transitional = make(map[memdata.Addr]int)
	}
	if cfg.Watchdog {
		o.wdBudget = cfg.WatchdogBudget
		if o.wdBudget == 0 {
			o.wdBudget = DefaultWatchdogBudget
		}
		o.inflight = make(map[uint64]txInfo)
	}
	return o
}

// ShadowOn/WatchdogOn/QueuesOn let callers skip closure allocations when
// the corresponding oracle is off.
func (o *Oracles) ShadowOn() bool   { return o != nil && o.cfg.Shadow }
func (o *Oracles) WatchdogOn() bool { return o != nil && o.cfg.Watchdog && !o.tripped }
func (o *Oracles) QueuesOn() bool   { return o != nil && o.cfg.Queues }

func (o *Oracles) violate(kind string, addr uint64, what string) {
	now := uint64(0)
	if o.eng != nil {
		now = uint64(o.eng.Now())
	}
	switch kind {
	case KindIntegrity:
		o.vioIntegrity++
	case KindQueue:
		o.vioQueue++
	case KindLiveness:
		o.vioLiveness++
	}
	if len(o.vios) < maxViolations {
		o.vios = append(o.vios, Violation{Kind: kind, What: what, Addr: addr, Cycle: now})
	}
	ak := txtrace.AnomalyInvariant
	if kind == KindLiveness {
		ak = txtrace.AnomalyWatchdog
	}
	o.tr.Anomaly(ak, 0, addr, now)
}

// ---------------------------------------------------------------------------
// Shadow-memory oracle
// ---------------------------------------------------------------------------

func (o *Oracles) line(a memdata.Addr) *shadowLine {
	sl := o.shadow[a]
	if sl == nil {
		sl = &shadowLine{}
		o.shadow[a] = sl
	}
	return sl
}

// ObserveWrite replays a CPU-visible full-line write into the shadow. Call
// at the cycle the write becomes forwardable (BPQ hold install, BPQ merge,
// WPQ accept) — that is when reads can first return it.
func (o *Oracles) ObserveWrite(a memdata.Addr, data []byte) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	sl := o.line(a)
	if sl.data == nil {
		sl.data = make([]byte, memdata.LineSize)
	}
	copy(sl.data, data)
	sl.state = stKnown
	sl.upd = o.eng.Now()
}

// ObserveInit replays a backdoor (pre-simulation) seeding write, e.g.
// Machine.FillRandom. Only lines fully inside [a, a+len(data)) become
// known; edge partials stay unknown and are adopted on first read.
func (o *Oracles) ObserveInit(a memdata.Addr, data []byte) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	start := memdata.LineUp(a)
	end := memdata.LineAlign(a + memdata.Addr(len(data)))
	for l := start; l < end; l += memdata.LineSize {
		o.ObserveWrite(l, data[l-a:l-a+memdata.LineSize])
	}
}

// ObserveCopy replays an accepted lazy copy (dst ← src, byte-granular)
// eagerly into the shadow, propagating known/undefined state per
// destination line. Call at MCLAZY accept time: from that cycle on, reads
// of dst must return the copied bytes.
func (o *Oracles) ObserveCopy(dst memdata.Range, src memdata.Addr) {
	if o == nil || !o.cfg.Shadow || dst.Size == 0 {
		return
	}
	now := o.eng.Now()
	delta := src - dst.Start // add to a dst address to get its src address
	for _, dl := range dst.Lines() {
		part := dst.Intersect(memdata.Range{Start: dl, Size: memdata.LineSize})
		full := part.Size == memdata.LineSize

		// Classify the source bytes feeding this destination line.
		srcR := memdata.Range{Start: part.Start + delta, Size: part.Size}
		st := stKnown
		for _, slAddr := range srcR.Lines() {
			switch s := o.shadow[slAddr]; {
			case s == nil || s.state == stUnknown:
				if st == stKnown {
					st = stUnknown
				}
			case s.state == stUndef:
				st = stUndef
			}
			if st == stUndef {
				break
			}
		}
		dlsl := o.line(dl)
		// A partial overwrite needs the destination's prior bytes too.
		if !full && st == stKnown && dlsl.state != stKnown {
			st = dlsl.state // unknown or undef: can't compose a known value
		}
		switch st {
		case stKnown:
			if dlsl.data == nil {
				dlsl.data = make([]byte, memdata.LineSize)
			}
			for i := uint64(0); i < part.Size; i++ {
				sa := part.Start + delta + memdata.Addr(i)
				dlsl.data[part.Start-dl+memdata.Addr(i)] = o.shadow[memdata.LineAlign(sa)].data[memdata.LineOffset(sa)]
			}
			dlsl.state = stKnown
		case stUndef:
			dlsl.state = stUndef
			dlsl.data = nil
		default:
			dlsl.state = stUnknown
			dlsl.data = nil
		}
		dlsl.upd = now
	}
}

// ObserveFree marks every line overlapping r as undefined: MCFREE declares
// the buffer dead, so reads return unspecified bytes until rewritten.
func (o *Oracles) ObserveFree(r memdata.Range) {
	if o == nil || !o.cfg.Shadow || r.Size == 0 {
		return
	}
	now := o.eng.Now()
	for _, l := range r.Lines() {
		sl := o.line(l)
		sl.state = stUndef
		sl.data = nil
		sl.upd = now
	}
}

// BeginInternalWrite marks a line transitional: the engine untracked it
// and the materializing write is still waiting for queue acceptance, so
// the line's visible value is ambiguous. CheckRead skips it.
func (o *Oracles) BeginInternalWrite(a memdata.Addr) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	o.transitional[a]++
}

// EndInternalWrite clears the transitional mark once the write is
// accepted (forwardable).
func (o *Oracles) EndInternalWrite(a memdata.Addr) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	if o.transitional[a]--; o.transitional[a] <= 0 {
		delete(o.transitional, a)
	}
	if sl := o.shadow[a]; sl != nil {
		sl.upd = o.eng.Now()
	}
}

// CheckRead byte-compares a line returned by the memory system against the
// shadow. bound is the cycle the returned value was bound (see the package
// comment); a mismatch on a line whose shadow was updated at-or-after
// bound is racy and skipped, not a violation.
func (o *Oracles) CheckRead(a memdata.Addr, data []byte, bound sim.Cycle) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	sl := o.shadow[a]
	if sl == nil || sl.state == stUnknown {
		// First observation: adopt the simulator's value as ground truth.
		o.adopted++
		sl = o.line(a)
		sl.data = append(sl.data[:0], data...)
		sl.state = stKnown
		sl.upd = bound
		return
	}
	if sl.state == stUndef || o.transitional[a] > 0 {
		o.skips++
		return
	}
	o.checks++
	if bytes.Equal(sl.data, data) {
		return
	}
	if sl.upd >= bound {
		o.checks--
		o.skips++
		return
	}
	o.violate(KindIntegrity, uint64(a),
		fmt.Sprintf("read returned %x… want %x… (value bound at cycle %d, shadow updated at %d)",
			firstDiff(data, sl.data), firstDiff(sl.data, data), bound, sl.upd))
}

// CheckFreeLine byte-compares the visible value of one line at MCFREE time
// (the engine computes it synchronously via its peek path).
func (o *Oracles) CheckFreeLine(a memdata.Addr, data []byte) {
	if o == nil || !o.cfg.Shadow {
		return
	}
	sl := o.shadow[a]
	if sl == nil || sl.state != stKnown || o.transitional[a] > 0 {
		o.skips++
		return
	}
	o.checks++
	if !bytes.Equal(sl.data, data) {
		o.violate(KindIntegrity, uint64(a),
			fmt.Sprintf("MCFREE-time value %x… diverges from shadow %x…",
				firstDiff(data, sl.data), firstDiff(sl.data, data)))
	}
}

// firstDiff returns an 8-byte window of a starting at the first byte where
// a and b differ, for violation messages.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	end := i + 8
	if end > len(a) {
		end = len(a)
	}
	return a[i:end]
}

// ---------------------------------------------------------------------------
// Queue-occupancy invariants
// ---------------------------------------------------------------------------

// CheckQueue asserts 0 ≤ used ≤ capacity for the named queue. Call after
// every occupancy mutation; the cost when enabled is two comparisons.
func (o *Oracles) CheckQueue(name string, used, capacity int) {
	if o == nil || !o.cfg.Queues {
		return
	}
	if used < 0 || used > capacity {
		o.violate(KindQueue, 0, fmt.Sprintf("%s occupancy %d outside [0, %d]", name, used, capacity))
	}
}

// CheckRefcount asserts a named refcount never goes negative.
func (o *Oracles) CheckRefcount(name string, v int) {
	if o == nil || !o.cfg.Queues {
		return
	}
	if v < 0 {
		o.violate(KindQueue, 0, fmt.Sprintf("%s refcount went negative (%d)", name, v))
	}
}

// ---------------------------------------------------------------------------
// Transaction liveness watchdog
// ---------------------------------------------------------------------------

// TxBegin registers an in-flight transaction on addr and returns its id
// (0 when the watchdog is off — TxEnd(0) is a no-op). The first in-flight
// transaction arms a periodic sweep; the sweep disarms itself when the set
// empties, so a drained simulation terminates normally.
func (o *Oracles) TxBegin(addr uint64) uint64 {
	if o == nil || !o.cfg.Watchdog || o.tripped {
		return 0
	}
	o.nextTx++
	id := o.nextTx
	o.inflight[id] = txInfo{addr: addr, start: o.eng.Now()}
	if !o.wdArmed {
		o.wdArmed = true
		o.eng.After(o.sweepPeriod(), o.sweep)
	}
	return id
}

// TxEnd retires an in-flight transaction.
func (o *Oracles) TxEnd(id uint64) {
	if o == nil || id == 0 {
		return
	}
	delete(o.inflight, id)
}

func (o *Oracles) sweepPeriod() sim.Cycle {
	p := o.wdBudget / 4
	if p == 0 {
		p = 1
	}
	return p
}

func (o *Oracles) sweep() {
	if o.tripped {
		return
	}
	if len(o.inflight) == 0 {
		o.wdArmed = false
		return
	}
	now := o.eng.Now()
	var worst txInfo
	for _, ti := range o.inflight {
		if worst.start == 0 || ti.start < worst.start {
			worst = ti
		}
	}
	if age := now - worst.start; age > o.wdBudget {
		o.trip(worst, age)
		return
	}
	o.eng.After(o.sweepPeriod(), o.sweep)
}

// trip records the liveness violation, dumps the flight recorder, and
// panics. The panic unwinds the engine's Drain/Step caller — the runner
// converts it into a structured job error ("fail loudly").
func (o *Oracles) trip(worst txInfo, age sim.Cycle) {
	o.tripped = true
	o.violate(KindLiveness, worst.addr,
		fmt.Sprintf("tx in flight for %d cycles (budget %d, %d in flight)", age, o.wdBudget, len(o.inflight)))
	if o.cfg.DumpPath != "" && o.tr != nil {
		if f, err := os.Create(o.cfg.DumpPath); err == nil {
			o.tr.Dump(f)
			f.Close()
		}
	}
	panic(&WatchdogTrip{Addr: worst.addr, Age: age, Budget: o.wdBudget, Inflight: len(o.inflight)})
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

// TotalViolations returns the number of violations recorded (including
// any past the bounded list).
func (o *Oracles) TotalViolations() uint64 {
	if o == nil {
		return 0
	}
	return o.vioIntegrity + o.vioQueue + o.vioLiveness
}

// Violations returns the recorded violations (bounded at maxViolations).
func (o *Oracles) Violations() []Violation {
	if o == nil {
		return nil
	}
	return append([]Violation(nil), o.vios...)
}

// Checks returns (performed, skipped, adopted) comparison counts.
func (o *Oracles) Checks() (checks, skips, adopted uint64) {
	if o == nil {
		return 0, 0, 0
	}
	return o.checks, o.skips, o.adopted
}

// PublishMetrics registers invariant.* counters (machine.New passes
// Scope("invariant")). Registration happens only when oracles exist, so a
// plain machine's metric name set is unchanged.
func (o *Oracles) PublishMetrics(s metrics.Scope) {
	if o == nil {
		return
	}
	s.Counter("checks", &o.checks)
	s.Counter("checks_skipped", &o.skips)
	s.Counter("adopted", &o.adopted)
	s.Counter("violations.integrity", &o.vioIntegrity)
	s.Counter("violations.queue", &o.vioQueue)
	s.Counter("violations.liveness", &o.vioLiveness)
	s.CounterFunc("watchdog.inflight", func() uint64 {
		if o.inflight == nil {
			return 0
		}
		return uint64(len(o.inflight))
	})
}

// sortViolations orders violations deterministically (cycle, addr, what)
// for aggregated reporting.
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Cycle != vs[j].Cycle {
			return vs[i].Cycle < vs[j].Cycle
		}
		if vs[i].Addr != vs[j].Addr {
			return vs[i].Addr < vs[j].Addr
		}
		return vs[i].What < vs[j].What
	})
}
