package invariant

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"

	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Collector hands one Oracles instance to every machine built while it is
// bound to a goroutine, mirroring txtrace.Collector. A nil Collector
// (oracles disabled) hands out nil oracles, which every check method
// treats as a no-op.
type Collector struct {
	cfg Config
	mu  sync.Mutex
	os  []*Oracles
}

// NewCollector builds a collector for cfg. Returns nil when no oracle is
// enabled, so callers can bind unconditionally and pay nothing when
// invariants are off.
func NewCollector(cfg Config) *Collector {
	if !cfg.Enabled() {
		return nil
	}
	return &Collector{cfg: cfg}
}

// Config returns the collector's configuration (zero value from nil).
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// NewOracles creates, records, and returns one machine's oracles (nil from
// a nil collector).
func (c *Collector) NewOracles(eng *sim.Engine, tr *txtrace.Tracer) *Oracles {
	if c == nil {
		return nil
	}
	o := newOracles(c.cfg, eng, tr)
	c.mu.Lock()
	c.os = append(c.os, o)
	c.mu.Unlock()
	return o
}

// Oracles returns the collected oracles in creation order.
func (c *Collector) Oracles() []*Oracles {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Oracles(nil), c.os...)
}

// TotalViolations sums recorded violations across every machine.
func (c *Collector) TotalViolations() uint64 {
	var n uint64
	for _, o := range c.Oracles() {
		n += o.TotalViolations()
	}
	return n
}

// Violations returns every recorded violation across machines, in
// deterministic (cycle, addr, message) order.
func (c *Collector) Violations() []Violation {
	var all []Violation
	for _, o := range c.Oracles() {
		all = append(all, o.Violations()...)
	}
	sortViolations(all)
	return all
}

// Report writes a human-readable violation summary.
func (c *Collector) Report(w io.Writer) {
	vs := c.Violations()
	total := c.TotalViolations()
	fmt.Fprintf(w, "invariant: %d violation(s)\n", total)
	for _, v := range vs {
		fmt.Fprintf(w, "  %s\n", v)
	}
	if n := uint64(len(vs)); total > n {
		fmt.Fprintf(w, "  … and %d more (per-machine lists are bounded)\n", total-n)
	}
}

// ambient maps goroutine id → bound collector (the metrics/txtrace
// pattern: bind/lookup only at job boundaries and machine construction).
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Collector{}
)

// Bind attaches c to the calling goroutine and returns a release func that
// restores whatever was bound before. Binding a nil collector is a no-op
// that still returns a valid release func.
func (c *Collector) Bind() (release func()) {
	if c == nil {
		return func() {}
	}
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = c
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// AmbientCollector returns the collector bound to the calling goroutine,
// or nil (machine.New then runs without oracles).
func AmbientCollector() *Collector {
	ambientMu.Lock()
	defer ambientMu.Unlock()
	if len(ambient) == 0 {
		return nil // nothing bound anywhere: skip the goid parse
	}
	return ambient[goid()]
}

// goid parses the calling goroutine's id from its stack header (same
// helper as metrics/txtrace keep privately).
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("invariant: cannot parse goroutine id from stack header")
	}
	return id
}
