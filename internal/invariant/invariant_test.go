package invariant

import (
	"bytes"
	"strings"
	"testing"

	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

const line = memdata.LineSize

func newTestOracles(t *testing.T, cfg Config) (*Collector, *Oracles, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	c := NewCollector(cfg)
	if c == nil {
		t.Fatalf("config %+v built no collector", cfg)
	}
	return c, c.NewOracles(eng, nil), eng
}

func lineOf(fill byte) []byte { return bytes.Repeat([]byte{fill}, line) }

// TestShadowReadMatch: an observed write then a matching read counts as a
// performed check with no violation.
func TestShadowReadMatch(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAA))
	o.CheckRead(0x1000, lineOf(0xAA), 1)
	if checks, _, _ := o.Checks(); checks != 1 {
		t.Fatalf("checks = %d, want 1", checks)
	}
	if c.TotalViolations() != 0 {
		t.Fatalf("violations: %v", c.Violations())
	}
}

// TestShadowReadMismatch: a mismatching read whose value was bound after
// the last shadow update is a recorded integrity violation.
func TestShadowReadMismatch(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAA)) // upd = 0
	o.CheckRead(0x1000, lineOf(0xBB), 5) // bound 5 > upd 0: real divergence
	if c.TotalViolations() != 1 {
		t.Fatalf("violations = %d, want 1", c.TotalViolations())
	}
	v := c.Violations()[0]
	if v.Kind != KindIntegrity || v.Addr != 0x1000 {
		t.Fatalf("violation = %+v", v)
	}
}

// TestShadowRacyMismatchSkipped: a mismatch on a line the shadow updated
// at-or-after the binding cycle is racy — a legal concurrent write — and
// must be skipped, not flagged.
func TestShadowRacyMismatchSkipped(t *testing.T) {
	c, o, eng := newTestOracles(t, Config{Shadow: true})
	eng.Go("w", func(p *sim.Proc) { p.Wait(10) })
	eng.Drain()                          // advance to cycle 10
	o.ObserveWrite(0x1000, lineOf(0xAA)) // upd = 10
	o.CheckRead(0x1000, lineOf(0xBB), 3) // bound 3 <= upd 10: racy
	if c.TotalViolations() != 0 {
		t.Fatalf("racy mismatch flagged: %v", c.Violations())
	}
	if _, skips, _ := o.Checks(); skips != 1 {
		t.Fatalf("skips = %d, want 1", skips)
	}
	eng.Close()
}

// TestShadowAdoptUnknown: the first read of a never-observed line adopts
// the simulator's value; a later divergent read then flags.
func TestShadowAdoptUnknown(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.CheckRead(0x2000, lineOf(0x11), 1)
	if _, _, adopted := o.Checks(); adopted != 1 {
		t.Fatalf("adopted = %d, want 1", adopted)
	}
	o.CheckRead(0x2000, lineOf(0x22), 5)
	if c.TotalViolations() != 1 {
		t.Fatal("post-adoption divergence not flagged")
	}
}

// TestShadowFreeUndefines: after ObserveFree, reads of the line are
// exempt (contents undefined) until a write redefines it.
func TestShadowFreeUndefines(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAA))
	o.ObserveFree(memdata.Range{Start: 0x1000, Size: line})
	o.CheckRead(0x1000, lineOf(0x77), 5) // undefined: anything goes
	if c.TotalViolations() != 0 {
		t.Fatalf("freed line flagged: %v", c.Violations())
	}
	o.ObserveWrite(0x1000, lineOf(0xCC)) // redefines
	o.CheckRead(0x1000, lineOf(0x77), 9)
	if c.TotalViolations() != 1 {
		t.Fatal("redefined line divergence not flagged")
	}
}

// TestShadowTransitionalSkipped: between BeginInternalWrite and
// EndInternalWrite the line's visible value is ambiguous and comparisons
// are skipped; after End they resume (with upd refreshed to now, so the
// first post-End comparison at an older bound is racy-skipped).
func TestShadowTransitionalSkipped(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAA))
	o.BeginInternalWrite(0x1000)
	o.CheckRead(0x1000, lineOf(0x55), 5)
	if c.TotalViolations() != 0 {
		t.Fatalf("transitional line flagged: %v", c.Violations())
	}
	o.EndInternalWrite(0x1000)
	o.CheckRead(0x1000, lineOf(0x55), 5)
	if c.TotalViolations() != 1 {
		t.Fatal("post-transition divergence not flagged")
	}
}

// TestShadowCopyPropagates: ObserveCopy replays the copy eagerly —
// byte-granular, with unknown/undefined source state propagating to the
// destination instead of inventing data.
func TestShadowCopyPropagates(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAB))
	o.ObserveCopy(memdata.Range{Start: 0x4000, Size: line}, 0x1000)
	o.CheckRead(0x4000, lineOf(0xAB), 1)
	if c.TotalViolations() != 0 {
		t.Fatalf("copied line mismatch: %v", c.Violations())
	}
	// Copy from a never-observed source: dest becomes unknown, adopted on
	// first read rather than compared.
	o.ObserveCopy(memdata.Range{Start: 0x5000, Size: line}, 0x2000)
	o.CheckRead(0x5000, lineOf(0x42), 2)
	if c.TotalViolations() != 0 {
		t.Fatal("unknown-source copy compared instead of adopted")
	}
	// Copy from a freed source: dest becomes undefined.
	o.ObserveFree(memdata.Range{Start: 0x1000, Size: line})
	o.ObserveCopy(memdata.Range{Start: 0x6000, Size: line}, 0x1000)
	o.CheckRead(0x6000, lineOf(0x99), 3)
	if c.TotalViolations() != 0 {
		t.Fatal("undefined-source copy compared")
	}
}

// TestShadowCopyMisaligned: a misaligned, sub-line copy merges source
// bytes into the destination's prior bytes.
func TestShadowCopyMisaligned(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.ObserveWrite(0x1000, lineOf(0xAA)) // src line
	o.ObserveWrite(0x4000, lineOf(0xBB)) // dst line prior value
	// Copy 8 bytes from mid-src-line to mid-dst-line.
	o.ObserveCopy(memdata.Range{Start: 0x4010, Size: 8}, 0x1005)
	want := lineOf(0xBB)
	copy(want[0x10:0x18], lineOf(0xAA))
	o.CheckRead(0x4000, want, 1)
	if c.TotalViolations() != 0 {
		t.Fatalf("misaligned copy composed wrong: %v", c.Violations())
	}
}

// TestCheckFreeLine: the MCFREE-time comparison flags divergence on known
// lines and skips unknown ones.
func TestCheckFreeLine(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Shadow: true})
	o.CheckFreeLine(0x3000, lineOf(0x11)) // unknown: skipped
	if _, skips, _ := o.Checks(); skips != 1 {
		t.Fatalf("skips = %d, want 1", skips)
	}
	o.ObserveWrite(0x3000, lineOf(0x11))
	o.CheckFreeLine(0x3000, lineOf(0x11))
	if c.TotalViolations() != 0 {
		t.Fatal("matching free-time value flagged")
	}
	o.CheckFreeLine(0x3000, lineOf(0x22))
	if c.TotalViolations() != 1 {
		t.Fatal("diverging free-time value not flagged")
	}
}

// TestQueueInvariants: occupancy outside [0, capacity] and negative
// refcounts are flagged; legal values are not.
func TestQueueInvariants(t *testing.T) {
	c, o, _ := newTestOracles(t, Config{Queues: true})
	o.CheckQueue("rpq", 0, 4)
	o.CheckQueue("rpq", 4, 4)
	o.CheckRefcount("workers", 0)
	if c.TotalViolations() != 0 {
		t.Fatalf("legal occupancy flagged: %v", c.Violations())
	}
	o.CheckQueue("rpq", 5, 4)
	o.CheckQueue("rpq", -1, 4)
	o.CheckRefcount("workers", -1)
	if c.TotalViolations() != 3 {
		t.Fatalf("violations = %d, want 3", c.TotalViolations())
	}
	for _, v := range c.Violations() {
		if v.Kind != KindQueue {
			t.Fatalf("violation kind = %s, want %s", v.Kind, KindQueue)
		}
	}
}

// TestWatchdogTrips: a transaction left in flight past the budget panics
// with *WatchdogTrip out of the engine and records a liveness violation.
func TestWatchdogTrips(t *testing.T) {
	c, o, eng := newTestOracles(t, Config{Watchdog: true, WatchdogBudget: 1000})
	o.TxBegin(0xABC) // never ended
	eng.Go("spin", func(p *sim.Proc) { p.Wait(100000) })
	var trip *WatchdogTrip
	func() {
		defer func() {
			tr, ok := recover().(*WatchdogTrip)
			if !ok {
				t.Fatal("watchdog did not trip")
			}
			trip = tr
		}()
		eng.Drain()
	}()
	if trip.Addr != 0xABC || trip.Budget != 1000 || trip.Age <= 1000 {
		t.Fatalf("trip = %+v", trip)
	}
	if c.TotalViolations() != 1 || c.Violations()[0].Kind != KindLiveness {
		t.Fatalf("violations: %v", c.Violations())
	}
	eng.Close()
}

// TestWatchdogRetiredTxDisarms: ending every transaction lets the sweep
// disarm and the engine drain normally — no spurious trips, no wedged
// events.
func TestWatchdogRetiredTxDisarms(t *testing.T) {
	c, o, eng := newTestOracles(t, Config{Watchdog: true, WatchdogBudget: 1000})
	id := o.TxBegin(0x100)
	eng.Go("work", func(p *sim.Proc) {
		p.Wait(10)
		o.TxEnd(id)
		p.Wait(100000) // well past the budget, with nothing in flight
	})
	eng.Drain()
	if c.TotalViolations() != 0 {
		t.Fatalf("violations: %v", c.Violations())
	}
	eng.Close()
}

// TestNilOracles: every method is nil-safe — the disabled hot path.
func TestNilOracles(t *testing.T) {
	var o *Oracles
	if o.ShadowOn() || o.WatchdogOn() || o.QueuesOn() {
		t.Fatal("nil oracles report enabled")
	}
	o.ObserveWrite(0, nil)
	o.ObserveInit(0, nil)
	o.ObserveCopy(memdata.Range{}, 0)
	o.ObserveFree(memdata.Range{})
	o.BeginInternalWrite(0)
	o.EndInternalWrite(0)
	o.CheckRead(0, nil, 0)
	o.CheckFreeLine(0, nil)
	o.CheckQueue("q", -5, 0)
	o.CheckRefcount("r", -5)
	o.TxEnd(o.TxBegin(0))
	if o.TotalViolations() != 0 || o.Violations() != nil {
		t.Fatal("nil oracles recorded state")
	}
}

// TestCollectorReport: violations aggregate across machines in
// deterministic order and render through Report.
func TestCollectorReport(t *testing.T) {
	if NewCollector(Config{}) != nil {
		t.Fatal("empty config built a collector")
	}
	c := NewCollector(All())
	eng := sim.NewEngine()
	o1 := c.NewOracles(eng, nil)
	o2 := c.NewOracles(eng, nil)
	o2.CheckQueue("b", 9, 4)
	o1.CheckQueue("a", 9, 4)
	if c.TotalViolations() != 2 {
		t.Fatalf("TotalViolations = %d", c.TotalViolations())
	}
	vs := c.Violations()
	if vs[0].What >= vs[1].What {
		t.Fatalf("violations not deterministically ordered: %v", vs)
	}
	var sb strings.Builder
	c.Report(&sb)
	if !strings.Contains(sb.String(), "2 violation(s)") {
		t.Fatalf("report: %s", sb.String())
	}
	eng.Close()
}
