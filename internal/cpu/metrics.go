package cpu

import "mcsquare/internal/metrics"

// PublishMetrics registers the core's counters under the given scope (the
// machine uses "cpu<ID>").
func (c *Core) PublishMetrics(s metrics.Scope) {
	s.Counter("loads", &c.Stats.Loads)
	s.Counter("stores", &c.Stats.Stores)
	s.Counter("clwbs", &c.Stats.CLWBs)
	s.Counter("nt_stores", &c.Stats.NTStores)
	s.Counter("mclazies", &c.Stats.MCLazies)
	s.Counter("mcfrees", &c.Stats.MCFrees)
	s.Counter("fences", &c.Stats.Fences)
	s.Counter("issue_cycles", &c.Stats.IssueCycles)
	s.Counter("window_stall", &c.Stats.WindowStall)
	s.Counter("dep_stall", &c.Stats.DepStall)
	s.Counter("fence_stall", &c.Stats.FenceStall)
	s.Counter("compute_cycles", &c.Stats.ComputeCycle)
}
