// Package cpu models a CPU core at the memory-operation level: a window of
// in-flight memory operations bounded by the reorder buffer / load-store
// queue, an issue cost per operation, and blocking (dependent) versus
// asynchronous (independent) accesses.
//
// This is the machinery behind the paper's §II-C observation that memcpy
// time is dominated by memory stalls: a copy loop issues independent
// load/store pairs until the window fills, after which progress is limited
// by miss latency divided by memory-level parallelism. Dependent loads
// (pointer chasing) expose the full round-trip latency.
//
// All methods must be called from the core's workload process (a sim.Proc);
// they advance that process's simulated time.
package cpu

import (
	"fmt"

	"mcsquare/internal/cache"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Config bounds the core's memory parallelism.
type Config struct {
	// WindowSize is the maximum number of in-flight memory operations
	// (the ROB/LSQ bound). Misses are further bounded by the cache's MSHRs.
	WindowSize int
	// IssueCost is charged per memory operation (address generation, the
	// copy loop's test/branch, pipeline slots).
	IssueCost sim.Cycle
	// FenceCost is the fixed pipeline + store-buffer drain charge of an
	// MFENCE, paid even when nothing is outstanding.
	FenceCost sim.Cycle
}

// DefaultConfig models a wide out-of-order core.
func DefaultConfig() Config {
	return Config{WindowSize: 48, IssueCost: 1, FenceCost: 40}
}

// LazyIssuer is the ISA-level interface for the (MC)² instructions; the
// isa package provides the production implementation.
type LazyIssuer interface {
	// MCLazy performs the MCLAZY instruction for a core: destination
	// cachelines are invalidated, the packet is broadcast, and done fires
	// when every CTT has accepted the entry. tx is the operation's
	// transaction-trace id (0 when untraced).
	MCLazy(core int, dst memdata.Range, src memdata.Addr, tx txtrace.Tx, done func())
	// MCFree hints that the buffer is dead.
	MCFree(core int, r memdata.Range, tx txtrace.Tx, done func())
}

// Stats counts core activity.
type Stats struct {
	Loads        uint64
	Stores       uint64
	CLWBs        uint64
	NTStores     uint64
	MCLazies     uint64
	MCFrees      uint64
	Fences       uint64
	IssueCycles  uint64 // cycles spent issuing operations
	WindowStall  uint64 // cycles stalled on a full window
	DepStall     uint64 // cycles stalled on dependent loads
	FenceStall   uint64 // cycles draining at fences
	ComputeCycle uint64
}

// Core is one simulated CPU core bound to a workload process.
type Core struct {
	ID   int
	cfg  Config
	hier *cache.Hierarchy
	lazy LazyIssuer
	p    *sim.Proc
	tr   *txtrace.Tracer

	inflight    int
	windowWait  bool
	fenceWait   bool
	resumeToken *bool // non-nil while blocked on a dependent completion

	// Writeback FIFO tracking: MCLAZY packets are ordered behind all CLWBs
	// issued before them (§III-B1's "the caches' FIFO write buffer ensures
	// that the writebacks reach the MC before the MCLAZY packet").
	wbSeq      uint64
	wbInFlight map[uint64]struct{}
	wbBarriers []*wbBarrier

	// pendingStores counts in-flight stores per cacheline; a CLWB to a
	// line waits for them (x86 orders same-address CLWB after the store).
	pendingStores map[memdata.Addr]int
	storeWaiters  map[memdata.Addr][]func()

	Stats Stats
}

type wbBarrier struct {
	waiting map[uint64]struct{}
	fire    func()
}

// New creates a core. Bind attaches the workload process before use.
func New(id int, cfg Config, hier *cache.Hierarchy, lazy LazyIssuer) *Core {
	return &Core{
		ID: id, cfg: cfg, hier: hier, lazy: lazy,
		wbInFlight:    map[uint64]struct{}{},
		pendingStores: map[memdata.Addr]int{},
		storeWaiters:  map[memdata.Addr][]func(){},
	}
}

// Bind attaches the workload process that will drive this core.
func (c *Core) Bind(p *sim.Proc) { c.p = p }

// SetTracer attaches the transaction tracer (nil disables). Each memory
// operation the core issues becomes one root span per cacheline touched.
func (c *Core) SetTracer(t *txtrace.Tracer) { c.tr = t }

// Proc returns the bound workload process.
func (c *Core) Proc() *sim.Proc { return c.p }

// Now returns the current simulated cycle.
func (c *Core) Now() sim.Cycle { return c.p.Now() }

// Compute advances simulated time by non-memory work.
func (c *Core) Compute(cycles sim.Cycle) {
	c.Stats.ComputeCycle += uint64(cycles)
	c.p.Wait(cycles)
}

// issue charges issue cost and acquires a window slot, stalling while the
// window is full.
func (c *Core) issue() {
	c.Stats.IssueCycles += uint64(c.cfg.IssueCost)
	c.p.Wait(c.cfg.IssueCost)
	for c.inflight >= c.cfg.WindowSize {
		start := c.p.Now()
		c.windowWait = true
		c.p.Suspend()
		c.Stats.WindowStall += uint64(c.p.Now() - start)
	}
	c.inflight++
}

// complete releases a window slot; runs in engine context.
func (c *Core) complete() {
	c.inflight--
	if c.windowWait {
		c.windowWait = false
		c.p.Resume()
		return
	}
	if c.fenceWait && c.inflight == 0 {
		c.fenceWait = false
		c.p.Resume()
	}
}

// lineSpans decomposes [a, a+n) into per-line (lineAddr, offset, length).
type lineSpan struct {
	line memdata.Addr
	off  uint64
	n    uint64
}

func lineSpans(a memdata.Addr, n uint64) []lineSpan {
	var out []lineSpan
	for n > 0 {
		line := memdata.LineAlign(a)
		off := memdata.LineOffset(a)
		take := memdata.LineSize - off
		if take > n {
			take = n
		}
		out = append(out, lineSpan{line: line, off: off, n: take})
		a += memdata.Addr(take)
		n -= take
	}
	return out
}

// Load performs a dependent load of n bytes at a (n ≤ a few words in
// practice) and blocks until the data arrives: the latency lands on the
// critical path, as in pointer chasing.
func (c *Core) Load(a memdata.Addr, n uint64) []byte {
	if n == 0 {
		return nil
	}
	out := make([]byte, 0, n)
	for _, s := range lineSpans(a, n) {
		c.issue()
		c.Stats.Loads++
		sp := c.tr.BeginRoot(txtrace.StageCPULoad, int32(c.ID), uint64(s.line), uint64(c.p.Now()))
		start := c.p.Now()
		var data []byte
		done := false
		c.hier.ReadTx(c.ID, s.line, sp, func(d []byte) {
			c.tr.End(sp, uint64(c.p.Now()))
			data = d
			done = true
			c.complete()
			if c.resumeToken != nil && !*c.resumeToken {
				*c.resumeToken = true
				c.p.Resume()
			}
		})
		for !done {
			tok := false
			c.resumeToken = &tok
			c.p.Suspend()
			c.resumeToken = nil
		}
		c.Stats.DepStall += uint64(c.p.Now() - start)
		out = append(out, data[s.off:s.off+s.n]...)
	}
	return out
}

// LoadAsync issues an independent load of n bytes: the window slot is held
// until the data returns, but the core does not wait for it. Use for
// streaming reads whose values feed no further address computation.
func (c *Core) LoadAsync(a memdata.Addr, n uint64) {
	for _, s := range lineSpans(a, n) {
		c.issue()
		c.Stats.Loads++
		line := s.line
		sp := c.tr.BeginRoot(txtrace.StageCPULoad, int32(c.ID), uint64(line), uint64(c.p.Now()))
		c.hier.ReadTx(c.ID, line, sp, func([]byte) {
			c.tr.End(sp, uint64(c.p.Now()))
			c.complete()
		})
	}
}

// Store writes data at a (posted: the slot is held until the line is owned
// in the L1, but the core proceeds).
func (c *Core) Store(a memdata.Addr, data []byte) {
	for _, s := range lineSpans(a, uint64(len(data))) {
		c.issue()
		c.Stats.Stores++
		chunk := data[:s.n]
		data = data[s.n:]
		line := s.line
		c.pendingStores[line]++
		sp := c.tr.BeginRoot(txtrace.StageCPUStore, int32(c.ID), uint64(line), uint64(c.p.Now()))
		c.hier.WriteTx(c.ID, line, s.off, chunk, sp, func() {
			c.tr.EndFlags(sp, uint64(c.p.Now()), txtrace.FlagWrite)
			c.storeRetired(line)
			c.complete()
		})
	}
}

// storeRetired releases CLWBs waiting on same-line stores.
func (c *Core) storeRetired(line memdata.Addr) {
	c.pendingStores[line]--
	if c.pendingStores[line] > 0 {
		return
	}
	delete(c.pendingStores, line)
	if ws := c.storeWaiters[line]; len(ws) > 0 {
		delete(c.storeWaiters, line)
		for _, w := range ws {
			w()
		}
	}
}

// StoreNT performs non-temporal full-line stores covering [a, a+len).
// a must be line-aligned and len(data) a line multiple.
func (c *Core) StoreNT(a memdata.Addr, data []byte) {
	if !memdata.IsLineAligned(a) || uint64(len(data))%memdata.LineSize != 0 {
		panic(fmt.Sprintf("cpu: StoreNT needs line-aligned full lines (a=%#x n=%d)", a, len(data)))
	}
	for i := 0; i < len(data); i += memdata.LineSize {
		c.issue()
		c.Stats.NTStores++
		line := a + memdata.Addr(i)
		chunk := append([]byte(nil), data[i:i+memdata.LineSize]...)
		sp := c.tr.BeginRoot(txtrace.StageCPUNTStore, int32(c.ID), uint64(line), uint64(c.p.Now()))
		c.hier.WriteLineNTTx(c.ID, line, chunk, sp, func() {
			c.tr.EndFlags(sp, uint64(c.p.Now()), txtrace.FlagWrite)
			c.complete()
		})
	}
}

// CLWB writes the line containing a back to memory if dirty, keeping it
// cached. Asynchronous: the slot is held until the controller accepts.
func (c *Core) CLWB(a memdata.Addr) {
	c.issue()
	c.Stats.CLWBs++
	c.wbSeq++
	id := c.wbSeq
	c.wbInFlight[id] = struct{}{}
	line := memdata.LineAlign(a)
	sp := c.tr.BeginRoot(txtrace.StageCPUCLWB, int32(c.ID), uint64(line), uint64(c.p.Now()))
	fire := func() {
		c.hier.CLWBTx(c.ID, line, sp, func() {
			c.tr.End(sp, uint64(c.p.Now()))
			delete(c.wbInFlight, id)
			c.retireWB(id)
			c.complete()
		})
	}
	// Order behind in-flight stores to the same line: CLWB must write back
	// the store's data, not probe an empty cache mid-RFO.
	if c.pendingStores[line] > 0 {
		c.storeWaiters[line] = append(c.storeWaiters[line], fire)
		return
	}
	fire()
}

// retireWB removes a completed writeback from pending barriers, firing any
// that have fully drained.
func (c *Core) retireWB(id uint64) {
	live := c.wbBarriers[:0]
	for _, b := range c.wbBarriers {
		delete(b.waiting, id)
		if len(b.waiting) == 0 {
			b.fire()
		} else {
			live = append(live, b)
		}
	}
	c.wbBarriers = live
}

// afterPriorWritebacks runs fire once every CLWB issued before this point
// has been accepted by its memory controller (immediately if none are in
// flight).
func (c *Core) afterPriorWritebacks(fire func()) {
	if len(c.wbInFlight) == 0 {
		fire()
		return
	}
	waiting := make(map[uint64]struct{}, len(c.wbInFlight))
	for id := range c.wbInFlight {
		waiting[id] = struct{}{}
	}
	c.wbBarriers = append(c.wbBarriers, &wbBarrier{waiting: waiting, fire: fire})
}

// MCLazy executes the MCLAZY instruction. dst must be line-aligned with a
// line-multiple size (the §III-C alignment rules); the memcpy_lazy software
// wrapper in internal/softmc removes these constraints for callers.
func (c *Core) MCLazy(dst memdata.Range, src memdata.Addr) {
	if c.lazy == nil {
		panic("cpu: core has no lazy-copy unit")
	}
	c.issue()
	c.Stats.MCLazies++
	sp := c.tr.BeginRoot(txtrace.StageCPUMCLazy, int32(c.ID), uint64(dst.Start), uint64(c.p.Now()))
	// The packet is FIFO-ordered behind this core's earlier writebacks.
	c.afterPriorWritebacks(func() {
		c.lazy.MCLazy(c.ID, dst, src, sp, func() {
			c.tr.End(sp, uint64(c.p.Now()))
			c.complete()
		})
	})
}

// MCFree executes the MCFREE instruction for the buffer r.
func (c *Core) MCFree(r memdata.Range) {
	if c.lazy == nil {
		panic("cpu: core has no lazy-copy unit")
	}
	c.issue()
	c.Stats.MCFrees++
	sp := c.tr.BeginRoot(txtrace.StageCPUMCFree, int32(c.ID), uint64(r.Start), uint64(c.p.Now()))
	c.lazy.MCFree(c.ID, r, sp, func() {
		c.tr.End(sp, uint64(c.p.Now()))
		c.complete()
	})
}

// Fence blocks until every in-flight operation of this core has completed
// (MFENCE: orders prior loads, stores, CLWBs and MCLAZYs).
func (c *Core) Fence() {
	c.Stats.Fences++
	c.p.Wait(c.cfg.FenceCost)
	start := c.p.Now()
	for c.inflight > 0 {
		c.fenceWait = true
		c.p.Suspend()
	}
	c.Stats.FenceStall += uint64(c.p.Now() - start)
}

// Memcpy performs an eager byte copy of n bytes from src to dst through
// the cache hierarchy, moving real data. Each destination line is a fused
// load(+load)/store element: loads issue asynchronously (memory-level
// parallelism applies) and the store issues when its source bytes arrive.
// Call Fence to wait for completion; the copied bytes are visible to
// subsequent reads immediately thanks to store forwarding in the caches.
func (c *Core) Memcpy(dst, src memdata.Addr, n uint64) {
	for _, d := range lineSpans(dst, n) {
		// Source bytes feeding this destination span.
		sOff := src + (d.line + memdata.Addr(d.off) - dst)
		spans := lineSpans(sOff, d.n)

		// One window slot per source load plus one for the store.
		type part struct {
			span lineSpan
			data []byte
		}
		parts := make([]part, len(spans))
		for i, s := range spans {
			parts[i] = part{span: s}
		}
		c.issue() // store slot, reserved up front to model the LSQ entry
		c.Stats.Stores++
		remaining := len(spans)
		dstLine, dstOff, dstN := d.line, d.off, d.n
		ssp := c.tr.BeginRoot(txtrace.StageCPUStore, int32(c.ID), uint64(dstLine), uint64(c.p.Now()))
		fire := func() {
			buf := make([]byte, 0, dstN)
			for _, pt := range parts {
				buf = append(buf, pt.data[pt.span.off:pt.span.off+pt.span.n]...)
			}
			c.hier.WriteTx(c.ID, dstLine, dstOff, buf, ssp, func() {
				c.tr.EndFlags(ssp, uint64(c.p.Now()), txtrace.FlagWrite)
				c.complete()
			})
		}
		for i, s := range spans {
			c.issue()
			c.Stats.Loads++
			idx := i
			lsp := c.tr.BeginRoot(txtrace.StageCPULoad, int32(c.ID), uint64(s.line), uint64(c.p.Now()))
			c.hier.ReadTx(c.ID, s.line, lsp, func(data []byte) {
				c.tr.End(lsp, uint64(c.p.Now()))
				parts[idx].data = data
				c.complete()
				remaining--
				if remaining == 0 {
					fire()
				}
			})
		}
	}
}

// ReadBytes is a convenience dependent read returning n bytes from a.
func (c *Core) ReadBytes(a memdata.Addr, n uint64) []byte { return c.Load(a, n) }

// Inflight reports the number of operations currently in the window.
func (c *Core) Inflight() int { return c.inflight }
