package cpu

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"mcsquare/internal/cache"
	"mcsquare/internal/dram"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	phys *memdata.Physical
	hier *cache.Hierarchy
	core *Core
}

func newRig() *rig {
	eng := sim.NewEngine()
	phys := memdata.NewPhysical(1 << 24)
	mc := memctrl.New(0, eng, memctrl.DefaultConfig(), dram.NewChannel(dram.DDR4Config()), phys)
	hier := cache.New(eng, cache.DefaultConfig(1), func(memdata.Addr) *memctrl.Controller { return mc })
	core := New(0, DefaultConfig(), hier, nil)
	return &rig{eng: eng, phys: phys, hier: hier, core: core}
}

func (r *rig) fill(seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	buf := make([]byte, r.phys.Size())
	rnd.Read(buf)
	r.phys.Write(0, buf)
}

// run executes fn on the core's process and returns total simulated cycles.
func (r *rig) run(fn func(c *Core)) sim.Cycle {
	var end sim.Cycle
	r.eng.Go("wl", func(p *sim.Proc) {
		r.core.Bind(p)
		fn(r.core)
		end = p.Now()
	})
	r.eng.Drain()
	return end
}

func TestLoadReturnsData(t *testing.T) {
	r := newRig()
	r.fill(1)
	want := r.phys.Read(1000, 8)
	var got []byte
	r.run(func(c *Core) { got = c.Load(1000, 8) })
	if !bytes.Equal(got, want) {
		t.Fatalf("Load = %x, want %x", got, want)
	}
}

func TestLoadCrossesLines(t *testing.T) {
	r := newRig()
	r.fill(2)
	want := r.phys.Read(60, 16) // spans two lines
	var got []byte
	r.run(func(c *Core) { got = c.Load(60, 16) })
	if !bytes.Equal(got, want) {
		t.Fatal("line-crossing load mismatch")
	}
}

func TestStoreThenLoad(t *testing.T) {
	r := newRig()
	r.fill(3)
	var got []byte
	r.run(func(c *Core) {
		c.Store(500, []byte{9, 8, 7})
		c.Fence()
		got = c.Load(500, 3)
	})
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("got %v", got)
	}
}

func TestMemcpyMovesBytes(t *testing.T) {
	r := newRig()
	r.fill(4)
	const n = 1000
	want := r.phys.Read(4096, n)
	var got []byte
	r.run(func(c *Core) {
		c.Memcpy(65536+13, 4096, n) // misaligned destination
		c.Fence()
		got = c.Load(65536+13, n)
	})
	if !bytes.Equal(got, want) {
		t.Fatal("memcpy data mismatch")
	}
}

func TestMemcpyParallelismBeatsDependentLoads(t *testing.T) {
	// Copying N uncached lines with Memcpy (async) must be much faster than
	// N dependent loads (serialized on the miss latency).
	const lines = 64
	r1 := newRig()
	r1.fill(5)
	tAsync := r1.run(func(c *Core) {
		c.Memcpy(1<<20, 0, lines*memdata.LineSize)
		c.Fence()
	})
	r2 := newRig()
	r2.fill(5)
	perm := rand.New(rand.NewSource(5)).Perm(4096)[:lines]
	tDep := r2.run(func(c *Core) {
		for _, pi := range perm {
			// A random permutation of distant lines defeats the stride
			// prefetcher, exposing the full dependent-load latency.
			a := memdata.Addr(pi*memdata.LineSize) + (4 << 20)
			c.Load(a, 8)
		}
	})
	if tAsync*2 >= tDep {
		t.Fatalf("no MLP benefit: async=%d dependent=%d", tAsync, tDep)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	r := newRig()
	r.fill(6)
	r.run(func(c *Core) {
		for i := 0; i < 200; i++ {
			c.LoadAsync(memdata.Addr(i*4096), 8)
			if c.Inflight() > c.cfg.WindowSize {
				t.Fatalf("inflight %d exceeds window %d", c.Inflight(), c.cfg.WindowSize)
			}
		}
		c.Fence()
	})
	if r.core.Stats.WindowStall == 0 {
		t.Fatal("no window stalls with 200 outstanding loads")
	}
	if r.core.Inflight() != 0 {
		t.Fatal("fence left operations in flight")
	}
}

func TestFenceDrains(t *testing.T) {
	r := newRig()
	r.fill(7)
	r.run(func(c *Core) {
		c.Store(0, bytes.Repeat([]byte{1}, 64))
		c.LoadAsync(8192, 64)
		c.Fence()
		if c.Inflight() != 0 {
			t.Fatal("inflight after fence")
		}
	})
	if r.core.Stats.Fences != 1 {
		t.Fatalf("Fences = %d", r.core.Stats.Fences)
	}
}

func TestStoreNT(t *testing.T) {
	r := newRig()
	r.fill(8)
	data := bytes.Repeat([]byte{0xAB}, 2*memdata.LineSize)
	r.run(func(c *Core) {
		c.StoreNT(4096, data)
		c.Fence()
	})
	r.eng.Drain()
	if r.phys.ReadLine(4096)[0] != 0xAB || r.phys.ReadLine(4160)[0] != 0xAB {
		t.Fatal("NT store data missing from memory")
	}
	if r.core.Stats.NTStores != 2 {
		t.Fatalf("NTStores = %d", r.core.Stats.NTStores)
	}
}

func TestCLWBFromCore(t *testing.T) {
	r := newRig()
	r.fill(9)
	r.run(func(c *Core) {
		c.Store(4096, []byte{0x42})
		c.Fence()
		c.CLWB(4096)
		c.Fence()
	})
	r.eng.Drain()
	if r.phys.ReadLine(4096)[0] != 0x42 {
		t.Fatal("CLWB did not push data to memory")
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	r := newRig()
	end := r.run(func(c *Core) { c.Compute(1234) })
	if end != 1234 {
		t.Fatalf("end = %d", end)
	}
}

func TestCachedCopyFasterThanUncached(t *testing.T) {
	// "Touched memcpy" effect (Fig 10): copying a cached source is faster.
	const n = 16 << 10
	r1 := newRig()
	r1.fill(10)
	tCold := r1.run(func(c *Core) {
		c.Memcpy(8<<20, 0, n)
		c.Fence()
	})
	r2 := newRig()
	r2.fill(10)
	tWarm := r2.run(func(c *Core) {
		// Touch the source first.
		for a := memdata.Addr(0); a < n; a += memdata.LineSize {
			c.LoadAsync(a, 8)
		}
		c.Fence()
		start := c.Now()
		c.Memcpy(8<<20, 0, n)
		c.Fence()
		_ = start
	})
	_ = tWarm
	// Compare only the copy part for warm: rerun measuring inside.
	r3 := newRig()
	r3.fill(10)
	var warmCopy sim.Cycle
	r3.run(func(c *Core) {
		for a := memdata.Addr(0); a < n; a += memdata.LineSize {
			c.LoadAsync(a, 8)
		}
		c.Fence()
		start := c.Now()
		c.Memcpy(8<<20, 0, n)
		c.Fence()
		warmCopy = c.Now() - start
	})
	if warmCopy >= tCold {
		t.Fatalf("cached copy (%d) not faster than cold copy (%d)", warmCopy, tCold)
	}
}

// Property: lineSpans partitions [a, a+n) exactly — no gaps, no overlap,
// spans stay within their line.
func TestLineSpansPartitionQuick(t *testing.T) {
	f := func(a32 uint32, n16 uint16) bool {
		a, n := memdata.Addr(a32), uint64(n16)
		spans := lineSpans(a, n)
		cursor := a
		var total uint64
		for _, s := range spans {
			if s.line != memdata.LineAlign(s.line) || s.n == 0 {
				return false
			}
			if s.line+memdata.Addr(s.off) != cursor {
				return false // gap or overlap
			}
			if s.off+s.n > memdata.LineSize {
				return false // crosses a line
			}
			cursor += memdata.Addr(s.n)
			total += s.n
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
