package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"mcsquare/internal/stats"
)

func TestRegistryKindsAndLiveReads(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 7
	cycles := uint64(100)
	var h stats.Histogram
	h.Add(2)
	h.Add(3)

	r.Counter("mc0.reads", &c)
	r.CounterFunc("sim.cycles", func() uint64 { return cycles })
	r.Gauge("mc0.wpq_occupancy", func() float64 { return 0.5 })
	r.Histogram("oskern.fault_latency", &h)

	if got := r.CounterValue("mc0.reads"); got != 7 {
		t.Fatalf("CounterValue = %d, want 7", got)
	}
	c = 9 // the registry is a view: component increments show up live
	if got := r.CounterValue("mc0.reads"); got != 9 {
		t.Fatalf("CounterValue after increment = %d, want 9", got)
	}
	if got := r.CounterValue("sim.cycles"); got != 100 {
		t.Fatalf("CounterFunc value = %d, want 100", got)
	}
	if got := r.GaugeValue("mc0.wpq_occupancy"); got != 0.5 {
		t.Fatalf("GaugeValue = %v, want 0.5", got)
	}

	want := []string{"mc0.reads", "mc0.wpq_occupancy", "oskern.fault_latency", "sim.cycles"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}

	s := r.Snapshot()
	if v := s.Values["oskern.fault_latency"]; v.Kind != KindHistogram || v.Count != 2 || v.Value != 5 {
		t.Fatalf("histogram snapshot = %+v", v)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var a, b uint64
	r.Counter("l1.misses", &a)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("l1.misses", &b)
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "L1.misses", "l1..misses", ".misses", "misses.", "l1 misses", "l1-misses"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			var v uint64
			NewRegistry().Counter(bad, &v)
		}()
	}
}

func TestScopeNesting(t *testing.T) {
	r := NewRegistry()
	var v uint64
	r.Scope("").Counter("cycles", &v) // root scope: no leading dot
	r.Scope("mc0").Scope("ctt").Counter("bounces", &v)
	want := []string{"cycles", "mc0.ctt.bounces"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 10
	g := 1.0
	var h stats.Histogram
	h.Add(4)
	r.Counter("c", &c)
	r.Gauge("g", func() float64 { return g })
	r.Histogram("h", &h)

	before := r.Snapshot()
	c += 5
	g = 3.0
	h.Add(6)
	after := r.Snapshot()

	d := after.Delta(before)
	if got := d.Counter("c"); got != 5 {
		t.Fatalf("counter delta = %d, want 5", got)
	}
	if got := d.Gauge("g"); got != 3.0 {
		t.Fatalf("gauge in delta = %v, want current value 3", got)
	}
	if v := d.Values["h"]; v.Count != 1 || v.Value != 6 {
		t.Fatalf("histogram delta = %+v, want 1 sample summing 6", v)
	}
	// Delta must not disturb the inputs (snapshot immutability).
	if before.Counter("c") != 10 || after.Counter("c") != 15 {
		t.Fatalf("inputs mutated: before=%d after=%d", before.Counter("c"), after.Counter("c"))
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewSnapshot()
	a.Values["cpu0.loads"] = Value{Kind: KindCounter, Count: 3}
	a.Values["only_a"] = Value{Kind: KindCounter, Count: 1}
	b := NewSnapshot()
	b.Values["cpu0.loads"] = Value{Kind: KindCounter, Count: 4}
	b.Values["only_b"] = Value{Kind: KindGauge, Value: 2.5}
	a.Merge(b)
	if a.Counter("cpu0.loads") != 7 || a.Counter("only_a") != 1 || a.Gauge("only_b") != 2.5 {
		t.Fatalf("merge result = %+v", a.Values)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	var c uint64 = 42
	var h stats.Histogram
	h.Add(1.5)
	r.Counter("engine.bounces", &c)
	r.Gauge("ctt.high_water", func() float64 { return 12 })
	r.Histogram("oskern.fault_latency", &h)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(back.Values, s.Values) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back.Values, s.Values)
	}
	// Kinds must serialize as names, not numbers.
	if !bytes.Contains(buf.Bytes(), []byte(`"kind": "histogram"`)) {
		t.Fatalf("kind not rendered by name:\n%s", buf.String())
	}
}

func TestCollectorAmbientBinding(t *testing.T) {
	if AmbientCollector() != nil {
		t.Fatal("unexpected ambient collector on test goroutine")
	}
	col := NewCollector()
	release := col.Bind()
	if AmbientCollector() != col {
		t.Fatal("bound collector not visible on same goroutine")
	}

	// Other goroutines must not see this binding.
	var wg sync.WaitGroup
	wg.Add(1)
	var other *Collector
	go func() {
		defer wg.Done()
		other = AmbientCollector()
	}()
	wg.Wait()
	if other != nil {
		t.Fatal("binding leaked to another goroutine")
	}

	// Nested bind restores the outer one on release.
	inner := NewCollector()
	release2 := inner.Bind()
	if AmbientCollector() != inner {
		t.Fatal("inner bind not visible")
	}
	release2()
	if AmbientCollector() != col {
		t.Fatal("outer binding not restored")
	}
	release()
	if AmbientCollector() != nil {
		t.Fatal("binding not cleared after release")
	}
}

func TestCollectorSnapshotMergesRegistries(t *testing.T) {
	col := NewCollector()
	for i := 0; i < 2; i++ {
		r := NewRegistry()
		v := uint64(10 * (i + 1))
		v2 := v // capture per-registry storage
		r.Counter("sim.cycles", &v2)
		col.Add(r)
	}
	s := col.Snapshot()
	if got := s.Counter("sim.cycles"); got != 30 {
		t.Fatalf("merged sim.cycles = %d, want 30", got)
	}
}
