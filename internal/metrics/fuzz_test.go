package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

// decodeSnapshot builds a snapshot from fuzz bytes: each 10-byte record is
// (name selector, kind-irrelevant pad, 4-byte count, 4-byte value). The
// name space is deliberately tiny (8 names) so merges constantly collide —
// the interesting path. A name's kind is derived from the name itself,
// mirroring the real system where registration fixes a name's kind
// globally; Merge's documented contract assumes kind-consistent inputs.
func decodeSnapshot(data []byte) *Snapshot {
	s := NewSnapshot()
	for i := 0; i+10 <= len(data); i += 10 {
		rec := data[i : i+10]
		name := string(rune('a' + rec[0]%8))
		kind := Kind(rec[0] % 8 % 3)
		count := uint64(rec[2]) | uint64(rec[3])<<8 | uint64(rec[4])<<16 | uint64(rec[5])<<24
		// Small integer-valued floats: exact under summation in any order,
		// so the associativity law can be checked exactly.
		value := float64(int8(rec[6])) * float64(rec[7])
		v := s.Values[name]
		v.Kind = kind
		v.Count += count
		v.Value += value
		s.Values[name] = v
	}
	return s
}

func cloneSnapshot(s *Snapshot) *Snapshot {
	c := NewSnapshot()
	c.Merge(s)
	return c
}

func snapshotsEqual(a, b *Snapshot) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for n, av := range a.Values {
		bv, ok := b.Values[n]
		if !ok || av.Kind != bv.Kind || av.Count != bv.Count {
			return false
		}
		if math.Abs(av.Value-bv.Value) > 1e-6 {
			return false
		}
	}
	return true
}

// FuzzSnapshotMerge checks the algebra the figure pipeline and the
// workload goldens rely on when they fold per-machine registries together:
// merging is commutative, associative, has the empty snapshot as identity,
// and the result survives the JSON round trip.
func FuzzSnapshotMerge(f *testing.F) {
	f.Add([]byte{1, 0, 2, 0, 0, 0, 3, 4, 0, 0}, []byte{}, []byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 1, 1, 0, 0}, []byte{0, 0, 2, 0, 0, 0, 2, 2, 0, 0}, []byte{8, 0, 3, 0, 0, 0, 3, 3, 0, 0})
	f.Fuzz(func(t *testing.T, da, db, dc []byte) {
		a, b, c := decodeSnapshot(da), decodeSnapshot(db), decodeSnapshot(dc)

		// Commutativity: a∪b == b∪a.
		ab := cloneSnapshot(a)
		ab.Merge(b)
		ba := cloneSnapshot(b)
		ba.Merge(a)
		if !snapshotsEqual(ab, ba) {
			t.Fatalf("merge not commutative:\n a∪b %+v\n b∪a %+v", ab.Values, ba.Values)
		}

		// Associativity: (a∪b)∪c == a∪(b∪c). Counts are exact; the decoded
		// Values are small integers, so the float sums are exact too.
		abc1 := cloneSnapshot(ab)
		abc1.Merge(c)
		bc := cloneSnapshot(b)
		bc.Merge(c)
		abc2 := cloneSnapshot(a)
		abc2.Merge(bc)
		if !snapshotsEqual(abc1, abc2) {
			t.Fatalf("merge not associative:\n (a∪b)∪c %+v\n a∪(b∪c) %+v", abc1.Values, abc2.Values)
		}

		// Identity: merging the empty snapshot changes nothing.
		id := cloneSnapshot(abc1)
		id.Merge(NewSnapshot())
		if !snapshotsEqual(id, abc1) {
			t.Fatalf("empty snapshot is not a merge identity")
		}

		// JSON round trip of the merged result.
		enc, err := json.Marshal(abc1)
		if err != nil {
			t.Fatal(err)
		}
		var back Snapshot
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("snapshot JSON does not decode: %v", err)
		}
		if !snapshotsEqual(&back, abc1) {
			t.Fatalf("JSON round trip changed the snapshot:\n%s", enc)
		}
	})
}
