package metrics

import (
	"testing"

	"mcsquare/internal/stats"
)

// buildRegistry makes a registry shaped like a real machine's: a few
// dozen counters, a handful of gauges and histograms.
func buildRegistry(tb testing.TB) (*Registry, []*uint64) {
	tb.Helper()
	r := NewRegistry()
	var owned []*uint64
	for _, name := range []string{
		"engine.lazy_ops", "engine.bounces", "engine.eager_fallbacks",
		"engine.eager_fallback_bytes", "ctt.inserts",
		"mc0.reads", "mc0.writes", "mc1.reads", "mc1.writes",
		"l1.hits", "l1.misses", "l2.hits", "l2.misses",
		"cpu0.loads", "cpu0.stores", "cpu1.loads", "cpu1.stores",
	} {
		v := new(uint64)
		*v = 7
		owned = append(owned, v)
		r.Counter(name, v)
	}
	cyc := uint64(0)
	r.CounterFunc("sim.cycles", func() uint64 { cyc += 100; return cyc })
	entries := 3.0
	r.Gauge("ctt.entries", func() float64 { return entries })
	r.Gauge("ctt.high_water", func() float64 { return 12 })
	h := new(stats.Histogram)
	for i := 0; i < 32; i++ {
		h.Add(float64(i))
	}
	r.Histogram("mc0.rpq_wait", h)
	return r, owned
}

func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	r, owned := buildRegistry(t)
	var dst Snapshot
	// Seed dst with stale names to prove SnapshotInto prunes them.
	dst.Values = map[string]Value{
		"stale.metric":  {Kind: KindCounter, Count: 99},
		"stale.metric2": {Kind: KindGauge, Value: 1},
		"stale.metric3": {Kind: KindCounter, Count: 1},
		"stale.metric4": {Kind: KindCounter, Count: 1},
		"stale.metric5": {Kind: KindCounter, Count: 1},
		"stale.a":       {Kind: KindCounter, Count: 1},
		"stale.b":       {Kind: KindCounter, Count: 1},
		"stale.c":       {Kind: KindCounter, Count: 1},
		"stale.d":       {Kind: KindCounter, Count: 1},
		"stale.e":       {Kind: KindCounter, Count: 1},
		"stale.f":       {Kind: KindCounter, Count: 1},
		"stale.g":       {Kind: KindCounter, Count: 1},
		"stale.h":       {Kind: KindCounter, Count: 1},
		"stale.i":       {Kind: KindCounter, Count: 1},
		"stale.j":       {Kind: KindCounter, Count: 1},
		"stale.k":       {Kind: KindCounter, Count: 1},
		"stale.l":       {Kind: KindCounter, Count: 1},
		"stale.m":       {Kind: KindCounter, Count: 1},
		"stale.n":       {Kind: KindCounter, Count: 1},
		"stale.o":       {Kind: KindCounter, Count: 1},
		"stale.p":       {Kind: KindCounter, Count: 1},
		"stale.q":       {Kind: KindCounter, Count: 1},
		"stale.r":       {Kind: KindCounter, Count: 1},
	}
	r.SnapshotInto(&dst)
	want := r.Snapshot()
	if len(dst.Values) != len(want.Values) {
		t.Fatalf("SnapshotInto kept %d values, Snapshot has %d", len(dst.Values), len(want.Values))
	}
	for name, w := range want.Values {
		// sim.cycles is a CounterFunc that advances per read; skip it.
		if name == "sim.cycles" {
			continue
		}
		if got := dst.Values[name]; got != w {
			t.Errorf("%s: SnapshotInto=%+v Snapshot=%+v", name, got, w)
		}
	}
	if _, ok := dst.Values["stale.metric"]; ok {
		t.Error("SnapshotInto did not prune stale name")
	}
	_ = owned
}

func TestDeltaIntoMatchesDelta(t *testing.T) {
	r, owned := buildRegistry(t)
	prev := r.Snapshot()
	for _, v := range owned {
		*v += 5
	}
	cur := r.Snapshot()
	want := cur.Delta(prev)
	var dst Snapshot
	cur.DeltaInto(&dst, prev)
	if len(dst.Values) != len(want.Values) {
		t.Fatalf("DeltaInto has %d values, Delta has %d", len(dst.Values), len(want.Values))
	}
	for name, w := range want.Values {
		if got := dst.Values[name]; got != w {
			t.Errorf("%s: DeltaInto=%+v Delta=%+v", name, got, w)
		}
	}
	if got := dst.Values["engine.lazy_ops"].Count; got != 5 {
		t.Errorf("engine.lazy_ops delta = %d, want 5", got)
	}
}

// TestSnapshotIntoAllocs pins the steady-state sampling hot path — the
// exact sequence the timeline Recorder runs per window — at zero
// allocations per call.
func TestSnapshotIntoAllocs(t *testing.T) {
	r, _ := buildRegistry(t)
	var cur, prev, delta Snapshot
	r.SnapshotInto(&prev)
	r.SnapshotInto(&cur)
	cur.DeltaInto(&delta, &prev)
	allocs := testing.AllocsPerRun(200, func() {
		r.SnapshotInto(&cur)
		cur.DeltaInto(&delta, &prev)
		cur, prev = prev, cur
	})
	if allocs != 0 {
		t.Fatalf("steady-state SnapshotInto+DeltaInto allocates %.1f/op, want 0", allocs)
	}
}

// TestCollectorSnapshotIntoAllocs pins the collector-level merge path.
func TestCollectorSnapshotIntoAllocs(t *testing.T) {
	c := NewCollector()
	r1, _ := buildRegistry(t)
	r2, _ := buildRegistry(t)
	c.Add(r1)
	c.Add(r2)
	var dst Snapshot
	c.SnapshotInto(&dst)
	one := r1.Snapshot()
	if dst.Values["engine.lazy_ops"].Count != 2*one.Values["engine.lazy_ops"].Count {
		t.Fatalf("collector SnapshotInto did not sum registries")
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.SnapshotInto(&dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Collector.SnapshotInto allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkSnapshotInto(b *testing.B) {
	r, _ := buildRegistry(b)
	var cur, prev, delta Snapshot
	r.SnapshotInto(&prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SnapshotInto(&cur)
		cur.DeltaInto(&delta, &prev)
		cur, prev = prev, cur
	}
}

func BenchmarkSnapshotAlloc(b *testing.B) {
	r, _ := buildRegistry(b)
	prev := r.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := r.Snapshot()
		_ = cur.Delta(prev)
		prev = cur
	}
}
