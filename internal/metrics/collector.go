package metrics

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Collector gathers the registries of every machine built while it is
// bound, without the builder having to thread anything through ~30
// workload call sites: the runner binds a collector around a job, and
// machine.New hands its registry to AmbientCollector(). Summing the
// collected "sim.cycles" counters afterwards gives exact per-job cycle
// attribution — the replacement for sampling the process-wide total.
type Collector struct {
	mu   sync.Mutex
	regs []*Registry
}

func NewCollector() *Collector { return &Collector{} }

// Add records a registry. Safe to call from any goroutine.
func (c *Collector) Add(r *Registry) {
	c.mu.Lock()
	c.regs = append(c.regs, r)
	c.mu.Unlock()
}

// Registries returns the collected registries in registration order.
func (c *Collector) Registries() []*Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Registry(nil), c.regs...)
}

// Snapshot merges a snapshot of every collected registry: same-named
// metrics (cpu0.loads on two machines) sum, which is the per-job
// aggregate the runner reports.
func (c *Collector) Snapshot() *Snapshot {
	s := NewSnapshot()
	c.SnapshotInto(s)
	return s
}

// SnapshotInto is the reuse-friendly Snapshot: dst is cleared and refilled
// with the merged reading, reusing its map storage. Steady-state calls on
// a stable registry set are allocation-free, which makes per-window
// sampling affordable.
func (c *Collector) SnapshotInto(dst *Snapshot) {
	if dst.Values == nil {
		dst.Values = make(map[string]Value)
	}
	clear(dst.Values)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.regs {
		r.addInto(dst)
	}
}

// ambient maps goroutine id → bound collector. Bind/lookup happen only at
// job boundaries and machine construction, never per event, so a plain
// mutexed map is fine.
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Collector{}
)

// Bind attaches c to the calling goroutine and returns a release func
// that restores whatever was bound before. Machines built on this
// goroutine between Bind and release register themselves with c.
func (c *Collector) Bind() (release func()) {
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = c
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// AmbientCollector returns the collector bound to the calling goroutine,
// or nil if none is.
func AmbientCollector() *Collector {
	id := goid()
	ambientMu.Lock()
	c := ambient[id]
	ambientMu.Unlock()
	return c
}

// goid parses the calling goroutine's id from its stack header
// ("goroutine 123 [running]:"). Called only at bind points and machine
// construction; the few-microsecond cost is irrelevant there.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("metrics: cannot parse goroutine id from stack header")
	}
	return id
}
