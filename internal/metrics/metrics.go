// Package metrics is the unified observability surface of the simulator.
//
// Every component registers its counters, gauges and histograms into a
// per-machine Registry at construction time, under a stable dotted
// namespace ("mc0.rejected_writes", "l1.misses", "ctt.high_water", ...).
// The registry does not own any state: a Counter is a *uint64 view of a
// field that the component keeps incrementing exactly as before, a Gauge
// or CounterFunc is a closure, and a Histogram wraps a *stats.Histogram.
// Hot paths therefore pay nothing for being observable, and migrating a
// component onto the registry cannot change simulated behaviour.
//
// Readers never reach into package internals. They either read a single
// live metric by name (Registry.CounterValue / GaugeValue) or capture a
// Snapshot — an immutable point-in-time reading of every metric — and use
// Delta to measure an interval without resetting anything, or Merge to
// aggregate machines and jobs. Snapshots round-trip through JSON for
// machine-readable dumps (mcsim -stats).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"mcsquare/internal/stats"
)

// Kind discriminates the metric types a registry can hold.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalText / UnmarshalText make Kind render as its name in JSON.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("metrics: unknown kind %q", b)
	}
	return nil
}

// metric is one registered source. Exactly one of the fields matching
// kind is set.
type metric struct {
	kind Kind
	c    *uint64
	cf   func() uint64
	g    func() float64
	h    *stats.Histogram
}

// Registry maps dotted names to live metric sources. One registry per
// machine; registration happens at construction, reads at measurement
// points, so the mutex is never contended on a hot path.
type Registry struct {
	mu    sync.Mutex
	items map[string]metric
}

func NewRegistry() *Registry {
	return &Registry{items: make(map[string]metric)}
}

// ValidName reports whether name follows the namespace scheme (lowercase
// dotted components of [a-z0-9_]+) — exported so config validation can
// vet metric-name prefixes in spec files.
func ValidName(name string) bool { return validName(name) }

// validName enforces the namespace scheme: lowercase dotted components of
// [a-z0-9_]+. Names are API — figures and golden tests pin them — so a
// malformed one is a programming error and panics.
func validName(name string) bool {
	if name == "" {
		return false
	}
	prev := byte('.')
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
		case c == '.':
			if prev == '.' {
				return false // empty component
			}
		default:
			return false
		}
		prev = c
	}
	return prev != '.'
}

func (r *Registry) register(name string, m metric) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.items[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.items[name] = m
}

// Counter registers a monotonically increasing uint64 owned by the
// component; the registry reads it through the pointer.
func (r *Registry) Counter(name string, v *uint64) {
	r.register(name, metric{kind: KindCounter, c: v})
}

// CounterFunc registers a counter computed on demand (e.g. an engine's
// current cycle).
func (r *Registry) CounterFunc(name string, f func() uint64) {
	r.register(name, metric{kind: KindCounter, cf: f})
}

// Gauge registers an instantaneous value computed on demand (occupancies,
// high-water marks).
func (r *Registry) Gauge(name string, f func() float64) {
	r.register(name, metric{kind: KindGauge, g: f})
}

// Histogram registers a distribution backed by the component's own
// stats.Histogram.
func (r *Registry) Histogram(name string, h *stats.Histogram) {
	r.register(name, metric{kind: KindHistogram, h: h})
}

// Scope returns a view of the registry that prefixes every registration
// with "prefix.". An empty prefix is the root scope.
func (r *Registry) Scope(prefix string) Scope { return Scope{r: r, prefix: prefix} }

// Names returns every registered name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.items))
	for n := range r.items {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CounterValue reads one live counter by name. Unknown names or kind
// mismatches panic: callers name metrics statically, so a miss is a typo.
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.Lock()
	m, ok := r.items[name]
	r.mu.Unlock()
	if !ok || m.kind != KindCounter {
		panic(fmt.Sprintf("metrics: no counter %q", name))
	}
	if m.cf != nil {
		return m.cf()
	}
	return *m.c
}

// GaugeValue reads one live gauge by name.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.Lock()
	m, ok := r.items[name]
	r.mu.Unlock()
	if !ok || m.kind != KindGauge {
		panic(fmt.Sprintf("metrics: no gauge %q", name))
	}
	return m.g()
}

// read produces one metric's current reading.
func (m metric) read() Value {
	v := Value{Kind: m.kind}
	switch m.kind {
	case KindCounter:
		if m.cf != nil {
			v.Count = m.cf()
		} else {
			v.Count = *m.c
		}
	case KindGauge:
		v.Value = m.g()
	case KindHistogram:
		v.Count = uint64(m.h.N())
		v.Value = m.h.Sum()
	}
	return v
}

// Snapshot captures every metric's current reading.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	r.SnapshotInto(s)
	return s
}

// SnapshotInto captures every metric's current reading into dst, reusing
// dst's map: names no longer in the registry are removed, everything else
// is overwritten in place. Steady-state calls are allocation-free, which
// is what the timeline plane's windowed sampling relies on.
func (r *Registry) SnapshotInto(dst *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if dst.Values == nil {
		dst.Values = make(map[string]Value, len(r.items))
	}
	if len(dst.Values) > len(r.items) {
		for name := range dst.Values {
			if _, ok := r.items[name]; !ok {
				delete(dst.Values, name)
			}
		}
	}
	for name, m := range r.items {
		dst.Values[name] = m.read()
	}
}

// addInto folds the registry's current readings into dst, summing with
// whatever dst already holds (the Collector.SnapshotInto merge step).
// Names absent from dst are inserted.
func (r *Registry) addInto(dst *Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, m := range r.items {
		v := m.read()
		if p, ok := dst.Values[name]; ok {
			v.Count += p.Count
			v.Value += p.Value
		}
		dst.Values[name] = v
	}
}

// Scope joins a dotted prefix onto registrations, so components publish
// relative names ("misses") and the machine decides the namespace ("l1").
type Scope struct {
	r      *Registry
	prefix string
}

func (s Scope) join(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// Scope nests a further prefix.
func (s Scope) Scope(prefix string) Scope {
	return Scope{r: s.r, prefix: s.join(prefix)}
}

func (s Scope) Counter(name string, v *uint64)            { s.r.Counter(s.join(name), v) }
func (s Scope) CounterFunc(name string, f func() uint64)  { s.r.CounterFunc(s.join(name), f) }
func (s Scope) Gauge(name string, f func() float64)       { s.r.Gauge(s.join(name), f) }
func (s Scope) Histogram(name string, h *stats.Histogram) { s.r.Histogram(s.join(name), h) }

// Value is one metric's reading inside a Snapshot. Counters use Count;
// gauges use Value; histograms use Count (sample count) and Value (sample
// sum).
type Value struct {
	Kind  Kind    `json:"kind"`
	Count uint64  `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`
}

// Snapshot is an immutable point-in-time reading of a registry (or a
// merge of several). It marshals to JSON as {"name": {"kind": ...}, ...}.
type Snapshot struct {
	Values map[string]Value
}

func NewSnapshot() *Snapshot { return &Snapshot{Values: make(map[string]Value)} }

// Names returns the snapshot's metric names, sorted.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Values))
	for n := range s.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get looks up one reading.
func (s *Snapshot) Get(name string) (Value, bool) {
	v, ok := s.Values[name]
	return v, ok
}

// Counter returns a counter's value, or 0 if absent.
func (s *Snapshot) Counter(name string) uint64 { return s.Values[name].Count }

// Gauge returns a gauge's value, or 0 if absent.
func (s *Snapshot) Gauge(name string) float64 { return s.Values[name].Value }

// Delta returns s - prev: for counters and histograms the increase since
// prev (names missing from prev count from zero), for gauges the value in
// s. This is how interval figures measure a phase without resetting any
// component state.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	d := &Snapshot{Values: make(map[string]Value, len(s.Values))}
	s.DeltaInto(d, prev)
	return d
}

// DeltaInto computes s - prev into dst (see Delta), clearing and reusing
// dst's map. Allocation-free in the steady state.
func (s *Snapshot) DeltaInto(dst, prev *Snapshot) {
	if dst.Values == nil {
		dst.Values = make(map[string]Value, len(s.Values))
	}
	clear(dst.Values)
	for name, v := range s.Values {
		p := prev.Values[name]
		switch v.Kind {
		case KindCounter:
			v.Count -= p.Count
		case KindHistogram:
			v.Count -= p.Count
			v.Value -= p.Value
		}
		dst.Values[name] = v
	}
}

// Merge folds other into s, summing counters and histograms (and gauges,
// which makes merged gauges totals across machines — the only meaningful
// aggregate without per-source context). Names only in other are copied.
func (s *Snapshot) Merge(other *Snapshot) {
	for name, ov := range other.Values {
		v, ok := s.Values[name]
		if !ok {
			s.Values[name] = ov
			continue
		}
		v.Count += ov.Count
		v.Value += ov.Value
		s.Values[name] = v
	}
}

// MarshalJSON renders the snapshot as a single name→reading object with
// deterministically ordered keys (encoding/json sorts map keys).
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.Values)
}

func (s *Snapshot) UnmarshalJSON(b []byte) error {
	s.Values = make(map[string]Value)
	return json.Unmarshal(b, &s.Values)
}

// WriteJSON writes the snapshot as indented JSON, for mcsim -stats.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
