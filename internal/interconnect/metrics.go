package interconnect

import "mcsquare/internal/metrics"

// PublishMetrics registers the link's counters under the given scope (the
// machine uses "xcon").
func (b *Bus) PublishMetrics(s metrics.Scope) {
	s.Counter("messages", &b.Stats.Messages)
	s.Counter("bytes", &b.Stats.Bytes)
	s.Counter("broadcasts", &b.Stats.Broadcasts)
	s.Counter("queue_cycles", &b.Stats.QueueCycles)
	s.Counter("retries", &b.Stats.Retries)
	s.Counter("dup_packets", &b.Stats.DupPackets)
}
