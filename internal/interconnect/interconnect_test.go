package interconnect

import (
	"testing"

	"mcsquare/internal/sim"
)

func TestLatencyOnlyDelivery(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{HopLatency: 24})
	var at []sim.Cycle
	eng.After(0, func() {
		b.Send(64, func() { at = append(at, eng.Now()) })
		b.Send(64, func() { at = append(at, eng.Now()) })
	})
	eng.Drain()
	if len(at) != 2 || at[0] != 24 || at[1] != 24 {
		t.Fatalf("latency-only sends arrived at %v, want both at 24", at)
	}
	if b.Stats.Messages != 2 || b.Stats.Bytes != 128 {
		t.Fatalf("stats: %+v", b.Stats)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{HopLatency: 10, BytesPerCycle: 8}) // 64B takes 8 cycles
	var at []sim.Cycle
	eng.After(0, func() {
		for i := 0; i < 3; i++ {
			b.Send(64, func() { at = append(at, eng.Now()) })
		}
	})
	eng.Drain()
	want := []sim.Cycle{18, 26, 34} // 10 + 8, then +8 per queued transfer
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("arrivals %v, want %v", at, want)
		}
	}
	if b.Stats.QueueCycles == 0 {
		t.Fatal("no queueing recorded despite saturation")
	}
}

func TestBandwidthIdleGapsReset(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{HopLatency: 0, BytesPerCycle: 1})
	var second sim.Cycle
	eng.After(0, func() { b.Send(10, func() {}) })
	eng.After(100, func() { b.Send(10, func() { second = eng.Now() }) })
	eng.Drain()
	if second != 110 {
		t.Fatalf("post-idle send arrived at %d, want 110 (no stale busy)", second)
	}
}

func TestBroadcast(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{HopLatency: 24})
	got := map[int]sim.Cycle{}
	eng.After(0, func() {
		b.Broadcast(3, func(i int) { got[i] = eng.Now() })
	})
	eng.Drain()
	if len(got) != 3 {
		t.Fatalf("broadcast reached %d endpoints", len(got))
	}
	for i, at := range got {
		if at != 24 {
			t.Fatalf("endpoint %d at %d, want 24", i, at)
		}
	}
	if b.Stats.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d", b.Stats.Broadcasts)
	}
}

func TestZeroByteTransferStillProgresses(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, Config{HopLatency: 5, BytesPerCycle: 64})
	fired := false
	eng.After(0, func() { b.Send(0, func() { fired = true }) })
	eng.Drain()
	if !fired {
		t.Fatal("zero-byte send never delivered")
	}
}
