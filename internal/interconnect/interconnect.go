// Package interconnect models the link between the cache hierarchy and the
// memory controllers (the paper's Fig 1): a point-to-point latency per hop
// plus an optional shared-bandwidth constraint, and the broadcast facility
// MCLAZY packets and CTT updates use (§III-B1 step 3).
//
// With BytesPerCycle = 0 (the default) the link is latency-only, matching
// the fixed-hop model the rest of the simulator was calibrated with. A
// finite bandwidth serializes transfers, which the channel-scaling study
// uses to show interconnect saturation.
package interconnect

import (
	"mcsquare/internal/faultinject"
	"mcsquare/internal/sim"
	"mcsquare/internal/txtrace"
)

// Config shapes one link direction.
type Config struct {
	// HopLatency is charged to every message.
	HopLatency sim.Cycle
	// BytesPerCycle caps throughput; 0 means unconstrained.
	BytesPerCycle float64
}

// Stats counts link activity.
type Stats struct {
	Messages   uint64
	Bytes      uint64
	Broadcasts uint64
	// QueueCycles accumulates time messages waited for bandwidth.
	QueueCycles uint64
	Retries     uint64 // retransmissions after injected packet drops
	DupPackets  uint64 // injected duplicate packets (receiver discards)
}

// maxSendRetries bounds the retransmission backoff loop; the final
// attempt always delivers, so an injected drop burst degrades latency but
// never loses a message.
const maxSendRetries = 4

// Bus is one shared link. All methods run in engine (event) context.
type Bus struct {
	eng  *sim.Engine
	cfg  Config
	busy sim.Cycle // cycle until which the link is transmitting
	tr   *txtrace.Tracer
	flt  *faultinject.Plane

	Stats Stats
}

// New creates a bus.
func New(eng *sim.Engine, cfg Config) *Bus {
	return &Bus{eng: eng, cfg: cfg}
}

// Config returns the link configuration.
func (b *Bus) Config() Config { return b.cfg }

// SetTracer attaches the transaction tracer (nil disables).
func (b *Bus) SetTracer(t *txtrace.Tracer) { b.tr = t }

// SetFaults attaches the machine's fault-injection plane (nil disables).
func (b *Bus) SetFaults(p *faultinject.Plane) { b.flt = p }

// Send delivers a message of the given size: fn runs after the hop latency
// plus any bandwidth-induced queueing.
func (b *Bus) Send(bytes uint64, fn func()) { b.SendTx(bytes, 0, fn) }

// SendTx is Send carrying a transaction id: traced messages record one
// xcon.hop span covering latency plus queueing.
func (b *Bus) SendTx(bytes uint64, tx txtrace.Tx, fn func()) {
	b.Stats.Messages++
	b.Stats.Bytes += bytes
	delay := b.transferDelay(bytes)
	if b.flt != nil {
		delay += b.faultDelay(bytes)
	}
	if tx != 0 {
		now := b.eng.Now()
		b.tr.Complete(tx, txtrace.StageXConHop, 0, uint64(now), uint64(now+delay), 0)
	}
	b.eng.After(delay, fn)
}

// transferDelay charges one transmission of the given size: hop latency
// plus any bandwidth-induced queueing (advancing the link's busy horizon).
func (b *Bus) transferDelay(bytes uint64) sim.Cycle {
	delay := b.cfg.HopLatency
	if b.cfg.BytesPerCycle > 0 {
		now := b.eng.Now()
		start := max(now, b.busy)
		xfer := sim.Cycle(float64(bytes) / b.cfg.BytesPerCycle)
		if xfer == 0 {
			xfer = 1
		}
		b.busy = start + xfer
		queued := (start - now) + xfer
		b.Stats.QueueCycles += uint64(start - now)
		delay += queued
	}
	return delay
}

// faultDelay models injected packet loss and duplication. A duplicated
// packet charges message count and bandwidth twice (the receiver discards
// the copy, so delivery timing is unchanged). A dropped packet is
// retransmitted after the schedule's timeout window with doubling backoff;
// every retransmission occupies the link again, attempts are bounded, and
// the final one always delivers — degraded latency, never a lost message.
func (b *Bus) faultDelay(bytes uint64) sim.Cycle {
	var extra sim.Cycle
	now := uint64(b.eng.Now())
	if b.flt.Fire(faultinject.KindXConDup, bytes, now) {
		b.Stats.DupPackets++
		b.Stats.Messages++
		b.Stats.Bytes += bytes
		b.transferDelay(bytes)
	}
	if w := b.flt.FireWindow(faultinject.KindXConDelay, bytes, now); w != 0 {
		backoff := sim.Cycle(w)
		for attempt := 1; ; attempt++ {
			b.Stats.Retries++
			extra += backoff + b.transferDelay(bytes)
			if attempt >= maxSendRetries ||
				b.flt.FireWindow(faultinject.KindXConDelay, bytes, now) == 0 {
				break
			}
			backoff *= 2
		}
	}
	return extra
}

// Broadcast delivers a control message to every endpoint (the CTT update
// broadcast): one hop, counted once, fn invoked per endpoint after the
// latency. Control packets are small (16 bytes, one CTT entry).
func (b *Bus) Broadcast(endpoints int, fn func(i int)) {
	b.Stats.Broadcasts++
	b.Stats.Messages++
	b.Stats.Bytes += 16
	b.eng.After(b.cfg.HopLatency, func() {
		for i := 0; i < endpoints; i++ {
			fn(i)
		}
	})
}
