package config

import (
	"bytes"
	"strings"
	"testing"
)

func TestResilienceNormalizedDefaults(t *testing.T) {
	r := ResilienceSpec{
		Health:  &HealthSpec{Enabled: true},
		Retry:   &RetrySpec{Enabled: true},
		Hedge:   &HedgeSpec{Enabled: true},
		Breaker: &BreakerSpec{Enabled: true},
		Shed:    &ShedSpec{Enabled: true},
	}.Normalized()
	if r.Health.ProbeIntervalCycles != 25_000 || r.Health.FailThreshold != 3 || r.Health.RestoreThreshold != 2 {
		t.Fatalf("health defaults: %+v", r.Health)
	}
	if r.Retry.MaxAttempts != 3 || r.Retry.TimeoutP99Mult != 4 ||
		r.Retry.BackoffBaseCycles != 1_000 || r.Retry.BackoffMaxCycles != 16_000 {
		t.Fatalf("retry defaults: %+v", r.Retry)
	}
	if r.Hedge.DelayP99Mult != 1 || r.Hedge.MaxHedges != 1 {
		t.Fatalf("hedge defaults: %+v", r.Hedge)
	}
	if r.Breaker.FailThreshold != 5 || r.Breaker.OpenCycles != 50_000 || r.Breaker.HalfOpenProbes != 1 {
		t.Fatalf("breaker defaults: %+v", r.Breaker)
	}
	if r.Shed.UtilizationHigh != 0.9 || r.Shed.PriorityFloor != 1 {
		t.Fatalf("shed defaults: %+v", r.Shed)
	}

	// Absent sub-blocks stay absent; explicit knobs survive.
	p := ResilienceSpec{Retry: &RetrySpec{Enabled: true, MaxAttempts: 7}}.Normalized()
	if p.Health != nil || p.Hedge != nil || p.Breaker != nil || p.Shed != nil {
		t.Fatalf("absent sub-blocks materialized: %+v", p)
	}
	if p.Retry.MaxAttempts != 7 {
		t.Fatalf("explicit MaxAttempts overwritten: %+v", p.Retry)
	}
}

func TestResilienceEnabledAny(t *testing.T) {
	var nilSpec *ResilienceSpec
	if nilSpec.EnabledAny() {
		t.Fatal("nil spec reports enabled")
	}
	off := ResilienceSpec{Retry: &RetrySpec{}, Shed: &ShedSpec{}}
	if off.EnabledAny() {
		t.Fatal("all-off spec reports enabled")
	}
	on := ResilienceSpec{Shed: &ShedSpec{Enabled: true}}
	if !on.EnabledAny() {
		t.Fatal("shed-on spec reports disabled")
	}
	if d := DefaultResilience(); !d.EnabledAny() {
		t.Fatal("DefaultResilience reports disabled")
	}
}

func TestResilienceValidateErrors(t *testing.T) {
	s := Default()
	fl := DefaultFleet()
	fl.Resilience = &ResilienceSpec{
		Health:  &HealthSpec{Enabled: true, ProbeIntervalCycles: -1, FailThreshold: -2},
		Retry:   &RetrySpec{Enabled: true, TimeoutCycles: -5, BackoffBaseCycles: 2000, BackoffMaxCycles: 100},
		Hedge:   &HedgeSpec{Enabled: true, MaxHedges: -1},
		Breaker: &BreakerSpec{Enabled: true, OpenCycles: -3},
		Shed:    &ShedSpec{Enabled: true, UtilizationHigh: 1.5},
	}
	s.Fleet = &fl
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid resilience block accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		"Fleet.Resilience.Health.ProbeIntervalCycles",
		"Fleet.Resilience.Health.FailThreshold",
		"Fleet.Resilience.Retry.TimeoutCycles",
		"Fleet.Resilience.Retry.BackoffMaxCycles",
		"Fleet.Resilience.Hedge.MaxHedges",
		"Fleet.Resilience.Breaker.OpenCycles",
		"Fleet.Resilience.Shed.UtilizationHigh",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}

	// Negative mix priority is caught on the fleet block itself.
	fl2 := DefaultFleet()
	fl2.Mix[0].Priority = -1
	s.Fleet = &fl2
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "priority must not be negative") {
		t.Fatalf("negative mix priority accepted: %v", err)
	}
}

func TestResilienceMarshalStability(t *testing.T) {
	s := Default()
	fl := DefaultFleet()
	r := DefaultResilience()
	fl.Resilience = &r
	fl.Mix[0].Priority = 1
	s.Fleet = &fl
	first, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(first)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, first)
	}
	second, err := reparsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("resilience marshal not stable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	got := reparsed.Fleet.Resilience
	if got == nil || !got.EnabledAny() || got.Retry.MaxAttempts != 3 {
		t.Fatalf("resilience block lost in round-trip: %+v", got)
	}
	if reparsed.Fleet.Mix[0].Priority != 1 {
		t.Fatalf("mix priority lost in round-trip: %+v", reparsed.Fleet.Mix)
	}
}

// TestResilienceOverrides pins the -set path CI's default-off guard uses:
// descending through a nil Resilience pointer allocates the block, and the
// resulting all-off spec must leave EnabledAny false.
func TestResilienceOverrides(t *testing.T) {
	s := Default()
	fl := DefaultFleet()
	s.Fleet = &fl
	ov, err := ParseAssignment("Fleet.Resilience.Retry.Enabled=false")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Overrides{ov}); err != nil {
		t.Fatal(err)
	}
	if s.Fleet.Resilience == nil || s.Fleet.Resilience.Retry == nil {
		t.Fatal("override did not allocate the resilience block")
	}
	if s.Fleet.Resilience.EnabledAny() {
		t.Fatal("Enabled=false override switched the plane on")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("allocated-but-off block fails validation: %v", err)
	}

	var ovs Overrides
	for _, a := range []string{
		"Fleet.Resilience.Hedge.Enabled=true",
		"Fleet.Resilience.Hedge.MaxHedges=2",
	} {
		ov, err := ParseAssignment(a)
		if err != nil {
			t.Fatal(err)
		}
		ovs = append(ovs, ov)
	}
	if err := s.Apply(ovs); err != nil {
		t.Fatal(err)
	}
	h := s.Fleet.Resilience.Hedge
	if h == nil || !h.Enabled || h.MaxHedges != 2 {
		t.Fatalf("hedge overrides not applied: %+v", h)
	}
	if !s.Fleet.Resilience.EnabledAny() {
		t.Fatal("hedge-on spec reports disabled")
	}
}
