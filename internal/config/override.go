package config

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Override assigns one spec field, addressed by its dotted JSON path
// (e.g. "Lazy.CTTCapacity" or "DRAM.TBL"). Value may be a typed Go value
// (figure sweep axes) or a string to be parsed against the field's kind
// (the CLIs' -set flag).
type Override struct {
	Path  string
	Value interface{}
}

// Overrides is an ordered override list; later entries win.
type Overrides []Override

// ParseAssignment splits a "Path=value" CLI argument into an Override.
func ParseAssignment(arg string) (Override, error) {
	path, val, ok := strings.Cut(arg, "=")
	if !ok || path == "" {
		return Override{}, fmt.Errorf("override %q: want Path=value (e.g. Lazy.CTTCapacity=4096)", arg)
	}
	return Override{Path: path, Value: val}, nil
}

// Apply sets each override on the spec in order. Unknown paths and
// unconvertible values come back as *FieldError.
func (s *MachineSpec) Apply(ovs Overrides) error {
	for _, ov := range ovs {
		if err := s.apply(ov); err != nil {
			return err
		}
	}
	return nil
}

func (s *MachineSpec) apply(ov Override) error {
	field := reflect.ValueOf(s).Elem()
	for _, name := range strings.Split(ov.Path, ".") {
		// Optional blocks (e.g. Fleet) are pointers: descending into one
		// allocates it so "-set Fleet.Machines=8" works on a spec without a
		// fleet block. A non-nil block is descended copy-on-write: specs are
		// value-copied throughout the figure machinery, so writing through a
		// shared pointee would leak one sweep cell's override into its
		// siblings.
		if field.Kind() == reflect.Ptr && field.Type().Elem().Kind() == reflect.Struct {
			if !field.CanSet() {
				return &FieldError{Path: ov.Path, Msg: "field cannot be set"}
			}
			fresh := reflect.New(field.Type().Elem())
			if !field.IsNil() {
				fresh.Elem().Set(field.Elem())
			}
			field.Set(fresh)
			field = fresh.Elem()
		}
		if field.Kind() != reflect.Struct {
			return &FieldError{Path: ov.Path, Msg: "path descends into a non-struct field"}
		}
		next := field.FieldByName(name)
		if !next.IsValid() {
			return &FieldError{Path: ov.Path, Msg: fmt.Sprintf("no field %q (fields are spelled as in the JSON spec, e.g. Lazy.CTTCapacity)", name)}
		}
		field = next
	}
	return setValue(ov.Path, field, ov.Value)
}

func setValue(path string, field reflect.Value, value interface{}) error {
	if !field.CanSet() {
		return &FieldError{Path: path, Msg: "field cannot be set"}
	}
	if str, ok := value.(string); ok && field.Kind() != reflect.String {
		return setFromString(path, field, str)
	}
	rv := reflect.ValueOf(value)
	if !rv.IsValid() {
		return &FieldError{Path: path, Msg: "no value"}
	}
	if rv.Type() == field.Type() {
		field.Set(rv)
		return nil
	}
	if rv.Type().ConvertibleTo(field.Type()) && isScalar(rv.Kind()) && isScalar(field.Kind()) {
		field.Set(rv.Convert(field.Type()))
		return nil
	}
	return &FieldError{Path: path, Msg: fmt.Sprintf("cannot assign %T to %s field", value, field.Type())}
}

func isScalar(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

func setFromString(path string, field reflect.Value, str string) error {
	switch field.Kind() {
	case reflect.Bool:
		b, err := strconv.ParseBool(str)
		if err != nil {
			return &FieldError{Path: path, Msg: fmt.Sprintf("%q is not a bool", str)}
		}
		field.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(str, 0, 64)
		if err != nil || field.OverflowInt(n) {
			return &FieldError{Path: path, Msg: fmt.Sprintf("%q is not a valid %s", str, field.Type())}
		}
		field.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(str, 0, 64)
		if err != nil || field.OverflowUint(n) {
			return &FieldError{Path: path, Msg: fmt.Sprintf("%q is not a valid %s", str, field.Type())}
		}
		field.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(str, 64)
		if err != nil {
			return &FieldError{Path: path, Msg: fmt.Sprintf("%q is not a valid %s", str, field.Type())}
		}
		field.SetFloat(f)
	default:
		return &FieldError{Path: path, Msg: fmt.Sprintf("unsupported field type %s", field.Type())}
	}
	return nil
}
