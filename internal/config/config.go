// Package config is the declarative, composable description of a simulated
// machine: a versioned JSON-serializable MachineSpec naming every component
// block (cores, memory, channels, cache, CPU, memory controller, DRAM
// timing, lazy-copy engine) plus a mechanism block selecting which copy
// mechanism runs, validated with structured errors and lowered to
// machine.Params. A registry maps mechanism names to factories
// (name → func(spec, *machine.Machine) copykit.Copier) so new backends are
// registry entries, not switch-statement edits — the Ramulator 2.x
// "composable simulator" pattern.
//
// Specs are strict: unknown JSON fields are rejected, bad values come back
// as *ValidationError carrying one *FieldError per offending dotted path.
// A spec file may be partial — Parse overlays it on Default(), so a config
// that only says {"Channels": 4} inherits the paper's Table I everywhere
// else. Overrides (dotted path = value pairs, the -set flag and the figure
// sweep axes) layer on top of the parsed spec in order.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mcsquare/internal/cache"
	"mcsquare/internal/core"
	"mcsquare/internal/cpu"
	"mcsquare/internal/dram"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/machine"
	"mcsquare/internal/memctrl"
	"mcsquare/internal/memdata"
)

// SpecVersion is the current MachineSpec schema version. Parse accepts
// exactly this version (a spec that omits Version inherits it).
const SpecVersion = 1

// MachineSpec is the declarative form of machine.Params plus a mechanism
// selection. Field names are the JSON names; component blocks reuse the
// component packages' own config structs, so the schema cannot drift from
// the simulator.
type MachineSpec struct {
	// Version pins the schema; see SpecVersion.
	Version int
	// Cores is the CPU count. Cache.Cores must be 0 (inherit) or equal.
	Cores int
	// ClockGHz is the CPU frequency the cycle-accurate simulation is
	// interpreted at when results are converted to wall time (ms summaries,
	// throughput in ops/s). The simulator itself counts cycles; only the
	// conversions read this.
	ClockGHz float64
	// MemSize is the bytes of physical memory to model.
	MemSize uint64
	// Channels is the DRAM channel / memory-controller count (power of two).
	Channels int
	// XConBytesPerCycle caps cache-to-controller interconnect bandwidth;
	// 0 models a latency-only link.
	XConBytesPerCycle float64 `json:",omitempty"`

	MC    memctrl.Config
	DRAM  dram.Config
	Cache cache.Config
	CPU   cpu.Config
	Lazy  core.Params

	// Mechanism selects the copy mechanism built for the machine and
	// decides whether the (MC)² hardware is installed.
	Mechanism MechanismSpec

	// Fleet, when present, describes a whole serving deployment built from
	// this machine spec: replica counts (optionally heterogeneous groups),
	// the open-loop arrival process, the load-balancing policy, and the
	// request mix. internal/fleet consumes it; single-machine tools ignore
	// it.
	Fleet *FleetSpec `json:",omitempty"`

	// Timeline, when present, enables cycle-windowed metric sampling (the
	// time-series telemetry plane) for runs of this spec. internal/timeline
	// consumes it; tools without a timeline surface ignore it.
	Timeline *TimelineSpec `json:",omitempty"`

	// Faults, when present, is a deterministic fault-injection schedule
	// carried with the spec (chaos baked into a config file, e.g. for
	// fleet SLO timelines). A -faults flag on a CLI takes precedence.
	Faults *faultinject.Schedule `json:",omitempty"`
}

// MechanismSpec is the mechanism block of a spec: a registered name plus an
// opaque parameter payload the mechanism's registry entry decodes itself.
type MechanismSpec struct {
	// Name selects a registered mechanism; Mechanisms() lists them.
	Name string
	// Params is the mechanism's own parameter block (e.g. the mc2
	// interposer threshold); omit for the mechanism's defaults.
	Params json.RawMessage `json:",omitempty"`
}

// Default returns the paper's Table I machine with the mc2 mechanism —
// the spec form of machine.DefaultParams().
func Default() MachineSpec {
	p := machine.DefaultParams()
	return MachineSpec{
		Version:   SpecVersion,
		Cores:     p.Cores,
		ClockGHz:  4,
		MemSize:   p.MemSize,
		Channels:  p.Channels,
		MC:        p.MC,
		DRAM:      p.DRAM,
		Cache:     p.Cache,
		CPU:       p.CPU,
		Lazy:      p.Lazy,
		Mechanism: MechanismSpec{Name: "mc2"},
	}
}

// FieldError is one invalid field: a dotted path into the spec plus what
// is wrong with it.
type FieldError struct {
	Path string
	Msg  string
}

func (e *FieldError) Error() string { return e.Path + ": " + e.Msg }

// ValidationError aggregates every invalid field of a spec, in field order.
type ValidationError struct {
	Fields []*FieldError
}

func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return fmt.Sprintf("invalid machine spec: %s", strings.Join(msgs, "; "))
}

type validator struct{ errs []*FieldError }

func (v *validator) errf(path, format string, args ...interface{}) {
	v.errs = append(v.errs, &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)})
}

// Validate checks the spec and returns nil or a *ValidationError listing
// every offending field. It is what machine.New's last-resort panics
// (channel count, cache/core mismatch) look like when configuration goes
// through specs instead of hand-built Params.
func (s MachineSpec) Validate() error {
	v := &validator{}
	if s.Version != SpecVersion {
		v.errf("Version", "unsupported spec version %d (this build reads version %d)", s.Version, SpecVersion)
	}
	if s.Cores < 1 {
		v.errf("Cores", "must be at least 1, have %d", s.Cores)
	}
	if s.ClockGHz <= 0 {
		v.errf("ClockGHz", "must be positive, have %g", s.ClockGHz)
	}
	if s.MemSize < 2*memdata.PageSize {
		v.errf("MemSize", "must be at least two pages (%d bytes), have %d", 2*memdata.PageSize, s.MemSize)
	}
	if s.Channels < 1 || s.Channels&(s.Channels-1) != 0 {
		v.errf("Channels", "channel count %d must be a power of two", s.Channels)
	}
	if s.XConBytesPerCycle < 0 {
		v.errf("XConBytesPerCycle", "must not be negative, have %g", s.XConBytesPerCycle)
	}

	if s.MC.RPQCapacity < 1 {
		v.errf("MC.RPQCapacity", "must be at least 1, have %d", s.MC.RPQCapacity)
	}
	if s.MC.WPQCapacity < 1 {
		v.errf("MC.WPQCapacity", "must be at least 1, have %d", s.MC.WPQCapacity)
	}
	if s.MC.DrainLow < 0 || s.MC.DrainHigh < s.MC.DrainLow || s.MC.DrainHigh > s.MC.WPQCapacity {
		v.errf("MC.DrainHigh", "drain watermarks must satisfy 0 <= DrainLow (%d) <= DrainHigh (%d) <= WPQCapacity (%d)",
			s.MC.DrainLow, s.MC.DrainHigh, s.MC.WPQCapacity)
	}

	if s.DRAM.Banks < 1 {
		v.errf("DRAM.Banks", "must be at least 1, have %d", s.DRAM.Banks)
	}
	if s.DRAM.RowSize < memdata.LineSize || s.DRAM.RowSize%memdata.LineSize != 0 {
		v.errf("DRAM.RowSize", "must be a multiple of the %d-byte cacheline, have %d", memdata.LineSize, s.DRAM.RowSize)
	}
	if s.DRAM.TBL < 1 {
		v.errf("DRAM.TBL", "burst length must be at least 1 cycle, have %d", s.DRAM.TBL)
	}

	if s.Cache.Cores != 0 && s.Cache.Cores != s.Cores {
		v.errf("Cache.Cores", "cache geometry is built for %d cores but the machine has %d (set to 0 to inherit Cores)",
			s.Cache.Cores, s.Cores)
	}
	if s.Cache.L1Size < memdata.LineSize {
		v.errf("Cache.L1Size", "must hold at least one %d-byte line, have %d", memdata.LineSize, s.Cache.L1Size)
	}
	if s.Cache.L2Size < memdata.LineSize {
		v.errf("Cache.L2Size", "must hold at least one %d-byte line, have %d", memdata.LineSize, s.Cache.L2Size)
	}
	if s.Cache.L1Ways < 1 {
		v.errf("Cache.L1Ways", "must be at least 1, have %d", s.Cache.L1Ways)
	}
	if s.Cache.L2Ways < 1 {
		v.errf("Cache.L2Ways", "must be at least 1, have %d", s.Cache.L2Ways)
	}
	if s.Cache.MSHRsPerCore < 1 {
		v.errf("Cache.MSHRsPerCore", "must be at least 1, have %d", s.Cache.MSHRsPerCore)
	}

	if s.CPU.WindowSize < 1 {
		v.errf("CPU.WindowSize", "must be at least 1, have %d", s.CPU.WindowSize)
	}

	if s.Lazy.CTTCapacity < 1 {
		v.errf("Lazy.CTTCapacity", "must be at least 1, have %d", s.Lazy.CTTCapacity)
	}
	if s.Lazy.BPQCapacity < 1 {
		v.errf("Lazy.BPQCapacity", "must be at least 1, have %d", s.Lazy.BPQCapacity)
	}
	if s.Lazy.FreeThreshold <= 0 || s.Lazy.FreeThreshold > 1 {
		v.errf("Lazy.FreeThreshold", "must be in (0, 1], have %g", s.Lazy.FreeThreshold)
	}
	if s.Lazy.ParallelFrees < 1 {
		v.errf("Lazy.ParallelFrees", "must be at least 1, have %d", s.Lazy.ParallelFrees)
	}
	if s.Lazy.WPQRejectFrac <= 0 || s.Lazy.WPQRejectFrac > 1 {
		v.errf("Lazy.WPQRejectFrac", "must be in (0, 1], have %g", s.Lazy.WPQRejectFrac)
	}
	if s.Lazy.EagerCopyFrac < 0 || s.Lazy.EagerCopyFrac > 1 {
		v.errf("Lazy.EagerCopyFrac", "must be in [0, 1], have %g", s.Lazy.EagerCopyFrac)
	}

	if s.Fleet != nil {
		s.Fleet.validate(v)
	}
	if s.Timeline != nil {
		s.Timeline.validate(v)
	}

	if s.Mechanism.Name == "" {
		v.errf("Mechanism.Name", "missing; registered mechanisms: %s", strings.Join(MechanismNames(), ", "))
	} else if mech, ok := LookupMechanism(s.Mechanism.Name); !ok {
		v.errf("Mechanism.Name", "unknown mechanism %q; registered: %s", s.Mechanism.Name, strings.Join(MechanismNames(), ", "))
	} else if mech.ValidateParams != nil {
		if err := mech.ValidateParams(s.Mechanism.Params); err != nil {
			v.errf("Mechanism.Params", "%v", err)
		}
	}

	if len(v.errs) > 0 {
		return &ValidationError{Fields: v.errs}
	}
	return nil
}

// Params validates the spec and lowers it to machine.Params. The
// mechanism's registry entry decides LazyEnabled (whether the (MC)²
// hardware is installed), and an inherited Cache.Cores of 0 is resolved to
// Cores here.
func (s MachineSpec) Params() (machine.Params, error) {
	if err := s.Validate(); err != nil {
		return machine.Params{}, err
	}
	mech, _ := LookupMechanism(s.Mechanism.Name)
	p := machine.Params{
		Cores:             s.Cores,
		MemSize:           s.MemSize,
		Channels:          s.Channels,
		MC:                s.MC,
		DRAM:              s.DRAM,
		Cache:             s.Cache,
		CPU:               s.CPU,
		Lazy:              s.Lazy,
		XConBytesPerCycle: s.XConBytesPerCycle,
		LazyEnabled:       mech.NeedsLazyHW,
	}
	p.Cache.Cores = s.Cores
	return p, nil
}

// MustParams is Params for specs the caller has already validated (figure
// sweeps, tests); it panics on error.
func (s MachineSpec) MustParams() machine.Params {
	p, err := s.Params()
	if err != nil {
		panic(fmt.Sprintf("config: %v", err))
	}
	return p
}

// Marshal renders the spec as indented JSON with a trailing newline —
// the canonical byte form: Marshal ∘ Parse ∘ Marshal is the identity.
func (s MachineSpec) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Parse decodes a spec strictly (unknown fields are errors), overlaying
// the document on Default() so partial specs inherit the paper's Table I.
// The result is not yet validated; callers decide when (after overrides).
func Parse(data []byte) (MachineSpec, error) {
	s := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return MachineSpec{}, fmt.Errorf("machine spec: %w", err)
	}
	if dec.More() {
		return MachineSpec{}, fmt.Errorf("machine spec: trailing data after JSON document")
	}
	return s, nil
}

// Load reads and parses a spec file.
func Load(path string) (MachineSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return MachineSpec{}, err
	}
	s, err := Parse(data)
	if err != nil {
		return MachineSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// DecodeMechParams strictly decodes a mechanism parameter block into the
// mechanism's own params struct; empty blocks leave defaults untouched.
// Registry entries use it from both Build and ValidateParams.
func DecodeMechParams(raw json.RawMessage, into interface{}) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after parameter block")
	}
	return nil
}
