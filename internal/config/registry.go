package config

import (
	"encoding/json"
	"sort"
	"sync"

	"mcsquare/internal/copykit"
	"mcsquare/internal/machine"
)

// Capability is a property a workload may require of its copy mechanism.
// Mechanisms declare the capabilities they have; workload catalog entries
// (internal/workloads) declare the capabilities they need, and the
// supported-mechanism sets the CLIs used to hardcode are computed from the
// two — a new mechanism that declares the right capabilities shows up in
// every workload's -list row with no CLI edits.
type Capability string

const (
	// CapCopier: the mechanism provides a user-level copykit.Copier that
	// workloads drive through memcpy interposition (protobuf, mongo).
	CapCopier Capability = "copier"
	// CapKernel: the mechanism is meaningful for kernel-level workloads
	// (pipes, COW faults, MVCC's in-kernel lazy path) that bypass the user
	// library and talk to the machine's lazy hardware directly.
	CapKernel Capability = "kernel"
	// CapSharedMem: the mechanism works on MAP_SHARED memory. zIO does
	// not — the paper could not run zIO on Cicada, and neither do we.
	CapSharedMem Capability = "shared-memory"
)

// Mechanism is one registry entry: a named copy-mechanism backend behind
// the common factory interface. New backends (a DMA engine, a CXL tier)
// register themselves from their own package's init and become available
// to every spec, CLI, and sweep without switch-statement edits.
type Mechanism struct {
	// Name is the spec's Mechanism.Name key.
	Name string
	// Summary is one line for -list output.
	Summary string
	// NeedsLazyHW: machines built for this mechanism install the (MC)²
	// engine (machine.Params.LazyEnabled).
	NeedsLazyHW bool
	// Caps are the capability declarations workload support is computed
	// from.
	Caps []Capability
	// Note, when set, explains a capability gap in -list output and
	// rejection messages.
	Note string
	// ValidateParams, when set, strictly checks a spec's mechanism
	// parameter block (DecodeMechParams into the mechanism's params
	// struct) without building anything.
	ValidateParams func(raw json.RawMessage) error
	// Build constructs the mechanism for a machine lowered from spec.
	Build func(spec *MachineSpec, m *machine.Machine) (copykit.Copier, error)
}

// Supports reports whether the mechanism has every needed capability.
func (m Mechanism) Supports(needs []Capability) bool {
	for _, n := range needs {
		found := false
		for _, c := range m.Caps {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

var (
	regMu sync.RWMutex
	reg   = map[string]Mechanism{}
)

// Register adds a mechanism to the registry. It panics on a duplicate or
// incomplete entry — registration runs from package inits, where a bad
// entry is a programming error.
func Register(m Mechanism) {
	if m.Name == "" || m.Build == nil {
		panic("config: Register needs a Name and a Build factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[m.Name]; dup {
		panic("config: duplicate mechanism " + m.Name)
	}
	reg[m.Name] = m
}

// LookupMechanism returns the registry entry for a name.
func LookupMechanism(name string) (Mechanism, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := reg[name]
	return m, ok
}

// Mechanisms returns every registered mechanism, sorted by name for
// deterministic enumeration.
func Mechanisms() []Mechanism {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Mechanism, 0, len(reg))
	for _, m := range reg {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MechanismNames returns the sorted registered names.
func MechanismNames() []string {
	mechs := Mechanisms()
	names := make([]string, len(mechs))
	for i, m := range mechs {
		names[i] = m.Name
	}
	return names
}

// MechanismsFor returns the sorted names of mechanisms supporting every
// needed capability — the computed form of the per-workload mechanism
// lists the CLIs used to hardcode.
func MechanismsFor(needs []Capability) []string {
	var names []string
	for _, m := range Mechanisms() {
		if m.Supports(needs) {
			names = append(names, m.Name)
		}
	}
	return names
}

// BuildCopier validates the spec's mechanism block and constructs the
// mechanism for a machine already lowered from the same spec.
func BuildCopier(spec *MachineSpec, m *machine.Machine) (copykit.Copier, error) {
	mech, ok := LookupMechanism(spec.Mechanism.Name)
	if !ok {
		return nil, &FieldError{Path: "Mechanism.Name", Msg: "unknown mechanism " + spec.Mechanism.Name}
	}
	return mech.Build(spec, m)
}
