package config

import (
	"mcsquare/internal/metrics"
	"mcsquare/internal/timeline"
)

// TimelineSpec is the Timeline block of a spec: the cycle-windowed
// metric-sampling plane of internal/timeline, in config form. Its zero
// value (or absence) leaves the timeline off; a present block with
// Enabled true turns it on for every tool that honors the spec.
type TimelineSpec struct {
	// Enabled turns the timeline plane on.
	Enabled bool
	// WindowCycles is the sampling window in simulated cycles; 0 uses
	// timeline.DefaultWindowCycles.
	WindowCycles uint64 `json:",omitempty"`
	// Tracks optionally restricts the Perfetto counter-track export to
	// metric names with these dotted prefixes ("ctt", "engine.bounces").
	// CSV/JSON timeline files always carry every metric.
	Tracks []string `json:",omitempty"`
	// SLOP99Ms, for fleet runs, is the p99 latency objective in
	// milliseconds; a fleet timeline reports the first window whose p99
	// exceeds it (time-to-first-SLO-violation). 0 disables the check.
	SLOP99Ms float64 `json:",omitempty"`
}

// validate reports structural problems under the "Timeline." path prefix.
func (s *TimelineSpec) validate(v *validator) {
	for i, tr := range s.Tracks {
		if !ValidMetricPrefix(tr) {
			v.errf("Timeline.Tracks", "entry %d: %q is not a dotted lowercase metric name prefix", i, tr)
		}
	}
	if s.SLOP99Ms < 0 {
		v.errf("Timeline.SLOP99Ms", "must not be negative, have %g", s.SLOP99Ms)
	}
}

// ValidMetricPrefix reports whether p could prefix a registered metric
// name (lowercase dotted components of [a-z0-9_]+).
func ValidMetricPrefix(p string) bool {
	return metrics.ValidName(p)
}

// Config lowers the spec block to the runtime configuration. A nil spec
// yields the disabled zero Config.
func (s *TimelineSpec) Config() timeline.Config {
	if s == nil {
		return timeline.Config{}
	}
	return timeline.Config{
		Enabled:      s.Enabled,
		WindowCycles: s.WindowCycles,
		Tracks:       append([]string(nil), s.Tracks...),
	}
}
