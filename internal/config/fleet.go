package config

import (
	"strings"
)

// FleetSpec is the fleet block of a machine spec: how many replicas of the
// machine to instantiate (optionally heterogeneous groups layering spec
// overrides), the open-loop arrival process driving them, the
// load-balancing policy in front, and the request mix mapped onto the
// existing workload families. A spec without a fleet block describes one
// machine, exactly as before; internal/fleet is the consumer.
type FleetSpec struct {
	// Machines is the replica count when Groups is empty. Zero inherits
	// DefaultFleet().Machines.
	Machines int `json:",omitempty"`
	// Groups, when non-empty, declares a heterogeneous fleet: each group
	// contributes Count machines lowered from the base spec with the
	// group's Set overrides ("Path=value" assignments, the -set syntax)
	// applied on top. Machines is ignored when Groups is set.
	Groups []FleetGroup `json:",omitempty"`
	// Arrival is the open-loop request generator.
	Arrival ArrivalSpec
	// LB names the load-balancing policy: round-robin ("rr"),
	// least-outstanding ("least"), or consistent-hash ("hash").
	LB string `json:",omitempty"`
	// QueueCap bounds each machine's pending-request queue; arrivals that
	// find it full are dropped (they count against goodput, not latency).
	// Zero inherits the default.
	QueueCap int `json:",omitempty"`
	// ServersPerMachine is the number of requests one machine serves
	// concurrently; zero means the machine spec's core count.
	ServersPerMachine int `json:",omitempty"`
	// Requests is the number of arrivals generated per run; zero inherits
	// the default (scaled down in quick mode by the consumer).
	Requests int `json:",omitempty"`
	// Seed drives every random choice of the fleet simulation (arrival
	// gaps, mix selection, service-time sampling) and offsets the
	// per-machine calibration seeds; replays are exact.
	Seed int64 `json:",omitempty"`
	// Mix is the YCSB-style request mix over the workload families in
	// FleetWorkloads. Empty inherits DefaultFleet().Mix.
	Mix []MixEntry `json:",omitempty"`
	// Resilience is the fault-tolerance plane (health checks, retries,
	// hedging, breakers, shedding). Absent means every mechanism off, which
	// preserves the exact legacy event loop.
	Resilience *ResilienceSpec `json:",omitempty"`
}

// FleetGroup is one homogeneous slice of a heterogeneous fleet.
type FleetGroup struct {
	// Count is how many machines this group contributes.
	Count int
	// Set patches the base machine spec for this group, one "Path=value"
	// assignment per entry (e.g. "Channels=4", "Lazy.CTTCapacity=512").
	Set []string `json:",omitempty"`
}

// ArrivalSpec describes the open-loop arrival process.
type ArrivalSpec struct {
	// Process is "poisson" (seeded exponential gaps) or "trace" (replay
	// GapsCycles cyclically). Empty means poisson.
	Process string `json:",omitempty"`
	// RateFraction positions the offered load as a fraction of the
	// fleet's calibrated baseline capacity (1.0 = at capacity). Used when
	// RateKOps is zero; zero too means the consumer's sweep decides.
	RateFraction float64 `json:",omitempty"`
	// RateKOps pins the offered load absolutely, in thousands of requests
	// per second at the spec's ClockGHz; takes precedence over
	// RateFraction.
	RateKOps float64 `json:",omitempty"`
	// GapsCycles is the trace-driven inter-arrival gap sequence in cycles,
	// replayed cyclically; required for Process "trace".
	GapsCycles []float64 `json:",omitempty"`
}

// MixEntry weights one workload family in the request mix.
type MixEntry struct {
	Workload string
	Weight   float64
	// Priority ranks the entry for load shedding: during overload,
	// arrivals with Priority below the shed block's PriorityFloor are
	// turned away first. Higher is more important; default 0.
	Priority int `json:",omitempty"`
}

// FleetWorkloads are the workload families a fleet mix may name, each
// backed by a per-request service-time calibration in internal/fleet
// (which tests pin against this list).
func FleetWorkloads() []string { return []string{"mongo", "mvcc", "protobuf", "kvsnap"} }

// FleetLBPolicies are the valid FleetSpec.LB values.
func FleetLBPolicies() []string { return []string{"rr", "least", "hash"} }

// DefaultFleet is the fleet block used when a spec enables fleet mode
// without one: a small homogeneous fleet under a mongo-heavy mix behind
// least-outstanding balancing.
func DefaultFleet() FleetSpec {
	return FleetSpec{
		Machines: 6,
		Arrival:  ArrivalSpec{Process: "poisson", RateFraction: 0.7},
		LB:       "least",
		QueueCap: 64,
		Requests: 4000,
		Seed:     1,
		Mix: []MixEntry{
			{Workload: "mongo", Weight: 0.5},
			{Workload: "mvcc", Weight: 0.3},
			{Workload: "protobuf", Weight: 0.2},
		},
	}
}

// Normalized returns a copy with zero-valued fields inheriting
// DefaultFleet(); Validate and internal/fleet both consume the normalized
// form, so partial fleet blocks behave like partial machine specs.
func (f FleetSpec) Normalized() FleetSpec {
	def := DefaultFleet()
	if f.Machines == 0 && len(f.Groups) == 0 {
		f.Machines = def.Machines
	}
	if f.Arrival.Process == "" {
		f.Arrival.Process = "poisson"
	}
	if f.Arrival.RateFraction == 0 && f.Arrival.RateKOps == 0 {
		f.Arrival.RateFraction = def.Arrival.RateFraction
	}
	if f.LB == "" {
		f.LB = def.LB
	}
	if f.QueueCap == 0 {
		f.QueueCap = def.QueueCap
	}
	if f.Requests == 0 {
		f.Requests = def.Requests
	}
	if f.Seed == 0 {
		f.Seed = def.Seed
	}
	if len(f.Mix) == 0 {
		f.Mix = append([]MixEntry(nil), def.Mix...)
	}
	if f.Resilience != nil {
		r := f.Resilience.Normalized()
		f.Resilience = &r
	}
	return f
}

// NumMachines returns the normalized fleet size.
func (f FleetSpec) NumMachines() int {
	f = f.Normalized()
	if len(f.Groups) == 0 {
		return f.Machines
	}
	n := 0
	for _, g := range f.Groups {
		n += g.Count
	}
	return n
}

// validate appends the fleet block's field errors (paths rooted at
// "Fleet."), checking the normalized form so partial blocks validate the
// way they will run.
func (f *FleetSpec) validate(v *validator) {
	n := f.Normalized()
	if f.Machines < 0 {
		v.errf("Fleet.Machines", "must not be negative, have %d", f.Machines)
	}
	for i, g := range f.Groups {
		if g.Count < 1 {
			v.errf("Fleet.Groups", "group %d: Count must be at least 1, have %d", i, g.Count)
		}
		for _, a := range g.Set {
			if _, err := ParseAssignment(a); err != nil {
				v.errf("Fleet.Groups", "group %d: %v", i, err)
			}
		}
	}
	if n.NumMachines() < 1 {
		v.errf("Fleet.Machines", "fleet must contain at least 1 machine")
	}
	switch n.Arrival.Process {
	case "poisson":
	case "trace":
		if len(f.Arrival.GapsCycles) == 0 {
			v.errf("Fleet.Arrival.GapsCycles", "trace-driven arrivals need at least one gap")
		}
	default:
		v.errf("Fleet.Arrival.Process", "unknown arrival process %q (want poisson or trace)", f.Arrival.Process)
	}
	for i, gap := range f.Arrival.GapsCycles {
		if gap < 0 {
			v.errf("Fleet.Arrival.GapsCycles", "gap %d is negative (%g)", i, gap)
		}
	}
	if f.Arrival.RateFraction < 0 {
		v.errf("Fleet.Arrival.RateFraction", "must not be negative, have %g", f.Arrival.RateFraction)
	}
	if f.Arrival.RateKOps < 0 {
		v.errf("Fleet.Arrival.RateKOps", "must not be negative, have %g", f.Arrival.RateKOps)
	}
	valid := false
	for _, p := range FleetLBPolicies() {
		if n.LB == p {
			valid = true
		}
	}
	if !valid {
		v.errf("Fleet.LB", "unknown policy %q; valid: %s", n.LB, strings.Join(FleetLBPolicies(), ", "))
	}
	if f.QueueCap < 0 {
		v.errf("Fleet.QueueCap", "must not be negative, have %d", f.QueueCap)
	}
	if f.ServersPerMachine < 0 {
		v.errf("Fleet.ServersPerMachine", "must not be negative, have %d", f.ServersPerMachine)
	}
	if f.Requests < 0 {
		v.errf("Fleet.Requests", "must not be negative, have %d", f.Requests)
	}
	total := 0.0
	for i, mx := range n.Mix {
		known := false
		for _, w := range FleetWorkloads() {
			if mx.Workload == w {
				known = true
			}
		}
		if !known {
			v.errf("Fleet.Mix", "entry %d: unknown workload %q; valid: %s",
				i, mx.Workload, strings.Join(FleetWorkloads(), ", "))
		}
		if mx.Weight <= 0 {
			v.errf("Fleet.Mix", "entry %d (%s): weight must be positive, have %g", i, mx.Workload, mx.Weight)
		}
		if mx.Priority < 0 {
			v.errf("Fleet.Mix", "entry %d (%s): priority must not be negative, have %d", i, mx.Workload, mx.Priority)
		}
		total += mx.Weight
	}
	if len(n.Mix) > 0 && total <= 0 {
		v.errf("Fleet.Mix", "mix weights sum to %g; must be positive", total)
	}
	if f.Resilience != nil {
		f.Resilience.validate(v)
	}
}
