package config

import (
	"strings"
	"testing"

	"mcsquare/internal/faultinject"
	"mcsquare/internal/timeline"
)

func TestTimelineSpecValidate(t *testing.T) {
	s := Default()
	s.Timeline = &TimelineSpec{Enabled: true, WindowCycles: 50_000, Tracks: []string{"ctt", "engine.bounces"}, SLOP99Ms: 2.5}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid timeline block rejected: %v", err)
	}

	s.Timeline = &TimelineSpec{Enabled: true, Tracks: []string{"CTT..bad"}, SLOP99Ms: -1}
	err := s.Validate()
	if err == nil {
		t.Fatal("invalid timeline block accepted")
	}
	msg := err.Error()
	for _, want := range []string{"Timeline.Tracks", "Timeline.SLOP99Ms"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestTimelineSpecConfigLowering(t *testing.T) {
	var nilSpec *TimelineSpec
	if c := nilSpec.Config(); c.Enabled {
		t.Fatal("nil spec must lower to disabled config")
	}
	s := &TimelineSpec{Enabled: true, WindowCycles: 0, Tracks: []string{"ctt"}}
	c := s.Config()
	if !c.Enabled || c.WindowCycles != 0 || len(c.Tracks) != 1 {
		t.Fatalf("lowered config = %+v", c)
	}
	if timeline.NewCollector(c) == nil {
		t.Fatal("enabled lowered config must yield a collector")
	}
}

func TestSpecRoundTripWithTimelineAndFaults(t *testing.T) {
	s := Default()
	s.Timeline = &TimelineSpec{Enabled: true, WindowCycles: 20_000}
	sched := faultinject.FromSeed(0xBEEF)
	s.Faults = &sched
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, data)
	}
	if got.Timeline == nil || !got.Timeline.Enabled || got.Timeline.WindowCycles != 20_000 {
		t.Fatalf("timeline block lost in round-trip: %+v", got.Timeline)
	}
	if got.Faults == nil || !got.Faults.Active() {
		t.Fatalf("faults block lost in round-trip: %+v", got.Faults)
	}
	// A spec without the new blocks must not mention them (omitempty keeps
	// canonical output of existing configs byte-identical).
	plain, err := Default().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "Timeline") || strings.Contains(string(plain), "Faults") {
		t.Fatalf("default spec output grew new blocks:\n%s", plain)
	}
}
