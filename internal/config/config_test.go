package config

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcsquare/internal/machine"
)

// TestDefaultLowersToDefaultParams pins the migration contract: the default
// spec is machine.DefaultParams() in declarative form, byte for byte.
func TestDefaultLowersToDefaultParams(t *testing.T) {
	p, err := Default().Params()
	if err != nil {
		t.Fatal(err)
	}
	if want := machine.DefaultParams(); !reflect.DeepEqual(p, want) {
		t.Fatalf("Default() lowering diverges from machine.DefaultParams():\n got %+v\nwant %+v", p, want)
	}
}

// TestMarshalStability pins the byte-stable round trip:
// Marshal ∘ Parse ∘ Marshal is the identity.
func TestMarshalStability(t *testing.T) {
	spec := Default()
	first, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := Parse(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := reparsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("marshal not stable:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
	if !bytes.HasSuffix(first, []byte("\n")) {
		t.Fatal("canonical spec does not end in a newline")
	}
}

// TestExampleConfigsCurrent pins the committed example specs: table1.json
// is exactly the canonical default, and every example validates.
func TestExampleConfigsCurrent(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "configs")
	want, err := Default().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("examples/configs/table1.json is stale; regenerate it from config.Default().Marshal()")
	}

	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) < 2 {
		t.Fatalf("expected at least 2 example configs, got %v (err %v)", entries, err)
	}
	for _, path := range entries {
		spec, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestPartialSpecOverlaysDefault: a spec naming one field inherits Table I
// everywhere else.
func TestPartialSpecOverlaysDefault(t *testing.T) {
	spec, err := Parse([]byte(`{"Channels": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Channels != 4 {
		t.Fatalf("Channels = %d, want 4", spec.Channels)
	}
	def := Default()
	if spec.Cores != def.Cores || spec.MemSize != def.MemSize || spec.Mechanism.Name != "mc2" {
		t.Fatalf("partial spec did not inherit defaults: %+v", spec)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	if _, err := Parse([]byte(`{"Chanels": 4}`)); err == nil {
		t.Fatal("misspelled field accepted")
	}
	if _, err := Parse([]byte(`{"Channels": 2} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestValidateStructuredErrors: bad values come back as one *FieldError per
// offending dotted path, all at once.
func TestValidateStructuredErrors(t *testing.T) {
	spec := Default()
	spec.Cores = 0
	spec.Channels = 3
	spec.Lazy.FreeThreshold = 2
	spec.Mechanism.Name = "no-such-mechanism"
	err := spec.Validate()
	if err == nil {
		t.Fatal("invalid spec validated")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("error is %T, want *ValidationError", err)
	}
	paths := make(map[string]bool)
	for _, f := range verr.Fields {
		paths[f.Path] = true
	}
	for _, want := range []string{"Cores", "Channels", "Lazy.FreeThreshold", "Mechanism.Name"} {
		if !paths[want] {
			t.Errorf("no FieldError for %s (got %v)", want, verr.Fields)
		}
	}
}

// TestValidateChannelAndCacheGeometry pins the conditions machine.New used
// to catch by panic (channel count) or repair silently (Cache.Cores).
func TestValidateChannelAndCacheGeometry(t *testing.T) {
	spec := Default()
	spec.Channels = 6
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("non-power-of-two channels: err = %v", err)
	}

	spec = Default()
	spec.Cores = 4 // Cache.Cores still 8 from the default block
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "Cache.Cores") {
		t.Fatalf("mismatched cache geometry: err = %v", err)
	}

	spec.Cache.Cores = 0 // explicit inherit
	if err := spec.Validate(); err != nil {
		t.Fatalf("inheriting cache geometry rejected: %v", err)
	}
	p := spec.MustParams()
	if p.Cache.Cores != 4 {
		t.Fatalf("lowering did not adopt core count: Cache.Cores = %d", p.Cache.Cores)
	}
}

func TestOverrides(t *testing.T) {
	spec := Default()
	ovs := Overrides{
		{Path: "Channels", Value: 4},
		{Path: "Lazy.FreeThreshold", Value: 0.75},
		{Path: "Cache.L2Size", Value: "1048576"},
		{Path: "Lazy.DisableMerge", Value: "true"},
	}
	if err := spec.Apply(ovs); err != nil {
		t.Fatal(err)
	}
	if spec.Channels != 4 || spec.Lazy.FreeThreshold != 0.75 ||
		spec.Cache.L2Size != 1<<20 || !spec.Lazy.DisableMerge {
		t.Fatalf("overrides not applied: %+v", spec)
	}

	if err := spec.Apply(Overrides{{Path: "No.Such.Field", Value: 1}}); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := spec.Apply(Overrides{{Path: "Cores", Value: "not-a-number"}}); err == nil {
		t.Fatal("unparseable value accepted")
	}

	ov, err := ParseAssignment("MC.WPQCapacity=128")
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Apply(Overrides{ov}); err != nil {
		t.Fatal(err)
	}
	if spec.MC.WPQCapacity != 128 {
		t.Fatalf("WPQCapacity = %d", spec.MC.WPQCapacity)
	}
	if _, err := ParseAssignment("no-equals-sign"); err == nil {
		t.Fatal("assignment without '=' accepted")
	}
}

func TestMechanismParamsValidated(t *testing.T) {
	spec := Default()
	spec.Mechanism = MechanismSpec{Name: "mc2", Params: []byte(`{"Threshold": 4096}`)}
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid mc2 params rejected: %v", err)
	}
	spec.Mechanism.Params = []byte(`{"Treshold": 1}`)
	if err := spec.Validate(); err == nil {
		t.Fatal("misspelled mechanism param accepted")
	}
	spec.Mechanism = MechanismSpec{Name: "baseline", Params: []byte(`{"Threshold": 1}`)}
	if err := spec.Validate(); err == nil {
		t.Fatal("params on a parameterless mechanism accepted")
	}
}
