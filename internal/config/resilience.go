package config

// ResilienceSpec is the fleet block's fault-tolerance plane: health-checked
// LB membership, per-request timeouts with budgeted retries, hedged
// requests, per-machine circuit breakers, and utilization-triggered load
// shedding. Every sub-block is optional and default-off, so a spec without
// one (or with Enabled false everywhere) simulates exactly as before; the
// seeded fault storm (faultinject.Schedule's fleet fields) degrades
// machines whether or not any mitigation here is switched on.
type ResilienceSpec struct {
	Health  *HealthSpec  `json:",omitempty"`
	Retry   *RetrySpec   `json:",omitempty"`
	Hedge   *HedgeSpec   `json:",omitempty"`
	Breaker *BreakerSpec `json:",omitempty"`
	Shed    *ShedSpec    `json:",omitempty"`
}

// HealthSpec drives LB membership from periodic health probes: a machine
// leaves the serving set after FailThreshold consecutive failed probes and
// rejoins after RestoreThreshold consecutive successes. With health checks
// off, the balancer keeps routing to crashed machines (requests fail on
// arrival) — the naive-balancer failure mode the resilience figures show.
type HealthSpec struct {
	Enabled bool
	// ProbeIntervalCycles is the global probe period; all machines are
	// probed on the same tick in stable index order. Zero inherits 25000.
	ProbeIntervalCycles float64 `json:",omitempty"`
	// FailThreshold consecutive lost-or-down probes eject a machine; zero
	// inherits 3.
	FailThreshold int `json:",omitempty"`
	// RestoreThreshold consecutive successful probes re-admit it; zero
	// inherits 2.
	RestoreThreshold int `json:",omitempty"`
}

// RetrySpec bounds per-attempt latency and retries failed or timed-out
// requests through the load balancer with exponential backoff.
type RetrySpec struct {
	Enabled bool
	// MaxAttempts caps total attempts per request (first try included);
	// zero inherits 3.
	MaxAttempts int `json:",omitempty"`
	// TimeoutCycles is the absolute per-attempt timeout (queueing +
	// service); zero derives TimeoutP99Mult times the calibrated p99
	// service time.
	TimeoutCycles float64 `json:",omitempty"`
	// TimeoutP99Mult scales the calibrated p99 service time into the
	// derived timeout; zero inherits 4.
	TimeoutP99Mult float64 `json:",omitempty"`
	// BackoffBaseCycles is the first retry delay, doubled per attempt up
	// to BackoffMaxCycles; zeros inherit 1000 and 16000.
	BackoffBaseCycles float64 `json:",omitempty"`
	BackoffMaxCycles  float64 `json:",omitempty"`
}

// HedgeSpec issues a duplicate attempt for requests still unresolved after
// a p99-based delay; the first completion wins and the loser is cancelled
// (its server time is still spent — hedging trades work for tail latency).
type HedgeSpec struct {
	Enabled bool
	// DelayCycles is the absolute hedge delay from arrival; zero derives
	// DelayP99Mult times the calibrated p99 service time.
	DelayCycles float64 `json:",omitempty"`
	// DelayP99Mult scales the calibrated p99 into the derived delay; zero
	// inherits 1.
	DelayP99Mult float64 `json:",omitempty"`
	// MaxHedges caps duplicate attempts per request; zero inherits 1.
	MaxHedges int `json:",omitempty"`
}

// BreakerSpec is a per-machine circuit breaker: FailThreshold consecutive
// failures open it for OpenCycles, after which HalfOpenProbes trial
// requests decide between closing and re-opening.
type BreakerSpec struct {
	Enabled bool
	// FailThreshold consecutive failures trip the breaker; zero inherits 5.
	FailThreshold int `json:",omitempty"`
	// OpenCycles is how long an open breaker rejects traffic before going
	// half-open; zero inherits 50000.
	OpenCycles float64 `json:",omitempty"`
	// HalfOpenProbes is how many trial requests a half-open breaker admits;
	// zero inherits 1.
	HalfOpenProbes int `json:",omitempty"`
}

// ShedSpec is admission control: when fleet utilization (busy servers over
// member capacity) reaches UtilizationHigh, arrivals whose mix entry's
// Priority is below PriorityFloor are shed at the door instead of queued.
type ShedSpec struct {
	Enabled bool
	// UtilizationHigh is the shedding threshold in (0, 1]; zero inherits 0.9.
	UtilizationHigh float64 `json:",omitempty"`
	// PriorityFloor is the lowest Mix priority still admitted during
	// overload; zero inherits 1 (so default-priority-0 traffic sheds).
	PriorityFloor int `json:",omitempty"`
}

// DefaultResilience is the all-mechanisms-on block figureResilience runs
// under (every threshold at its Normalized default).
func DefaultResilience() ResilienceSpec {
	r := ResilienceSpec{
		Health:  &HealthSpec{Enabled: true},
		Retry:   &RetrySpec{Enabled: true},
		Hedge:   &HedgeSpec{Enabled: true},
		Breaker: &BreakerSpec{Enabled: true},
		Shed:    &ShedSpec{Enabled: true},
	}
	return r.Normalized()
}

// Normalized returns a copy with zero-valued knobs of present sub-blocks
// filled from the defaults above, mirroring FleetSpec.Normalized. Absent
// sub-blocks stay absent (and off).
func (r ResilienceSpec) Normalized() ResilienceSpec {
	if h := r.Health; h != nil {
		hh := *h
		if hh.ProbeIntervalCycles == 0 {
			hh.ProbeIntervalCycles = 25_000
		}
		if hh.FailThreshold == 0 {
			hh.FailThreshold = 3
		}
		if hh.RestoreThreshold == 0 {
			hh.RestoreThreshold = 2
		}
		r.Health = &hh
	}
	if t := r.Retry; t != nil {
		tt := *t
		if tt.MaxAttempts == 0 {
			tt.MaxAttempts = 3
		}
		if tt.TimeoutP99Mult == 0 {
			tt.TimeoutP99Mult = 4
		}
		if tt.BackoffBaseCycles == 0 {
			tt.BackoffBaseCycles = 1_000
		}
		if tt.BackoffMaxCycles == 0 {
			tt.BackoffMaxCycles = 16_000
		}
		r.Retry = &tt
	}
	if h := r.Hedge; h != nil {
		hh := *h
		if hh.DelayP99Mult == 0 {
			hh.DelayP99Mult = 1
		}
		if hh.MaxHedges == 0 {
			hh.MaxHedges = 1
		}
		r.Hedge = &hh
	}
	if b := r.Breaker; b != nil {
		bb := *b
		if bb.FailThreshold == 0 {
			bb.FailThreshold = 5
		}
		if bb.OpenCycles == 0 {
			bb.OpenCycles = 50_000
		}
		if bb.HalfOpenProbes == 0 {
			bb.HalfOpenProbes = 1
		}
		r.Breaker = &bb
	}
	if s := r.Shed; s != nil {
		ss := *s
		if ss.UtilizationHigh == 0 {
			ss.UtilizationHigh = 0.9
		}
		if ss.PriorityFloor == 0 {
			ss.PriorityFloor = 1
		}
		r.Shed = &ss
	}
	return r
}

// EnabledAny reports whether any mitigation mechanism is switched on. A
// nil spec (or one with every sub-block absent or disabled) leaves the
// fleet event loop on its exact legacy path.
func (r *ResilienceSpec) EnabledAny() bool {
	if r == nil {
		return false
	}
	return (r.Health != nil && r.Health.Enabled) ||
		(r.Retry != nil && r.Retry.Enabled) ||
		(r.Hedge != nil && r.Hedge.Enabled) ||
		(r.Breaker != nil && r.Breaker.Enabled) ||
		(r.Shed != nil && r.Shed.Enabled)
}

// validate appends the resilience block's field errors, checking the
// normalized form so partial blocks validate the way they will run.
func (r *ResilienceSpec) validate(v *validator) {
	n := r.Normalized()
	if h := n.Health; h != nil {
		if h.ProbeIntervalCycles < 0 {
			v.errf("Fleet.Resilience.Health.ProbeIntervalCycles", "must not be negative, have %g", r.Health.ProbeIntervalCycles)
		}
		if h.FailThreshold < 1 {
			v.errf("Fleet.Resilience.Health.FailThreshold", "must be at least 1, have %d", r.Health.FailThreshold)
		}
		if h.RestoreThreshold < 1 {
			v.errf("Fleet.Resilience.Health.RestoreThreshold", "must be at least 1, have %d", r.Health.RestoreThreshold)
		}
	}
	if t := n.Retry; t != nil {
		if t.MaxAttempts < 1 {
			v.errf("Fleet.Resilience.Retry.MaxAttempts", "must be at least 1, have %d", r.Retry.MaxAttempts)
		}
		if t.TimeoutCycles < 0 {
			v.errf("Fleet.Resilience.Retry.TimeoutCycles", "must not be negative, have %g", r.Retry.TimeoutCycles)
		}
		if t.TimeoutP99Mult < 0 {
			v.errf("Fleet.Resilience.Retry.TimeoutP99Mult", "must not be negative, have %g", r.Retry.TimeoutP99Mult)
		}
		if t.BackoffBaseCycles < 0 {
			v.errf("Fleet.Resilience.Retry.BackoffBaseCycles", "must not be negative, have %g", r.Retry.BackoffBaseCycles)
		}
		if t.BackoffMaxCycles < t.BackoffBaseCycles {
			v.errf("Fleet.Resilience.Retry.BackoffMaxCycles", "must be at least BackoffBaseCycles (%g), have %g", t.BackoffBaseCycles, r.Retry.BackoffMaxCycles)
		}
	}
	if h := n.Hedge; h != nil {
		if h.DelayCycles < 0 {
			v.errf("Fleet.Resilience.Hedge.DelayCycles", "must not be negative, have %g", r.Hedge.DelayCycles)
		}
		if h.DelayP99Mult < 0 {
			v.errf("Fleet.Resilience.Hedge.DelayP99Mult", "must not be negative, have %g", r.Hedge.DelayP99Mult)
		}
		if h.MaxHedges < 1 {
			v.errf("Fleet.Resilience.Hedge.MaxHedges", "must be at least 1, have %d", r.Hedge.MaxHedges)
		}
	}
	if b := n.Breaker; b != nil {
		if b.FailThreshold < 1 {
			v.errf("Fleet.Resilience.Breaker.FailThreshold", "must be at least 1, have %d", r.Breaker.FailThreshold)
		}
		if b.OpenCycles < 0 {
			v.errf("Fleet.Resilience.Breaker.OpenCycles", "must not be negative, have %g", r.Breaker.OpenCycles)
		}
		if b.HalfOpenProbes < 1 {
			v.errf("Fleet.Resilience.Breaker.HalfOpenProbes", "must be at least 1, have %d", r.Breaker.HalfOpenProbes)
		}
	}
	if s := n.Shed; s != nil {
		if s.UtilizationHigh <= 0 || s.UtilizationHigh > 1 {
			v.errf("Fleet.Resilience.Shed.UtilizationHigh", "must be in (0, 1], have %g", r.Shed.UtilizationHigh)
		}
		if s.PriorityFloor < 0 {
			v.errf("Fleet.Resilience.Shed.PriorityFloor", "must not be negative, have %d", r.Shed.PriorityFloor)
		}
	}
}
