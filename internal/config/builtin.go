package config

import (
	"encoding/json"

	"mcsquare/internal/copykit"
	"mcsquare/internal/machine"
)

// The built-in mechanisms live here rather than in internal/copykit only
// because copykit is what defines the Copier interface this registry
// hands out — registering from copykit would close an import cycle.
// Out-of-tree backends register from their own package's init; internal/zio
// is the exemplar.

// MC2Params is the mc2 mechanism's parameter block: the copy_interpose.so
// policy threshold of §III-D.
type MC2Params struct {
	// Threshold: memcpy calls of at least this many bytes go through
	// memcpy_lazy; smaller calls copy eagerly. 0 makes every call lazy.
	Threshold uint64
}

// DefaultMC2Params mirrors the paper's interposer policy (1 KB).
func DefaultMC2Params() MC2Params { return MC2Params{Threshold: 1024} }

func mc2Params(raw json.RawMessage) (MC2Params, error) {
	p := DefaultMC2Params()
	err := DecodeMechParams(raw, &p)
	return p, err
}

// noParams rejects any non-empty parameter block.
func noParams(raw json.RawMessage) error {
	var empty struct{}
	return DecodeMechParams(raw, &empty)
}

func init() {
	Register(Mechanism{
		Name:           "baseline",
		Summary:        "eager memcpy on an unmodified machine",
		NeedsLazyHW:    false,
		Caps:           []Capability{CapCopier, CapKernel, CapSharedMem},
		ValidateParams: noParams,
		Build: func(spec *MachineSpec, m *machine.Machine) (copykit.Copier, error) {
			if err := noParams(spec.Mechanism.Params); err != nil {
				return nil, err
			}
			return copykit.Eager{}, nil
		},
	})
	Register(Mechanism{
		Name:        "mc2",
		Summary:     "(MC)² lazy copies behind the copy_interpose.so threshold policy",
		NeedsLazyHW: true,
		Caps:        []Capability{CapCopier, CapKernel, CapSharedMem},
		ValidateParams: func(raw json.RawMessage) error {
			_, err := mc2Params(raw)
			return err
		},
		Build: func(spec *MachineSpec, m *machine.Machine) (copykit.Copier, error) {
			p, err := mc2Params(spec.Mechanism.Params)
			if err != nil {
				return nil, err
			}
			return copykit.Lazy{Threshold: p.Threshold}, nil
		},
	})
	Register(Mechanism{
		Name:           "softmc",
		Summary:        "raw memcpy_lazy library: every copy lazy, no interposer policy",
		NeedsLazyHW:    true,
		Caps:           []Capability{CapCopier, CapSharedMem},
		ValidateParams: noParams,
		Build: func(spec *MachineSpec, m *machine.Machine) (copykit.Copier, error) {
			if err := noParams(spec.Mechanism.Params); err != nil {
				return nil, err
			}
			return copykit.SoftMC{}, nil
		},
	})
}
