// The registry tests run as an external test package so they can import
// internal/zio (which itself imports config to self-register): the full
// mechanism catalog a CLI sees is exactly what is under test.
package config_test

import (
	"reflect"
	"testing"

	"mcsquare/internal/config"
	"mcsquare/internal/machine"

	_ "mcsquare/internal/zio"
)

// smallSpec returns a spec shrunk enough that constructing one machine per
// mechanism stays cheap.
func smallSpec() config.MachineSpec {
	spec := config.Default()
	spec.MemSize = 16 << 20
	return spec
}

// TestEveryListedMechanismConstructs: every name the registry enumerates
// (what mcsim -list shows) must lower and build a working copier.
func TestEveryListedMechanismConstructs(t *testing.T) {
	names := config.MechanismNames()
	if len(names) < 4 {
		t.Fatalf("registry lists %v; expected at least baseline, mc2, softmc, zio", names)
	}
	for _, name := range names {
		spec := smallSpec()
		spec.Mechanism = config.MechanismSpec{Name: name}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		p, err := spec.Params()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		m := machine.New(p)
		cp, err := config.BuildCopier(&spec, m)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cp == nil || cp.Name() == "" {
			t.Errorf("%s: built a nameless copier", name)
		}
	}
}

// TestMechanismLoweringSetsLazyHardware: the mechanism block decides
// whether the lowered machine carries the (MC)² engine.
func TestMechanismLoweringSetsLazyHardware(t *testing.T) {
	for name, wantLazy := range map[string]bool{
		"baseline": false, "zio": false, "mc2": true, "softmc": true,
	} {
		spec := config.Default()
		spec.Mechanism = config.MechanismSpec{Name: name}
		p, err := spec.Params()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.LazyEnabled != wantLazy {
			t.Errorf("%s: LazyEnabled = %v, want %v", name, p.LazyEnabled, wantLazy)
		}
	}
}

// TestCapabilitySets pins the workload-compatibility computation that
// replaced the CLIs' hardcoded mechanism tables.
func TestCapabilitySets(t *testing.T) {
	cases := []struct {
		needs []config.Capability
		want  []string
	}{
		{[]config.Capability{config.CapCopier}, []string{"baseline", "mc2", "softmc", "zio"}},
		{[]config.Capability{config.CapKernel}, []string{"baseline", "mc2"}},
		{[]config.Capability{config.CapKernel, config.CapSharedMem}, []string{"baseline", "mc2"}},
		{[]config.Capability{config.CapCopier, config.CapSharedMem}, []string{"baseline", "mc2", "softmc"}},
	}
	for _, c := range cases {
		if got := config.MechanismsFor(c.needs); !reflect.DeepEqual(got, c.want) {
			t.Errorf("MechanismsFor(%v) = %v, want %v", c.needs, got, c.want)
		}
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	expectPanic := func(name string, m config.Mechanism) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		config.Register(m)
	}
	ok, _ := config.LookupMechanism("mc2")
	expectPanic("duplicate", ok)
	expectPanic("no build", config.Mechanism{Name: "x", Summary: "s"})
}
