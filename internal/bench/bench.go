// Package bench is the repository's performance harness. It measures two
// things and emits them as one JSON report (BENCH_sim.json):
//
//   - engine microbenchmarks: host-side cost of the discrete-event core's
//     hot operations (heap churn, the same-cycle fast path, process
//     wakeups), via testing.Benchmark, with ns/op and allocs/op;
//   - a fixed figure-workload suite: wall-clock, simulated events/sec and
//     cycles/sec for a subset of the paper's figure generators.
//
// The report is the baseline future optimization PRs regress against:
// results/BENCH_sim_pre.json pins the numbers recorded before the event-
// core overhaul, and CI runs a quick sweep on every push. Host-absolute
// numbers vary by machine; the allocs/op columns and the relative deltas
// between runs on one machine are the signal.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"mcsquare/internal/figures"
	"mcsquare/internal/invariant"
	"mcsquare/internal/memdata"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
)

// Result is one benchmark measurement. Microbenchmarks fill the per-op
// fields; workload runs are one-shot (Iterations == 1) and additionally
// report simulator throughput.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	WallSeconds float64 `json:"wall_seconds"`

	SimEvents    uint64  `json:"sim_events,omitempty"`
	SimCycles    uint64  `json:"sim_cycles,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	Schema    int      `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Quick     bool     `json:"quick"`
	Results   []Result `json:"results"`
}

// WriteJSON writes the report, indented, to path.
func WriteJSON(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ---------------------------------------------------------------------------
// Engine microbenchmarks
// ---------------------------------------------------------------------------

func nop() {}

// benchHeapChurn measures raw queue throughput: push b.N events at
// pseudorandom future offsets, then pop them all. One op = one event
// through the queue.
func benchHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	rng := uint64(0x9e3779b97f4a7c15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		e.After(sim.Cycle(rng>>52), nop) // offsets in [0, 4096)
	}
	for e.Step() {
	}
}

// benchSameCycle measures the After(0, …) pattern used by Proc.Resume,
// controller queue handoffs, and hook completions: a chain of same-cycle
// events, each scheduling the next. One op = one schedule + dispatch.
func benchSameCycle(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.After(0, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	for e.Step() {
	}
}

// benchMixedQueue interleaves same-cycle and future events the way the
// memory-system models do: every third event reschedules at a future
// cycle, the rest complete same-cycle.
func benchMixedQueue(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n >= b.N {
			return
		}
		if n%3 == 0 {
			e.After(7, step)
		} else {
			e.After(0, step)
		}
	}
	b.ResetTimer()
	e.After(0, step)
	for e.Step() {
	}
}

// benchProcWait measures the process wakeup path: one op = one
// Wait(1) park + resume round trip (event schedule, two channel
// handoffs, closure or pooled resume).
func benchProcWait(b *testing.B) {
	b.ReportAllocs()
	n := b.N
	e := sim.NewEngine()
	b.ResetTimer()
	e.Go("w", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Wait(1)
		}
	})
	e.Drain()
}

// benchSuspendResume measures the Suspend/Resume handoff between two
// processes: one op = one Resume of a suspended peer.
func benchSuspendResume(b *testing.B) {
	b.ReportAllocs()
	n := b.N
	e := sim.NewEngine()
	var worker *sim.Proc
	b.ResetTimer()
	worker = e.Go("worker", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Suspend()
		}
	})
	e.Go("driver", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			worker.Resume()
			p.Wait(1)
		}
	})
	e.Drain()
}

// traceOp replays the span pattern one traced memory operation costs the
// simulator — a root (cpu.load), a child per cache level, and the DRAM
// leaf — against the given tracer. With tr nil (tracing disabled) every
// call is a nil-receiver no-op and must not allocate.
func traceOp(tr *txtrace.Tracer, i int) {
	addr := uint64(i) * 64
	now := uint64(i)
	root := tr.BeginRoot(txtrace.StageCPULoad, 0, addr, now)
	miss := tr.Begin(root, txtrace.StageL1Miss, addr, now+4)
	tr.Complete(miss, txtrace.StageDRAMRead, addr, now+30, now+80, txtrace.FlagRowHit)
	tr.End(miss, now+90)
	tr.End(root, now+94)
}

// benchTraceOff measures the tracer's disabled path: the exact call
// pattern of benchTraceOn against a nil tracer. This is the overhead every
// untraced simulation pays, and it must stay at 0 allocs/op.
func benchTraceOff(b *testing.B) {
	b.ReportAllocs()
	var tr *txtrace.Tracer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOp(tr, i)
	}
}

// benchTraceOn measures tracing at 1% sampling — the recommended setting
// for long runs. 99 of 100 ops take the tx==0 early-out; the sampled op
// pays the ring-buffer writes and histogram updates.
func benchTraceOn(b *testing.B) {
	b.ReportAllocs()
	tr := txtrace.New(txtrace.Config{Enabled: true, SampleEvery: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traceOp(tr, i)
	}
}

// invariantOp replays the oracle consultations one hooked read/write pair
// costs the memory system — a watchdog registration, two queue-occupancy
// checks, a shadow read comparison, and a shadow write observation. With o
// nil (oracles off) every call is a nil-receiver no-op and must not
// allocate.
func invariantOp(o *invariant.Oracles, buf []byte, i int) {
	a := memdata.Addr(i&1023) * memdata.LineSize
	id := o.TxBegin(uint64(a))
	o.CheckQueue("rpq", i&15, 16)
	o.CheckRead(a, buf, sim.Cycle(i))
	o.ObserveWrite(a, buf)
	o.CheckQueue("rpq", i&15, 16)
	o.TxEnd(id)
}

// benchInvariantsOff measures the oracles' disabled path: the exact call
// pattern of benchInvariantsOn against nil oracles. This is the overhead
// every unchecked simulation pays, and it must stay at 0 allocs/op.
func benchInvariantsOff(b *testing.B) {
	b.ReportAllocs()
	var o *invariant.Oracles
	buf := make([]byte, memdata.LineSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invariantOp(o, buf, i)
	}
}

// benchInvariantsOn measures the full oracle set (shadow byte-compare,
// watchdog bookkeeping, queue checks) per memory op — the cost of running
// a chaos/-invariants sweep.
func benchInvariantsOn(b *testing.B) {
	b.ReportAllocs()
	col := invariant.NewCollector(invariant.All())
	o := col.NewOracles(sim.NewEngine(), nil)
	buf := make([]byte, memdata.LineSize)
	for i := 0; i < 1024; i++ { // pre-populate the shadow: steady-state cost
		invariantOp(o, buf, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		invariantOp(o, buf, i)
	}
}

// timelineRegistry populates reg with a machine-shaped metric set — two
// dozen counters across the engine/ctt/mc scopes, a cycle CounterFunc, and
// a few gauges — and returns the counter cells for the benchmark to bump.
func timelineRegistry(reg *metrics.Registry, e *sim.Engine) []uint64 {
	cells := make([]uint64, 24)
	i := 0
	next := func() *uint64 { c := &cells[i]; i++; return c }
	en := reg.Scope("engine")
	for _, n := range []string{"lazy_ops", "lazy_bytes", "bounces", "bounce_src_reads",
		"eager_fallbacks", "eager_fallback_bytes", "frees", "mem_fills"} {
		en.Counter(n, next())
	}
	ct := reg.Scope("ctt")
	for _, n := range []string{"inserts", "pieces", "merges", "trims", "removed", "deferred_bytes"} {
		ct.Counter(n, next())
	}
	for mc := 0; mc < 2; mc++ {
		s := reg.Scope(fmt.Sprintf("mc%d", mc))
		for _, n := range []string{"reads", "writes", "read_stalls", "forwards", "rejected_writes"} {
			s.Counter(n, next())
		}
	}
	reg.CounterFunc("sim.cycles", func() uint64 { return uint64(e.Now()) })
	reg.Scope("ctt").Gauge("entries", func() float64 { return float64(cells[8]) })
	reg.Scope("ctt").Gauge("high_water", func() float64 { return float64(cells[9]) })
	reg.Scope("mc0").Gauge("wpq_occupancy", func() float64 { return float64(cells[14]) })
	reg.Scope("mc1").Gauge("wpq_occupancy", func() float64 { return float64(cells[19]) })
	return cells
}

// timelineChain drives an engine through b.N one-cycle events, bumping a
// rotating counter each event — the workload both timeline benches share,
// so their delta isolates the recorder's sampling cost.
func timelineChain(b *testing.B, e *sim.Engine, cells []uint64) {
	n := 0
	var step func()
	step = func() {
		cells[n%len(cells)]++
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	b.ResetTimer()
	e.After(1, step)
	for e.Step() {
	}
}

// benchTimelineOff measures the timeline plane's disabled path: the same
// metric-bumping event chain with no recorder installed, so every time
// advance pays only the engine's nil-hook check (plus the nil-collector
// constructor surface). This is the overhead every unsampled simulation
// pays, and it must stay at 0 allocs/op.
func benchTimelineOff(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	cells := timelineRegistry(reg, e)
	col := timeline.NewCollector(timeline.Config{}) // disabled → nil
	rec := col.NewRecorder(reg, e)                  // nil recorder, inert
	defer rec.Finalize()
	timelineChain(b, e, cells)
}

// benchTimelineOn measures sampling at a deliberately hostile cadence —
// one window per 32 simulated cycles, far denser than the 100k default —
// so the per-window snapshot/delta cost is visible per op rather than
// vanishing into the window length.
func benchTimelineOn(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	reg := metrics.NewRegistry()
	cells := timelineRegistry(reg, e)
	col := timeline.NewCollector(timeline.Config{Enabled: true, WindowCycles: 32})
	rec := col.NewRecorder(reg, e)
	defer rec.Finalize()
	timelineChain(b, e, cells)
}

type microBench struct {
	name string
	fn   func(b *testing.B)
}

var microBenches = []microBench{
	{"engine/heap-churn", benchHeapChurn},
	{"engine/same-cycle-chain", benchSameCycle},
	{"engine/mixed-queue", benchMixedQueue},
	{"proc/wait-wakeup", benchProcWait},
	{"proc/suspend-resume", benchSuspendResume},
	{"trace/off", benchTraceOff},
	{"trace/on-1pct", benchTraceOn},
	{"invariants/off", benchInvariantsOff},
	{"invariants/on", benchInvariantsOn},
	{"timeline/off", benchTimelineOff},
	{"timeline/on-32cyc", benchTimelineOn},
}

// EngineMicro runs the engine microbenchmark suite, filtered by the
// optional regexp, logging one line per result to log (if non-nil).
func EngineMicro(filter *regexp.Regexp, log io.Writer) []Result {
	var out []Result
	for _, mb := range microBenches {
		if filter != nil && !filter.MatchString(mb.name) {
			continue
		}
		start := time.Now()
		br := testing.Benchmark(mb.fn)
		r := Result{
			Name:        mb.name,
			Iterations:  br.N,
			NsPerOp:     float64(br.NsPerOp()),
			AllocsPerOp: float64(br.AllocsPerOp()),
			BytesPerOp:  float64(br.AllocedBytesPerOp()),
			WallSeconds: time.Since(start).Seconds(),
		}
		logResult(log, r)
		out = append(out, r)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure-workload suite
// ---------------------------------------------------------------------------

type workloadBench struct {
	name string
	gen  func(figures.Options) []*stats.Table
}

// The fixed suite: one bandwidth-bound microbenchmark figure, one
// sequential-access sweep, and two application workloads — a spread of
// event mixes without re-running the whole evaluation.
var workloadBenches = []workloadBench{
	{"fig10/copy-latency", figures.Figure10},
	{"fig12/seq-access", figures.Figure12},
	{"fig14/protobuf", figures.Figure14},
	{"fig19/pipe", figures.Figure19},
}

// Workloads runs the figure-workload suite once each (they are full
// simulations; wall-clock and simulated events/sec are the metrics, not
// ns/op), filtered by the optional regexp.
func Workloads(quick bool, filter *regexp.Regexp, log io.Writer) []Result {
	o := figures.Options{Quick: quick}
	var out []Result
	for _, wb := range workloadBenches {
		if filter != nil && !filter.MatchString(wb.name) {
			continue
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		ev0, cy0 := sim.SimulatedEvents(), sim.SimulatedCycles()
		start := time.Now()
		wb.gen(o)
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		ev, cy := sim.SimulatedEvents()-ev0, sim.SimulatedCycles()-cy0
		r := Result{
			Name:        wb.name,
			Iterations:  1,
			NsPerOp:     float64(wall.Nanoseconds()),
			AllocsPerOp: float64(ms1.Mallocs - ms0.Mallocs),
			BytesPerOp:  float64(ms1.TotalAlloc - ms0.TotalAlloc),
			WallSeconds: wall.Seconds(),
			SimEvents:   ev,
			SimCycles:   cy,
		}
		if s := wall.Seconds(); s > 0 {
			r.EventsPerSec = float64(ev) / s
			r.CyclesPerSec = float64(cy) / s
		}
		logResult(log, r)
		out = append(out, r)
	}
	return out
}

func logResult(w io.Writer, r Result) {
	if w == nil {
		return
	}
	line := fmt.Sprintf("%-28s %12.1f ns/op %10.1f allocs/op %12.0f B/op",
		r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	if r.EventsPerSec > 0 {
		line += fmt.Sprintf("  %8.2f Mev/s  %8.2f Mcyc/s", r.EventsPerSec/1e6, r.CyclesPerSec/1e6)
	}
	fmt.Fprintln(w, line)
}

// NewReport assembles a report with host metadata filled in.
func NewReport(quick bool, results []Result) *Report {
	return &Report{
		Schema:    1,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
		Results:   results,
	}
}
