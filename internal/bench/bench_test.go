package bench

import (
	"path/filepath"
	"regexp"
	"testing"

	"mcsquare/internal/sim"
	"mcsquare/internal/timeline"
)

func TestReportJSONRoundTrip(t *testing.T) {
	rep := NewReport(true, []Result{
		{Name: "engine/heap-churn", NsPerOp: 812.5, Iterations: 1000000},
		{Name: "workload/fig10", WallSeconds: 1.25, SimEvents: 123456, SimCycles: 654321, EventsPerSec: 98765.4},
	})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteJSON(path, rep); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got.Results) != len(rep.Results) {
		t.Fatalf("round trip lost results: %d != %d", len(got.Results), len(rep.Results))
	}
	for i := range rep.Results {
		if got.Results[i] != rep.Results[i] {
			t.Fatalf("result %d mismatch: %+v != %+v", i, got.Results[i], rep.Results[i])
		}
	}
	if got.GoVersion == "" || got.NumCPU == 0 || !got.Quick {
		t.Fatal("report metadata missing after round trip")
	}
}

// TestEngineMicroSmoke runs one microbench so CI exercises the harness
// itself (benchmark construction, result conversion) without paying for a
// full measurement run.
func TestEngineMicroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke skipped in -short")
	}
	res := EngineMicro(regexp.MustCompile("same-cycle-chain"), nil)
	if len(res) != 1 {
		t.Fatalf("filter matched %d benchmarks, want 1", len(res))
	}
	if res[0].NsPerOp <= 0 || res[0].Iterations == 0 {
		t.Fatalf("degenerate result: %+v", res[0])
	}
}

// TestTraceOffAllocatesNothing pins the tracer's disabled-path cost: the
// trace/off microbenchmark — the per-memory-op span pattern against a nil
// tracer — must report zero allocations per op, so an untraced simulation
// pays only dead branches for the instrumentation.
func TestTraceOffAllocatesNothing(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		traceOp(nil, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestInvariantsOffAllocatesNothing pins the oracles' disabled-path cost:
// the invariants/off microbenchmark — the per-memory-op oracle
// consultation pattern against nil oracles — must report zero allocations
// per op, so an unchecked simulation pays only nil checks for the
// instrumentation.
func TestInvariantsOffAllocatesNothing(t *testing.T) {
	buf := make([]byte, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		invariantOp(nil, buf, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled oracle path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTimelineOffAllocatesNothing pins the timeline plane's disabled-path
// cost: with no recorder installed, one future event through the engine —
// the schedule + dispatch that now also passes the nil advance-hook check
// on every time move — must report zero allocations per op, so an
// unsampled simulation pays only a nil check for the instrumentation.
func TestTimelineOffAllocatesNothing(t *testing.T) {
	e := sim.NewEngine()
	rec := timeline.NewCollector(timeline.Config{}).NewRecorder(nil, e) // nil: disabled
	for i := 0; i < 64; i++ {                                           // warm the event pool
		e.After(1, func() {})
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, func() {})
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("disabled timeline path allocates %.1f allocs/op, want 0", allocs)
	}
	rec.Finalize() // nil-safe
}
