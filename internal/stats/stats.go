// Package stats provides the small measurement toolkit used by the
// benchmark harness: latency histograms with percentiles, throughput
// helpers, and tab-separated table emission matching the paper artifact's
// figureX.txt outputs.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates individual samples (e.g. per-operation latencies in
// cycles). The zero value is ready to use.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// N returns the number of samples.
func (h *Histogram) N() int { return len(h.samples) }

// Sum returns the sum of all samples (0 with no samples).
func (h *Histogram) Sum() float64 {
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.samples[rank]
}

// Samples returns a copy of the raw samples in insertion order.
func (h *Histogram) Samples() []float64 {
	// sort() may have reordered; keep a stable answer by re-sorting copies
	// only. We store insertion order separately if unsorted.
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// CDF returns, for each of the given thresholds, the fraction of samples
// less than or equal to it (the paper's Fig 4 shape).
func (h *Histogram) CDF(thresholds []float64) []float64 {
	h.sort()
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(h.samples, math.Nextafter(t, math.Inf(1)))
		if len(h.samples) > 0 {
			out[i] = float64(idx) / float64(len(h.samples))
		}
	}
	return out
}

// Table accumulates rows and writes them tab-separated, one figure per
// file, like the paper artifact's results/figureX.txt. Raw values are kept
// alongside their formatted rendering so that merge steps (the parallel
// experiment runner assembles sweep figures from independently computed
// cells) can post-process exact numbers instead of re-parsing strings.
type Table struct {
	Title   string
	Columns []string
	rows    [][]interface{}
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; values are formatted with %v (floats compactly).
func (t *Table) AddRow(values ...interface{}) {
	t.rows = append(t.rows, append([]interface{}(nil), values...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = formatRow(row)
	}
	return out
}

// Value returns the raw value at (row, col) as it was passed to AddRow.
func (t *Table) Value(row, col int) interface{} { return t.rows[row][col] }

// Float returns the raw value at (row, col) as a float64. It reports false
// for non-numeric cells.
func (t *Table) Float(row, col int) (float64, bool) {
	switch x := t.rows[row][col].(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case uint:
		return float64(x), true
	}
	return 0, false
}

// AppendRows appends every row of the given tables, in order, preserving
// raw values. Parts narrower than t are allowed (trailing cells empty is a
// bug the caller owns); parts wider panic.
func (t *Table) AppendRows(parts ...*Table) {
	for _, p := range parts {
		for _, row := range p.rows {
			if len(row) > len(t.Columns) {
				panic(fmt.Sprintf("stats: appending %d-cell row to %d-column table %q",
					len(row), len(t.Columns), t.Title))
			}
			t.rows = append(t.rows, row)
		}
	}
}

// Concat builds a table with the given title and columns holding the rows
// of each part in submission order. It is the canonical merge for sweep
// figures whose rows are computed as independent jobs.
func Concat(title string, columns []string, parts ...*Table) *Table {
	t := NewTable(title, columns...)
	t.AppendRows(parts...)
	return t
}

// WriteTo writes the table: a comment line with the title, the header, and
// tab-separated rows. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(formatRow(row), "\t"))
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatRow(row []interface{}) []string {
	out := make([]string, len(row))
	for i, v := range row {
		switch x := v.(type) {
		case float64:
			out[i] = formatFloat(x)
		case float32:
			out[i] = formatFloat(float64(x))
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	return out
}

// String renders the table as its file content.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%.0f", f)
	}
	return fmt.Sprintf("%.4g", f)
}

// CyclesToNs converts cycles at the simulated 4 GHz clock to nanoseconds.
func CyclesToNs(cycles uint64) float64 { return float64(cycles) / 4.0 }

// CyclesToMs converts cycles at 4 GHz to milliseconds.
func CyclesToMs(cycles uint64) float64 { return float64(cycles) / 4e6 }

// Speedup formats new vs old as a multiplicative factor (old/new).
func Speedup(oldV, newV float64) float64 {
	if newV == 0 {
		return math.Inf(1)
	}
	return oldV / newV
}
