// Package stats provides the small measurement toolkit used by the
// benchmark harness: latency histograms with percentiles, throughput
// helpers, and tab-separated table emission matching the paper artifact's
// figureX.txt outputs.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Histogram accumulates individual samples (e.g. per-operation latencies in
// cycles). The zero value is ready to use.
//
// The sample slice is kept in insertion order forever; order statistics
// (Percentile, Min, Max, CDF) work on a lazily maintained sorted copy. An
// earlier implementation sorted h.samples in place, so any Percentile call
// silently reordered what Samples() returned afterwards — a contract
// violation consumers (access-order figures, fleet service-time replay)
// could not detect.
type Histogram struct {
	samples []float64 // insertion order, never reordered
	sorted  []float64 // lazily built sorted copy; nil when stale
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = nil
}

// N returns the number of samples.
func (h *Histogram) N() int { return len(h.samples) }

// Sum returns the sum of all samples (0 with no samples).
func (h *Histogram) Sum() float64 {
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sortedView()[0]
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := h.sortedView()
	return s[len(s)-1]
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := h.sortedView()
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Samples returns a copy of the raw samples in insertion order, regardless
// of any order statistics computed in between.
func (h *Histogram) Samples() []float64 {
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// sortedView returns the sorted copy of the samples, (re)building it only
// when samples were added since the last order statistic.
func (h *Histogram) sortedView() []float64 {
	if h.sorted == nil {
		h.sorted = make([]float64, len(h.samples))
		copy(h.sorted, h.samples)
		sort.Float64s(h.sorted)
	}
	return h.sorted
}

// CDF returns, for each of the given thresholds, the fraction of samples
// less than or equal to it (the paper's Fig 4 shape).
func (h *Histogram) CDF(thresholds []float64) []float64 {
	s := h.sortedView()
	out := make([]float64, len(thresholds))
	for i, t := range thresholds {
		idx := sort.SearchFloat64s(s, math.Nextafter(t, math.Inf(1)))
		if len(s) > 0 {
			out[i] = float64(idx) / float64(len(s))
		}
	}
	return out
}

// Table accumulates rows and writes them tab-separated, one figure per
// file, like the paper artifact's results/figureX.txt. Raw values are kept
// alongside their formatted rendering so that merge steps (the parallel
// experiment runner assembles sweep figures from independently computed
// cells) can post-process exact numbers instead of re-parsing strings.
type Table struct {
	Title   string
	Columns []string
	rows    [][]interface{}
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; values are formatted with %v (floats compactly).
func (t *Table) AddRow(values ...interface{}) {
	t.rows = append(t.rows, append([]interface{}(nil), values...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = formatRow(row)
	}
	return out
}

// Value returns the raw value at (row, col) as it was passed to AddRow.
func (t *Table) Value(row, col int) interface{} { return t.rows[row][col] }

// Float returns the raw value at (row, col) as a float64. It reports false
// for non-numeric cells.
func (t *Table) Float(row, col int) (float64, bool) {
	switch x := t.rows[row][col].(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint64:
		return float64(x), true
	case uint:
		return float64(x), true
	}
	return 0, false
}

// RowWidthError reports a row that does not match the destination table's
// column count during a merge. It carries enough structure for callers (the
// figure merges assembling sweep cells) to say exactly which part broke.
type RowWidthError struct {
	Table string // destination table title
	Part  string // source table title
	Row   int    // row index within the source part
	Want  int    // destination column count
	Have  int    // offending row's cell count
}

func (e *RowWidthError) Error() string {
	return fmt.Sprintf("stats: appending %d-cell row (row %d of %q) to %d-column table %q",
		e.Have, e.Row, e.Part, e.Want, e.Table)
}

// AppendRows appends every row of the given tables, in order, preserving
// raw values. Every row must match the destination's column count exactly;
// a mismatch — wider or narrower — returns a *RowWidthError and appends
// nothing. (Narrower rows used to be accepted silently, leaving truncated
// lines in merged figures; now the producer's bug surfaces at merge time.)
func (t *Table) AppendRows(parts ...*Table) error {
	for _, p := range parts {
		for i, row := range p.rows {
			if len(row) != len(t.Columns) {
				return &RowWidthError{Table: t.Title, Part: p.Title, Row: i,
					Want: len(t.Columns), Have: len(row)}
			}
		}
	}
	for _, p := range parts {
		t.rows = append(t.rows, p.rows...)
	}
	return nil
}

// Concat builds a table with the given title and columns holding the rows
// of each part in submission order. It is the canonical merge for sweep
// figures whose rows are computed as independent jobs. Parts are authored
// in code, so a width mismatch panics with the *RowWidthError detail.
func Concat(title string, columns []string, parts ...*Table) *Table {
	t := NewTable(title, columns...)
	if err := t.AppendRows(parts...); err != nil {
		panic(err.Error())
	}
	return t
}

// WriteTo writes the table: a comment line with the title, the header, and
// tab-separated rows. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(formatRow(row), "\t"))
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatRow(row []interface{}) []string {
	out := make([]string, len(row))
	for i, v := range row {
		switch x := v.(type) {
		case float64:
			out[i] = formatFloat(x)
		case float32:
			out[i] = formatFloat(float64(x))
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	return out
}

// String renders the table as its file content.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%.0f", f)
	}
	return fmt.Sprintf("%.4g", f)
}

// Clock converts simulated cycles to wall time for a CPU frequency in GHz.
// Construct it from the machine spec's ClockGHz (cliutil.SpecClock); the
// package-level CyclesToNs/CyclesToMs helpers are the DefaultClock
// shorthand and are only correct for specs that keep the Table I clock.
type Clock float64

// DefaultClock is the paper's Table I frequency.
const DefaultClock Clock = 4

// orDefault guards hand-built zero values; specs validate ClockGHz > 0.
func (c Clock) orDefault() float64 {
	if c <= 0 {
		return float64(DefaultClock)
	}
	return float64(c)
}

// CyclesToNs converts cycles at this clock to nanoseconds.
func (c Clock) CyclesToNs(cycles uint64) float64 { return float64(cycles) / c.orDefault() }

// CyclesToMs converts cycles at this clock to milliseconds.
func (c Clock) CyclesToMs(cycles uint64) float64 { return float64(cycles) / (c.orDefault() * 1e6) }

// CyclesPerSecond returns the clock rate in cycles per second.
func (c Clock) CyclesPerSecond() float64 { return c.orDefault() * 1e9 }

// CyclesToNs converts cycles at the default 4 GHz clock to nanoseconds.
func CyclesToNs(cycles uint64) float64 { return DefaultClock.CyclesToNs(cycles) }

// CyclesToMs converts cycles at the default 4 GHz clock to milliseconds.
func CyclesToMs(cycles uint64) float64 { return DefaultClock.CyclesToMs(cycles) }

// Speedup formats new vs old as a multiplicative factor (old/new).
func Speedup(oldV, newV float64) float64 {
	if newV == 0 {
		return math.Inf(1)
	}
	return oldV / newV
}
