package stats

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.N() != 5 || h.Mean() != 3 || h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("basics wrong: n=%d mean=%v min=%v max=%v", h.N(), h.Mean(), h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
}

func TestPercentileMonotoneQuick(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var h Histogram
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h.Add(v)
			}
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return h.Percentile(p1) <= h.Percentile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	cdf := h.CDF([]float64{0, 50, 100, 200})
	want := []float64{0, 0.5, 1, 1}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-9 {
			t.Fatalf("CDF = %v, want %v", cdf, want)
		}
	}
}

func TestHistogramAgainstSort(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	var h Histogram
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rnd.Float64() * 1000
		h.Add(vals[i])
	}
	sort.Float64s(vals)
	for _, p := range []float64{1, 25, 50, 75, 99} {
		want := vals[int(math.Ceil(p/100*1000))-1]
		if got := h.Percentile(p); got != want {
			t.Fatalf("p%v = %v, want %v", p, got, want)
		}
	}
}

func TestTableOutput(t *testing.T) {
	tb := NewTable("Figure 10: Copy latency", "size", "memcpy_ns", "mc2_ns")
	tb.AddRow(64, 15.25, 30.0)
	tb.AddRow("1KB", 250.123456, 100)
	out := tb.String()
	if !strings.HasPrefix(out, "# Figure 10: Copy latency\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[1] != "size\tmemcpy_ns\tmc2_ns" {
		t.Fatalf("header = %q", lines[1])
	}
	if lines[2] != "64\t15.25\t30" {
		t.Fatalf("row = %q", lines[2])
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestConversions(t *testing.T) {
	if CyclesToNs(4) != 1 {
		t.Fatal("4 cycles should be 1 ns at 4 GHz")
	}
	if CyclesToMs(4e6) != 1 {
		t.Fatal("4M cycles should be 1 ms")
	}
	if Speedup(200, 100) != 2 {
		t.Fatal("speedup wrong")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero-division speedup should be +Inf")
	}
}

func TestTableRawValues(t *testing.T) {
	tb := NewTable("raw", "a", "b")
	tb.AddRow(uint64(7), 0.123456789)
	tb.AddRow("label", 3)
	if v := tb.Value(0, 0); v != uint64(7) {
		t.Fatalf("Value(0,0) = %v (%T)", v, v)
	}
	// Float must return the exact stored value, not a re-parse of the
	// "%.4g" rendering (merge-time normalization depends on this).
	if f, ok := tb.Float(0, 1); !ok || f != 0.123456789 {
		t.Fatalf("Float(0,1) = %v, %v", f, ok)
	}
	if f, ok := tb.Float(1, 1); !ok || f != 3 {
		t.Fatalf("Float(1,1) = %v, %v", f, ok)
	}
	if _, ok := tb.Float(1, 0); ok {
		t.Fatal("Float on a string cell should report false")
	}
}

func TestTableAddRowCopies(t *testing.T) {
	vals := []interface{}{1, 2}
	tb := NewTable("copy", "a", "b")
	tb.AddRow(vals...)
	vals[0] = 99
	if v := tb.Value(0, 0); v != 1 {
		t.Fatalf("AddRow aliased caller slice: Value(0,0) = %v", v)
	}
}

func TestConcatAndAppendRows(t *testing.T) {
	mk := func(v int) *Table {
		p := NewTable("part", "x", "y")
		p.AddRow(v, float64(v)/2)
		return p
	}
	merged := Concat("merged", []string{"x", "y"}, mk(1), mk(2), mk(3))
	if merged.NumRows() != 3 {
		t.Fatalf("NumRows = %d", merged.NumRows())
	}
	// Row order follows part order, raw values preserved.
	for i := 0; i < 3; i++ {
		if v := merged.Value(i, 0); v != i+1 {
			t.Fatalf("row %d col 0 = %v", i, v)
		}
		if f, ok := merged.Float(i, 1); !ok || f != float64(i+1)/2 {
			t.Fatalf("row %d col 1 = %v, %v", i, f, ok)
		}
	}
	// A concatenated table renders exactly like a serially built one.
	serial := NewTable("merged", "x", "y")
	serial.AddRow(1, 0.5)
	serial.AddRow(2, 1.0)
	serial.AddRow(3, 1.5)
	if merged.String() != serial.String() {
		t.Fatalf("merged render differs:\n%s---\n%s", merged.String(), serial.String())
	}
}

// TestAppendRowsWidthError pins the structured-error contract: rows wider
// OR narrower than the destination are rejected with a *RowWidthError, and
// nothing is appended (the old code silently accepted narrower rows,
// leaving truncated lines in merged figures).
func TestAppendRowsWidthError(t *testing.T) {
	narrow := NewTable("narrow", "a")
	wide := NewTable("wide", "a", "b")
	wide.AddRow(1, 2)
	err := narrow.AppendRows(wide)
	var rwe *RowWidthError
	if !errors.As(err, &rwe) {
		t.Fatalf("appending a wider row: err = %v, want *RowWidthError", err)
	}
	if rwe.Want != 1 || rwe.Have != 2 || rwe.Part != "wide" || rwe.Row != 0 {
		t.Fatalf("wider-row error detail = %+v", rwe)
	}

	dst := NewTable("dst", "a", "b")
	ok := NewTable("ok", "a", "b")
	ok.AddRow(1, 2)
	short := NewTable("short", "a")
	short.AddRow(9)
	err = dst.AppendRows(ok, short)
	if !errors.As(err, &rwe) {
		t.Fatalf("appending a narrower row: err = %v, want *RowWidthError", err)
	}
	if rwe.Want != 2 || rwe.Have != 1 || rwe.Part != "short" {
		t.Fatalf("narrower-row error detail = %+v", rwe)
	}
	// The failed call is atomic: not even the valid part landed.
	if dst.NumRows() != 0 {
		t.Fatalf("failed AppendRows appended %d row(s)", dst.NumRows())
	}
}

// TestSamplesInsertionOrder is the regression test for the Samples()
// contract: order statistics in between must not reorder what Samples
// returns (the old implementation sorted h.samples in place).
func TestSamplesInsertionOrder(t *testing.T) {
	var h Histogram
	for _, v := range []float64{3, 1, 2} {
		h.Add(v)
	}
	if p := h.Percentile(50); p != 2 {
		t.Fatalf("P50 = %v, want 2", p)
	}
	if got := h.Samples(); !reflect.DeepEqual(got, []float64{3, 1, 2}) {
		t.Fatalf("Samples() after Percentile = %v, want insertion order [3 1 2]", got)
	}
	if m := h.Min(); m != 1 {
		t.Fatalf("Min = %v", m)
	}
	if got := h.Samples(); !reflect.DeepEqual(got, []float64{3, 1, 2}) {
		t.Fatalf("Samples() after Min = %v, want insertion order [3 1 2]", got)
	}
	// Adding after an order statistic invalidates the sorted view.
	h.Add(0)
	if m := h.Min(); m != 0 {
		t.Fatalf("Min after Add = %v, want 0", m)
	}
	if got := h.Samples(); !reflect.DeepEqual(got, []float64{3, 1, 2, 0}) {
		t.Fatalf("Samples() after Add+Min = %v", got)
	}
	if cdf := h.CDF([]float64{1.5}); cdf[0] != 0.5 {
		t.Fatalf("CDF(1.5) = %v, want 0.5", cdf[0])
	}
	if got := h.Samples(); !reflect.DeepEqual(got, []float64{3, 1, 2, 0}) {
		t.Fatalf("Samples() after CDF = %v", got)
	}
}

// TestClockConversions pins the clock-aware converter: default 4 GHz is
// byte-compatible with the legacy helpers, and a slow clock scales
// wall-time summaries accordingly (the old hardcoded conversion reported
// 2 GHz machines as twice as fast as they are).
func TestClockConversions(t *testing.T) {
	if DefaultClock.CyclesToNs(4) != CyclesToNs(4) || DefaultClock.CyclesToMs(4e6) != CyclesToMs(4e6) {
		t.Fatal("DefaultClock diverges from the legacy 4 GHz helpers")
	}
	slow := Clock(2)
	if got := slow.CyclesToNs(4); got != 2 {
		t.Fatalf("2 GHz: 4 cycles = %v ns, want 2", got)
	}
	if got := slow.CyclesToMs(8e6); got != 4 {
		t.Fatalf("2 GHz: 8M cycles = %v ms, want 4", got)
	}
	if got := slow.CyclesPerSecond(); got != 2e9 {
		t.Fatalf("2 GHz: CyclesPerSecond = %v", got)
	}
	// Hand-built zero clocks fall back to the Table I default rather than
	// dividing by zero.
	if got := Clock(0).CyclesToNs(4); got != 1 {
		t.Fatalf("zero clock: 4 cycles = %v ns, want 1", got)
	}
}

func TestFormatFloatStability(t *testing.T) {
	// The rendering contract the figure files depend on: integral floats
	// print without a decimal point, others as %.4g.
	cases := []struct {
		v    float64
		want string
	}{
		{30.0, "30"},
		{-2, "-2"},
		{15.25, "15.25"},
		{250.123456, "250.1"},
		{0.0625, "0.0625"},
		{1e16, "1e+16"},
	}
	for _, c := range cases {
		tb := NewTable("f", "v")
		tb.AddRow(c.v)
		if got := tb.Rows()[0][0]; got != c.want {
			t.Errorf("format(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
