// Package zio reimplements the paper's software baseline: zIO (OSDI '22),
// which elides memcpy calls at page granularity. The destination pages are
// unmapped (charged a fixed remap cost plus per-page PTE work and a TLB
// shootdown) and recorded in a tracking structure; the first access to an
// elided page takes a copy-on-access fault that materializes it with a
// real 4 KB copy. Source pages are write-protected: modifying a page that
// pending elisions copy from materializes those destinations first. As in
// the paper's methodology (§IV), elision applies to every memcpy call, not
// just IO paths.
//
// zio.Copier implements copykit.Copier, so the same workloads drive it.
package zio

import (
	"fmt"
	"sort"

	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
	"mcsquare/internal/metrics"
	"mcsquare/internal/oskern"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
)

// Params is zIO's cost model.
type Params struct {
	// ElideFixedCost is charged once per eliding memcpy call: unmapping,
	// userfaultfd bookkeeping, and the TLB shootdown round. zIO's remap
	// overhead is what makes it lose below ~64 KB copies (Fig 10).
	ElideFixedCost sim.Cycle
	// PerPageCost is charged per elided destination page (PTE + skiplist).
	PerPageCost sim.Cycle
	// FaultCost is the copy-on-access fault round trip, excluding the copy.
	FaultCost sim.Cycle
}

// DefaultParams calibrates against the paper's Fig 10: elision costs more
// than copying below ~64 KB and pays off above.
func DefaultParams() Params {
	return Params{
		ElideFixedCost: 24000, // ~6 µs: munmap + userfaultfd + shootdown
		PerPageCost:    300,
		FaultCost:      2400,
	}
}

// Stats counts elision activity.
type Stats struct {
	ElideCalls  uint64 // memcpy calls that elided at least one page
	ElidedPages uint64
	EagerCalls  uint64 // memcpy calls fully copied (too small / misaligned)
	Faults      uint64 // copy-on-access faults
	FaultCycles uint64
	Redirects   uint64 // elided pages whose source was itself elided
	SrcBarriers uint64 // dest pages materialized because their source was written
}

// Copier is one process's zIO state.
type Copier struct {
	K *oskern.Kernel
	P Params

	// elided maps a destination page address to the source address its
	// contents must be copied from on first access.
	elided map[memdata.Addr]memdata.Addr
	// deps maps a source page to the destination pages depending on it
	// (the write-protection index).
	deps map[memdata.Addr][]memdata.Addr

	Stats Stats
}

var _ copykit.Copier = (*Copier)(nil)

// New creates a zIO copier over the kernel's machine and publishes its
// counters into the machine's registry under "zio" (one copier per
// machine, like the kernel itself).
func New(k *oskern.Kernel) *Copier {
	z := &Copier{
		K:      k,
		P:      DefaultParams(),
		elided: map[memdata.Addr]memdata.Addr{},
		deps:   map[memdata.Addr][]memdata.Addr{},
	}
	z.PublishMetrics(k.M.Metrics.Scope("zio"))
	return z
}

// PublishMetrics registers the copier's counters under the given scope.
func (z *Copier) PublishMetrics(s metrics.Scope) {
	s.Counter("elide_calls", &z.Stats.ElideCalls)
	s.Counter("elided_pages", &z.Stats.ElidedPages)
	s.Counter("eager_calls", &z.Stats.EagerCalls)
	s.Counter("faults", &z.Stats.Faults)
	s.Counter("fault_cycles", &z.Stats.FaultCycles)
	s.Counter("redirects", &z.Stats.Redirects)
	s.Counter("src_barriers", &z.Stats.SrcBarriers)
}

// Name implements copykit.Copier.
func (z *Copier) Name() string { return "zio" }

func (z *Copier) register(dst, src memdata.Addr) {
	z.elided[dst] = src
	for _, sp := range srcPages(src) {
		z.deps[sp] = append(z.deps[sp], dst)
	}
}

func (z *Copier) unregister(dst memdata.Addr) {
	src, ok := z.elided[dst]
	if !ok {
		return
	}
	delete(z.elided, dst)
	for _, sp := range srcPages(src) {
		list := z.deps[sp]
		for i, d := range list {
			if d == dst {
				z.deps[sp] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(z.deps[sp]) == 0 {
			delete(z.deps, sp)
		}
	}
}

// srcPages returns the 1–2 pages a page-sized source span touches.
func srcPages(src memdata.Addr) []memdata.Addr {
	first := memdata.PageAlign(src)
	last := memdata.PageAlign(src + memdata.PageSize - 1)
	if first == last {
		return []memdata.Addr{first}
	}
	return []memdata.Addr{first, last}
}

// Memcpy implements copykit.Copier: full destination pages are elided,
// fringes are copied eagerly.
func (z *Copier) Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	// Writing the destination (by copy or by elision) invalidates pending
	// elisions that read from it.
	z.writeBarrier(c, memdata.Range{Start: dst, Size: n})

	head := memdata.AlignRem(dst, memdata.PageSize)
	if head >= n || n-head < memdata.PageSize {
		z.Stats.EagerCalls++
		z.eagerCopy(c, dst, src, n)
		return
	}
	z.Stats.ElideCalls++
	c.Compute(z.P.ElideFixedCost)
	if head > 0 {
		z.eagerCopy(c, dst, src, head)
		dst += memdata.Addr(head)
		src += memdata.Addr(head)
		n -= head
	}
	for n >= memdata.PageSize {
		z.elidePage(c, dst, src)
		dst += memdata.PageSize
		src += memdata.PageSize
		n -= memdata.PageSize
	}
	if n > 0 {
		z.eagerCopy(c, dst, src, n)
	}
}

// eagerCopy materializes everything the copy touches, then copies.
func (z *Copier) eagerCopy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	z.materializeRange(c, memdata.Range{Start: dst, Size: n})
	z.materializeRange(c, memdata.Range{Start: src, Size: n})
	softmc.MemcpyEager(c, dst, src, n)
}

// elidePage records dst ← src for one destination page, resolving a chain
// through an already-elided source page when a single redirect suffices.
func (z *Copier) elidePage(c *cpu.Core, dst, src memdata.Addr) {
	z.unregister(dst) // the old elision of dst (if any) is overwritten
	pages := srcPages(src)
	if len(pages) == 1 {
		if ult, ok := z.elided[pages[0]]; ok {
			src = ult + memdata.Addr(memdata.PageOffset(src))
			z.Stats.Redirects++
		}
	} else {
		// The span straddles two pages: materialize any elided ones rather
		// than tracking a two-way chain.
		for _, sp := range pages {
			z.fault(c, sp)
		}
	}
	c.Compute(z.P.PerPageCost)
	z.register(dst, src)
	z.Stats.ElidedPages++
}

// writeBarrier materializes every destination page whose recorded source
// overlaps r — the write-protection fault real zIO takes before source
// pages change.
func (z *Copier) writeBarrier(c *cpu.Core, r memdata.Range) {
	if r.Empty() || len(z.deps) == 0 {
		return
	}
	first := memdata.PageAlign(r.Start)
	last := memdata.PageAlign(r.End() - 1)
	var victims []memdata.Addr
	for p := first; p <= last; p += memdata.PageSize {
		victims = append(victims, z.deps[p]...)
	}
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, d := range victims {
		if _, ok := z.elided[d]; ok {
			z.Stats.SrcBarriers++
			z.fault(c, d)
		}
	}
}

// materializeRange faults in every elided page the range touches.
func (z *Copier) materializeRange(c *cpu.Core, r memdata.Range) {
	if r.Empty() {
		return
	}
	first := memdata.PageAlign(r.Start)
	last := memdata.PageAlign(r.End() - 1)
	for p := first; p <= last; p += memdata.PageSize {
		z.fault(c, p)
	}
}

// fault is the copy-on-access handler: the page is materialized with a
// real 4 KB copy from its recorded source.
func (z *Copier) fault(c *cpu.Core, page memdata.Addr) {
	src, ok := z.elided[page]
	if !ok {
		return
	}
	start := c.Now()
	z.Stats.Faults++
	z.unregister(page)
	// The recorded source is protected by the write barrier, but may chain.
	z.materializeRange(c, memdata.Range{Start: src, Size: memdata.PageSize})
	c.Compute(z.P.FaultCost)
	softmc.MemcpyEager(c, page, src, memdata.PageSize)
	c.Compute(z.K.P.PTECost)
	z.Stats.FaultCycles += uint64(c.Now() - start)
}

// Read implements copykit.Copier.
func (z *Copier) Read(c *cpu.Core, a memdata.Addr, n uint64) []byte {
	z.materializeRange(c, memdata.Range{Start: a, Size: n})
	return c.Load(a, n)
}

// ReadAsync implements copykit.Copier.
func (z *Copier) ReadAsync(c *cpu.Core, a memdata.Addr, n uint64) {
	z.materializeRange(c, memdata.Range{Start: a, Size: n})
	c.LoadAsync(a, n)
}

// Write implements copykit.Copier. Writes materialize the touched pages
// (they are unmapped) and fault out any elisions sourced from them.
func (z *Copier) Write(c *cpu.Core, a memdata.Addr, data []byte) {
	r := memdata.Range{Start: a, Size: uint64(len(data))}
	z.writeBarrier(c, r)
	z.materializeRange(c, r)
	c.Store(a, data)
}

// Free implements copykit.Copier: dropping a dead buffer discards its
// elision records without copying.
func (z *Copier) Free(c *cpu.Core, r memdata.Range) {
	if r.Empty() {
		return
	}
	first := memdata.PageAlign(r.Start)
	last := memdata.PageAlign(r.End() - 1)
	for p := first; p <= last; p += memdata.PageSize {
		if _, ok := z.elided[p]; ok && r.ContainsRange(memdata.Range{Start: p, Size: memdata.PageSize}) {
			z.unregister(p)
		}
	}
}

// Pending returns the number of currently elided pages (test support).
func (z *Copier) Pending() int { return len(z.elided) }

// String summarizes the copier state.
func (z *Copier) String() string {
	return fmt.Sprintf("zio{elided=%d faults=%d}", len(z.elided), z.Stats.Faults)
}
