package zio

import (
	"encoding/json"

	"mcsquare/internal/config"
	"mcsquare/internal/copykit"
	"mcsquare/internal/machine"
	"mcsquare/internal/oskern"
)

// zIO registers itself as a copy mechanism: the registry pattern new
// backends follow — declare capabilities, decode your own parameter
// block, build from a lowered machine. zIO declines CapSharedMem (the
// paper could not run zIO on Cicada's MAP_SHARED memory; neither do we)
// and CapKernel (it is a user-space library over an unmodified kernel).
func init() {
	config.Register(config.Mechanism{
		Name:        "zio",
		Summary:     "zIO-style page-granular copy elision with copy-on-access faults",
		NeedsLazyHW: false,
		Caps:        []config.Capability{config.CapCopier},
		Note:        "no MAP_SHARED workloads: the paper could not run zIO on Cicada; neither do we",
		ValidateParams: func(raw json.RawMessage) error {
			p := DefaultParams()
			return config.DecodeMechParams(raw, &p)
		},
		Build: func(spec *config.MachineSpec, m *machine.Machine) (copykit.Copier, error) {
			p := DefaultParams()
			if err := config.DecodeMechParams(spec.Mechanism.Params, &p); err != nil {
				return nil, err
			}
			z := New(oskern.New(m))
			z.P = p
			return z, nil
		},
	})
}
