package zio

import (
	"bytes"
	"math/rand"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/oskern"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
)

func newZ() (*machine.Machine, *Copier) {
	p := machine.DefaultParams()
	p.LazyEnabled = false // zIO runs on a stock machine
	m := machine.New(p)
	return m, New(oskern.New(m))
}

func TestElideThenReadMatches(t *testing.T) {
	m, z := newZ()
	const n = 64 << 10
	src := m.AllocPage(n)
	dst := m.AllocPage(n)
	m.FillRandom(src, n, 1)
	want := m.Phys.Read(src, n)
	var got []byte
	m.Run(func(c *cpu.Core) {
		z.Memcpy(c, dst, src, n)
		if z.Pending() == 0 {
			t.Error("no pages elided for a 64KB page-aligned copy")
		}
		got = z.Read(c, dst, n)
	})
	if !bytes.Equal(got, want) {
		t.Fatal("copy-on-access data mismatch")
	}
	if z.Stats.Faults == 0 {
		t.Fatal("reads of elided pages took no faults")
	}
	if z.Pending() != 0 {
		t.Fatalf("%d pages still elided after full read", z.Pending())
	}
}

func TestSmallCopiesStayEager(t *testing.T) {
	m, z := newZ()
	src := m.AllocPage(8 << 10)
	dst := m.AllocPage(8 << 10)
	m.FillRandom(src, 8<<10, 2)
	m.Run(func(c *cpu.Core) {
		z.Memcpy(c, dst+5, src+9, 2000) // sub-page
		got := z.Read(c, dst+5, 2000)
		want := m.Phys.Read(src+9, 2000)
		if !bytes.Equal(got, want) {
			t.Error("small eager copy mismatch")
		}
	})
	if z.Stats.ElideCalls != 0 || z.Stats.EagerCalls == 0 {
		t.Fatalf("stats: %+v", z.Stats)
	}
}

func TestWriteMaterializes(t *testing.T) {
	m, z := newZ()
	src := m.AllocPage(memdata.PageSize)
	dst := m.AllocPage(memdata.PageSize)
	m.FillRandom(src, memdata.PageSize, 3)
	want := m.Phys.Read(src, memdata.PageSize)
	m.Run(func(c *cpu.Core) {
		z.Memcpy(c, dst, src, memdata.PageSize)
		z.Write(c, dst+10, []byte{0xEE}) // touch one byte: page faults in
		c.Fence()
		got := z.Read(c, dst, memdata.PageSize)
		want[10] = 0xEE
		if !bytes.Equal(got, want) {
			t.Error("write-through-fault mismatch")
		}
	})
	if z.Stats.Faults != 1 {
		t.Fatalf("Faults = %d", z.Stats.Faults)
	}
}

func TestChainRedirect(t *testing.T) {
	m, z := newZ()
	a := m.AllocPage(memdata.PageSize)
	b := m.AllocPage(memdata.PageSize)
	cc := m.AllocPage(memdata.PageSize)
	m.FillRandom(a, memdata.PageSize, 4)
	want := m.Phys.Read(a, memdata.PageSize)
	m.Run(func(c *cpu.Core) {
		z.Memcpy(c, b, a, memdata.PageSize)
		z.Memcpy(c, cc, b, memdata.PageSize) // chains through b
		got := z.Read(c, cc, memdata.PageSize)
		if !bytes.Equal(got, want) {
			t.Error("chained elision mismatch")
		}
	})
	if z.Stats.Redirects == 0 {
		t.Fatal("no redirect recorded for a chained copy")
	}
}

func TestFreeDropsElisions(t *testing.T) {
	m, z := newZ()
	src := m.AllocPage(4 * memdata.PageSize)
	dst := m.AllocPage(4 * memdata.PageSize)
	m.FillRandom(src, 4*memdata.PageSize, 5)
	m.Run(func(c *cpu.Core) {
		z.Memcpy(c, dst, src, 4*memdata.PageSize)
		z.Free(c, memdata.Range{Start: dst, Size: 4 * memdata.PageSize})
	})
	if z.Pending() != 0 {
		t.Fatalf("%d elisions survive Free", z.Pending())
	}
	if z.Stats.Faults != 0 {
		t.Fatal("Free took faults")
	}
}

func TestCrossoverShape(t *testing.T) {
	// Fig 10's zIO shape: elision loses to memcpy at 16 KB, wins at 1 MB.
	copyTime := func(useZ bool, n uint64) sim.Cycle {
		m, z := newZ()
		src := m.AllocPage(n)
		dst := m.AllocPage(n)
		m.FillRandom(src, n, 6)
		var dur sim.Cycle
		m.Run(func(c *cpu.Core) {
			start := c.Now()
			if useZ {
				z.Memcpy(c, dst, src, n)
			} else {
				softmc.MemcpyEager(c, dst, src, n)
			}
			dur = c.Now() - start
		})
		return dur
	}
	if z16, e16 := copyTime(true, 16<<10), copyTime(false, 16<<10); z16 <= e16 {
		t.Fatalf("16KB: zIO (%d) should lose to memcpy (%d)", z16, e16)
	}
	if z1m, e1m := copyTime(true, 1<<20), copyTime(false, 1<<20); z1m*4 >= e1m {
		t.Fatalf("1MB: zIO (%d) should be ≥4x faster than memcpy (%d)", z1m, e1m)
	}
}

func TestRandomizedZIOEquivalence(t *testing.T) {
	m, z := newZ()
	const region = 1 << 17
	base := m.AllocPage(region)
	m.FillRandom(base, region, 7)
	shadow := m.Phys.Read(base, region)
	rnd := rand.New(rand.NewSource(7))
	var failure bool
	m.Run(func(c *cpu.Core) {
		for step := 0; step < 80 && !failure; step++ {
			switch rnd.Intn(4) {
			case 0, 1:
				size := uint64(1 + rnd.Intn(24000))
				d := uint64(rnd.Intn(region - int(size)))
				s := uint64(rnd.Intn(region - int(size)))
				dr := memdata.Range{Start: base + memdata.Addr(d), Size: size}
				sr := memdata.Range{Start: base + memdata.Addr(s), Size: size}
				if dr.Overlaps(sr) {
					continue
				}
				z.Memcpy(c, dr.Start, sr.Start, size)
				copy(shadow[d:d+size], shadow[s:s+size])
			case 2:
				n := uint64(1 + rnd.Intn(64))
				off := uint64(rnd.Intn(region - int(n)))
				data := make([]byte, n)
				rnd.Read(data)
				z.Write(c, base+memdata.Addr(off), data)
				c.Fence()
				copy(shadow[off:off+n], data)
			default:
				n := uint64(1 + rnd.Intn(300))
				off := uint64(rnd.Intn(region - int(n)))
				if !bytes.Equal(z.Read(c, base+memdata.Addr(off), n), shadow[off:off+n]) {
					failure = true
				}
			}
		}
		for off := uint64(0); off < region && !failure; off += 4096 {
			if !bytes.Equal(z.Read(c, base+memdata.Addr(off), 4096), shadow[off:off+4096]) {
				failure = true
			}
		}
	})
	if failure {
		t.Fatal("zIO observational equivalence violated")
	}
}
