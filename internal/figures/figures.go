// Package figures regenerates every figure and table of the paper's
// evaluation (§II and §V) as tab-separated tables, mirroring the artifact's
// results/figureX.txt outputs. cmd/mcfigures and the root benchmark suite
// are thin wrappers around this package.
//
// Every figure draws its machine from a config.MachineSpec (Options.Spec;
// nil means config.Default(), which lowers to machine.DefaultParams()) and
// builds copy mechanisms through the config registry. Sweep figures are
// declared as SweepSpecs (see sweep.go) — axes of labelled spec overrides
// compiled onto the JobSet machinery.
package figures

import (
	"fmt"

	"mcsquare/internal/config"
	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/oskern"
	"mcsquare/internal/runner"
	"mcsquare/internal/softmc"
	"mcsquare/internal/stats"
	"mcsquare/internal/trace"
	"mcsquare/internal/workloads/micro"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/oswl"
	"mcsquare/internal/workloads/protobuf"

	// The zio mechanism registers itself with the config registry; figures
	// build it by name only.
	_ "mcsquare/internal/zio"
)

// Options scales the experiments. Quick mode shrinks buffers and operation
// counts so the full set completes in minutes; the shapes survive scaling.
type Options struct {
	Quick bool
	// Spec is the machine every figure starts from; nil uses
	// config.Default() (the paper's Table I machine). Figures that compare
	// mechanisms lower the same spec once per mechanism.
	Spec *config.MachineSpec
}

// spec returns a copy of the base machine spec.
func (o Options) spec() config.MachineSpec {
	if o.Spec != nil {
		return *o.Spec
	}
	return config.Default()
}

// params lowers the base spec under the named mechanism.
func (o Options) params(mech string) machine.Params { return specParams(o.spec(), mech) }

// clock is the base spec's core clock, for cycle→wall-time conversions.
// The Table I default (4 GHz) reproduces the legacy hardcoded conversion
// byte-for-byte; a -set ClockGHz=2 spec now scales wall-clock columns
// instead of silently reporting 4 GHz numbers.
func (o Options) clock() stats.Clock { return stats.Clock(o.spec().ClockGHz) }

// copier builds the named mechanism for m through the registry.
func (o Options) copier(mech string, m *machine.Machine) copykit.Copier {
	return specCopier(o.spec(), mech, m)
}

// hwParams lowers the base spec with the (MC)² hardware installed
// regardless of the spec's mechanism. OS-experiment machines always carry
// the lazy engine; the kernel flag decides whether it is used.
func (o Options) hwParams() machine.Params {
	p := o.spec().MustParams()
	p.LazyEnabled = true
	return p
}

func (o Options) microOpt() micro.Options {
	mopt := micro.Options{}
	if o.Quick {
		mopt = micro.Quick()
	}
	if o.Spec != nil {
		p := o.hwParams()
		mopt.Base = &p
	}
	return mopt
}

func (o Options) protoCfg(cp copykit.Copier) protobuf.Config {
	cfg := protobuf.Config{Seed: 42, Copier: cp}
	if o.Quick {
		cfg.Ops, cfg.Burst = 192, 64
	}
	return cfg
}

func (o Options) mongoCfg(cp copykit.Copier) mongo.Config {
	cfg := mongo.Config{Seed: 42, Copier: cp}
	if o.Quick {
		cfg.Inserts, cfg.Fields, cfg.FieldSize = 8, 4, 32<<10
	}
	return cfg
}

func (o Options) mvccCfg(lazy bool, frac float64, mode mvcc.Mode, threads int) mvcc.Config {
	cfg := mvcc.Config{
		Threads:        threads,
		UpdateFraction: frac,
		Mode:           mode,
		Lazy:           lazy,
		Seed:           42,
	}
	if o.Quick {
		cfg.Rows, cfg.OpsPerThread = 128, 60
	}
	return cfg
}

// Generator produces the tables of one figure.
type Generator struct {
	ID    string // "2", "10", "16", "table1", ...
	Title string
	Run   func(o Options) []*stats.Table
	// jobs optionally decomposes the figure into independent runner jobs
	// (see jobs.go); nil generators run as a single job.
	jobs func(o Options) JobSet
}

// extra holds generators beyond the paper's figures (ablations, studies);
// they register themselves from init functions.
var extra []Generator

// All returns every figure generator in paper order, followed by the
// repository's own extension studies.
func All() []Generator {
	return append([]Generator{
		{"2", "copy overhead across use cases", Figure2, figure2Jobs},
		{"3", "source of Protobuf memcpy overhead", Figure3, nil},
		{"4", "distribution of Protobuf memcpy sizes", Figure4, nil},
		{"10", "copy latency", Figure10, figure10Jobs},
		{"11", "memcpy_lazy overhead breakdown", Figure11, nil},
		{"12", "sequential destination access", Figure12, nil},
		{"13", "random destination access", Figure13, nil},
		{"14", "Protobuf runtime", Figure14, nil},
		{"15", "MongoDB insert latency", Figure15, nil},
		{"16", "MVCC RMW throughput", Figure16, figure16Jobs},
		{"17", "MVCC write-only throughput", Figure17, figure17Jobs},
		{"18", "huge-page COW write latencies", Figure18, figure18Jobs},
		{"19", "pipe transfer throughput", Figure19, nil},
		{"20", "CTT size and threshold sweep", Figure20, figure20Jobs},
		{"21", "BPQ size sweep", Figure21, nil},
		{"22", "parallel CTT freeing", Figure22, figure22Jobs},
		{"table1", "simulated configuration", Table1, nil},
	}, extra...)
}

// ByID returns the generator for a figure id.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// ---------------------------------------------------------------------------
// Motivation figures (§II)
// ---------------------------------------------------------------------------

func figure2Table() *stats.Table {
	return stats.NewTable("Figure 2: copy overhead (fraction of cycles in memcpy)",
		"workload", "copy_overhead")
}

// Figure2 measures the fraction of cycles spent copying in four use cases.
// Each use case is an independent simulation; figure2Jobs enumerates them
// as runner jobs and Figure2 is their serial execution.
func Figure2(o Options) []*stats.Table { return runJobSet(o, figure2Jobs(o)) }

func figure2Jobs(o Options) JobSet {
	row := func(name string, v float64) []*stats.Table {
		tb := figure2Table()
		tb.AddRow(name, v)
		return tables(tb)
	}
	return JobSet{
		Jobs: []runner.Job{
			job("2/protobuf", func() []*stats.Table {
				pm := protobuf.NewMachineFrom(o.params("baseline"))
				pres := protobuf.Run(pm, o.protoCfg(o.copier("baseline", pm)))
				return row("protobuf", float64(pres.CopyCycles)/float64(pres.Cycles))
			}),
			job("2/mongodb", func() []*stats.Table {
				mm := mongo.NewMachineFrom(o.params("baseline"))
				mcfg := o.mongoCfg(nil)
				mcfg.Copier = &timedCopier{inner: o.copier("baseline", mm)}
				mres := mongo.Run(mm, mcfg)
				tc := mcfg.Copier.(*timedCopier)
				return row("mongodb_inserts", float64(tc.copyCycles)/float64(mres.Cycles))
			}),
			job("2/cicada", func() []*stats.Table {
				// MVCC writes: compare update-heavy run against the same run
				// with the version copies removed; the difference is copy
				// overhead.
				vcfg := o.mvccCfg(false, 0.125, mvcc.RMW, 1)
				full := mvcc.Run(mvcc.NewMachineFrom(o.params("baseline")), vcfg)
				nocopy := mvcc.Run(mvcc.NewMachineFrom(o.params("baseline")), func() mvcc.Config {
					c := vcfg
					c.RowSize = 64 // degenerate tuples: copies ~free, same txn count
					return c
				}())
				frac := 1 - float64(nocopy.Cycles)/float64(full.Cycles)
				if frac < 0 {
					frac = 0
				}
				return row("cicada_writes", frac)
			}),
			job("2/fork_cow", func() []*stats.Table {
				// Fork + COW fault: share of the fault handler spent copying
				// the page.
				p := o.hwParams()
				m := machine.New(p)
				k := oskern.New(m)
				as := k.NewAddressSpace()
				as.MapRegion(1<<30, memdata.PageSize, false)
				var copyCycles, faultCycles uint64
				m.Run(func(c *cpu.Core) {
					as.Fork(c)
					t0 := c.Now()
					// Touch through the VM layer: triggers the COW fault.
					as.Store(c, 1<<30, []byte{1})
					c.Fence()
					faultCycles = uint64(c.Now() - t0)
				})
				// The copy portion alone, measured on a fresh machine.
				m2 := machine.New(p)
				src := m2.AllocPage(memdata.PageSize)
				dst := m2.AllocPage(memdata.PageSize)
				m2.FillRandom(src, memdata.PageSize, 1)
				m2.Run(func(c *cpu.Core) {
					t0 := c.Now()
					softmc.MemcpyEager(c, dst, src, memdata.PageSize)
					copyCycles = uint64(c.Now() - t0)
				})
				return row("fork_cow_fault_4K", float64(copyCycles)/float64(faultCycles))
			}),
		},
		Merge: concatParts,
	}
}

// timedCopier wraps a copier and accumulates cycles spent in Memcpy.
type timedCopier struct {
	inner      copykit.Copier
	copyCycles uint64
}

func (t *timedCopier) Name() string { return t.inner.Name() }
func (t *timedCopier) Memcpy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	t0 := c.Now()
	t.inner.Memcpy(c, dst, src, n)
	t.copyCycles += uint64(c.Now() - t0)
}
func (t *timedCopier) Read(c *cpu.Core, a memdata.Addr, n uint64) []byte {
	return t.inner.Read(c, a, n)
}
func (t *timedCopier) ReadAsync(c *cpu.Core, a memdata.Addr, n uint64) { t.inner.ReadAsync(c, a, n) }
func (t *timedCopier) Write(c *cpu.Core, a memdata.Addr, data []byte)  { t.inner.Write(c, a, data) }
func (t *timedCopier) Free(c *cpu.Core, r memdata.Range)               { t.inner.Free(c, r) }

// Figure3 breaks down where Protobuf memcpy cycles go.
func Figure3(o Options) []*stats.Table {
	m := protobuf.NewMachineFrom(o.params("baseline"))
	res := protobuf.Run(m, o.protoCfg(o.copier("baseline", m)))
	tb := stats.NewTable("Figure 3: source of Protobuf memcpy overhead (fractions during memcpy)",
		"metric", "fraction")
	missRate := float64(res.CopyL1Misses) / float64(res.CopyAccesses)
	memMiss := 1 - float64(res.CopyIssue)/float64(res.CopyCycles)
	stall := float64(res.CopyWindowStl) / float64(res.CopyCycles)
	tb.AddRow("cache_miss", missRate)
	tb.AddRow("mem_miss_cycles", memMiss)
	tb.AddRow("mem_miss_stall_cycles", stall)
	return []*stats.Table{tb}
}

// Figure4 emits the Protobuf copy-size CDF, both the model and a sampled
// workload run.
func Figure4(o Options) []*stats.Table {
	m := protobuf.NewMachineFrom(o.params("baseline"))
	res := protobuf.Run(m, o.protoCfg(o.copier("baseline", m)))
	tb := stats.NewTable("Figure 4: cumulative distribution of Protobuf memcpy sizes",
		"size", "cdf_model", "cdf_measured")
	sizes := trace.Fig4Sizes()
	model := trace.Fig4CDF()
	thresholds := make([]float64, len(sizes))
	for i, s := range sizes {
		thresholds[i] = float64(s)
	}
	measured := res.Sizes.CDF(thresholds)
	for i, s := range sizes {
		tb.AddRow(fmt.Sprintf("%dB", s), model[i], measured[i])
	}
	return []*stats.Table{tb}
}

// ---------------------------------------------------------------------------
// Microbenchmarks (§V-A, §V-C)
// ---------------------------------------------------------------------------

// Figure10 is the copy-latency sweep; figure10Jobs enumerates its size
// ladder as one job per size.
func Figure10(o Options) []*stats.Table { return runJobSet(o, figure10Jobs(o)) }

func figure10Jobs(o Options) JobSet {
	mopt := o.microOpt()
	var jobs []runner.Job
	for _, size := range micro.SweepSizes(mopt) {
		size := size
		jobs = append(jobs, job(fmt.Sprintf("10/%d", size), func() []*stats.Table {
			return tables(micro.CopyLatencyRow(mopt, size))
		}))
	}
	return JobSet{Jobs: jobs, Merge: concatParts}
}

// Figure11 is the memcpy_lazy overhead breakdown.
func Figure11(o Options) []*stats.Table { return []*stats.Table{micro.Breakdown(o.microOpt())} }

// Figure12 is the sequential destination access sweep.
func Figure12(o Options) []*stats.Table { return []*stats.Table{micro.SeqAccess(o.microOpt())} }

// Figure13 is the random destination access sweep.
func Figure13(o Options) []*stats.Table { return []*stats.Table{micro.RandAccess(o.microOpt())} }

// Figure21 is the BPQ sweep.
func Figure21(o Options) []*stats.Table { return []*stats.Table{micro.SrcWrite(o.microOpt())} }

// ---------------------------------------------------------------------------
// Application workloads (§V-B)
// ---------------------------------------------------------------------------

// figure14Mechs is the mechanism comparison of Figs 14 and 15, in paper
// order; each name is built through the config registry.
func figure14Mechs() []string { return []string{"baseline", "zio", "mc2"} }

// Figure14 compares Protobuf runtime across mechanisms.
func Figure14(o Options) []*stats.Table {
	tb := stats.NewTable("Figure 14: Protobuf runtime (ms)", "mechanism", "runtime_ms")
	for _, mech := range figure14Mechs() {
		m := protobuf.NewMachineFrom(o.params(mech))
		res := protobuf.Run(m, o.protoCfg(o.copier(mech, m)))
		tb.AddRow(mech, o.clock().CyclesToMs(uint64(res.Cycles)))
	}
	return []*stats.Table{tb}
}

// Figure15 compares MongoDB insert latency across mechanisms.
func Figure15(o Options) []*stats.Table {
	tb := stats.NewTable("Figure 15: MongoDB average insertion latency (ms)", "mechanism", "latency_ms")
	for _, mech := range figure14Mechs() {
		m := mongo.NewMachineFrom(o.params(mech))
		res := mongo.Run(m, o.mongoCfg(o.copier(mech, m)))
		tb.AddRow(mech, res.AvgInsertMsAt(o.clock()))
	}
	return []*stats.Table{tb}
}

// mvccFractions is the Fig 16/17 x-axis.
func mvccFractions() []float64 { return []float64{0.0625, 0.125, 0.25, 0.5, 1.0} }

func mvccTable(mode mvcc.Mode, threads int, withNT bool) *stats.Table {
	name := map[mvcc.Mode]string{mvcc.RMW: "read-modify-write", mvcc.WriteOnly: "write-only"}[mode]
	cols := []string{"fraction", "baseline", "mc2"}
	if withNT {
		cols = append(cols, "mc2_nontemporal")
	}
	return stats.NewTable(fmt.Sprintf("MVCC %s throughput (kOps/s), %d thread(s)", name, threads), cols...)
}

// mvccRow computes one fraction's row of a Fig 16/17 sweep as a one-row
// table: a baseline run, an (MC)² run, and optionally the non-temporal
// variant, each on its own machine lowered from the cell's spec.
func mvccRow(o Options, spec config.MachineSpec, mode mvcc.Mode, threads int, f float64, withNT bool) *stats.Table {
	tb := mvccTable(mode, threads, withNT)
	base := mvcc.Run(mvcc.NewMachineFrom(specParams(spec, "baseline")), o.mvccCfg(false, f, mode, threads))
	lazy := mvcc.Run(mvcc.NewMachineFrom(specParams(spec, "mc2")), o.mvccCfg(true, f, mode, threads))
	row := []interface{}{f, base.ThroughputKOpsAt(o.clock()), lazy.ThroughputKOpsAt(o.clock())}
	if withNT {
		nt := mvcc.Run(mvcc.NewMachineFrom(specParams(spec, "mc2")), o.mvccCfg(true, f, mvcc.WriteOnlyNT, threads))
		row = append(row, nt.ThroughputKOpsAt(o.clock()))
	}
	tb.AddRow(row...)
	return tb
}

// mvccSweep declares a Fig 16/17 grid: a thread axis times the
// update-fraction axis, one table per thread count.
func mvccSweep(o Options, fig string, mode mvcc.Mode, withNT bool) SweepSpec {
	threadPts := []Point{{Label: "t1", Value: 1}, {Label: "t8", Value: 8}}
	fracPts := make([]Point, 0, len(mvccFractions()))
	for _, f := range mvccFractions() {
		fracPts = append(fracPts, Point{Label: fmt.Sprintf("f%g", f), Value: f})
	}
	return SweepSpec{
		Fig: fig,
		Axes: []Axis{
			{Name: "threads", Points: threadPts},
			{Name: "update_fraction", Points: fracPts},
		},
		Cell: func(spec config.MachineSpec, pt []Point) []*stats.Table {
			return tables(mvccRow(o, spec, mode, pt[0].Value.(int), pt[1].Value.(float64), withNT))
		},
		Merge: groupByLeadingAxis,
	}
}

// Figure16 is the MVCC read-modify-write sweep (a: 1 thread, b: 8 threads).
func Figure16(o Options) []*stats.Table { return runJobSet(o, figure16Jobs(o)) }

func figure16Jobs(o Options) JobSet { return mvccSweep(o, "16", mvcc.RMW, false).Compile(o.spec()) }

// Figure17 is the MVCC write-only sweep with the non-temporal variant.
func Figure17(o Options) []*stats.Table { return runJobSet(o, figure17Jobs(o)) }

func figure17Jobs(o Options) JobSet {
	return mvccSweep(o, "17", mvcc.WriteOnly, true).Compile(o.spec())
}

// ---------------------------------------------------------------------------
// OS experiments (§V-B)
// ---------------------------------------------------------------------------

const figure18Title = "Figure 18: write latencies with huge-page COW (cycles, access order)"

// figure18Sweep declares Fig 18 as a kernel axis (native vs (MC)²); the
// merge zips the two runs' latency columns into one table.
func figure18Sweep(o Options) SweepSpec {
	return SweepSpec{
		Fig: "18",
		Axes: []Axis{{Name: "kernel", Points: []Point{
			{Label: "native", Value: false},
			{Label: "mc2", Value: true},
		}}},
		Cell: func(spec config.MachineSpec, pt []Point) []*stats.Table {
			cfg := oswl.HugeCOWConfig{Seed: 42, Lazy: pt[0].Value.(bool)}
			if o.Quick {
				cfg.RegionBytes, cfg.Accesses = 16<<20, 40
			}
			// Both kernels run on lazy-capable hardware; cfg.Lazy picks
			// whether the kernel uses it.
			p := spec.MustParams()
			p.LazyEnabled = true
			cfg.Machine = &p
			lat := oswl.HugeCOW(cfg)
			tb := stats.NewTable(figure18Title, "access", pt[0].Label)
			for i, v := range lat {
				tb.AddRow(i, v)
			}
			return tables(tb)
		},
		Merge: figure18Merge,
	}
}

// figure18Merge zips the per-kernel latency columns, preserving the raw
// cell values (access index stays an int, latencies stay uint64).
func figure18Merge(sw SweepSpec, parts [][]*stats.Table) []*stats.Table {
	native, lazy := parts[0][0], parts[1][0]
	tb := stats.NewTable(figure18Title, "access", "native", "mc2")
	for i := 0; i < native.NumRows(); i++ {
		tb.AddRow(native.Value(i, 0), native.Value(i, 1), lazy.Value(i, 1))
	}
	return tables(tb)
}

// Figure18 records huge-page COW write latencies, native vs (MC)² kernel.
func Figure18(o Options) []*stats.Table { return runJobSet(o, figure18Jobs(o)) }

func figure18Jobs(o Options) JobSet { return figure18Sweep(o).Compile(o.spec()) }

// Figure19 measures pipe transfer throughput across transfer sizes.
func Figure19(o Options) []*stats.Table {
	tb := stats.NewTable("Figure 19: Linux pipe transfer throughput (bytes/kilocycle)",
		"transfer", "native", "mc2")
	transfers := 64
	if o.Quick {
		transfers = 24
	}
	p := o.hwParams()
	for _, size := range []uint64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		n := oswl.PipeThroughput(oswl.PipeConfig{TransferSize: size, Transfers: transfers, Seed: 42, Machine: &p})
		l := oswl.PipeThroughput(oswl.PipeConfig{TransferSize: size, Transfers: transfers, Seed: 42, Lazy: true, Machine: &p})
		tb.AddRow(fmt.Sprintf("%dKB", size>>10), n, l)
	}
	return []*stats.Table{tb}
}

// ---------------------------------------------------------------------------
// Sensitivity studies (§V-C)
// ---------------------------------------------------------------------------

// figure20Grid is the Fig 20 sweep space.
func figure20Grid(o Options) (entries []int, thresholds []float64) {
	entries = []int{1024, 2048, 4096}
	thresholds = []float64{0.25, 0.50, 0.75, 0.90}
	if o.Quick {
		entries = []int{256, 512, 1024}
	}
	return entries, thresholds
}

// figure20Sweep declares the Fig 20 grid as spec-override axes: CTT
// capacity times async-free threshold, each point a config.Overrides patch
// on the base spec. The normalization needs every cell, so it happens in
// the merge over the cells' raw values.
func figure20Sweep(o Options) SweepSpec {
	entries, thresholds := figure20Grid(o)
	epts := make([]Point, 0, len(entries))
	for _, e := range entries {
		epts = append(epts, Point{
			Label: fmt.Sprintf("e%d", e),
			Set:   config.Overrides{{Path: "Lazy.CTTCapacity", Value: e}},
			Value: e,
		})
	}
	tpts := make([]Point, 0, len(thresholds))
	for _, th := range thresholds {
		tpts = append(tpts, Point{
			Label: fmt.Sprintf("th%.0f%%", th*100),
			Set:   config.Overrides{{Path: "Lazy.FreeThreshold", Value: th}},
			Value: th,
		})
	}
	return SweepSpec{
		Fig: "20",
		Axes: []Axis{
			{Name: "ctt_entries", Points: epts},
			{Name: "free_threshold", Points: tpts},
		},
		Cell: func(spec config.MachineSpec, pt []Point) []*stats.Table {
			m := protobuf.NewMachineFrom(specParams(spec, "mc2"))
			res := protobuf.Run(m, o.protoCfg(specCopier(spec, "mc2", m)))
			tb := stats.NewTable("Figure 20 cell", "entries", "threshold", "runtime_ms", "stall_cycles")
			tb.AddRow(pt[0].Value.(int), pt[1].Value.(float64),
				o.clock().CyclesToMs(uint64(res.Cycles)), float64(m.Metrics.CounterValue("engine.lazy_stall_cycles")))
			return tables(tb)
		},
		Merge: figure20Merge,
	}
}

// figure20Merge assembles the runtime and normalized-stall tables from the
// grid's raw cells, reading the axes back off the sweep declaration.
func figure20Merge(sw SweepSpec, parts [][]*stats.Table) []*stats.Table {
	epts, tpts := sw.Axes[0].Points, sw.Axes[1].Points
	thresholds := make([]float64, len(tpts))
	for i, pt := range tpts {
		thresholds[i] = pt.Value.(float64)
	}
	cell := func(ei, ti int) *stats.Table { return parts[ei*len(tpts)+ti][0] }
	float := func(tb *stats.Table, col int) float64 {
		v, ok := tb.Float(0, col)
		if !ok {
			panic("figures: non-numeric Figure 20 cell")
		}
		return v
	}
	var minS, maxS = 1e18, -1.0
	for ei := range epts {
		for ti := range tpts {
			s := float(cell(ei, ti), 3)
			minS, maxS = minFloat(minS, s), maxFloat(maxS, s)
		}
	}
	rt := stats.NewTable("Figure 20a: Protobuf runtime (ms) by CTT entries x copy threshold",
		append([]string{"entries"}, percentCols(thresholds)...)...)
	for ei, ept := range epts {
		row := []interface{}{ept.Value.(int)}
		for ti := range tpts {
			row = append(row, float(cell(ei, ti), 2))
		}
		rt.AddRow(row...)
	}
	st := stats.NewTable("Figure 20b: max-min normalized MCLAZY stall cycles (full CTT)",
		append([]string{"entries"}, percentCols(thresholds)...)...)
	for ei, ept := range epts {
		row := []interface{}{ept.Value.(int)}
		for ti := range tpts {
			v := 0.0
			if maxS > minS {
				v = (float(cell(ei, ti), 3) - minS) / (maxS - minS)
			}
			row = append(row, v)
		}
		st.AddRow(row...)
	}
	return tables(rt, st)
}

// Figure20 sweeps CTT capacity and async-free threshold under Protobuf.
func Figure20(o Options) []*stats.Table { return runJobSet(o, figure20Jobs(o)) }

func figure20Jobs(o Options) JobSet { return figure20Sweep(o).Compile(o.spec()) }

func percentCols(ths []float64) []string {
	out := make([]string, len(ths))
	for i, t := range ths {
		out[i] = fmt.Sprintf("thr%.0f%%", t*100)
	}
	return out
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func figure22Table(frees []int) *stats.Table {
	cols := []string{"threads"}
	for _, f := range frees {
		cols = append(cols, fmt.Sprintf("free%d", f))
	}
	return stats.NewTable("Figure 22: MVCC throughput with (MC)², normalized to memcpy, by parallel CTT frees",
		cols...)
}

// figure22Row computes one thread count's row: the shared baseline run plus
// one (MC)² run per parallel-free setting, normalized to the baseline.
func figure22Row(o Options, th int, frees []int, ctt int) *stats.Table {
	tb := figure22Table(frees)
	base := mvcc.Run(mvcc.NewMachineFrom(o.params("baseline")), o.mvccCfg(false, 0.125, mvcc.RMW, th))
	row := []interface{}{th}
	for _, fr := range frees {
		p := o.params("mc2")
		p.Lazy.CTTCapacity = ctt
		p.Lazy.ParallelFrees = fr
		lazy := mvcc.Run(mvcc.NewMachineFrom(p), o.mvccCfg(true, 0.125, mvcc.RMW, th))
		row = append(row, lazy.ThroughputKOpsAt(o.clock())/base.ThroughputKOpsAt(o.clock()))
	}
	tb.AddRow(row...)
	return tb
}

// Figure22 sweeps parallel CTT freeing against thread count under MVCC.
// Rows share a per-thread baseline, so the job grain is one row.
func Figure22(o Options) []*stats.Table { return runJobSet(o, figure22Jobs(o)) }

func figure22Jobs(o Options) JobSet {
	threads := []int{1, 2, 4, 8}
	frees := []int{1, 2, 4, 8}
	// Pressure the CTT: small table of capacity relative to update rate.
	ctt := 256
	if !o.Quick {
		ctt = 512
	}
	var jobs []runner.Job
	for _, th := range threads {
		th := th
		jobs = append(jobs, job(fmt.Sprintf("22/t%d", th), func() []*stats.Table {
			return tables(figure22Row(o, th, frees, ctt))
		}))
	}
	return JobSet{Jobs: jobs, Merge: concatParts}
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

// Table1 dumps the simulated configuration as lowered from the base spec.
func Table1(o Options) []*stats.Table {
	p := o.spec().MustParams()
	tb := stats.NewTable("Table I: simulated configuration", "parameter", "value")
	rows := [][2]string{
		{"CPUs", fmt.Sprintf("%d", p.Cores)},
		{"Clock speed", fmt.Sprintf("%g GHz", o.spec().ClockGHz)},
		{"Private L1 cache", fmt.Sprintf("%d KB/CPU, stride prefetcher", p.Cache.L1Size>>10)},
		{"Shared L2 cache", fmt.Sprintf("%d MB, stride prefetcher", p.Cache.L2Size>>20)},
		{"DRAM channels", fmt.Sprintf("%d", p.Channels)},
		{"DRAM config", "DDR4-like (tRCD=tRP=tCAS=14ns, 64B burst 2.5ns)"},
		{"BPQ size", fmt.Sprintf("%d entries", p.Lazy.BPQCapacity)},
		{"CTT entries", fmt.Sprintf("%d", p.Lazy.CTTCapacity)},
		{"CTT latency", fmt.Sprintf("%.2f ns", float64(p.Lazy.CTTLatency)/4)},
		{"Copy threshold", fmt.Sprintf("%.0f%%", p.Lazy.FreeThreshold*100)},
		{"Modeled DRAM size", fmt.Sprintf("%d MB", p.MemSize>>20)},
	}
	for _, r := range rows {
		tb.AddRow(r[0], r[1])
	}
	return []*stats.Table{tb}
}
