package figures

import (
	"strings"

	"mcsquare/internal/config"
	"mcsquare/internal/cpu"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
)

// figureTimeline is the time-resolved companion to the end-of-run figures:
// it drives a copy storm designed to push the CTT through its
// graceful-degradation high-water mark and emits the cycle-windowed
// telemetry — CTT occupancy, bounce rate, eager-fallback bytes, lazy ops,
// and memory-controller reads per window — for baseline vs (MC)², with and
// without a seeded chaos schedule. Each cell binds its own timeline (and
// fault) collector, so the figure is self-contained: it needs no -timeline
// flag and never leaks into a global -timeline/-faults run's planes.

const timelineFigTitle = "Timeline: cycle-windowed (MC)2 telemetry during a copy storm (small CTT, eager fallback at 75%)"

// timelineChaosSeed drives the chaos cells; a fixed seed keeps the golden
// reproducible and replayable via mcfigures -faults 0x7E11.
const timelineChaosSeed = 0x7E11

func timelineFigTable() *stats.Table {
	return stats.NewTable(timelineFigTitle,
		"mechanism", "chaos", "window", "start_kcyc", "end_kcyc",
		"ctt_entries", "bounces", "eager_fb_bytes", "lazy_ops", "mc_reads")
}

// timelineStorm is the copy storm: rounds of (ramp: lazy-copy every buffer
// to a fresh destination) → (drain: read half the destinations back, each
// read bouncing a live CTT entry) → (interleave: alternate reads with more
// copies). Fresh destinations every round keep CTT occupancy ramping, and
// the ramp issues more copies than the cell's CTT fallback mark admits, so
// the 75% high-water crossing lands mid-ramp — visible as the
// eager_fb_bytes knee in the timeline.
func timelineStorm(o Options, spec config.MachineSpec, mech string) *machine.Machine {
	bufs, bufSize, rounds := 96, uint64(16<<10), 3
	if o.Quick {
		bufs, bufSize, rounds = 24, uint64(8<<10), 2
	}
	m := machine.New(specParams(spec, mech))
	cp := specCopier(spec, mech, m)
	srcs := make([]memdata.Addr, bufs)
	for i := range srcs {
		srcs[i] = m.AllocPage(bufSize)
		m.FillRandom(srcs[i], bufSize, int64(i)+1)
	}
	dsts := make([][]memdata.Addr, rounds)
	for r := range dsts {
		dsts[r] = make([]memdata.Addr, bufs)
		for i := range dsts[r] {
			dsts[r][i] = m.AllocPage(bufSize)
		}
	}
	m.Run(func(c *cpu.Core) {
		for r := 0; r < rounds; r++ {
			// Ramp: fill the CTT.
			for i := 0; i < bufs; i++ {
				cp.Memcpy(c, dsts[r][i], srcs[i], bufSize)
			}
			c.Fence()
			// Drain: bounce the first half of this round's destinations.
			for i := 0; i < bufs/2; i++ {
				cp.Read(c, dsts[r][i], bufSize)
			}
			// Interleave: reads racing fresh copies over the second half.
			for i := bufs / 2; i < bufs; i++ {
				cp.Read(c, dsts[r][i], bufSize)
				cp.Memcpy(c, dsts[r][i], srcs[bufs-1-i], bufSize)
			}
			c.Fence()
		}
	})
	return m
}

// timelineCell runs one (mechanism, chaos) cell with a locally bound
// timeline collector and renders its windows as rows.
func timelineCell(o Options, spec config.MachineSpec, mech string, chaos bool) *stats.Table {
	win := uint64(100_000)
	// Pressure the graceful-degradation path: a CTT smaller than one
	// ramp's copy count, with fallback at 75% occupancy.
	spec.Lazy.CTTCapacity = 64
	spec.Lazy.EagerCopyFrac = 0.75
	if o.Quick {
		win = 20_000
		spec.Lazy.CTTCapacity = 24
	}

	tlcol := timeline.NewCollector(timeline.Config{Enabled: true, WindowCycles: win})
	release := tlcol.Bind()
	defer release()
	if chaos {
		sched := faultinject.FromSeed(timelineChaosSeed)
		fcol := faultinject.NewCollector(&sched)
		frel := fcol.Bind()
		defer frel()
	}

	m := timelineStorm(o, spec, mech)
	rec := m.Timeline
	rec.Finalize()

	label := "clean"
	if chaos {
		label = "chaos"
	}
	tb := timelineFigTable()
	for _, w := range rec.Windows() {
		count := func(name string) uint64 { return w.Sample.Values[name].Count }
		var mcReads uint64
		for name, v := range w.Sample.Values {
			if strings.HasPrefix(name, "mc") && strings.HasSuffix(name, ".reads") {
				mcReads += v.Count
			}
		}
		tb.AddRow(mech, label, w.Index,
			float64(w.Start)/1e3, float64(w.End)/1e3,
			w.Sample.Values["ctt.entries"].Value,
			count("engine.bounces"), count("engine.eager_fallback_bytes"),
			count("engine.lazy_ops"), mcReads)
	}
	return tb
}

func timelineSweep(o Options) SweepSpec {
	return SweepSpec{
		Fig: "timeline",
		Axes: []Axis{
			{Name: "mechanism", Points: []Point{
				{Label: "baseline", Value: "baseline"},
				{Label: "mc2", Value: "mc2"},
			}},
			{Name: "chaos", Points: []Point{
				{Label: "clean", Value: false},
				{Label: "chaos", Value: true},
			}},
		},
		Cell: func(spec config.MachineSpec, pt []Point) []*stats.Table {
			return tables(timelineCell(o, spec, pt[0].Value.(string), pt[1].Value.(bool)))
		},
	}
}

// FigureTimeline is the serial form (identical to the decomposed jobs run).
func FigureTimeline(o Options) []*stats.Table {
	return runJobSet(o, timelineJobs(o))
}

func timelineJobs(o Options) JobSet { return timelineSweep(o).Compile(o.spec()) }

func init() {
	extra = append(extra, Generator{
		ID:    "timeline",
		Title: "cycle-windowed telemetry during a copy storm, baseline vs (MC)2, clean vs chaos",
		Run:   FigureTimeline,
		jobs:  timelineJobs,
	})
}
