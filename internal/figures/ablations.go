package figures

import (
	"fmt"

	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/runner"
	"mcsquare/internal/softmc"
	"mcsquare/internal/stats"
	"mcsquare/internal/workloads/kvsnap"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/protobuf"
)

func init() {
	extra = append(extra,
		Generator{"ablations", "design-choice ablations beyond the paper's figures", Ablations, ablationsJobs},
		Generator{"pollution", "cache pollution with eager vs lazy copies (§III-F)", Pollution, nil},
	)
}

// ablMergeVariant runs the CTT adjacency-merging ablation for one variant
// (§III-A1: per-element lazy copies of contiguous cachelines, on a CTT
// smaller than the element count) and returns its one-row table.
func ablMergeVariant(o Options, disable bool) *stats.Table {
	tb := stats.NewTable("Ablation: CTT adjacency merging (element-wise array copy, 512-entry CTT)",
		"variant", "cycles", "ctt_highwater", "entries_created")
	p := o.hwParams()
	p.Lazy.CTTCapacity = 512
	p.Lazy.DisableMerge = disable
	m := machine.New(p)
	const elems = 2048 // 2048 x 64B elements = 128 KB array
	src := m.AllocPage(elems * memdata.LineSize)
	dst := m.AllocPage(elems * memdata.LineSize)
	m.FillRandom(src, elems*memdata.LineSize, 1)
	var dur uint64
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		for i := 0; i < elems; i++ {
			off := memdata.Addr(i * memdata.LineSize)
			c.MCLazy(memdata.Range{Start: dst + off, Size: memdata.LineSize}, src+off)
		}
		c.Fence()
		dur = uint64(c.Now() - start)
	})
	name := "merge_on"
	if disable {
		name = "merge_off"
	}
	tb.AddRow(name, dur, m.Metrics.GaugeValue("ctt.high_water"), m.Metrics.CounterValue("ctt.pieces"))
	return tb
}

// ablThresholdPoint runs one interposer-threshold point: where should
// copy_interpose.so draw the lazy/eager line? (The paper uses 1 KB for
// Protobuf.)
func ablThresholdPoint(o Options, th uint64) *stats.Table {
	tb := stats.NewTable("Ablation: interposer threshold (Protobuf runtime, ms)",
		"threshold", "runtime_ms")
	res := protobuf.Run(protobuf.NewMachineFrom(o.params("mc2")), o.protoCfg(copykit.Lazy{Threshold: th}))
	tb.AddRow(th, o.clock().CyclesToMs(uint64(res.Cycles)))
	return tb
}

// ablFlushVariant runs one side of the kernel ranged flush vs wrapper CLWB
// comparison for a huge-page lazy copy (§V-A1 suggests ranged writeback as
// future work; the simulated kernel already uses it via MCLAZY's sweep).
func ablFlushVariant(o Options, wrapper bool) *stats.Table {
	tb := stats.NewTable("Ablation: 2MB lazy copy, instruction sweep vs per-line CLWB wrapper",
		"variant", "cycles")
	size := uint64(memdata.HugePageSize)
	if o.Quick {
		size = 256 << 10
	}
	p := o.hwParams()
	p.MemSize = 512 << 20
	m := machine.New(p)
	src := m.Alloc(size, size)
	dst := m.Alloc(size, size)
	m.FillRandom(src, size, 1)
	var dur uint64
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		if wrapper {
			softmc.MemcpyLazy(c, dst, src, size) // per-line CLWBs
		} else {
			// The kernel path: one MCLAZY per 2 MB-bounded chunk; the
			// instruction's ranged sweep handles writeback.
			for off := uint64(0); off < size; off += memdata.HugePageSize {
				n := min(uint64(memdata.HugePageSize), size-off)
				c.MCLazy(memdata.Range{Start: dst + memdata.Addr(off), Size: n}, src+memdata.Addr(off))
			}
			c.Fence()
		}
		dur = uint64(c.Now() - start)
	})
	name := "instruction_sweep"
	if wrapper {
		name = "wrapper_clwb_per_line"
	}
	tb.AddRow(name, dur)
	return tb
}

// ablThresholds is the interposer-threshold sweep axis.
func ablThresholds() []uint64 { return []uint64{256, 512, 1024, 2048, 4096} }

// Ablations quantifies design choices the paper motivates but does not
// sweep directly: CTT adjacency merging, the bounce writeback, the
// interposer threshold, and the kernel's ranged flush versus the user-space
// wrapper's per-line CLWBs for huge-page copies. Every variant is an
// independent machine, enumerated as jobs by ablationsJobs.
func Ablations(o Options) []*stats.Table { return runJobSet(o, ablationsJobs(o)) }

func ablationsJobs(o Options) JobSet {
	jobs := []runner.Job{
		job("ablations/merge_on", func() []*stats.Table { return tables(ablMergeVariant(o, false)) }),
		job("ablations/merge_off", func() []*stats.Table { return tables(ablMergeVariant(o, true)) }),
	}
	for _, th := range ablThresholds() {
		th := th
		jobs = append(jobs, job(fmt.Sprintf("ablations/thr%d", th), func() []*stats.Table {
			return tables(ablThresholdPoint(o, th))
		}))
	}
	jobs = append(jobs,
		job("ablations/flush_sweep", func() []*stats.Table { return tables(ablFlushVariant(o, false)) }),
		job("ablations/flush_clwb", func() []*stats.Table { return tables(ablFlushVariant(o, true)) }),
	)
	nThr := len(ablThresholds())
	return JobSet{
		Jobs:  jobs,
		Merge: func(parts [][]*stats.Table) []*stats.Table { return concatGroups(parts, 2, nThr, 2) },
	}
}

// Pollution measures the §III-F claim that lazy copies avoid cache
// pollution: a working set is kept warm while a large unrelated copy runs;
// the working set's re-access misses measure how much the copy evicted.
func Pollution(o Options) []*stats.Table {
	tb := stats.NewTable("Cache pollution: working-set L2 misses after a large copy (§III-F)",
		"mechanism", "ws_l2_misses_after_copy", "copy_cycles")
	// The copy's source + destination (2x 1.5 MB of traffic) overflow the
	// 2 MB L2 when eager, evicting the warm working set; a lazy copy
	// touches neither buffer.
	wsSize := uint64(1 << 20)
	copySize := uint64(1536 << 10)
	for _, lazy := range []bool{false, true} {
		lazy := lazy
		m := machine.New(o.hwParams())
		ws := m.AllocPage(wsSize)
		src := m.AllocPage(copySize)
		dst := m.AllocPage(copySize)
		m.FillRandom(ws, wsSize, 1)
		m.FillRandom(src, copySize, 2)
		var misses, dur uint64
		m.Run(func(c *cpu.Core) {
			// Warm the working set.
			m.Warm(c, memdata.Range{Start: ws, Size: wsSize})
			// Run the copy.
			t0 := c.Now()
			if lazy {
				softmc.MemcpyLazy(c, dst, src, copySize)
			} else {
				softmc.MemcpyEager(c, dst, src, copySize)
			}
			dur = uint64(c.Now() - t0)
			// Re-walk the working set; L2 misses measure what the copy
			// evicted (L1 misses are inevitable for a 1 MB set).
			before := m.Metrics.Snapshot()
			m.Warm(c, memdata.Range{Start: ws, Size: wsSize})
			misses = m.Metrics.Snapshot().Delta(before).Counter("l2.misses")
		})
		name := "memcpy"
		if lazy {
			name = "mc2"
		}
		tb.AddRow(name, misses, dur)
	}
	return []*stats.Table{tb}
}

func init() {
	extra = append(extra,
		Generator{"scaling", "memory-system scaling: channels and interconnect bandwidth", Scaling, nil})
}

// Scaling sweeps the memory-system resources the paper's §V-C scalability
// argument leans on ("servers provision memory bandwidth proportional to
// cores"): DRAM channel count and cache-to-controller interconnect
// bandwidth, under the 8-thread MVCC workload with (MC)².
func Scaling(o Options) []*stats.Table {
	chans := stats.NewTable("Scaling: MVCC 8-thread throughput (kOps/s) vs DRAM channels",
		"channels", "baseline", "mc2")
	for _, ch := range []int{1, 2, 4} {
		bp, lp := o.params("baseline"), o.params("mc2")
		bp.Channels, lp.Channels = ch, ch
		base := mvcc.Run(mvcc.NewMachineFrom(bp), o.mvccCfg(false, 0.125, mvcc.RMW, 8))
		lazy := mvcc.Run(mvcc.NewMachineFrom(lp), o.mvccCfg(true, 0.125, mvcc.RMW, 8))
		chans.AddRow(ch, base.ThroughputKOpsAt(o.clock()), lazy.ThroughputKOpsAt(o.clock()))
	}

	xcon := stats.NewTable("Scaling: MVCC 8-thread throughput (kOps/s) vs interconnect bandwidth",
		"bytes_per_cycle", "baseline", "mc2")
	for _, bw := range []float64{0, 32, 8} {
		bw := bw
		label := "unbounded"
		if bw > 0 {
			label = fmt.Sprintf("%.0f", bw)
		}
		bp, lp := o.params("baseline"), o.params("mc2")
		bp.XConBytesPerCycle, lp.XConBytesPerCycle = bw, bw
		base := mvcc.Run(mvcc.NewMachineFrom(bp), o.mvccCfg(false, 0.125, mvcc.RMW, 8))
		lazy := mvcc.Run(mvcc.NewMachineFrom(lp), o.mvccCfg(true, 0.125, mvcc.RMW, 8))
		xcon.AddRow(label, base.ThroughputKOpsAt(o.clock()), lazy.ThroughputKOpsAt(o.clock()))
	}
	return []*stats.Table{chans, xcon}
}

func init() {
	extra = append(extra,
		Generator{"kvsnap", "KV store write-latency tail under fork snapshots (Redis scenario)", KVSnap, nil})
}

// KVSnap runs the Redis-style snapshotting store: write latency percentiles
// with the native and the (MC)² kernel, huge pages throughout.
func KVSnap(o Options) []*stats.Table {
	p := o.hwParams()
	cfg := kvsnap.Config{Seed: 42, Machine: &p}
	if o.Quick {
		cfg.StoreBytes, cfg.Ops, cfg.SnapshotEach = 8<<20, 60, 30
	}
	tb := stats.NewTable("KV store under fork snapshots: write latency (cycles)",
		"kernel", "p50", "p99", "max", "cow_faults")
	for _, lazy := range []bool{false, true} {
		c := cfg
		c.LazyCOW = lazy
		res := kvsnap.Run(c)
		name := "native"
		if lazy {
			name = "mc2"
		}
		tb.AddRow(name, res.Latencies.Percentile(50), res.Latencies.Percentile(99),
			res.Latencies.Max(), res.COWFaults)
	}
	return []*stats.Table{tb}
}
