package figures

import (
	"strings"
	"testing"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/runner"
	"mcsquare/internal/stats"
)

// smallFleetSpec trims the default fleet to two machines over the two
// cheapest workload families, so determinism tests stay fast. Race builds
// and -short shrink to one machine on one workload: the merge-order
// guarantee under test doesn't need fleet width.
func smallFleetSpec() *config.MachineSpec {
	spec := config.Default()
	spec.Fleet = &config.FleetSpec{
		Machines: 2,
		Requests: 400,
		Mix: []config.MixEntry{
			{Workload: "mvcc", Weight: 0.6},
			{Workload: "protobuf", Weight: 0.4},
		},
	}
	if testing.Short() || raceEnabled {
		spec.Fleet.Machines = 1
		spec.Fleet.Requests = 200
		spec.Fleet.Mix = spec.Fleet.Mix[:1]
	}
	return &spec
}

// TestFleetParallelDeterminism is the -jobs guarantee for figureFleet: one
// worker and a saturated pool must merge to byte-identical output, and both
// must equal the serial Run.
func TestFleetParallelDeterminism(t *testing.T) {
	g, ok := ByID("fleet")
	if !ok {
		t.Fatal("fleet figure missing")
	}
	o := Options{Quick: true, Spec: smallFleetSpec()}
	serial := renderFigure(t, g, 1, o)
	parallel := renderFigure(t, g, 4, o)
	if serial != parallel {
		t.Fatalf("fleet output differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	var b strings.Builder
	for _, tb := range g.Run(o) {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	if direct := b.String(); direct != serial {
		t.Fatalf("fleet Run() differs from merged jobs:\n--- Run ---\n%s\n--- jobs ---\n%s", direct, serial)
	}
	if !strings.Contains(serial, "base_p99_ms") || len(strings.Split(strings.TrimSpace(serial), "\n")) < 3 {
		t.Fatalf("fleet figure degenerate:\n%s", serial)
	}
}

// TestFleetChaosReplay: a seeded fault schedule injected through the runner
// replays byte-identically across worker counts — fleet machines pin their
// fault-plane identity, so plane creation order cannot leak into output.
func TestFleetChaosReplay(t *testing.T) {
	if raceEnabled {
		t.Skip("chaos replay is covered un-raced (CI fleet job) and by internal/fleet's order-independence test")
	}
	g, ok := ByID("fleet")
	if !ok {
		t.Fatal("fleet figure missing")
	}
	o := Options{Quick: true, Spec: smallFleetSpec()}
	sched := faultinject.FromSeed(3)
	render := func(workers int) string {
		set := g.Jobs(o)
		results := runner.Run(runner.Config{
			Workers: workers,
			Options: runner.Options{Quick: true},
			Faults:  &sched,
		}, set.Jobs)
		parts := make([][]*stats.Table, len(results))
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("job %s failed under chaos: %v", r.ID, r.Err)
			}
			parts[i] = r.Tables
		}
		var b strings.Builder
		for _, tb := range set.Merge(parts) {
			b.WriteString(tb.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("chaos fleet output differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestFleetPartialResults: when one fleet job dies, the runner reports a
// structured *JobError for it and the surviving jobs' rows still merge —
// the figure loses one operating point, not the whole curve.
func TestFleetPartialResults(t *testing.T) {
	g, ok := ByID("fleet")
	if !ok {
		t.Fatal("fleet figure missing")
	}
	set := g.Jobs(Options{Quick: true, Spec: smallFleetSpec()})
	if len(set.Jobs) < 3 {
		t.Fatalf("fleet decomposed into %d jobs", len(set.Jobs))
	}
	// Sabotage the second job with a deterministic panic.
	set.Jobs[1].Run = func(runner.Options) []*stats.Table {
		panic("synthetic fleet machine loss")
	}
	results := runner.Run(runner.Config{Workers: 2}, set.Jobs)
	je, ok := results[1].Err.(*runner.JobError)
	if !ok {
		t.Fatalf("dead job error = %v (%T), want *runner.JobError", results[1].Err, results[1].Err)
	}
	if je.Value != "synthetic fleet machine loss" {
		t.Fatalf("JobError value = %v", je.Value)
	}
	var parts [][]*stats.Table
	for i, r := range results {
		if i == 1 {
			continue
		}
		if r.Err != nil {
			t.Fatalf("surviving job %s failed: %v", r.ID, r.Err)
		}
		parts = append(parts, r.Tables)
	}
	merged := set.Merge(parts)
	if len(merged) != 1 || merged[0].NumRows() != len(set.Jobs)-1 {
		t.Fatalf("survivors merged to %d tables / %d rows, want 1 table with %d rows",
			len(merged), merged[0].NumRows(), len(set.Jobs)-1)
	}
}
