package figures

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"

	"mcsquare/internal/runner"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
)

// renderFigure decomposes a generator, runs its jobs on the given worker
// count, merges, and renders the result — exactly the cmd/mcfigures path.
func renderFigure(t *testing.T, g Generator, workers int, o Options) string {
	t.Helper()
	set := g.Jobs(o)
	results := runner.Run(runner.Config{
		Workers: workers,
		Options: runner.Options{Quick: o.Quick},
	}, set.Jobs)
	parts := make([][]*stats.Table, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("figure %s job %s failed: %v", g.ID, r.ID, r.Err)
		}
		parts[i] = r.Tables
	}
	var b strings.Builder
	for _, tb := range set.Merge(parts) {
		b.WriteString(tb.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelDeterminism is the -jobs guarantee: for every decomposed
// generator, running its jobs on one worker and on a saturated pool must
// merge to byte-identical output. Quick scale; the slowest sweeps are
// opt-in via MCFIG_DETERMINISM_ALL=1 (and -short trims further) to keep
// -race runs affordable.
func TestParallelDeterminism(t *testing.T) {
	ids := []string{"2", "10", "20", "22", "ablations", "timeline"}
	if testing.Short() || raceEnabled {
		// Race builds and -short keep the cheapest multi-job figures: the
		// guarantee is about merge order, which two sweeps already cover.
		ids = []string{"2", "20"}
	}
	if os.Getenv("MCFIG_DETERMINISM_ALL") != "" {
		ids = append(ids, "16", "17", "fleet", "resilience")
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4 // exercise real concurrency even on small CI boxes
	}
	for _, id := range ids {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			g, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown figure %s", id)
			}
			serial := renderFigure(t, g, 1, Options{Quick: true})
			parallel := renderFigure(t, g, workers, Options{Quick: true})
			if serial != parallel {
				t.Fatalf("figure %s output differs between 1 and %d workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, workers, serial, parallel)
			}
			// And both must equal the plain serial Run (the generators'
			// documented contract: Run == runJobSet of the same JobSet).
			var b strings.Builder
			for _, tb := range g.Run(Options{Quick: true}) {
				b.WriteString(tb.String())
				b.WriteByte('\n')
			}
			if direct := b.String(); direct != serial {
				t.Fatalf("figure %s Run() differs from merged jobs:\n--- Run ---\n%s\n--- jobs ---\n%s",
					id, direct, serial)
			}
		})
	}
}

// renderTrace runs one figure's jobs with full-rate tracing on the given
// worker count and exports the merged trace document — the cmd/mcfigures
// -trace path.
func renderTrace(t *testing.T, g Generator, workers int) string {
	t.Helper()
	set := g.Jobs(Options{Quick: true})
	results := runner.Run(runner.Config{
		Workers: workers,
		Options: runner.Options{Quick: true},
		Trace:   txtrace.Config{Enabled: true, SampleEvery: 1},
	}, set.Jobs)
	var tracers []*txtrace.Tracer
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("figure %s job %s failed: %v", g.ID, r.ID, r.Err)
		}
		tracers = append(tracers, r.Trace...)
	}
	var b bytes.Buffer
	if err := txtrace.Export(&b, tracers); err != nil {
		t.Fatalf("export: %v", err)
	}
	return b.String()
}

// TestTraceParallelDeterminism extends the -jobs guarantee to the trace
// export: a traced figure must produce byte-identical trace JSON whether
// its jobs ran serially or on a saturated pool, because tracers are merged
// in job submission order and each machine's recorder depends only on its
// own deterministic simulation.
func TestTraceParallelDeterminism(t *testing.T) {
	g, ok := ByID("2")
	if !ok {
		t.Fatal("figure 2 missing")
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := renderTrace(t, g, 1)
	parallel := renderTrace(t, g, workers)
	if serial != parallel {
		t.Fatalf("figure 2 trace differs between 1 and %d workers (lengths %d vs %d)",
			workers, len(serial), len(parallel))
	}
	for _, stage := range []string{"cpu.", "mc.", "dram."} {
		if !strings.Contains(serial, `"name":"`+stage) {
			t.Errorf("trace missing spans for stage prefix %q", stage)
		}
	}
}

// renderPerfetto runs one figure's jobs with both tracing and the timeline
// plane on the given worker count and exports the merged span + counter
// document — the cmd/mcfigures -trace -timeline path.
func renderPerfetto(t *testing.T, g Generator, workers int) string {
	t.Helper()
	set := g.Jobs(Options{Quick: true})
	results := runner.Run(runner.Config{
		Workers:  workers,
		Options:  runner.Options{Quick: true},
		Trace:    txtrace.Config{Enabled: true, SampleEvery: 1},
		Timeline: timeline.Config{Enabled: true, WindowCycles: 50_000},
	}, set.Jobs)
	var tracers []*txtrace.Tracer
	var recs []*timeline.Recorder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("figure %s job %s failed: %v", g.ID, r.ID, r.Err)
		}
		tracers = append(tracers, r.Trace...)
		recs = append(recs, r.Timeline...)
	}
	if len(tracers) < 2 || len(recs) != len(tracers) {
		t.Fatalf("want multiple machines with paired planes, have %d tracers / %d recorders",
			len(tracers), len(recs))
	}
	var b bytes.Buffer
	if err := timeline.ExportPerfetto(&b, tracers, recs); err != nil {
		t.Fatalf("export: %v", err)
	}
	return b.String()
}

// TestPerfettoParallelDeterminism extends the -jobs guarantee to the merged
// span + counter-track export: multiple machines' tracers and timeline
// recorders, concatenated in job submission order, must serialize to
// byte-identical documents whether the jobs ran serially or on a saturated
// pool — counter tracks interleave with span metadata per pid, so any
// ordering leak shows up as a byte diff.
func TestPerfettoParallelDeterminism(t *testing.T) {
	g, ok := ByID("2")
	if !ok {
		t.Fatal("figure 2 missing")
	}
	workers := runtime.NumCPU()
	if workers < 4 {
		workers = 4
	}
	serial := renderPerfetto(t, g, 1)
	parallel := renderPerfetto(t, g, workers)
	if serial != parallel {
		t.Fatalf("figure 2 merged Perfetto export differs between 1 and %d workers (lengths %d vs %d)",
			workers, len(serial), len(parallel))
	}
	if !strings.Contains(serial, `"ph":"C"`) {
		t.Fatal("merged export carries no counter events")
	}
	for _, track := range []string{`"name":"sim.cycles","cat":"timeline"`, `"name":"l1.misses","cat":"timeline"`} {
		if !strings.Contains(serial, track) {
			t.Errorf("merged export missing counter track %s", track)
		}
	}
	// Spans survive the merge too: the plain trace stages are still there.
	if !strings.Contains(serial, `"name":"cpu.`) {
		t.Error("merged export lost the span events")
	}
}

// TestUndecomposedGeneratorsSingleJob: generators without a decomposition
// wrap Run as one job, so the whole figure set is runnable on the pool.
func TestUndecomposedGeneratorsSingleJob(t *testing.T) {
	g, ok := ByID("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	set := g.Jobs(Options{Quick: true})
	if len(set.Jobs) != 1 || set.Jobs[0].ID != "table1" {
		t.Fatalf("table1 decomposition = %d jobs (first %q)", len(set.Jobs), set.Jobs[0].ID)
	}
	results := runner.Run(runner.Config{Workers: 1}, set.Jobs)
	if results[0].Err != nil {
		t.Fatalf("table1 job failed: %v", results[0].Err)
	}
	out := set.Merge([][]*stats.Table{results[0].Tables})
	if len(out) == 0 || !strings.Contains(out[0].String(), "\t") {
		t.Fatalf("table1 via runner produced no tabular output")
	}
}
