package figures

import (
	"fmt"

	"mcsquare/internal/config"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/fleet"
	"mcsquare/internal/stats"
)

// figureResilience sweeps fault-storm intensity across the serving fleet
// with the full fault-tolerance plane on (health-checked membership,
// retries with timeouts, hedging, breakers, load shedding) and reports
// goodput, tail latency, and unavailability for the baseline and (MC)²
// mechanisms under the same seeded storm. Both mechanism columns face
// identical crash/brownout/probe-loss streams — the storm is derived from
// the schedule seed and the stable machine index, not from anything the
// mechanism does — so the delta is purely how lazy copy behaves when the
// fleet degrades around it.
//
// A run under -faults inherits that schedule's storm (and its micro
// kinds during calibration); otherwise the figure's own built-in storm
// seed applies. Either way the intensity axis scales the storm with
// faultinject.ScaleFleet, and intensity 0 is the storm-free control.

// resilienceIntensities are the swept storm multipliers: off, half,
// as-derived, and doubled.
var resilienceIntensities = []float64{0, 0.5, 1, 2}

// resilienceStormSeed feeds FleetStormFromSeed when no -faults schedule
// is bound; fixed so the committed figure is reproducible.
const resilienceStormSeed = 0x5709

const resilienceTitle = "Fleet resilience: goodput, tail latency, and availability under a seeded fault storm, baseline vs (MC)2"

func resilienceSweep() SweepSpec {
	ax := Axis{Name: "intensity"}
	for _, x := range resilienceIntensities {
		x := x
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("x%.1f", x),
			Value: x,
		})
	}
	// Cell is bound per-run by resilienceJobs (it needs the Options).
	return SweepSpec{Fig: "resilience", Axes: []Axis{ax}}
}

// resilienceFleetSpec forces a resilience-ready fleet block onto the cell
// spec: a spec without one gets the default fleet at 0.85 load with
// priority tiers (protobuf traffic is sheddable, the rest is not), and
// any spec without a Resilience block gets every mechanism enabled at
// its defaults.
func resilienceFleetSpec(spec config.MachineSpec) config.MachineSpec {
	if spec.Fleet == nil {
		fl := config.DefaultFleet()
		fl.Arrival.RateFraction = 0.85
		for i := range fl.Mix {
			if fl.Mix[i].Workload != "protobuf" {
				fl.Mix[i].Priority = 1
			}
		}
		spec.Fleet = &fl
	}
	if spec.Fleet.Resilience == nil {
		fl := *spec.Fleet
		r := config.DefaultResilience()
		fl.Resilience = &r
		spec.Fleet = &fl
	}
	return spec
}

// resilienceRow runs one intensity point: bind the scaled storm, calibrate
// both mechanisms, offer the same (baseline-derived) load to each, and
// emit one row.
func resilienceRow(o Options, spec config.MachineSpec, intensity float64) []*stats.Table {
	spec = resilienceFleetSpec(spec)

	// The storm: the ambient -faults schedule when one carries fleet
	// fields, else the figure's own seed; scaled by the intensity axis.
	// Binding a cell-local collector shadows the runner's for the whole
	// cell, so calibration (micro kinds) and simulation (fleet fields)
	// both see the scaled schedule, at any -jobs.
	sched := faultinject.AmbientCollector().Schedule()
	if !sched.FleetActive() {
		if !sched.Active() {
			// No -faults at all: the figure's own storm.
			sched = faultinject.FleetStormFromSeed(resilienceStormSeed)
		} else {
			// A micro-kinds-only schedule (hand-written JSON): derive the
			// storm from its own seed so replay-from-JSON stays exact.
			storm := faultinject.FleetStormFromSeed(sched.Seed)
			sched.CrashMeanUpCycles = storm.CrashMeanUpCycles
			sched.CrashMeanDownCycles = storm.CrashMeanDownCycles
			sched.BrownoutMeanUpCycles = storm.BrownoutMeanUpCycles
			sched.BrownoutMeanCycles = storm.BrownoutMeanCycles
			sched.BrownoutFactor = storm.BrownoutFactor
			sched.ProbeLossEvery = storm.ProbeLossEvery
		}
	}
	sched = sched.ScaleFleet(intensity)
	fcol := faultinject.NewCollector(&sched)
	release := fcol.Bind()
	defer release()

	f, err := fleet.New(spec, fleet.Options{Quick: o.Quick})
	if err != nil {
		panic(fmt.Sprintf("figures: resilience: %v", err))
	}
	base, err := f.Calibrate("baseline")
	if err != nil {
		panic(fmt.Sprintf("figures: resilience baseline calibration: %v", err))
	}
	mc2, err := f.Calibrate("mc2")
	if err != nil {
		panic(fmt.Sprintf("figures: resilience mc2 calibration: %v", err))
	}
	rate := f.OfferedReqPerCycle(base)
	rb := f.Simulate(base, rate)
	rl := f.Simulate(mc2, rate)

	tb := stats.NewTable(resilienceTitle,
		"intensity", "offered_kops",
		"base_goodput_kops", "base_p99_ms", "base_unavail", "base_timeouts", "base_retries",
		"mc2_goodput_kops", "mc2_p99_ms", "mc2_unavail", "mc2_timeouts", "mc2_retries")
	tb.AddRow(intensity, rb.OfferedKOps(),
		rb.GoodputKOps(), rb.PercentileMs(99), rb.Unavailability(), rb.Resilience.TimedOut, rb.Resilience.Retries,
		rl.GoodputKOps(), rl.PercentileMs(99), rl.Unavailability(), rl.Resilience.TimedOut, rl.Resilience.Retries)
	return tables(tb)
}

// resilienceJobs lowers the sweep with the options bound into each cell.
func resilienceJobs(o Options) JobSet {
	sw := resilienceSweep()
	sw.Cell = func(spec config.MachineSpec, pt []Point) []*stats.Table {
		return resilienceRow(o, spec, pt[0].Value.(float64))
	}
	return sw.Compile(o.spec())
}

// FigureResilience is the serial form (identical to the decomposed run).
func FigureResilience(o Options) []*stats.Table {
	return runJobSet(o, resilienceJobs(o))
}

func init() {
	extra = append(extra, Generator{
		ID:    "resilience",
		Title: "Fleet fault tolerance: availability under a seeded storm with and without (MC)2",
		Run:   FigureResilience,
		jobs:  resilienceJobs,
	})
}
