package figures

import (
	"fmt"

	"mcsquare/internal/runner"
	"mcsquare/internal/stats"
)

// This file is the bridge between figure generators and the parallel
// experiment runner (internal/runner): a figure decomposes into a JobSet —
// independently runnable jobs plus a deterministic merge — and its Run is
// defined as the serial execution of that same JobSet, so pooled and serial
// runs are byte-identical by construction.

// JobSet is a figure decomposed into independent jobs plus a deterministic
// merge. Merge receives exactly one []*stats.Table per job, in job order,
// and must depend only on those parts (never on completion order).
type JobSet struct {
	Jobs  []runner.Job
	Merge func(parts [][]*stats.Table) []*stats.Table
}

// Jobs decomposes the generator under o. Sweep generators enumerate one
// job per datapoint (or row); generators without a decomposition become a
// single job named after the figure.
func (g Generator) Jobs(o Options) JobSet {
	if g.jobs != nil {
		return g.jobs(o)
	}
	run := g.Run
	return JobSet{
		Jobs:  []runner.Job{job(g.ID, func() []*stats.Table { return run(o) })},
		Merge: func(parts [][]*stats.Table) []*stats.Table { return parts[0] },
	}
}

// runJobSet executes a JobSet serially in submission order. Decomposed
// generators implement their Run with it, which is what guarantees that a
// worker pool emitting parts in submission order reproduces Run exactly.
func runJobSet(o Options, js JobSet) []*stats.Table {
	parts := make([][]*stats.Table, len(js.Jobs))
	for i, j := range js.Jobs {
		parts[i] = j.Run(runner.Options{Quick: o.Quick})
	}
	return js.Merge(parts)
}

// job wraps a bound closure as a runner.Job. Figure jobs are specialized at
// decomposition time, so the runner-supplied options are intentionally
// ignored.
func job(id string, fn func() []*stats.Table) runner.Job {
	return runner.Job{ID: id, Run: func(runner.Options) []*stats.Table { return fn() }}
}

// tables is sugar for single-table jobs.
func tables(tb ...*stats.Table) []*stats.Table { return tb }

// concatParts merges single-table parts into one table carrying the first
// part's title and columns. Parts must all share that header (each row job
// emits the canonical header plus its own rows).
func concatParts(parts [][]*stats.Table) []*stats.Table {
	first := parts[0][0]
	out := stats.NewTable(first.Title, first.Columns...)
	for _, p := range parts {
		// Cells are authored in code and emit the canonical header; a width
		// mismatch is a programming error, surfaced with its structured
		// detail rather than silently truncating the merged figure.
		if err := out.AppendRows(p[0]); err != nil {
			panic(fmt.Sprintf("figures: merge: %v", err))
		}
	}
	return tables(out)
}

// concatGroups splits parts into consecutive groups of the given sizes and
// concatenates each group into its own table (multi-table figures whose
// tables are each a sweep).
func concatGroups(parts [][]*stats.Table, sizes ...int) []*stats.Table {
	var out []*stats.Table
	i := 0
	for _, n := range sizes {
		out = append(out, concatParts(parts[i:i+n])...)
		i += n
	}
	return out
}
