//go:build race

package figures

// raceEnabled reports whether the race detector is compiled in. The heavy
// sweep tests run whole quick-mode figures; under the detector's ~10x
// slowdown they blow the package's test timeout on small machines, so they
// defer to the plain run and the race build keeps the concurrency-focused
// tests.
const raceEnabled = true
