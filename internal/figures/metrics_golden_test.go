package figures

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcsquare/internal/copykit"
	"mcsquare/internal/metrics"
	"mcsquare/internal/oskern"
	"mcsquare/internal/workloads/protobuf"
	"mcsquare/internal/zio"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// TestMachineMetricsGolden pins the metric names AND values of one small
// deterministic figure cell (the quick Protobuf/(MC)² run every figure-14
// and figure-20 datapoint is built from), so namespace renames and
// accounting changes are deliberate: run `go test ./internal/figures
// -run Golden -update` after an intentional change.
func TestMachineMetricsGolden(t *testing.T) {
	m := protobuf.NewMachine(true, nil)
	// Register the OS-level components too, so their namespaces (oskern,
	// zio) are part of the pinned name set even though this cell only
	// drives the lazy copier through them implicitly.
	z := zio.New(oskern.New(m))
	_ = z
	protobuf.Run(m, Options{Quick: true}.protoCfg(copykit.Lazy{Threshold: 1024}))

	snap := m.Metrics.Snapshot()
	var b strings.Builder
	for _, name := range snap.Names() {
		v := snap.Values[name]
		switch v.Kind {
		case metrics.KindCounter:
			fmt.Fprintf(&b, "%s counter %d\n", name, v.Count)
		case metrics.KindGauge:
			fmt.Fprintf(&b, "%s gauge %g\n", name, v.Value)
		case metrics.KindHistogram:
			fmt.Fprintf(&b, "%s histogram n=%d sum=%g\n", name, v.Count, v.Value)
		}
	}
	got := b.String()

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d metrics)", golden, len(snap.Values))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("metrics diverge from %s (rerun with -update if intentional):\n%s",
			golden, diffLines(string(want), got))
	}
}

// diffLines renders a minimal line diff, enough to spot the renamed or
// re-valued metric without a dependency.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	seen := make(map[string]bool, len(w))
	for _, l := range w {
		seen[l] = true
	}
	inGot := make(map[string]bool, len(g))
	for _, l := range g {
		inGot[l] = true
		if !seen[l] && l != "" {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range w {
		if !inGot[l] && l != "" {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	return b.String()
}
