package figures

import (
	"fmt"
	"strings"

	"mcsquare/internal/config"
	"mcsquare/internal/copykit"
	"mcsquare/internal/machine"
	"mcsquare/internal/runner"
	"mcsquare/internal/stats"
)

// This file is the declarative form of a figure sweep. Where figures.go
// once enumerated bespoke job lists, a SweepSpec states the sweep as data:
// a base machine spec (the Options' -config spec), axes of labelled
// points — each optionally overriding spec parameters (config.Overrides)
// and/or carrying a workload-level value — and one Cell function that runs
// a single point of the cartesian product. Compile() lowers the
// declaration onto the existing JobSet machinery, one job per cell in
// row-major axis order, so sweep figures inherit the runner's parallelism
// and its byte-identical merge guarantee unchanged.

// SweepSpec declares one figure as a sweep over spec overrides.
type SweepSpec struct {
	// Fig prefixes job IDs ("16/t8/f0.25").
	Fig string
	// Axes are swept row-major: the last axis varies fastest.
	Axes []Axis
	// Cell runs one point. spec is the base spec with every point's
	// overrides applied; pt holds one point per axis for workload-level
	// values.
	Cell func(spec config.MachineSpec, pt []Point) []*stats.Table
	// Merge assembles the cells, which arrive in row-major sweep order.
	// nil concatenates single-table cells under the first cell's header.
	Merge func(sw SweepSpec, parts [][]*stats.Table) []*stats.Table
}

// Axis is one sweep dimension.
type Axis struct {
	Name   string
	Points []Point
}

// Point is one labelled position on an axis.
type Point struct {
	// Label names the point in job IDs.
	Label string
	// Set is applied to the cell's machine spec, in axis order.
	Set config.Overrides
	// Value carries a workload-level parameter (update fraction, thread
	// count) for the Cell to consume; sweeps over pure spec overrides
	// leave it nil.
	Value interface{}
}

// Size returns the number of cells in the sweep.
func (sw SweepSpec) Size() int {
	n := 1
	for _, ax := range sw.Axes {
		n *= len(ax.Points)
	}
	return n
}

// Compile lowers the sweep onto the JobSet machinery under the given base
// spec. Override application errors panic: axes are authored in code, so a
// bad path is a programming error, caught by the figure tests.
func (sw SweepSpec) Compile(base config.MachineSpec) JobSet {
	cells := cartesian(sw.Axes)
	jobs := make([]runner.Job, len(cells))
	for i, cell := range cells {
		cell := cell
		spec := base
		labels := make([]string, len(cell))
		for j, pt := range cell {
			labels[j] = pt.Label
			if err := spec.Apply(pt.Set); err != nil {
				panic(fmt.Sprintf("figures: sweep %s point %s: %v", sw.Fig, pt.Label, err))
			}
		}
		jobs[i] = job(sw.Fig+"/"+strings.Join(labels, "/"), func() []*stats.Table {
			return sw.Cell(spec, cell)
		})
	}
	merge := func(parts [][]*stats.Table) []*stats.Table {
		if sw.Merge != nil {
			return sw.Merge(sw, parts)
		}
		return concatParts(parts)
	}
	return JobSet{Jobs: jobs, Merge: merge}
}

// cartesian enumerates the axes' cartesian product row-major (last axis
// fastest), one []Point per cell with one entry per axis.
func cartesian(axes []Axis) [][]Point {
	cells := [][]Point{{}}
	for _, ax := range axes {
		var next [][]Point
		for _, prefix := range cells {
			for _, pt := range ax.Points {
				cell := make([]Point, len(prefix), len(prefix)+1)
				copy(cell, prefix)
				next = append(next, append(cell, pt))
			}
		}
		cells = next
	}
	return cells
}

// groupByLeadingAxis merges cells into one table per point of the first
// axis, concatenating the trailing axes' cells within each group — the
// standard merge for "one table per thread count"-shaped figures.
func groupByLeadingAxis(sw SweepSpec, parts [][]*stats.Table) []*stats.Table {
	group := len(parts) / len(sw.Axes[0].Points)
	sizes := make([]int, len(sw.Axes[0].Points))
	for i := range sizes {
		sizes[i] = group
	}
	return concatGroups(parts, sizes...)
}

// specParams lowers a spec under the named mechanism. Sweep cells compare
// mechanisms within one machine shape, so the mechanism axis is applied
// here rather than in the spec document.
func specParams(spec config.MachineSpec, mech string) machine.Params {
	spec.Mechanism.Name = mech
	return spec.MustParams()
}

// specCopier builds the named mechanism for a machine lowered from the
// same spec, through the registry.
func specCopier(spec config.MachineSpec, mech string, m *machine.Machine) copykit.Copier {
	spec.Mechanism.Name = mech
	cp, err := config.BuildCopier(&spec, m)
	if err != nil {
		panic(fmt.Sprintf("figures: mechanism %s: %v", mech, err))
	}
	return cp
}
