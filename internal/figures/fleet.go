package figures

import (
	"fmt"

	"mcsquare/internal/config"
	"mcsquare/internal/fleet"
	"mcsquare/internal/stats"
)

// figureFleet sweeps offered load across a simulated serving fleet and
// reports the throughput-vs-tail-latency curve for the baseline and (MC)²
// mechanisms. Each cell calibrates per-machine service-time distributions
// with the real simulator (per-request latency histograms of the mix's
// workload families), then drives the calibrated fleet open-loop at a
// fraction of the baseline-calibrated capacity — both mechanism columns
// face the same offered load, so the curves are directly comparable.
//
// The sweep rides the standard machinery: one job per load point, merged
// in submission order, byte-identical at any -jobs and under a replayed
// -faults schedule (fault-plane identity is pinned to the stable fleet
// machine index).

// fleetLoadPoints are the swept fractions of baseline capacity; the tail
// point runs past saturation so the curves show the knee.
var fleetLoadPoints = []float64{0.3, 0.5, 0.7, 0.85, 0.95, 1.05}

const fleetTitle = "Fleet serving: offered load vs goodput and latency SLOs, baseline vs (MC)2"

func fleetSweep() SweepSpec {
	ax := Axis{Name: "load"}
	for _, frac := range fleetLoadPoints {
		frac := frac
		ax.Points = append(ax.Points, Point{
			Label: fmt.Sprintf("l%.2f", frac),
			Set:   config.Overrides{{Path: "Fleet.Arrival.RateFraction", Value: frac}},
			Value: frac,
		})
	}
	// Cell is bound per-run by fleetJobs (it needs the Options).
	return SweepSpec{Fig: "fleet", Axes: []Axis{ax}}
}

// fleetRow runs one operating point: calibrate both mechanisms, offer the
// same (baseline-derived) load to each, and emit one row. o supplies quick
// mode; spec carries the load-point override.
func fleetRow(o Options, spec config.MachineSpec, frac float64) []*stats.Table {
	f, err := fleet.New(spec, fleet.Options{Quick: o.Quick})
	if err != nil {
		panic(fmt.Sprintf("figures: fleet: %v", err))
	}
	base, err := f.Calibrate("baseline")
	if err != nil {
		panic(fmt.Sprintf("figures: fleet baseline calibration: %v", err))
	}
	mc2, err := f.Calibrate("mc2")
	if err != nil {
		panic(fmt.Sprintf("figures: fleet mc2 calibration: %v", err))
	}
	rate := f.OfferedReqPerCycle(base)
	rb := f.Simulate(base, rate)
	rl := f.Simulate(mc2, rate)

	tb := stats.NewTable(fleetTitle,
		"load", "offered_kops",
		"base_goodput_kops", "base_p50_ms", "base_p99_ms", "base_p999_ms", "base_drops",
		"mc2_goodput_kops", "mc2_p50_ms", "mc2_p99_ms", "mc2_p999_ms", "mc2_drops")
	tb.AddRow(frac, rb.OfferedKOps(),
		rb.GoodputKOps(), rb.PercentileMs(50), rb.PercentileMs(99), rb.PercentileMs(99.9), rb.Dropped,
		rl.GoodputKOps(), rl.PercentileMs(50), rl.PercentileMs(99), rl.PercentileMs(99.9), rl.Dropped)
	return tables(tb)
}

// fleetJobs lowers the sweep with the options bound into each cell.
func fleetJobs(o Options) JobSet {
	sw := fleetSweep()
	sw.Cell = func(spec config.MachineSpec, pt []Point) []*stats.Table {
		return fleetRow(o, spec, pt[0].Value.(float64))
	}
	return sw.Compile(o.spec())
}

// FigureFleet is the serial form (identical to the decomposed jobs run).
func FigureFleet(o Options) []*stats.Table {
	return runJobSet(o, fleetJobs(o))
}

func init() {
	extra = append(extra, Generator{
		ID:    "fleet",
		Title: "Fleet-scale serving: throughput vs p99 under (MC)2 (offered-load sweep)",
		Run:   FigureFleet,
		jobs:  fleetJobs,
	})
}
