package figures

import (
	"strconv"
	"strings"
	"testing"
)

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestAllGeneratorsProduceTables runs the faster generators end to end in
// quick mode and sanity-checks the output structure. The heavyweight
// sweeps (16, 17, 20, 22) have their own focused tests below.

// skipHeavyUnderRace defers whole-figure sweep tests to the non-race run:
// under the race detector's ~10x slowdown they exceed the package test
// timeout on small machines, and they exercise no concurrency anyway (the
// race build instead runs the worker-pool determinism tests).
func skipHeavyUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("heavy figure sweep: covered by the non-race run")
	}
}

func TestAllGeneratorsProduceTables(t *testing.T) {
	skipHeavyUnderRace(t)
	skip := map[string]bool{"16": true, "17": true, "20": true, "22": true,
		"10": true, "11": true, "12": true, "13": true, "21": true} // covered in micro tests
	o := Options{Quick: true}
	for _, g := range All() {
		if skip[g.ID] {
			continue
		}
		g := g
		t.Run("fig"+g.ID, func(t *testing.T) {
			tables := g.Run(o)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.NumRows() == 0 {
					t.Fatalf("%s: empty table", tb.Title)
				}
				out := tb.String()
				if !strings.Contains(out, "\t") {
					t.Fatalf("%s: not tab separated", tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("14"); !ok {
		t.Fatal("figure 14 missing")
	}
	if _, ok := ByID("999"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestFigure2Fractions(t *testing.T) {
	tb := Figure2(Options{Quick: true})[0]
	for _, row := range tb.Rows() {
		f := parse(t, row[1])
		if f <= 0 || f > 1 {
			t.Errorf("%s: copy overhead %v outside (0,1]", row[0], f)
		}
	}
	// fork+COW copy share must be the largest of the set (paper: up to 68%
	// for 4K, 99% for huge pages).
	rows := tb.Rows()
	cow := parse(t, rows[len(rows)-1][1])
	if cow < 0.3 {
		t.Errorf("COW fault copy share %.2f; expected dominant", cow)
	}
}

func TestFigure14Ordering(t *testing.T) {
	tb := Figure14(Options{Quick: true})[0]
	rows := tb.Rows()
	base := parse(t, rows[0][1])
	zio := parse(t, rows[1][1])
	mc2 := parse(t, rows[2][1])
	if mc2 >= base {
		t.Errorf("mc2 (%v ms) not faster than baseline (%v ms)", mc2, base)
	}
	// zIO gets no elision on sub-page copies: roughly baseline runtime.
	if zio < base*0.9 {
		t.Errorf("zio (%v ms) suspiciously fast vs baseline (%v ms)", zio, base)
	}
}

func TestFigure16Sweep(t *testing.T) {
	skipHeavyUnderRace(t)
	tables := Figure16(Options{Quick: true})
	if len(tables) != 2 {
		t.Fatalf("want 2 tables (1 and 8 threads), got %d", len(tables))
	}
	oneT := tables[0].Rows()
	// Low fraction: mc2 wins; 100%: advantage gone or reversed (1 thread).
	lowBase, lowMC2 := parse(t, oneT[0][1]), parse(t, oneT[0][2])
	hiBase, hiMC2 := parse(t, oneT[len(oneT)-1][1]), parse(t, oneT[len(oneT)-1][2])
	if lowMC2 <= lowBase {
		t.Errorf("6.25%%: mc2 (%v) should beat baseline (%v)", lowMC2, lowBase)
	}
	if hiMC2/hiBase >= lowMC2/lowBase {
		t.Errorf("advantage should shrink with fraction: %v -> %v", lowMC2/lowBase, hiMC2/hiBase)
	}
}

func TestFigure20Sweep(t *testing.T) {
	skipHeavyUnderRace(t)
	tables := Figure20(Options{Quick: true})
	if len(tables) != 2 {
		t.Fatalf("want runtime + stalls tables, got %d", len(tables))
	}
	stalls := tables[1]
	var maxSmall, maxLarge float64
	rows := stalls.Rows()
	for i, row := range rows {
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if i == 0 && v > maxSmall {
				maxSmall = v
			}
			if i == len(rows)-1 && v > maxLarge {
				maxLarge = v
			}
		}
	}
	// The smallest CTT must stall at least as much as the largest.
	if maxSmall < maxLarge {
		t.Errorf("small CTT stalls (%v) below large CTT stalls (%v)", maxSmall, maxLarge)
	}
}

func TestFigure22Sweep(t *testing.T) {
	skipHeavyUnderRace(t)
	tb := Figure22(Options{Quick: true})[0]
	rows := tb.Rows()
	last := rows[len(rows)-1] // 8 threads
	free1 := parse(t, last[1])
	free8 := parse(t, last[len(last)-1])
	t.Logf("8 threads: free1=%.2f free8=%.2f", free1, free8)
	if free8 < free1 {
		t.Errorf("8 threads: parallel freeing (%v) should not lose to serial (%v)", free8, free1)
	}
}

func TestAblations(t *testing.T) {
	skipHeavyUnderRace(t)
	tables := Ablations(Options{Quick: true})
	if len(tables) != 3 {
		t.Fatalf("want 3 ablation tables, got %d", len(tables))
	}
	// Merge ablation: disabling merges must raise the CTT high-water mark.
	merge := tables[0].Rows()
	onHW, offHW := parse(t, merge[0][2]), parse(t, merge[1][2])
	if offHW <= onHW {
		t.Errorf("merge-off high water (%v) should exceed merge-on (%v)", offHW, onHW)
	}
	// Ranged sweep must beat per-line CLWBs for the big copy.
	flush := tables[2].Rows()
	sweep, clwb := parse(t, flush[0][1]), parse(t, flush[1][1])
	if sweep >= clwb {
		t.Errorf("instruction sweep (%v) should beat per-line CLWBs (%v)", sweep, clwb)
	}
}

func TestPollution(t *testing.T) {
	tb := Pollution(Options{Quick: true})[0]
	rows := tb.Rows()
	eager, lazy := parse(t, rows[0][1]), parse(t, rows[1][1])
	// §III-F: (MC)² avoids cache pollution — the warm working set must
	// survive a lazy copy far better than an eager one.
	if lazy >= eager {
		t.Errorf("lazy copy polluted as much as eager: %v vs %v misses", lazy, eager)
	}
}

func TestScaling(t *testing.T) {
	skipHeavyUnderRace(t)
	tables := Scaling(Options{Quick: true})
	if len(tables) != 2 {
		t.Fatalf("want 2 scaling tables, got %d", len(tables))
	}
	// More channels must never reduce throughput.
	ch := tables[0].Rows()
	if parse(t, ch[len(ch)-1][2]) < parse(t, ch[0][2]) {
		t.Errorf("mc2 throughput fell with more channels: %v -> %v", ch[0][2], ch[len(ch)-1][2])
	}
	// A starved interconnect must reduce throughput, and it erodes (MC)²'s
	// advantage faster than the baseline's: in this cache-resident regime
	// the baseline copies entirely inside the L2, while (MC)²'s destination
	// invalidation turns later accesses into link crossings (the §III-F
	// "cached source buffers may harm performance" caveat, observed for the
	// interconnect).
	x := tables[1].Rows()
	unboundedBase, unboundedMC2 := parse(t, x[0][1]), parse(t, x[0][2])
	starvedBase, starvedMC2 := parse(t, x[len(x)-1][1]), parse(t, x[len(x)-1][2])
	if starvedMC2 >= unboundedMC2 {
		t.Errorf("mc2 unaffected by interconnect starvation: %v vs %v", starvedMC2, unboundedMC2)
	}
	if starvedBase >= unboundedBase {
		t.Errorf("baseline unaffected by interconnect starvation: %v vs %v", starvedBase, unboundedBase)
	}
	// Which mechanism suffers more is regime-dependent (cache-resident
	// tables favor the baseline); the table records both series.
}
