//go:build !race

package figures

const raceEnabled = false
