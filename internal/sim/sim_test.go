package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same cycle: FIFO by seq
	e.At(20, func() { order = append(order, 4) })
	e.Drain()
	want := []int{1, 2, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.After(5, func() {
		e.After(7, func() { at = e.Now() })
	})
	e.Drain()
	if at != 12 {
		t.Fatalf("nested After fired at %d, want 12", at)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(5, func() { fired++ })
	e.At(15, func() { fired++ })
	e.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// A bounded run simulates exactly limit cycles: time advances to the
	// limit even though an event (at 15) is still pending beyond it, so
	// sim.cycles does not under-report on bounded runs.
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10 (bounded run advances to limit)", e.Now())
	}
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %d, want 20", e.Now())
	}
}

func TestEngineRunUntilAdvancesIdleTime(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100 (idle advance)", e.Now())
	}
}

func TestProcWait(t *testing.T) {
	e := NewEngine()
	var stamps []Cycle
	e.Go("w", func(p *Proc) {
		stamps = append(stamps, p.Now())
		p.Wait(10)
		stamps = append(stamps, p.Now())
		p.Wait(5)
		stamps = append(stamps, p.Now())
	})
	e.Drain()
	want := []Cycle{0, 10, 15}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestProcInterleavingDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var log []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Wait(2)
				}
			})
		}
		e.Drain()
		return log
	}
	first := run()
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: non-deterministic interleaving %v vs %v", trial, got, first)
			}
		}
	}
}

func TestProcSuspendResume(t *testing.T) {
	e := NewEngine()
	var doneAt Cycle
	var p *Proc
	p = e.Go("s", func(p *Proc) {
		p.Suspend()
		doneAt = p.Now()
	})
	e.At(42, func() { p.Resume() })
	e.Drain()
	if doneAt != 42 {
		t.Fatalf("resumed at %d, want 42", doneAt)
	}
	if !p.Finished() {
		t.Fatal("process not finished")
	}
}

func TestProcWaitUntilPastIsNoop(t *testing.T) {
	e := NewEngine()
	var ok bool
	e.Go("u", func(p *Proc) {
		p.Wait(10)
		p.WaitUntil(5) // in the past: no-op
		ok = p.Now() == 10
	})
	e.Drain()
	if !ok {
		t.Fatal("WaitUntil in the past advanced time")
	}
}

func TestDrainPanicsOnDeadlock(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) { p.Suspend() })
	defer func() {
		if recover() == nil {
			t.Fatal("Drain with blocked process did not panic")
		}
	}()
	e.Drain()
}

// Property: for any set of delays, processes always observe monotonically
// nondecreasing time, and the final engine time equals the max completion.
func TestProcTimeMonotonicQuick(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) > 50 {
			delays = delays[:50]
		}
		e := NewEngine()
		var max Cycle
		ok := true
		e.Go("q", func(p *Proc) {
			prev := p.Now()
			for _, d := range delays {
				p.Wait(Cycle(d))
				if p.Now() < prev {
					ok = false
				}
				prev = p.Now()
			}
			max = p.Now()
		})
		e.Drain()
		var sum Cycle
		for _, d := range delays {
			sum += Cycle(d)
		}
		return ok && max == sum && e.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
