package sim

// FnQueue is an allocation-friendly FIFO of callbacks, for the waiter
// queues every back-pressured component keeps (RPQ/WPQ slots, MSHR
// overflow, BPQ slots). Pop advances a head index instead of reslicing,
// and the backing array is reused once drained, so steady-state waiter
// churn stops regrowing the slice — the old `q = q[1:]` idiom leaked
// capacity forward and reallocated on every refill.
//
// The zero value is an empty queue.
type FnQueue struct {
	fns  []func()
	head int
}

// Len reports the number of queued callbacks.
func (q *FnQueue) Len() int { return len(q.fns) - q.head }

// Push appends fn.
func (q *FnQueue) Push(fn func()) { q.fns = append(q.fns, fn) }

// Pop removes and returns the oldest callback. It panics on an empty
// queue (callers always gate on Len, mirroring the slice idiom).
func (q *FnQueue) Pop() func() {
	fn := q.fns[q.head]
	q.fns[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.fns) {
		q.fns = q.fns[:0]
		q.head = 0
	}
	return fn
}
