// Package sim provides a deterministic discrete-event simulation engine
// with cooperative processes.
//
// The engine maintains a priority queue of events keyed by (cycle, sequence
// number). Exactly one entity — the engine's event loop or a single process
// goroutine — runs at any moment, so simulations are fully reproducible:
// the same inputs always produce the same event ordering and timings.
package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
)

// totalCycles accumulates simulated cycles across every engine in the
// process, backing the SimulatedCycles compatibility shim. Engines flush
// their progress when they finish running (Drain, RunUntil), so the
// counter is cheap to maintain and safe to read from other goroutines.
var totalCycles atomic.Uint64

// SimulatedCycles returns the total simulated cycles executed by all
// engines so far. It is a compatibility shim for coarse progress
// reporting only: per-engine counts are published as the "sim.cycles"
// metric in each machine's metrics registry, which is what the
// experiment runner sums for exact per-job attribution.
func SimulatedCycles() uint64 { return totalCycles.Load() }

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// event is a scheduled callback. Events with equal cycles fire in the order
// they were scheduled (seq breaks ties), which keeps the simulation
// deterministic.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now      Cycle
	seq      uint64
	events   eventHeap
	procs    []*Proc // live processes, for deadlock diagnostics
	reported Cycle   // cycles already flushed into totalCycles
}

// NewEngine returns an engine with simulated time at cycle 0.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it indicates a component computed a completion time before "now",
// which is always a modeling bug.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, before now (%d)", when, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.At(e.now+delay, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the next event, advancing simulated time to its cycle. It
// reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	ev.fn()
	return true
}

// RunUntil runs events until the queue is empty or the next event is later
// than the given cycle; simulated time ends at min(limit, last event).
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.events) > 0 && e.events[0].when <= limit {
		e.Step()
	}
	if e.now < limit && len(e.events) == 0 {
		e.now = limit
	}
	e.flushCycles()
}

// Drain runs events until none remain. If a process is still blocked when
// the queue empties, Drain panics: the simulation has deadlocked.
func (e *Engine) Drain() {
	for e.Step() {
	}
	e.flushCycles()
	for _, p := range e.procs {
		if !p.finished {
			panic("sim: Drain with blocked process(es): " + p.name)
		}
	}
}

// flushCycles publishes this engine's progress into the process-wide
// counter. Idempotent: only the cycles since the last flush are added.
func (e *Engine) flushCycles() {
	if e.now > e.reported {
		totalCycles.Add(uint64(e.now - e.reported))
		e.reported = e.now
	}
}
