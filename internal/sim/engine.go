// Package sim provides a deterministic discrete-event simulation engine
// with cooperative processes.
//
// The engine maintains a priority queue of events keyed by (cycle, sequence
// number). Exactly one entity — the engine's event loop or a single process
// goroutine — runs at any moment, so simulations are fully reproducible:
// the same inputs always produce the same event ordering and timings.
//
// The queue is split for speed: a monomorphic binary heap holds future
// events, and a plain FIFO holds events scheduled for the current cycle —
// the very common After(0, …) pattern (process wakeups, controller queue
// handoffs, hook completions) therefore skips heap churn entirely. Both
// structures order events by the same (cycle, seq) key, so the split is
// invisible: dispatch order is byte-identical to a single heap.
package sim

import (
	"fmt"
	"sync/atomic"
)

// totalCycles accumulates simulated cycles across every engine in the
// process, backing the SimulatedCycles compatibility shim. Engines flush
// their progress when they finish running (Drain, RunUntil, Close) and on
// a cheap cadence from Step, so the counter stays fresh even for callers
// driving the engine with bare Step() loops.
var totalCycles atomic.Uint64

// totalEvents accumulates executed events across every engine, for
// throughput reporting (events/sec) in the benchmark harness.
var totalEvents atomic.Uint64

// SimulatedCycles returns the total simulated cycles executed by all
// engines so far. It is a compatibility shim for coarse progress
// reporting only: per-engine counts are published as the "sim.cycles"
// metric in each machine's metrics registry, which is what the
// experiment runner sums for exact per-job attribution.
func SimulatedCycles() uint64 { return totalCycles.Load() }

// SimulatedEvents returns the total events executed by all engines so
// far. Like SimulatedCycles it is a process-wide aggregate for coarse
// throughput reporting (internal/bench), flushed on the same cadence.
func SimulatedEvents() uint64 { return totalEvents.Load() }

// cycleFlushPeriod is how far simulated time may advance before Step
// flushes the process-wide counters. One comparison per time-advancing
// event buys bounded staleness for Step-driven loops.
const cycleFlushPeriod = 1 << 12

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// event is a scheduled callback. Events with equal cycles fire in the order
// they were scheduled (seq breaks ties), which keeps the simulation
// deterministic.
type event struct {
	when Cycle
	seq  uint64
	fn   func()
}

// before reports whether a orders ahead of b. (when, seq) pairs are
// unique: seq is a per-engine monotone counter.
func (a *event) before(b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now Cycle
	seq uint64

	// heap holds events strictly ordered after the current cycle's FIFO
	// tail at insert time: At routes when == now to fifo, everything later
	// here. It is a plain binary min-heap on (when, seq) with inlined
	// sift operations — no interfaces, no boxing.
	heap []event
	// fifo holds events scheduled for the current cycle, in seq order by
	// construction (seq is monotone and only At(now) appends). fifoHead
	// avoids reslicing on pop; the backing array is reused once drained.
	fifo     []event
	fifoHead int

	procs    []*Proc // live processes, for deadlock diagnostics and Close
	limit    Cycle   // cycle budget; Step panics past it (0 = unlimited)
	closed   bool
	reported Cycle  // cycles already flushed into totalCycles
	executed uint64 // events run by this engine
	repEv    uint64 // events already flushed into totalEvents

	// advance, when set, fires whenever simulated time moves from `from`
	// to `to` (from < to), before the event at `to` runs. At that instant
	// every event scheduled at or before `from` has executed and no event
	// exists in (from, to), so an observer sampling at boundaries inside
	// (from, to] sees a state determined solely by the event history —
	// the timeline plane's determinism rests on this. Disabled cost: one
	// nil check per time-advancing event.
	advance func(from, to Cycle)
}

// NewEngine returns an engine with simulated time at cycle 0. If an
// engine Tracker is bound to the calling goroutine (see Tracker), the
// engine registers itself for end-of-job cleanup.
func NewEngine() *Engine {
	e := &Engine{}
	if t := ambientTracker(); t != nil {
		t.add(e)
	}
	return e
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// CycleLimitError is the panic value raised by Step when simulated time
// passes the engine's cycle limit (SetCycleLimit, or a Tracker budget). It
// converts livelocked or runaway simulations into a structured failure the
// job runner can report instead of hanging forever.
type CycleLimitError struct {
	Limit Cycle // the configured budget
	Now   Cycle // the cycle that exceeded it
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("sim: cycle budget exceeded (limit %d, reached %d)", e.Limit, e.Now)
}

// SetCycleLimit installs a cycle budget: once simulated time advances past
// limit, Step panics with *CycleLimitError. 0 removes the budget. The check
// costs one comparison per time-advancing event; same-cycle events are
// unaffected (time does not move).
func (e *Engine) SetCycleLimit(limit Cycle) { e.limit = limit }

// At schedules fn to run at the given absolute cycle. Scheduling in the past
// panics: it indicates a component computed a completion time before "now",
// which is always a modeling bug. On a closed engine At is a no-op (events
// cannot run again), so teardown paths of released processes stay safe.
func (e *Engine) At(when Cycle, fn func()) {
	if e.closed {
		return
	}
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, before now (%d)", when, e.now))
	}
	e.seq++
	if when == e.now {
		e.fifo = append(e.fifo, event{when: when, seq: e.seq, fn: fn})
		return
	}
	e.push(event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.At(e.now+delay, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) + len(e.fifo) - e.fifoHead }

// Executed reports the number of events this engine has run.
func (e *Engine) Executed() uint64 { return e.executed }

// Step runs the next event, advancing simulated time to its cycle. It
// reports whether an event was run.
func (e *Engine) Step() bool {
	// Same-cycle fast path. A heap event can still be due first: it was
	// scheduled for this cycle before time advanced here, so its seq is
	// smaller. fifo[fifoHead] has the smallest seq in the FIFO, so one
	// (when, seq) comparison against the heap root decides.
	if e.fifoHead < len(e.fifo) {
		ev := &e.fifo[e.fifoHead]
		if len(e.heap) == 0 || e.heap[0].when > e.now || e.heap[0].seq > ev.seq {
			fn := ev.fn
			ev.fn = nil
			e.fifoHead++
			if e.fifoHead == len(e.fifo) {
				e.fifo = e.fifo[:0]
				e.fifoHead = 0
			}
			e.executed++
			fn()
			return true
		}
	}
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	prev := e.now
	e.now = ev.when
	if e.limit != 0 && e.now > e.limit {
		e.flushCycles()
		panic(&CycleLimitError{Limit: e.limit, Now: e.now})
	}
	e.executed++
	if e.now-e.reported >= cycleFlushPeriod {
		e.flushCycles()
	}
	if e.advance != nil && e.now > prev {
		e.advance(prev, e.now)
	}
	ev.fn()
	return true
}

// OnAdvance installs fn to be called whenever simulated time advances from
// one cycle to a later one — after all events at the old cycle have run
// and before any event at the new cycle does. nil uninstalls. Only one
// hook is supported; installing over an existing hook panics, because a
// silently dropped observer would corrupt whatever it was recording.
func (e *Engine) OnAdvance(fn func(from, to Cycle)) {
	if fn != nil && e.advance != nil {
		panic("sim: OnAdvance hook already installed")
	}
	e.advance = fn
}

// push inserts ev into the heap (sift-up with a hole, no boxing).
func (e *Engine) push(ev event) {
	h := append(e.heap, event{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].before(&ev) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

// pop removes and returns the heap minimum (sift-down with a hole).
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n].fn = nil // release the closure for GC
	e.heap = h[:n]
	if n > 0 {
		h = h[:n]
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && h[r].before(&h[c]) {
				c = r
			}
			if last.before(&h[c]) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = last
	}
	return top
}

// nextWhen returns the cycle of the next due event, if any.
func (e *Engine) nextWhen() (Cycle, bool) {
	if e.fifoHead < len(e.fifo) {
		return e.now, true
	}
	if len(e.heap) > 0 {
		return e.heap[0].when, true
	}
	return 0, false
}

// RunUntil runs events up to and including the given cycle, then advances
// simulated time to limit even when later events remain pending — a
// bounded run simulates exactly limit-Now() cycles, so "sim.cycles" does
// not under-report on runs that stop mid-queue.
func (e *Engine) RunUntil(limit Cycle) {
	for {
		when, ok := e.nextWhen()
		if !ok || when > limit {
			break
		}
		e.Step()
	}
	if e.now < limit {
		prev := e.now
		e.now = limit
		if e.advance != nil {
			e.advance(prev, limit)
		}
	}
	e.flushCycles()
}

// Drain runs events until none remain. If a process is still blocked when
// the queue empties, Drain panics: the simulation has deadlocked.
func (e *Engine) Drain() {
	for e.Step() {
	}
	e.flushCycles()
	for _, p := range e.procs {
		if !p.finished {
			panic("sim: Drain with blocked process(es): " + p.name)
		}
	}
}

// Close releases every parked process goroutine and drops all pending
// events. Abandoned engines (bounded runs, panicked jobs, benchmark
// harnesses) otherwise leak one goroutine per suspended process for the
// life of the program. Close must be called when the engine is not
// running — never from an event callback or a process. After Close the
// engine schedules nothing, Step reports false, and Go panics.
// Idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.flushCycles()
	for _, p := range e.procs {
		if p.finished {
			continue
		}
		// Exactly one entity runs at a time and it is the caller, so every
		// unfinished process is blocked receiving on its wake channel —
		// either parked or awaiting its first resume. Waking it with
		// aborted set makes it exit (via runtime.Goexit for parked
		// processes); the yield receive is its termination ack.
		p.aborted = true
		p.wake <- struct{}{}
		<-p.yield
	}
	e.heap, e.fifo, e.fifoHead, e.procs = nil, nil, 0, nil
}

// flushCycles publishes this engine's progress into the process-wide
// counters. Idempotent: only the progress since the last flush is added.
func (e *Engine) flushCycles() {
	if e.now > e.reported {
		totalCycles.Add(uint64(e.now - e.reported))
		e.reported = e.now
	}
	if e.executed > e.repEv {
		totalEvents.Add(e.executed - e.repEv)
		e.repEv = e.executed
	}
}
