package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// refSched is a trivially-correct reference scheduler: a flat slice
// scanned for the minimum (when, seq) on every pop. The randomized test
// below drives it and the real engine with identical programs and
// requires identical dispatch orders — pinning the split-queue engine
// (heap + same-cycle FIFO) to the semantics of a single priority queue.
type refSched struct {
	now    Cycle
	seq    uint64
	events []event
}

func (r *refSched) at(when Cycle, fn func()) {
	if when < r.now {
		panic("ref: scheduling in the past")
	}
	r.seq++
	r.events = append(r.events, event{when: when, seq: r.seq, fn: fn})
}

func (r *refSched) run() {
	for len(r.events) > 0 {
		best := 0
		for i := 1; i < len(r.events); i++ {
			if r.events[i].before(&r.events[best]) {
				best = i
			}
		}
		ev := r.events[best]
		r.events = append(r.events[:best], r.events[best+1:]...)
		r.now = ev.when
		ev.fn()
	}
}

// scheduler abstracts the engine vs the reference for the fuzz driver.
type scheduler interface {
	schedule(when Cycle, id int)
	log() []int
}

type engineSched struct {
	e     *Engine
	rng   *rand.Rand
	order []int
	next  *int
}

func (s *engineSched) schedule(when Cycle, id int) {
	s.e.At(when, func() { s.fire(id) })
}

func (s *engineSched) fire(id int) {
	s.order = append(s.order, id)
	spawnChildren(s, s.rng, s.e.Now(), s.next)
}

func (s *engineSched) log() []int { return s.order }

type refSchedDriver struct {
	r     *refSched
	rng   *rand.Rand
	order []int
	next  *int
}

func (s *refSchedDriver) schedule(when Cycle, id int) {
	s.r.at(when, func() { s.fire(id) })
}

func (s *refSchedDriver) fire(id int) {
	s.order = append(s.order, id)
	spawnChildren(s, s.rng, s.r.now, s.next)
}

func (s *refSchedDriver) log() []int { return s.order }

// spawnChildren schedules 0–3 children per fired event, biased heavily
// toward same-cycle offsets to stress the FIFO fast path and its
// interleaving with heap events already due at the same cycle.
func spawnChildren(s scheduler, rng *rand.Rand, now Cycle, next *int) {
	if *next > 4000 {
		return
	}
	n := rng.Intn(4)
	for i := 0; i < n; i++ {
		var off Cycle
		switch rng.Intn(8) {
		case 0, 1, 2, 3: // same cycle: the hot After(0) pattern
			off = 0
		case 4, 5:
			off = 1
		default:
			off = Cycle(rng.Intn(50))
		}
		*next++
		s.schedule(now+off, *next)
	}
}

// TestSameCycleOrderingMatchesReference cross-checks the engine's
// dispatch order against the reference scheduler over randomized
// programs: same seed, same spawning decisions, same (cycle, seq) FIFO
// order required. Run under -race in CI like the rest of the suite.
func TestSameCycleOrderingMatchesReference(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		seedRoots := func(s scheduler, rng *rand.Rand, next *int) {
			roots := 5 + rng.Intn(10)
			for i := 0; i < roots; i++ {
				*next++
				s.schedule(Cycle(rng.Intn(20)), *next)
			}
		}

		var nextA int
		es := &engineSched{e: NewEngine(), rng: rand.New(rand.NewSource(int64(trial)))}
		es.next = &nextA
		seedRoots(es, es.rng, &nextA)
		es.e.Drain()

		var nextB int
		rs := &refSchedDriver{r: &refSched{}, rng: rand.New(rand.NewSource(int64(trial)))}
		rs.next = &nextB
		seedRoots(rs, rs.rng, &nextB)
		rs.r.run()

		got, want := es.log(), rs.log()
		if len(got) != len(want) {
			t.Fatalf("trial %d: engine fired %d events, reference %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dispatch order diverges at %d: engine %d, reference %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestEngineCloseReleasesParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		e := NewEngine()
		for j := 0; j < 5; j++ {
			e.Go("parked", func(p *Proc) { p.Suspend() })
		}
		// Let every process start and park; the engine is then abandoned
		// mid-run, the scenario that used to leak the goroutines.
		e.RunUntil(10)
		e.Close()
	}
	// Goroutine exit is asynchronous after Close's ack: poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after Close of all engines",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestEngineCloseSemantics(t *testing.T) {
	e := NewEngine()
	var p *Proc
	p = e.Go("s", func(p *Proc) { p.Suspend() })
	e.RunUntil(5)
	e.Close()
	e.Close() // idempotent
	if !p.Finished() {
		t.Fatal("released process not marked finished")
	}
	e.At(100, func() { t.Fatal("event ran on closed engine") }) // no-op
	if e.Step() {
		t.Fatal("Step on closed engine reported work")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Go on closed engine did not panic")
		}
	}()
	e.Go("late", func(p *Proc) {})
}

// TestStepDrivenRunFlushesCycles pins the fix for bare Step() loops:
// progress must reach the SimulatedCycles shim on a cadence even though
// the caller never invokes Drain or RunUntil.
func TestStepDrivenRunFlushesCycles(t *testing.T) {
	e := NewEngine()
	const span = 4 * cycleFlushPeriod
	for c := Cycle(0); c <= span; c += 64 {
		e.At(c, func() {})
	}
	before := SimulatedCycles()
	for e.Step() {
	}
	if got := SimulatedCycles() - before; got < span-cycleFlushPeriod {
		t.Fatalf("Step-driven run flushed %d cycles, want at least %d", got, span-cycleFlushPeriod)
	}
}
