package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// ProcPanic wraps a panic raised inside a simulated process. Without the
// wrapper a workload panic unwinds the process goroutine — not the
// goroutine driving the engine — and kills the whole program before any
// caller-side recover can see it. The spawn wrapper captures the panic
// here and the engine re-raises it on its own goroutine at the resume
// point, so Drain/Step callers (the runner's per-job recover, tests) can
// handle it like any other panic.
type ProcPanic struct {
	Proc  string // process name
	Value any    // original panic value
	Stack []byte // stack of the panicking goroutine at capture time
}

func (p *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", p.Proc, p.Value)
}

// Unwrap exposes an error panic value to errors.Is/As.
func (p *ProcPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Proc is a simulated process: a goroutine co-scheduled with the engine's
// event loop. Exactly one of {engine, some process} executes at a time.
// A process runs until it parks (Wait/Suspend) or returns; the engine then
// resumes pumping events. This gives imperative workload code (loops,
// data structures, recursion) deterministic simulated timing.
type Proc struct {
	eng       *Engine
	name      string
	wake      chan struct{} // engine -> proc: run
	yield     chan struct{} // proc -> engine: parked or finished
	resumeFn  func()        // pre-bound p.resume: every wakeup schedules this one closure
	finished  bool
	suspended bool       // parked via Suspend (awaiting an explicit Resume)
	aborted   bool       // set by Engine.Close before the final wake
	panicked  *ProcPanic // captured panic, re-raised engine-side
}

// Go spawns fn as a simulated process starting at the current cycle.
// fn runs on its own goroutine but never concurrently with the engine or
// another process.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	if e.closed {
		panic("sim: Go on closed engine")
	}
	p := &Proc{
		eng:   e,
		name:  name,
		wake:  make(chan struct{}),
		yield: make(chan struct{}),
	}
	p.resumeFn = p.resume
	e.procs = append(e.procs, p)
	go func() {
		defer func() {
			// recover returns nil during runtime.Goexit (the Close/abort
			// path), so only genuine workload panics are captured.
			if r := recover(); r != nil {
				if pp, ok := r.(*ProcPanic); ok {
					p.panicked = pp
				} else {
					p.panicked = &ProcPanic{Proc: p.name, Value: r, Stack: debug.Stack()}
				}
			}
			p.finished = true
			p.yield <- struct{}{}
		}()
		<-p.wake
		if p.aborted {
			return
		}
		fn(p)
	}()
	e.After(0, p.resumeFn)
	return p
}

// resume hands control to the process and blocks the engine until the
// process parks again or finishes. Must be called from the engine side.
func (p *Proc) resume() {
	if p.finished {
		panic("sim: waking process " + p.name + " after it finished (stale wakeup)")
	}
	p.wake <- struct{}{}
	<-p.yield
	if pp := p.panicked; pp != nil {
		p.panicked = nil
		panic(pp)
	}
}

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name (used in diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated cycle.
func (p *Proc) Now() Cycle { return p.eng.Now() }

// Wait parks the process for delay cycles of simulated time.
func (p *Proc) Wait(delay Cycle) {
	p.eng.After(delay, p.resumeFn)
	p.park()
}

// WaitUntil parks the process until the given absolute cycle. If the cycle
// is not in the future, it is a no-op.
func (p *Proc) WaitUntil(when Cycle) {
	if when <= p.eng.Now() {
		return
	}
	p.eng.At(when, p.resumeFn)
	p.park()
}

// Suspend parks the process indefinitely; some event callback must later
// call Resume. Use for waiting on asynchronous completions (memory
// responses, queue-slot availability).
func (p *Proc) Suspend() {
	p.suspended = true
	p.park()
}

// Resume schedules the process to continue at the current cycle. It must
// be called from engine context (an event callback), never from another
// process's goroutine, and only while the target is suspended. Resuming a
// process that is not suspended panics immediately — the alternative is a
// silent simulator deadlock.
func (p *Proc) Resume() {
	if !p.suspended {
		panic("sim: Resume of process " + p.name + " that is not suspended")
	}
	p.suspended = false
	p.eng.After(0, p.resumeFn)
}

// park transfers control back to the engine.
func (p *Proc) park() {
	if p.aborted {
		// Re-parking from a deferred call while the goroutine is being
		// released by Engine.Close: keep unwinding instead of blocking on
		// a wake that will never come.
		runtime.Goexit()
	}
	p.yield <- struct{}{}
	<-p.wake
	if p.aborted {
		// Engine.Close released us: unwind (running deferred calls); the
		// spawn wrapper's defer acknowledges termination to Close.
		runtime.Goexit()
	}
}

// Finished reports whether the process goroutine has terminated — its
// function returned, or Engine.Close released it.
func (p *Proc) Finished() bool { return p.finished }
