package sim

import (
	"reflect"
	"testing"
)

type hop struct{ from, to Cycle }

func TestOnAdvanceFiresOnTimeMoves(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var hops []hop
	e.OnAdvance(func(from, to Cycle) { hops = append(hops, hop{from, to}) })

	var order []Cycle
	e.At(10, func() { order = append(order, 10) })
	e.At(10, func() { order = append(order, 10) }) // same cycle: no extra hop
	e.At(25, func() {
		order = append(order, 25)
		e.After(0, func() { order = append(order, 25) }) // fifo path: time unchanged
	})
	e.Drain()

	want := []hop{{0, 10}, {10, 25}}
	if !reflect.DeepEqual(hops, want) {
		t.Fatalf("hops = %v, want %v", hops, want)
	}
	if !reflect.DeepEqual(order, []Cycle{10, 10, 25, 25}) {
		t.Fatalf("order = %v", order)
	}
}

// The hook fires before the event at `to` runs, so a sampler at boundary
// B in (from, to] observes exactly the state after all events < B.
func TestOnAdvanceOrdering(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	state := 0
	seen := -1
	e.OnAdvance(func(from, to Cycle) {
		if from < 50 && to >= 50 {
			seen = state // what a boundary at 50 would sample
		}
	})
	e.At(40, func() { state = 40 })
	e.At(60, func() { state = 60 })
	e.Drain()
	if seen != 40 {
		t.Fatalf("hook at boundary 50 saw state %d, want 40 (pre-event at 60)", seen)
	}
}

func TestOnAdvanceRunUntilBump(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var hops []hop
	e.OnAdvance(func(from, to Cycle) { hops = append(hops, hop{from, to}) })
	e.At(5, func() {})
	e.RunUntil(100)
	want := []hop{{0, 5}, {5, 100}}
	if !reflect.DeepEqual(hops, want) {
		t.Fatalf("hops = %v, want %v", hops, want)
	}
	if e.Now() != 100 {
		t.Fatalf("now = %d, want 100", e.Now())
	}
}

func TestOnAdvanceDoubleInstallPanics(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.OnAdvance(func(from, to Cycle) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second OnAdvance did not panic")
		}
	}()
	e.OnAdvance(func(from, to Cycle) {})
}

func TestOnAdvanceUninstall(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	fired := 0
	e.OnAdvance(func(from, to Cycle) { fired++ })
	e.At(3, func() {})
	e.Drain()
	e.OnAdvance(nil)
	e.At(9, func() {})
	e.Drain()
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1 (uninstalled before second run)", fired)
	}
}
