package sim

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
)

// Tracker collects every engine created on goroutines it is bound to, so
// a job runner can Close them all once the job finishes — releasing the
// goroutines of processes still parked in abandoned engines. It mirrors
// the ambient-collector pattern of internal/metrics: the runner binds a
// tracker around a job, NewEngine registers with it, and nothing needs
// threading through the ~30 workload call sites.
type Tracker struct {
	mu         sync.Mutex
	engines    []*Engine
	cycleLimit Cycle // applied to engines at registration (0 = none)
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// SetCycleLimit makes every engine subsequently registered with the
// tracker carry a cycle budget (see Engine.SetCycleLimit) — the runner's
// per-job timeout. Engines that set their own limit keep it.
func (t *Tracker) SetCycleLimit(limit Cycle) {
	t.mu.Lock()
	t.cycleLimit = limit
	t.mu.Unlock()
}

// add records an engine. Called from NewEngine; safe from any goroutine.
func (t *Tracker) add(e *Engine) {
	t.mu.Lock()
	if t.cycleLimit != 0 && e.limit == 0 {
		e.limit = t.cycleLimit
	}
	t.engines = append(t.engines, e)
	t.mu.Unlock()
}

// Engines returns the collected engines in creation order.
func (t *Tracker) Engines() []*Engine {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Engine(nil), t.engines...)
}

// CloseAll closes every collected engine (idempotent per engine) and
// reports how many were closed. Call only when none of them is running.
func (t *Tracker) CloseAll() int {
	engines := t.Engines()
	for _, e := range engines {
		e.Close()
	}
	return len(engines)
}

// ambient maps goroutine id → bound tracker. Bind/lookup happen only at
// job boundaries and engine construction, never per event.
var (
	ambientMu sync.Mutex
	ambient   = map[uint64]*Tracker{}
)

// Bind attaches t to the calling goroutine and returns a release func
// that restores whatever was bound before. Engines built on this
// goroutine between Bind and release register themselves with t.
func (t *Tracker) Bind() (release func()) {
	id := goid()
	ambientMu.Lock()
	prev, had := ambient[id]
	ambient[id] = t
	ambientMu.Unlock()
	return func() {
		ambientMu.Lock()
		if had {
			ambient[id] = prev
		} else {
			delete(ambient, id)
		}
		ambientMu.Unlock()
	}
}

// ambientTracker returns the tracker bound to the calling goroutine, or
// nil if none is.
func ambientTracker() *Tracker {
	ambientMu.Lock()
	t := ambient[goid()]
	ambientMu.Unlock()
	return t
}

// goid parses the calling goroutine's id from its stack header
// ("goroutine 123 [running]:"). Called only at bind points and engine
// construction; the few-microsecond cost is irrelevant there.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		panic("sim: cannot parse goroutine id from stack header")
	}
	return id
}
