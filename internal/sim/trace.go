package sim

import (
	"fmt"
	"os"
)

var procTrace = os.Getenv("SIM_TRACE") != ""

func trace(format string, args ...interface{}) {
	if procTrace {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}
