package sim

import (
	"errors"
	"testing"
)

// mustPanic runs fn and returns the recovered panic value, failing the
// test when fn returns normally.
func mustPanic(t *testing.T, fn func()) (v any) {
	t.Helper()
	defer func() { v = recover() }()
	fn()
	t.Fatal("expected panic")
	return nil
}

// TestProcPanicCapture: a panic inside a simulated process surfaces
// engine-side as *ProcPanic carrying the process name, the original value,
// and the process goroutine's stack — not as a bare value with the
// engine's own stack.
func TestProcPanicCapture(t *testing.T) {
	eng := NewEngine()
	eng.Go("exploder", func(p *Proc) {
		p.Wait(10)
		panic("boom")
	})
	v := mustPanic(t, eng.Drain)
	pp, ok := v.(*ProcPanic)
	if !ok {
		t.Fatalf("recovered %T, want *ProcPanic", v)
	}
	if pp.Proc != "exploder" || pp.Value != "boom" {
		t.Fatalf("ProcPanic = %+v", pp)
	}
	if len(pp.Stack) == 0 {
		t.Fatal("ProcPanic carries no stack")
	}
	eng.Close()
}

// TestProcPanicWrapsError: an error panic value stays reachable through
// errors.As on the wrapper.
func TestProcPanicWrapsError(t *testing.T) {
	sentinel := errors.New("sentinel")
	eng := NewEngine()
	eng.Go("exploder", func(p *Proc) { panic(sentinel) })
	v := mustPanic(t, eng.Drain)
	pp, ok := v.(*ProcPanic)
	if !ok {
		t.Fatalf("recovered %T, want *ProcPanic", v)
	}
	if !errors.Is(pp, sentinel) {
		t.Fatalf("errors.Is failed to reach the wrapped value: %v", pp)
	}
	eng.Close()
}

// TestCycleLimit: once simulated time passes the budget, Step panics with
// *CycleLimitError — the livelock backstop.
func TestCycleLimit(t *testing.T) {
	eng := NewEngine()
	eng.SetCycleLimit(100)
	eng.Go("spinner", func(p *Proc) {
		for {
			p.Wait(60)
		}
	})
	v := mustPanic(t, eng.Drain)
	cle, ok := v.(*CycleLimitError)
	if !ok {
		t.Fatalf("recovered %T, want *CycleLimitError", v)
	}
	if cle.Limit != 100 || cle.Now <= 100 {
		t.Fatalf("CycleLimitError = %+v", cle)
	}
	eng.Close()
}

// TestCycleLimitNotTripped: a budget above the run's length never fires.
func TestCycleLimitNotTripped(t *testing.T) {
	eng := NewEngine()
	eng.SetCycleLimit(1000)
	eng.Go("ok", func(p *Proc) { p.Wait(500) })
	eng.Drain()
	if eng.Now() != 500 {
		t.Fatalf("Now = %d, want 500", eng.Now())
	}
	eng.Close()
}

// TestTrackerCycleLimit: a budget set on the tracker applies to every
// engine registered afterwards (the runner's per-job timeout path).
func TestTrackerCycleLimit(t *testing.T) {
	trk := NewTracker()
	trk.SetCycleLimit(100)
	release := trk.Bind()
	eng := NewEngine()
	release()
	eng.Go("spinner", func(p *Proc) {
		for {
			p.Wait(60)
		}
	})
	v := mustPanic(t, eng.Drain)
	if _, ok := v.(*CycleLimitError); !ok {
		t.Fatalf("recovered %T, want *CycleLimitError", v)
	}
	if trk.CloseAll() != 1 {
		t.Fatal("tracker did not collect the engine")
	}
}
