// Package micro implements the paper's microbenchmarks (§V-A, §V-C):
// copy latency across sizes and mechanisms (Fig 10), the memcpy_lazy
// overhead breakdown (Fig 11), sequential and random destination-access
// sweeps (Figs 12 and 13), and the source-overwrite BPQ sweep (Fig 21).
package micro

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/oskern"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
	"mcsquare/internal/stats"
	"mcsquare/internal/zio"
)

// Options scales the microbenchmarks. The zero value uses the paper's
// parameters; Quick shrinks the big buffers for fast test/bench runs.
type Options struct {
	MaxSize uint64 // largest copy in the Fig 10/11 sweeps (default 4 MB)
	BufSize uint64 // buffer for the access sweeps and Fig 21 (default 4 MB)
	// L2Size overrides the shared cache size (0 keeps the default 2 MB).
	// Quick runs shrink the L2 along with the buffers so the access sweeps
	// stay in the paper's regime where the buffer exceeds the cache.
	L2Size int
	// Base is the machine every microbenchmark variant starts from (a
	// config.MachineSpec lowering); nil uses machine.DefaultParams().
	// The L2Size and per-variant mutations layer on top.
	Base *machine.Params
}

func (o Options) withDefaults() Options {
	if o.MaxSize == 0 {
		o.MaxSize = 4 << 20
	}
	if o.BufSize == 0 {
		o.BufSize = 4 << 20
	}
	return o
}

// Quick returns options sized for fast runs (unit tests, smoke benches).
func Quick() Options { return Options{MaxSize: 256 << 10, BufSize: 256 << 10, L2Size: 128 << 10} }

func (o Options) newMachine(mutate func(*machine.Params)) *machine.Machine {
	p := machine.DefaultParams()
	if o.Base != nil {
		p = *o.Base
	}
	if o.L2Size != 0 {
		p.Cache.L2Size = o.L2Size
	}
	if mutate != nil {
		mutate(&p)
	}
	return machine.New(p)
}

// timeOn runs fn on core 0 of a fresh machine built by mutate and returns
// the cycles fn took.
func timeOn(opt Options, mutate func(*machine.Params), setup func(m *machine.Machine) (src, dst memdata.Addr),
	fn func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr)) sim.Cycle {
	m := opt.newMachine(mutate)
	src, dst := setup(m)
	var dur sim.Cycle
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		fn(c, m, src, dst)
		dur = c.Now() - start
	})
	return dur
}

// prefault allocates and fills source and destination buffers: the data is
// resident in memory but not in any cache, matching the Fig 10 setup.
func prefault(size uint64) func(m *machine.Machine) (src, dst memdata.Addr) {
	return func(m *machine.Machine) (memdata.Addr, memdata.Addr) {
		src := m.AllocPage(size + memdata.PageSize)
		dst := m.AllocPage(size + memdata.PageSize)
		m.FillRandom(src, size, int64(size))
		return src, dst
	}
}

// ---------------------------------------------------------------------------
// Fig 10: copy latency across mechanisms
// ---------------------------------------------------------------------------

// Sizes10 is the Fig 10 x-axis up to max.
func Sizes10(max uint64) []uint64 {
	all := []uint64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	var out []uint64
	for _, s := range all {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}

// SweepSizes returns the Fig 10/11 x-axis for the given options.
func SweepSizes(opt Options) []uint64 { return Sizes10(opt.withDefaults().MaxSize) }

func copyLatencyTable() *stats.Table {
	return stats.NewTable("Figure 10: copy latency (ns), prefaulted buffers",
		"size", "memcpy", "zio", "touched_memcpy", "mc2")
}

// CopyLatency produces the Fig 10 table: copy latency in ns for native
// memcpy, zIO, touched (cached-source) memcpy, and (MC)².
func CopyLatency(opt Options) *stats.Table {
	opt = opt.withDefaults()
	tb := copyLatencyTable()
	for _, size := range Sizes10(opt.MaxSize) {
		if err := tb.AppendRows(CopyLatencyRow(opt, size)); err != nil {
			panic(err.Error()) // rows share copyLatencyTable's header by construction
		}
	}
	return tb
}

// CopyLatencyRow computes one size's row of the Fig 10 sweep as a one-row
// table (canonical title and columns), so the ladder can run as independent
// jobs and be concatenated deterministically.
func CopyLatencyRow(opt Options, size uint64) *stats.Table {
	opt = opt.withDefaults()
	tb := copyLatencyTable()
	{
		size := size
		memcpyT := timeOn(opt, nil, prefault(size), func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr) {
			softmc.MemcpyEager(c, dst, src, size)
		})
		zioT := timeOn(opt, func(p *machine.Params) { p.LazyEnabled = false }, prefault(size),
			func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr) {
				z := zio.New(oskern.New(m))
				z.Memcpy(c, dst, src, size)
			})
		// Touched memcpy: warm the source first, then time only the copy.
		touchedT := func() sim.Cycle {
			m := opt.newMachine(nil)
			src, dst := prefault(size)(m)
			var dur sim.Cycle
			m.Run(func(c *cpu.Core) {
				m.Warm(c, memdata.Range{Start: src, Size: size})
				start := c.Now()
				softmc.MemcpyEager(c, dst, src, size)
				dur = c.Now() - start
			})
			return dur
		}()
		mc2T := timeOn(opt, nil, prefault(size), func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr) {
			softmc.MemcpyLazy(c, dst, src, size)
		})
		tb.AddRow(sizeLabel(size), stats.CyclesToNs(memcpyT), stats.CyclesToNs(zioT),
			stats.CyclesToNs(touchedT), stats.CyclesToNs(mc2T))
	}
	return tb
}

func sizeLabel(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ---------------------------------------------------------------------------
// Fig 11: memcpy_lazy overhead breakdown
// ---------------------------------------------------------------------------

// Breakdown produces the Fig 11 table: the fraction of memcpy_lazy's
// overhead spent writing back cachelines (CLWB) versus sending the lazy
// copy packets to the controller (MCLAZY), measured by running each
// component in isolation.
func Breakdown(opt Options) *stats.Table {
	opt = opt.withDefaults()
	tb := stats.NewTable("Figure 11: memcpy_lazy overhead breakdown (fraction)",
		"size", "cacheline_writeback", "packet_to_memctrl")
	for _, size := range Sizes10(opt.MaxSize) {
		size := size
		clwbT := timeOn(opt, nil, prefault(size), func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr) {
			for l := memdata.LineAlign(src); l < src+memdata.Addr(size); l += memdata.LineSize {
				c.CLWB(l)
			}
			c.Fence()
		})
		packetT := timeOn(opt, nil, prefault(size), func(c *cpu.Core, m *machine.Machine, src, dst memdata.Addr) {
			// One MCLAZY per page, as the wrapper issues them.
			for off := uint64(0); off < size; off += memdata.PageSize {
				chunk := min(uint64(memdata.PageSize), size-off)
				chunk &^= memdata.LineSize - 1
				if chunk == 0 {
					continue
				}
				c.MCLazy(memdata.Range{Start: dst + memdata.Addr(off), Size: chunk}, src+memdata.Addr(off))
			}
			c.Fence()
		})
		total := float64(clwbT + packetT)
		tb.AddRow(sizeLabel(size), float64(clwbT)/total, float64(packetT)/total)
	}
	return tb
}

// ---------------------------------------------------------------------------
// Figs 12 and 13: destination access sweeps
// ---------------------------------------------------------------------------

// Fractions is the x-axis of the access sweeps.
func Fractions() []float64 { return []float64{0, 0.125, 0.25, 0.5, 0.75, 1.0} }

// seqVariant runs copy-then-sequential-scan and returns total cycles.
// copier performs the copy; align offsets the source inside its buffer.
func seqVariant(opt Options, frac float64, mkCopier func(m *machine.Machine) copykit.Copier,
	aligned bool, prefetch bool, lazyMachine bool) sim.Cycle {
	size := opt.BufSize
	m := opt.newMachine(func(p *machine.Params) {
		p.LazyEnabled = lazyMachine
		p.Cache.Prefetch.Enabled = prefetch
	})
	srcBase := m.AllocPage(size + memdata.PageSize)
	dst := m.AllocPage(size + memdata.PageSize)
	src := srcBase
	if !aligned {
		src += 20 // misaligned: every dest line needs two source lines
	}
	m.FillRandom(src, size, 99)
	cp := mkCopier(m)
	var dur sim.Cycle
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		cp.Memcpy(c, dst, src, size)
		limit := uint64(frac * float64(size))
		for off := uint64(0); off+8 <= limit; off += memdata.LineSize {
			cp.ReadAsync(c, dst+memdata.Addr(off), 8)
		}
		c.Fence()
		dur = c.Now() - start
	})
	return dur
}

// SeqAccess produces the Fig 12 table: runtime of copy + sequential scan
// of a fraction of the destination, normalized to native memcpy.
func SeqAccess(opt Options) *stats.Table {
	opt = opt.withDefaults()
	tb := stats.NewTable("Figure 12: sequential destination access, normalized runtime (4MB copy, misaligned)",
		"fraction", "memcpy", "zio", "mc2", "mc2_aligned", "mc2_noprefetch")
	for _, f := range Fractions() {
		base := seqVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Eager{} }, false, true, false)
		zv := seqVariant(opt, f, func(m *machine.Machine) copykit.Copier { return zio.New(oskern.New(m)) }, false, true, false)
		mc2 := seqVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, false, true, true)
		mc2a := seqVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, true, true, true)
		mc2np := seqVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, false, false, true)
		b := float64(base)
		tb.AddRow(f, 1.0, float64(zv)/b, float64(mc2)/b, float64(mc2a)/b, float64(mc2np)/b)
	}
	return tb
}

// randVariant runs copy-then-pointer-chase and returns total cycles. The
// source holds a random cyclic permutation of 8-byte indices; the chase
// follows frac*N of them, making every access dependent.
func randVariant(opt Options, frac float64, mkCopier func(m *machine.Machine) copykit.Copier,
	aligned bool, writeback bool, lazyMachine bool) sim.Cycle {
	size := opt.BufSize
	n := size / 8
	m := opt.newMachine(func(p *machine.Params) {
		p.LazyEnabled = lazyMachine
		p.Lazy.WritebackOnBounce = writeback
	})
	srcBase := m.AllocPage(size + memdata.PageSize)
	dst := m.AllocPage(size + memdata.PageSize)
	src := srcBase
	if !aligned {
		src += 24
	}
	// Build a single random cycle over n slots, stored as the values.
	perm := rand.New(rand.NewSource(1234)).Perm(int(n))
	next := make([]uint64, n)
	for i := 0; i < int(n)-1; i++ {
		next[perm[i]] = uint64(perm[i+1])
	}
	next[perm[n-1]] = uint64(perm[0])
	buf := make([]byte, size)
	for i, v := range next {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	m.Phys.Write(src, buf)

	cp := mkCopier(m)
	steps := uint64(frac * float64(n))
	var dur sim.Cycle
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		cp.Memcpy(c, dst, src, size)
		idx := uint64(perm[0])
		for i := uint64(0); i < steps; i++ {
			v := cp.Read(c, dst+memdata.Addr(idx*8), 8)
			idx = binary.LittleEndian.Uint64(v)
		}
		dur = c.Now() - start
	})
	return dur
}

// RandAccess produces the Fig 13 table: runtime of copy + random pointer
// chase over a fraction of the destination, normalized to native memcpy.
func RandAccess(opt Options) *stats.Table {
	opt = opt.withDefaults()
	tb := stats.NewTable("Figure 13: random destination access, normalized runtime (pointer chase, misaligned)",
		"fraction", "memcpy", "zio", "mc2", "mc2_aligned", "mc2_nowriteback")
	for _, f := range Fractions() {
		base := randVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Eager{} }, false, true, false)
		zv := randVariant(opt, f, func(m *machine.Machine) copykit.Copier { return zio.New(oskern.New(m)) }, false, true, false)
		mc2 := randVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, false, true, true)
		mc2a := randVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, true, true, true)
		mc2nw := randVariant(opt, f, func(m *machine.Machine) copykit.Copier { return copykit.Lazy{} }, false, false, true)
		b := float64(base)
		tb.AddRow(f, 1.0, float64(zv)/b, float64(mc2)/b, float64(mc2a)/b, float64(mc2nw)/b)
	}
	return tb
}

// ---------------------------------------------------------------------------
// Fig 21: source-overwrite BPQ sweep
// ---------------------------------------------------------------------------

// SrcWriteSizes is the Fig 21 x-axis up to max.
func SrcWriteSizes(max uint64) []uint64 {
	all := []uint64{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	var out []uint64
	for _, s := range all {
		if s <= max {
			out = append(out, s)
		}
	}
	return out
}

// BPQEntries is the Fig 21 series.
func BPQEntries() []int { return []int{1, 2, 4, 8, 16} }

// srcWriteRun lazily copies a buffer, overwrites the source, and flushes
// the writes with CLWB + fence, bringing the BPQ into the critical path.
func srcWriteRun(opt Options, size uint64, bpq int) sim.Cycle {
	m := opt.newMachine(func(p *machine.Params) { p.Lazy.BPQCapacity = bpq })
	src := m.AllocPage(size)
	dst := m.AllocPage(size)
	m.FillRandom(src, size, 7)
	var dur sim.Cycle
	m.Run(func(c *cpu.Core) {
		// The source is application data the program recently produced:
		// cache-resident. (Uncached sources make the overwrite phase's RFO
		// misses the bottleneck and mask the BPQ entirely.)
		m.Warm(c, memdata.Range{Start: src, Size: size})
		softmc.MemcpyLazy(c, dst, src, size)
		start := c.Now()
		// Paper's phases: overwrite the source buffer, then flush the
		// writes from the cache, then fence — the flush brings the BPQ
		// into the critical path.
		junk := make([]byte, memdata.LineSize)
		for off := uint64(0); off < size; off += memdata.LineSize {
			junk[0] = byte(off)
			c.Store(src+memdata.Addr(off), junk)
		}
		for off := uint64(0); off < size; off += memdata.LineSize {
			c.CLWB(src + memdata.Addr(off))
		}
		c.Fence()
		dur = c.Now() - start
	})
	return dur
}

// SrcWrite produces the Fig 21 table: runtime of the source-overwrite
// microbenchmark for varying BPQ sizes, normalized to 1 BPQ entry.
func SrcWrite(opt Options) *stats.Table {
	opt = opt.withDefaults()
	cols := []string{"buffer"}
	for _, e := range BPQEntries() {
		cols = append(cols, fmt.Sprintf("bpq%d", e))
	}
	tb := stats.NewTable("Figure 21: source-overwrite runtime, normalized to 1 BPQ entry", cols...)
	for _, size := range SrcWriteSizes(opt.BufSize) {
		row := []interface{}{sizeLabel(size)}
		var base sim.Cycle
		for i, e := range BPQEntries() {
			d := srcWriteRun(opt, size, e)
			if i == 0 {
				base = d
			}
			row = append(row, float64(d)/float64(base))
		}
		tb.AddRow(row...)
	}
	return tb
}
