package micro

import (
	"strconv"
	"testing"
)

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestCopyLatencyShape checks the Fig 10 relationships at quick scale:
// (MC)² beats memcpy at ≥1 KB, zIO loses below ~64 KB, touched memcpy
// beats cold memcpy everywhere.
func TestCopyLatencyShape(t *testing.T) {
	tb := CopyLatency(Quick())
	rows := tb.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range rows {
		size, memcpyT, zioT, touched, mc2 := row[0], parse(t, row[1]), parse(t, row[2]), parse(t, row[3]), parse(t, row[4])
		// The cached-source advantage only exists while the source fits in
		// the (quick-scale, 128 KB) L2.
		switch size {
		case "64B", "256B", "1KB", "4KB", "16KB", "64KB":
			if touched >= memcpyT {
				t.Errorf("%s: touched (%.0f) not faster than cold memcpy (%.0f)", size, touched, memcpyT)
			}
		}
		switch size {
		case "4KB", "16KB", "64KB", "256KB":
			if mc2 >= memcpyT {
				t.Errorf("%s: mc2 (%.0f) not faster than memcpy (%.0f)", size, mc2, memcpyT)
			}
		case "64B":
			if mc2 < memcpyT/4 {
				t.Errorf("%s: mc2 suspiciously fast (%.0f vs %.0f)", size, mc2, memcpyT)
			}
		}
		if size == "16KB" && zioT <= memcpyT {
			t.Errorf("16KB: zIO (%.0f) should lose to memcpy (%.0f)", zioT, memcpyT)
		}
		if size == "256KB" && zioT >= memcpyT {
			t.Errorf("256KB: zIO (%.0f) should beat memcpy (%.0f)", zioT, memcpyT)
		}
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	tb := Breakdown(Quick())
	for _, row := range tb.Rows() {
		a, b := parse(t, row[1]), parse(t, row[2])
		if s := a + b; s < 0.999 || s > 1.001 {
			t.Fatalf("%s: fractions sum to %v", row[0], s)
		}
	}
	// Writeback share grows with size (Fig 11's trend).
	rows := tb.Rows()
	first := parse(t, rows[0][1])
	last := parse(t, rows[len(rows)-1][1])
	if last <= first {
		t.Fatalf("CLWB share should grow with size: %v -> %v", first, last)
	}
}

// TestSeqAccessShape checks the Fig 12 relationships: (MC)² stays below
// memcpy with prefetching; aligned beats misaligned; disabling prefetch
// hurts at high access fractions; zIO degrades as access grows.
func TestSeqAccessShape(t *testing.T) {
	tb := SeqAccess(Quick())
	rows := tb.Rows()
	last := rows[len(rows)-1] // 100% accessed
	zio100 := parse(t, last[2])
	mc2_100 := parse(t, last[3])
	al100 := parse(t, last[4])
	np100 := parse(t, last[5])
	if mc2_100 >= 1.1 {
		t.Errorf("mc2 at 100%% access = %.2fx memcpy; want ≈ ≤1x (prefetch hides bounces)", mc2_100)
	}
	if al100 > mc2_100+0.01 {
		t.Errorf("aligned (%.2f) should not be slower than misaligned (%.2f)", al100, mc2_100)
	}
	if np100 <= mc2_100 {
		t.Errorf("no-prefetch (%.2f) should be slower than prefetch (%.2f)", np100, mc2_100)
	}
	if zio100 <= 1.0 {
		t.Errorf("zIO at 100%% access (%.2f) should lose to memcpy", zio100)
	}
	// At 0% access everything lazy wins big.
	first := rows[0]
	if mc2_0 := parse(t, first[3]); mc2_0 >= 0.7 {
		t.Errorf("mc2 at 0%% access = %.2f; want well under memcpy", mc2_0)
	}
}

// TestRandAccessShape checks Fig 13: the bounce writeback matters, aligned
// beats misaligned, zIO suffers from faults at low fractions.
func TestRandAccessShape(t *testing.T) {
	tb := RandAccess(Quick())
	rows := tb.Rows()
	// Use the 25% row (index 2) for zIO's fault-dominated regime.
	ziolow := parse(t, rows[2][2])
	if ziolow <= 1.0 {
		t.Errorf("zIO at low random access (%.2f) should lose to memcpy", ziolow)
	}
	last := rows[len(rows)-1]
	mc2 := parse(t, last[3])
	al := parse(t, last[4])
	nw := parse(t, last[5])
	if nw <= mc2 {
		t.Errorf("no-writeback (%.2f) should be slower than writeback (%.2f)", nw, mc2)
	}
	if al > mc2+0.02 {
		t.Errorf("aligned (%.2f) should not be slower than misaligned (%.2f)", al, mc2)
	}
}

// TestSrcWriteShape checks Fig 21: more BPQ entries never hurt, and the
// 1→2 step helps far more than the 8→16 step (diminishing returns).
func TestSrcWriteShape(t *testing.T) {
	tb := SrcWrite(Options{BufSize: 64 << 10})
	for _, row := range tb.Rows() {
		prev := parse(t, row[1]) // bpq1, normalized to itself = 1.0
		if prev != 1.0 {
			t.Fatalf("normalization broken: %v", prev)
		}
		vals := make([]float64, 0, 5)
		for i := 1; i < len(row); i++ {
			vals = append(vals, parse(t, row[i]))
		}
		// 1 → 2 entries is the big win (the paper reports 35%).
		if vals[1] > vals[0]*0.85 {
			t.Errorf("%s: bpq2 (%.3f) should be well below bpq1 (%.3f)", row[0], vals[1], vals[0])
		}
		// Monotone through 8 entries; 16 may regress slightly from DRAM
		// contention (the paper, too, found 16 worth only ~2% over 8).
		for i := 2; i < 4; i++ {
			if vals[i] > vals[i-1]*1.05 {
				t.Errorf("%s: bpq%d (%.3f) slower than bpq%d (%.3f)",
					row[0], BPQEntries()[i], vals[i], BPQEntries()[i-1], vals[i-1])
			}
		}
		if vals[4] > vals[3]*1.2 {
			t.Errorf("%s: bpq16 (%.3f) regressed too far from bpq8 (%.3f)", row[0], vals[4], vals[3])
		}
		gain12 := vals[0] - vals[1]
		gain816 := vals[3] - vals[4]
		if gain816 > gain12 {
			t.Errorf("%s: diminishing returns violated (1→2: %.3f, 8→16: %.3f)", row[0], gain12, gain816)
		}
	}
}
