package workloads

import (
	"mcsquare/internal/config"
)

// Info is one catalog entry: a runnable workload family plus the
// capabilities it needs from its copy mechanism. The supported-mechanism
// sets the CLIs print and enforce are computed against the mechanism
// registry (config.MechanismsFor), not hardcoded — a new mechanism that
// declares the right capabilities appears everywhere at once.
type Info struct {
	Name    string
	Summary string
	// Needs are the capabilities a mechanism must declare to drive this
	// workload.
	Needs []config.Capability
	// Note explains a restriction in -list output and rejection messages.
	Note string
}

// Catalog lists every CLI-runnable workload family in presentation order.
func Catalog() []Info {
	return []Info{
		{
			Name:    "protobuf",
			Summary: "protobuf merge loop (Fig 14)",
			Needs:   []config.Capability{config.CapCopier},
		},
		{
			Name:    "mongo",
			Summary: "MongoDB-style document inserts (Fig 15)",
			Needs:   []config.Capability{config.CapCopier},
		},
		{
			Name:    "mvcc",
			Summary: "Cicada-style MVCC version copies (Fig 16/17)",
			Needs:   []config.Capability{config.CapKernel, config.CapSharedMem},
			Note:    "no zio: the paper could not run zIO on Cicada (MAP_SHARED); neither do we",
		},
		{
			Name:    "pipe",
			Summary: "Linux pipe transfers with lazy kernel buffer copies (Fig 19)",
			Needs:   []config.Capability{config.CapKernel},
		},
		{
			Name:    "hugecow",
			Summary: "huge-page COW write latency after fork (Fig 18)",
			Needs:   []config.Capability{config.CapKernel},
		},
	}
}

// Find returns the catalog entry for a name.
func Find(name string) (Info, bool) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, true
		}
	}
	return Info{}, false
}

// Names returns every catalog name in presentation order.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, w := range cat {
		names[i] = w.Name
	}
	return names
}

// Mechanisms returns the registered mechanism names that support this
// workload's capability needs.
func (w Info) Mechanisms() []string { return config.MechanismsFor(w.Needs) }

// SupportsMechanism reports whether the named registered mechanism can
// drive this workload.
func (w Info) SupportsMechanism(name string) bool {
	m, ok := config.LookupMechanism(name)
	return ok && m.Supports(w.Needs)
}
