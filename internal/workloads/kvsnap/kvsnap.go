// Package kvsnap is an integration workload beyond the paper's figures: a
// Redis-style in-memory key-value store that serves writes while taking
// fork-based snapshots (the virtual-memory snapshotting of §II-C). With
// huge pages and the native kernel, every post-snapshot write risks a 2 MB
// copy-on-write fault — the latency spikes that make Redis advise against
// huge pages. The (MC)² kernel turns those copies into MCLAZY.
package kvsnap

import (
	"math/rand"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/oskern"
	"mcsquare/internal/stats"
)

// Config parameterizes one run.
type Config struct {
	StoreBytes   uint64 // huge-page-backed store (default 32 MB)
	ValueSize    uint64 // bytes per value (default 1 KB)
	Ops          int    // write operations (default 300)
	SnapshotEach int    // fork a snapshot every N ops (default 100)
	LazyCOW      bool   // the (MC)² kernel
	Seed         int64
	// Machine is the base machine (a config.MachineSpec lowering); nil
	// uses machine.DefaultParams(). MemSize is resized to fit the store
	// either way.
	Machine *machine.Params
}

func (c Config) withDefaults() Config {
	if c.StoreBytes == 0 {
		c.StoreBytes = 32 << 20
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1 << 10
	}
	if c.Ops == 0 {
		c.Ops = 300
	}
	if c.SnapshotEach == 0 {
		c.SnapshotEach = 100
	}
	return c
}

// Result carries the per-write latency distribution.
type Result struct {
	Latencies *stats.Histogram // cycles per write
	Snapshots int
	COWFaults uint64
}

// Run executes the store on a fresh machine.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	p := machine.DefaultParams()
	if cfg.Machine != nil {
		p = *cfg.Machine
	}
	p.MemSize = cfg.StoreBytes*4 + (128 << 20)
	m := machine.New(p)
	k := oskern.New(m)
	k.LazyCOW = cfg.LazyCOW

	as := k.NewAddressSpace()
	base := memdata.VAddr(1 << 32)
	as.MapRegion(base, cfg.StoreBytes, true)

	slots := cfg.StoreBytes / cfg.ValueSize
	rnd := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Latencies: &stats.Histogram{}}
	value := make([]byte, cfg.ValueSize)

	m.Run(func(c *cpu.Core) {
		// Populate the store so its pages are resident.
		for off := uint64(0); off < cfg.StoreBytes; off += memdata.PageSize {
			as.Store(c, base+memdata.VAddr(off), []byte{1})
		}
		c.Fence()
		for op := 0; op < cfg.Ops; op++ {
			if op%cfg.SnapshotEach == 0 {
				// Background snapshotter: in Redis this child would write
				// the RDB file; for latency purposes only the fork and the
				// COW protection matter.
				as.Fork(c)
				res.Snapshots++
			}
			slot := uint64(rnd.Intn(int(slots)))
			rnd.Read(value[:16])
			t0 := c.Now()
			as.Store(c, base+memdata.VAddr(slot*cfg.ValueSize), value)
			c.Fence()
			res.Latencies.Add(float64(c.Now() - t0))
		}
	})
	res.COWFaults = k.M.Metrics.CounterValue("oskern.huge_cow_faults")
	return res
}
