package kvsnap

import "testing"

func quick(lazy bool) Config {
	return Config{StoreBytes: 8 << 20, Ops: 60, SnapshotEach: 30, LazyCOW: lazy, Seed: 9}
}

func TestSnapshotsCauseFaults(t *testing.T) {
	res := Run(quick(false))
	if res.Snapshots != 2 {
		t.Fatalf("Snapshots = %d", res.Snapshots)
	}
	if res.COWFaults == 0 {
		t.Fatal("no COW faults despite post-snapshot writes")
	}
	if res.Latencies.N() != 60 {
		t.Fatalf("measured %d writes", res.Latencies.N())
	}
}

// TestLazyKernelKillsTailLatency is the Redis story: the native kernel's
// p99/median write-latency ratio explodes under huge-page snapshots; the
// (MC)² kernel keeps the tail within a small factor of the median.
func TestLazyKernelKillsTailLatency(t *testing.T) {
	native := Run(quick(false))
	lazy := Run(quick(true))
	nTail := native.Latencies.Percentile(99) / native.Latencies.Percentile(50)
	lTail := lazy.Latencies.Percentile(99) / lazy.Latencies.Percentile(50)
	t.Logf("p99/p50: native=%.0fx lazy=%.1fx (max: native=%.0f lazy=%.0f cycles)",
		nTail, lTail, native.Latencies.Max(), lazy.Latencies.Max())
	if nTail < 20 {
		t.Errorf("native tail ratio %.1f too small; huge COW spikes missing", nTail)
	}
	if lTail > nTail/10 {
		t.Errorf("lazy kernel tail ratio %.1f not ≥10x better than native %.1f", lTail, nTail)
	}
	if lazy.Latencies.Max()*10 >= native.Latencies.Max() {
		t.Errorf("worst case: lazy %.0f not ≥10x below native %.0f",
			lazy.Latencies.Max(), native.Latencies.Max())
	}
}

func TestDeterminism(t *testing.T) {
	a, b := Run(quick(true)), Run(quick(true))
	if a.Latencies.Max() != b.Latencies.Max() || a.COWFaults != b.COWFaults {
		t.Fatal("non-deterministic runs")
	}
}
