package oswl

import "testing"

func TestHugeCOWLatencyShape(t *testing.T) {
	cfg := HugeCOWConfig{RegionBytes: 16 << 20, Accesses: 40, Seed: 1}
	native := HugeCOW(cfg)
	cfg.Lazy = true
	lazy := HugeCOW(cfg)
	if len(native) != 40 || len(lazy) != 40 {
		t.Fatalf("lengths: %d, %d", len(native), len(lazy))
	}
	maxOf := func(xs []uint64) uint64 {
		m := uint64(0)
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	nMax, lMax := maxOf(native), maxOf(lazy)
	t.Logf("worst-case fault latency: native=%d lazy=%d (%.0fx lower)", nMax, lMax, float64(nMax)/float64(lMax))
	// Fig 18: the paper reports up to 250x lower worst-case latency; at
	// our scale we require at least an order of magnitude.
	if lMax*10 >= nMax {
		t.Fatalf("lazy worst case %d not ≥10x below native %d", lMax, nMax)
	}
}

func TestPipeThroughputShape(t *testing.T) {
	// Fig 19: lazy pipes roughly double throughput at larger transfers.
	for _, size := range []uint64{4 << 10, 16 << 10} {
		native := PipeThroughput(PipeConfig{TransferSize: size, Transfers: 24})
		lazy := PipeThroughput(PipeConfig{TransferSize: size, Transfers: 24, Lazy: true})
		t.Logf("%dKB: native=%.0f lazy=%.0f B/kcycle (%.2fx)", size>>10, native, lazy, lazy/native)
		if lazy <= native {
			t.Fatalf("%d: lazy (%.0f) not above native (%.0f)", size, lazy, native)
		}
	}
	// The gain at 16KB must exceed the gain at 1KB (syscall-dominated).
	small := PipeThroughput(PipeConfig{TransferSize: 1 << 10, Transfers: 24, Lazy: true}) /
		PipeThroughput(PipeConfig{TransferSize: 1 << 10, Transfers: 24})
	big := PipeThroughput(PipeConfig{TransferSize: 16 << 10, Transfers: 24, Lazy: true}) /
		PipeThroughput(PipeConfig{TransferSize: 16 << 10, Transfers: 24})
	t.Logf("gain: 1KB=%.2fx 16KB=%.2fx", small, big)
	if big <= small {
		t.Fatalf("lazy gain should grow with transfer size (1KB %.2fx vs 16KB %.2fx)", small, big)
	}
}
