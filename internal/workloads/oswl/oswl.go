// Package oswl implements the paper's operating-system experiments:
// huge-page copy-on-write fault latency after fork (Fig 18) and pipe
// transfer throughput with lazy kernel buffer copies (Fig 19).
package oswl

import (
	"math/rand"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/oskern"
	"mcsquare/internal/sim"
)

// HugeCOWConfig parameterizes the Fig 18 experiment.
type HugeCOWConfig struct {
	RegionBytes uint64 // huge-page region snapshotted by fork (paper: 64 MB)
	Accesses    int    // random 8-byte updates measured (paper plots 100)
	Lazy        bool   // the modified kernel: MCLAZY in copy_user_huge_page
	Seed        int64
	// Machine is the base machine (a config.MachineSpec lowering); nil
	// uses machine.DefaultParams(). MemSize is resized to fit the region
	// either way.
	Machine *machine.Params
}

func (c HugeCOWConfig) withDefaults() HugeCOWConfig {
	if c.RegionBytes == 0 {
		c.RegionBytes = 64 << 20
	}
	if c.Accesses == 0 {
		c.Accesses = 100
	}
	return c
}

// HugeCOW runs the Fig 18 experiment: map a huge-page region, fork, then
// update random 8-byte elements, recording each update's latency in cycles
// (the RDTSC measurement of §V-B). Returns the per-access latencies in
// access order.
func HugeCOW(cfg HugeCOWConfig) []uint64 {
	cfg = cfg.withDefaults()
	p := machine.DefaultParams()
	if cfg.Machine != nil {
		p = *cfg.Machine
	}
	p.MemSize = cfg.RegionBytes*3 + (64 << 20)
	m := machine.New(p)
	k := oskern.New(m)
	k.LazyCOW = cfg.Lazy

	as := k.NewAddressSpace()
	base := memdata.VAddr(1 << 31)
	as.MapRegion(base, cfg.RegionBytes, true)

	lat := make([]uint64, 0, cfg.Accesses)
	rnd := rand.New(rand.NewSource(cfg.Seed + 9))
	m.Run(func(c *cpu.Core) {
		// Touch the region so it is resident (the in-memory database).
		for off := uint64(0); off < cfg.RegionBytes; off += memdata.PageSize {
			c.LoadAsync(as.Translate(c, base+memdata.VAddr(off), false), 8)
		}
		c.Fence()
		as.Fork(c) // concurrent snapshot (virtual memory snapshotting)
		for i := 0; i < cfg.Accesses; i++ {
			off := uint64(rnd.Intn(int(cfg.RegionBytes/8))) * 8
			t0 := c.Now()
			as.Store(c, base+memdata.VAddr(off), []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})
			c.Fence()
			lat = append(lat, uint64(c.Now()-t0))
		}
	})
	return lat
}

// PipeConfig parameterizes the Fig 19 experiment.
type PipeConfig struct {
	TransferSize uint64 // bytes per write/read pair (Fig 19 x-axis)
	Transfers    int    // pairs measured (default 64)
	Lazy         bool   // lazy pipe copies + MCFREE of consumed buffers
	Seed         int64
	// Machine is the base machine (a config.MachineSpec lowering); nil
	// uses machine.DefaultParams().
	Machine *machine.Params
}

func (c PipeConfig) withDefaults() PipeConfig {
	if c.TransferSize == 0 {
		c.TransferSize = 4 << 10
	}
	if c.Transfers == 0 {
		c.Transfers = 64
	}
	return c
}

// PipeThroughput runs the Fig 19 experiment: a producer writes
// TransferSize bytes into a pipe and a consumer reads them out, repeatedly.
// Returns throughput in bytes per kilocycle.
func PipeThroughput(cfg PipeConfig) float64 {
	cfg = cfg.withDefaults()
	p := machine.DefaultParams()
	if cfg.Machine != nil {
		p = *cfg.Machine
	}
	m := machine.New(p)
	k := oskern.New(m)
	k.LazyPipes = cfg.Lazy
	k.FreePipeBuffers = cfg.Lazy

	pipe := k.NewPipe(64 << 10)
	user := m.AllocPage(cfg.TransferSize + memdata.PageSize)
	out := m.AllocPage(cfg.TransferSize + memdata.PageSize)
	m.FillRandom(user, cfg.TransferSize, cfg.Seed+3)

	var dur sim.Cycle
	m.Run(func(c *cpu.Core) {
		start := c.Now()
		for i := 0; i < cfg.Transfers; i++ {
			// The producer regenerates part of the message each iteration
			// (touching the user buffer keeps the source cache state
			// realistic), then transfers it.
			c.Store(user, []byte{byte(i)})
			sent := uint64(0)
			for sent < cfg.TransferSize {
				sent += pipe.Write(c, user+memdata.Addr(sent), cfg.TransferSize-sent)
			}
			got := uint64(0)
			for got < cfg.TransferSize {
				got += pipe.Read(c, out+memdata.Addr(got), cfg.TransferSize-got)
			}
		}
		dur = c.Now() - start
	})
	total := float64(cfg.TransferSize) * float64(cfg.Transfers)
	return total / (float64(dur) / 1000.0)
}
