// Package mvcc models the paper's Cicada-style multi-version concurrency
// control experiment (§V-B, Figs 16, 17, 22): a table of 8 KB rows under a
// 50:50 read/update transaction mix, where every update first copies the
// tuple to a new version and then modifies a configurable fraction of it.
//
// (MC)² lets the version copy be lazy, so an update pays memory traffic
// only for the fraction it actually modifies — the paper's tuple-wise
// copying with sub-tuple cost.
package mvcc

import (
	"math/rand"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/softmc"
	"mcsquare/internal/stats"
)

// Mode selects how updates write the modified fraction.
type Mode int

// Update modes (Fig 16 uses RMW; Fig 17 uses the write-only pair).
const (
	RMW         Mode = iota // read-modify-write: load then store each touched line
	WriteOnly               // plain stores (RFO reads the line first)
	WriteOnlyNT             // non-temporal stores (no RFO)
)

// Config parameterizes one run.
type Config struct {
	Threads        int     // cores running transactions (paper: 1 and 8)
	Rows           int     // table size (default 512)
	RowSize        uint64  // bytes per tuple (paper: 8 KB)
	OpsPerThread   int     // transactions per thread (default 400)
	UpdateFraction float64 // fraction of the tuple modified (Fig 16/17 x-axis)
	Mode           Mode
	Lazy           bool // version copies via memcpy_lazy
	Seed           int64
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Rows == 0 {
		c.Rows = 512
	}
	if c.RowSize == 0 {
		c.RowSize = 8 << 10
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 400
	}
	if c.UpdateFraction == 0 {
		c.UpdateFraction = 0.0625
	}
	return c
}

// Result reports transaction throughput.
type Result struct {
	Cycles    sim.Cycle
	Ops       int
	Latencies *stats.Histogram // per-transaction cycles, in commit order
}

// ThroughputKOps returns committed transactions per second, in thousands,
// at the simulated 4 GHz clock.
func (r Result) ThroughputKOps() float64 {
	return r.ThroughputKOpsAt(stats.DefaultClock)
}

// ThroughputKOpsAt is the clock-aware ThroughputKOps: committed
// transactions per second, in thousands, at the given core clock.
func (r Result) ThroughputKOpsAt(clock stats.Clock) float64 {
	if r.Cycles == 0 {
		return 0
	}
	seconds := float64(r.Cycles) / clock.CyclesPerSecond()
	return float64(r.Ops) / seconds / 1e3
}

// NewMachine builds a machine for the workload; mutate may adjust
// parameters (parallel-free sweeps) and may be nil.
func NewMachine(lazy bool, mutate func(*machine.Params)) *machine.Machine {
	p := machine.DefaultParams()
	p.LazyEnabled = lazy
	if mutate != nil {
		mutate(&p)
	}
	return NewMachineFrom(p)
}

// NewMachineFrom builds the workload's machine from fully lowered params
// (a config.MachineSpec lowering); this workload needs no extra sizing.
func NewMachineFrom(p machine.Params) *machine.Machine {
	return machine.New(p)
}

// Run executes the transaction mix and returns aggregate throughput.
// Rows are partitioned across threads (Cicada-style per-core ownership).
func Run(m *machine.Machine, cfg Config) Result {
	cfg = cfg.withDefaults()

	// Each row has two version buffers; updates copy current → spare and
	// swap, exactly the read-copy-update scheme of §II-B.
	cur := make([]memdata.Addr, cfg.Rows)
	spare := make([]memdata.Addr, cfg.Rows)
	for i := range cur {
		cur[i] = m.Alloc(cfg.RowSize, memdata.LineSize)
		spare[i] = m.Alloc(cfg.RowSize, memdata.LineSize)
		m.FillRandom(cur[i], cfg.RowSize, cfg.Seed+int64(i))
	}

	// Per-thread latency histograms merged after the run, so recording
	// order never depends on how the engine interleaves cores.
	lats := make([]stats.Histogram, cfg.Threads)
	workers := make([]func(c *cpu.Core), cfg.Threads)
	rowsPer := cfg.Rows / cfg.Threads
	for tIdx := 0; tIdx < cfg.Threads; tIdx++ {
		tIdx := tIdx
		workers[tIdx] = func(c *cpu.Core) {
			rnd := rand.New(rand.NewSource(cfg.Seed + int64(100+tIdx)))
			lo := tIdx * rowsPer
			touched := uint64(cfg.UpdateFraction * float64(cfg.RowSize))
			line := make([]byte, memdata.LineSize)
			for op := 0; op < cfg.OpsPerThread; op++ {
				t0 := c.Now()
				row := lo + rnd.Intn(rowsPer)
				if rnd.Intn(2) == 0 {
					// Read transaction: scan the current version.
					for off := uint64(0); off < cfg.RowSize; off += memdata.LineSize {
						c.LoadAsync(cur[row]+memdata.Addr(off), 8)
					}
					c.Fence()
					lats[tIdx].Add(float64(c.Now() - t0))
					continue
				}
				// Update transaction: version copy, then modify a fraction.
				dst, src := spare[row], cur[row]
				if cfg.Lazy {
					softmc.MemcpyLazy(c, dst, src, cfg.RowSize)
				} else {
					softmc.MemcpyEager(c, dst, src, cfg.RowSize)
				}
				for off := uint64(0); off < touched; off += memdata.LineSize {
					a := dst + memdata.Addr(off)
					switch cfg.Mode {
					case RMW:
						v := c.Load(a, 8)
						line[0] = v[0] + 1
						c.Store(a, line[:8])
					case WriteOnly:
						line[0] = byte(op)
						c.Store(a, line)
					case WriteOnlyNT:
						line[0] = byte(op)
						c.StoreNT(a, line)
					}
				}
				c.Fence()
				// Commit: swap version pointers.
				cur[row], spare[row] = spare[row], cur[row]
				lats[tIdx].Add(float64(c.Now() - t0))
			}
		}
	}
	cycles := m.Run(workers...)
	all := &stats.Histogram{}
	for i := range lats {
		for _, v := range lats[i].Samples() {
			all.Add(v)
		}
	}
	return Result{Cycles: cycles, Ops: cfg.Threads * cfg.OpsPerThread, Latencies: all}
}
