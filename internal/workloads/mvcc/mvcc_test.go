package mvcc

import "testing"

func quickCfg(lazy bool, frac float64, mode Mode, threads int) Config {
	return Config{
		Threads:        threads,
		Rows:           128,
		OpsPerThread:   60,
		UpdateFraction: frac,
		Mode:           mode,
		Lazy:           lazy,
		Seed:           5,
	}
}

// TestLowFractionRMWSpeedup reproduces the Fig 16 left side: with small
// update fractions, lazy tuple copies beat eager ones.
func TestLowFractionRMWSpeedup(t *testing.T) {
	base := Run(NewMachine(false, nil), quickCfg(false, 0.0625, RMW, 1))
	lazy := Run(NewMachine(true, nil), quickCfg(true, 0.0625, RMW, 1))
	bt, lt := base.ThroughputKOps(), lazy.ThroughputKOps()
	t.Logf("RMW 6.25%%: base=%.0f kOps/s lazy=%.0f kOps/s (%.0f%%)", bt, lt, (lt-bt)/bt*100)
	if lt <= bt {
		t.Fatalf("lazy throughput %.0f not above baseline %.0f at 6.25%% updates", lt, bt)
	}
}

// TestBenefitShrinksWithFraction: the lazy advantage at 100% updates must
// be smaller than at 6.25% (Fig 16's single-thread crossover).
func TestBenefitShrinksWithFraction(t *testing.T) {
	ratio := func(frac float64) float64 {
		base := Run(NewMachine(false, nil), quickCfg(false, frac, RMW, 1))
		lazy := Run(NewMachine(true, nil), quickCfg(true, frac, RMW, 1))
		return lazy.ThroughputKOps() / base.ThroughputKOps()
	}
	low, high := ratio(0.0625), ratio(1.0)
	t.Logf("speedup ratio: 6.25%%=%.2f 100%%=%.2f", low, high)
	if high >= low {
		t.Fatalf("lazy advantage should shrink with update fraction (%.2f -> %.2f)", low, high)
	}
}

// TestNTStoresHelpLazyWrites reproduces the Fig 17 nontemporal effect:
// with write-only updates, NT stores avoid the RFO read and improve the
// lazy variant.
func TestNTStoresHelpLazyWrites(t *testing.T) {
	wo := Run(NewMachine(true, nil), quickCfg(true, 0.5, WriteOnly, 1))
	nt := Run(NewMachine(true, nil), quickCfg(true, 0.5, WriteOnlyNT, 1))
	t.Logf("write-only=%.0f NT=%.0f kOps/s", wo.ThroughputKOps(), nt.ThroughputKOps())
	if nt.ThroughputKOps() <= wo.ThroughputKOps() {
		t.Fatalf("NT stores (%.0f) should beat RFO stores (%.0f) for lazy write-only updates",
			nt.ThroughputKOps(), wo.ThroughputKOps())
	}
}

// TestMultiThreadScales: 8 threads must complete more work per cycle than
// 1 thread (bandwidth-bound, not serialized).
func TestMultiThreadScales(t *testing.T) {
	one := Run(NewMachine(true, nil), quickCfg(true, 0.125, RMW, 1))
	eight := Run(NewMachine(true, nil), quickCfg(true, 0.125, RMW, 8))
	if eight.ThroughputKOps() <= one.ThroughputKOps()*2 {
		t.Fatalf("8 threads (%.0f) should be >2x 1 thread (%.0f)",
			eight.ThroughputKOps(), one.ThroughputKOps())
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(NewMachine(true, nil), quickCfg(true, 0.25, RMW, 4))
	b := Run(NewMachine(true, nil), quickCfg(true, 0.25, RMW, 4))
	if a.Cycles != b.Cycles {
		t.Fatalf("non-deterministic multi-thread run: %d vs %d", a.Cycles, b.Cycles)
	}
}
