// Package workloads groups the paper's application workloads (§V): the
// copy/access microbenchmarks, MongoDB-style document inserts, MVCC
// version copies, protobuf merges, the KV-store snapshot loop, and the
// OS-level COW/pipe experiments. The package itself holds only the
// cross-family smoke tests and their golden metric snapshots; each family
// lives in its own subpackage.
package workloads
