package workloads

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcsquare/internal/copykit"
	"mcsquare/internal/metrics"
	"mcsquare/internal/workloads/kvsnap"
	"mcsquare/internal/workloads/micro"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/oswl"
	"mcsquare/internal/workloads/protobuf"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// Every workload family gets a tiny-machine smoke run whose scalar results
// and full merged metric snapshot are pinned against a golden file. The
// runs are deterministic, so any drift — a changed default, a different
// event interleaving, a metric rename — shows up as a diff. After an
// intentional change: go test ./internal/workloads -run Golden -update
//
// The scalar header lines double as sanity floors (nonzero ops, nonzero
// cycles); the snapshot section pins the accounting.

// capture runs fn under a fresh ambient metrics collector and returns the
// workload's scalar lines followed by the merged snapshot of every machine
// fn built.
func capture(fn func(emit func(format string, args ...any))) string {
	col := metrics.NewCollector()
	release := col.Bind()
	defer release()

	var b strings.Builder
	fn(func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) })

	snap := col.Snapshot()
	for _, name := range snap.Names() {
		v := snap.Values[name]
		switch v.Kind {
		case metrics.KindCounter:
			fmt.Fprintf(&b, "%s counter %d\n", name, v.Count)
		case metrics.KindGauge:
			fmt.Fprintf(&b, "%s gauge %g\n", name, v.Value)
		case metrics.KindHistogram:
			fmt.Fprintf(&b, "%s histogram n=%d sum=%g\n", name, v.Count, v.Value)
		}
	}
	return b.String()
}

func checkGolden(t *testing.T, family, got string) {
	t.Helper()
	golden := filepath.Join("testdata", family+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from %s (rerun with -update if intentional):\nwant:\n%s\ngot:\n%s",
			family, golden, want, got)
	}
}

func TestKVSnapGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		r := kvsnap.Run(kvsnap.Config{
			StoreBytes: 4 << 20, ValueSize: 512, Ops: 30, SnapshotEach: 10,
			LazyCOW: true, Seed: 1,
		})
		if r.Snapshots == 0 || r.Latencies.N() == 0 {
			t.Fatalf("degenerate run: %+v", r)
		}
		emit("kvsnap snapshots %d cow_faults %d writes %d mean_cycles %.1f",
			r.Snapshots, r.COWFaults, r.Latencies.N(), r.Latencies.Mean())
	})
	checkGolden(t, "kvsnap", got)
}

func TestMicroGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		opt := micro.Options{MaxSize: 32 << 10, BufSize: 32 << 10, L2Size: 16 << 10}
		tab := micro.CopyLatencyRow(opt, 16<<10)
		emit("micro copy_latency_16k rows %d", tab.NumRows())
	})
	checkGolden(t, "micro", got)
}

func TestMongoGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		m := mongo.NewMachine(true)
		r := mongo.Run(m, mongo.Config{
			Inserts: 4, Fields: 4, FieldSize: 16 << 10, Seed: 1,
			IndexPrefix: 64, JournalAccess: 0.25,
			Copier: copykit.Lazy{Threshold: 1024},
		})
		if r.Cycles == 0 {
			t.Fatal("no simulated work")
		}
		emit("mongo cycles %d inserts %d", r.Cycles, r.Latencies.N())
	})
	checkGolden(t, "mongo", got)
}

func TestMVCCGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		m := mvcc.NewMachine(true, nil)
		r := mvcc.Run(m, mvcc.Config{
			Threads: 2, Rows: 32, RowSize: 2 << 10, OpsPerThread: 10,
			UpdateFraction: 0.5, Mode: mvcc.RMW, Lazy: true, Seed: 1,
		})
		if r.Ops == 0 || r.Cycles == 0 {
			t.Fatalf("degenerate run: %+v", r)
		}
		emit("mvcc cycles %d ops %d", r.Cycles, r.Ops)
	})
	checkGolden(t, "mvcc", got)
}

func TestOSWLGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		lat := oswl.HugeCOW(oswl.HugeCOWConfig{
			RegionBytes: 4 << 20, Accesses: 16, Lazy: true, Seed: 1,
		})
		if len(lat) == 0 {
			t.Fatal("no COW accesses measured")
		}
		emit("oswl hugecow accesses %d first %d last %d", len(lat), lat[0], lat[len(lat)-1])
		bw := oswl.PipeThroughput(oswl.PipeConfig{
			TransferSize: 16 << 10, Transfers: 8, Lazy: true, Seed: 1,
		})
		emit("oswl pipe bytes_per_kcycle %.2f", bw)
	})
	checkGolden(t, "oswl", got)
}

func TestProtobufGolden(t *testing.T) {
	got := capture(func(emit func(string, ...any)) {
		m := protobuf.NewMachine(true, nil)
		r := protobuf.Run(m, protobuf.Config{
			Ops: 32, Burst: 8, Seed: 1,
			Copier: copykit.Lazy{Threshold: 1024},
		})
		if r.Cycles == 0 || r.Copies == 0 {
			t.Fatalf("degenerate run: %+v", r)
		}
		emit("protobuf cycles %d copies %d copy_cycles %d", r.Cycles, r.Copies, r.CopyCycles)
	})
	checkGolden(t, "protobuf", got)
}
