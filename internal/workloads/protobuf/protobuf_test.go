package protobuf

import (
	"testing"

	"mcsquare/internal/copykit"
	"mcsquare/internal/oskern"
	"mcsquare/internal/zio"
)

func quickCfg(cp copykit.Copier) Config {
	return Config{Ops: 192, Burst: 64, Seed: 11, Copier: cp}
}

func TestBaselineHasCopyOverhead(t *testing.T) {
	m := NewMachine(false, nil)
	res := Run(m, quickCfg(copykit.Eager{}))
	if res.Copies == 0 || res.Cycles == 0 {
		t.Fatal("workload did nothing")
	}
	frac := float64(res.CopyCycles) / float64(res.Cycles)
	// Fig 2: Protobuf spends a large share of cycles in memcpy.
	if frac < 0.15 || frac > 0.95 {
		t.Fatalf("copy overhead fraction = %.2f; implausible", frac)
	}
	// Fig 3: a substantial share of copy accesses miss the cache.
	missRate := float64(res.CopyL1Misses) / float64(res.CopyAccesses)
	if missRate < 0.10 {
		t.Fatalf("copy miss rate = %.2f; corpus should exceed the L2", missRate)
	}
}

func TestMC2Speedup(t *testing.T) {
	base := Run(NewMachine(false, nil), quickCfg(copykit.Eager{}))
	mc2 := Run(NewMachine(true, nil), quickCfg(copykit.Lazy{Threshold: 1024}))
	if mc2.Cycles >= base.Cycles {
		t.Fatalf("(MC)² (%d) not faster than baseline (%d)", mc2.Cycles, base.Cycles)
	}
	speedup := float64(base.Cycles-mc2.Cycles) / float64(base.Cycles)
	t.Logf("runtime reduction: %.1f%% (paper: 43%%)", speedup*100)
	if speedup < 0.10 {
		t.Fatalf("runtime reduction only %.1f%%", speedup*100)
	}
}

func TestZIOGetsNoElision(t *testing.T) {
	m := NewMachine(false, nil)
	z := zio.New(oskern.New(m))
	res := Run(m, quickCfg(z))
	if z.Stats.ElidedPages != 0 {
		t.Fatalf("zIO elided %d pages; all protobuf copies are sub-page and unaligned", z.Stats.ElidedPages)
	}
	if res.Copies == 0 {
		t.Fatal("no copies ran")
	}
}

func TestSizesFollowFig4(t *testing.T) {
	m := NewMachine(false, nil)
	res := Run(m, quickCfg(copykit.Eager{}))
	// Median copy size must be 1 KB (the paper's 56% point straddles it).
	if med := res.Sizes.Percentile(50); med != 1024 {
		t.Fatalf("median copy size = %v, want 1024", med)
	}
	if res.Sizes.Max() > 4096 {
		t.Fatalf("max copy size = %v, want ≤4096", res.Sizes.Max())
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(NewMachine(true, nil), quickCfg(copykit.Lazy{Threshold: 1024}))
	b := Run(NewMachine(true, nil), quickCfg(copykit.Lazy{Threshold: 1024}))
	if a.Cycles != b.Cycles || a.CopyCycles != b.CopyCycles {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.CopyCycles, b.Cycles, b.CopyCycles)
	}
}
