// Package protobuf models the Fleetbench Protobuf workload the paper
// evaluates (§V-B): serialization/merge operations whose memcpy sizes
// follow the Fig 4 distribution (max 4 KB, ~56 % exactly 1 KB), issued in
// bursts with a fraction of the copied data accessed afterwards.
//
// Field copies land at unaligned offsets (message headers sit between
// fields), so no copy ever covers a full page — the property that leaves
// zIO with nothing to elide (Fig 14) while (MC)²'s cacheline-granularity
// laziness still applies.
package protobuf

import (
	"fmt"
	"math/rand"

	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
	"mcsquare/internal/trace"
)

// Config parameterizes one run.
type Config struct {
	Ops   int   // merge operations (default 768)
	Burst int   // merges issued back-to-back before the access phase (default 256)
	Seed  int64 // RNG seed

	MinFields, MaxFields int       // fields per message (default 4..12)
	AccessFraction       float64   // fraction of merged fields read afterwards (default 0.4)
	UpdateFraction       float64   // fraction of merged fields overwritten (default 0.1)
	ComputePerOp         sim.Cycle // non-copy work per operation (default 600)

	Copier copykit.Copier
}

func (c Config) withDefaults() Config {
	if c.Ops == 0 {
		c.Ops = 768
	}
	if c.Burst == 0 {
		c.Burst = 256
	}
	if c.MinFields == 0 {
		c.MinFields = 4
	}
	if c.MaxFields == 0 {
		c.MaxFields = 12
	}
	if c.AccessFraction == 0 {
		c.AccessFraction = 0.4
	}
	if c.UpdateFraction == 0 {
		c.UpdateFraction = 0.1
	}
	if c.ComputePerOp == 0 {
		c.ComputePerOp = 600
	}
	if c.Copier == nil {
		c.Copier = copykit.Eager{}
	}
	return c
}

// Result holds the measurements a run produces.
type Result struct {
	Cycles     sim.Cycle // total runtime
	CopyCycles uint64    // cycles spent inside memcpy calls (Fig 2)
	Copies     uint64
	CopiedByte uint64
	Sizes      *stats.Histogram // copy sizes (Fig 4)
	Latencies  *stats.Histogram // per-merge-op cycles (field copies + compute), in issue order

	// Fig 3 counters, sampled over the copy phases only.
	CopyAccesses  uint64 // loads + stores issued during copies
	CopyL1Misses  uint64
	CopyWindowStl uint64 // cycles fully stalled (window + fence) during copies
	CopyIssue     uint64 // cycles spent issuing during copies
}

const headerBytes = 9 // wire-format tag + length between fields

// Run executes the workload on core 0 of m.
func Run(m *machine.Machine, cfg Config) Result {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	sizes := trace.NewFig4Sampler(cfg.Seed + 1)
	res := Result{Sizes: &stats.Histogram{}, Latencies: &stats.Histogram{}}

	// Source corpus: enough messages that field reads miss the L2, as the
	// paper's trace-driven runs do (>25% miss rate during memcpy, Fig 3).
	const corpusBytes = 8 << 20
	corpus := m.AllocPage(corpusBytes)
	m.FillRandom(corpus, corpusBytes, cfg.Seed+2)

	type field struct {
		off  memdata.Addr // destination offset
		size uint64
	}

	m.Run(func(c *cpu.Core) {
		// Per-copy interval accounting reads single named metrics from the
		// machine registry (a full Snapshot per copy would be wasteful).
		pre := fmt.Sprintf("cpu%d.", c.ID)
		cnt := m.Metrics.CounterValue
		accesses := func() uint64 { return cnt(pre+"loads") + cnt(pre+"stores") }
		stalls := func() uint64 {
			return cnt(pre+"window_stall") + cnt(pre+"fence_stall") + cnt(pre+"dep_stall")
		}
		start := c.Now()
		opsLeft := cfg.Ops
		for opsLeft > 0 {
			burst := min(cfg.Burst, opsLeft)
			opsLeft -= burst

			// Merge phase: copy fields from the corpus into fresh arenas.
			arena := m.Alloc(uint64(burst)*16<<10, memdata.LineSize)
			cursor := arena
			merged := make([][]field, burst)
			for op := 0; op < burst; op++ {
				op0 := c.Now()
				nf := cfg.MinFields + rnd.Intn(cfg.MaxFields-cfg.MinFields+1)
				for f := 0; f < nf; f++ {
					size := sizes.Sample()
					src := corpus + memdata.Addr(rnd.Intn(corpusBytes-int(size)))
					cursor += headerBytes // wire header: keeps offsets unaligned
					res.Sizes.Add(float64(size))
					res.Copies++
					res.CopiedByte += size

					acc0, miss0 := accesses(), cnt("l1.misses")
					stall0 := stalls()
					issue0 := cnt(pre + "issue_cycles")
					t0 := c.Now()
					cfg.Copier.Memcpy(c, cursor, src, size)
					res.CopyCycles += uint64(c.Now() - t0)
					res.CopyAccesses += accesses() - acc0
					res.CopyL1Misses += cnt("l1.misses") - miss0
					res.CopyWindowStl += stalls() - stall0
					res.CopyIssue += cnt(pre+"issue_cycles") - issue0

					merged[op] = append(merged[op], field{off: cursor, size: size})
					cursor += memdata.Addr(size)
				}
				c.Compute(cfg.ComputePerOp)
				res.Latencies.Add(float64(c.Now() - op0))
			}

			// Access phase: deserialize a fraction of what was merged.
			for op := 0; op < burst; op++ {
				for _, f := range merged[op] {
					switch {
					case rnd.Float64() < cfg.UpdateFraction:
						cfg.Copier.Write(c, f.off, []byte{0x42, 0x43})
					case rnd.Float64() < cfg.AccessFraction:
						for off := uint64(0); off < f.size; off += memdata.LineSize {
							cfg.Copier.ReadAsync(c, f.off+memdata.Addr(off), 8)
						}
					}
				}
			}
			c.Fence()
		}
		res.Cycles = c.Now() - start
	})
	return res
}

// NewMachine builds the standard machine for this workload; mutate may
// adjust parameters (CTT sweeps) and may be nil.
func NewMachine(lazy bool, mutate func(*machine.Params)) *machine.Machine {
	p := machine.DefaultParams()
	p.LazyEnabled = lazy
	if mutate != nil {
		mutate(&p)
	}
	return NewMachineFrom(p)
}

// NewMachineFrom builds the workload's machine from fully lowered params
// (a config.MachineSpec lowering); this workload needs no extra sizing.
func NewMachineFrom(p machine.Params) *machine.Machine {
	return machine.New(p)
}
