package mongo

import (
	"testing"

	"mcsquare/internal/copykit"
	"mcsquare/internal/oskern"
	"mcsquare/internal/zio"
)

func quickCfg(cp copykit.Copier) Config {
	return Config{Inserts: 6, Fields: 4, FieldSize: 32 << 10, Seed: 3, Copier: cp}
}

func TestInsertLatencyOrdering(t *testing.T) {
	// Fig 15: (MC)² speeds inserts up; zIO slows them down.
	base := Run(NewMachine(false), quickCfg(copykit.Eager{}))
	mc2 := Run(NewMachine(true), quickCfg(copykit.Lazy{Threshold: 1024}))
	zm := NewMachine(false)
	z := zio.New(oskern.New(zm))
	zr := Run(zm, quickCfg(z))

	bl, ml, zl := base.Latencies.Mean(), mc2.Latencies.Mean(), zr.Latencies.Mean()
	t.Logf("insert latency: base=%.0f mc2=%.0f (%.1f%%) zio=%.0f (%+.1f%%)",
		bl, ml, (bl-ml)/bl*100, zl, (zl-bl)/bl*100)
	if ml >= bl {
		t.Errorf("(MC)² insert latency %.0f not below baseline %.0f", ml, bl)
	}
	if zl <= bl {
		t.Errorf("zIO insert latency %.0f should exceed baseline %.0f (copy-on-access faults)", zl, bl)
	}
	if z.Stats.Faults == 0 {
		t.Error("zIO took no faults despite journal reads")
	}
	if z.Stats.ElidedPages == 0 {
		t.Error("zIO elided nothing despite 32KB page-aligned copies")
	}
}

func TestInsertsAreMeasured(t *testing.T) {
	res := Run(NewMachine(false), quickCfg(copykit.Eager{}))
	if res.Latencies.N() != 6 {
		t.Fatalf("measured %d inserts", res.Latencies.N())
	}
	if res.AvgInsertMs() <= 0 {
		t.Fatal("zero insert latency")
	}
}
