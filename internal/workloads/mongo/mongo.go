// Package mongo models the paper's MongoDB experiment (§V-B, Fig 15): the
// YCSB load phase with 10 fields of 100 KB per insert. Each insert moves
// its document through the store's copy pipeline — receive buffer →
// document storage → journal — then the indexing and journaling paths read
// the copied data back.
//
// That copy-then-access pattern is the experiment's point: zIO elides the
// large page-aligned copies but then faults on every journal page it reads
// (slowing inserts), while (MC)² pays only bounces that prefetching hides.
package mongo

import (
	"math/rand"

	"mcsquare/internal/copykit"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
)

// Config parameterizes one load phase.
type Config struct {
	Inserts   int    // documents inserted (paper: 50)
	Fields    int    // fields per document (paper: 10)
	FieldSize uint64 // bytes per field (paper: 100 KB)
	Seed      int64

	// IndexPrefix is how many bytes of each field the B-tree index reads
	// to build its keys.
	IndexPrefix uint64
	// JournalAccess is the fraction of the journaled document the commit
	// path touches (sequential read, as a disk write() would).
	JournalAccess float64

	Copier copykit.Copier
}

func (c Config) withDefaults() Config {
	if c.Inserts == 0 {
		c.Inserts = 50
	}
	if c.Fields == 0 {
		c.Fields = 10
	}
	if c.FieldSize == 0 {
		c.FieldSize = 100 << 10
	}
	if c.IndexPrefix == 0 {
		c.IndexPrefix = 1 << 10
	}
	if c.JournalAccess == 0 {
		c.JournalAccess = 1.0
	}
	if c.Copier == nil {
		c.Copier = copykit.Eager{}
	}
	return c
}

// Result reports insert latencies.
type Result struct {
	Cycles    sim.Cycle
	Latencies *stats.Histogram // per-insert cycles
}

// AvgInsertMs returns the mean insert latency in milliseconds.
func (r Result) AvgInsertMs() float64 {
	return r.AvgInsertMsAt(stats.DefaultClock)
}

// AvgInsertMsAt is the clock-aware AvgInsertMs.
func (r Result) AvgInsertMsAt(clock stats.Clock) float64 {
	return clock.CyclesToMs(uint64(r.Latencies.Mean()))
}

// NewMachine builds a machine sized for this workload.
func NewMachine(lazy bool) *machine.Machine {
	p := machine.DefaultParams()
	p.LazyEnabled = lazy
	return NewMachineFrom(p)
}

// NewMachineFrom builds the workload's machine from fully lowered params.
// Workload sizing layers on top of the spec: the collection and journal
// need ~768 MB of backing store, so smaller configured memories (the
// Table I default is 256 MB) are raised to fit.
func NewMachineFrom(p machine.Params) *machine.Machine {
	if p.MemSize < 768<<20 {
		p.MemSize = 768 << 20
	}
	return machine.New(p)
}

// Run executes the load phase on core 0.
func Run(m *machine.Machine, cfg Config) Result {
	cfg = cfg.withDefaults()
	rnd := rand.New(rand.NewSource(cfg.Seed))
	res := Result{Latencies: &stats.Histogram{}}

	docBytes := uint64(cfg.Fields) * cfg.FieldSize
	// The journal is a recycled ring, as MongoDB's is.
	journal := m.AllocPage(2 * docBytes)
	jOff := uint64(0)

	m.Run(func(c *cpu.Core) {
		start := c.Now()
		for ins := 0; ins < cfg.Inserts; ins++ {
			t0 := c.Now()

			// Receive: the client's document lands in a fresh buffer via
			// DMA (contents in memory, cold in cache).
			recv := m.AllocPage(docBytes)
			m.FillRandom(recv, docBytes, cfg.Seed+int64(ins))

			// Store: copy each field into the collection's storage.
			store := m.AllocPage(docBytes)
			for f := 0; f < cfg.Fields; f++ {
				off := memdata.Addr(uint64(f) * cfg.FieldSize)
				cfg.Copier.Memcpy(c, store+off, recv+off, cfg.FieldSize)
			}

			// Index: read each stored field's key prefix into the B-tree.
			for f := 0; f < cfg.Fields; f++ {
				off := store + memdata.Addr(uint64(f)*cfg.FieldSize)
				for b := uint64(0); b < cfg.IndexPrefix; b += memdata.LineSize {
					cfg.Copier.ReadAsync(c, off+memdata.Addr(b), 8)
				}
			}
			c.Fence()
			// B-tree bookkeeping (node splits, comparisons).
			c.Compute(sim.Cycle(2000 + rnd.Intn(500)))

			// Journal: copy the document into the ring, then the commit
			// path streams it out (every touched page is read).
			jDst := journal + memdata.Addr(jOff)
			cfg.Copier.Memcpy(c, jDst, store, docBytes)
			touched := uint64(cfg.JournalAccess * float64(docBytes))
			for b := uint64(0); b < touched; b += memdata.LineSize {
				cfg.Copier.ReadAsync(c, jDst+memdata.Addr(b), 8)
			}
			c.Fence()
			// The flushed span is dead once "written to disk".
			cfg.Copier.Free(c, memdata.Range{Start: jDst, Size: docBytes})
			jOff = (jOff + docBytes) % (2 * docBytes)

			res.Latencies.Add(float64(c.Now() - t0))
		}
		res.Cycles = c.Now() - start
	})
	return res
}
