// Package oskern simulates the operating-system pieces the paper's
// evaluation depends on: virtual address spaces with 4 KB and 2 MB pages,
// fork with copy-on-write faults (Fig 18), pipe buffers with user/kernel
// copies (Fig 19), and the cost model for syscalls, faults, and TLB
// shootdowns that the zIO baseline also uses.
//
// Kernel code runs inline on the calling core's process: fault handlers
// charge their fixed costs with Compute and perform their copies through
// the same simulated memory hierarchy as user code.
package oskern

import (
	"mcsquare/internal/machine"
	"mcsquare/internal/metrics"
	"mcsquare/internal/sim"
	"mcsquare/internal/stats"
)

// Params is the kernel cost model (cycles at 4 GHz).
type Params struct {
	SyscallCost   sim.Cycle // user/kernel transition, entry + exit
	FaultCost     sim.Cycle // page-fault trap, handler dispatch, return
	ShootdownCost sim.Cycle // one TLB shootdown round (IPIs + waits)
	PTECost       sim.Cycle // update one page-table entry
}

// DefaultParams uses costs typical of a Skylake-class server running
// Linux: ~250 ns syscalls, ~600 ns fault round trips, ~1.5 µs shootdowns.
func DefaultParams() Params {
	return Params{
		SyscallCost:   1000,
		FaultCost:     2400,
		ShootdownCost: 6000,
		PTECost:       40,
	}
}

// Stats counts kernel activity.
type Stats struct {
	Forks         uint64
	COWFaults     uint64 // 4 KB copy-on-write faults
	HugeCOWFaults uint64 // 2 MB copy-on-write faults
	PipeWrites    uint64
	PipeReads     uint64
	Syscalls      uint64
	FaultCycles   uint64 // total cycles spent inside fault handlers
}

// Kernel bundles the cost model with the policy switches the paper's
// modified kernel adds.
type Kernel struct {
	M *machine.Machine
	P Params

	// LazyCOW makes copy_user_huge_page (and its 4 KB sibling) use MCLAZY
	// instead of an eager copy — the paper's Fig 18 kernel modification.
	LazyCOW bool
	// LazyPipes makes pipe_read/pipe_write use lazy copies (Fig 19).
	LazyPipes bool
	// FreePipeBuffers issues MCFREE for consumed kernel pipe buffers, so
	// fully forwarded data is never copied at all (§III-C's munmap-style
	// use of MCFREE).
	FreePipeBuffers bool

	Stats Stats
	// FaultLat samples per-COW-fault latency in cycles.
	FaultLat stats.Histogram
}

// New creates a kernel over the machine with default costs and publishes
// its counters into the machine's registry under "oskern". At most one
// kernel exists per machine, so the registration cannot collide.
func New(m *machine.Machine) *Kernel {
	k := &Kernel{M: m, P: DefaultParams()}
	k.PublishMetrics(m.Metrics.Scope("oskern"))
	return k
}

// PublishMetrics registers the kernel's counters under the given scope.
func (k *Kernel) PublishMetrics(s metrics.Scope) {
	s.Counter("forks", &k.Stats.Forks)
	s.Counter("cow_faults", &k.Stats.COWFaults)
	s.Counter("huge_cow_faults", &k.Stats.HugeCOWFaults)
	s.Counter("pipe_writes", &k.Stats.PipeWrites)
	s.Counter("pipe_reads", &k.Stats.PipeReads)
	s.Counter("syscalls", &k.Stats.Syscalls)
	s.Counter("fault_cycles", &k.Stats.FaultCycles)
	s.Histogram("fault_latency", &k.FaultLat)
}
