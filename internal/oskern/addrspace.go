package oskern

import (
	"fmt"

	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
	"mcsquare/internal/softmc"
)

// share is the reference count a copy-on-write physical page carries.
type share struct {
	refs int
}

// vpage maps one virtual page (4 KB or 2 MB) to physical memory.
type vpage struct {
	phys memdata.Addr
	size uint64 // PageSize or HugePageSize
	sh   *share // nil for private pages
}

// AddressSpace is one process's page table. Lookups try the huge-page
// granularity first, then 4 KB.
type AddressSpace struct {
	k     *Kernel
	small map[memdata.VAddr]*vpage
	huge  map[memdata.VAddr]*vpage
	// TLB caches translations; misses charge the page-walk cost. Huge
	// pages keep their single-entry advantage (the reason in-memory
	// databases want them despite COW spikes, §V-B).
	TLB *TLB
}

// NewAddressSpace creates an empty address space.
func (k *Kernel) NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		k:     k,
		small: map[memdata.VAddr]*vpage{},
		huge:  map[memdata.VAddr]*vpage{},
		TLB:   NewTLB(),
	}
}

// MapRegion backs [v, v+size) with freshly allocated physical pages of the
// given granularity. v and size must be multiples of that granularity.
func (as *AddressSpace) MapRegion(v memdata.VAddr, size uint64, hugePages bool) {
	pg, tbl := uint64(memdata.PageSize), as.small
	if hugePages {
		pg, tbl = uint64(memdata.HugePageSize), as.huge
	}
	if uint64(v)%pg != 0 || size%pg != 0 {
		panic(fmt.Sprintf("oskern: MapRegion(%#x, %d) not %d-aligned", v, size, pg))
	}
	for off := uint64(0); off < size; off += pg {
		va := v + memdata.VAddr(off)
		if _, ok := tbl[va]; ok {
			panic(fmt.Sprintf("oskern: double map of %#x", va))
		}
		tbl[va] = &vpage{phys: as.k.M.Alloc(pg, pg), size: pg}
	}
}

// Fork clones the address space copy-on-write: both spaces share physical
// pages until one writes. The page-table copy cost (one PTE per page) is
// charged to the calling core — the cheap part that huge pages make an
// order of magnitude cheaper (§V-B).
func (as *AddressSpace) Fork(c *cpu.Core) *AddressSpace {
	as.k.Stats.Forks++
	as.k.Stats.Syscalls++
	c.Compute(as.k.P.SyscallCost)
	child := as.k.NewAddressSpace()
	copyTable := func(dst, src map[memdata.VAddr]*vpage) {
		for va, pg := range src {
			if pg.sh == nil {
				pg.sh = &share{refs: 1}
			}
			pg.sh.refs++
			dst[va] = &vpage{phys: pg.phys, size: pg.size, sh: pg.sh}
			c.Compute(as.k.P.PTECost)
		}
	}
	copyTable(child.small, as.small)
	copyTable(child.huge, as.huge)
	// Write protection for COW requires flushing stale TLB entries.
	as.TLB.Flush()
	c.Compute(as.k.P.ShootdownCost)
	return child
}

// lookup finds the page containing v.
func (as *AddressSpace) lookup(v memdata.VAddr) *vpage {
	if pg, ok := as.huge[memdata.VAddr(uint64(v)&^uint64(memdata.HugePageSize-1))]; ok {
		return pg
	}
	if pg, ok := as.small[memdata.VAddr(uint64(v)&^uint64(memdata.PageSize-1))]; ok {
		return pg
	}
	return nil
}

// Translate resolves v to a physical address, running the copy-on-write
// fault handler inline when a write hits a shared page. It must be called
// from the core's workload process.
func (as *AddressSpace) Translate(c *cpu.Core, v memdata.VAddr, write bool) memdata.Addr {
	pg := as.lookup(v)
	if pg == nil {
		panic(fmt.Sprintf("oskern: access to unmapped address %#x", v))
	}
	if c != nil {
		page := memdata.VAddr(uint64(v) &^ (pg.size - 1))
		if walk := as.TLB.Access(page, pg.size == memdata.HugePageSize); walk > 0 {
			c.Compute(walk)
		}
	}
	if write && pg.sh != nil {
		if pg.sh.refs > 1 {
			as.cowFault(c, pg)
		} else {
			pg.sh = nil // last reference: reclaim exclusivity, no copy
		}
	}
	off := uint64(v) & (pg.size - 1)
	return pg.phys + memdata.Addr(off)
}

// cowFault runs the copy-on-write fault handler: allocate a private page
// and copy the shared one — eagerly in the native kernel, with MCLAZY in
// the paper's modified kernel (copy_user_huge_page). The MCLAZY path
// relies on the instruction's ranged cache sweep rather than per-line
// CLWBs, so its cost is bounded by cache residency, not page size.
func (as *AddressSpace) cowFault(c *cpu.Core, pg *vpage) {
	start := c.Now()
	if pg.size == memdata.HugePageSize {
		as.k.Stats.HugeCOWFaults++
	} else {
		as.k.Stats.COWFaults++
	}
	c.Compute(as.k.P.FaultCost)
	newPhys := as.k.M.Alloc(pg.size, pg.size)
	if as.k.LazyCOW {
		c.MCLazy(memdata.Range{Start: newPhys, Size: pg.size}, pg.phys)
		c.Fence()
	} else {
		softmc.MemcpyEager(c, newPhys, pg.phys, pg.size)
	}
	c.Compute(as.k.P.PTECost)
	pg.sh.refs--
	pg.sh = nil
	pg.phys = newPhys
	as.k.Stats.FaultCycles += uint64(c.Now() - start)
	as.k.FaultLat.Add(float64(c.Now() - start))
}

// Store writes data at virtual address v (may cross page boundaries).
func (as *AddressSpace) Store(c *cpu.Core, v memdata.VAddr, data []byte) {
	for len(data) > 0 {
		pa := as.Translate(c, v, true)
		pg := as.lookup(v)
		room := pg.size - uint64(v)&(pg.size-1)
		n := uint64(len(data))
		if n > room {
			n = room
		}
		c.Store(pa, data[:n])
		data = data[n:]
		v += memdata.VAddr(n)
	}
}

// Load reads n bytes at virtual address v (dependent load semantics).
func (as *AddressSpace) Load(c *cpu.Core, v memdata.VAddr, n uint64) []byte {
	out := make([]byte, 0, n)
	for n > 0 {
		pa := as.Translate(c, v, false)
		pg := as.lookup(v)
		room := pg.size - uint64(v)&(pg.size-1)
		take := n
		if take > room {
			take = room
		}
		out = append(out, c.Load(pa, take)...)
		n -= take
		v += memdata.VAddr(take)
	}
	return out
}
