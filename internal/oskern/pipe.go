package oskern

import (
	"fmt"

	"mcsquare/internal/cpu"
	"mcsquare/internal/memdata"
	"mcsquare/internal/softmc"
)

// Pipe is a kernel FIFO with an in-kernel ring buffer: pipe_write copies
// user bytes into the ring, pipe_read copies them out. With LazyPipes both
// copies go through memcpy_lazy; chain collapsing then routes the reader's
// destination directly to the writer's source, and with FreePipeBuffers the
// consumed kernel buffer is MCFREE'd so the intermediate copy never
// happens at all (the Fig 19 experiment).
type Pipe struct {
	k    *Kernel
	buf  memdata.Addr
	cap  uint64
	rpos uint64 // absolute read offset
	wpos uint64 // absolute write offset
}

// NewPipe creates a pipe with the given ring capacity (must be a multiple
// of the page size; Linux defaults to 64 KB).
func (k *Kernel) NewPipe(capacity uint64) *Pipe {
	if capacity == 0 || capacity%memdata.PageSize != 0 {
		panic(fmt.Sprintf("oskern: pipe capacity %d not page-aligned", capacity))
	}
	return &Pipe{k: k, buf: k.M.Alloc(capacity, memdata.PageSize), cap: capacity}
}

// Buffered returns the number of bytes waiting in the ring.
func (p *Pipe) Buffered() uint64 { return p.wpos - p.rpos }

// Write copies up to n bytes from the user buffer src into the pipe and
// returns how many were accepted (bounded by free space — the simulated
// workloads size transfers to fit, so no blocking is modeled).
func (p *Pipe) Write(c *cpu.Core, src memdata.Addr, n uint64) uint64 {
	p.k.Stats.PipeWrites++
	p.k.Stats.Syscalls++
	c.Compute(p.k.P.SyscallCost)
	space := p.cap - p.Buffered()
	if n > space {
		n = space
	}
	p.chunkedCopy(c, n, func(kbuf memdata.Addr, off, take uint64) {
		p.copy(c, kbuf, src+memdata.Addr(off), take)
	}, &p.wpos)
	return n
}

// Read copies up to n buffered bytes into the user buffer dst and returns
// how many were delivered.
func (p *Pipe) Read(c *cpu.Core, dst memdata.Addr, n uint64) uint64 {
	p.k.Stats.PipeReads++
	p.k.Stats.Syscalls++
	c.Compute(p.k.P.SyscallCost)
	if n > p.Buffered() {
		n = p.Buffered()
	}
	p.chunkedCopy(c, n, func(kbuf memdata.Addr, off, take uint64) {
		p.copy(c, dst+memdata.Addr(off), kbuf, take)
		if p.k.FreePipeBuffers {
			// The consumed span is dead: drop any prospective copies into
			// it so fully forwarded data is never materialized.
			softmc.Free(c, memdata.Range{Start: kbuf, Size: take})
		}
	}, &p.rpos)
	return n
}

// chunkedCopy walks n bytes of the ring from *pos, splitting at the wrap
// boundary, invoking fn(kernelAddr, userOffset, take) per span.
func (p *Pipe) chunkedCopy(c *cpu.Core, n uint64, fn func(kbuf memdata.Addr, off, take uint64), pos *uint64) {
	off := uint64(0)
	for off < n {
		ring := *pos % p.cap
		take := n - off
		if take > p.cap-ring {
			take = p.cap - ring
		}
		fn(p.buf+memdata.Addr(ring), off, take)
		*pos += take
		off += take
	}
}

func (p *Pipe) copy(c *cpu.Core, dst, src memdata.Addr, n uint64) {
	if p.k.LazyPipes {
		softmc.MemcpyLazy(c, dst, src, n)
	} else {
		softmc.MemcpyEager(c, dst, src, n)
	}
}
