package oskern

import (
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

// TLB is a per-process translation cache: separate fully-associative LRU
// arrays for 4 KB and 2 MB entries. A hit is free (pipelined with the L1
// access); a miss charges the page-walk cost.
type TLB struct {
	small *tlbArray
	huge  *tlbArray

	WalkCost sim.Cycle

	Hits   uint64
	Misses uint64
}

type tlbArray struct {
	capacity int
	tick     uint64
	last     map[memdata.VAddr]uint64 // page -> last-use tick
}

func newTLBArray(capacity int) *tlbArray {
	return &tlbArray{capacity: capacity, last: map[memdata.VAddr]uint64{}}
}

// NewTLB builds a TLB with Skylake-like capacities (64 small entries,
// 32 huge) and an ~25 ns page walk.
func NewTLB() *TLB {
	return &TLB{small: newTLBArray(64), huge: newTLBArray(32), WalkCost: 100}
}

func (a *tlbArray) touch(page memdata.VAddr) bool {
	a.tick++
	if _, ok := a.last[page]; ok {
		a.last[page] = a.tick
		return true
	}
	if len(a.last) >= a.capacity {
		var victim memdata.VAddr
		oldest := uint64(1<<63 - 1)
		// Deterministic LRU: scan for the oldest tick, lowest page breaks
		// ties (map order must not leak into simulation timing).
		for p, t := range a.last {
			if t < oldest || (t == oldest && p < victim) {
				victim, oldest = p, t
			}
		}
		delete(a.last, victim)
	}
	a.last[page] = a.tick
	return false
}

// Access looks the page up, returning the cycles to charge (0 on a hit).
func (t *TLB) Access(page memdata.VAddr, huge bool) sim.Cycle {
	arr := t.small
	if huge {
		arr = t.huge
	}
	if arr.touch(page) {
		t.Hits++
		return 0
	}
	t.Misses++
	return t.WalkCost
}

// Flush empties the TLB (a shootdown or context switch).
func (t *TLB) Flush() {
	t.small = newTLBArray(t.small.capacity)
	t.huge = newTLBArray(t.huge.capacity)
}
