package oskern

import (
	"bytes"
	"math/rand"
	"testing"

	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/sim"
)

func newKernel(lazy bool) (*machine.Machine, *Kernel) {
	p := machine.DefaultParams()
	p.MemSize = 512 << 20
	m := machine.New(p)
	k := New(m)
	k.LazyCOW = lazy
	k.LazyPipes = lazy
	return m, k
}

func TestMapAndAccess(t *testing.T) {
	m, k := newKernel(false)
	as := k.NewAddressSpace()
	as.MapRegion(0x100000, 8*memdata.PageSize, false)
	var got []byte
	m.Run(func(c *cpu.Core) {
		as.Store(c, 0x100000+100, []byte("hello"))
		c.Fence()
		got = as.Load(c, 0x100000+100, 5)
	})
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestStoreAcrossPageBoundary(t *testing.T) {
	m, k := newKernel(false)
	as := k.NewAddressSpace()
	as.MapRegion(0x100000, 2*memdata.PageSize, false)
	data := bytes.Repeat([]byte{7}, 100)
	var got []byte
	m.Run(func(c *cpu.Core) {
		as.Store(c, 0x100000+memdata.PageSize-50, data)
		c.Fence()
		got = as.Load(c, 0x100000+memdata.PageSize-50, 100)
	})
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page store mismatch")
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	_, k := newKernel(false)
	as := k.NewAddressSpace()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unmapped access")
		}
	}()
	// Translation of an unmapped address faults before touching the core,
	// so it can run on the test goroutine directly.
	as.Translate(nil, 0xdead000, false)
}

func TestForkCOWIsolation(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		m, k := newKernel(lazy)
		as := k.NewAddressSpace()
		as.MapRegion(0x200000, 4*memdata.PageSize, false)
		var parentSees, childSees []byte
		m.Run(func(c *cpu.Core) {
			as.Store(c, 0x200000, []byte{1, 2, 3})
			c.Fence()
			child := as.Fork(c)
			// Parent writes after fork: child must not see it.
			as.Store(c, 0x200000, []byte{9, 9, 9})
			c.Fence()
			childSees = child.Load(c, 0x200000, 3)
			parentSees = as.Load(c, 0x200000, 3)
			// Child writes its copy: parent unaffected.
			child.Store(c, 0x200001, []byte{5})
			c.Fence()
			if as.Load(c, 0x200001, 1)[0] != 9 {
				t.Error("child write leaked into parent")
			}
		})
		if !bytes.Equal(childSees, []byte{1, 2, 3}) {
			t.Fatalf("lazy=%v: child sees %v", lazy, childSees)
		}
		if !bytes.Equal(parentSees, []byte{9, 9, 9}) {
			t.Fatalf("lazy=%v: parent sees %v", lazy, parentSees)
		}
		if k.Stats.COWFaults == 0 {
			t.Fatalf("lazy=%v: no COW faults recorded", lazy)
		}
	}
}

func TestLastReferenceSkipsCopy(t *testing.T) {
	m, k := newKernel(false)
	as := k.NewAddressSpace()
	as.MapRegion(0x200000, memdata.PageSize, false)
	m.Run(func(c *cpu.Core) {
		child := as.Fork(c)
		child.Store(c, 0x200000, []byte{1}) // child copies (refs 2 -> fault)
		c.Fence()
		faults := k.Stats.COWFaults
		as.Store(c, 0x200000, []byte{2}) // parent is last ref: no copy
		c.Fence()
		if k.Stats.COWFaults != faults {
			t.Error("last-reference write still copied")
		}
	})
}

func TestHugePageCOWLatency(t *testing.T) {
	// The Fig 18 headline: lazy huge-page COW faults are orders of
	// magnitude cheaper than eager 2 MB copies.
	run := func(lazy bool) sim.Cycle {
		m, k := newKernel(lazy)
		as := k.NewAddressSpace()
		as.MapRegion(1<<30, memdata.HugePageSize, true)
		var faultCycles sim.Cycle
		m.Run(func(c *cpu.Core) {
			as.Fork(c)
			start := c.Now()
			as.Store(c, 1<<30, []byte{1}) // triggers the huge COW fault
			c.Fence()
			faultCycles = c.Now() - start
		})
		if k.Stats.HugeCOWFaults != 1 {
			t.Fatalf("lazy=%v: HugeCOWFaults=%d", lazy, k.Stats.HugeCOWFaults)
		}
		return faultCycles
	}
	eager := run(false)
	lazy := run(true)
	if lazy*20 >= eager {
		t.Fatalf("lazy fault %d not ≥20x cheaper than eager %d", lazy, eager)
	}
}

func TestHugeCOWDataCorrect(t *testing.T) {
	m, k := newKernel(true)
	as := k.NewAddressSpace()
	base := memdata.VAddr(1 << 30)
	as.MapRegion(base, memdata.HugePageSize, true)
	rnd := rand.New(rand.NewSource(33))
	var ok bool
	m.Run(func(c *cpu.Core) {
		// Seed some recognizable content through the VM layer.
		seedOff := uint64(rnd.Intn(memdata.HugePageSize - 64))
		seed := make([]byte, 64)
		rnd.Read(seed)
		as.Store(c, base+memdata.VAddr(seedOff), seed)
		c.Fence()
		child := as.Fork(c)
		// Parent writes elsewhere (COW fault, lazily copied page).
		as.Store(c, base, []byte{0xAB})
		c.Fence()
		// Parent must still see the seed; child sees it too.
		p := as.Load(c, base+memdata.VAddr(seedOff), 64)
		ch := child.Load(c, base+memdata.VAddr(seedOff), 64)
		ok = bytes.Equal(p, seed) && bytes.Equal(ch, seed)
	})
	if !ok {
		t.Fatal("huge COW lost data")
	}
}

func TestPipeFIFOAndWrap(t *testing.T) {
	for _, lazy := range []bool{false, true} {
		m, k := newKernel(lazy)
		k.FreePipeBuffers = lazy
		pipe := k.NewPipe(16 << 10)
		user := m.AllocPage(64 << 10)
		out := m.AllocPage(64 << 10)
		rnd := rand.New(rand.NewSource(5))
		payload := make([]byte, 40<<10) // > capacity: forces wraps
		rnd.Read(payload)
		m.Phys.Write(user, payload)
		var got []byte
		m.Run(func(c *cpu.Core) {
			sent, recvd := uint64(0), uint64(0)
			for recvd < uint64(len(payload)) {
				if sent < uint64(len(payload)) {
					n := uint64(len(payload)) - sent
					if n > 6000 {
						n = 6000 // odd size: exercises wrap misalignment
					}
					sent += pipe.Write(c, user+memdata.Addr(sent), n)
				}
				recvd += pipe.Read(c, out+memdata.Addr(recvd), 8<<10)
			}
			got = c.Load(out, uint64(len(payload)))
		})
		if !bytes.Equal(got, payload) {
			t.Fatalf("lazy=%v: pipe corrupted data", lazy)
		}
		if pipe.Buffered() != 0 {
			t.Fatalf("lazy=%v: %d bytes stuck in pipe", lazy, pipe.Buffered())
		}
	}
}

func TestLazyPipesFaster(t *testing.T) {
	run := func(lazy bool) sim.Cycle {
		m, k := newKernel(lazy)
		k.FreePipeBuffers = lazy
		pipe := k.NewPipe(64 << 10)
		user := m.AllocPage(16 << 10)
		out := m.AllocPage(16 << 10)
		m.FillRandom(user, 16<<10, 6)
		var dur sim.Cycle
		m.Run(func(c *cpu.Core) {
			start := c.Now()
			for i := 0; i < 16; i++ {
				pipe.Write(c, user, 16<<10)
				pipe.Read(c, out, 16<<10)
			}
			dur = c.Now() - start
		})
		return dur
	}
	eager := run(false)
	lazy := run(true)
	if lazy >= eager {
		t.Fatalf("lazy pipes (%d) not faster than eager (%d)", lazy, eager)
	}
}

func TestTLBHitMissAccounting(t *testing.T) {
	tlb := NewTLB()
	if tlb.Access(0x1000, false) == 0 {
		t.Fatal("cold access should miss")
	}
	if tlb.Access(0x1000, false) != 0 {
		t.Fatal("warm access should hit")
	}
	// Fill past capacity: the oldest entry is evicted.
	for i := 0; i < 70; i++ {
		tlb.Access(memdata.VAddr(0x100000+i*memdata.PageSize), false)
	}
	if tlb.Access(0x1000, false) == 0 {
		t.Fatal("evicted entry should miss")
	}
	// Huge entries live in their own array.
	h0 := tlb.Misses
	tlb.Access(1<<30, true)
	tlb.Access(1<<30, true)
	if tlb.Misses != h0+1 {
		t.Fatalf("huge-page accounting wrong: %d misses", tlb.Misses-h0)
	}
	tlb.Flush()
	if tlb.Access(1<<30, true) == 0 {
		t.Fatal("flush did not clear the TLB")
	}
}

func TestHugePagesReduceTLBMisses(t *testing.T) {
	// The motivation for huge pages in §V-B: fewer translations.
	walk := func(huge bool) uint64 {
		m, k := newKernel(false)
		as := k.NewAddressSpace()
		size := uint64(16 << 21) // 32 MB
		as.MapRegion(1<<31, size, huge)
		m.Run(func(c *cpu.Core) {
			for off := uint64(0); off < size; off += memdata.PageSize {
				as.Translate(c, 1<<31+memdata.VAddr(off), false)
			}
		})
		return as.TLB.Misses
	}
	small, huge := walk(false), walk(true)
	if huge*10 >= small {
		t.Fatalf("huge pages should cut TLB misses ≥10x: %d vs %d", huge, small)
	}
}
