// Package mcsquare is a Go reproduction of "(MC)²: Lazy MemCopy at the
// Memory Controller" (Kamath & Peter, ISCA 2024).
//
// It provides a deterministic, cycle-level simulator of a small server's
// memory system — out-of-order cores, two-level caches with stride
// prefetchers, DDR4-style memory controllers — extended with the paper's
// lazy-memcpy hardware: a Copy Tracking Table and Bounce Pending Queue at
// the memory controllers, the MCLAZY/MCFREE instructions, and the
// memcpy_lazy software wrapper. The zIO copy-elision baseline and the
// paper's application workloads (Protobuf, MongoDB-style inserts, MVCC
// transactions, fork/COW, pipes) are included, and every figure of the
// paper's evaluation can be regenerated (see cmd/mcfigures).
//
// The public API wraps the simulator for programmatic use:
//
//	sys := mcsquare.New(mcsquare.DefaultConfig())
//	src := sys.Alloc(64 << 10)
//	dst := sys.Alloc(64 << 10)
//	sys.FillRandom(src, 1)
//	sys.Run(func(t *mcsquare.Thread) {
//	    t.MemcpyLazy(dst.Addr, src.Addr, src.Size) // returns in ~µs
//	    data := t.Read(dst.Addr, 4096)             // lazily materialized
//	    _ = data
//	})
//	fmt.Println(sys.LazyStats())
package mcsquare

import (
	"fmt"

	"mcsquare/internal/cache"
	"mcsquare/internal/core"
	"mcsquare/internal/cpu"
	"mcsquare/internal/machine"
	"mcsquare/internal/memdata"
	"mcsquare/internal/softmc"
)

// Addr is a simulated physical byte address.
type Addr = memdata.Addr

// Cycles is simulated time at the machine's 4 GHz clock.
type Cycles = uint64

// Config selects the simulated machine's shape. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// Cores is the number of simulated CPUs (Table I: 8).
	Cores int
	// MemSize is the simulated physical memory in bytes.
	MemSize uint64
	// LazyEnabled installs the (MC)² hardware. When false the machine is
	// the stock baseline and MemcpyLazy panics.
	LazyEnabled bool
	// CTTEntries, BPQEntries, FreeThreshold and ParallelFrees expose the
	// paper's sensitivity knobs (Table I defaults: 2048, 8, 0.50, 1).
	CTTEntries    int
	BPQEntries    int
	FreeThreshold float64
	ParallelFrees int
	// PrefetchEnabled toggles the stride prefetchers (Fig 12 ablation).
	PrefetchEnabled bool
	// WritebackOnBounce toggles the §III-B2 writeback (Fig 13 ablation).
	WritebackOnBounce bool
	// LazyThreshold is the interposer policy: Memcpy calls of at least
	// this many bytes are redirected to memcpy_lazy (0 = never redirect).
	LazyThreshold uint64
}

// DefaultConfig mirrors the paper's simulated configuration.
func DefaultConfig() Config {
	p := machine.DefaultParams()
	return Config{
		Cores:             p.Cores,
		MemSize:           p.MemSize,
		LazyEnabled:       true,
		CTTEntries:        p.Lazy.CTTCapacity,
		BPQEntries:        p.Lazy.BPQCapacity,
		FreeThreshold:     p.Lazy.FreeThreshold,
		ParallelFrees:     p.Lazy.ParallelFrees,
		PrefetchEnabled:   true,
		WritebackOnBounce: true,
		LazyThreshold:     1024,
	}
}

// Buffer is an allocated region of simulated memory.
type Buffer struct {
	Addr Addr
	Size uint64
}

// Range returns the buffer as a byte range.
func (b Buffer) Range() memdata.Range { return memdata.Range{Start: b.Addr, Size: b.Size} }

// System is one simulated machine with the (MC)² extensions.
type System struct {
	cfg Config
	m   *machine.Machine
}

// New builds a system from cfg.
func New(cfg Config) *System {
	p := machine.DefaultParams()
	if cfg.Cores > 0 {
		p.Cores = cfg.Cores
		p.Cache = cache.DefaultConfig(cfg.Cores)
	}
	if cfg.MemSize > 0 {
		p.MemSize = cfg.MemSize
	}
	p.LazyEnabled = cfg.LazyEnabled
	if cfg.CTTEntries > 0 {
		p.Lazy.CTTCapacity = cfg.CTTEntries
	}
	if cfg.BPQEntries > 0 {
		p.Lazy.BPQCapacity = cfg.BPQEntries
	}
	if cfg.FreeThreshold > 0 {
		p.Lazy.FreeThreshold = cfg.FreeThreshold
	}
	if cfg.ParallelFrees > 0 {
		p.Lazy.ParallelFrees = cfg.ParallelFrees
	}
	p.Cache.Prefetch.Enabled = cfg.PrefetchEnabled
	p.Lazy.WritebackOnBounce = cfg.WritebackOnBounce
	return &System{cfg: cfg, m: machine.New(p)}
}

// Machine exposes the underlying assembly for advanced use (counters,
// custom wiring). Most callers never need it.
func (s *System) Machine() *machine.Machine { return s.m }

// Alloc reserves a cacheline-aligned buffer.
func (s *System) Alloc(size uint64) Buffer {
	return Buffer{Addr: s.m.Alloc(size, memdata.LineSize), Size: size}
}

// AllocPage reserves a page-aligned buffer.
func (s *System) AllocPage(size uint64) Buffer {
	return Buffer{Addr: s.m.AllocPage(size), Size: size}
}

// FillRandom writes deterministic pseudorandom bytes into the buffer
// without simulated cost (contents resident in memory, cold in caches).
func (s *System) FillRandom(b Buffer, seed int64) {
	s.m.FillRandom(b.Addr, b.Size, seed)
}

// Peek reads simulated memory directly (no timing, no cache effects).
// Note that recently written data may still be cached or queued; use
// Thread.Read inside Run for architecturally correct values.
func (s *System) Peek(a Addr, n uint64) []byte { return s.m.Phys.Read(a, n) }

// Run executes one workload function per core (fn i on core i) to
// completion and returns the cycle at which the last one finished.
// Workload functions run as simulated processes: every Thread method
// advances simulated time.
func (s *System) Run(fns ...func(t *Thread)) Cycles {
	workers := make([]func(c *cpu.Core), len(fns))
	for i, fn := range fns {
		fn := fn
		workers[i] = func(c *cpu.Core) { fn(&Thread{sys: s, core: c}) }
	}
	return uint64(s.m.Run(workers...))
}

// Thread is the per-core handle workload functions receive.
type Thread struct {
	sys  *System
	core *cpu.Core
}

// Core exposes the underlying simulated core.
func (t *Thread) Core() *cpu.Core { return t.core }

// Now returns the current simulated cycle.
func (t *Thread) Now() Cycles { return uint64(t.core.Now()) }

// Compute advances simulated time by non-memory work.
func (t *Thread) Compute(cycles Cycles) { t.core.Compute(cycles) }

// Read returns n bytes at a (dependent-load timing).
func (t *Thread) Read(a Addr, n uint64) []byte { return t.core.Load(a, n) }

// ReadAsync touches n bytes at a without waiting for the data.
func (t *Thread) ReadAsync(a Addr, n uint64) { t.core.LoadAsync(a, n) }

// Write stores data at a (posted).
func (t *Thread) Write(a Addr, data []byte) { t.core.Store(a, data) }

// Memcpy performs an eager copy, like libc memcpy.
func (t *Thread) Memcpy(dst, src Addr, n uint64) { softmc.MemcpyEager(t.core, dst, src, n) }

// MemcpyLazy performs the paper's lazy copy: identical semantics to
// Memcpy, but the data moves only when (and if) it is accessed.
func (t *Thread) MemcpyLazy(dst, src Addr, n uint64) {
	if t.sys.m.Lazy == nil {
		panic("mcsquare: MemcpyLazy on a system built with LazyEnabled=false")
	}
	softmc.MemcpyLazy(t.core, dst, src, n)
}

// MemcpyAuto applies the interposer policy: sizes at or above the
// configured LazyThreshold go lazy, smaller ones stay eager.
func (t *Thread) MemcpyAuto(dst, src Addr, n uint64) {
	if t.sys.cfg.LazyEnabled && t.sys.cfg.LazyThreshold != 0 && n >= t.sys.cfg.LazyThreshold {
		t.MemcpyLazy(dst, src, n)
		return
	}
	t.Memcpy(dst, src, n)
}

// Free issues the MCFREE hint for a dead buffer.
func (t *Thread) Free(b Buffer) {
	if t.sys.m.Lazy == nil {
		return
	}
	softmc.Free(t.core, b.Range())
}

// Fence waits until every outstanding operation of this thread completed
// (MFENCE semantics).
func (t *Thread) Fence() { t.core.Fence() }

// LazyStats reports the (MC)² machinery's counters.
func (s *System) LazyStats() core.EngineStats {
	if s.m.Lazy == nil {
		return core.EngineStats{}
	}
	return s.m.Lazy.Stats
}

// CacheStats reports the cache hierarchy's counters.
func (s *System) CacheStats() cache.Stats { return s.m.Hier.Stats }

// LiveCopies reports how many prospective copies the CTT currently tracks.
func (s *System) LiveCopies() int {
	if s.m.Lazy == nil {
		return 0
	}
	return s.m.Lazy.CTT().Len()
}

// String summarizes the system.
func (s *System) String() string {
	mode := "baseline"
	if s.cfg.LazyEnabled {
		mode = fmt.Sprintf("(MC)² [CTT %d, BPQ %d]", s.cfg.CTTEntries, s.cfg.BPQEntries)
	}
	return fmt.Sprintf("mcsquare.System{%d cores, %d MB, %s}", s.cfg.Cores, s.cfg.MemSize>>20, mode)
}
