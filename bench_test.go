// Benchmark harness: one testing.B benchmark per figure and table of the
// paper's evaluation. Each benchmark regenerates its figure (quick scale)
// and reports the figure's headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute host ns/op is irrelevant (the
// workload is a simulation); the custom metrics carry the simulated
// results. cmd/mcfigures emits the full tables at paper scale.
package mcsquare

import (
	"strconv"
	"testing"

	"mcsquare/internal/figures"
	"mcsquare/internal/stats"
)

func quickOpts() figures.Options { return figures.Options{Quick: true} }

func val(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// run executes a figure generator once per benchmark iteration and returns
// the last iteration's tables.
func run(b *testing.B, gen func(figures.Options) []*stats.Table) []*stats.Table {
	b.Helper()
	var tables []*stats.Table
	for i := 0; i < b.N; i++ {
		tables = gen(quickOpts())
	}
	return tables
}

func BenchmarkFig02CopyOverhead(b *testing.B) {
	tb := run(b, figures.Figure2)[0]
	for _, row := range tb.Rows() {
		b.ReportMetric(val(b, row[1]), row[0]+"_copyfrac")
	}
}

func BenchmarkFig03StallBreakdown(b *testing.B) {
	tb := run(b, figures.Figure3)[0]
	for _, row := range tb.Rows() {
		b.ReportMetric(val(b, row[1]), row[0])
	}
}

func BenchmarkFig04SizeCDF(b *testing.B) {
	tb := run(b, figures.Figure4)[0]
	// Headline: the cumulative mass at 1 KB (the paper's 56% step sits
	// just below it).
	for _, row := range tb.Rows() {
		if row[0] == "1024B" {
			b.ReportMetric(val(b, row[2]), "cdf_at_1KB")
		}
	}
}

func BenchmarkFig10CopyLatency(b *testing.B) {
	tb := run(b, figures.Figure10)[0]
	rows := tb.Rows()
	// Headline: (MC)² speedup over memcpy at the largest size measured.
	last := rows[len(rows)-1]
	b.ReportMetric(val(b, last[1])/val(b, last[4]), "mc2_speedup_max_size")
	for _, row := range rows {
		if row[0] == "4KB" {
			b.ReportMetric(val(b, row[1])/val(b, row[4]), "mc2_speedup_4KB")
		}
	}
}

func BenchmarkFig11Breakdown(b *testing.B) {
	tb := run(b, figures.Figure11)[0]
	rows := tb.Rows()
	b.ReportMetric(val(b, rows[len(rows)-1][1]), "clwb_share_max_size")
}

func BenchmarkFig12SeqAccess(b *testing.B) {
	tb := run(b, figures.Figure12)[0]
	rows := tb.Rows()
	last := rows[len(rows)-1] // 100% accessed
	b.ReportMetric(val(b, last[3]), "mc2_vs_memcpy_full_access")
	b.ReportMetric(val(b, last[5]), "mc2_noprefetch_full_access")
}

func BenchmarkFig13RandAccess(b *testing.B) {
	tb := run(b, figures.Figure13)[0]
	rows := tb.Rows()
	last := rows[len(rows)-1]
	b.ReportMetric(val(b, last[3]), "mc2_vs_memcpy_full_chase")
	b.ReportMetric(val(b, last[5]), "mc2_nowriteback_full_chase")
}

func BenchmarkFig14Protobuf(b *testing.B) {
	tb := run(b, figures.Figure14)[0]
	rows := tb.Rows()
	base, zio, mc2 := val(b, rows[0][1]), val(b, rows[1][1]), val(b, rows[2][1])
	b.ReportMetric(100*(1-mc2/base), "mc2_runtime_reduction_pct")
	b.ReportMetric(zio/base, "zio_vs_baseline")
}

func BenchmarkFig15Mongo(b *testing.B) {
	tb := run(b, figures.Figure15)[0]
	rows := tb.Rows()
	base, zio, mc2 := val(b, rows[0][1]), val(b, rows[1][1]), val(b, rows[2][1])
	b.ReportMetric(100*(1-mc2/base), "mc2_latency_reduction_pct")
	b.ReportMetric(100*(zio/base-1), "zio_latency_increase_pct")
}

func BenchmarkFig16MVCCRMW(b *testing.B) {
	tables := run(b, figures.Figure16)
	oneT := tables[0].Rows()
	b.ReportMetric(100*(val(b, oneT[0][2])/val(b, oneT[0][1])-1), "speedup_pct_6.25pct_1T")
	eightT := tables[1].Rows()
	b.ReportMetric(100*(val(b, eightT[0][2])/val(b, eightT[0][1])-1), "speedup_pct_6.25pct_8T")
}

func BenchmarkFig17MVCCWrite(b *testing.B) {
	tables := run(b, figures.Figure17)
	oneT := tables[0].Rows()
	mid := oneT[2] // 25% written
	b.ReportMetric(val(b, mid[3])/val(b, mid[2]), "nt_over_rfo_1T_25pct")
}

func BenchmarkFig18HugeCOW(b *testing.B) {
	tb := run(b, figures.Figure18)[0]
	var nmax, lmax float64
	for _, row := range tb.Rows() {
		if v := val(b, row[1]); v > nmax {
			nmax = v
		}
		if v := val(b, row[2]); v > lmax {
			lmax = v
		}
	}
	b.ReportMetric(nmax/lmax, "worstcase_latency_reduction_x")
}

func BenchmarkFig19Pipe(b *testing.B) {
	tb := run(b, figures.Figure19)[0]
	rows := tb.Rows()
	last := rows[len(rows)-1] // 16 KB transfers
	b.ReportMetric(val(b, last[2])/val(b, last[1]), "mc2_throughput_gain_16KB")
}

func BenchmarkFig20CTTSweep(b *testing.B) {
	tables := run(b, figures.Figure20)
	rt := tables[0].Rows()
	var minV, maxV float64 = 1e18, 0
	for _, row := range rt {
		for _, cell := range row[1:] {
			v := val(b, cell)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	b.ReportMetric(100*(maxV-minV)/minV, "runtime_spread_pct")
}

func BenchmarkFig21BPQSweep(b *testing.B) {
	tb := run(b, figures.Figure21)[0]
	rows := tb.Rows()
	last := rows[len(rows)-1]
	b.ReportMetric(val(b, last[1])/val(b, last[4]), "speedup_bpq8_over_bpq1")
}

func BenchmarkFig22ParallelFree(b *testing.B) {
	tb := run(b, figures.Figure22)[0]
	rows := tb.Rows()
	last := rows[len(rows)-1] // 8 threads
	b.ReportMetric(val(b, last[len(last)-1])/val(b, last[1]), "free8_over_free1_8T")
}

func BenchmarkTable1Config(b *testing.B) {
	tb := run(b, figures.Table1)[0]
	b.ReportMetric(float64(tb.NumRows()), "config_rows")
}

// BenchmarkCoreLazyMemcpy measures the simulator itself: host time to
// execute one simulated lazy copy + readback (useful when optimizing the
// simulator, not a paper result).
func BenchmarkCoreLazyMemcpy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := New(DefaultConfig())
		src := sys.AllocPage(64 << 10)
		dst := sys.AllocPage(64 << 10)
		sys.FillRandom(src, 1)
		sys.Run(func(t *Thread) {
			t.MemcpyLazy(dst.Addr, src.Addr, src.Size)
			t.ReadAsync(dst.Addr, 4096)
			t.Fence()
		})
	}
}
