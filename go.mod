module mcsquare

go 1.22
