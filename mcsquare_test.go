package mcsquare

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys := New(DefaultConfig())
	src := sys.Alloc(64 << 10)
	dst := sys.Alloc(64 << 10)
	sys.FillRandom(src, 1)
	want := sys.Peek(src.Addr, 4096)

	var got []byte
	sys.Run(func(th *Thread) {
		th.MemcpyLazy(dst.Addr, src.Addr, src.Size)
		got = th.Read(dst.Addr, 4096)
	})
	if !bytes.Equal(got, want) {
		t.Fatal("lazy copy returned wrong data")
	}
	if sys.LazyStats().LazyOps == 0 {
		t.Fatal("no lazy operations recorded")
	}
}

func TestMemcpyAutoThreshold(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LazyThreshold = 1024
	sys := New(cfg)
	src := sys.Alloc(8 << 10)
	dst := sys.Alloc(8 << 10)
	sys.FillRandom(src, 2)
	sys.Run(func(th *Thread) {
		th.MemcpyAuto(dst.Addr, src.Addr, 512) // below threshold: eager
	})
	if sys.LazyStats().LazyOps != 0 {
		t.Fatal("sub-threshold copy went lazy")
	}
	sys.Run(func(th *Thread) {
		th.MemcpyAuto(dst.Addr+4096, src.Addr+4096, 4096)
	})
	if sys.LazyStats().LazyOps == 0 {
		t.Fatal("above-threshold copy stayed eager")
	}
}

func TestBaselineSystemPanicsOnLazy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LazyEnabled = false
	sys := New(cfg)
	b := sys.Alloc(4096)
	panicked := false
	sys.Run(func(th *Thread) {
		// Recover on the workload goroutine itself: a panic escaping it
		// would kill the process, and t.Fatal here would strand the engine.
		defer func() { panicked = recover() != nil }()
		th.MemcpyLazy(b.Addr, b.Addr+2048, 1024)
	})
	if !panicked {
		t.Fatal("MemcpyLazy on baseline did not panic")
	}
}

func TestLazyFasterThanEagerViaAPI(t *testing.T) {
	run := func(lazy bool) Cycles {
		sys := New(DefaultConfig())
		src := sys.AllocPage(128 << 10)
		dst := sys.AllocPage(128 << 10)
		sys.FillRandom(src, 3)
		return sys.Run(func(th *Thread) {
			if lazy {
				th.MemcpyLazy(dst.Addr, src.Addr, src.Size)
			} else {
				th.Memcpy(dst.Addr, src.Addr, src.Size)
				th.Fence()
			}
		})
	}
	if l, e := run(true), run(false); l*2 >= e {
		t.Fatalf("lazy %d cycles vs eager %d: expected ≥2x", l, e)
	}
}

func TestFreeDropsTracking(t *testing.T) {
	sys := New(DefaultConfig())
	src := sys.AllocPage(16 << 10)
	dst := sys.AllocPage(16 << 10)
	sys.FillRandom(src, 4)
	sys.Run(func(th *Thread) {
		th.MemcpyLazy(dst.Addr, src.Addr, src.Size)
		if sys.LiveCopies() == 0 {
			t.Error("no live copies after MemcpyLazy")
		}
		th.Free(dst)
	})
	if sys.LiveCopies() != 0 {
		t.Fatalf("%d live copies after Free", sys.LiveCopies())
	}
}

func TestMultiThreadRun(t *testing.T) {
	sys := New(DefaultConfig())
	bufs := make([]Buffer, 4)
	for i := range bufs {
		bufs[i] = sys.AllocPage(8 << 10)
		sys.FillRandom(bufs[i], int64(i))
	}
	dsts := make([]Buffer, 4)
	for i := range dsts {
		dsts[i] = sys.AllocPage(8 << 10)
	}
	ok := make([]bool, 4)
	fns := make([]func(*Thread), 4)
	for i := range fns {
		i := i
		fns[i] = func(th *Thread) {
			th.MemcpyLazy(dsts[i].Addr, bufs[i].Addr, bufs[i].Size)
			got := th.Read(dsts[i].Addr, 64)
			ok[i] = bytes.Equal(got, sys.Peek(bufs[i].Addr, 64))
		}
	}
	sys.Run(fns...)
	for i, v := range ok {
		if !v {
			t.Fatalf("thread %d read wrong data", i)
		}
	}
}

func TestSystemString(t *testing.T) {
	s := New(DefaultConfig()).String()
	if !strings.Contains(s, "(MC)²") || !strings.Contains(s, "8 cores") {
		t.Fatalf("String() = %q", s)
	}
}
