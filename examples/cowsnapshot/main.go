// cowsnapshot: virtual-memory snapshotting with huge pages, the paper's
// Fig 18 scenario. An in-memory "database" maps a huge-page region, forks a
// snapshot child, then keeps serving writes; every first write to a 2 MB
// page takes a copy-on-write fault. The native kernel copies the whole
// huge page in the fault; the (MC)² kernel issues one MCLAZY instead,
// collapsing the worst-case latency by orders of magnitude.
//
//	go run ./examples/cowsnapshot
package main

import (
	"fmt"
	"sort"

	"mcsquare/internal/workloads/oswl"
)

func main() {
	cfg := oswl.HugeCOWConfig{RegionBytes: 32 << 20, Accesses: 60, Seed: 4}

	native := oswl.HugeCOW(cfg)
	cfg.Lazy = true
	lazy := oswl.HugeCOW(cfg)

	pct := func(xs []uint64, p float64) uint64 {
		s := append([]uint64(nil), xs...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(p*float64(len(s)-1))]
	}
	maxOf := func(xs []uint64) uint64 {
		m := uint64(0)
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}

	fmt.Printf("virtual snapshot of a %d MB huge-page region; %d random 8-byte writes after fork\n",
		cfg.RegionBytes>>20, cfg.Accesses)
	fmt.Printf("%-22s %12s %12s %12s\n", "kernel", "p50 cycles", "p95 cycles", "max cycles")
	fmt.Printf("%-22s %12d %12d %12d\n", "native (eager 2MB copy)",
		pct(native, 0.5), pct(native, 0.95), maxOf(native))
	fmt.Printf("%-22s %12d %12d %12d\n", "(MC)² (MCLAZY in fault)",
		pct(lazy, 0.5), pct(lazy, 0.95), maxOf(lazy))
	fmt.Printf("\nworst-case latency reduction: %.0fx  (paper: up to 250x)\n",
		float64(maxOf(native))/float64(maxOf(lazy)))
}
