// Serialization: a Protobuf-style message pipeline — fields merged into an
// arena buffer, a fraction deserialized afterwards — run against eager
// memcpy and against (MC)² through the interposer policy (copies ≥ 1 KB go
// lazy). This is the paper's Fig 14 scenario at example scale.
//
//	go run ./examples/serialization
package main

import (
	"fmt"
	"math/rand"

	"mcsquare"
)

const (
	messages       = 400
	fieldsPerMsg   = 8
	corpusBytes    = 8 << 20
	accessFraction = 0.4
)

// fieldSizes roughly follows the paper's Fig 4 distribution: mostly 1 KB.
func fieldSize(rnd *rand.Rand) uint64 {
	switch r := rnd.Intn(100); {
	case r < 56:
		return 1024
	case r < 70:
		return 64 * uint64(1+rnd.Intn(8))
	case r < 90:
		return uint64(2 + rnd.Intn(512))
	default:
		return 2048
	}
}

func run(lazy bool) (cycles uint64, copies int) {
	cfg := mcsquare.DefaultConfig()
	cfg.LazyEnabled = lazy
	sys := mcsquare.New(cfg)

	corpus := sys.AllocPage(corpusBytes)
	sys.FillRandom(corpus, 1)
	arena := sys.Alloc(uint64(messages) * 16 << 10)

	rnd := rand.New(rand.NewSource(2))
	cycles = sys.Run(func(t *mcsquare.Thread) {
		cursor := arena.Addr
		type field struct {
			at mcsquare.Addr
			n  uint64
		}
		var merged []field
		for m := 0; m < messages; m++ {
			for f := 0; f < fieldsPerMsg; f++ {
				n := fieldSize(rnd)
				src := corpus.Addr + mcsquare.Addr(rnd.Intn(corpusBytes-int(n)))
				cursor += 9 // wire header keeps offsets unaligned
				t.MemcpyAuto(cursor, src, n)
				merged = append(merged, field{at: cursor, n: n})
				cursor += mcsquare.Addr(n)
				copies++
			}
			t.Compute(600) // parsing, dispatch
		}
		// Deserialize a fraction of what was merged.
		for _, f := range merged {
			if rnd.Float64() < accessFraction {
				for off := uint64(0); off < f.n; off += 64 {
					t.ReadAsync(f.at+mcsquare.Addr(off), 8)
				}
			}
		}
		t.Fence()
	})
	return cycles, copies
}

func main() {
	eager, n := run(false)
	lazy, _ := run(true)
	fmt.Printf("protobuf-style pipeline: %d messages, %d field copies, %.0f%% later deserialized\n",
		messages, n, accessFraction*100)
	fmt.Printf("  eager memcpy: %9d cycles (%.3f ms)\n", eager, float64(eager)/4e6)
	fmt.Printf("  (MC)² lazy:   %9d cycles (%.3f ms)\n", lazy, float64(lazy)/4e6)
	fmt.Printf("  runtime reduction: %.1f%%  (paper's Fleetbench result: 43%%)\n",
		100*(1-float64(lazy)/float64(eager)))
}
