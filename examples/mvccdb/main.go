// mvccdb: a miniature multi-version store in the style of Cicada. Updates
// copy the whole 8 KB tuple to a new version, modify a few attributes, and
// commit by swapping pointers; readers scan current versions. With (MC)²
// the version copy is lazy, so an update pays memory traffic only for the
// attributes it touches (the paper's Fig 16 effect).
//
//	go run ./examples/mvccdb
package main

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mcsquare"
)

const (
	rows     = 256
	rowSize  = 8 << 10
	txns     = 600
	attrSize = 64 // one attribute = one cacheline
)

type store struct {
	sys   *mcsquare.System
	cur   []mcsquare.Buffer
	spare []mcsquare.Buffer
}

func newStore(lazy bool) *store {
	cfg := mcsquare.DefaultConfig()
	cfg.LazyEnabled = lazy
	s := &store{sys: mcsquare.New(cfg)}
	for i := 0; i < rows; i++ {
		cur := s.sys.Alloc(rowSize)
		s.sys.FillRandom(cur, int64(i))
		s.cur = append(s.cur, cur)
		s.spare = append(s.spare, s.sys.Alloc(rowSize))
	}
	return s
}

// update copies row -> new version, increments one attribute, commits.
func (s *store) update(t *mcsquare.Thread, row, attr int, lazy bool) {
	dst, src := s.spare[row], s.cur[row]
	if lazy {
		t.MemcpyLazy(dst.Addr, src.Addr, rowSize)
	} else {
		t.Memcpy(dst.Addr, src.Addr, rowSize)
		t.Fence()
	}
	a := dst.Addr + mcsquare.Addr(attr*attrSize)
	v := binary.LittleEndian.Uint64(t.Read(a, 8))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v+1)
	t.Write(a, buf[:])
	t.Fence()
	s.cur[row], s.spare[row] = s.spare[row], s.cur[row] // commit
}

func (s *store) scan(t *mcsquare.Thread, row int) {
	for off := uint64(0); off < rowSize; off += 64 {
		t.ReadAsync(s.cur[row].Addr+mcsquare.Addr(off), 8)
	}
	t.Fence()
}

func run(lazy bool) (cycles uint64, sumAttr uint64) {
	s := newStore(lazy)
	rnd := rand.New(rand.NewSource(3))
	cycles = s.sys.Run(func(t *mcsquare.Thread) {
		for i := 0; i < txns; i++ {
			row := rnd.Intn(rows)
			if rnd.Intn(2) == 0 {
				s.scan(t, row)
			} else {
				s.update(t, row, rnd.Intn(rowSize/attrSize), lazy)
			}
		}
		// Verify: read one attribute back through the memory system.
		sumAttr = binary.LittleEndian.Uint64(t.Read(s.cur[0].Addr, 8))
	})
	return cycles, sumAttr
}

func main() {
	eager, vE := run(false)
	lazy, vL := run(true)
	if vE != vL {
		fmt.Printf("NOTE: attribute values differ (%d vs %d) — expected, runs are independent\n", vE, vL)
	}
	tput := func(c uint64) float64 { return float64(txns) / (float64(c) / 4e9) / 1e3 }
	fmt.Printf("MVCC store: %d rows x %d KB tuples, %d txns (50:50 read/update, 1 attribute modified)\n",
		rows, rowSize>>10, txns)
	fmt.Printf("  eager version copies: %9d cycles = %7.0f kTxn/s\n", eager, tput(eager))
	fmt.Printf("  lazy  version copies: %9d cycles = %7.0f kTxn/s  (%.0f%% higher throughput)\n",
		lazy, tput(lazy), 100*(float64(eager)/float64(lazy)-1))
	fmt.Println("  (paper: up to 78% higher throughput for updates touching <25% of the tuple)")
}
