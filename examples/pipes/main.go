// pipes: inter-process communication through a kernel pipe, the paper's
// Fig 19 scenario. The native kernel copies every byte twice (user→kernel,
// kernel→user); the (MC)² kernel makes both copies lazy, and chain
// collapsing plus MCFREE of consumed ring space mean fully forwarded bytes
// are never copied at all.
//
//	go run ./examples/pipes
package main

import (
	"fmt"

	"mcsquare/internal/workloads/oswl"
)

func main() {
	fmt.Println("pipe transfer throughput (bytes per kilocycle), 48 write/read pairs per point")
	fmt.Printf("%-10s %12s %12s %8s\n", "transfer", "native", "(MC)²", "gain")
	for _, size := range []uint64{1 << 10, 4 << 10, 16 << 10} {
		native := oswl.PipeThroughput(oswl.PipeConfig{TransferSize: size, Transfers: 48, Seed: 1})
		lazy := oswl.PipeThroughput(oswl.PipeConfig{TransferSize: size, Transfers: 48, Seed: 1, Lazy: true})
		fmt.Printf("%-10s %12.0f %12.0f %7.2fx\n",
			fmt.Sprintf("%dKB", size>>10), native, lazy, lazy/native)
	}
	fmt.Println("\nsmall transfers are syscall-bound; large ones approach the paper's ~2x")
}
