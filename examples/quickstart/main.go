// Quickstart: allocate two buffers on the simulated machine, copy one to
// the other lazily, read the destination back, and compare against an
// eager copy — the one-minute tour of the (MC)² mechanism.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"mcsquare"
)

func main() {
	const size = 256 << 10 // 256 KB, well past the lazy-win crossover

	// --- Eager baseline -------------------------------------------------
	base := mcsquare.New(func() mcsquare.Config {
		c := mcsquare.DefaultConfig()
		c.LazyEnabled = false
		return c
	}())
	bsrc := base.AllocPage(size)
	bdst := base.AllocPage(size)
	base.FillRandom(bsrc, 7)
	var eagerCopy uint64
	base.Run(func(t *mcsquare.Thread) {
		start := t.Now()
		t.Memcpy(bdst.Addr, bsrc.Addr, size)
		t.Fence()
		eagerCopy = t.Now() - start
	})

	// --- (MC)² ----------------------------------------------------------
	sys := mcsquare.New(mcsquare.DefaultConfig())
	src := sys.AllocPage(size)
	dst := sys.AllocPage(size)
	sys.FillRandom(src, 7)

	var lazyCopy, firstRead uint64
	var got, want []byte
	sys.Run(func(t *mcsquare.Thread) {
		start := t.Now()
		t.MemcpyLazy(dst.Addr, src.Addr, size) // returns without moving data
		lazyCopy = t.Now() - start

		start = t.Now()
		got = t.Read(dst.Addr, 4096) // the access triggers the lazy copy
		firstRead = t.Now() - start
	})
	want = sys.Peek(src.Addr, 4096)
	if !bytes.Equal(got, want) {
		log.Fatal("quickstart: lazy copy returned wrong data")
	}

	fmt.Println(sys)
	fmt.Printf("eager memcpy of %d KB:   %8d cycles (%.2f µs)\n", size>>10, eagerCopy, float64(eagerCopy)/4000)
	fmt.Printf("lazy  memcpy of %d KB:   %8d cycles (%.2f µs)  -> %.0fx faster\n",
		size>>10, lazyCopy, float64(lazyCopy)/4000, float64(eagerCopy)/float64(lazyCopy))
	fmt.Printf("first 4 KB read from dst: %8d cycles (data verified identical)\n", firstRead)
	st := sys.LazyStats()
	fmt.Printf("lazy machinery: %d MCLAZY ops, %d bounces, %d writebacks, %d live entries left\n",
		st.LazyOps, st.Bounces, st.BounceWritebacks, sys.LiveCopies())
}
