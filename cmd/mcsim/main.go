// mcsim runs a single workload on the simulated machine and prints its
// result plus the machine's counters — the quick way to poke at one
// configuration.
//
// Usage:
//
//	mcsim -workload protobuf -mech mc2
//	mcsim -workload mvcc -mech baseline -threads 8 -frac 0.25
//	mcsim -workload pipe -mech mc2 -size 16384
//	mcsim -workload hugecow -mech baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"mcsquare/internal/copykit"
	"mcsquare/internal/oskern"
	"mcsquare/internal/stats"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/oswl"
	"mcsquare/internal/workloads/protobuf"
	"mcsquare/internal/zio"
)

func main() {
	var (
		workload = flag.String("workload", "protobuf", "protobuf | mongo | mvcc | pipe | hugecow")
		mech     = flag.String("mech", "mc2", "baseline | zio | mc2")
		threads  = flag.Int("threads", 1, "mvcc: worker threads")
		frac     = flag.Float64("frac", 0.125, "mvcc: update fraction")
		size     = flag.Uint64("size", 4096, "pipe: transfer size in bytes")
		quick    = flag.Bool("quick", true, "reduced problem sizes")
	)
	flag.Parse()

	switch *workload {
	case "protobuf":
		cfg := protobuf.Config{Seed: 42}
		if *quick {
			cfg.Ops, cfg.Burst = 192, 64
		}
		m := protobuf.NewMachine(*mech == "mc2", nil)
		switch *mech {
		case "baseline":
			cfg.Copier = copykit.Eager{}
		case "zio":
			cfg.Copier = zio.New(oskern.New(m))
		case "mc2":
			cfg.Copier = copykit.Lazy{Threshold: 1024}
		default:
			fatal("unknown mechanism %q", *mech)
		}
		res := protobuf.Run(m, cfg)
		fmt.Printf("protobuf/%s: runtime %.3f ms, %d copies (%.1f%% of cycles in memcpy)\n",
			*mech, stats.CyclesToMs(uint64(res.Cycles)), res.Copies,
			100*float64(res.CopyCycles)/float64(res.Cycles))
		if m.Lazy != nil {
			fmt.Printf("  lazy: %+v\n", m.Lazy.Stats)
		}
		fmt.Printf("  cache: %+v\n", m.Hier.Stats)

	case "mongo":
		cfg := mongo.Config{Seed: 42}
		if *quick {
			cfg.Inserts, cfg.Fields, cfg.FieldSize = 8, 4, 32<<10
		}
		m := mongo.NewMachine(*mech == "mc2")
		switch *mech {
		case "baseline":
			cfg.Copier = copykit.Eager{}
		case "zio":
			cfg.Copier = zio.New(oskern.New(m))
		case "mc2":
			cfg.Copier = copykit.Lazy{Threshold: 1024}
		default:
			fatal("unknown mechanism %q", *mech)
		}
		res := mongo.Run(m, cfg)
		fmt.Printf("mongo/%s: average insert latency %.4f ms (p99 %.4f ms)\n",
			*mech, res.AvgInsertMs(), stats.CyclesToMs(uint64(res.Latencies.Percentile(99))))

	case "mvcc":
		cfg := mvcc.Config{Seed: 42, Threads: *threads, UpdateFraction: *frac, Lazy: *mech == "mc2"}
		if *quick {
			cfg.Rows, cfg.OpsPerThread = 128, 60
		}
		if *mech == "zio" {
			fatal("the paper could not run zIO on Cicada (MAP_SHARED); neither do we")
		}
		m := mvcc.NewMachine(cfg.Lazy, nil)
		res := mvcc.Run(m, cfg)
		fmt.Printf("mvcc/%s: %d txns in %.3f ms = %.0f kOps/s (%d threads, %.1f%% updated)\n",
			*mech, res.Ops, stats.CyclesToMs(uint64(res.Cycles)), res.ThroughputKOps(),
			*threads, *frac*100)

	case "pipe":
		lazy := *mech == "mc2"
		tput := oswl.PipeThroughput(oswl.PipeConfig{TransferSize: *size, Transfers: 48, Lazy: lazy, Seed: 42})
		fmt.Printf("pipe/%s: %d-byte transfers at %.0f bytes/kilocycle\n", *mech, *size, tput)

	case "hugecow":
		cfg := oswl.HugeCOWConfig{Seed: 42, Lazy: *mech == "mc2"}
		if *quick {
			cfg.RegionBytes, cfg.Accesses = 16<<20, 40
		}
		lat := oswl.HugeCOW(cfg)
		var h stats.Histogram
		for _, v := range lat {
			h.Add(float64(v))
		}
		fmt.Printf("hugecow/%s: %d accesses, latency min %.0f / mean %.0f / max %.0f cycles\n",
			*mech, h.N(), h.Min(), h.Mean(), h.Max())

	default:
		fatal("unknown workload %q", *workload)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
