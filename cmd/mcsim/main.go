// mcsim runs a single workload on the simulated machine and prints its
// result plus key machine counters — the quick way to poke at one
// configuration.
//
// Usage:
//
//	mcsim -workload protobuf -mech mc2
//	mcsim -workload mvcc -mech baseline -threads 8 -frac 0.25
//	mcsim -workload pipe -mech mc2 -size 16384
//	mcsim -workload hugecow -mech baseline
//	mcsim -list                          # enumerate workloads and mechanisms
//	mcsim -stats out.json                # machine-readable metrics dump
//	mcsim -trace out.json                # Chrome/Perfetto transaction trace
//
// -stats writes the merged metrics registry of every machine the run
// built as JSON ("-" for stdout): one object mapping dotted metric names
// (cpu0.loads, l1.misses, mc0.rejected_writes, engine.bounces, ...) to
// their kind and value.
//
// -trace enables the transaction tracer and writes every machine's flight
// recorder as one Chrome trace-event JSON document, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. -trace-sample N records every Nth
// memory operation (1 = all). Tracing also adds per-stage latency
// histograms (txtrace.*) to the -stats output.
//
// -faults injects a deterministic fault schedule (a bare seed like
// 0xC0FFEE, or a schedule JSON file) into every machine of the run;
// -invariants turns on the runtime correctness oracles (shadow-memory
// integrity, liveness watchdog, queue bounds) and exits non-zero when any
// violation is recorded. Both add faultinject.*/invariant.* metrics to
// -stats output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcsquare/internal/copykit"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/invariant"
	"mcsquare/internal/machine"
	"mcsquare/internal/metrics"
	"mcsquare/internal/oskern"
	"mcsquare/internal/stats"
	"mcsquare/internal/txtrace"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/oswl"
	"mcsquare/internal/workloads/protobuf"
	"mcsquare/internal/zio"
)

// options carries the parsed flags to the workload runners.
type options struct {
	mech    string
	threads int
	frac    float64
	size    uint64
	quick   bool
}

// workload is one runnable entry of the -list table. run executes with
// the mechanism already validated against mechs.
type workload struct {
	name  string
	mechs []string // supported -mech values
	note  string   // shown by -list, and on rejected mech combinations
	run   func(o options)
}

var workloads = []workload{
	{
		name:  "protobuf",
		mechs: []string{"baseline", "zio", "mc2"},
		run:   runProtobuf,
	},
	{
		name:  "mongo",
		mechs: []string{"baseline", "zio", "mc2"},
		run:   runMongo,
	},
	{
		name:  "mvcc",
		mechs: []string{"baseline", "mc2"},
		note:  "no zio: the paper could not run zIO on Cicada (MAP_SHARED); neither do we",
		run:   runMVCC,
	},
	{
		name:  "pipe",
		mechs: []string{"baseline", "mc2"},
		run:   runPipe,
	},
	{
		name:  "hugecow",
		mechs: []string{"baseline", "mc2"},
		run:   runHugeCOW,
	},
}

func main() {
	var (
		wl       = flag.String("workload", "protobuf", "workload to run (see -list)")
		mech     = flag.String("mech", "mc2", "copy mechanism (see -list)")
		threads  = flag.Int("threads", 1, "mvcc: worker threads")
		frac     = flag.Float64("frac", 0.125, "mvcc: update fraction")
		size     = flag.Uint64("size", 4096, "pipe: transfer size in bytes")
		quick    = flag.Bool("quick", true, "reduced problem sizes")
		list     = flag.Bool("list", false, "list workloads and mechanisms and exit")
		statsOut = flag.String("stats", "", "write the run's metrics registry as JSON to this file; - for stdout")
		traceOut = flag.String("trace", "", "enable transaction tracing and write a Chrome/Perfetto trace-event JSON to this file; - for stdout")
		traceN   = flag.Int("trace-sample", 1, "with -trace: record every Nth memory operation (1 = all)")
		faults   = flag.String("faults", "", "inject a deterministic fault schedule: a seed (e.g. 0xC0FFEE) or a schedule JSON file")
		invar    = flag.Bool("invariants", false, "enable runtime invariant oracles (shadow memory, liveness watchdog, queue bounds); violations exit non-zero")
	)
	flag.Parse()

	if *list {
		fmt.Println("workload   mechanisms")
		for _, w := range workloads {
			fmt.Printf("%-10s %s\n", w.name, strings.Join(w.mechs, ", "))
			if w.note != "" {
				fmt.Printf("%-10s   (%s)\n", "", w.note)
			}
		}
		return
	}

	w, ok := findWorkload(*wl)
	if !ok {
		usageErr("unknown workload %q; available: %s", *wl, strings.Join(workloadNames(), ", "))
	}
	if !contains(w.mechs, *mech) {
		msg := fmt.Sprintf("workload %s does not support -mech %q; supported: %s",
			w.name, *mech, strings.Join(w.mechs, ", "))
		if w.note != "" {
			msg += " (" + w.note + ")"
		}
		usageErr("%s", msg)
	}

	// Validate output destinations up front: a simulation should not run
	// for minutes only to fail writing its result.
	traceFile, err := createOutput(*traceOut)
	if err != nil {
		fatal("-trace: %v", err)
	}

	var fsched *faultinject.Schedule
	if *faults != "" {
		s, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fatal("-faults: %v", err)
		}
		fsched = &s
	}
	var icfg invariant.Config
	if *invar {
		icfg = invariant.All()
	}

	// Collect the registry of every machine the workload builds (some
	// build theirs internally), so -stats sees the whole run.
	col := metrics.NewCollector()
	release := col.Bind()
	tcol := txtrace.NewCollector(txtrace.Config{Enabled: *traceOut != "", SampleEvery: *traceN})
	releaseTrace := tcol.Bind()
	fcol := faultinject.NewCollector(fsched)
	releaseFaults := fcol.Bind()
	icol := invariant.NewCollector(icfg)
	releaseInv := icol.Bind()
	w.run(options{mech: *mech, threads: *threads, frac: *frac, size: *size, quick: *quick})
	release()
	releaseTrace()
	releaseFaults()
	releaseInv()

	if fcol != nil {
		fmt.Printf("faultinject: %d fault(s) fired (schedule seed %#x)\n",
			fcol.FiredTotal(), fcol.Schedule().Seed)
	}
	if icol != nil {
		var checks, skips uint64
		for _, o := range icol.Oracles() {
			c, s, _ := o.Checks()
			checks, skips = checks+c, skips+s
		}
		if n := icol.TotalViolations(); n > 0 {
			icol.Report(os.Stderr)
			os.Exit(1)
		}
		fmt.Printf("invariant: 0 violations (%d checks, %d skipped)\n", checks, skips)
	}

	if traceFile != nil {
		if err := tcol.Export(traceFile); err != nil {
			fatal("-trace: %v", err)
		}
		if err := closeOutput(traceFile); err != nil {
			fatal("-trace: %v", err)
		}
	}
	if *statsOut != "" {
		if err := writeStats(*statsOut, col.Snapshot()); err != nil {
			fatal("%v", err)
		}
	}
}

// createOutput opens path for writing ("-" = stdout, "" = none). Called
// before the simulation runs so an unwritable path fails fast.
func createOutput(path string) (*os.File, error) {
	switch path {
	case "":
		return nil, nil
	case "-":
		return os.Stdout, nil
	}
	return os.Create(path)
}

func closeOutput(f *os.File) error {
	if f == os.Stdout {
		return nil
	}
	return f.Close()
}

func findWorkload(name string) (workload, bool) {
	for _, w := range workloads {
		if w.name == name {
			return w, true
		}
	}
	return workload{}, false
}

func workloadNames() []string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.name
	}
	return names
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func runProtobuf(o options) {
	cfg := protobuf.Config{Seed: 42}
	if o.quick {
		cfg.Ops, cfg.Burst = 192, 64
	}
	m := protobuf.NewMachine(o.mech == "mc2", nil)
	cfg.Copier = copierFor(o.mech, m)
	res := protobuf.Run(m, cfg)
	fmt.Printf("protobuf/%s: runtime %.3f ms, %d copies (%.1f%% of cycles in memcpy)\n",
		o.mech, stats.CyclesToMs(uint64(res.Cycles)), res.Copies,
		100*float64(res.CopyCycles)/float64(res.Cycles))
	printCounters(m.Metrics,
		"engine.lazy_ops", "engine.bounces", "engine.bounce_writebacks",
		"ctt.inserts", "l1.misses", "l2.misses", "mc0.reads", "dram0.row_hits")
}

func runMongo(o options) {
	cfg := mongo.Config{Seed: 42}
	if o.quick {
		cfg.Inserts, cfg.Fields, cfg.FieldSize = 8, 4, 32<<10
	}
	m := mongo.NewMachine(o.mech == "mc2")
	cfg.Copier = copierFor(o.mech, m)
	res := mongo.Run(m, cfg)
	fmt.Printf("mongo/%s: average insert latency %.4f ms (p99 %.4f ms)\n",
		o.mech, res.AvgInsertMs(), stats.CyclesToMs(uint64(res.Latencies.Percentile(99))))
}

func runMVCC(o options) {
	cfg := mvcc.Config{Seed: 42, Threads: o.threads, UpdateFraction: o.frac, Lazy: o.mech == "mc2"}
	if o.quick {
		cfg.Rows, cfg.OpsPerThread = 128, 60
	}
	m := mvcc.NewMachine(cfg.Lazy, nil)
	res := mvcc.Run(m, cfg)
	fmt.Printf("mvcc/%s: %d txns in %.3f ms = %.0f kOps/s (%d threads, %.1f%% updated)\n",
		o.mech, res.Ops, stats.CyclesToMs(uint64(res.Cycles)), res.ThroughputKOps(),
		o.threads, o.frac*100)
}

func runPipe(o options) {
	tput := oswl.PipeThroughput(oswl.PipeConfig{
		TransferSize: o.size, Transfers: 48, Lazy: o.mech == "mc2", Seed: 42,
	})
	fmt.Printf("pipe/%s: %d-byte transfers at %.0f bytes/kilocycle\n", o.mech, o.size, tput)
}

func runHugeCOW(o options) {
	cfg := oswl.HugeCOWConfig{Seed: 42, Lazy: o.mech == "mc2"}
	if o.quick {
		cfg.RegionBytes, cfg.Accesses = 16<<20, 40
	}
	lat := oswl.HugeCOW(cfg)
	var h stats.Histogram
	for _, v := range lat {
		h.Add(float64(v))
	}
	fmt.Printf("hugecow/%s: %d accesses, latency min %.0f / mean %.0f / max %.0f cycles\n",
		o.mech, h.N(), h.Min(), h.Mean(), h.Max())
}

// copierFor builds the copy mechanism for one machine. Mechanism validity
// was checked in main before the machine was built.
func copierFor(mech string, m *machine.Machine) copykit.Copier {
	switch mech {
	case "baseline":
		return copykit.Eager{}
	case "zio":
		return zio.New(oskern.New(m))
	case "mc2":
		return copykit.Lazy{Threshold: 1024}
	}
	panic("unreachable: mech validated in main")
}

// printCounters prints the named counters that exist in the registry.
func printCounters(reg *metrics.Registry, names ...string) {
	snap := reg.Snapshot()
	var parts []string
	for _, n := range names {
		if v, ok := snap.Get(n); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", n, v.Count))
		}
	}
	fmt.Printf("  %s\n", strings.Join(parts, " "))
}

// writeStats dumps a snapshot as JSON to path ("-" = stdout).
func writeStats(path string, s *metrics.Snapshot) error {
	if path == "-" {
		return s.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func usageErr(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "usage: mcsim -workload <name> -mech <name> [flags]; mcsim -list shows valid values")
	os.Exit(2)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
