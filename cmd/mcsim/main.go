// mcsim runs a single workload on the simulated machine and prints its
// result plus key machine counters — the quick way to poke at one
// configuration.
//
// Usage:
//
//	mcsim -workload protobuf -mech mc2
//	mcsim -workload mvcc -mech baseline -threads 8 -frac 0.25
//	mcsim -config examples/configs/table1.json    # declarative machine spec
//	mcsim -config spec.json -set Channels=4       # spec with field overrides
//	mcsim -config spec.json -validate             # check a spec, print it canonically
//	mcsim -fleet                         # fleet smoke: N machines behind a load balancer
//	mcsim -list                          # enumerate workloads and mechanisms
//	mcsim -stats out.json                # machine-readable metrics dump
//	mcsim -trace out.json                # Chrome/Perfetto transaction trace
//
// The machine is described by a config.MachineSpec: the built-in default
// (the paper's Table I machine), optionally patched by a -config JSON file,
// then by repeatable -set Path=value overrides, in that order. The spec's
// mechanism block selects the copy mechanism; an explicit -mech flag
// overrides it. Workload × mechanism compatibility comes from the registry's
// capability declarations, not a hardcoded table.
//
// -stats writes the merged metrics registry of every machine the run
// built as JSON ("-" for stdout): one object mapping dotted metric names
// (cpu0.loads, l1.misses, mc0.rejected_writes, engine.bounces, ...) to
// their kind and value.
//
// -trace enables the transaction tracer and writes every machine's flight
// recorder as one Chrome trace-event JSON document, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. -trace-sample N records every Nth
// memory operation (1 = all). Tracing also adds per-stage latency
// histograms (txtrace.*) to the -stats output.
//
// -fleet switches to the fleet serving mode (internal/fleet): the spec's
// Fleet block — or the default six-machine fleet — is calibrated per
// machine with the real simulator and driven open-loop through the
// configured load balancer; the summary reports capacity, offered load,
// goodput, and latency SLOs. The spec's mechanism selects the serving
// column; the offered rate derives from a baseline calibration either way,
// so baseline and mc2 runs face identical load.
//
// A Fleet.Resilience block (see examples/configs/fleet-resilience.json)
// switches on the fault-tolerance plane: health-checked LB membership,
// per-request timeouts with budgeted retries, hedged requests, circuit
// breakers, and priority load shedding. A -faults schedule whose fleet
// fields are set (FromSeed schedules always set them) additionally storms
// the fleet with seeded machine crashes, brownouts, and probe loss; the
// summary then reports the availability accounting (Offered == Completed
// + TimedOut + Shed + Dropped + Failed).
//
// -faults injects a deterministic fault schedule (a bare seed like
// 0xC0FFEE, or a schedule JSON file) into every machine of the run;
// -invariants turns on the runtime correctness oracles (shadow-memory
// integrity, liveness watchdog, queue bounds) and exits non-zero when any
// violation is recorded. Both add faultinject.*/invariant.* metrics to
// -stats output.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mcsquare/internal/cliutil"
	"mcsquare/internal/config"
	"mcsquare/internal/copykit"
	"mcsquare/internal/faultinject"
	"mcsquare/internal/fleet"
	"mcsquare/internal/invariant"
	"mcsquare/internal/machine"
	"mcsquare/internal/metrics"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
	"mcsquare/internal/workloads"
	"mcsquare/internal/workloads/mongo"
	"mcsquare/internal/workloads/mvcc"
	"mcsquare/internal/workloads/oswl"
	"mcsquare/internal/workloads/protobuf"
)

// options carries the resolved spec and flags to the workload runners.
type options struct {
	spec    *config.MachineSpec
	mech    config.Mechanism
	threads int
	frac    float64
	size    uint64
	quick   bool

	// timelineFile/timelinePath/timelineCfg carry the -timeline destination
	// to runFleet, which records its own event-loop timeline (fleetMode
	// notes the run so single-workload timeline writing stays in main).
	timelineFile *os.File
	timelinePath string
	timelineCfg  timeline.Config
	fleetMode    bool
}

// runners maps catalog workload names to their entry points; the catalog
// itself (names, notes, supported mechanisms) lives in internal/workloads.
var runners = map[string]func(o options){
	"protobuf": runProtobuf,
	"mongo":    runMongo,
	"mvcc":     runMVCC,
	"pipe":     runPipe,
	"hugecow":  runHugeCOW,
}

func main() {
	var sets cliutil.StringList
	var (
		cfgPath  = flag.String("config", "", "machine spec JSON file (see examples/configs); flags layer on top")
		validate = flag.Bool("validate", false, "validate the -config/-set layering, print the canonical spec, and exit")
		wl       = flag.String("workload", "protobuf", "workload to run (see -list)")
		mech     = flag.String("mech", "mc2", "copy mechanism (see -list); overrides the spec's mechanism block")
		threads  = flag.Int("threads", 1, "mvcc: worker threads")
		frac     = flag.Float64("frac", 0.125, "mvcc: update fraction")
		size     = flag.Uint64("size", 4096, "pipe: transfer size in bytes")
		quick    = flag.Bool("quick", true, "reduced problem sizes")
		fleetRun = flag.Bool("fleet", false, "run the spec's fleet block (or the default fleet) instead of a single workload")
		list     = flag.Bool("list", false, "list workloads and mechanisms and exit")
		statsOut = flag.String("stats", "", "write the run's metrics registry as JSON to this file; - for stdout")
		traceOut = flag.String("trace", "", "enable transaction tracing and write a Chrome/Perfetto trace-event JSON to this file; - for stdout")
		traceN   = flag.Int("trace-sample", 1, "with -trace: record every Nth memory operation (1 = all)")
		faults   = flag.String("faults", "", "inject a deterministic fault schedule: a seed (e.g. 0xC0FFEE) or a schedule JSON file")
		invar    = flag.Bool("invariants", false, "enable runtime invariant oracles (shadow memory, liveness watchdog, queue bounds); violations exit non-zero")
		tlOut    = flag.String("timeline", "", "enable cycle-windowed metric sampling and write the timeline to this file (.csv, else JSON); - for stdout")
		tlWin    = flag.Uint64("timeline-window", 0, "timeline sampling window in simulated cycles (0 = spec's Timeline block, or 100000)")
		serve    = flag.String("serve", "", "serve a live inspection endpoint (/metrics, /timeline, /debug/pprof) on this address, e.g. :8080; stays up after the run until interrupted")
	)
	flag.Var(&sets, "set", "override one spec field (Path=value, e.g. -set Channels=4); repeatable, applied after -config")
	flag.Parse()

	if *list {
		cliutil.PrintWorkloads(os.Stdout)
		fmt.Println()
		cliutil.PrintMechanisms(os.Stdout)
		return
	}

	spec, err := cliutil.LoadSpec(*cfgPath, sets)
	if err != nil {
		fatal("%v", err)
	}

	// Mechanism precedence: an explicit -mech flag beats the spec's
	// mechanism block, which beats the default. Switching mechanisms drops
	// the spec's mechanism params (they belong to the previous mechanism).
	mechExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "mech" {
			mechExplicit = true
		}
	})
	if mechExplicit && *mech != spec.Mechanism.Name {
		spec.Mechanism = config.MechanismSpec{Name: *mech}
	}
	if err := spec.Validate(); err != nil {
		fatal("%v", err)
	}

	if *validate {
		out, err := spec.Marshal()
		if err != nil {
			fatal("%v", err)
		}
		os.Stdout.Write(out)
		return
	}

	mk, _ := config.LookupMechanism(spec.Mechanism.Name) // Validate checked registration
	run := runFleet
	if !*fleetRun {
		run = resolveWorkload(*wl, mk)
	}
	// Validate output destinations up front: a simulation should not run
	// for minutes only to fail writing its result.
	traceFile, err := cliutil.CreateOutput(*traceOut)
	if err != nil {
		fatal("-trace: %v", err)
	}

	tlFile, err := cliutil.CreateOutput(*tlOut)
	if err != nil {
		fatal("-timeline: %v", err)
	}

	fsched, err := cliutil.ParseFaults(*faults)
	if err != nil {
		fatal("-faults: %v", err)
	}
	if fsched == nil && spec.Faults != nil {
		// A schedule baked into the spec applies unless -faults overrides.
		fsched = spec.Faults
	}
	icfg := cliutil.Invariants(*invar)

	// Collect the registry of every machine the workload builds (some
	// build theirs internally), so -stats sees the whole run.
	col := metrics.NewCollector()
	release := col.Bind()
	tcol := txtrace.NewCollector(txtrace.Config{Enabled: *traceOut != "", SampleEvery: *traceN})
	releaseTrace := tcol.Bind()
	fcol := faultinject.NewCollector(fsched)
	releaseFaults := fcol.Bind()
	icol := invariant.NewCollector(icfg)
	releaseInv := icol.Bind()

	// The timeline plane: per-machine recorders for single-workload runs;
	// fleet mode records its own event-loop timeline instead (the spec's
	// Timeline block, which -timeline/-timeline-window force on/override).
	tlcfg := cliutil.TimelineConfig(spec, *tlOut, *tlWin, *serve != "")
	var tlcol *timeline.Collector
	if !*fleetRun {
		tlcol = timeline.NewCollector(tlcfg)
	}
	releaseTl := tlcol.Bind()

	var stopServe func()
	if *serve != "" {
		addr, stop, err := cliutil.Serve(*serve, &cliutil.ServeState{Metrics: col, Timeline: tlcol})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("serving http://%s  (/metrics /timeline /debug/pprof/)\n", addr)
		stopServe = stop
	}

	run(options{
		spec: spec, mech: mk,
		threads: *threads, frac: *frac, size: *size, quick: *quick,
		timelineFile: tlFile, timelinePath: *tlOut, timelineCfg: tlcfg, fleetMode: *fleetRun,
	})
	release()
	releaseTrace()
	releaseFaults()
	releaseInv()
	releaseTl()
	tlcol.Finalize()

	if fcol != nil {
		fmt.Printf("faultinject: %d fault(s) fired (schedule seed %#x)\n",
			fcol.FiredTotal(), fcol.Schedule().Seed)
	}
	if icol != nil {
		var checks, skips uint64
		for _, o := range icol.Oracles() {
			c, s, _ := o.Checks()
			checks, skips = checks+c, skips+s
		}
		if n := icol.TotalViolations(); n > 0 {
			icol.Report(os.Stderr)
			os.Exit(1)
		}
		fmt.Printf("invariant: 0 violations (%d checks, %d skipped)\n", checks, skips)
	}

	if traceFile != nil {
		// With the timeline on, merge its counter tracks into the span
		// document so both render on one timebase.
		var exportErr error
		if tlcol != nil {
			exportErr = timeline.ExportPerfetto(traceFile, tcol.Tracers(), tlcol.Recorders())
		} else {
			exportErr = tcol.Export(traceFile)
		}
		if exportErr != nil {
			fatal("-trace: %v", exportErr)
		}
		if err := cliutil.CloseOutput(traceFile); err != nil {
			fatal("-trace: %v", err)
		}
	}
	if tlFile != nil && !*fleetRun {
		if err := timeline.Write(tlFile, *tlOut, tlcol.Recorders()); err != nil {
			fatal("-timeline: %v", err)
		}
		if err := cliutil.CloseOutput(tlFile); err != nil {
			fatal("-timeline: %v", err)
		}
	}
	if *statsOut != "" {
		if err := cliutil.WriteStats(*statsOut, col.Snapshot()); err != nil {
			fatal("%v", err)
		}
	}

	if stopServe != nil {
		fmt.Println("serve: run complete; endpoint stays live until interrupted (Ctrl-C)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		stopServe()
	}
}

// clock is the spec's cycle→wall-time converter for printed summaries.
func (o options) clock() stats.Clock { return cliutil.SpecClock(o.spec) }

// copier builds the spec's mechanism for m through the registry.
func (o options) copier(m *machine.Machine) copykit.Copier {
	cp, err := config.BuildCopier(o.spec, m)
	if err != nil {
		fatal("%v", err)
	}
	return cp
}

// kernelParams lowers the spec for the OS workloads, which always carry
// the lazy hardware: the kernel flag, not the machine, decides usage.
func (o options) kernelParams() machine.Params {
	p := o.spec.MustParams()
	p.LazyEnabled = true
	return p
}

func runProtobuf(o options) {
	cfg := protobuf.Config{Seed: 42}
	if o.quick {
		cfg.Ops, cfg.Burst = 192, 64
	}
	m := protobuf.NewMachineFrom(o.spec.MustParams())
	cfg.Copier = o.copier(m)
	res := protobuf.Run(m, cfg)
	fmt.Printf("protobuf/%s: runtime %.3f ms, %d copies (%.1f%% of cycles in memcpy)\n",
		o.mech.Name, o.clock().CyclesToMs(uint64(res.Cycles)), res.Copies,
		100*float64(res.CopyCycles)/float64(res.Cycles))
	printCounters(m.Metrics,
		"engine.lazy_ops", "engine.bounces", "engine.bounce_writebacks",
		"ctt.inserts", "l1.misses", "l2.misses", "mc0.reads", "dram0.row_hits")
}

func runMongo(o options) {
	cfg := mongo.Config{Seed: 42}
	if o.quick {
		cfg.Inserts, cfg.Fields, cfg.FieldSize = 8, 4, 32<<10
	}
	m := mongo.NewMachineFrom(o.spec.MustParams())
	cfg.Copier = o.copier(m)
	res := mongo.Run(m, cfg)
	fmt.Printf("mongo/%s: average insert latency %.4f ms (p99 %.4f ms)\n",
		o.mech.Name, res.AvgInsertMsAt(o.clock()), o.clock().CyclesToMs(uint64(res.Latencies.Percentile(99))))
}

func runMVCC(o options) {
	cfg := mvcc.Config{Seed: 42, Threads: o.threads, UpdateFraction: o.frac, Lazy: o.mech.NeedsLazyHW}
	if o.quick {
		cfg.Rows, cfg.OpsPerThread = 128, 60
	}
	m := mvcc.NewMachineFrom(o.spec.MustParams())
	res := mvcc.Run(m, cfg)
	fmt.Printf("mvcc/%s: %d txns in %.3f ms = %.0f kOps/s (%d threads, %.1f%% updated)\n",
		o.mech.Name, res.Ops, o.clock().CyclesToMs(uint64(res.Cycles)), res.ThroughputKOpsAt(o.clock()),
		o.threads, o.frac*100)
}

func runPipe(o options) {
	p := o.kernelParams()
	tput := oswl.PipeThroughput(oswl.PipeConfig{
		TransferSize: o.size, Transfers: 48, Lazy: o.mech.NeedsLazyHW, Seed: 42, Machine: &p,
	})
	fmt.Printf("pipe/%s: %d-byte transfers at %.0f bytes/kilocycle\n", o.mech.Name, o.size, tput)
}

func runHugeCOW(o options) {
	p := o.kernelParams()
	cfg := oswl.HugeCOWConfig{Seed: 42, Lazy: o.mech.NeedsLazyHW, Machine: &p}
	if o.quick {
		cfg.RegionBytes, cfg.Accesses = 16<<20, 40
	}
	lat := oswl.HugeCOW(cfg)
	var h stats.Histogram
	for _, v := range lat {
		h.Add(float64(v))
	}
	fmt.Printf("hugecow/%s: %d accesses, latency min %.0f / mean %.0f / max %.0f cycles\n",
		o.mech.Name, h.N(), h.Min(), h.Mean(), h.Max())
}

// resolveWorkload maps a -workload name to its runner, checking the
// catalog's mechanism-compatibility declarations.
func resolveWorkload(name string, mk config.Mechanism) func(options) {
	w, ok := workloads.Find(name)
	if !ok {
		usageErr("unknown workload %q; available: %s", name, strings.Join(workloads.Names(), ", "))
	}
	if !w.SupportsMechanism(mk.Name) {
		msg := fmt.Sprintf("workload %s does not support mechanism %q; supported: %s",
			w.Name, mk.Name, strings.Join(w.Mechanisms(), ", "))
		if w.Note != "" {
			msg += " (" + w.Note + ")"
		}
		usageErr("%s", msg)
	}
	return runners[w.Name]
}

// runFleet is the -fleet smoke mode: calibrate and simulate the spec's
// fleet block at its configured operating point. The -timeline and
// -timeline-window flags force the spec's Timeline block on so the fleet
// event loop records its windowed telemetry.
func runFleet(o options) {
	spec := *o.spec
	if o.timelineCfg.Enabled {
		ts := config.TimelineSpec{}
		if spec.Timeline != nil {
			ts = *spec.Timeline
		}
		ts.Enabled = true
		if o.timelineCfg.WindowCycles > 0 {
			ts.WindowCycles = o.timelineCfg.WindowCycles
		}
		spec.Timeline = &ts
	}
	res, err := fleet.Run(spec, fleet.Options{Quick: o.quick})
	if err != nil {
		fatal("-fleet: %v", err)
	}
	fmt.Printf("fleet/%s: %d machines, capacity %.0f kOps/s, offered %.0f kOps/s\n",
		res.Mechanism, res.Machines, res.CapacityKOps, res.OfferedKOps())
	fmt.Printf("  completed %d/%d (dropped %d), goodput %.0f kOps/s\n",
		res.Completed, res.Offered, res.Dropped, res.GoodputKOps())
	fmt.Printf("  latency ms: p50 %.4f  p95 %.4f  p99 %.4f  p99.9 %.4f  (mean queue depth %.2f)\n",
		res.PercentileMs(50), res.PercentileMs(95), res.PercentileMs(99), res.PercentileMs(99.9),
		res.MeanQueueDepth)
	if res.ResilienceOn {
		// The fault-tolerance plane ran (a Fleet.Resilience mitigation or
		// an ambient fleet storm); default runs print nothing extra.
		fmt.Println(res.ResilienceSummary())
	}
	if tl := res.Timeline; tl != nil {
		fmt.Printf("  timeline: %d windows of %d cycles\n", len(tl.Windows), tl.WindowCycles)
		if tl.SLOP99Ms > 0 {
			if tl.SLOViolated {
				fmt.Printf("  SLO p99 <= %.4f ms first violated in window %d (%.4f ms into the run)\n",
					tl.SLOP99Ms, tl.FirstViolation, tl.TimeToFirstViolationMs())
			} else {
				fmt.Printf("  SLO p99 <= %.4f ms held in every window\n", tl.SLOP99Ms)
			}
		}
		if o.timelineFile != nil {
			if err := tl.Write(o.timelineFile, o.timelinePath); err != nil {
				fatal("-timeline: %v", err)
			}
			if err := cliutil.CloseOutput(o.timelineFile); err != nil {
				fatal("-timeline: %v", err)
			}
		}
	}
}

// printCounters prints the named counters that exist in the registry.
func printCounters(reg *metrics.Registry, names ...string) {
	snap := reg.Snapshot()
	var parts []string
	for _, n := range names {
		if v, ok := snap.Get(n); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", n, v.Count))
		}
	}
	fmt.Printf("  %s\n", strings.Join(parts, " "))
}

func usageErr(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "usage: mcsim -workload <name> -mech <name> [flags]; mcsim -list shows valid values")
	os.Exit(2)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mcsim: "+format+"\n", args...)
	os.Exit(1)
}
